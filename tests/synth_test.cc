/**
 * @file
 * Synthesis-specialization tests: the resource model against the three
 * published design points of Table III, feasibility checks, and the
 * configuration explorer.
 */

#include <gtest/gtest.h>

#include "synth/resource_model.h"
#include "workloads/paper_data.h"

namespace bw {
namespace {

struct Point
{
    NpuConfig cfg;
    FpgaDevice dev;
    paper::TableThreeRow row;
};

std::vector<Point>
tableThreePoints()
{
    auto rows = paper::tableThree();
    return {
        {NpuConfig::bwS5(), FpgaDevice::stratixVD5(), rows[0]},
        {NpuConfig::bwA10(), FpgaDevice::arria10_1150(), rows[1]},
        {NpuConfig::bwS10(), FpgaDevice::stratix10_280(), rows[2]},
    };
}

TEST(ResourceModel, AlmsWithinFifteenPercentOfTableThree)
{
    for (const auto &p : tableThreePoints()) {
        ResourceEstimate est = estimateResources(p.cfg, p.dev);
        EXPECT_NEAR(static_cast<double>(est.alms),
                    static_cast<double>(p.row.alms), p.row.alms * 0.15)
            << p.row.instance;
    }
}

TEST(ResourceModel, DspsWithinTenPercentOfTableThree)
{
    for (const auto &p : tableThreePoints()) {
        ResourceEstimate est = estimateResources(p.cfg, p.dev);
        EXPECT_NEAR(static_cast<double>(est.dsps),
                    static_cast<double>(p.row.dsps), p.row.dsps * 0.10)
            << p.row.instance;
    }
}

TEST(ResourceModel, M20ksWithinTwentyFivePercentOfTableThree)
{
    for (const auto &p : tableThreePoints()) {
        ResourceEstimate est = estimateResources(p.cfg, p.dev);
        EXPECT_NEAR(static_cast<double>(est.m20ks),
                    static_cast<double>(p.row.m20ks),
                    p.row.m20ks * 0.25)
            << p.row.instance;
    }
}

TEST(ResourceModel, PublishedConfigsFitTheirDevices)
{
    for (const auto &p : tableThreePoints()) {
        ResourceEstimate est = estimateResources(p.cfg, p.dev);
        EXPECT_TRUE(est.fits) << p.row.instance;
        EXPECT_DOUBLE_EQ(est.freqMhz, p.row.freqMhz) << p.row.instance;
        EXPECT_NEAR(est.peakTflops, p.row.peakTflops,
                    p.row.peakTflops * 0.03)
            << p.row.instance;
    }
}

TEST(ResourceModel, OversizedConfigDoesNotFit)
{
    NpuConfig c = NpuConfig::bwS10();
    c.tileEngines = 24; // 4x the published design
    ResourceEstimate est =
        estimateResources(c, FpgaDevice::stratix10_280());
    EXPECT_FALSE(est.fits);
}

TEST(ResourceModel, WiderMantissaCostsMoreLogic)
{
    NpuConfig narrow = NpuConfig::bwS10();
    NpuConfig wide = NpuConfig::bwS10();
    wide.precision = bfp155();
    auto dev = FpgaDevice::stratix10_280();
    EXPECT_GT(estimateResources(wide, dev).alms,
              estimateResources(narrow, dev).alms);
}

TEST(ResourceModel, MrfDominatesM20k)
{
    NpuConfig small_mrf = NpuConfig::bwS10();
    small_mrf.mrfSize = 100;
    auto dev = FpgaDevice::stratix10_280();
    EXPECT_LT(estimateResources(small_mrf, dev).m20ks,
              estimateResources(NpuConfig::bwS10(), dev).m20ks);
}

TEST(Explorer, FindsFeasibleConfig)
{
    ExplorerResult r =
        exploreConfig(2048, FpgaDevice::stratix10_280(), bfp152());
    EXPECT_TRUE(r.estimate.fits);
    EXPECT_GT(r.estimate.peakTflops, 10.0);
    EXPECT_LT(r.paddingWaste, 0.30);
    EXPECT_NO_THROW(r.config.validate());
}

TEST(Explorer, AlignedNativeDimMinimizesWaste)
{
    // A model dim that is an exact multiple of some native dim should
    // explore to (near) zero padding waste.
    ExplorerResult r =
        exploreConfig(2048, FpgaDevice::stratix10_280(), bfp152());
    EXPECT_LT(r.paddingWaste, 0.05);
}

TEST(Explorer, SmallDeviceYieldsSmallerConfig)
{
    ExplorerResult s5 = exploreConfig(1024, FpgaDevice::stratixVD5());
    ExplorerResult s10 = exploreConfig(1024, FpgaDevice::stratix10_280());
    EXPECT_LT(s5.config.macCount(), s10.config.macCount());
    EXPECT_LT(s5.estimate.peakTflops, s10.estimate.peakTflops);
}

TEST(Devices, PublishedCapacities)
{
    EXPECT_EQ(FpgaDevice::stratix10_280().alms, 933120u);
    EXPECT_EQ(FpgaDevice::arria10_1150().dsps, 1518u);
    EXPECT_EQ(FpgaDevice::stratixVD5().m20ks, 2014u);
}

} // namespace
} // namespace bw
