/**
 * @file
 * Tests for the failure-domain plane: deterministic chaos schedules,
 * incident timelines, health-aware routing, hedged requests, and the
 * byte-identity contract of chaotic replays.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bw/bw.h"

using namespace bw;
using namespace bw::cluster;

namespace {

/// Two-group, three-engine cluster over flat-service models — the same
/// shape cluster_test uses, so chaos results compare against a known
/// healthy baseline.
ClusterOptions
chaosClusterOptions()
{
    ClusterOptions co;
    ReplicaGroupSpec fast;
    fast.name = "s10";
    fast.config = NpuConfig::bwS10();
    fast.engines = 2;
    fast.engine.queueDepth = 8;
    fast.engine.defaultDeadlineMs = 20.0;
    ReplicaGroupSpec slow;
    slow.name = "s5";
    slow.config = NpuConfig::bwS5();
    slow.engines = 1;
    slow.engine.queueDepth = 8;
    slow.engine.defaultDeadlineMs = 20.0;
    co.groups = {fast, slow};
    co.weightCacheTiles = 64;
    return co;
}

TrafficOptions
chaosTraffic(double rps, double duration_s)
{
    TrafficOptions t;
    t.baseRps = rps;
    t.durationS = duration_s;
    t.seed = 42;
    t.mix.push_back(ModelMix{0, 8.0, 1, 10.0});
    t.mix.push_back(ModelMix{1, 2.0, 1, 80.0});
    t.mix.push_back(ModelMix{2, 1.0, 1, 0.0});
    return t;
}

void
addChaosModels(Cluster &c)
{
    c.addTimedModel("hot", 0.8, 24);
    c.addTimedModel("warm", 1.5, 24);
    c.addTimedModel("cold", 2.5, 40);
}

ChaosOptions
chaosOpts(double rate, double horizon_s, uint64_t seed)
{
    ChaosOptions o;
    o.faultRate = rate;
    o.horizonS = horizon_s;
    o.seed = seed;
    return o;
}

} // namespace

// --- ChaosSchedule ---

TEST(Chaos, GeneratedScheduleIsDeterministic)
{
    ChaosOptions o = chaosOpts(20, 0.5, 7);
    ChaosSchedule a = ChaosSchedule::generate(o, 3);
    ChaosSchedule b = ChaosSchedule::generate(o, 3);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a.toJson().dump(), b.toJson().dump());
    for (const FaultEvent &f : a.faults()) {
        EXPECT_LT(f.shard, 3u);
        EXPECT_GE(f.atS, 0.0);
        EXPECT_LT(f.atS, o.horizonS);
        EXPECT_GT(f.durationS, 0.0);
    }
    // Sorted by fire time — the replay consumes it in one pass.
    for (size_t i = 1; i < a.faults().size(); ++i)
        EXPECT_GE(a.faults()[i].atS, a.faults()[i - 1].atS);

    // Different seed, different schedule; disabled options, none.
    ChaosSchedule c = ChaosSchedule::generate(chaosOpts(20, 0.5, 8), 3);
    EXPECT_NE(a.toJson().dump(), c.toJson().dump());
    EXPECT_TRUE(ChaosSchedule::generate(ChaosOptions(), 3).empty());
}

TEST(Chaos, ChaosUniformIsAPureFunction)
{
    EXPECT_EQ(chaosUniform(1, 2, 3), chaosUniform(1, 2, 3));
    EXPECT_NE(chaosUniform(1, 2, 3), chaosUniform(1, 2, 4));
    EXPECT_NE(chaosUniform(1, 2, 3), chaosUniform(2, 2, 3));
    for (uint64_t s = 0; s < 200; ++s) {
        double u = chaosUniform(9, 1, s);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

// --- Zero-fault identity ---

TEST(Chaos, ZeroFaultScheduleIsByteIdenticalToNoSchedule)
{
    std::vector<ClusterRequest> trace =
        generateTraffic(chaosTraffic(2500, 0.3));

    Cluster plain(chaosClusterOptions());
    addChaosModels(plain);
    ClusterStats ps = plain.replay(trace);

    Cluster chaotic(chaosClusterOptions());
    addChaosModels(chaotic);
    chaotic.setChaosSchedule(ChaosSchedule()); // explicit empty schedule
    ClusterStats cs = chaotic.replay(trace);

    EXPECT_EQ(ps.toJson().dump(), cs.toJson().dump());
    EXPECT_EQ(plain.routeJson().dump(), chaotic.routeJson().dump());
    EXPECT_EQ(plain.sloJson().dump(), chaotic.sloJson().dump());
    for (unsigned e = 0; e < plain.engineCount(); ++e) {
        EXPECT_EQ(plain.engineFlightJson(e).dump(),
                  chaotic.engineFlightJson(e).dump());
        EXPECT_EQ(plain.engineSloJson(e).dump(),
                  chaotic.engineSloJson(e).dump());
    }
    EXPECT_EQ(chaotic.incidents().faults(), 0u);
    EXPECT_EQ(cs.failed, 0u);
    EXPECT_EQ(cs.unavailable, 0u);
}

// --- Chaotic replay determinism ---

TEST(Chaos, ChaoticHedgedReplayIsByteIdenticallyDeterministic)
{
    obs::SpanTracerOptions so;
    so.sampleEvery = 3;
    obs::SpanTracer tracer(so);
    ClusterOptions co = chaosClusterOptions();
    co.spanTracer = &tracer;
    co.chaos = chaosOpts(15, 0.4, 11);
    co.hedgeMs = 4.0;
    Cluster c(co);
    addChaosModels(c);
    std::vector<ClusterRequest> trace =
        generateTraffic(chaosTraffic(3000, 0.4));

    ClusterStats s1 = c.replay(trace);
    std::string route1 = c.routeJson().dump();
    std::string slo1 = c.sloJson().dump();
    std::string inc1 = c.incidentsJson().dump();
    std::string spans1 = obs::spanTreeJson(tracer).dump();
    std::vector<std::string> flight1;
    for (unsigned e = 0; e < c.engineCount(); ++e)
        flight1.push_back(c.engineFlightJson(e).dump());

    // The schedule actually bit: faults opened incidents and requests
    // were lost to them.
    EXPECT_GT(c.incidents().faults(), 0u);
    EXPECT_GT(s1.failed + s1.expired, 0u);
    EXPECT_GT(s1.hedged, 0u);

    ClusterStats s2 = c.replay(trace);
    EXPECT_EQ(s1.toJson().dump(), s2.toJson().dump());
    EXPECT_EQ(route1, c.routeJson().dump());
    EXPECT_EQ(slo1, c.sloJson().dump());
    EXPECT_EQ(inc1, c.incidentsJson().dump());
    EXPECT_EQ(spans1, obs::spanTreeJson(tracer).dump());
    for (unsigned e = 0; e < c.engineCount(); ++e)
        EXPECT_EQ(flight1[e], c.engineFlightJson(e).dump());

    // Every export still validates under chaos.
    Status st = cluster::validateRouteJson(c.routeJson());
    EXPECT_TRUE(st.ok()) << st.toString();
    st = obs::validateIncidentJson(c.incidentsJson());
    EXPECT_TRUE(st.ok()) << st.toString();
    st = obs::validateSpanTreeJson(obs::spanTreeJson(tracer));
    EXPECT_TRUE(st.ok()) << st.toString();
    for (unsigned e = 0; e < c.engineCount(); ++e) {
        EXPECT_TRUE(obs::validateFlightJson(c.engineFlightJson(e)).ok());
        EXPECT_TRUE(serve::validateSloJson(c.engineSloJson(e)).ok());
    }

    // Accounting closes: every submitted request lands in exactly one
    // terminal bucket (hedged requests count once, winner only).
    EXPECT_EQ(s1.submitted, trace.size());
    EXPECT_EQ(s1.completed + s1.shed + s1.rejected + s1.expired +
                  s1.failed + s1.unavailable,
              s1.submitted);
}

// --- Incident timelines ---

TEST(Chaos, CrashIncidentWalksAllFivePhasesAndChargesRewarm)
{
    ClusterOptions co = chaosClusterOptions();
    // A slow detector leaves a 10 ms window where the crashed shard
    // still takes traffic — wide enough that the seeded trace is
    // guaranteed to lose requests to it.
    co.healthDetectMs = 10.0;
    // Least-loaded spreads every model across all shards, so the
    // crashed shard is guaranteed traffic inside its down window.
    co.router.policy = RoutePolicy::LeastLoaded;
    Cluster c(co);
    addChaosModels(c);

    ChaosSchedule sched;
    FaultEvent crash;
    crash.cls = FaultClass::ReplicaCrash;
    crash.shard = 0;
    crash.atS = 0.05;
    crash.durationS = 0.03;
    sched.addFault(crash);
    c.setChaosSchedule(std::move(sched));

    ClusterStats s = c.replay(generateTraffic(chaosTraffic(2000, 0.3)));
    ASSERT_EQ(c.incidents().faults(), 1u);
    const obs::Incident &inc = c.incidents().incidents()[0];
    EXPECT_EQ(inc.cls, "crash");
    EXPECT_EQ(inc.shard, "s10/0");
    EXPECT_EQ(inc.group, "s10");

    // fault_injected -> detected -> evicted -> rewarm_started ->
    // recovered, stamps non-decreasing and detection lagging by the
    // configured health-check interval.
    ASSERT_EQ(inc.events.size(), 5u);
    EXPECT_EQ(inc.events[0].phase, obs::IncidentPhase::FaultInjected);
    EXPECT_EQ(inc.events[1].phase, obs::IncidentPhase::Detected);
    EXPECT_EQ(inc.events[2].phase, obs::IncidentPhase::Evicted);
    EXPECT_EQ(inc.events[3].phase, obs::IncidentPhase::RewarmStarted);
    EXPECT_EQ(inc.events[4].phase, obs::IncidentPhase::Recovered);
    EXPECT_EQ(inc.events[0].tUs, 50000u);
    EXPECT_EQ(inc.events[1].tUs, 60000u); // +healthDetectMs
    EXPECT_EQ(inc.events[2].tUs, inc.events[1].tUs); // evict on detect
    for (size_t i = 1; i < inc.events.size(); ++i)
        EXPECT_GE(inc.events[i].tUs, inc.events[i - 1].tUs);

    // The restart re-streamed the warm set through the DRAM model.
    EXPECT_GT(inc.reloadTiles, 0u);
    EXPECT_GT(inc.reloadUs, 0u);
    EXPECT_GT(inc.affected, 0u);
    EXPECT_GT(s.failed, 0u);

    Status st = obs::validateIncidentJson(c.incidentsJson());
    EXPECT_TRUE(st.ok()) << st.toString();
}

namespace {

/// A minimal bw.incident/1 document with injectable defects: the
/// terminal phase, an event stamp, and the recorded mttr_us.
Json
incidentDoc(const char *terminal, uint64_t detect_us, uint64_t mttr_us)
{
    return Json::parse(detail::format(
        R"({"schema":"bw.incident/1","faults":1,"incidents":[{)"
        R"("id":1,"class":"crash","shard":"s10/0","group":"s10",)"
        R"("affected":3,"reload_tiles":24,"reload_us":180,)"
        R"("mttr_us":%llu,"events":[)"
        R"({"phase":"fault_injected","t_us":1000},)"
        R"({"phase":"detected","t_us":%llu},)"
        R"({"phase":"%s","t_us":5000}]}]})",
        static_cast<unsigned long long>(mttr_us),
        static_cast<unsigned long long>(detect_us), terminal));
}

} // namespace

TEST(Incident, ValidatorRejectsTampering)
{
    // The log builder itself produces a valid document.
    obs::IncidentLog log;
    uint64_t id = log.open("crash", "s10/0", "s10", 1000);
    log.event(id, obs::IncidentPhase::Detected, 2000);
    log.event(id, obs::IncidentPhase::Evicted, 2000);
    log.event(id, obs::IncidentPhase::RewarmStarted, 3000);
    log.event(id, obs::IncidentPhase::Recovered, 5000);
    log.addAffected(id);
    log.setReload(id, 24, 180);
    Json doc = obs::incidentJson(log);
    Status st = obs::validateIncidentJson(doc);
    EXPECT_TRUE(st.ok()) << st.toString();
    EXPECT_EQ(doc.find("incidents")->at(0).find("mttr_us")->asInt(),
              4000);

    EXPECT_TRUE(
        obs::validateIncidentJson(incidentDoc("recovered", 2000, 4000))
            .ok());
    EXPECT_TRUE(
        obs::validateIncidentJson(incidentDoc("evicted", 2000, 4000))
            .ok());

    Json bad = doc;
    bad.set("schema", "bw.incident/2");
    EXPECT_FALSE(obs::validateIncidentJson(bad).ok());

    bad = doc;
    bad.set("faults", static_cast<uint64_t>(7));
    EXPECT_FALSE(obs::validateIncidentJson(bad).ok());

    // Stamps must be monotone in virtual time.
    EXPECT_FALSE(
        obs::validateIncidentJson(incidentDoc("recovered", 9000, 4000))
            .ok());

    // A fault with no terminal recovery/eviction is unresolved.
    EXPECT_FALSE(
        obs::validateIncidentJson(
            incidentDoc("rewarm_started", 2000, 4000))
            .ok());

    // mttr_us must equal the first-to-last stamp gap.
    EXPECT_FALSE(
        obs::validateIncidentJson(incidentDoc("recovered", 2000, 1))
            .ok());
}

// --- Health-aware routing ---

TEST(Router, LoadPoliciesNeverRouteToEvictedShard)
{
    for (RoutePolicy p :
         {RoutePolicy::LeastLoaded, RoutePolicy::SloAware}) {
        RouterOptions o;
        o.policy = p;
        Router r(o, 3, 3);
        std::vector<EngineLoad> loads(3);
        for (auto &l : loads)
            l.queueCapacity = 8;
        loads[0].healthy = false; // idle but evicted: the load trap
        loads[1].queued = 3;
        loads[2].queued = 5;
        for (uint64_t s = 1; s <= 32; ++s)
            EXPECT_NE(r.route(s, 0, "m", 0, loads), 0) << "policy "
                                                       << routePolicyName(p);
        EXPECT_EQ(r.route(100, 0, "m", 0, loads), 1);
    }
}

TEST(Router, ConsistentHashRehashesDeterministically)
{
    RouterOptions o;
    o.policy = RoutePolicy::ConsistentHash;
    Router a(o, 4, 1), b(o, 4, 1);
    std::vector<EngineLoad> loads(4);

    int32_t home = a.route(1, 0, "gru-hot", 0, loads);
    ASSERT_GE(home, 0);

    // Evict the home engine: the ring walk must land elsewhere, and two
    // independent routers must agree on the re-placement.
    loads[static_cast<size_t>(home)].healthy = false;
    int32_t moved_a = a.route(2, 0, "gru-hot", 0, loads);
    int32_t moved_b = b.route(1, 0, "gru-hot", 0, loads);
    ASSERT_GE(moved_a, 0);
    EXPECT_NE(moved_a, home);
    EXPECT_EQ(moved_a, moved_b);

    // Recovery restores the original placement (stable ring).
    loads[static_cast<size_t>(home)].healthy = true;
    EXPECT_EQ(a.route(3, 0, "gru-hot", 0, loads), home);
}

TEST(Router, AllEvictedReportsUnavailable)
{
    for (RoutePolicy p :
         {RoutePolicy::ConsistentHash, RoutePolicy::LeastLoaded,
          RoutePolicy::SloAware}) {
        RouterOptions o;
        o.policy = p;
        Router r(o, 2, 1);
        std::vector<EngineLoad> loads(2);
        for (auto &l : loads)
            l.healthy = false;
        EXPECT_EQ(r.route(1, 0, "m", 0, loads), -2);
        EXPECT_EQ(r.unavailable(), 1u);
        Status st = validateRouteJson(r.decisionsJson());
        EXPECT_TRUE(st.ok()) << st.toString();
    }
}

TEST(Cluster, FullyEvictedModelReturnsUnavailableNamingIt)
{
    Cluster c(chaosClusterOptions());
    addChaosModels(c);
    c.start();
    for (unsigned e = 0; e < c.engineCount(); ++e)
        c.setShardHealthy(e, false);
    Expected<std::future<serve::Response>> f = c.submitTimed(0, 1);
    ASSERT_FALSE(f.ok());
    EXPECT_EQ(f.status().code(), StatusCode::Unavailable);
    EXPECT_NE(f.status().message().find("hot"), std::string::npos)
        << f.status().message();

    // One shard recovering restores service.
    c.setShardHealthy(1, true);
    Expected<std::future<serve::Response>> ok = c.submitTimed(0, 1);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(ok.value().get().status.ok());
    c.drain();
}

// --- Hedged requests ---

TEST(Cluster, HedgedSpansHaveExactlyOneWinner)
{
    obs::SpanTracerOptions so;
    so.sampleEvery = 1;
    obs::SpanTracer tracer(so);
    ClusterOptions co = chaosClusterOptions();
    co.spanTracer = &tracer;
    co.hedgeMs = 0.0; // hedge every routed request
    Cluster c(co);
    addChaosModels(c);
    ClusterStats s = c.replay(generateTraffic(chaosTraffic(1500, 0.15)));
    EXPECT_GT(s.hedged, 0u);
    EXPECT_GT(s.hedgeWins, 0u);
    EXPECT_LE(s.hedgeWins, s.hedged);

    Json doc = obs::spanTreeJson(tracer);
    Status st = obs::validateSpanTreeJson(doc);
    ASSERT_TRUE(st.ok()) << st.toString();
    const Json *traces = doc.find("traces");
    ASSERT_GT(traces->size(), 0u);
    size_t hedged_traces = 0;
    for (size_t i = 0; i < traces->size(); ++i) {
        const Json *root = traces->at(i).find("root");
        ASSERT_NE(root, nullptr);
        if (root->find("name")->asString() != "route")
            continue;
        const Json *kids = root->find("children");
        if (!kids || kids->size() == 0 ||
            kids->at(0).find("name")->asString().rfind("hedge[", 0) != 0)
            continue; // shed request or unhedged
        ++hedged_traces;
        ASSERT_EQ(kids->size(), 2u);
        EXPECT_EQ(kids->at(0).find("name")->asString(), "hedge[0]");
        EXPECT_EQ(kids->at(1).find("name")->asString(), "hedge[1]");
        // First-wins cancellation: both attempts cannot complete.
        size_t ok_attempts = 0;
        for (size_t k = 0; k < 2; ++k)
            ok_attempts +=
                kids->at(k).find("outcome")->asString() == "ok";
        EXPECT_LE(ok_attempts, 1u);
    }
    EXPECT_GT(hedged_traces, 0u);
}

TEST(Cluster, HedgingRescuesRequestsFromACrashedShard)
{
    // One engine crashes for the first quarter of the run. Before the
    // health check notices, every request placed there is lost —
    // unless a hedge re-dispatches it to a healthy sibling.
    ChaosSchedule sched;
    FaultEvent crash;
    crash.cls = FaultClass::ReplicaCrash;
    crash.shard = 0;
    crash.atS = 0.0;
    crash.durationS = 0.05;
    sched.addFault(crash);
    std::vector<ClusterRequest> trace =
        generateTraffic(chaosTraffic(2000, 0.2));

    ClusterOptions plain_opts = chaosClusterOptions();
    plain_opts.healthDetectMs = 40.0; // slow detector: hedges must save us
    Cluster plain(plain_opts);
    addChaosModels(plain);
    plain.setChaosSchedule(sched);
    ClusterStats ps = plain.replay(trace);

    ClusterOptions hedged_opts = plain_opts;
    hedged_opts.hedgeMs = 2.0;
    Cluster hedged(hedged_opts);
    addChaosModels(hedged);
    hedged.setChaosSchedule(sched);
    ClusterStats hs = hedged.replay(trace);

    EXPECT_GT(ps.failed, 0u);
    EXPECT_GT(hs.hedgeWins, 0u);
    EXPECT_GT(hs.goodput, ps.goodput);
    EXPECT_LT(hs.failed, ps.failed);
}

// --- Replay-side eviction ---

TEST(Cluster, ReplayCountsUnavailableWhenEveryShardIsDown)
{
    // Crash all three shards over one long overlapping window: once
    // detection evicts them, the router has nowhere to place work.
    ClusterOptions co = chaosClusterOptions();
    co.healthDetectMs = 1.0;
    Cluster c(co);
    addChaosModels(c);
    ChaosSchedule sched;
    for (unsigned e = 0; e < 3; ++e) {
        FaultEvent f;
        f.cls = FaultClass::ReplicaCrash;
        f.shard = e;
        f.atS = 0.02;
        f.durationS = 0.2;
        sched.addFault(f);
    }
    c.setChaosSchedule(std::move(sched));
    ClusterStats s = c.replay(generateTraffic(chaosTraffic(2000, 0.2)));
    EXPECT_GT(s.unavailable, 0u);
    EXPECT_EQ(c.incidents().faults(), 3u);
    Status st = cluster::validateRouteJson(c.routeJson());
    EXPECT_TRUE(st.ok()) << st.toString();
    st = obs::validateIncidentJson(c.incidentsJson());
    EXPECT_TRUE(st.ok()) << st.toString();
}
