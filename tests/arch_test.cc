/**
 * @file
 * Tests of the architectural configuration: the Table III presets'
 * derived quantities (MAC counts, peak TFLOPS), validation, and the
 * memory-space metadata.
 */

#include <gtest/gtest.h>

#include "arch/mem_id.h"
#include "arch/npu_config.h"
#include "common/logging.h"

namespace bw {
namespace {

TEST(NpuConfig, BwS10MatchesPaper)
{
    NpuConfig c = NpuConfig::bwS10();
    c.validate();
    EXPECT_EQ(c.nativeDim, 400u);
    EXPECT_EQ(c.lanes, 40u);
    EXPECT_EQ(c.tileEngines, 6u);
    EXPECT_EQ(c.mrfSize, 306u);
    EXPECT_EQ(c.mfus, 2u);
    // "scaled up to 96,000 multiply-accumulate units" / Table V setup.
    EXPECT_EQ(c.macCount(), 96000u);
    // Table III: 48 peak TFLOPS at 250 MHz.
    EXPECT_DOUBLE_EQ(c.peakTflops(), 48.0);
    EXPECT_EQ(c.nativeVectorBeats(), 10u);
    EXPECT_EQ(c.precision, bfp152());
}

TEST(NpuConfig, BwA10MatchesPaper)
{
    NpuConfig c = NpuConfig::bwA10();
    c.validate();
    EXPECT_EQ(c.macCount(), 8u * 128 * 16);
    EXPECT_NEAR(c.peakTflops(), 9.8, 0.05);
    EXPECT_EQ(c.nativeVectorBeats(), 8u);
}

TEST(NpuConfig, BwS5MatchesPaper)
{
    NpuConfig c = NpuConfig::bwS5();
    c.validate();
    EXPECT_EQ(c.macCount(), 6000u);
    EXPECT_DOUBLE_EQ(c.peakTflops(), 2.4);
}

TEST(NpuConfig, CnnVariant)
{
    NpuConfig c = NpuConfig::bwCnnA10();
    c.validate();
    EXPECT_EQ(c.precision, bfp155()); // Table VI: BFP (1s.5e.5m)
    EXPECT_GT(c.initialVrfSize, NpuConfig::bwA10().initialVrfSize);
}

TEST(NpuConfig, ValidateRejectsBadShapes)
{
    NpuConfig c = NpuConfig::bwS10();
    c.lanes = 0;
    EXPECT_THROW(c.validate(), Error);

    c = NpuConfig::bwS10();
    c.lanes = 401; // lanes > native dim
    EXPECT_THROW(c.validate(), Error);

    c = NpuConfig::bwS10();
    c.lanes = 33; // native dim not a multiple of lanes
    EXPECT_THROW(c.validate(), Error);

    c = NpuConfig::bwS10();
    c.mfus = 0;
    EXPECT_THROW(c.validate(), Error);

    c = NpuConfig::bwS10();
    c.clockMhz = 0;
    EXPECT_THROW(c.validate(), Error);
}

TEST(NpuConfig, MrfIndexSpaceDefault)
{
    NpuConfig c = NpuConfig::bwS10();
    EXPECT_EQ(c.mrfEntries(), 4 * 306u);
    c.mrfIndexSpace = 1000;
    EXPECT_EQ(c.mrfEntries(), 1000u);
}

TEST(MemId, NamesRoundTrip)
{
    for (int i = 0; i < static_cast<int>(MemId::NumMemIds); ++i) {
        MemId id = static_cast<MemId>(i);
        EXPECT_EQ(parseMemId(memIdMnemonic(id)), id);
        EXPECT_EQ(parseMemId(memIdName(id)), id);
    }
    EXPECT_THROW(parseMemId("bogus"), Error);
}

TEST(MemId, Capabilities)
{
    EXPECT_TRUE(isVrf(MemId::InitialVrf));
    EXPECT_TRUE(isVrf(MemId::AddSubVrf));
    EXPECT_TRUE(isVrf(MemId::MultiplyVrf));
    EXPECT_FALSE(isVrf(MemId::MatrixRf));
    EXPECT_FALSE(isVrf(MemId::NetQ));

    EXPECT_TRUE(isVectorReadable(MemId::NetQ));
    EXPECT_TRUE(isVectorReadable(MemId::Dram));
    EXPECT_FALSE(isVectorReadable(MemId::MatrixRf));
    EXPECT_TRUE(isVectorWritable(MemId::NetQ));
    EXPECT_FALSE(isVectorWritable(MemId::MatrixRf));
}

} // namespace
} // namespace bw
