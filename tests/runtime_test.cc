/**
 * @file
 * Serving-runtime tests: arrival generation, unbatched vs batched
 * service disciplines (the Section VII-B3 latency/utilization trade),
 * and the bidirectional multi-FPGA deployment.
 */

#include <gtest/gtest.h>

#include "runtime/multi_fpga.h"
#include "runtime/serving.h"

namespace bw {
namespace {

TEST(Arrivals, PoissonRateRoughlyHonored)
{
    Rng rng(1);
    auto a = poissonArrivals(1000.0, 10.0, rng);
    EXPECT_NEAR(static_cast<double>(a.size()), 10000.0, 500.0);
    for (size_t i = 1; i < a.size(); ++i)
        EXPECT_GT(a[i], a[i - 1]);
    EXPECT_LT(a.back(), 10.0);
}

TEST(ServeUnbatched, LowLoadLatencyIsServicePlusNetwork)
{
    // 1 request per 100ms, service 2ms: no queueing.
    std::vector<double> arrivals;
    for (int i = 0; i < 50; ++i)
        arrivals.push_back(i * 0.1);
    ServeStats s = serveUnbatched(arrivals, 2.0, 0.1);
    EXPECT_EQ(s.requests, 50u);
    EXPECT_NEAR(s.meanLatencyMs, 2.1, 0.01);
    EXPECT_NEAR(s.p99LatencyMs, 2.1, 0.01);
}

TEST(ServeUnbatched, OverloadQueues)
{
    // Requests every 1ms, service 2ms: the queue grows.
    std::vector<double> arrivals;
    for (int i = 0; i < 100; ++i)
        arrivals.push_back(i * 0.001);
    ServeStats s = serveUnbatched(arrivals, 2.0, 0.0);
    EXPECT_GT(s.maxLatencyMs, 90.0);
    EXPECT_NEAR(s.throughputRps, 500.0, 10.0); // 1/service
}

TEST(ServeBatched, FormsBatchesUnderLoad)
{
    // Requests every 0.25ms, batch up to 8 with a 2ms timeout.
    std::vector<double> arrivals;
    for (int i = 0; i < 400; ++i)
        arrivals.push_back(i * 0.00025);
    ServeStats s = serveBatched(arrivals, 8, 2.0, [](unsigned batch) {
        return 1.0 + 0.1 * batch; // batch amortizes well
    });
    EXPECT_GT(s.meanBatch, 4.0);
    EXPECT_EQ(s.requests, 400u);
}

TEST(ServeBatched, TimeoutAddsLatencyAtLowLoad)
{
    // Sparse arrivals: each request waits out the full timeout.
    std::vector<double> arrivals;
    for (int i = 0; i < 20; ++i)
        arrivals.push_back(i * 0.5);
    double timeout_ms = 5.0;
    ServeStats s = serveBatched(arrivals, 16, timeout_ms,
                                [](unsigned) { return 2.0; });
    EXPECT_NEAR(s.meanBatch, 1.0, 0.01);
    EXPECT_NEAR(s.meanLatencyMs, timeout_ms + 2.0, 0.01);

    // The unbatched discipline serves the same trace 5ms sooner.
    ServeStats u = serveUnbatched(arrivals, 2.0, 0.0);
    EXPECT_LT(u.meanLatencyMs + 4.9, s.meanLatencyMs);
}

TEST(ServeBatched, FullBatchLaunchesEarly)
{
    // A burst of exactly max_batch launches without waiting out the
    // timeout.
    std::vector<double> arrivals(8, 0.0);
    ServeStats s = serveBatched(arrivals, 8, 100.0,
                                [](unsigned) { return 1.0; });
    EXPECT_NEAR(s.meanLatencyMs, 1.0, 0.01);
    EXPECT_NEAR(s.meanBatch, 8.0, 0.01);
}

TEST(ServeBatched, BatchFillsExactlyAtTrigger)
{
    // The third request lands exactly on the timeout trigger: it still
    // joins the batch, and the full batch launches on its arrival
    // rather than waiting out the timer.
    std::vector<double> arrivals{0.0, 0.001, 0.002};
    ServeStats s = serveBatched(arrivals, 3, 2.0,
                                [](unsigned) { return 1.0; });
    EXPECT_EQ(s.requests, 3u);
    EXPECT_NEAR(s.meanBatch, 3.0, 1e-9);
    // Launch at t=2ms, done at 3ms: latencies 3, 2, 1 ms.
    EXPECT_NEAR(s.maxLatencyMs, 3.0, 1e-9);
    EXPECT_NEAR(s.meanLatencyMs, 2.0, 1e-9);
}

TEST(ServeBatched, ArrivalJustAfterTimeoutStartsNextBatch)
{
    // The second request arrives 1ms after the first batch's trigger:
    // it must not ride along, and its own timeout clock starts at its
    // arrival.
    std::vector<double> arrivals{0.0, 0.003};
    ServeStats s = serveBatched(arrivals, 8, 2.0,
                                [](unsigned) { return 1.0; });
    EXPECT_EQ(s.requests, 2u);
    EXPECT_NEAR(s.meanBatch, 1.0, 1e-9);
    // Both serve alone: trigger + service = 2 + 1 ms each.
    EXPECT_NEAR(s.meanLatencyMs, 3.0, 1e-9);
    EXPECT_NEAR(s.maxLatencyMs, 3.0, 1e-9);
}

TEST(ServeBatched, SingleRequestWaitsOutTheTimeout)
{
    std::vector<double> arrivals{0.0};
    ServeStats s = serveBatched(arrivals, 16, 5.0,
                                [](unsigned) { return 2.0; });
    EXPECT_EQ(s.requests, 1u);
    EXPECT_NEAR(s.meanBatch, 1.0, 1e-9);
    EXPECT_NEAR(s.meanLatencyMs, 7.0, 1e-9);
    EXPECT_NEAR(s.p99LatencyMs, 7.0, 1e-9);
}

TEST(ServeBatched, MaxBatchOneEqualsUnbatched)
{
    // With max_batch=1 and no timeout the batching queue degenerates
    // to the BW discipline exactly.
    Rng rng(3);
    auto arrivals = poissonArrivals(400.0, 2.0, rng);
    const double service_ms = 2.0;
    ServeStats b = serveBatched(arrivals, 1, 0.0,
                                [&](unsigned) { return service_ms; });
    ServeStats u = serveUnbatched(arrivals, service_ms, 0.0);
    ASSERT_EQ(b.requests, u.requests);
    EXPECT_NEAR(b.meanLatencyMs, u.meanLatencyMs, 1e-9);
    EXPECT_NEAR(b.p50LatencyMs, u.p50LatencyMs, 1e-9);
    EXPECT_NEAR(b.p99LatencyMs, u.p99LatencyMs, 1e-9);
    EXPECT_NEAR(b.maxLatencyMs, u.maxLatencyMs, 1e-9);
    EXPECT_NEAR(b.throughputRps, u.throughputRps, 1e-9);
    EXPECT_NEAR(b.meanBatch, 1.0, 1e-12);
}

TEST(ServeStats, ToJsonRoundTripsSummary)
{
    std::vector<double> arrivals{0.0, 0.1, 0.2};
    ServeStats s = serveUnbatched(arrivals, 2.0, 0.1);
    Json j = s.toJson();
    EXPECT_EQ(j.find("requests")->asInt(), 3);
    EXPECT_NEAR(j.find("mean_latency_ms")->asDouble(), s.meanLatencyMs,
                1e-12);
    EXPECT_NEAR(j.find("p99_latency_ms")->asDouble(), s.p99LatencyMs,
                1e-12);
    EXPECT_NEAR(j.find("throughput_rps")->asDouble(), s.throughputRps,
                1e-12);
}

TEST(MultiFpga, PinningCapacity)
{
    Rng rng(1);
    NpuConfig cfg = NpuConfig::bwS10();
    // GRU-2816 pins on one S10 (needs ~298 of 306 tile equivalents).
    GirGraph fits = makeGru(randomGruWeights(2816, 2816, rng));
    EXPECT_EQ(fpgasNeededForPinning(fits, cfg), 1u);
    // An LSTM-4096 (8 x 4096^2 elements = ~839 tiles) needs three.
    GirGraph big = makeLstm(randomLstmWeights(4096, 4096, rng));
    EXPECT_EQ(fpgasNeededForPinning(big, cfg), 3u);
}

TEST(MultiFpga, BidirectionalGruParallelism)
{
    Rng rng(2);
    NpuConfig cfg = NpuConfig::bwS10();
    cfg.nativeDim = 100;
    cfg.lanes = 20;
    cfg.mrfSize = 128;
    GruWeights fwd = randomGruWeights(400, 400, rng);
    GruWeights bwd = randomGruWeights(400, 400, rng);

    BidirServeResult r = serveBidirectionalGru(fwd, bwd, 20, cfg, 0.02);
    double fwd_ms = cyclesToMs(r.forward.cycles, cfg.clockMhz);
    double bwd_ms = cyclesToMs(r.backward.cycles, cfg.clockMhz);
    // Two directions run in parallel: latency ~ the slower one, not
    // the sum.
    EXPECT_NEAR(r.latencyMs, std::max(fwd_ms, bwd_ms) + 0.02, 1e-9);
    EXPECT_LT(r.latencyMs, fwd_ms + bwd_ms);
}

} // namespace
} // namespace bw
