/**
 * @file
 * Functional simulator tests: architectural storage, chain execution
 * semantics (BFP matrix products, float16 point-wise ops), mega-SIMD
 * rows/cols scaling, iteration, multicast, and network/matrix moves.
 *
 * Tests use a small NPU configuration (native dim 8) with a wide
 * mantissa so quantization error is negligible where exactness is
 * asserted, and the BW_S10 precision where BFP behaviour is the point.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "func/machine.h"
#include "isa/builder.h"
#include "tensor/tensor.h"

namespace bw {
namespace {

/** Tiny config: N=8, 2 lanes, high-precision BFP. */
NpuConfig
tinyConfig(int mant_bits = 7)
{
    NpuConfig c;
    c.name = "tiny";
    c.nativeDim = 8;
    c.lanes = 2;
    c.tileEngines = 2;
    c.mrfSize = 64;
    c.mrfIndexSpace = 256;
    c.initialVrfSize = 64;
    c.addSubVrfSize = 64;
    c.multiplyVrfSize = 64;
    c.precision = BfpFormat{1, 5, mant_bits};
    c.dramBytes = 1 << 20;
    return c;
}

TEST(VectorRegFile, ReadWriteRoundsToHalf)
{
    VectorRegFile vrf(4, 8, "t");
    FVec v(8, 1.0f / 3.0f);
    vrf.write(1, v);
    FVec r = vrf.read(1, 1);
    // Stored value is float16-rounded, not the float32 original.
    EXPECT_NE(r[0], 1.0f / 3.0f);
    EXPECT_NEAR(r[0], 1.0f / 3.0f, 1e-3);
}

TEST(VectorRegFile, RangeChecked)
{
    VectorRegFile vrf(4, 8, "t");
    EXPECT_THROW(vrf.read(4, 1), Error);
    EXPECT_THROW(vrf.read(3, 2), Error);
    FVec v(8, 0.0f);
    EXPECT_THROW(vrf.write(4, v), Error);
}

TEST(MatrixRegFile, UninitializedReadFails)
{
    MatrixRegFile mrf(4, 8);
    EXPECT_THROW(mrf.read(0), Error);
    EXPECT_FALSE(mrf.isWritten(0));
}

TEST(FuncMachine, CopyChainThroughNetq)
{
    FuncMachine m(tinyConfig());
    FVec in = {1, 2, 3, 4, 5, 6, 7, 8};
    m.pushInput(in);

    ProgramBuilder b;
    b.vRd(MemId::NetQ).vWr(MemId::InitialVrf, 3).vWr(MemId::NetQ);
    m.run(b.build());

    EXPECT_EQ(m.peekVrf(MemId::InitialVrf, 3), in);
    EXPECT_EQ(m.popOutput(1), in);
}

TEST(FuncMachine, MvMulMatchesGemv)
{
    NpuConfig cfg = tinyConfig(10); // near-exact quantization
    FuncMachine m(cfg);
    Rng rng(1);
    FMat w(8, 8);
    fillUniform(w, rng, -1.0f, 1.0f);
    FVec x(8);
    fillUniform(x, rng, -1.0f, 1.0f);

    m.loadMrfTile(0, w);
    m.loadVrf(MemId::InitialVrf, 0, x);

    ProgramBuilder b;
    b.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 1);
    m.run(b.build());

    FVec got = m.peekVrf(MemId::InitialVrf, 1);
    FVec want = gemvRef(w, x);
    EXPECT_LT(maxAbsDiff(got, want), 2e-2);
}

TEST(FuncMachine, MvMulQuantizesWithNarrowBfp)
{
    // With a 2-bit mantissa the result should deviate measurably but
    // stay correlated with the exact product.
    NpuConfig cfg = tinyConfig(2);
    FuncMachine m(cfg);
    Rng rng(3);
    FMat w(8, 8);
    fillUniform(w, rng, -1.0f, 1.0f);
    FVec x(8);
    fillUniform(x, rng, -1.0f, 1.0f);
    m.loadMrfTile(0, w);
    m.loadVrf(MemId::InitialVrf, 0, x);
    ProgramBuilder b;
    b.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 1);
    m.run(b.build());
    FVec got = m.peekVrf(MemId::InitialVrf, 1);
    FVec want = gemvRef(w, x);
    double diff = maxAbsDiff(got, want);
    EXPECT_GT(diff, 1e-4); // quantization is visible...
    EXPECT_LT(diff, 1.5);  // ...but bounded
}

TEST(FuncMachine, MegaSimdTiledMvMul)
{
    // rows=2, cols=2: a 16x16 logical matrix over 4 MRF tiles.
    NpuConfig cfg = tinyConfig(10);
    FuncMachine m(cfg);
    Rng rng(5);
    FMat w(16, 16);
    fillUniform(w, rng, -1.0f, 1.0f);
    FVec x(16);
    fillUniform(x, rng, -1.0f, 1.0f);

    // Tile layout: entry (r, c) at addr r*2 + c.
    for (int r = 0; r < 2; ++r) {
        for (int c = 0; c < 2; ++c) {
            FMat tile(8, 8);
            for (int i = 0; i < 8; ++i)
                for (int j = 0; j < 8; ++j)
                    tile(i, j) = w(r * 8 + i, c * 8 + j);
            m.loadMrfTile(r * 2 + c, tile);
        }
    }
    m.loadVrf(MemId::InitialVrf, 0, x);

    ProgramBuilder b;
    b.tile(2, 2);
    b.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 4);
    m.run(b.build());

    FVec got = m.peekVrf(MemId::InitialVrf, 4, 2);
    FVec want = gemvRef(w, x);
    EXPECT_LT(maxAbsDiff(got, want), 5e-2);
}

TEST(FuncMachine, PointwiseOps)
{
    FuncMachine m(tinyConfig());
    FVec a = {1, -2, 3, -4, 0.5f, -0.5f, 2, -1};
    FVec o = {1, 1, 1, 1, 2, 2, 2, 2};
    m.loadVrf(MemId::InitialVrf, 0, a);
    m.loadVrf(MemId::AddSubVrf, 0, o);
    m.loadVrf(MemId::MultiplyVrf, 0, o);

    auto run_one = [&](ProgramBuilder &b) {
        m.run(b.build());
        return m.peekVrf(MemId::InitialVrf, 1);
    };

    {
        ProgramBuilder b;
        b.vRd(MemId::InitialVrf, 0).vvAdd(0).vWr(MemId::InitialVrf, 1);
        FVec r = run_one(b);
        for (int i = 0; i < 8; ++i)
            EXPECT_FLOAT_EQ(r[i], a[i] + o[i]);
    }
    {
        ProgramBuilder b;
        b.vRd(MemId::InitialVrf, 0).vvASubB(0).vWr(MemId::InitialVrf, 1);
        FVec r = run_one(b);
        for (int i = 0; i < 8; ++i)
            EXPECT_FLOAT_EQ(r[i], a[i] - o[i]);
    }
    {
        ProgramBuilder b;
        b.vRd(MemId::InitialVrf, 0).vvBSubA(0).vWr(MemId::InitialVrf, 1);
        FVec r = run_one(b);
        for (int i = 0; i < 8; ++i)
            EXPECT_FLOAT_EQ(r[i], o[i] - a[i]);
    }
    {
        ProgramBuilder b;
        b.vRd(MemId::InitialVrf, 0).vvMax(0).vWr(MemId::InitialVrf, 1);
        FVec r = run_one(b);
        for (int i = 0; i < 8; ++i)
            EXPECT_FLOAT_EQ(r[i], std::max(a[i], o[i]));
    }
    {
        ProgramBuilder b;
        b.vRd(MemId::InitialVrf, 0).vvMul(0).vWr(MemId::InitialVrf, 1);
        FVec r = run_one(b);
        for (int i = 0; i < 8; ++i)
            EXPECT_FLOAT_EQ(r[i], a[i] * o[i]);
    }
    {
        ProgramBuilder b;
        b.vRd(MemId::InitialVrf, 0).vRelu().vWr(MemId::InitialVrf, 1);
        FVec r = run_one(b);
        for (int i = 0; i < 8; ++i)
            EXPECT_FLOAT_EQ(r[i], std::max(a[i], 0.0f));
    }
    {
        ProgramBuilder b;
        b.vRd(MemId::InitialVrf, 0).vSigm().vWr(MemId::InitialVrf, 1);
        FVec r = run_one(b);
        for (int i = 0; i < 8; ++i)
            EXPECT_NEAR(r[i], 1.0f / (1.0f + std::exp(-a[i])), 1e-3);
    }
    {
        ProgramBuilder b;
        b.vRd(MemId::InitialVrf, 0).vTanh().vWr(MemId::InitialVrf, 1);
        FVec r = run_one(b);
        for (int i = 0; i < 8; ++i)
            EXPECT_NEAR(r[i], std::tanh(a[i]), 1e-3);
    }
}

TEST(FuncMachine, IteratedChainSweepsAddresses)
{
    FuncMachine m(tinyConfig());
    // Four input vectors at ivrf[0..3]; relu each into ivrf[10..13].
    for (uint32_t i = 0; i < 4; ++i) {
        FVec v(8, static_cast<float>(i) - 1.5f);
        m.loadVrf(MemId::InitialVrf, i, v);
    }
    ProgramBuilder b;
    b.sWr(ScalarReg::Iterations, 4);
    b.vRd(MemId::InitialVrf, 0).vRelu().vWr(MemId::InitialVrf, 10);
    m.run(b.build());
    for (uint32_t i = 0; i < 4; ++i) {
        float want = std::max(static_cast<float>(i) - 1.5f, 0.0f);
        EXPECT_FLOAT_EQ(m.peekVrf(MemId::InitialVrf, 10 + i)[0], want);
    }
}

TEST(FuncMachine, IteratedMvMulKeepsWeightsFixed)
{
    NpuConfig cfg = tinyConfig(10);
    FuncMachine m(cfg);
    Rng rng(9);
    FMat w(8, 8);
    fillUniform(w, rng, -1.0f, 1.0f);
    m.loadMrfTile(0, w);
    FVec bias(8, 0.5f);
    m.loadVrf(MemId::AddSubVrf, 0, bias);

    FVec x0(8), x1(8);
    fillUniform(x0, rng);
    fillUniform(x1, rng);
    m.loadVrf(MemId::InitialVrf, 0, x0);
    m.loadVrf(MemId::InitialVrf, 1, x1);

    ProgramBuilder b;
    b.sWr(ScalarReg::Iterations, 2);
    b.vRd(MemId::InitialVrf, 0)
        .mvMul(0)
        .vvAdd(0) // bias: fixed across iterations
        .vWr(MemId::InitialVrf, 8);
    m.run(b.build());

    FVec want0 = addRef(gemvRef(w, x0), bias);
    FVec want1 = addRef(gemvRef(w, x1), bias);
    EXPECT_LT(maxAbsDiff(m.peekVrf(MemId::InitialVrf, 8), want0), 2e-2);
    EXPECT_LT(maxAbsDiff(m.peekVrf(MemId::InitialVrf, 9), want1), 2e-2);
}

TEST(FuncMachine, MatrixChainFromNetqAndDram)
{
    NpuConfig cfg = tinyConfig(10);
    FuncMachine m(cfg);
    Rng rng(11);
    FMat w(8, 8);
    fillUniform(w, rng, -1.0f, 1.0f);

    // NetQ -> MRF (weight initialization over the network).
    m.pushInputTile(w);
    ProgramBuilder b1;
    b1.mRd(MemId::NetQ).mWr(MemId::MatrixRf, 2);
    m.run(b1.build());
    EXPECT_LT(maxAbsDiff(m.peekMrfTile(2).data(), w.data()), 1e-2);

    // DRAM -> MRF and MRF-backed DRAM round trip.
    m.loadDramTile(7, w);
    ProgramBuilder b2;
    b2.mRd(MemId::Dram, 7).mWr(MemId::MatrixRf, 3);
    m.run(b2.build());
    EXPECT_LT(maxAbsDiff(m.peekMrfTile(3).data(), w.data()), 1e-2);
}

TEST(FuncMachine, DramVectorPath)
{
    FuncMachine m(tinyConfig());
    FVec v = {1, 2, 3, 4, 5, 6, 7, 8};
    m.loadDramVector(5, v);
    ProgramBuilder b;
    b.vRd(MemId::Dram, 5).vWr(MemId::Dram, 9).vWr(MemId::InitialVrf, 0);
    m.run(b.build());
    EXPECT_EQ(m.peekVrf(MemId::InitialVrf, 0), v);
}

TEST(FuncMachine, NetqUnderrunFails)
{
    FuncMachine m(tinyConfig());
    ProgramBuilder b;
    b.vRd(MemId::NetQ).vWr(MemId::InitialVrf, 0);
    EXPECT_THROW(m.run(b.build()), Error);
}

TEST(FuncMachine, ValidationRunsBeforeExecution)
{
    FuncMachine m(tinyConfig());
    ProgramBuilder b;
    b.vRd(MemId::InitialVrf, 0)
        .vTanh()
        .vSigm()
        .vRelu() // needs 3 MFUs, config has 2
        .vWr(MemId::InitialVrf, 1);
    EXPECT_THROW(m.run(b.build()), Error);
}

TEST(FuncMachine, StatePersistsAcrossRuns)
{
    FuncMachine m(tinyConfig());
    FVec v(8, 2.0f);
    m.loadVrf(MemId::InitialVrf, 0, v);
    ProgramBuilder b;
    b.vRd(MemId::InitialVrf, 0)
        .vRelu()
        .vWr(MemId::InitialVrf, 0); // in-place
    Program p = b.build();
    m.run(p, 3);
    EXPECT_FLOAT_EQ(m.peekVrf(MemId::InitialVrf, 0)[0], 2.0f);
    m.resetDynamicState();
    EXPECT_FLOAT_EQ(m.peekVrf(MemId::InitialVrf, 0)[0], 0.0f);
}

} // namespace
} // namespace bw
