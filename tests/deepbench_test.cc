/**
 * @file
 * End-to-end calibration tests: the BW_S10 timing simulator against the
 * paper's measured DeepBench results (Table V / Table I BW columns).
 * These pin the reproduction's headline numbers; tolerances are the
 * ±10% band DESIGN.md commits to. Runs use 25-step replays (the
 * steady-state per-step latency is what Table V's totals derive from).
 */

#include <gtest/gtest.h>

#include "compiler/lowering.h"
#include "graph/builders.h"
#include "timing/npu_timing.h"
#include "workloads/paper_data.h"

namespace bw {
namespace {

/** Steady-state cycles per timestep of one benchmark on BW_S10. */
Cycles
perStepCycles(const RnnLayerSpec &layer)
{
    NpuConfig cfg = NpuConfig::bwS10();
    Rng rng(1);
    GirGraph g =
        layer.kind == RnnKind::Lstm
            ? makeLstm(randomLstmWeights(layer.hidden, layer.hidden, rng))
            : makeGru(randomGruWeights(layer.hidden, layer.hidden, rng));
    // The paper's LSTM kernel (Section IV-C listing) fetches the input
    // inside the step loop; the GRU kernels are software-pipelined.
    CompileOptions opts;
    opts.pipelineInputProjections = layer.kind == RnnKind::Gru;
    CompiledModel m = compileGir(g, cfg, opts);

    timing::NpuTiming sim(cfg);
    sim.setTileBeats(m.tileBeats);
    auto res = sim.run(m.prologue, m.step, 25);
    return res.steadyStateIterationCycles();
}

struct Target
{
    RnnKind kind;
    unsigned hidden;
    double paperCyclesPerStep;
};

class TableFivePerStep : public ::testing::TestWithParam<Target>
{
};

TEST_P(TableFivePerStep, WithinTenPercentOfPaper)
{
    Target t = GetParam();
    RnnLayerSpec layer{t.kind, t.hidden, 25, t.hidden};
    double got = static_cast<double>(perStepCycles(layer));
    EXPECT_NEAR(got, t.paperCyclesPerStep, t.paperCyclesPerStep * 0.10)
        << layer.label();
}

// Paper per-step cycles derived from Table V latencies at 250 MHz
// (and Table I's BW column for LSTM-2000 / GRU-2800).
INSTANTIATE_TEST_SUITE_P(
    Calibration, TableFivePerStep,
    ::testing::Values(Target{RnnKind::Lstm, 2000, 718},
                      Target{RnnKind::Gru, 2800, 662},
                      Target{RnnKind::Gru, 2816, 662},
                      Target{RnnKind::Gru, 2560, 662},
                      Target{RnnKind::Gru, 2048, 636},
                      Target{RnnKind::Gru, 1536, 634},
                      Target{RnnKind::Gru, 1024, 632},
                      Target{RnnKind::Lstm, 2048, 740},
                      Target{RnnKind::Lstm, 1536, 725},
                      Target{RnnKind::Lstm, 1024, 740},
                      Target{RnnKind::Lstm, 512, 770},
                      Target{RnnKind::Lstm, 256, 708}));

TEST(TableFive, UtilizationOrderingMatchesPaper)
{
    // Utilization must rise monotonically with hidden dimension within
    // each cell kind (Fig. 7's qualitative shape).
    double prev = 0;
    for (unsigned h : {1024u, 1536u, 2048u, 2560u, 2816u}) {
        RnnLayerSpec layer{RnnKind::Gru, h, 25, h};
        Cycles per_step = perStepCycles(layer);
        double util =
            static_cast<double>(layer.opsPerStep()) /
            (static_cast<double>(per_step) *
             NpuConfig::bwS10().opsPerCycle());
        EXPECT_GT(util, prev) << h;
        prev = util;
    }
    // The largest GRU reaches the paper's headline ~75% utilization.
    EXPECT_GT(prev, 0.60);
}

TEST(TableFive, LargeModelsWithinTwoPointTwoOfSdm)
{
    // Section VII-B2: BW_S10 is within 2.17x of the SDM for the large
    // (>2000-d) models.
    for (auto [kind, h, sdm_per_step] :
         {std::tuple{RnnKind::Gru, 2816u, 527.0},
          std::tuple{RnnKind::Gru, 2560u, 441.0},
          std::tuple{RnnKind::Lstm, 2048u, 370.0}}) {
        RnnLayerSpec layer{kind, h, 25, h};
        double ratio = static_cast<double>(perStepCycles(layer)) /
                       sdm_per_step;
        EXPECT_LT(ratio, 2.3) << layer.label();
        EXPECT_GT(ratio, 1.0) << layer.label();
    }
}

TEST(TableFive, PerStepLatencyRoughlyConstant)
{
    // Section VII-B2: "essentially the same latency per time step in
    // steady state for all evaluated models regardless of their size".
    Cycles small = perStepCycles({RnnKind::Gru, 1024, 25, 1024});
    Cycles large = perStepCycles({RnnKind::Gru, 2816, 25, 2816});
    EXPECT_LT(static_cast<double>(large) / small, 1.35);
}

TEST(TableFive, BatchInvarianceOfBwLatency)
{
    // BW executes a single input at a time: per-request cycles do not
    // change with "batch" (requests are just served back to back).
    NpuConfig cfg = NpuConfig::bwS10();
    Rng rng(1);
    CompiledModel m =
        compileGir(makeGru(randomGruWeights(1024, 1024, rng)), cfg);
    timing::NpuTiming sim(cfg);
    sim.setTileBeats(m.tileBeats);
    Cycles one = sim.run(m.prologue, m.step, 25)
                     .steadyStateIterationCycles();
    Cycles again = sim.run(m.prologue, m.step, 25)
                       .steadyStateIterationCycles();
    EXPECT_EQ(one, again);
}

} // namespace
} // namespace bw
