/**
 * @file
 * Tiered timing-fidelity tests: the event-driven fast tier's
 * equivalence to the cycle-accurate ground truth (total cycles,
 * counters, per-chain profiles), the memo tier's bit-identical cache
 * hits and its keying on program / tile-beat / arrival identity, the
 * Session / Engine / Cluster fidelity threading, and byte-identical
 * replay exports under Fidelity::Cached.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "cluster/cluster.h"
#include "compiler/lowering.h"
#include "graph/builders.h"
#include "obs/flight.h"
#include "obs/span.h"
#include "serve/engine.h"
#include "serve/session.h"
#include "timing/npu_timing.h"
#include "timing/timing_model.h"

namespace bw {
namespace {

using timing::CycleAccurateModel;
using timing::EventDrivenModel;
using timing::Fidelity;
using timing::MemoTimingModel;
using timing::TimingResult;

/** Small test target: N=16, plenty of storage, high-precision BFP. */
NpuConfig
testConfig()
{
    NpuConfig c;
    c.name = "test16";
    c.nativeDim = 16;
    c.lanes = 4;
    c.tileEngines = 2;
    c.mrfSize = 512;
    c.mrfIndexSpace = 2048;
    c.initialVrfSize = 256;
    c.addSubVrfSize = 256;
    c.multiplyVrfSize = 256;
    c.precision = BfpFormat{1, 5, 7};
    return c;
}

CompiledModel
lstmModel(unsigned hidden, const NpuConfig &cfg, uint64_t seed = 3)
{
    Rng rng(seed);
    return compileGir(makeLstm(randomLstmWeights(hidden, hidden, rng)),
                      cfg);
}

CompiledModel
gruModel(unsigned hidden, const NpuConfig &cfg, uint64_t seed = 4)
{
    Rng rng(seed);
    return compileGir(makeGru(randomGruWeights(hidden, hidden, rng)),
                      cfg);
}

/** All scalar counters of two results are equal. */
void
expectCountersEqual(const TimingResult &a, const TimingResult &b)
{
    EXPECT_EQ(a.dispatchedOps, b.dispatchedOps);
    EXPECT_EQ(a.mvmOps, b.mvmOps);
    EXPECT_EQ(a.instructionsDispatched, b.instructionsDispatched);
    EXPECT_EQ(a.chainsExecuted, b.chainsExecuted);
    EXPECT_EQ(a.nativeTileOps, b.nativeTileOps);
}

/** Bit-identical TimingResult (counters, vectors, stats document). */
void
expectBitIdentical(const TimingResult &a, const TimingResult &b)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    expectCountersEqual(a, b);
    EXPECT_EQ(a.mvmBusyCycles, b.mvmBusyCycles);
    EXPECT_EQ(a.mfuBusyCycles, b.mfuBusyCycles);
    EXPECT_EQ(a.iterationEnd, b.iterationEnd);
    EXPECT_EQ(a.outputTimes, b.outputTimes);
    EXPECT_EQ(a.stats.toJson().dump(), b.stats.toJson().dump());
}

void
expectChainsEqual(const std::vector<obs::ChainProfile> &a,
                  const std::vector<obs::ChainProfile> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].chain, b[i].chain) << "chain " << i;
        EXPECT_EQ(a[i].kind, b[i].kind) << "chain " << i;
        EXPECT_EQ(a[i].dispatchStart, b[i].dispatchStart) << "chain " << i;
        EXPECT_EQ(a[i].dispatchDone, b[i].dispatchDone) << "chain " << i;
        EXPECT_EQ(a[i].decodeDone, b[i].decodeDone) << "chain " << i;
        EXPECT_EQ(a[i].done, b[i].done) << "chain " << i;
        EXPECT_EQ(a[i].dataStall, b[i].dataStall) << "chain " << i;
        EXPECT_EQ(a[i].inputStall, b[i].inputStall) << "chain " << i;
        EXPECT_EQ(a[i].structStall, b[i].structStall) << "chain " << i;
    }
}

// --- Fidelity selection ---

TEST(Fidelity, ParseAcceptsDocumentedSpellings)
{
    Fidelity f = Fidelity::Fast;
    EXPECT_TRUE(timing::parseFidelity("cycle", &f));
    EXPECT_EQ(f, Fidelity::CycleAccurate);
    EXPECT_TRUE(timing::parseFidelity("cycle_accurate", &f));
    EXPECT_EQ(f, Fidelity::CycleAccurate);
    EXPECT_TRUE(timing::parseFidelity("fast", &f));
    EXPECT_EQ(f, Fidelity::Fast);
    EXPECT_TRUE(timing::parseFidelity("event", &f));
    EXPECT_EQ(f, Fidelity::Fast);
    EXPECT_TRUE(timing::parseFidelity("cached", &f));
    EXPECT_EQ(f, Fidelity::Cached);
    EXPECT_TRUE(timing::parseFidelity("memo", &f));
    EXPECT_EQ(f, Fidelity::Cached);
    EXPECT_FALSE(timing::parseFidelity("warp", &f));
    EXPECT_FALSE(timing::parseFidelity("", &f));
}

TEST(Fidelity, FromEnvHonorsModeAndFallsBack)
{
    ::setenv("BW_TIMING_MODE", "fast", 1);
    EXPECT_EQ(timing::fidelityFromEnv(), Fidelity::Fast);
    ::setenv("BW_TIMING_MODE", "bogus", 1);
    EXPECT_EQ(timing::fidelityFromEnv(Fidelity::Cached), Fidelity::Cached);
    ::unsetenv("BW_TIMING_MODE");
    EXPECT_EQ(timing::fidelityFromEnv(), Fidelity::CycleAccurate);
    EXPECT_EQ(timing::fidelityFromEnv(Fidelity::Fast), Fidelity::Fast);
}

TEST(Fidelity, FactoryBuildsTheRequestedTier)
{
    NpuConfig cfg = testConfig();
    auto cyc = timing::makeTimingModel(Fidelity::CycleAccurate, cfg);
    auto fast = timing::makeTimingModel(Fidelity::Fast, cfg);
    auto cached = timing::makeTimingModel(Fidelity::Cached, cfg);
    EXPECT_EQ(cyc->fidelity(), Fidelity::CycleAccurate);
    EXPECT_EQ(fast->fidelity(), Fidelity::Fast);
    EXPECT_EQ(cached->fidelity(), Fidelity::Cached);
    // Cached wraps a cycle-accurate inner tier: hits are ground truth.
    auto *memo = dynamic_cast<MemoTimingModel *>(cached.get());
    ASSERT_NE(memo, nullptr);
    EXPECT_EQ(memo->inner().fidelity(), Fidelity::CycleAccurate);
}

// --- Iteration snapshots (the fast tier's observation hook) ---

TEST(IterationSnapshots, HookIsPurelyObservational)
{
    NpuConfig cfg = testConfig();
    CompiledModel m = gruModel(24, cfg);

    timing::NpuTiming plain(cfg);
    plain.setTileBeats(m.tileBeats);
    TimingResult without = plain.run(m.prologue, m.step, 12);

    timing::NpuTiming hooked(cfg);
    hooked.setTileBeats(m.tileBeats);
    std::vector<timing::NpuTiming::IterationSnapshot> snaps;
    hooked.setIterationSnapshots(&snaps);
    TimingResult with = hooked.run(m.prologue, m.step, 12);

    expectBitIdentical(with, without);
    // One snapshot after the prologue plus one per iteration.
    ASSERT_EQ(snaps.size(), 13u);
    EXPECT_EQ(snaps.back().end, with.totalCycles);
    for (size_t i = 0; i < with.iterationEnd.size(); ++i)
        EXPECT_EQ(snaps[i + 1].end, with.iterationEnd[i]);

    // Detaching stops collection.
    hooked.setIterationSnapshots(nullptr);
    hooked.run(m.prologue, m.step, 2);
    EXPECT_EQ(snaps.size(), 13u);
}

// --- Event-driven fast tier ---

/** Fast-vs-exact equivalence on one model at @p iterations. */
void
expectFastMatchesExact(const CompiledModel &m, const NpuConfig &cfg,
                       unsigned iterations)
{
    CycleAccurateModel exact(cfg);
    exact.setTileBeats(m.tileBeats);
    std::vector<obs::ChainProfile> exact_chains;
    TimingResult want = exact.runProfiled(m.prologue, m.step, iterations,
                                          &exact_chains);

    EventDrivenModel fast(cfg);
    fast.setTileBeats(m.tileBeats);
    std::vector<obs::ChainProfile> fast_chains;
    TimingResult got = fast.runProfiled(m.prologue, m.step, iterations,
                                        &fast_chains);
    EXPECT_EQ(fast.extrapolatedRuns(), 1u);
    EXPECT_EQ(fast.exactFallbacks(), 0u);

    // Steady-state extrapolation of a periodic pipeline is exact, not
    // approximate: the acceptance tolerance is zero cycles.
    EXPECT_EQ(got.totalCycles, want.totalCycles);
    EXPECT_EQ(got.iterationEnd, want.iterationEnd);
    EXPECT_EQ(got.outputTimes, want.outputTimes);
    expectCountersEqual(got, want);
    EXPECT_EQ(got.mvmBusyCycles, want.mvmBusyCycles);
    EXPECT_EQ(got.mfuBusyCycles, want.mfuBusyCycles);
    EXPECT_EQ(got.stats.counter("reduce_busy_cycles"),
              want.stats.counter("reduce_busy_cycles"));
    EXPECT_EQ(got.stats.counter("vrf_read_busy_cycles"),
              want.stats.counter("vrf_read_busy_cycles"));
    EXPECT_EQ(got.stats.counter("nios_busy_cycles"),
              want.stats.counter("nios_busy_cycles"));
    expectChainsEqual(fast_chains, exact_chains);
}

TEST(EventDriven, MatchesExactOnLstm)
{
    NpuConfig cfg = testConfig();
    // Fig. 2-style sweep: two LSTM dimensions, long steady state.
    for (unsigned hidden : {16u, 48u}) {
        SCOPED_TRACE(hidden);
        expectFastMatchesExact(lstmModel(hidden, cfg), cfg, 96);
    }
}

TEST(EventDriven, MatchesExactOnGru)
{
    NpuConfig cfg = testConfig();
    for (unsigned hidden : {24u, 40u}) {
        SCOPED_TRACE(hidden);
        expectFastMatchesExact(gruModel(hidden, cfg), cfg, 80);
    }
}

TEST(EventDriven, MatchesExactOnDeepBenchShapes)
{
    // Table 5 shapes scaled to the test configuration: the DeepBench
    // suite's hidden sizes are too large for N=16 test runs, so take
    // representative small LSTM/GRU layers at several step counts.
    NpuConfig cfg = testConfig();
    CompiledModel lstm = lstmModel(32, cfg, 7);
    for (unsigned steps : {50u, 77u, 128u}) {
        SCOPED_TRACE(steps);
        expectFastMatchesExact(lstm, cfg, steps);
    }
}

TEST(EventDriven, FallsBackExactlyOnShortRuns)
{
    NpuConfig cfg = testConfig();
    CompiledModel m = gruModel(24, cfg);

    CycleAccurateModel exact(cfg);
    exact.setTileBeats(m.tileBeats);
    EventDrivenModel fast(cfg);
    fast.setTileBeats(m.tileBeats);

    // iterations <= warmup + 1: nothing to extrapolate.
    TimingResult want = exact.run(m.prologue, m.step, 4);
    TimingResult got = fast.run(m.prologue, m.step, 4);
    EXPECT_EQ(fast.exactFallbacks(), 1u);
    EXPECT_EQ(fast.extrapolatedRuns(), 0u);
    expectBitIdentical(got, want);
}

TEST(EventDriven, FallsBackWithArrivalSchedules)
{
    NpuConfig cfg = testConfig();
    CompiledModel m = gruModel(24, cfg);
    std::vector<Cycles> arrivals;
    for (unsigned i = 0; i < 64; ++i)
        arrivals.push_back(i * 977); // aperiodic-ish spacing

    CycleAccurateModel exact(cfg);
    exact.setTileBeats(m.tileBeats);
    exact.setInputArrivals(arrivals);
    TimingResult want = exact.run(m.prologue, m.step, 40);

    EventDrivenModel fast(cfg);
    fast.setTileBeats(m.tileBeats);
    fast.setInputArrivals(arrivals);
    TimingResult got = fast.run(m.prologue, m.step, 40);
    EXPECT_EQ(fast.exactFallbacks(), 1u);
    expectBitIdentical(got, want);

    // The schedule applied to that run only: the next run is back on
    // the always-ready contract and free to extrapolate.
    TimingResult rerun = fast.run(m.prologue, m.step, 40);
    CycleAccurateModel fresh(cfg);
    fresh.setTileBeats(m.tileBeats);
    expectBitIdentical(rerun, fresh.run(m.prologue, m.step, 40));
}

TEST(EventDriven, WarmupOptionIsClamped)
{
    EventDrivenModel::Options opt;
    opt.warmupIterations = 0;
    opt.maxPeriod = 0;
    opt.stablePeriods = 0;
    EventDrivenModel fast(testConfig(), opt);
    EXPECT_GE(fast.options().warmupIterations, 1u);
    EXPECT_GE(fast.options().maxPeriod, 1u);
    EXPECT_GE(fast.options().stablePeriods, 2u);
}

// --- Memo tier ---

TEST(MemoTiming, HitsAreBitIdenticalToFirstMiss)
{
    NpuConfig cfg = testConfig();
    CompiledModel m = lstmModel(16, cfg);
    MemoTimingModel memo(std::make_unique<CycleAccurateModel>(cfg));
    memo.setTileBeats(m.tileBeats);

    std::vector<obs::ChainProfile> first_chains;
    TimingResult first =
        memo.runProfiled(m.prologue, m.step, 20, &first_chains);
    EXPECT_EQ(memo.misses(), 1u);
    EXPECT_EQ(memo.hits(), 0u);

    // run(), runProfiled() and runShared() all hit the same entry.
    TimingResult second = memo.run(m.prologue, m.step, 20);
    std::vector<obs::ChainProfile> third_chains;
    TimingResult third =
        memo.runProfiled(m.prologue, m.step, 20, &third_chains);
    timing::ProfiledRun shared = memo.runShared(m.prologue, m.step, 20);
    EXPECT_EQ(memo.misses(), 1u);
    EXPECT_EQ(memo.hits(), 3u);
    EXPECT_EQ(memo.entries(), 1u);

    expectBitIdentical(second, first);
    expectBitIdentical(third, first);
    expectBitIdentical(shared.result, first);
    expectChainsEqual(third_chains, first_chains);
    ASSERT_NE(shared.chains, nullptr);
    expectChainsEqual(*shared.chains, first_chains);

    // And the entry matches a fresh uncached simulator exactly.
    CycleAccurateModel fresh(cfg);
    fresh.setTileBeats(m.tileBeats);
    std::vector<obs::ChainProfile> fresh_chains;
    TimingResult want =
        fresh.runProfiled(m.prologue, m.step, 20, &fresh_chains);
    expectBitIdentical(first, want);
    expectChainsEqual(first_chains, fresh_chains);
}

TEST(MemoTiming, KeysOnProgramAndIterations)
{
    NpuConfig cfg = testConfig();
    CompiledModel lstm = lstmModel(16, cfg);
    CompiledModel gru = gruModel(16, cfg);
    MemoTimingModel memo(std::make_unique<CycleAccurateModel>(cfg));
    memo.setTileBeats(lstm.tileBeats);

    memo.run(lstm.prologue, lstm.step, 10);
    memo.run(lstm.prologue, lstm.step, 11); // iterations differ
    memo.run(gru.prologue, gru.step, 10);   // program differs
    EXPECT_EQ(memo.misses(), 3u);
    EXPECT_EQ(memo.hits(), 0u);
    memo.run(lstm.prologue, lstm.step, 10);
    EXPECT_EQ(memo.hits(), 1u);

    memo.clearCache();
    EXPECT_EQ(memo.entries(), 0u);
    memo.run(lstm.prologue, lstm.step, 10);
    EXPECT_EQ(memo.misses(), 4u);
}

TEST(MemoTiming, KeysOnTileBeatSchedule)
{
    // Regression: the memo must key on setTileBeats() state — a beat
    // schedule change invalidates every previously cached timing.
    NpuConfig cfg = testConfig();
    CompiledModel m = lstmModel(24, cfg);
    MemoTimingModel memo(std::make_unique<CycleAccurateModel>(cfg));

    memo.setTileBeats(m.tileBeats);
    TimingResult with_beats = memo.run(m.prologue, m.step, 10);
    memo.setTileBeats({}); // drop the thin-tail schedule
    TimingResult without_beats = memo.run(m.prologue, m.step, 10);
    EXPECT_EQ(memo.misses(), 2u);
    EXPECT_EQ(memo.hits(), 0u);

    // Restoring the schedule hits the original entry again.
    memo.setTileBeats(m.tileBeats);
    expectBitIdentical(memo.run(m.prologue, m.step, 10), with_beats);
    EXPECT_EQ(memo.hits(), 1u);

    // The uncached ground truth agrees with both entries.
    CycleAccurateModel plain(cfg);
    expectBitIdentical(without_beats, plain.run(m.prologue, m.step, 10));
}

TEST(MemoTiming, KeysOnInputArrivalSchedule)
{
    // Regression: the memo must key on setInputArrivals() state — a
    // cached always-ready run must not answer for a backpressured one.
    NpuConfig cfg = testConfig();
    CompiledModel m = gruModel(24, cfg);
    MemoTimingModel memo(std::make_unique<CycleAccurateModel>(cfg));
    memo.setTileBeats(m.tileBeats);

    std::vector<Cycles> slow;
    for (unsigned i = 0; i < 32; ++i)
        slow.push_back(i * 4000);

    TimingResult always_ready = memo.run(m.prologue, m.step, 10);
    memo.setInputArrivals(slow);
    TimingResult backpressured = memo.run(m.prologue, m.step, 10);
    EXPECT_EQ(memo.misses(), 2u);
    EXPECT_GT(backpressured.totalCycles, always_ready.totalCycles);

    // Same schedule again: a hit, bit-identical, consuming the pending
    // schedule (the next unscheduled run hits the always-ready entry).
    memo.setInputArrivals(slow);
    expectBitIdentical(memo.run(m.prologue, m.step, 10), backpressured);
    EXPECT_EQ(memo.hits(), 1u);
    expectBitIdentical(memo.run(m.prologue, m.step, 10), always_ready);
    EXPECT_EQ(memo.hits(), 2u);

    // A different schedule is a different key, not a stale hit.
    std::vector<Cycles> other = slow;
    other.back() += 1;
    memo.setInputArrivals(other);
    memo.run(m.prologue, m.step, 10);
    EXPECT_EQ(memo.misses(), 3u);

    // An explicitly empty schedule differs from never-set.
    memo.setInputArrivals({});
    memo.run(m.prologue, m.step, 10);
    EXPECT_EQ(memo.misses(), 4u);
}

// --- Session threading ---

TEST(SessionFidelity, TiersAgreeOnSimulatedCycles)
{
    Rng rng(11);
    Session s = Session::compile(makeGru(randomGruWeights(24, 24, rng)),
                                 testConfig());
    EXPECT_EQ(s.defaultFidelity(), Fidelity::CycleAccurate);

    TimingResult exact = s.time(60, Fidelity::CycleAccurate);
    TimingResult fast = s.time(60, Fidelity::Fast);
    TimingResult cached = s.time(60, Fidelity::Cached);
    expectBitIdentical(fast, exact);
    expectBitIdentical(cached, exact);
    EXPECT_EQ(s.time(60).totalCycles, exact.totalCycles);

    EXPECT_DOUBLE_EQ(s.serviceMs(60, Fidelity::Cached),
                     s.serviceMs(60, Fidelity::CycleAccurate));

    // The Cached tier persists across calls within the session.
    auto &memo = static_cast<MemoTimingModel &>(
        s.timingModel(Fidelity::Cached));
    EXPECT_EQ(memo.misses(), 1u); // serviceMs(Cached) above already hit
    uint64_t hits = memo.hits();
    s.time(60, Fidelity::Cached);
    EXPECT_EQ(memo.hits(), hits + 1);

    // timer() shares the CycleAccurate tier's simulator instance.
    EXPECT_EQ(&s.timer(),
              &static_cast<CycleAccurateModel &>(
                   s.timingModel(Fidelity::CycleAccurate))
                   .sim());
}

TEST(SessionFidelity, DefaultFidelityCapturedFromEnv)
{
    Rng rng(12);
    GirGraph g = makeGru(randomGruWeights(16, 16, rng));
    ::setenv("BW_TIMING_MODE", "cached", 1);
    Session cached = Session::compile(g, testConfig());
    ::unsetenv("BW_TIMING_MODE");
    Session plain = Session::compile(g, testConfig());
    EXPECT_EQ(cached.defaultFidelity(), Fidelity::Cached);
    EXPECT_EQ(plain.defaultFidelity(), Fidelity::CycleAccurate);
    EXPECT_EQ(cached.time(8).totalCycles, plain.time(8).totalCycles);
}

// --- serve::Request unification ---

TEST(ServeRequest, FactoriesAndShimsAgree)
{
    serve::Request timed = serve::Request::timed(7, 12.5, 0.25);
    EXPECT_TRUE(timed.inputs.empty());
    EXPECT_EQ(timed.steps, 7u);
    EXPECT_DOUBLE_EQ(timed.deadlineMs, 12.5);
    EXPECT_DOUBLE_EQ(timed.serviceMsOverride, 0.25);

    std::vector<FVec> xs(3, FVec(4, 0.5f));
    serve::Request fn = serve::Request::functional(xs, 9.0);
    EXPECT_EQ(fn.inputs.size(), 3u);
    EXPECT_DOUBLE_EQ(fn.deadlineMs, 9.0);

    // A model-less engine accepts timed Requests and the deprecated
    // submitTimed shim identically.
    serve::EngineOptions opts;
    opts.serviceMsOverride = 0.05;
    opts.timeScale = 0.0;
    serve::Engine engine(opts);
    auto via_request =
        engine.submit(serve::Request::timed(2));
    ASSERT_TRUE(via_request.ok()) << via_request.status().toString();
    auto via_shim = engine.submitTimed(2);
    ASSERT_TRUE(via_shim.ok()) << via_shim.status().toString();
    EXPECT_TRUE(via_request.value().get().status.ok());
    EXPECT_TRUE(via_shim.value().get().status.ok());

    // Functional inputs on a model-less engine are rejected, as are
    // zero-step timed requests.
    auto bad_fn = engine.submit(serve::Request::functional(xs));
    EXPECT_EQ(bad_fn.status().code(), StatusCode::FailedPrecondition);
    auto bad_steps = engine.submit(serve::Request::timed(0));
    EXPECT_EQ(bad_steps.status().code(), StatusCode::InvalidArgument);
    engine.shutdown();
}

// --- Engine replay exports under Fidelity::Cached ---

TEST(EngineFidelity, CachedReplayExportsAreByteIdentical)
{
    Rng rng(13);
    Session session = Session::compile(
        makeGru(randomGruWeights(24, 24, rng)), testConfig());
    std::vector<double> arrivals;
    for (int i = 0; i < 24; ++i)
        arrivals.push_back(i * 0.0007);

    auto replay_docs = [&](Fidelity f) {
        obs::SpanTracer tracer;
        obs::FlightRecorder recorder{obs::FlightRecorderOptions{}};
        serve::EngineOptions opts;
        opts.fidelity = f;
        opts.queueDepth = arrivals.size();
        opts.spanTracer = &tracer;
        opts.flightRecorder = &recorder;
        auto engine = session.serve(opts);
        engine->replay(arrivals, 4);
        Expected<Json> flight = engine->flightJson();
        EXPECT_TRUE(flight.ok()) << flight.status().toString();
        std::pair<std::string, std::string> docs{
            obs::spanTreeJson(tracer).dump(),
            flight.ok() ? flight.value().dump() : std::string()};
        engine->shutdown();
        return docs;
    };

    auto exact = replay_docs(Fidelity::CycleAccurate);
    auto cached = replay_docs(Fidelity::Cached);
    EXPECT_EQ(cached.first, exact.first);   // bw.spans/1
    EXPECT_EQ(cached.second, exact.second); // bw.flight/1

    // Two replays at the Cached tier are also self-identical (the
    // second serves every profile from the memo).
    auto cached2 = replay_docs(Fidelity::Cached);
    EXPECT_EQ(cached2.first, cached.first);
    EXPECT_EQ(cached2.second, cached.second);
}

TEST(EngineFidelity, DebugConfigReportsTimingMode)
{
    Rng rng(21);
    Session session = Session::compile(
        makeGru(randomGruWeights(16, 16, rng)), testConfig());
    serve::EngineOptions opts;
    opts.fidelity = Fidelity::Fast;
    auto engine = session.serve(opts);
    std::string doc = engine->debugConfigJson().dump();
    EXPECT_NE(doc.find("\"timing_mode\":\"fast\""), std::string::npos)
        << doc;
    engine->shutdown();
}

// --- Cluster threading ---

TEST(ClusterFidelity, CachedReplayMatchesCycleAccurate)
{
    Rng rng(22);
    GirGraph g = makeGru(randomGruWeights(16, 16, rng));
    cluster::TrafficOptions traffic;
    traffic.baseRps = 1500;
    traffic.durationS = 0.5;
    traffic.seed = 5;
    auto trace = cluster::generateTraffic(traffic);
    ASSERT_FALSE(trace.empty());

    auto run = [&](Fidelity f) {
        cluster::ClusterOptions copts;
        cluster::ReplicaGroupSpec group;
        group.name = "t16";
        group.config = testConfig();
        group.engines = 2;
        copts.groups.push_back(group);
        copts.fidelity = f;
        cluster::Cluster c(copts);
        auto id = c.addModel("gru16", g);
        EXPECT_TRUE(id.ok()) << id.status().toString();
        return c.replay(trace).toJson().dump();
    };

    EXPECT_EQ(run(Fidelity::Cached), run(Fidelity::CycleAccurate));
}

TEST(ClusterFidelity, SubmitRequestShimsAgree)
{
    cluster::ClusterOptions copts;
    cluster::ReplicaGroupSpec group;
    group.config = testConfig();
    group.engine.timeScale = 0.0;
    copts.groups.push_back(group);
    cluster::Cluster c(copts);
    uint32_t id = c.addTimedModel("flat", 0.05);
    c.start();

    auto via_request = c.submit(id, serve::Request::timed(1));
    ASSERT_TRUE(via_request.ok()) << via_request.status().toString();
    EXPECT_TRUE(via_request.value().get().status.ok());
    auto via_shim = c.submitTimed(id, 1);
    ASSERT_TRUE(via_shim.ok()) << via_shim.status().toString();
    EXPECT_TRUE(via_shim.value().get().status.ok());

    std::vector<FVec> xs(1, FVec(4, 0.0f));
    auto bad = c.submit(id, serve::Request::functional(xs));
    EXPECT_EQ(bad.status().code(), StatusCode::InvalidArgument);
    c.shutdown();
}

} // namespace
} // namespace bw
