/**
 * @file
 * GIR tests: construction, dimension checking, topological order,
 * op accounting, state bindings, and the LSTM/GRU/MLP builders.
 */

#include <gtest/gtest.h>

#include "graph/builders.h"
#include "graph/gir.h"

namespace bw {
namespace {

TEST(Gir, BasicConstruction)
{
    GirGraph g("t");
    NodeId x = g.input(4, "x");
    NodeId w = g.matmul(FMat(3, 4), x, "W");
    NodeId b = g.constVec(FVec(3, 0.1f), "b");
    NodeId y = g.add(w, b, "y");
    g.output(y);
    g.check();
    EXPECT_EQ(g.node(w).dim, 3u);
    EXPECT_EQ(g.nodesOf(GirOp::Input).size(), 1u);
    EXPECT_EQ(g.nodesOf(GirOp::MatMul).size(), 1u);
}

TEST(Gir, DimensionMismatchThrows)
{
    GirGraph g;
    NodeId x = g.input(4);
    EXPECT_THROW(g.matmul(FMat(3, 5), x), Error); // 5 != 4
    NodeId a = g.input(4);
    NodeId b = g.input(3);
    EXPECT_THROW(g.add(a, b), Error);
    EXPECT_THROW(g.mul(a, b), Error);
}

TEST(Gir, StateBindings)
{
    GirGraph g;
    NodeId h = g.state(4, "h");
    NodeId y = g.tanh(h);
    g.bindState(h, y);
    EXPECT_EQ(g.stateBindings().size(), 1u);
    // Double binding is an error.
    EXPECT_THROW(g.bindState(h, y), Error);
    // Binding a non-state is an error.
    EXPECT_THROW(g.bindState(y, h), Error);
    // Dimension mismatch is an error.
    NodeId h2 = g.state(8, "h2");
    EXPECT_THROW(g.bindState(h2, y), Error);
}

TEST(Gir, ConsumersComputed)
{
    GirGraph g;
    NodeId x = g.input(4);
    NodeId t = g.tanh(x);
    NodeId s = g.sigmoid(x);
    NodeId m = g.mul(t, s);
    (void)m;
    auto cons = g.consumers();
    EXPECT_EQ(cons[x].size(), 2u);
    EXPECT_EQ(cons[t].size(), 1u);
}

TEST(Gir, OpsAccounting)
{
    GirGraph g;
    NodeId x = g.input(10);
    NodeId w = g.matmul(FMat(20, 10), x);
    NodeId y = g.relu(w);
    g.output(y);
    EXPECT_EQ(g.matmulOpsPerStep(), 2ull * 20 * 10);
    EXPECT_EQ(g.opsPerStep(), 2ull * 20 * 10 + 20);
    EXPECT_EQ(g.weightBytes(8), 200u);
}

TEST(Builders, LstmStructure)
{
    Rng rng(1);
    LstmWeights w = randomLstmWeights(64, 32, rng);
    EXPECT_EQ(w.Wf.rows(), 64u);
    EXPECT_EQ(w.Wf.cols(), 32u);
    EXPECT_EQ(w.Uf.cols(), 64u);

    GirGraph g = makeLstm(w);
    EXPECT_EQ(g.nodesOf(GirOp::MatMul).size(), 8u);
    EXPECT_EQ(g.nodesOf(GirOp::State).size(), 2u);
    EXPECT_EQ(g.stateBindings().size(), 2u);
    EXPECT_EQ(g.nodesOf(GirOp::Output).size(), 1u);
    // 8 gates' matmul ops.
    EXPECT_EQ(g.matmulOpsPerStep(),
              2ull * 4 * (64 * 32) + 2ull * 4 * (64 * 64));
}

TEST(Builders, GruStructure)
{
    Rng rng(1);
    GirGraph g = makeGru(randomGruWeights(64, 64, rng));
    EXPECT_EQ(g.nodesOf(GirOp::MatMul).size(), 6u);
    EXPECT_EQ(g.nodesOf(GirOp::State).size(), 1u);
    EXPECT_EQ(g.matmulOpsPerStep(), 2ull * 6 * 64 * 64);
}

TEST(Builders, MlpStructure)
{
    Rng rng(1);
    MlpWeights w = randomMlpWeights({16, 32, 8}, rng);
    ASSERT_EQ(w.weights.size(), 2u);
    EXPECT_EQ(w.weights[0].rows(), 32u);
    EXPECT_EQ(w.weights[1].rows(), 8u);

    GirGraph g = makeMlp(w);
    EXPECT_EQ(g.nodesOf(GirOp::MatMul).size(), 2u);
    EXPECT_EQ(g.nodesOf(GirOp::Relu).size(), 1u); // no relu after last
    EXPECT_TRUE(g.stateBindings().empty());
}

TEST(Builders, DeterministicWeights)
{
    Rng a(9), b(9);
    LstmWeights wa = randomLstmWeights(16, 16, a);
    LstmWeights wb = randomLstmWeights(16, 16, b);
    EXPECT_EQ(wa.Wf.data(), wb.Wf.data());
    EXPECT_EQ(wa.bc, wb.bc);
}

TEST(Gir, TopoOrderValid)
{
    Rng rng(1);
    GirGraph g = makeLstm(randomLstmWeights(32, 32, rng));
    auto order = g.topoOrder();
    EXPECT_EQ(order.size(), g.size());
    std::vector<bool> seen(g.size(), false);
    for (NodeId id : order) {
        for (NodeId in : g.node(id).inputs)
            EXPECT_TRUE(seen[in]);
        seen[id] = true;
    }
}

} // namespace
} // namespace bw
