/**
 * @file
 * GPU baseline model tests: reproduction of the published Titan Xp
 * DeepBench points (Table V) and P40 ResNet-50 points (Table VI), and
 * the batch-scaling behaviour behind Fig. 8.
 */

#include <gtest/gtest.h>

#include "baseline/gpu_model.h"
#include "workloads/paper_data.h"
#include "workloads/resnet50.h"

namespace bw {
namespace {

TEST(GpuModel, TitanXpTableFiveLatencies)
{
    GpuModel gpu = GpuModel::titanXp();
    for (const auto &row : paper::tableFive()) {
        GpuPerf perf = gpuRnnInference(gpu, row.layer, 1);
        // Within 30% of every published point except the LSTM-256
        // outlier (see EXPERIMENTS.md).
        double tol = 0.30;
        if (row.layer.kind == RnnKind::Lstm && row.layer.hidden == 256)
            tol = 2.0;
        EXPECT_NEAR(perf.latencyMs, row.gpuMs, row.gpuMs * tol + 0.02)
            << row.layer.label();
    }
}

TEST(GpuModel, TitanXpLargeGruWithinTenPercent)
{
    GpuModel gpu = GpuModel::titanXp();
    for (const auto &row : paper::tableFive()) {
        if (row.layer.kind != RnnKind::Gru || row.layer.hidden < 2000)
            continue;
        GpuPerf perf = gpuRnnInference(gpu, row.layer, 1);
        EXPECT_NEAR(perf.latencyMs, row.gpuMs, row.gpuMs * 0.10)
            << row.layer.label();
    }
}

TEST(GpuModel, UtilizationIsLowAtBatchOne)
{
    // The paper's headline: under 4% GPU utilization on RNNs at batch 1.
    GpuModel gpu = GpuModel::titanXp();
    for (const auto &layer : deepBenchSuite()) {
        GpuPerf perf = gpuRnnInference(gpu, layer, 1);
        EXPECT_LT(perf.utilization, 0.05) << layer.label();
    }
}

TEST(GpuModel, UtilizationScalesWithBatch)
{
    GpuModel gpu = GpuModel::titanXp();
    RnnLayerSpec layer{RnnKind::Gru, 2816, 750, 2816};
    double prev = 0;
    for (unsigned b : {1u, 2u, 4u, 8u, 32u}) {
        GpuPerf perf = gpuRnnInference(gpu, layer, b);
        EXPECT_GT(perf.utilization, prev) << "batch " << b;
        prev = perf.utilization;
    }
    // Fig. 8: at batch 4 the Titan stays under 13% even for large RNNs.
    EXPECT_LT(gpuRnnInference(gpu, layer, 4).utilization, 0.13);
    // At batch 32 it climbs substantially.
    EXPECT_GT(gpuRnnInference(gpu, layer, 32).utilization, 0.25);
}

TEST(GpuModel, BatchOneLatencyIsFlatInBatch)
{
    // Memory-bound regime: batch 2 costs barely more than batch 1.
    GpuModel gpu = GpuModel::titanXp();
    RnnLayerSpec layer{RnnKind::Gru, 2048, 375, 2048};
    double b1 = gpuRnnInference(gpu, layer, 1).latencyMs;
    double b2 = gpuRnnInference(gpu, layer, 2).latencyMs;
    EXPECT_LT(b2, b1 * 1.2);
}

TEST(GpuModel, P40TableSix)
{
    GpuModel gpu = GpuModel::p40();
    auto convs = resnet50Convs();
    GpuPerf b1 = gpuConvNetInference(gpu, convs, 1);
    // Table VI: 461 IPS / 2.17 ms at batch 1.
    EXPECT_NEAR(b1.latencyMs, 2.17, 0.25);
    EXPECT_NEAR(b1.ips, 461.0, 60.0);

    // Section VII-C: ~2,270 IPS at batch 16, ~7 ms per batch.
    GpuPerf b16 = gpuConvNetInference(gpu, convs, 16);
    EXPECT_GT(b16.ips, 1800.0);
    EXPECT_GT(b16.latencyMs, 5.0);
}

TEST(GpuModel, SpecsMatchTableFour)
{
    GpuModel xp = GpuModel::titanXp();
    EXPECT_DOUBLE_EQ(xp.peakTflops, paper::titanXpSpec().peakTflops);
    EXPECT_DOUBLE_EQ(xp.tdpWatts, 250.0);
}

TEST(GpuModel, ThroughputConsistency)
{
    GpuModel gpu = GpuModel::titanXp();
    RnnLayerSpec layer{RnnKind::Lstm, 1024, 25, 1024};
    GpuPerf perf = gpuRnnInference(gpu, layer, 1);
    // tflops * latency == total ops.
    double ops = perf.tflops * perf.latencyMs * 1e9;
    EXPECT_NEAR(ops, static_cast<double>(layer.totalOps()),
                static_cast<double>(layer.totalOps()) * 1e-6);
}

} // namespace
} // namespace bw
