/**
 * @file
 * Tests for the fleet observability plane (obs/fleet.h) and its cluster
 * wiring: cross-shard metric federation, the fleet SLO rollup,
 * bounded-memory NDJSON streaming exports with truncation-detecting
 * validators, streaming-vs-vector replay equivalence, cross-shard trace
 * stitching, and the fast-tier fidelity audit.
 */

#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "bw/bw.h"

using namespace bw;
using namespace bw::cluster;

namespace {

/// Capture an NDJSON stream into one string.
obs::StreamSink
appendTo(std::string &out)
{
    return [&out](const std::string &chunk) {
        out += chunk;
        return true;
    };
}

/// The cluster_test small fleet: two groups, three engines, flat-service
/// models — plus one compiled GRU so stitching and the audit have real
/// chain profiles and cycle-accurate reference times to work with.
ClusterOptions
fleetClusterOptions()
{
    ClusterOptions co;
    ReplicaGroupSpec fast;
    fast.name = "s10";
    fast.config = NpuConfig::bwS10();
    fast.engines = 2;
    fast.engine.queueDepth = 8;
    fast.engine.defaultDeadlineMs = 20.0;
    ReplicaGroupSpec slow;
    slow.name = "s5";
    slow.config = NpuConfig::bwS5();
    slow.engines = 1;
    slow.engine.queueDepth = 8;
    slow.engine.defaultDeadlineMs = 20.0;
    co.groups = {fast, slow};
    co.weightCacheTiles = 64;
    return co;
}

uint32_t
addFleetModels(Cluster &c)
{
    c.addTimedModel("hot", 0.8, 24);
    c.addTimedModel("warm", 1.5, 24);
    Rng rng(5);
    Expected<uint32_t> id =
        c.addModel("gru64", makeGru(randomGruWeights(64, 64, rng)));
    EXPECT_TRUE(id.ok()) << id.status().toString();
    return id.value();
}

TrafficOptions
fleetTraffic(double rps, double duration_s)
{
    TrafficOptions t;
    t.baseRps = rps;
    t.durationS = duration_s;
    t.seed = 42;
    t.mix.push_back(ModelMix{0, 6.0, 1, 10.0});
    t.mix.push_back(ModelMix{1, 2.0, 1, 80.0});
    t.mix.push_back(ModelMix{2, 2.0, 2, 40.0});
    return t;
}

} // namespace

// --- FleetRegistry federation ---

TEST(FleetRegistry, FederatesShardSeriesUnderLabels)
{
    metrics::Registry cluster_reg, shard_a, shard_b;
    cluster_reg.counter("bw_cluster_requests_total", "requests").add(7);
    shard_a.counter("bw_serve_completed_total", "completions").add(3);
    shard_b.counter("bw_serve_completed_total", "completions").add(4);
    shard_b.gauge("bw_serve_queue_depth", "queue").set(2);

    obs::FleetRegistry fleet;
    fleet.setClusterRegistry(&cluster_reg);
    fleet.addShard("s10/0", "s10", &shard_a);
    fleet.addShard("s5/0", "s5", &shard_b);
    ASSERT_EQ(fleet.shardCount(), 2u);

    std::vector<metrics::MetricSnapshot> snap = fleet.federate();
    // Cluster series lead, unlabeled-by-fleet; shard series carry
    // {shard, group}.
    ASSERT_GE(snap.size(), 4u);
    EXPECT_EQ(snap[0].name, "bw_cluster_requests_total");
    EXPECT_EQ(snap[0].labels.size(), 0u);
    bool saw_a = false, saw_b = false;
    for (const metrics::MetricSnapshot &s : snap) {
        if (s.name != "bw_serve_completed_total")
            continue;
        for (const auto &kv : s.labels) {
            if (kv.first == "shard" && kv.second == "s10/0")
                saw_a = true;
            if (kv.first == "shard" && kv.second == "s5/0")
                saw_b = true;
        }
    }
    EXPECT_TRUE(saw_a);
    EXPECT_TRUE(saw_b);

    // The merged exposition regroups family-major: exactly one # TYPE
    // line per family even though two shards export the same family.
    std::string text = fleet.prometheus();
    size_t first = text.find("# TYPE bw_serve_completed_total");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find("# TYPE bw_serve_completed_total", first + 1),
              std::string::npos);
    EXPECT_NE(text.find("shard=\"s10/0\""), std::string::npos);
    EXPECT_NE(text.find("group=\"s5\""), std::string::npos);

    // Deterministic: same sources, same bytes.
    EXPECT_EQ(text, fleet.prometheus());
    EXPECT_EQ(fleet.metricsJson().dump(), fleet.metricsJson().dump());
}

TEST(FleetRegistry, SloRollupSumsShardsAndValidates)
{
    serve::SloMonitor a, b;
    // Shard a: all good; shard b: burns availability.
    for (int i = 0; i < 40; ++i)
        a.record(1000000 + i * 1000, 10.0, 1.0, true);
    for (int i = 0; i < 40; ++i)
        b.record(1000000 + i * 1000, 10.0, i % 2 ? 50.0 : 1.0, true);

    obs::FleetRegistry fleet;
    fleet.addShard("s10/0", "s10", nullptr, &a);
    fleet.addShard("s10/1", "s10", nullptr, &b);

    Json roll = fleet.sloRollupJson();
    Status st = serve::validateSloJson(roll);
    EXPECT_TRUE(st.ok()) << st.toString();
    // Lifetime totals are the sums of the shard monitors per class.
    Json ja = a.sloJson(), jb = b.sloJson();
    const Json *rc = roll.find("classes");
    const Json *ac = ja.find("classes");
    const Json *bc = jb.find("classes");
    ASSERT_NE(rc, nullptr);
    ASSERT_EQ(rc->size(), ac->size());
    for (size_t i = 0; i < rc->size(); ++i) {
        int64_t requests = rc->at(i).find("requests")->asInt();
        EXPECT_EQ(requests, ac->at(i).find("requests")->asInt() +
                                bc->at(i).find("requests")->asInt());
    }
    // Pure function of the shard snapshots.
    EXPECT_EQ(roll.dump(), fleet.sloRollupJson().dump());
}

// --- Streaming exports ---

TEST(RouteStream, WriterRoundTripsThroughValidator)
{
    std::string out;
    obs::RouteStreamWriter w(appendTo(out), "slo_aware", 3, 3);
    EXPECT_TRUE(w.decision(1, 0, 0, 2));
    EXPECT_TRUE(w.decision(2, 1, 1, 0));
    EXPECT_TRUE(w.decision(3, 0, 2, -1)); // front-door shed
    EXPECT_TRUE(w.finish());
    EXPECT_TRUE(w.finish()); // idempotent
    EXPECT_EQ(w.rows(), 3u);
    EXPECT_EQ(w.bytes(), out.size());

    std::istringstream in(out);
    Status st = obs::validateRouteStreamJson(in);
    EXPECT_TRUE(st.ok()) << st.toString();
}

TEST(RouteStream, ValidatorRejectsTruncation)
{
    std::string out;
    obs::RouteStreamWriter w(appendTo(out), "least_loaded", 2, 3);
    for (uint64_t s = 1; s <= 10; ++s)
        w.decision(s, 0, 0, static_cast<int32_t>(s % 2));
    w.finish();

    // Dropping the summary trailer is detected...
    std::string no_trailer = out.substr(0, out.rfind('\n', out.size() - 2) + 1);
    std::istringstream in1(no_trailer);
    EXPECT_FALSE(obs::validateRouteStreamJson(in1).ok());

    // ...as is a final line cut mid-record (partial JSON fragment).
    std::string cut = out.substr(0, out.size() - 25);
    std::istringstream in2(cut);
    EXPECT_FALSE(obs::validateRouteStreamJson(in2).ok());

    // A trailer whose row count disagrees with the rows is rejected.
    std::string lied = out;
    size_t pos = lied.find("\"rows\":10");
    ASSERT_NE(pos, std::string::npos);
    lied.replace(pos, 9, "\"rows\":11");
    std::istringstream in3(lied);
    EXPECT_FALSE(obs::validateRouteStreamJson(in3).ok());
}

TEST(RouteStream, AbortingSinkStopsWriter)
{
    int lines = 0;
    obs::StreamSink sink = [&lines](const std::string &) {
        return ++lines <= 2; // accept header + one row, then hang up
    };
    obs::RouteStreamWriter w(sink, "consistent_hash", 2, 3);
    EXPECT_TRUE(w.decision(1, 0, 0, 0));
    EXPECT_FALSE(w.decision(2, 0, 0, 1)); // sink aborts here
    EXPECT_TRUE(w.failed());
    EXPECT_FALSE(w.decision(3, 0, 0, 0)); // no-op after failure
    EXPECT_FALSE(w.finish());
    EXPECT_EQ(lines, 3);
}

TEST(SpanStream, RoundTripsAndRejectsTruncation)
{
    obs::SpanTracerOptions so;
    so.sampleEvery = 1;
    obs::SpanTracer tracer(so);
    ClusterOptions co = fleetClusterOptions();
    co.spanTracer = &tracer;
    Cluster c(co);
    addFleetModels(c);
    c.replay(generateTraffic(fleetTraffic(1500, 0.1)));

    std::string out;
    Status st = obs::streamSpanTreesNdjson(tracer, appendTo(out));
    ASSERT_TRUE(st.ok()) << st.toString();
    std::istringstream in(out);
    st = obs::validateSpanStreamJson(in);
    EXPECT_TRUE(st.ok()) << st.toString();

    std::string cut = out.substr(0, out.size() - 20);
    std::istringstream in2(cut);
    EXPECT_FALSE(obs::validateSpanStreamJson(in2).ok());
}

TEST(FlightStream, RoundTripsAndRejectsTruncation)
{
    ClusterOptions co = fleetClusterOptions();
    Cluster c(co);
    addFleetModels(c);
    c.replay(generateTraffic(fleetTraffic(1500, 0.1)));

    // The cluster mounts per-shard flight streams over these recorders;
    // exercise the streamer directly through exposeDebug's plumbing by
    // validating the per-shard flight documents stream cleanly.
    std::string out;
    obs::FlightRecorder standalone;
    for (uint64_t i = 1; i <= 5; ++i) {
        obs::FlightRecord fr;
        fr.seq = i;
        fr.id = i;
        fr.cls = obs::FlightClass::Ok;
        fr.admitUs = i * 100;
        fr.dequeueUs = fr.serviceUs = i * 100 + 10;
        fr.doneUs = i * 100 + 50;
        fr.latencyUs = 50;
        standalone.record(fr);
    }
    Status st = obs::streamFlightNdjson(standalone, appendTo(out));
    ASSERT_TRUE(st.ok()) << st.toString();
    std::istringstream in(out);
    st = obs::validateFlightStreamJson(in);
    EXPECT_TRUE(st.ok()) << st.toString();

    std::string cut = out.substr(0, out.size() - 15);
    std::istringstream in2(cut);
    EXPECT_FALSE(obs::validateFlightStreamJson(in2).ok());
}

// --- Cluster wiring: federation determinism, stitching, streaming
// --- replay, fidelity audit ---

TEST(Fleet, ClusterExportsAreByteIdenticalAcrossFreshReplays)
{
    // Audit and cluster-registry counters are cumulative across replays
    // of one Cluster, so replay determinism at the fleet plane is
    // stated over two fresh clusters fed the same trace.
    std::vector<ClusterRequest> trace =
        generateTraffic(fleetTraffic(2000, 0.3));

    auto runOnce = [&trace](std::string *metrics, std::string *slo,
                            std::string *spans, std::string *audit) {
        metrics::Registry reg;
        obs::SpanTracerOptions so;
        so.sampleEvery = 3;
        obs::SpanTracer tracer(so);
        ClusterOptions co = fleetClusterOptions();
        co.metricsRegistry = &reg;
        co.spanTracer = &tracer;
        co.fidelity = timing::Fidelity::Fast;
        co.auditEvery = 7;
        Cluster c(co);
        addFleetModels(c);
        c.replay(trace);
        *metrics = c.fleetMetricsText();
        EXPECT_EQ(c.fleetMetricsJson().dump(), c.fleetMetricsJson().dump());
        *slo = c.fleetSloJson().dump();
        *spans = "";
        obs::streamSpanTreesNdjson(tracer, appendTo(*spans));
        *audit = c.auditJson().dump();
        Status st = serve::validateSloJson(c.fleetSloJson());
        EXPECT_TRUE(st.ok()) << st.toString();
    };

    std::string m1, s1, sp1, a1, m2, s2, sp2, a2;
    runOnce(&m1, &s1, &sp1, &a1);
    runOnce(&m2, &s2, &sp2, &a2);
    EXPECT_EQ(m1, m2);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(sp1, sp2);
    EXPECT_EQ(a1, a2);
    EXPECT_NE(m1.find("bw_timing_audit_checks_total"), std::string::npos);
    EXPECT_NE(m1.find("shard=\"s10/0\""), std::string::npos);
}

TEST(Fleet, StitchedTreesCarryChainLeavesUnderExecute)
{
    obs::SpanTracerOptions so;
    so.sampleEvery = 1;
    obs::SpanTracer tracer(so);
    ClusterOptions co = fleetClusterOptions();
    co.spanTracer = &tracer;
    Cluster c(co);
    uint32_t gru = addFleetModels(c);
    c.replay(generateTraffic(fleetTraffic(1200, 0.2)));

    // Compiled-model requests get chain leaves stitched under execute;
    // timed-model requests keep the plain route -> request tree.
    Json doc = obs::spanTreeJson(tracer);
    Status st = obs::validateSpanTreeJson(doc);
    ASSERT_TRUE(st.ok()) << st.toString();
    const Json *traces = doc.find("traces");
    ASSERT_NE(traces, nullptr);
    size_t stitched = 0;
    for (size_t i = 0; i < traces->size(); ++i) {
        const Json *root = traces->at(i).find("root");
        ASSERT_NE(root, nullptr);
        EXPECT_EQ(root->find("name")->asString(), "route");
        bool is_gru = root->find("model") &&
                      root->find("model")->asInt() == gru;
        // Walk route -> request -> {queue_wait, dispatch, execute}.
        const Json *kids = root->find("children");
        if (!kids || kids->size() == 0)
            continue;
        const Json *req_kids = kids->at(0).find("children");
        if (!req_kids)
            continue;
        for (size_t k = 0; k < req_kids->size(); ++k) {
            const Json &child = req_kids->at(k);
            if (child.find("name")->asString() != "execute")
                continue;
            const Json *chains = child.find("children");
            if (is_gru && chains && chains->size() > 0) {
                ++stitched;
                EXPECT_EQ(chains->at(0).find("name")->asString(),
                          "chain[0]");
            }
            if (!is_gru) {
                EXPECT_TRUE(!chains || chains->size() == 0);
            }
        }
    }
    EXPECT_GT(stitched, 0u);
}

TEST(Fleet, StreamingReplayMatchesVectorReplay)
{
    TrafficOptions t = fleetTraffic(2500, 0.4);
    std::vector<ClusterRequest> trace = generateTraffic(t);

    auto makeCluster = [](metrics::Registry *reg,
                          obs::SpanTracer *tracer) {
        ClusterOptions co = fleetClusterOptions();
        co.metricsRegistry = reg;
        co.spanTracer = tracer;
        co.fidelity = timing::Fidelity::Fast;
        co.auditEvery = 11;
        return co;
    };

    metrics::Registry reg_v, reg_s;
    obs::SpanTracerOptions so;
    so.sampleEvery = 3;
    obs::SpanTracer tr_v(so), tr_s(so);
    Cluster vec(makeCluster(&reg_v, &tr_v));
    Cluster str(makeCluster(&reg_s, &tr_s));
    addFleetModels(vec);
    addFleetModels(str);

    ClusterStats sv = vec.replay(trace);

    std::string ndjson;
    obs::RouteStreamWriter writer(
        appendTo(ndjson), routePolicyName(str.router().options().policy),
        str.engineCount(), str.sloClassCount());
    str.setDecisionSink([&writer](const RouteDecision &d) {
        writer.decision(d.seq, d.model, d.cls, d.engine);
    });
    TrafficStream stream(t);
    ClusterStats ss = str.replayStream(
        [&stream](ClusterRequest *r) { return stream.next(r); });
    writer.finish();

    // Counters agree exactly; every decision flowed through the stream.
    EXPECT_EQ(sv.submitted, ss.submitted);
    EXPECT_EQ(sv.shed, ss.shed);
    EXPECT_EQ(sv.rejected, ss.rejected);
    EXPECT_EQ(sv.expired, ss.expired);
    EXPECT_EQ(sv.completed, ss.completed);
    EXPECT_EQ(sv.goodput, ss.goodput);
    EXPECT_DOUBLE_EQ(sv.goodputRps, ss.goodputRps);
    EXPECT_EQ(writer.rows(), ss.submitted);
    std::istringstream in(ndjson);
    EXPECT_TRUE(obs::validateRouteStreamJson(in).ok());

    // Observers are byte-identical: federated metrics, SLO rollup,
    // span-tree streams, per-shard flight documents.
    EXPECT_EQ(vec.fleetMetricsText(), str.fleetMetricsText());
    EXPECT_EQ(vec.fleetSloJson().dump(), str.fleetSloJson().dump());
    std::string spans_v, spans_s;
    obs::streamSpanTreesNdjson(tr_v, appendTo(spans_v));
    obs::streamSpanTreesNdjson(tr_s, appendTo(spans_s));
    EXPECT_EQ(spans_v, spans_s);
    for (unsigned e = 0; e < vec.engineCount(); ++e)
        EXPECT_EQ(vec.engineFlightJson(e).dump(),
                  str.engineFlightJson(e).dump());
    EXPECT_EQ(vec.auditChecks(), str.auditChecks());
    EXPECT_EQ(vec.auditDivergences(), str.auditDivergences());

    // Exact mean/max and count transfer through the sketch; percentile
    // estimates land within one geometric bucket (ratio 2^(1/4)) of the
    // exact nearest-rank values.
    EXPECT_EQ(sv.overall.requests, ss.overall.requests);
    EXPECT_NEAR(sv.overall.meanLatencyMs, ss.overall.meanLatencyMs, 1e-9);
    EXPECT_NEAR(sv.overall.maxLatencyMs, ss.overall.maxLatencyMs, 1e-9);
    const double ratio = std::exp2(0.25) + 1e-9;
    EXPECT_LE(ss.overall.p99LatencyMs, sv.overall.p99LatencyMs * ratio);
    EXPECT_GE(ss.overall.p99LatencyMs * ratio, sv.overall.p99LatencyMs);
}

TEST(Fleet, FidelityAuditCountsChecksWithoutDivergence)
{
    ClusterOptions co = fleetClusterOptions();
    co.fidelity = timing::Fidelity::Fast;
    co.auditEvery = 5;
    Cluster c(co);
    addFleetModels(c);
    c.replay(generateTraffic(fleetTraffic(2000, 0.3)));

    // The fast tier matches the cycle-accurate reference on this model.
    EXPECT_GT(c.auditChecks(), 0u);
    EXPECT_EQ(c.auditDivergences(), 0u);
    Json j = c.auditJson();
    EXPECT_EQ(j.find("schema")->asString(), "bw.audit/1");
    EXPECT_TRUE(j.find("active")->asBool());
    EXPECT_EQ(j.find("fidelity")->asString(), "fast");
    EXPECT_EQ(j.find("checks")->asInt(), c.auditChecks());
    ASSERT_NE(j.find("last_check"), nullptr);
    EXPECT_GT(j.find("last_check")->find("exact_ms")->asDouble(), 0.0);
}

TEST(Fleet, FidelityAuditInactiveWhenDisabledOrCycleAccurate)
{
    std::vector<ClusterRequest> trace =
        generateTraffic(fleetTraffic(1500, 0.1));
    {
        ClusterOptions co = fleetClusterOptions();
        co.fidelity = timing::Fidelity::Fast; // but auditEvery == 0
        Cluster c(co);
        addFleetModels(c);
        c.replay(trace);
        EXPECT_EQ(c.auditChecks(), 0u);
        EXPECT_FALSE(c.auditJson().find("active")->asBool());
    }
    {
        ClusterOptions co = fleetClusterOptions();
        co.fidelity = timing::Fidelity::CycleAccurate;
        co.auditEvery = 5; // nothing to audit against itself
        Cluster c(co);
        addFleetModels(c);
        c.replay(trace);
        EXPECT_EQ(c.auditChecks(), 0u);
        EXPECT_FALSE(c.auditJson().find("active")->asBool());
    }
}

TEST(Fleet, TrafficStreamMatchesGeneratedTrace)
{
    TrafficOptions t = fleetTraffic(3000, 0.5);
    t.diurnalAmplitude = 0.4;
    t.diurnalPeriodS = 0.25;
    t.bursts.push_back(BurstPhase{0.1, 0.05, 2.5});
    std::vector<ClusterRequest> trace = generateTraffic(t);
    ASSERT_GT(trace.size(), 500u);

    TrafficStream stream(t);
    size_t i = 0;
    ClusterRequest r;
    while (stream.next(&r)) {
        ASSERT_LT(i, trace.size());
        EXPECT_EQ(r.arrivalS, trace[i].arrivalS);
        EXPECT_EQ(r.model, trace[i].model);
        EXPECT_EQ(r.steps, trace[i].steps);
        EXPECT_EQ(r.deadlineMs, trace[i].deadlineMs);
        ++i;
    }
    EXPECT_EQ(i, trace.size());
    EXPECT_EQ(stream.produced(), trace.size());
    EXPECT_FALSE(stream.next(&r)); // stays drained
}

TEST(Fleet, EnvKnobsReachClusterAndEngineOptions)
{
    ::setenv("BW_ROUTE_LOG_MAX", "123", 1);
    ::setenv("BW_AUDIT_SAMPLE", "977", 1);
    ClusterOptions co = ClusterOptions::fromEnv();
    ::unsetenv("BW_ROUTE_LOG_MAX");
    ::unsetenv("BW_AUDIT_SAMPLE");
    EXPECT_EQ(co.router.logCapacity, 123u);
    EXPECT_EQ(co.auditEvery, 977u);

    ::setenv("BW_DEBUG_RING", "17", 1);
    serve::EngineOptions eo = serve::EngineOptions::fromEnv();
    ::unsetenv("BW_DEBUG_RING");
    EXPECT_EQ(eo.errorRingCapacity, 17u);
}
