/**
 * @file
 * Block floating point tests: format parsing, quantization error bounds
 * across mantissa widths (the paper's 2-5 bit range), exact integer dot
 * products, and the Section VI claim that narrow BFP preserves dot-
 * product accuracy.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bfp/bfp.h"
#include "common/rng.h"
#include "tensor/tensor.h"

namespace bw {
namespace {

TEST(BfpFormat, ParseAndPrint)
{
    BfpFormat f = BfpFormat::parse("1s.5e.2m");
    EXPECT_EQ(f.signBits, 1);
    EXPECT_EQ(f.expBits, 5);
    EXPECT_EQ(f.mantBits, 2);
    EXPECT_EQ(f.toString(), "1s.5e.2m");
    EXPECT_EQ(f, bfp152());
    EXPECT_EQ(BfpFormat::parse("1s.5e.5m"), bfp155());
}

TEST(BfpFormat, ParseRejectsMalformed)
{
    EXPECT_THROW(BfpFormat::parse("garbage"), Error);
    EXPECT_THROW(BfpFormat::parse("2s.5e.2m"), Error); // sign must be 1
    EXPECT_THROW(BfpFormat::parse("1s.9e.2m"), Error);
    EXPECT_THROW(BfpFormat::parse("1s.5e.0m"), Error);
}

TEST(BfpFormat, DerivedFields)
{
    BfpFormat f = bfp152();
    EXPECT_EQ(f.elemBits(), 3);
    EXPECT_EQ(f.maxMant(), 3);
    EXPECT_EQ(f.bias(), 15);
    EXPECT_EQ(f.minExp(), -15);
    EXPECT_EQ(f.maxExp(), 16);
}

TEST(BfpBlock, ZeroBlock)
{
    FVec v(128, 0.0f);
    BfpBlock b(v, bfp152());
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_EQ(b.dequant(i), 0.0f);
}

TEST(BfpBlock, PowersOfTwoExact)
{
    // Values that are the block max times a power of two within the
    // mantissa range are exactly representable.
    FVec v = {1.0f, 0.5f, -1.0f, 0.0f};
    BfpBlock b(v, BfpFormat{1, 5, 4});
    EXPECT_FLOAT_EQ(b.dequant(0), 1.0f);
    EXPECT_FLOAT_EQ(b.dequant(1), 0.5f);
    EXPECT_FLOAT_EQ(b.dequant(2), -1.0f);
    EXPECT_FLOAT_EQ(b.dequant(3), 0.0f);
}

TEST(BfpBlock, SharedExponentFollowsMax)
{
    FVec v = {8.0f, 0.25f};
    BfpBlock b(v, bfp152());
    EXPECT_EQ(b.exponent(), 3); // floor(log2(8))
    // 0.25 quantizes against the shared scale 2^(3-1)=4: q=round(1/16)=0.
    EXPECT_EQ(b.dequant(1), 0.0f);
}

/** Quantization error must be bounded by half an LSB of the shared
 *  scale, for every mantissa width in the paper's 2..5 bit range. */
class BfpErrorBound : public ::testing::TestWithParam<int>
{
};

TEST_P(BfpErrorBound, MaxAbsErrorWithinHalfLsb)
{
    int mant = GetParam();
    BfpFormat fmt{1, 5, mant};
    Rng rng(100 + mant);
    for (int trial = 0; trial < 50; ++trial) {
        FVec v(128);
        fillUniform(v, rng, -2.0f, 2.0f);
        BfpBlock b(v, fmt);
        double lsb = b.scale();
        for (size_t i = 0; i < v.size(); ++i) {
            EXPECT_LE(std::fabs(b.dequant(i) - v[i]), lsb / 2 + 1e-9)
                << "mant=" << mant << " i=" << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(MantissaWidths, BfpErrorBound,
                         ::testing::Values(2, 3, 4, 5, 7));

TEST(BfpBlock, RelativeErrorShrinksWithMantissa)
{
    Rng rng(42);
    FVec v(400);
    fillUniform(v, rng, -1.0f, 1.0f);
    double prev = 1e9;
    for (int mant : {2, 3, 4, 5, 6, 7}) {
        auto q = bfpRoundTrip(v, BfpFormat{1, 5, mant});
        QuantError e = measureQuantError(v, q);
        EXPECT_LT(e.relRmse, prev);
        prev = e.relRmse;
    }
    // 7-bit mantissa is already quite accurate.
    auto q = bfpRoundTrip(v, BfpFormat{1, 5, 7});
    EXPECT_LT(measureQuantError(v, q).relRmse, 0.01);
}

TEST(BfpBlock, DotMatchesDequantizedDot)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        FVec a(64), b(64);
        fillUniform(a, rng);
        fillUniform(b, rng);
        BfpBlock qa(a, bfp155()), qb(b, bfp155());
        // The integer-MAC dot must equal the dot of dequantized values.
        double expect = 0;
        for (size_t i = 0; i < a.size(); ++i)
            expect += static_cast<double>(qa.dequant(i)) * qb.dequant(i);
        EXPECT_NEAR(BfpBlock::dot(qa, qb), expect, 1e-6);
    }
}

TEST(BfpBlock, DotLengthMismatchThrows)
{
    FVec a(4, 1.0f), b(8, 1.0f);
    BfpBlock qa(a, bfp152()), qb(b, bfp152());
    EXPECT_THROW(BfpBlock::dot(qa, qb), Error);
}

TEST(BfpBlock, DotAccuracyVsFloat)
{
    // Section VI: narrow BFP dot products track full precision within
    // a few percent for realistic activations/weights.
    Rng rng(21);
    for (int mant : {3, 5}) {
        double worst = 0;
        for (int trial = 0; trial < 50; ++trial) {
            FVec a(400), b(400);
            fillUniform(a, rng, -0.1f, 0.1f);
            fillUniform(b, rng, -1.0f, 1.0f);
            double exact = 0;
            for (size_t i = 0; i < a.size(); ++i)
                exact += static_cast<double>(a[i]) * b[i];
            BfpBlock qa(a, BfpFormat{1, 5, mant});
            BfpBlock qb(b, BfpFormat{1, 5, mant});
            double got = BfpBlock::dot(qa, qb);
            // Normalize by the magnitude scale of the operands.
            double norm = 0.1 * 1.0 * std::sqrt(400.0);
            worst = std::max(worst, std::fabs(got - exact) / norm);
        }
        EXPECT_LT(worst, mant >= 5 ? 0.02 : 0.12) << "mant=" << mant;
    }
}

TEST(BfpBlock, SaturatesAtExponentCeiling)
{
    // Exponent clamps at +16; enormous values should not crash and
    // should keep ordering.
    FVec v = {1e30f, -1e30f, 1e29f};
    BfpBlock b(v, bfp152());
    EXPECT_GT(b.dequant(0), 0.0f);
    EXPECT_LT(b.dequant(1), 0.0f);
    EXPECT_EQ(b.exponent(), bfp152().maxExp());
}

TEST(QuantError, Metrics)
{
    FVec ref = {1.0f, 2.0f};
    FVec q = {1.5f, 2.0f};
    QuantError e = measureQuantError(ref, q);
    EXPECT_FLOAT_EQ(e.maxAbs, 0.5);
    EXPECT_NEAR(e.rmse, std::sqrt(0.25 / 2), 1e-9);
    EXPECT_GT(e.relRmse, 0.0);
}

} // namespace
} // namespace bw
