/**
 * @file
 * Property tests over randomly generated (structurally valid) programs:
 * assembler and binary-encoding round trips must be exact, chain
 * extraction must partition the instruction stream, and the timing
 * simulator must satisfy its conservation invariants on every program,
 * across a sweep of machine configurations.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "isa/assembler.h"
#include "isa/builder.h"
#include "isa/encoding.h"
#include "isa/validate.h"
#include "timing/npu_timing.h"

namespace bw {
namespace {

/** Random structurally valid program for a small machine. */
Program
randomProgram(Rng &rng, unsigned max_chains = 12)
{
    ProgramBuilder b;
    uint32_t rows = 1, cols = 1;
    unsigned chains = 1 + static_cast<unsigned>(
                              rng.integer(0, max_chains - 1));
    for (unsigned c = 0; c < chains; ++c) {
        if (rng.integer(0, 3) == 0) {
            rows = static_cast<uint32_t>(rng.integer(1, 3));
            cols = static_cast<uint32_t>(rng.integer(1, 3));
            b.sWr(ScalarReg::Rows, rows);
            b.sWr(ScalarReg::Cols, cols);
        }
        if (rng.integer(0, 5) == 0) {
            // Matrix move chain.
            b.mRd(MemId::Dram,
                  static_cast<uint32_t>(rng.integer(0, 15)));
            b.mWr(MemId::MatrixRf,
                  static_cast<uint32_t>(rng.integer(0, 15)));
            continue;
        }
        bool mvmul = rng.integer(0, 1) == 1;
        b.vRd(MemId::InitialVrf,
              static_cast<uint32_t>(rng.integer(0, 15)));
        if (mvmul)
            b.mvMul(static_cast<uint32_t>(rng.integer(0, 7)));
        // Up to one op per MFU unit class, in a legal order for 2 MFUs.
        int nops = static_cast<int>(rng.integer(0, 3));
        bool used_add = false, used_mul = false, used_act = false;
        for (int i = 0; i < nops; ++i) {
            switch (rng.integer(0, 2)) {
              case 0:
                if (used_add)
                    break;
                used_add = true;
                b.vvAdd(static_cast<uint32_t>(rng.integer(0, 15)));
                break;
              case 1:
                if (used_mul)
                    break;
                used_mul = true;
                b.vvMul(static_cast<uint32_t>(rng.integer(0, 15)));
                break;
              default:
                if (used_act)
                    break;
                used_act = true;
                b.vTanh();
                break;
            }
        }
        b.vWr(MemId::InitialVrf,
              static_cast<uint32_t>(rng.integer(16, 31)));
        if (rng.integer(0, 2) == 0)
            b.vWr(MemId::AddSubVrf,
                  static_cast<uint32_t>(rng.integer(0, 15)));
        if (rng.integer(0, 4) == 0)
            b.endChain();
    }
    return b.build();
}

NpuConfig
fuzzMachine(unsigned native, unsigned lanes, unsigned engines)
{
    NpuConfig c;
    c.name = "pf";
    c.nativeDim = native;
    c.lanes = lanes;
    c.tileEngines = engines;
    c.mrfSize = 64;
    c.mrfIndexSpace = 256;
    c.initialVrfSize = 64;
    c.addSubVrfSize = 64;
    c.multiplyVrfSize = 64;
    return c;
}

TEST(ProgramFuzz, AssemblerRoundTripExact)
{
    Rng rng(101);
    for (int trial = 0; trial < 50; ++trial) {
        Program p = randomProgram(rng);
        Program q = assemble(disassemble(p));
        ASSERT_EQ(q.size(), p.size()) << "trial " << trial;
        for (size_t i = 0; i < p.size(); ++i) {
            // end_chain is elided by chain extraction but must survive
            // the text round trip verbatim too.
            EXPECT_EQ(q[i], p[i]) << "trial " << trial << " instr " << i;
        }
    }
}

TEST(ProgramFuzz, BinaryRoundTripExact)
{
    Rng rng(102);
    for (int trial = 0; trial < 50; ++trial) {
        Program p = randomProgram(rng);
        Program q = decodeProgram(encodeProgram(p));
        ASSERT_EQ(q.size(), p.size());
        for (size_t i = 0; i < p.size(); ++i)
            EXPECT_EQ(q[i], p[i]);
    }
}

TEST(ProgramFuzz, ChainsPartitionTheProgram)
{
    Rng rng(103);
    for (int trial = 0; trial < 50; ++trial) {
        Program p = randomProgram(rng);
        auto chains = p.chains();
        // Every instruction belongs to exactly one chain, except
        // end_chain markers which separate them.
        std::vector<int> owner(p.size(), -1);
        for (size_t c = 0; c < chains.size(); ++c) {
            for (size_t i = chains[c].first; i < chains[c].end(); ++i) {
                EXPECT_EQ(owner[i], -1);
                owner[i] = static_cast<int>(c);
            }
        }
        for (size_t i = 0; i < p.size(); ++i) {
            if (p[i].op == Opcode::EndChain)
                EXPECT_EQ(owner[i], -1);
            else
                EXPECT_NE(owner[i], -1) << p[i].toString();
        }
    }
}

struct MachineShape
{
    unsigned native, lanes, engines;
};

class TimingInvariants : public ::testing::TestWithParam<MachineShape>
{
};

TEST_P(TimingInvariants, ConservationAcrossRandomPrograms)
{
    MachineShape ms = GetParam();
    NpuConfig cfg = fuzzMachine(ms.native, ms.lanes, ms.engines);
    Rng rng(ms.native * 131 + ms.lanes);
    for (int trial = 0; trial < 10; ++trial) {
        Program p = randomProgram(rng, 8);
        timing::NpuTiming sim(cfg);
        auto res = sim.run(p, 3);

        // Conservation: the simulator executed exactly the program's
        // chains and tile ops, three times.
        auto chains = p.chains();
        uint64_t vec_mat = 0, tiles = 0;
        for (const Chain &c : chains) {
            if (c.kind == Chain::Kind::Scalar)
                continue;
            ++vec_mat;
            if (c.hasMvMul)
                tiles += static_cast<uint64_t>(c.rows) * c.cols;
        }
        EXPECT_EQ(res.chainsExecuted, 3 * vec_mat);
        EXPECT_EQ(res.nativeTileOps, 3 * tiles);
        // end_chain markers are chain delimiters, not dispatched work.
        uint64_t dispatched = 0;
        for (const Instruction &inst : p.instructions()) {
            if (inst.op != Opcode::EndChain)
                ++dispatched;
        }
        EXPECT_EQ(res.instructionsDispatched, 3 * dispatched);

        // Causality and bounds.
        EXPECT_LE(res.mvmBusyCycles,
                  static_cast<uint64_t>(res.totalCycles) *
                      cfg.tileEngines);
        EXPECT_LE(res.mvmOccupancy(cfg), 1.0);
        for (size_t i = 1; i < res.iterationEnd.size(); ++i)
            EXPECT_GE(res.iterationEnd[i], res.iterationEnd[i - 1]);

        // Determinism.
        timing::NpuTiming sim2(cfg);
        EXPECT_EQ(sim2.run(p, 3).totalCycles, res.totalCycles);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TimingInvariants,
    ::testing::Values(MachineShape{8, 2, 1}, MachineShape{8, 2, 2},
                      MachineShape{16, 4, 2}, MachineShape{16, 8, 4},
                      MachineShape{32, 8, 3}, MachineShape{64, 16, 6}));

} // namespace
} // namespace bw
