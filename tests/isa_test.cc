/**
 * @file
 * ISA tests: Table II opcode metadata, chain extraction rules, the
 * program builder, MFU budgeting, and configuration-level validation.
 */

#include <gtest/gtest.h>

#include "common/logging.h"

#include "arch/npu_config.h"
#include "isa/analysis.h"
#include "isa/builder.h"
#include "isa/validate.h"

namespace bw {
namespace {

TEST(Opcode, TableTwoMetadata)
{
    // Chains must begin with v_rd or m_rd: the only out-without-in ops.
    int generators = 0;
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        const OpcodeInfo &info = opcodeInfo(static_cast<Opcode>(i));
        if (info.in == ChainType::None && info.out != ChainType::None)
            ++generators;
    }
    EXPECT_EQ(generators, 2);

    EXPECT_STREQ(opcodeName(Opcode::MvMul), "mv_mul");
    EXPECT_STREQ(opcodeName(Opcode::VvASubB), "vv_a_sub_b");
    EXPECT_EQ(opcodeInfo(Opcode::MvMul).in, ChainType::Vector);
    EXPECT_EQ(opcodeInfo(Opcode::MvMul).out, ChainType::Vector);
    EXPECT_EQ(opcodeInfo(Opcode::MRd).out, ChainType::Matrix);
    EXPECT_EQ(opcodeInfo(Opcode::SWr).unit, UnitClass::Control);
    EXPECT_TRUE(opcodeInfo(Opcode::SWr).hasValue);
    EXPECT_TRUE(opcodeInfo(Opcode::VRd).hasMemOperand);
    EXPECT_FALSE(opcodeInfo(Opcode::VSigm).hasIndex);
}

TEST(Opcode, ParseRoundTrip)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        Opcode op = static_cast<Opcode>(i);
        EXPECT_EQ(parseOpcode(opcodeName(op)), op);
    }
    EXPECT_THROW(parseOpcode("v_bogus"), Error);
}

TEST(Opcode, UnitClassification)
{
    EXPECT_TRUE(isMfuOp(Opcode::VvAdd));
    EXPECT_TRUE(isMfuOp(Opcode::VvMul));
    EXPECT_TRUE(isMfuOp(Opcode::VTanh));
    EXPECT_FALSE(isMfuOp(Opcode::MvMul));
    EXPECT_FALSE(isMfuOp(Opcode::VRd));
    EXPECT_TRUE(isActivationOp(Opcode::VRelu));
    EXPECT_FALSE(isActivationOp(Opcode::VvMax));
}

TEST(Instruction, ToString)
{
    EXPECT_EQ(Instruction::vRd(MemId::InitialVrf, 12).toString(),
              "v_rd ivrf, 12");
    EXPECT_EQ(Instruction::vRd(MemId::NetQ).toString(), "v_rd netq");
    EXPECT_EQ(Instruction::mvMul(5).toString(), "mv_mul 5");
    EXPECT_EQ(Instruction::vvAdd(3).toString(), "vv_add 3");
    EXPECT_EQ(Instruction::vSigm().toString(), "v_sigm");
    EXPECT_EQ(Instruction::sWr(ScalarReg::Rows, 4).toString(),
              "s_wr rows, 4");
}

TEST(Chains, PaperLstmChainStructure)
{
    // The f-gate chain from the paper's LSTM kernel.
    ProgramBuilder b;
    b.tile(5, 5);
    b.vRd(MemId::InitialVrf, 0)
        .mvMul(0)
        .vvAdd(0)
        .vSigm()
        .vvMul(0)
        .vWr(MemId::AddSubVrf, 5);
    Program p = b.build();
    auto chains = p.chains();
    ASSERT_EQ(chains.size(), 3u); // two s_wr + the vector chain
    const Chain &c = chains[2];
    EXPECT_EQ(c.kind, Chain::Kind::Vector);
    EXPECT_TRUE(c.hasMvMul);
    EXPECT_EQ(c.rows, 5u);
    EXPECT_EQ(c.cols, 5u);
    EXPECT_EQ(c.count, 6u);
}

TEST(Chains, MulticastWrites)
{
    ProgramBuilder b;
    b.vRd(MemId::InitialVrf, 0)
        .vTanh()
        .vWr(MemId::InitialVrf, 1)
        .vWr(MemId::MultiplyVrf, 2)
        .vWr(MemId::NetQ);
    auto chains = b.build().chains();
    ASSERT_EQ(chains.size(), 1u);
    EXPECT_EQ(chains[0].count, 5u);
}

TEST(Chains, MatrixChainExactlyTwo)
{
    ProgramBuilder b;
    b.mRd(MemId::Dram, 0).mWr(MemId::MatrixRf, 0);
    auto chains = b.build().chains();
    ASSERT_EQ(chains.size(), 1u);
    EXPECT_EQ(chains[0].kind, Chain::Kind::Matrix);

    // m_rd not followed by m_wr is malformed.
    ProgramBuilder bad;
    bad.mRd(MemId::Dram, 0).vRd(MemId::InitialVrf, 0);
    EXPECT_THROW(bad.build(), Error);
}

TEST(Chains, IterationsCaptured)
{
    ProgramBuilder b;
    b.sWr(ScalarReg::Rows, 2)
        .sWr(ScalarReg::Iterations, 100)
        .vRd(MemId::InitialVrf, 0)
        .vRelu()
        .vWr(MemId::InitialVrf, 200);
    auto chains = b.build().chains();
    EXPECT_EQ(chains.back().iters, 100u);
    EXPECT_EQ(chains.back().rows, 2u);
}

TEST(Chains, MalformedPrograms)
{
    {
        // Pointwise op with no open chain.
        Program p;
        p.push(Instruction::vvAdd(0));
        EXPECT_THROW(p.chains(), Error);
    }
    {
        // Chain never sinks.
        Program p;
        p.push(Instruction::vRd(MemId::InitialVrf, 0));
        p.push(Instruction::vTanh());
        EXPECT_THROW(p.chains(), Error);
    }
    {
        // mv_mul not at the head of the pipe.
        Program p;
        p.push(Instruction::vRd(MemId::InitialVrf, 0));
        p.push(Instruction::vTanh());
        p.push(Instruction::mvMul(0));
        p.push(Instruction::vWr(MemId::InitialVrf, 1));
        EXPECT_THROW(p.chains(), Error);
    }
    {
        // end_chain with nothing open.
        Program p;
        p.push(Instruction::endChain());
        EXPECT_THROW(p.chains(), Error);
    }
    {
        // s_wr with non-positive value.
        Program p;
        p.push(Instruction::sWr(ScalarReg::Rows, 0));
        EXPECT_THROW(p.chains(), Error);
    }
    {
        // v_rd inside an open chain.
        Program p;
        p.push(Instruction::vRd(MemId::InitialVrf, 0));
        p.push(Instruction::vRd(MemId::InitialVrf, 1));
        EXPECT_THROW(p.chains(), Error);
    }
}

TEST(MfusRequired, SegmentsByUnitReuse)
{
    using O = Opcode;
    EXPECT_EQ(mfusRequired({}), 0u);
    EXPECT_EQ(mfusRequired({O::VvAdd}), 1u);
    // add, sigm, mul all fit one MFU's three units.
    EXPECT_EQ(mfusRequired({O::VvAdd, O::VSigm, O::VvMul}), 1u);
    // The paper's c-gate: add, tanh, mul, add -> two MFUs.
    EXPECT_EQ(mfusRequired({O::VvAdd, O::VTanh, O::VvMul, O::VvAdd}), 2u);
    // Two consecutive adds need two add/sub units.
    EXPECT_EQ(mfusRequired({O::VvAdd, O::VvAdd}), 2u);
    // Three activations in a row need three MFUs.
    EXPECT_EQ(mfusRequired({O::VTanh, O::VSigm, O::VRelu}), 3u);
    // vv_max shares the add/sub unit.
    EXPECT_EQ(mfusRequired({O::VvMax, O::VvASubB}), 2u);
}

TEST(Validate, AcceptsPaperStyleChain)
{
    NpuConfig cfg = NpuConfig::bwS10();
    ProgramBuilder b;
    b.tile(5, 5);
    b.vRd(MemId::InitialVrf, 0)
        .mvMul(0)
        .vvAdd(0)
        .vTanh()
        .vvMul(0)
        .vvAdd(5)
        .vWr(MemId::MultiplyVrf, 0)
        .vWr(MemId::InitialVrf, 5);
    EXPECT_NO_THROW(checkProgram(b.build(), cfg));
}

TEST(Validate, RejectsTooManyMfuSegments)
{
    NpuConfig cfg = NpuConfig::bwS10(); // 2 MFUs
    ProgramBuilder b;
    b.vRd(MemId::InitialVrf, 0)
        .vTanh()
        .vSigm()
        .vRelu() // 3 activation units -> 3 MFUs
        .vWr(MemId::InitialVrf, 1);
    auto diags = validateProgram(b.build(), cfg);
    ASSERT_FALSE(diags.empty());
    EXPECT_NE(diags[0].find("MFU"), std::string::npos);
}

TEST(Validate, RejectsIllegalMemorySpaces)
{
    NpuConfig cfg = NpuConfig::bwS10();
    {
        // m_rd from a VRF is illegal (NetQ or DRAM only).
        Program p;
        p.push(Instruction::mRd(MemId::InitialVrf, 0));
        p.push(Instruction::mWr(MemId::MatrixRf, 0));
        EXPECT_FALSE(validateProgram(p, cfg).empty());
    }
    {
        // m_wr to NetQ is illegal (MatrixRf or DRAM only).
        Program p;
        p.push(Instruction::mRd(MemId::Dram, 0));
        p.push(Instruction::mWr(MemId::NetQ, 0));
        EXPECT_FALSE(validateProgram(p, cfg).empty());
    }
}

TEST(Validate, RejectsOutOfRangeFootprints)
{
    NpuConfig cfg = NpuConfig::bwS10();
    {
        ProgramBuilder b;
        b.vRd(MemId::InitialVrf, cfg.initialVrfSize) // one past the end
            .vWr(MemId::InitialVrf, 0);
        EXPECT_FALSE(validateProgram(b.build(), cfg).empty());
    }
    {
        // Mega-SIMD footprint: rows*cols tiles must fit the MRF index
        // space.
        ProgramBuilder b;
        b.tile(100, 100); // 10,000 tiles
        b.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 0);
        EXPECT_FALSE(validateProgram(b.build(), cfg).empty());
    }
    {
        // Iterated footprint scales with the iteration count.
        ProgramBuilder b;
        b.sWr(ScalarReg::Iterations, 1000);
        b.vRd(MemId::InitialVrf, 0).vRelu().vWr(MemId::InitialVrf, 0);
        EXPECT_FALSE(validateProgram(b.build(), cfg).empty());
    }
}

TEST(Analysis, MegaSimdOpExpansion)
{
    NpuConfig cfg = NpuConfig::bwS10();
    // A 7x7-tile mv_mul (the largest GRU's recurrent matrix) dispatches
    // 2 * 2800 * 2800 = 15.68M ops from one instruction — "over 7M".
    Instruction mv = Instruction::mvMul(0);
    OpCount ops = instructionOps(mv, 7, 7, cfg);
    EXPECT_EQ(ops, 2ull * 2800 * 2800);
    EXPECT_GT(ops, 7'000'000u);

    ProgramBuilder b;
    b.tile(7, 7);
    b.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 8);
    ProgramStats s = analyzeProgram(b.build(), cfg);
    EXPECT_EQ(s.maxOpsPerInstruction, ops);
    EXPECT_EQ(s.vectorChains, 1u);
    EXPECT_EQ(s.scalarWrites, 2u);
    EXPECT_EQ(s.mvmOps, ops);
}

TEST(Analysis, IterationsMultiplyOps)
{
    NpuConfig cfg = NpuConfig::bwS10();
    ProgramBuilder b;
    b.sWr(ScalarReg::Iterations, 10);
    b.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 10);
    ProgramStats s = analyzeProgram(b.build(), cfg);
    EXPECT_EQ(s.mvmOps, 10ull * 2 * 400 * 400);
}

} // namespace
} // namespace bw
