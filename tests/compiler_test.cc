/**
 * @file
 * Compiler tests: chain fusion against the paper's hand-written LSTM
 * kernel shape, allocation legality, software-pipelining correctness,
 * and end-to-end functional equivalence of compiled LSTM/GRU/MLP models
 * against the float reference within BFP/float16 error bounds.
 */

#include <gtest/gtest.h>

#include "compiler/lowering.h"
#include "func/machine.h"
#include "isa/analysis.h"
#include "isa/validate.h"
#include "refmodel/rnn_ref.h"
#include "timing/npu_timing.h"

namespace bw {
namespace {

/** Small test target: N=16, plenty of storage, high-precision BFP so
 *  functional comparisons are tight. */
NpuConfig
testConfig(int mant = 7)
{
    NpuConfig c;
    c.name = "test16";
    c.nativeDim = 16;
    c.lanes = 4;
    c.tileEngines = 2;
    c.mrfSize = 512;
    c.mrfIndexSpace = 2048;
    c.initialVrfSize = 256;
    c.addSubVrfSize = 256;
    c.multiplyVrfSize = 256;
    c.precision = BfpFormat{1, 5, mant};
    return c;
}

TEST(Compiler, LstmChainShapesMatchPaperKernel)
{
    Rng rng(1);
    NpuConfig cfg = testConfig();
    GirGraph g = makeLstm(randomLstmWeights(32, 32, rng));
    CompiledModel m = compileGir(g, cfg, {.pipelineInputProjections =
                                              false});

    auto chains = m.step.chains();
    unsigned vector_chains = 0, mvmul_chains = 0;
    size_t longest = 0;
    for (const Chain &c : chains) {
        if (c.kind != Chain::Kind::Vector)
            continue;
        ++vector_chains;
        if (c.hasMvMul)
            ++mvmul_chains;
        longest = std::max(longest, c.count);
    }
    // Paper kernel: 1 input chain + 4 xW chains + f/i/o gates + c gate
    // + h chain = 10 chains, 8 of them matrix-vector.
    EXPECT_EQ(vector_chains, 10u);
    EXPECT_EQ(mvmul_chains, 8u);
    // The c-gate chain (v_rd, mv_mul, add, tanh, mul, add, 2 writes) is
    // the longest.
    EXPECT_GE(longest, 8u);
    // Instruction budget comparable to the paper's "under 100 lines".
    EXPECT_LT(m.step.size(), 100u);
}

TEST(Compiler, LstmFunctionalMatchesReference)
{
    Rng rng(2);
    NpuConfig cfg = testConfig();
    LstmWeights w = randomLstmWeights(48, 32, rng); // padded dims
    GirGraph g = makeLstm(w);
    CompiledModel m = compileGir(g, cfg);

    FuncMachine machine(cfg);
    m.install(machine);

    std::vector<FVec> xs;
    for (int t = 0; t < 8; ++t) {
        FVec x(32);
        fillUniform(x, rng, -0.5f, 0.5f);
        xs.push_back(x);
    }
    auto got = m.runSequence(machine, xs);
    auto want = lstmRefRun(w, xs);
    ASSERT_EQ(got.size(), want.size());
    for (size_t t = 0; t < got.size(); ++t) {
        EXPECT_LT(maxAbsDiff(got[t], want[t]), 0.03)
            << "diverged at step " << t;
    }
}

TEST(Compiler, GruFunctionalMatchesReference)
{
    Rng rng(3);
    NpuConfig cfg = testConfig();
    GruWeights w = randomGruWeights(32, 48, rng);
    GirGraph g = makeGru(w);
    CompiledModel m = compileGir(g, cfg);
    EXPECT_FALSE(m.prologue.empty()); // GRU is software-pipelined

    FuncMachine machine(cfg);
    m.install(machine);

    std::vector<FVec> xs;
    for (int t = 0; t < 8; ++t) {
        FVec x(48);
        fillUniform(x, rng, -0.5f, 0.5f);
        xs.push_back(x);
    }
    auto got = m.runSequence(machine, xs);
    auto want = gruRefRun(w, xs);
    for (size_t t = 0; t < got.size(); ++t) {
        EXPECT_LT(maxAbsDiff(got[t], want[t]), 0.03)
            << "diverged at step " << t;
    }
}

TEST(Compiler, PipelinedAndUnpipelinedAgree)
{
    Rng rng(4);
    NpuConfig cfg = testConfig();
    GruWeights w = randomGruWeights(32, 32, rng);

    CompiledModel pip = compileGir(makeGru(w), cfg,
                                   {.pipelineInputProjections = true});
    CompiledModel flat = compileGir(makeGru(w), cfg,
                                    {.pipelineInputProjections = false});
    EXPECT_FALSE(pip.prologue.empty());
    EXPECT_TRUE(flat.prologue.empty());

    std::vector<FVec> xs;
    for (int t = 0; t < 5; ++t) {
        FVec x(32);
        fillUniform(x, rng, -0.5f, 0.5f);
        xs.push_back(x);
    }
    FuncMachine ma(cfg), mb(cfg);
    pip.install(ma);
    flat.install(mb);
    auto ya = pip.runSequence(ma, xs);
    auto yb = flat.runSequence(mb, xs);
    for (size_t t = 0; t < xs.size(); ++t)
        EXPECT_LT(maxAbsDiff(ya[t], yb[t]), 1e-6) << "step " << t;
}

TEST(Compiler, MlpFunctionalMatchesReference)
{
    Rng rng(5);
    NpuConfig cfg = testConfig();
    MlpWeights w = randomMlpWeights({32, 64, 48, 16}, rng);
    CompiledModel m = compileGir(makeMlp(w), cfg);
    EXPECT_TRUE(m.prologue.empty()); // no recurrent state to pipeline

    FuncMachine machine(cfg);
    m.install(machine);
    FVec x(32);
    fillUniform(x, rng, -0.5f, 0.5f);
    FVec got = m.runStep(machine, x);
    FVec want = mlpRef(w, x);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_LT(maxAbsDiff(got, want), 0.05);
}

TEST(Compiler, UnpaddedDimensionsUseThinTiles)
{
    Rng rng(6);
    NpuConfig cfg = testConfig();
    // 40 is 2.5 native tiles: the tail tile is thin.
    GruWeights w = randomGruWeights(40, 40, rng);
    CompiledModel m = compileGir(makeGru(w), cfg);
    EXPECT_FALSE(m.tileBeats.empty());
    // Element-packed capacity: 6 * 40 * 40 / 256 = 37.5 -> 38 tiles.
    EXPECT_EQ(m.mrfTilesUsed, 38u);

    // And it still computes correctly.
    FuncMachine machine(cfg);
    m.install(machine);
    std::vector<FVec> xs(4, FVec(40));
    for (auto &x : xs)
        fillUniform(x, rng, -0.5f, 0.5f);
    auto got = m.runSequence(machine, xs);
    auto want = gruRefRun(w, xs);
    for (size_t t = 0; t < got.size(); ++t)
        EXPECT_LT(maxAbsDiff(got[t], want[t]), 0.03);
}

TEST(Compiler, ModelTooLargeReportsPartitioning)
{
    Rng rng(7);
    NpuConfig cfg = testConfig();
    cfg.mrfSize = 4; // tiny MRF
    try {
        compileGir(makeLstm(randomLstmWeights(64, 64, rng)), cfg);
        FAIL() << "expected capacity failure";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("partition"),
                  std::string::npos);
    }
}

TEST(Compiler, ValidatedAgainstTarget)
{
    Rng rng(8);
    NpuConfig cfg = testConfig();
    CompiledModel m = compileGir(makeLstm(randomLstmWeights(32, 32, rng)),
                                 cfg);
    EXPECT_NO_THROW(checkProgram(m.step, cfg));
    ProgramStats s = analyzeProgram(m.step, cfg);
    // Dimensions are native-aligned here, so padded ops equal logical.
    EXPECT_EQ(s.mvmOps, m.matmulOpsPerStep);
}

TEST(Compiler, RunStepRejectsPipelinedModel)
{
    Rng rng(9);
    NpuConfig cfg = testConfig();
    CompiledModel m = compileGir(makeGru(randomGruWeights(32, 32, rng)),
                                 cfg);
    FuncMachine machine(cfg);
    m.install(machine);
    FVec x(32, 0.0f);
    EXPECT_THROW(m.runStep(machine, x), Error);
}

TEST(Compiler, TimingRunsOnCompiledModel)
{
    Rng rng(10);
    NpuConfig cfg = testConfig();
    CompiledModel m = compileGir(makeGru(randomGruWeights(32, 32, rng)),
                                 cfg);
    timing::NpuTiming sim(cfg);
    sim.setTileBeats(m.tileBeats);
    auto res = sim.run(m.prologue, m.step, 20);
    EXPECT_EQ(res.iterationEnd.size(), 20u);
    EXPECT_GT(res.steadyStateIterationCycles(), 0u);
}

TEST(BatchInterleave, FunctionalPerSampleIndependence)
{
    // Section VII-B3 future work: one configured chain iterates over
    // the batch with strided operands. Each sample must evolve exactly
    // as it would served alone.
    Rng rng(11);
    NpuConfig cfg = testConfig();
    GruWeights w = randomGruWeights(32, 32, rng);
    const unsigned batch = 3, steps = 4;

    CompiledModel batched =
        compileGir(makeGru(w), cfg,
                   {.pipelineInputProjections = false,
                    .batchSize = batch});
    EXPECT_EQ(batched.batchSize, batch);

    FuncMachine bm(cfg);
    batched.install(bm);

    // Per-sample input sequences.
    std::vector<std::vector<FVec>> seqs(batch);
    for (unsigned b = 0; b < batch; ++b) {
        for (unsigned t = 0; t < steps; ++t) {
            FVec x(32);
            fillUniform(x, rng, -0.5f, 0.5f);
            seqs[b].push_back(x);
        }
    }

    std::vector<std::vector<FVec>> got(batch);
    for (unsigned t = 0; t < steps; ++t) {
        std::vector<FVec> xs;
        for (unsigned b = 0; b < batch; ++b)
            xs.push_back(seqs[b][t]);
        auto outs = batched.runStepBatch(bm, xs);
        for (unsigned b = 0; b < batch; ++b)
            got[b].push_back(outs[b]);
    }

    for (unsigned b = 0; b < batch; ++b) {
        auto want = gruRefRun(w, seqs[b]);
        for (unsigned t = 0; t < steps; ++t) {
            EXPECT_LT(maxAbsDiff(got[b][t], want[t]), 0.03)
                << "sample " << b << " step " << t;
        }
    }
}

TEST(BatchInterleave, SharesWeightsAcrossBatch)
{
    Rng rng(12);
    NpuConfig cfg = testConfig();
    GruWeights w = randomGruWeights(32, 32, rng);
    CompiledModel one = compileGir(makeGru(w), cfg, {});
    CompiledModel four =
        compileGir(makeGru(w), cfg, {.batchSize = 4});
    // Same pinned-weight footprint: the batch shares the MRF image.
    EXPECT_EQ(one.mrfTilesUsed, four.mrfTilesUsed);
    // Same chain count: the batch rides the iteration registers.
    EXPECT_EQ(one.step.chains().size() + 2, four.step.chains().size());
}

TEST(BatchInterleave, TimingThroughputImprovesForSmallModels)
{
    // The point of the optimization: small models amortize the
    // per-chain configuration floor across the batch.
    NpuConfig cfg = NpuConfig::bwS10();
    Rng rng(13);
    GruWeights w = randomGruWeights(1024, 1024, rng);

    auto per_sample_cycles = [&](unsigned batch) {
        CompiledModel m = compileGir(makeGru(w), cfg,
                                     {.batchSize = batch});
        timing::NpuTiming sim(cfg);
        sim.setTileBeats(m.tileBeats);
        auto res = sim.run(m.prologue, m.step, 25);
        return static_cast<double>(res.steadyStateIterationCycles()) /
               batch;
    };
    double b1 = per_sample_cycles(1);
    double b4 = per_sample_cycles(4);
    EXPECT_LT(b4, b1 * 0.5); // at least 2x per-sample throughput
}

} // namespace
} // namespace bw
