/**
 * @file
 * CNN lowering tests: functional equivalence of the iterated-chain conv
 * lowering against the direct reference over a sweep of layer shapes,
 * plan structure, and ResNet-50 table sanity.
 */

#include <gtest/gtest.h>

#include "compiler/conv_lowering.h"
#include "isa/validate.h"
#include "refmodel/conv_ref.h"
#include "timing/npu_timing.h"
#include "workloads/resnet50.h"

namespace bw {
namespace {

NpuConfig
convTestConfig()
{
    NpuConfig c;
    c.name = "conv16";
    c.nativeDim = 16;
    c.lanes = 4;
    c.tileEngines = 2;
    c.mrfSize = 256;
    c.mrfIndexSpace = 1024;
    c.initialVrfSize = 512;
    c.addSubVrfSize = 128;
    c.multiplyVrfSize = 64;
    c.precision = BfpFormat{1, 5, 7};
    return c;
}

struct ConvCase
{
    unsigned hw, inC, outC, k, stride, pad;
    bool relu;
};

class ConvFunctional : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvFunctional, MatchesReference)
{
    ConvCase p = GetParam();
    ConvSpec s;
    s.inH = p.hw;
    s.inW = p.hw;
    s.inC = p.inC;
    s.outC = p.outC;
    s.kH = p.k;
    s.kW = p.k;
    s.stride = p.stride;
    s.pad = p.pad;
    s.relu = p.relu;

    Rng rng(p.hw + p.inC + p.outC + p.k);
    FMat w(s.outC, s.patchLen());
    fillUniform(w, rng, -0.5f, 0.5f);
    FVec bias(s.outC);
    for (auto &b : bias)
        b = rng.uniformF(-0.2f, 0.2f);
    FTensor4 in(1, s.inH, s.inW, s.inC);
    for (auto &v : in.data())
        v = rng.uniformF(-0.5f, 0.5f);

    FuncMachine m(convTestConfig());
    FTensor4 got = runConvLayerFunctional(m, s, w, bias, in);
    FTensor4 want = conv2dRef(s, w, bias, in);

    ASSERT_EQ(got.size(), want.size());
    double worst = 0;
    for (size_t i = 0; i < got.size(); ++i)
        worst = std::max(worst,
                         std::fabs(static_cast<double>(got.data()[i]) -
                                   want.data()[i]));
    EXPECT_LT(worst, 0.06);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvFunctional,
    ::testing::Values(ConvCase{6, 3, 8, 3, 1, 1, true},   // same-pad 3x3
                      ConvCase{8, 16, 16, 1, 1, 0, true}, // 1x1
                      ConvCase{8, 4, 8, 3, 2, 1, false},  // strided
                      ConvCase{5, 7, 5, 5, 1, 2, true},   // odd dims
                      ConvCase{7, 16, 32, 3, 1, 1, true},
                      ConvCase{4, 1, 4, 3, 1, 0, false})); // valid conv

TEST(ConvPlan, StructureAndValidation)
{
    NpuConfig cfg = convTestConfig();
    ConvSpec a;
    a.name = "a";
    a.inH = a.inW = 8;
    a.inC = 16;
    a.outC = 32;
    a.kH = a.kW = 3;
    a.pad = 1;
    ConvSpec b = a;
    b.name = "b";
    b.inC = 32;
    b.outC = 16;

    ConvNetPlan plan = planConvNet({a, b}, cfg);
    ASSERT_EQ(plan.layers.size(), 2u);
    EXPECT_EQ(plan.layers[0].rowTiles, 2u);  // 32/16
    EXPECT_EQ(plan.layers[0].colTiles, 9u);  // 3*3*16/16
    EXPECT_EQ(plan.layers[0].mrfBase, 0u);
    EXPECT_NE(plan.layers[1].mrfBase, 0u);   // ping-pong buffer
    EXPECT_EQ(plan.totalOps, a.macOps() + b.macOps());
    EXPECT_NO_THROW(checkProgram(plan.program, cfg));
}

TEST(ConvPlan, TimingRunsAndChargesDram)
{
    NpuConfig cfg = convTestConfig();
    ConvSpec a;
    a.inH = a.inW = 8;
    a.inC = 16;
    a.outC = 16;
    a.kH = a.kW = 3;
    a.pad = 1;
    ConvNetPlan plan = planConvNet({a, a, a}, cfg);

    timing::NpuTiming sim(cfg);
    sim.setTileBeats(plan.tileBeats);
    auto res = sim.run(plan.program, 1);
    EXPECT_GT(res.totalCycles, 0u);
    EXPECT_GT(res.stats.counter("dram_busy_cycles"), 0u);
    EXPECT_EQ(res.nativeTileOps, 3u * 64 * 9); // 64 pos x 9 tiles
}

TEST(ConvPlan, LayersSerializeThroughActivations)
{
    NpuConfig cfg = convTestConfig();
    ConvSpec a;
    a.inH = a.inW = 8;
    a.inC = 16;
    a.outC = 16;
    a.kH = a.kW = 1;

    timing::NpuTiming sim(cfg);
    Cycles one = sim.run(planConvNet({a}, cfg).program, 1).totalCycles;
    Cycles four =
        sim.run(planConvNet({a, a, a, a}, cfg).program, 1).totalCycles;
    // Four dependent layers take clearly longer than one.
    EXPECT_GT(four, one + 2 * (four / 8));
}

TEST(Resnet50, LayerTable)
{
    auto convs = resnet50Convs();
    // conv1 + 16 bottlenecks x 3 + 4 projection shortcuts = 53 convs.
    EXPECT_EQ(convs.size(), 53u);
    EXPECT_EQ(convs[0].outC, 64u);
    EXPECT_EQ(convs[0].kH, 7u);
    EXPECT_EQ(convs[0].outH(), 112u);
    // Final stage emits 7x7x2048.
    const ConvSpec &last = convs.back();
    EXPECT_EQ(last.outC, 2048u);
    EXPECT_EQ(last.outH(), 7u);
    // Total conv MACs of ResNet-50 ~ 3.86 GMAC -> ~7.7 G ops.
    EXPECT_NEAR(static_cast<double>(resnet50TotalOps()) / 1e9, 7.7, 0.4);
    // ~23.5M conv weights.
    EXPECT_NEAR(static_cast<double>(resnet50WeightCount()) / 1e6, 23.5,
                1.5);
}

TEST(Resnet50, PlansOnCnnA10)
{
    NpuConfig cfg = NpuConfig::bwCnnA10();
    ConvNetPlan plan = planConvNet(resnet50Convs(), cfg);
    EXPECT_EQ(plan.layers.size(), 53u);
    EXPECT_NO_THROW(checkProgram(plan.program, cfg));
}

} // namespace
} // namespace bw
