/**
 * @file
 * Live-metrics subsystem: counter/gauge/histogram semantics (sharded
 * recording merges exactly, bucket boundaries, quantile accuracy vs
 * the exact nearest-rank percentile), registry family rules,
 * Prometheus/Json exposition and the format checker, the background
 * sampler and its Chrome counter events, the HTTP endpoint, and the
 * producers: serve::Engine counters agreeing with its StatsCollector
 * and timing::NpuTiming publishing without perturbing simulated
 * cycles.
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bw/bw.h"

using namespace bw;
using namespace bw::metrics;

// --- Counter ---

TEST(Counter, AddAndValue)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentAddsSumExactly)
{
    Counter c;
    constexpr unsigned kThreads = 8, kPerThread = 10000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (unsigned i = 0; i < kPerThread; ++i)
                c.inc();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), uint64_t(kThreads) * kPerThread);
}

TEST(Gauge, SetAndAdd)
{
    Gauge g;
    g.set(3.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    g.add(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.set(0.0);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// --- Histogram ---

TEST(Histogram, BucketBoundaries)
{
    HistogramOptions opts;
    opts.lowest = 1.0;
    opts.highest = 1000.0;
    opts.bucketsPerDecade = 1; // bounds 1, 10, 100, 1000
    Histogram h(opts);
    ASSERT_EQ(h.bounds().size(), 4u);
    EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
    EXPECT_DOUBLE_EQ(h.bounds()[3], 1000.0);

    // Bucket i covers (bound(i-1), bound(i)]: a boundary value lands
    // in the bucket it bounds, not the next one.
    EXPECT_EQ(h.bucketIndex(0.5), 0u);
    EXPECT_EQ(h.bucketIndex(1.0), 0u);
    EXPECT_EQ(h.bucketIndex(1.0001), 1u);
    EXPECT_EQ(h.bucketIndex(10.0), 1u);
    EXPECT_EQ(h.bucketIndex(1000.0), 3u);
    EXPECT_EQ(h.bucketIndex(1000.1), 4u); // overflow slot

    h.record(0.5);    // underflow -> bucket 0
    h.record(10.0);   // boundary -> bucket 1
    h.record(5000.0); // overflow
    HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.counts[0], 1u);
    EXPECT_EQ(s.counts[1], 1u);
    EXPECT_EQ(s.counts[4], 1u);
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.sum, 5010.5);
    EXPECT_DOUBLE_EQ(s.maxValue, 5000.0);
}

TEST(Histogram, ConcurrentShardsMergeToSingleThreadedResult)
{
    // The same sample stream recorded by 8 threads and by 1 thread
    // must produce identical snapshots (counts, sum, max).
    std::vector<double> samples;
    Rng rng(11);
    for (int i = 0; i < 8000; ++i)
        samples.push_back(0.01 + 200.0 * rng.uniform());

    Histogram multi, single;
    constexpr unsigned kThreads = 8;
    size_t chunk = samples.size() / kThreads;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (size_t i = t * chunk; i < (t + 1) * chunk; ++i)
                multi.record(samples[i]);
        });
    }
    for (auto &t : threads)
        t.join();
    for (double v : samples)
        single.record(v);

    HistogramSnapshot a = multi.snapshot(), b = single.snapshot();
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.count, b.count);
    EXPECT_NEAR(a.sum, b.sum, 1e-6 * b.sum); // float add order differs
    EXPECT_DOUBLE_EQ(a.maxValue, b.maxValue);
}

TEST(Histogram, QuantileWithinOneBucketOfExactNearestRank)
{
    Histogram h; // defaults: 1e-3 .. 1e4, 10 buckets/decade
    std::vector<double> samples;
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        // Latency-shaped: bulk around 1-10ms with a heavy tail.
        double u = rng.uniform();
        samples.push_back(u < 0.95 ? 1.0 + 9.0 * rng.uniform()
                                   : 10.0 + 500.0 * rng.uniform());
    }
    for (double v : samples)
        h.record(v);
    std::sort(samples.begin(), samples.end());

    HistogramSnapshot s = h.snapshot();
    for (double pct : {50.0, 95.0, 99.0}) {
        double exact = percentileSorted(samples, pct);
        double est = s.quantile(pct);
        // The estimate is the upper bound of the exact value's bucket:
        // exact <= est < exact + bucket width.
        EXPECT_GE(est, exact) << "pct " << pct;
        EXPECT_LE(est - exact, s.bucketWidthBelow(est)) << "pct " << pct;
    }
}

TEST(Histogram, EmptyAndSingleSampleQuantiles)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.snapshot().quantile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.snapshot().quantile(99), 0.0);
    h.record(3.0);
    HistogramSnapshot s = h.snapshot();
    // Any quantile of one sample is that sample's bucket bound.
    double q50 = s.quantile(50), q99 = s.quantile(99);
    EXPECT_EQ(q50, q99);
    EXPECT_GE(q50, 3.0);
    EXPECT_LE(q50 - 3.0, s.bucketWidthBelow(q50));
}

// --- Histogram exemplars (span-tracing trace ids per bucket) ---

TEST(HistogramExemplar, BucketPlacementAndMaxWins)
{
    HistogramOptions opts;
    opts.lowest = 1.0;
    opts.highest = 1000.0;
    opts.bucketsPerDecade = 1; // bounds 1, 10, 100, 1000
    Histogram h(opts);

    h.recordExemplar(5.0, 41);  // bucket 1
    h.recordExemplar(7.0, 42);  // same bucket, larger: wins
    h.recordExemplar(6.0, 43);  // smaller: ignored
    h.recordExemplar(0.5, 44);  // underflow bucket
    h.recordExemplar(50.0, 0);  // trace 0: counts, no exemplar

    HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 5u); // recordExemplar still records the sample
    ASSERT_EQ(s.exemplars.size(), s.counts.size());
    EXPECT_EQ(s.exemplars[0].traceId, 44u);
    EXPECT_DOUBLE_EQ(s.exemplars[0].value, 0.5);
    EXPECT_EQ(s.exemplars[1].traceId, 42u);
    EXPECT_DOUBLE_EQ(s.exemplars[1].value, 7.0);
    EXPECT_EQ(s.exemplars[2].traceId, 0u); // trace 0 left no exemplar
}

TEST(HistogramExemplar, ShardMergeKeepsSlowestAcrossThreads)
{
    Histogram h;
    constexpr unsigned kThreads = 8;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // All samples land in one bucket; thread t's slowest is
            // 5.0 + t with trace id 100 + t.
            for (int i = 0; i < 50; ++i)
                h.recordExemplar(5.0 + t, 100 + t);
        });
    }
    for (auto &t : threads)
        t.join();

    HistogramSnapshot s = h.snapshot();
    size_t b = h.bucketIndex(5.0 + kThreads - 1);
    EXPECT_EQ(s.exemplars[b].traceId, 100u + kThreads - 1);
    EXPECT_DOUBLE_EQ(s.exemplars[b].value, 5.0 + kThreads - 1);
}

TEST(HistogramExemplar, JsonExpositionEmitsExemplarsAndOverflow)
{
    Registry reg;
    Histogram &h = reg.histogram("bw_lat_ms", "latency");
    h.recordExemplar(2.5, 7);
    h.recordExemplar(1e9, 9); // overflow bucket

    Json doc = metricsJson(reg);
    std::string s = doc.dump(2);
    EXPECT_NE(s.find("\"exemplar\""), std::string::npos);
    EXPECT_NE(s.find("\"trace\": 7"), std::string::npos);
    // The +Inf bucket's exemplar is a separate key so every bucket
    // object keeps a numeric "le".
    EXPECT_NE(s.find("\"overflow_exemplar\""), std::string::npos);
    EXPECT_NE(s.find("\"trace\": 9"), std::string::npos);

    // A histogram with no exemplars emits neither key.
    Registry plain;
    plain.histogram("bw_plain_ms", "latency").record(2.5);
    std::string p = metricsJson(plain).dump(2);
    EXPECT_EQ(p.find("exemplar"), std::string::npos);
}

// --- percentileSorted hardening (shared quantile helper) ---

TEST(PercentileSorted, EmptySingleAndClamping)
{
    EXPECT_DOUBLE_EQ(percentileSorted({}, 50), 0.0);
    EXPECT_DOUBLE_EQ(percentileSorted({7.0}, 0), 7.0);
    EXPECT_DOUBLE_EQ(percentileSorted({7.0}, 50), 7.0);
    EXPECT_DOUBLE_EQ(percentileSorted({7.0}, 100), 7.0);
    // Out-of-range pct clamps instead of indexing out of bounds.
    EXPECT_DOUBLE_EQ(percentileSorted({1.0, 2.0}, -10), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted({1.0, 2.0}, 250), 2.0);
}

TEST(PercentileSorted, NearestRankAndQuantilesStruct)
{
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(i);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 50), 50.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 95), 95.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 99), 99.0);
    LatencyQuantiles q = quantilesSorted(v);
    EXPECT_DOUBLE_EQ(q.p50, 50.0);
    EXPECT_DOUBLE_EQ(q.p95, 95.0);
    EXPECT_DOUBLE_EQ(q.p99, 99.0);
}

TEST(PercentileSorted, AllEqualSamplesCollapseEveryQuantile)
{
    // The degenerate tail the bw_spans differential-attribution report
    // hits when a run is perfectly uniform: every percentile is the
    // common value and the p50/p99 cohorts coincide.
    std::vector<double> v(64, 3.25);
    for (double pct : {0.0, 50.0, 95.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(percentileSorted(v, pct), 3.25);
    LatencyQuantiles q = quantilesSorted(v);
    EXPECT_DOUBLE_EQ(q.p50, q.p99);
}

TEST(HistogramExemplar, SingleOccupiedBucketQuantilesAndExemplar)
{
    // Every sample (and therefore every exemplar) in one bucket: all
    // quantile estimates collapse to that bucket's upper bound, and
    // the lone exemplar pairs the bucket's largest value with the
    // trace that produced it.
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.recordExemplar(5.0 + 0.0001 * i, 1000 + i);

    HistogramSnapshot s = h.snapshot();
    size_t occupied = 0;
    for (uint64_t c : s.counts)
        occupied += c > 0;
    ASSERT_EQ(occupied, 1u);
    double q50 = s.quantile(50), q99 = s.quantile(99);
    EXPECT_EQ(q50, q99);
    EXPECT_GE(q50, 5.0);
    size_t b = h.bucketIndex(5.0);
    EXPECT_EQ(s.exemplars[b].traceId, 1099u);
    EXPECT_DOUBLE_EQ(s.exemplars[b].value, 5.0 + 0.0001 * 99);
}

// --- Registry ---

TEST(Registry, GetOrCreateReturnsSameInstance)
{
    Registry reg;
    Counter &a = reg.counter("bw_test_total", "help");
    Counter &b = reg.counter("bw_test_total", "help");
    EXPECT_EQ(&a, &b);
    Counter &c = reg.counter("bw_test_total", "help", {{"k", "v"}});
    EXPECT_NE(&a, &c);
    EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, TypeConflictAndBadNamesThrow)
{
    Registry reg;
    reg.counter("bw_dual", "help");
    EXPECT_THROW(reg.gauge("bw_dual", "help"), Error);
    EXPECT_THROW(reg.counter("0bad", "help"), Error);
    EXPECT_THROW(reg.counter("has space", "help"), Error);
    EXPECT_THROW(reg.counter("ok_name", "help", {{"0bad", "v"}}), Error);
}

TEST(Registry, CollectIsFamilyMajorInRegistrationOrder)
{
    Registry reg;
    reg.counter("bw_a_total", "a");
    reg.gauge("bw_b", "b");
    reg.counter("bw_a_total", "a", {{"k", "v"}}); // joins family a
    auto snaps = reg.collect();
    ASSERT_EQ(snaps.size(), 3u);
    EXPECT_EQ(snaps[0].name, "bw_a_total");
    EXPECT_EQ(snaps[1].name, "bw_a_total");
    EXPECT_EQ(snaps[2].name, "bw_b");
}

// --- Exposition ---

namespace {

/** A registry with one of each type, some labeled. */
void
populate(Registry &reg)
{
    reg.counter("bw_reqs_total", "requests").add(5);
    reg.counter("bw_reqs_total", "requests", {{"replica", "0"}}).add(2);
    reg.gauge("bw_depth", "queue depth").set(3);
    Histogram &h = reg.histogram("bw_lat_ms", "latency");
    for (double v : {0.5, 1.0, 2.0, 5.0, 50.0, 20000.0})
        h.record(v);
}

} // namespace

TEST(Exposition, PrometheusTextPassesValidator)
{
    Registry reg;
    populate(reg);
    std::string text = prometheusText(reg);
    Status st = validatePrometheusText(text);
    EXPECT_TRUE(st.ok()) << st.toString() << "\n" << text;
    // Spot checks.
    EXPECT_NE(text.find("# TYPE bw_reqs_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("bw_reqs_total{replica=\"0\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("bw_lat_ms_bucket{le=\"+Inf\"} 6"),
              std::string::npos);
    EXPECT_NE(text.find("bw_lat_ms_count 6"), std::string::npos);
}

TEST(Exposition, ValidatorRejectsMalformedDocuments)
{
    // Sample without a TYPE.
    EXPECT_FALSE(validatePrometheusText("bw_x 1\n").ok());
    // Bad metric name.
    EXPECT_FALSE(
        validatePrometheusText("# TYPE 0bad counter\n0bad 1\n").ok());
    // Bad value.
    EXPECT_FALSE(validatePrometheusText(
                     "# TYPE bw_x counter\nbw_x banana\n")
                     .ok());
    // Histogram without +Inf.
    EXPECT_FALSE(validatePrometheusText("# TYPE bw_h histogram\n"
                                        "bw_h_bucket{le=\"1\"} 1\n"
                                        "bw_h_sum 1\nbw_h_count 1\n")
                     .ok());
    // Non-cumulative buckets.
    EXPECT_FALSE(validatePrometheusText("# TYPE bw_h histogram\n"
                                        "bw_h_bucket{le=\"1\"} 5\n"
                                        "bw_h_bucket{le=\"2\"} 3\n"
                                        "bw_h_bucket{le=\"+Inf\"} 5\n")
                     .ok());
    // _count disagreeing with the +Inf bucket.
    EXPECT_FALSE(validatePrometheusText("# TYPE bw_h histogram\n"
                                        "bw_h_bucket{le=\"+Inf\"} 5\n"
                                        "bw_h_count 4\n")
                     .ok());
    // le out of order.
    EXPECT_FALSE(validatePrometheusText("# TYPE bw_h histogram\n"
                                        "bw_h_bucket{le=\"2\"} 1\n"
                                        "bw_h_bucket{le=\"1\"} 2\n"
                                        "bw_h_bucket{le=\"+Inf\"} 2\n")
                     .ok());
    // A valid document for contrast.
    EXPECT_TRUE(validatePrometheusText("# TYPE bw_x counter\nbw_x 1\n")
                    .ok());
}

TEST(Exposition, JsonGroupsFamiliesAndEstimatesQuantiles)
{
    Registry reg;
    populate(reg);
    Json doc = metricsJson(reg);
    std::string s = doc.dump(2);
    EXPECT_NE(s.find("\"bw_reqs_total\""), std::string::npos);
    EXPECT_NE(s.find("\"type\": \"counter\""), std::string::npos);
    EXPECT_NE(s.find("\"p99\""), std::string::npos);
    EXPECT_NE(s.find("\"replica\": \"0\""), std::string::npos);
    // Histogram instance carries count and max.
    EXPECT_NE(s.find("\"count\": 6"), std::string::npos);
    EXPECT_NE(s.find("\"max\": 20000"), std::string::npos);
}

// --- Sampler ---

TEST(Sampler, SampleOnceAndCounterEvents)
{
    Registry reg;
    Gauge &depth = reg.gauge("bw_depth", "queue depth");
    Counter &reqs = reg.counter("bw_reqs_total", "requests",
                                {{"replica", "1"}});
    Sampler sampler(reg, 5.0);
    depth.set(4);
    reqs.add(2);
    sampler.sampleOnce();
    depth.set(7);
    sampler.sampleOnce();

    auto samples = sampler.samples();
    ASSERT_EQ(samples.size(), 4u); // 2 instruments x 2 samples
    EXPECT_GE(samples[2].tUs, samples[0].tUs);

    Json events = counterTraceEvents(samples);
    std::string s = events.dump(2);
    EXPECT_NE(s.find("\"ph\": \"C\""), std::string::npos);
    // Labels fold into the counter-track name.
    EXPECT_NE(s.find("bw_reqs_total[replica=1]"), std::string::npos);

    Json doc = Json::object();
    doc.set("traceEvents", Json::array());
    appendCounterEvents(doc, samples);
    EXPECT_NE(doc.dump(2).find("\"ph\": \"C\""), std::string::npos);
}

TEST(Sampler, BackgroundThreadCollectsOverTime)
{
    Registry reg;
    reg.gauge("bw_depth", "queue depth").set(1);
    Sampler sampler(reg, 2.0);
    sampler.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sampler.stop(); // takes a final sample
    EXPECT_GE(sampler.samples().size(), 2u);
}

// --- HTTP endpoint ---

TEST(HttpServer, RoutesWithoutSockets)
{
    Registry reg;
    populate(reg);
    MetricsHttpServer srv(reg);

    std::string ok = srv.respond("GET /metrics HTTP/1.1");
    EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(ok.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(ok.find("bw_reqs_total"), std::string::npos);

    std::string json = srv.respond("GET /metrics.json HTTP/1.1");
    EXPECT_NE(json.find("application/json"), std::string::npos);

    EXPECT_NE(srv.respond("GET /healthz HTTP/1.1").find("200"),
              std::string::npos);
    EXPECT_NE(srv.respond("GET /nope HTTP/1.1").find("404"),
              std::string::npos);
    EXPECT_NE(srv.respond("POST /metrics HTTP/1.1").find("405"),
              std::string::npos);
    // Query strings are stripped before routing.
    EXPECT_NE(srv.respond("GET /metrics?x=1 HTTP/1.1").find("200"),
              std::string::npos);
}

TEST(HttpServer, ReadinessProbeGatesHealthz)
{
    Registry reg;
    MetricsHttpServer srv(reg);
    // No probe installed: /healthz is plain liveness.
    EXPECT_NE(srv.respond("GET /healthz HTTP/1.1").find("200 OK"),
              std::string::npos);

    bool ready = false;
    srv.setReadiness([&] { return ready; });
    std::string resp = srv.respond("GET /healthz HTTP/1.1");
    EXPECT_NE(resp.find("503"), std::string::npos);
    EXPECT_NE(resp.find("\"draining\": true"), std::string::npos);
    EXPECT_NE(resp.find("application/json"), std::string::npos);

    ready = true;
    EXPECT_NE(srv.respond("GET /healthz HTTP/1.1").find("200 OK"),
              std::string::npos);
    // An unready server still serves /metrics (liveness vs readiness).
    ready = false;
    EXPECT_NE(srv.respond("GET /metrics HTTP/1.1").find("200 OK"),
              std::string::npos);
}

TEST(HttpServer, JsonHandlersRouteAndReplace)
{
    Registry reg;
    MetricsHttpServer srv(reg);
    srv.handleJson("/debug/x", [] { return std::string("{\"v\": 1}\n"); });
    std::string resp = srv.respond("GET /debug/x HTTP/1.1");
    EXPECT_NE(resp.find("200 OK"), std::string::npos);
    EXPECT_NE(resp.find("application/json"), std::string::npos);
    EXPECT_NE(resp.find("{\"v\": 1}"), std::string::npos);
    EXPECT_NE(srv.respond("GET /debug/y HTTP/1.1").find("404"),
              std::string::npos);

    // Re-registering the same path replaces the handler.
    srv.handleJson("/debug/x", [] { return std::string("{\"v\": 2}\n"); });
    EXPECT_NE(srv.respond("GET /debug/x HTTP/1.1").find("{\"v\": 2}"),
              std::string::npos);
    // Query strings are stripped for registered handlers too.
    EXPECT_NE(srv.respond("GET /debug/x?pretty HTTP/1.1").find("{\"v\": 2}"),
              std::string::npos);
}

TEST(HttpServer, StreamHandlersRouteWithoutSockets)
{
    Registry reg;
    MetricsHttpServer srv(reg);
    std::string out;
    MetricsHttpServer::StreamSink sink = [&out](const std::string &c) {
        out += c;
        return true;
    };
    // Unregistered paths and non-GET methods fall through to respond().
    EXPECT_FALSE(srv.respondStream("GET /stream/x HTTP/1.1", sink));
    srv.handleStream("/stream/x",
                     [](const MetricsHttpServer::StreamSink &s) {
                         s("{\"a\":1}\n");
                         s("{\"b\":2}\n");
                     });
    EXPECT_FALSE(srv.respondStream("POST /stream/x HTTP/1.1", sink));
    ASSERT_TRUE(srv.respondStream("GET /stream/x HTTP/1.1", sink));
    EXPECT_NE(out.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(out.find("application/x-ndjson"), std::string::npos);
    // Connection-delimited body: the handler may produce chunks it
    // never holds at once, so there is no Content-Length to lie about.
    EXPECT_EQ(out.find("Content-Length"), std::string::npos);
    EXPECT_NE(out.find("{\"a\":1}\n{\"b\":2}\n"), std::string::npos);

    // Query strings are stripped; re-registering replaces the handler.
    out.clear();
    EXPECT_TRUE(srv.respondStream("GET /stream/x?q=1 HTTP/1.1", sink));
    EXPECT_NE(out.find("{\"a\":1}"), std::string::npos);
    srv.handleStream("/stream/x",
                     [](const MetricsHttpServer::StreamSink &s) {
                         s("{\"c\":3}\n");
                     });
    out.clear();
    ASSERT_TRUE(srv.respondStream("GET /stream/x HTTP/1.1", sink));
    EXPECT_NE(out.find("{\"c\":3}"), std::string::npos);
    EXPECT_EQ(out.find("{\"a\":1}"), std::string::npos);

    // A sink that refuses the header short-circuits the handler.
    size_t calls = 0;
    MetricsHttpServer::StreamSink refuse = [&calls](const std::string &) {
        ++calls;
        return false;
    };
    bool handler_ran = false;
    srv.handleStream("/stream/y",
                     [&handler_ran](const MetricsHttpServer::StreamSink &s) {
                         handler_ran = true;
                         s("{\"z\":0}\n");
                     });
    EXPECT_TRUE(srv.respondStream("GET /stream/y HTTP/1.1", refuse));
    EXPECT_EQ(calls, 1u);
    EXPECT_FALSE(handler_ran);
}

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

TEST(HttpServer, ServesMetricsOverARealSocket)
{
    Registry reg;
    populate(reg);
    MetricsHttpServer srv(reg);
    Status st = srv.start(0); // ephemeral port
    ASSERT_TRUE(st.ok()) << st.toString();
    ASSERT_NE(srv.port(), 0);

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(srv.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char req[] = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_GT(::send(fd, req, sizeof(req) - 1, 0), 0);
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, static_cast<size_t>(n));
    ::close(fd);
    srv.stop();

    EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
    size_t body = resp.find("\r\n\r\n");
    ASSERT_NE(body, std::string::npos);
    Status v = validatePrometheusText(resp.substr(body + 4));
    EXPECT_TRUE(v.ok()) << v.toString();
}

namespace {

int
connectTo(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

void
sigusr1Noop(int)
{
}

} // namespace

TEST(HttpServer, StreamsNdjsonOverSocketDespiteEintr)
{
    Registry reg;
    MetricsHttpServer srv(reg);
    const size_t kRows = 20000;
    std::string row(120, 'x');
    row += '\n';
    srv.handleStream("/stream/big",
                     [&](const MetricsHttpServer::StreamSink &sink) {
                         for (size_t i = 0; i < kRows; ++i)
                             if (!sink(row))
                                 return;
                         sink("{\"summary\":true}\n");
                     });
    ASSERT_TRUE(srv.start(0).ok());

    // A no-op SIGUSR1 handler installed WITHOUT SA_RESTART: any send()
    // or recv() blocked when a signal lands returns EINTR instead of
    // restarting transparently. The server's write loop must absorb
    // those (and short writes — the body far exceeds a socket buffer)
    // without corrupting or truncating the stream.
    struct sigaction sa {
    }, old {};
    sa.sa_handler = sigusr1Noop;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);
    std::atomic<bool> done{false};
    std::thread pinger([&done] {
        while (!done.load()) {
            ::kill(::getpid(), SIGUSR1);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });

    int fd = connectTo(srv.port());
    ASSERT_GE(fd, 0);
    const char req[] = "GET /stream/big HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_GT(::send(fd, req, sizeof(req) - 1, 0), 0);
    std::string resp;
    char buf[8192];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        resp.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    done.store(true);
    pinger.join();
    sigaction(SIGUSR1, &old, nullptr);
    srv.stop();

    ASSERT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
    size_t body = resp.find("\r\n\r\n");
    ASSERT_NE(body, std::string::npos);
    std::string payload = resp.substr(body + 4);
    // Every row arrived, in order, and the trailer closed the stream.
    EXPECT_EQ(payload.size(), kRows * row.size() +
                                  std::string("{\"summary\":true}\n").size());
    EXPECT_EQ(payload.compare(0, row.size(), row), 0);
    EXPECT_NE(payload.rfind("{\"summary\":true}\n"), std::string::npos);
}

TEST(HttpServer, ClientHangupAbortsStreamAndServerSurvives)
{
    Registry reg;
    MetricsHttpServer srv(reg);
    const uint64_t kMaxRows = 1000000;
    std::atomic<uint64_t> produced{0};
    std::atomic<bool> aborted{false};
    std::string row(256, 'y');
    row += '\n';
    srv.handleStream("/stream/endless",
                     [&](const MetricsHttpServer::StreamSink &sink) {
                         for (uint64_t i = 0; i < kMaxRows; ++i) {
                             if (!sink(row)) {
                                 aborted.store(true);
                                 return;
                             }
                             produced.fetch_add(1);
                         }
                     });
    ASSERT_TRUE(srv.start(0).ok());

    int fd = connectTo(srv.port());
    ASSERT_GE(fd, 0);
    const char req[] = "GET /stream/endless HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_GT(::send(fd, req, sizeof(req) - 1, 0), 0);
    // Read a little, then hang up mid-stream: the server's next writes
    // hit EPIPE/ECONNRESET, the sink reports failure, and the handler
    // stops producing instead of spinning through the remaining rows.
    char buf[4096];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    ::close(fd);
    for (int i = 0; i < 500 && !aborted.load(); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_TRUE(aborted.load());
    EXPECT_LT(produced.load(), kMaxRows);

    // The accept loop survived the hangup: a fresh connection is served.
    int fd2 = connectTo(srv.port());
    ASSERT_GE(fd2, 0);
    const char req2[] = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_GT(::send(fd2, req2, sizeof(req2) - 1, 0), 0);
    std::string resp;
    while ((n = ::recv(fd2, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, static_cast<size_t>(n));
    ::close(fd2);
    srv.stop();
    EXPECT_NE(resp.find("200 OK"), std::string::npos);
}
#endif

// --- Producer: serve::Engine ---

TEST(EngineMetrics, CountersAgreeWithStatsCollector)
{
    Registry reg;
    serve::EngineOptions opts;
    opts.replicas = 2;
    opts.queueDepth = 4096;
    opts.serviceMsOverride = 0.01;
    opts.timeScale = 0.0;
    opts.metricsRegistry = &reg;
    serve::Engine engine(opts);
    engine.start();

    constexpr unsigned kThreads = 4, kPerThread = 50;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (unsigned i = 0; i < kPerThread; ++i) {
                auto fut = engine.submitTimed(1);
                ASSERT_TRUE(fut.ok());
                fut.take().wait();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    engine.drain();

    constexpr uint64_t kTotal = uint64_t(kThreads) * kPerThread;
    EXPECT_EQ(reg.counter("bw_serve_admitted_total", "").value(), kTotal);
    EXPECT_EQ(reg.counter("bw_serve_completed_total", "").value(),
              kTotal);
    EXPECT_EQ(reg.counter("bw_serve_rejected_total", "").value(),
              engine.collector().rejected());
    EXPECT_DOUBLE_EQ(reg.gauge("bw_serve_queue_depth", "").value(), 0.0);
    EXPECT_DOUBLE_EQ(reg.gauge("bw_serve_inflight", "").value(), 0.0);

    // Histogram tails agree with ServeStats within one bucket width.
    ServeStats s = engine.stats();
    HistogramSnapshot lat =
        reg.histogram("bw_serve_latency_ms", "").snapshot();
    EXPECT_EQ(lat.count, kTotal);
    for (auto [pct, exact] :
         {std::pair{95.0, s.p95LatencyMs}, {99.0, s.p99LatencyMs}}) {
        double est = lat.quantile(pct);
        EXPECT_GE(est, exact) << "pct " << pct;
        EXPECT_LE(est - exact, lat.bucketWidthBelow(est))
            << "pct " << pct;
    }

    // Replica busy time landed somewhere.
    uint64_t busy =
        reg.counter("bw_serve_replica_busy_us_total", "",
                    {{"replica", "0"}})
            .value() +
        reg.counter("bw_serve_replica_busy_us_total", "",
                    {{"replica", "1"}})
            .value();
    EXPECT_GT(busy, 0u);

    // The whole registry exports cleanly.
    Status v = validatePrometheusText(prometheusText(reg));
    EXPECT_TRUE(v.ok()) << v.toString();
}

TEST(EngineMetrics, RejectionsAndCancellationsCount)
{
    Registry reg;
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    serve::EngineOptions opts;
    opts.replicas = 1;
    opts.queueDepth = 1;
    opts.serviceMsOverride = 0.01;
    opts.timeScale = 0.0;
    opts.metricsRegistry = &reg;
    opts.serviceHook = [&](uint64_t) {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return release; });
    };
    serve::Engine engine(opts);
    engine.start();

    auto gate = engine.submitTimed(1); // occupies the replica
    ASSERT_TRUE(gate.ok());
    // Wait until it is actually in service so the queue is empty.
    while (engine.queueSize() > 0)
        std::this_thread::yield();
    auto queued = engine.submitTimed(1); // fills depth-1 queue
    ASSERT_TRUE(queued.ok());
    auto rejected = engine.submitTimed(1);
    EXPECT_FALSE(rejected.ok());
    EXPECT_EQ(reg.counter("bw_serve_rejected_total", "").value(), 1u);

    {
        std::lock_guard<std::mutex> lk(mu);
        release = true;
    }
    cv.notify_all();
    engine.shutdown(); // abandons whatever is still queued
    uint64_t done = reg.counter("bw_serve_completed_total", "").value();
    uint64_t cancelled =
        reg.counter("bw_serve_cancelled_total", "").value();
    EXPECT_EQ(done + cancelled, 2u);
    EXPECT_DOUBLE_EQ(reg.gauge("bw_serve_queue_depth", "").value(), 0.0);
}

// --- Producer: timing::NpuTiming ---

namespace {

NpuConfig
tinyConfig()
{
    NpuConfig c = NpuConfig::bwS10();
    c.name = "tiny";
    c.nativeDim = 40;
    c.lanes = 10;
    c.tileEngines = 2;
    c.mrfSize = 64;
    c.mrfIndexSpace = 256;
    c.initialVrfSize = 128;
    c.addSubVrfSize = 128;
    c.multiplyVrfSize = 128;
    return c;
}

} // namespace

TEST(NpuTimingMetrics, PublishesUtilizationWithoutPerturbingCycles)
{
    NpuConfig cfg = tinyConfig();
    ProgramBuilder b;
    b.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 1);
    Program p = b.build();

    timing::NpuTiming plain(cfg);
    auto base = plain.run(p, 4);

    Registry reg;
    timing::NpuTiming instrumented(cfg);
    instrumented.setMetricsRegistry(&reg);
    auto measured = instrumented.run(p, 4);

    // Publishing is purely observational.
    EXPECT_EQ(measured.totalCycles, base.totalCycles);
    EXPECT_EQ(measured.chainsExecuted, base.chainsExecuted);

    EXPECT_EQ(reg.counter("bw_npu_runs_total", "").value(), 1u);
    EXPECT_EQ(reg.counter("bw_npu_cycles_total", "").value(),
              base.totalCycles);
    double mvm_util =
        reg.gauge("bw_npu_utilization", "",
                  {{"resource", "mvm_tile_engines"}})
            .value();
    EXPECT_GT(mvm_util, 0.0);
    EXPECT_LE(mvm_util, 1.0);

    // A second run accumulates counters and refreshes gauges.
    instrumented.run(p, 4);
    EXPECT_EQ(reg.counter("bw_npu_runs_total", "").value(), 2u);
    EXPECT_EQ(reg.counter("bw_npu_cycles_total", "").value(),
              2 * base.totalCycles);

    Status v = validatePrometheusText(prometheusText(reg));
    EXPECT_TRUE(v.ok()) << v.toString();
}
