/**
 * @file
 * Flight-recorder and SLO-monitor tests: the pure tail-promotion rule,
 * the wait-free ring recorder, bw.flight/1 export + validation, SLO
 * deadline classes and multi-window burn rates, bw.slo/1 export
 * determinism, and the engine-level acceptance criteria — byte-identical
 * flight/SLO exports across replays with rejects and expiries, cycle
 * counts unperturbed by an attached recorder, and full span evidence for
 * requests head sampling drops.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/status.h"
#include "compiler/lowering.h"
#include "graph/builders.h"
#include "metrics/exposition.h"
#include "metrics/http_server.h"
#include "metrics/metrics.h"
#include "obs/flight.h"
#include "obs/span.h"
#include "runtime/serving.h"
#include "serve/engine.h"
#include "serve/session.h"
#include "serve/slo.h"

namespace bw {
namespace {

/** Small test target: N=16, plenty of storage, high-precision BFP. */
NpuConfig
testConfig()
{
    NpuConfig c;
    c.name = "test16";
    c.nativeDim = 16;
    c.lanes = 4;
    c.tileEngines = 2;
    c.mrfSize = 512;
    c.mrfIndexSpace = 2048;
    c.initialVrfSize = 256;
    c.addSubVrfSize = 256;
    c.multiplyVrfSize = 256;
    c.precision = BfpFormat{1, 5, 7};
    return c;
}

obs::FlightRecord
rec(uint64_t seq, obs::FlightClass cls, uint64_t admit_us,
    uint64_t latency_us)
{
    obs::FlightRecord r;
    r.seq = seq;
    r.id = cls == obs::FlightClass::Rejected ? 0 : seq;
    r.cls = cls;
    r.admitUs = admit_us;
    r.dequeueUs = admit_us;
    r.serviceUs = admit_us;
    r.doneUs = admit_us + latency_us;
    r.latencyUs = latency_us;
    return r;
}

std::vector<uint64_t>
seqsOf(const std::vector<obs::FlightRecord> &rs)
{
    std::vector<uint64_t> out;
    for (const auto &r : rs)
        out.push_back(r.seq);
    return out;
}

// --- Tail promotion as a pure function ---

TEST(FlightPromotion, NonOkAlwaysAndSlowestKPerWindow)
{
    obs::FlightRecorderOptions opts;
    opts.windowUs = 1000000;
    opts.slowestK = 2;

    std::vector<obs::FlightRecord> in = {
        // Window 0: five Ok records; slowest two are the 50us pair,
        // ranked by latency descending then seq ascending.
        rec(1, obs::FlightClass::Ok, 100, 10),
        rec(2, obs::FlightClass::Ok, 200, 50),
        rec(3, obs::FlightClass::Ok, 300, 30),
        rec(4, obs::FlightClass::Ok, 400, 50),
        rec(5, obs::FlightClass::Ok, 500, 20),
        // Anomalies promote regardless of latency.
        rec(6, obs::FlightClass::Rejected, 600, 0),
        // Window 1: fewer Ok records than K -> all promoted.
        rec(7, obs::FlightClass::Ok, 1500000, 5),
        rec(8, obs::FlightClass::DeadlineExpired, 1600000, 0),
    };
    auto out = promoteFlightRecords(in, opts);
    EXPECT_EQ(seqsOf(out), (std::vector<uint64_t>{2, 4, 6, 7, 8}));

    // Input order must not matter: promotion is a pure function of the
    // records themselves.
    std::reverse(in.begin(), in.end());
    std::swap(in[1], in[5]);
    EXPECT_EQ(seqsOf(promoteFlightRecords(in, opts)), seqsOf(out));
}

TEST(FlightPromotion, SlowestKZeroPromotesOnlyAnomalies)
{
    obs::FlightRecorderOptions opts;
    opts.slowestK = 0;
    std::vector<obs::FlightRecord> in = {
        rec(1, obs::FlightClass::Ok, 0, 999),
        rec(2, obs::FlightClass::Error, 10, 1),
        rec(3, obs::FlightClass::Cancelled, 20, 0),
    };
    EXPECT_EQ(seqsOf(promoteFlightRecords(in, opts)),
              (std::vector<uint64_t>{2, 3}));
}

// --- The ring recorder ---

TEST(FlightRecorder, CollectsSortedAndCountsOverwrites)
{
    obs::FlightRecorderOptions opts;
    opts.shardCapacity = 8;
    obs::FlightRecorder fr(opts);
    // One test thread -> one shard: 20 records into 8 slots drops the
    // oldest 12.
    for (uint64_t s = 20; s >= 1; --s)
        fr.record(rec(s, obs::FlightClass::Ok, s * 10, 1));
    EXPECT_EQ(fr.recorded(), 20u);
    EXPECT_EQ(fr.dropped(), 12u);
    auto got = fr.collect();
    ASSERT_EQ(got.size(), 8u);
    for (size_t i = 1; i < got.size(); ++i)
        EXPECT_LT(got[i - 1].seq, got[i].seq);

    fr.clear();
    EXPECT_EQ(fr.recorded(), 0u);
    EXPECT_EQ(fr.dropped(), 0u);
    EXPECT_TRUE(fr.collect().empty());
}

TEST(FlightRecorder, OptionsFromEnvOverrides)
{
    setenv("BW_FLIGHT_WINDOW_MS", "250", 1);
    setenv("BW_FLIGHT_SLOWEST_K", "7", 1);
    setenv("BW_FLIGHT_RING", "1024", 1);
    auto opts = obs::FlightRecorderOptions::fromEnv();
    unsetenv("BW_FLIGHT_WINDOW_MS");
    unsetenv("BW_FLIGHT_SLOWEST_K");
    unsetenv("BW_FLIGHT_RING");
    EXPECT_EQ(opts.windowUs, 250000u);
    EXPECT_EQ(opts.slowestK, 7u);
    EXPECT_EQ(opts.shardCapacity, 1024u);
}

// --- bw.flight/1 export + validator ---

TEST(FlightJson, ExportValidatesAndEmbedsOneTracePerRecord)
{
    obs::FlightRecorder fr;
    fr.record(rec(1, obs::FlightClass::Ok, 100, 40));
    fr.record(rec(2, obs::FlightClass::Rejected, 200, 0));
    fr.record(rec(3, obs::FlightClass::DeadlineExpired, 300, 0));

    Json doc = obs::flightJson(fr);
    Status st = obs::validateFlightJson(doc);
    EXPECT_TRUE(st.ok()) << st.toString();
    EXPECT_EQ(doc.find("schema")->asString(), "bw.flight/1");
    const Json *promoted = doc.find("promoted");
    ASSERT_EQ(promoted->size(), 3u);
    EXPECT_EQ(promoted->at(1).find("class")->asString(), "rejected");
    EXPECT_EQ(promoted->at(1).find("id")->asInt(), 0);
    // One embedded span tree per promoted record, trace id == seq.
    const Json *traces = doc.find("spans")->find("traces");
    ASSERT_EQ(traces->size(), 3u);
    for (size_t i = 0; i < traces->size(); ++i) {
        EXPECT_EQ(traces->at(i).find("trace")->asInt(),
                  promoted->at(i).find("seq")->asInt());
        EXPECT_EQ(traces->at(i).find("root")->find("name")->asString(),
                  "request");
    }

    // Tampering trips the validator.
    Json bad = Json::parse(doc.dump());
    bad.set("schema", "bw.flight/2");
    EXPECT_FALSE(obs::validateFlightJson(bad).ok());
    Json nospans = Json::parse(doc.dump());
    nospans.set("spans", Json::object());
    EXPECT_FALSE(obs::validateFlightJson(nospans).ok());
}

// --- SLO classes and burn rates ---

TEST(Slo, ClassOfWalksTheDeadlineLadder)
{
    serve::SloMonitor mon;
    ASSERT_EQ(mon.options().classes.size(), 3u);
    EXPECT_EQ(mon.classOf(5.0), 0u);    // interactive (<= 10 ms)
    EXPECT_EQ(mon.classOf(10.0), 0u);
    EXPECT_EQ(mon.classOf(50.0), 1u);   // standard (<= 100 ms)
    EXPECT_EQ(mon.classOf(500.0), 2u);  // best_effort catch-all
    EXPECT_EQ(mon.classOf(0.0), 2u);    // no deadline -> catch-all
}

TEST(Slo, MultiWindowBurnRequiresBothWindowsFiring)
{
    const uint64_t s = 1000000; // 1 s in us
    // Bad burst 500 s before the high-water mark: inside the 1-hour
    // window, outside the 5-minute one -> sustained-burn alert must not
    // fire on the stale burst alone.
    serve::SloMonitor stale;
    for (int i = 0; i < 50; ++i)
        stale.record(3500 * s, 5.0, 0.0, false);
    for (int i = 0; i < 50; ++i)
        stale.record(4000 * s, 5.0, 1.0, true);
    auto evals = stale.snapshot();
    ASSERT_EQ(evals.size(), 3u);
    EXPECT_GT(evals[0].availSlow.burnRate,
              stale.options().pageBurnRate);
    EXPECT_EQ(evals[0].availFast.bad, 0u);
    EXPECT_FALSE(evals[0].availabilityFiring);
    EXPECT_EQ(evals[0].requests, 100u);
    EXPECT_EQ(evals[0].availabilityBreaches, 50u);

    // The same burst inside both windows pages.
    serve::SloMonitor hot;
    for (int i = 0; i < 50; ++i)
        hot.record(3900 * s, 5.0, 0.0, false);
    for (int i = 0; i < 50; ++i)
        hot.record(4000 * s, 5.0, 1.0, true);
    EXPECT_TRUE(hot.snapshot()[0].availabilityFiring);
}

TEST(Slo, LatencySliCountsOnlyServedRequests)
{
    serve::SloMonitor mon;
    // interactive target is 5 ms: one good, one breach, one reject
    // (unavailable -> consumes no latency budget).
    mon.record(1000000, 5.0, 2.0, true);
    mon.record(2000000, 5.0, 20.0, true);
    mon.record(3000000, 5.0, 0.0, false);
    auto evals = mon.snapshot();
    EXPECT_EQ(evals[0].latencyBreaches, 1u);
    EXPECT_EQ(evals[0].latencyFast.good + evals[0].latencyFast.bad, 2u);
    EXPECT_EQ(evals[0].availabilityBreaches, 1u);
    EXPECT_EQ(mon.recorded(), 3u);
}

TEST(Slo, SloJsonDeterministicValidAndBindsMetrics)
{
    metrics::Registry reg;
    serve::SloMonitor mon;
    mon.bindMetrics(&reg);
    for (int i = 0; i < 20; ++i)
        mon.record(uint64_t(i) * 500000, i % 2 ? 5.0 : 50.0,
                   i % 5 ? 1.0 : 30.0, i % 7 != 0);

    Json doc = mon.sloJson();
    Status st = serve::validateSloJson(doc);
    EXPECT_TRUE(st.ok()) << st.toString();
    // Evaluated at the high-water mark, not "now": re-export is
    // byte-identical.
    EXPECT_EQ(doc.dump(), mon.sloJson().dump());

    std::string prom = metrics::prometheusText(reg);
    EXPECT_NE(prom.find("bw_slo_requests_total"), std::string::npos);
    EXPECT_NE(prom.find("bw_slo_burn_rate"), std::string::npos);
    EXPECT_NE(prom.find("bw_slo_firing"), std::string::npos);

    Json bad = Json::parse(doc.dump());
    Json obj = Json::object();
    obj.set("latency", 1.5); // objectives must sit in (0, 1)
    obj.set("availability", 0.999);
    bad.set("objectives", std::move(obj));
    EXPECT_FALSE(serve::validateSloJson(bad).ok());
}

// --- Engine acceptance criteria ---

TEST(EngineFlight, ReplayExportsByteIdenticalUnderRejectsAndExpiries)
{
    // 5x overload on a depth-4 queue with a 3 ms deadline: the schedule
    // produces QUEUE_FULL rejects and dequeue-time expiries alongside
    // served requests, and two replays must export byte-identical
    // flight and SLO documents.
    std::vector<double> arrivals;
    for (int i = 0; i < 300; ++i)
        arrivals.push_back(i * 0.0002);
    obs::FlightRecorder flight;
    serve::SloMonitor slo;
    obs::SpanTracer tracer;
    serve::EngineOptions opts;
    opts.serviceMsOverride = 1.0;
    opts.queueDepth = 4;
    opts.defaultDeadlineMs = 3.0;
    opts.flightRecorder = &flight;
    opts.sloMonitor = &slo;
    opts.spanTracer = &tracer;
    serve::Engine engine(opts);

    engine.replay(arrivals);
    // The stats collector accumulates across runs; snapshot this run's
    // counts before replaying again.
    const uint64_t run_rejected = engine.collector().rejected();
    const uint64_t run_expired = engine.collector().expired();
    ASSERT_GT(run_rejected, 0u);
    ASSERT_GT(run_expired, 0u);
    Expected<Json> f1 = engine.flightJson();
    ASSERT_TRUE(f1.ok());
    std::string flight1 = f1.value().dump();
    std::string slo1 = slo.sloJson().dump();

    engine.replay(arrivals); // clears recorder + monitor, renumbers
    std::string flight2 = engine.flightJson().value().dump();
    std::string slo2 = slo.sloJson().dump();
    EXPECT_EQ(flight1, flight2);
    EXPECT_EQ(slo1, slo2);

    Json doc = Json::parse(flight2);
    Status st = obs::validateFlightJson(doc);
    EXPECT_TRUE(st.ok()) << st.toString();
    EXPECT_TRUE(serve::validateSloJson(Json::parse(slo2)).ok());

    // Every submission attempt reached the SLO monitor, and every
    // reject shows up both in the rejected counter and in the promoted
    // set (never admitted -> id 0).
    EXPECT_EQ(slo.recorded(), arrivals.size());
    const Json *promoted = doc.find("promoted");
    uint64_t rejected = 0, expired = 0;
    for (size_t i = 0; i < promoted->size(); ++i) {
        const std::string cls =
            promoted->at(i).find("class")->asString();
        if (cls == "rejected") {
            ++rejected;
            EXPECT_EQ(promoted->at(i).find("id")->asInt(), 0);
            EXPECT_GT(promoted->at(i).find("seq")->asInt(), 0);
        } else if (cls == "deadline_expired") {
            ++expired;
        }
    }
    EXPECT_EQ(rejected, run_rejected);
    EXPECT_EQ(expired, run_expired);
}

TEST(EngineFlight, AttachedRecorderDoesNotPerturbCycleCounts)
{
    // The acceptance bar from the span tracer applies to the flight
    // recorder too: simulated service times (hence cycle counts) are
    // bit-identical with the recorder attached or detached.
    Rng rng(21);
    Session session =
        Session::compile(makeGru(randomGruWeights(32, 32, rng)),
                         testConfig());
    obs::FlightRecorder flight;
    serve::EngineOptions recorded_opts;
    recorded_opts.flightRecorder = &flight;
    auto recorded = session.serve(recorded_opts);
    auto plain = session.serve({});
    EXPECT_DOUBLE_EQ(recorded->serviceMsFor(4), plain->serviceMsFor(4));
    EXPECT_DOUBLE_EQ(recorded->serviceMsFor(1), plain->serviceMsFor(1));
    recorded->shutdown();
    plain->shutdown();
}

TEST(EngineFlight, PromotesExpiryThatHeadSamplingDropped)
{
    // BW_SPAN_SAMPLE=1000 head sampling keeps only request 1; a later
    // deadline expiry is dropped from the spans export but must appear
    // in the promoted flight export with a complete span tree.
    std::vector<double> arrivals;
    for (int i = 0; i < 20; ++i)
        arrivals.push_back(i * 0.0001);
    obs::SpanTracerOptions topts;
    topts.sampleEvery = 1000;
    obs::SpanTracer tracer(topts);
    obs::FlightRecorder flight;
    serve::EngineOptions opts;
    opts.serviceMsOverride = 1.0;
    opts.queueDepth = arrivals.size();
    opts.defaultDeadlineMs = 2.0;
    opts.spanTracer = &tracer;
    opts.flightRecorder = &flight;
    serve::Engine engine(opts);
    engine.replay(arrivals);
    ASSERT_GT(engine.collector().expired(), 0u);

    // The head-sampled export holds exactly the one kept trace.
    Json spans = obs::spanTreeJson(tracer);
    ASSERT_EQ(spans.find("traces")->size(), 1u);
    EXPECT_EQ(spans.find("traces")->at(0).find("trace")->asInt(), 1);

    Json doc = engine.flightJson().value();
    ASSERT_TRUE(obs::validateFlightJson(doc).ok());
    const Json *promoted = doc.find("promoted");
    const Json *traces = doc.find("spans")->find("traces");
    bool found = false;
    for (size_t i = 0; i < promoted->size(); ++i) {
        const Json &p = promoted->at(i);
        if (p.find("class")->asString() != "deadline_expired" ||
            p.find("id")->asInt() == 1)
            continue;
        found = true;
        // Head sampling demonstrably dropped it...
        EXPECT_FALSE(p.find("sampled")->asBool());
        // ...yet the flight export carries its full span tree, keyed
        // by the record's sequence number.
        const Json *root = nullptr;
        for (size_t t = 0; t < traces->size(); ++t) {
            if (traces->at(t).find("trace")->asInt() ==
                p.find("seq")->asInt())
                root = traces->at(t).find("root");
        }
        ASSERT_NE(root, nullptr);
        EXPECT_EQ(root->find("name")->asString(), "request");
        EXPECT_EQ(root->find("outcome")->asString(),
                  "deadline_expired");
        const Json *children = root->find("children");
        ASSERT_NE(children, nullptr);
        EXPECT_EQ(children->at(0).find("name")->asString(),
                  "queue_wait");
        break;
    }
    EXPECT_TRUE(found);
}

TEST(EngineFlight, ModelBackedPromotionsCarryChainLeaves)
{
    // With a compiled model the engine's chain-profile cache feeds the
    // promoted span trees: served promotions get dispatch / execute /
    // chain[i] leaves exactly like the live span tracer's.
    Rng rng(22);
    Session session =
        Session::compile(makeGru(randomGruWeights(32, 32, rng)),
                         testConfig());
    obs::FlightRecorder flight;
    serve::EngineOptions opts;
    opts.queueDepth = 8;
    opts.flightRecorder = &flight;
    auto engine = session.serve(opts);
    std::vector<double> arrivals = {0.0, 0.05, 0.1, 0.15};
    engine->replay(arrivals);

    Json doc = engine->flightJson().value();
    Status st = obs::validateFlightJson(doc);
    ASSERT_TRUE(st.ok()) << st.toString();
    const Json *traces = doc.find("spans")->find("traces");
    ASSERT_GT(traces->size(), 0u);
    for (size_t t = 0; t < traces->size(); ++t) {
        const Json *children =
            traces->at(t).find("root")->find("children");
        ASSERT_EQ(children->size(), 3u);
        const Json &execute = children->at(2);
        ASSERT_EQ(execute.find("name")->asString(), "execute");
        ASSERT_NE(execute.find("children"), nullptr);
        EXPECT_GT(execute.find("children")->size(), 0u);
        EXPECT_EQ(execute.find("children")->at(0).find("name")
                      ->asString(),
                  "chain[0]");
    }
}

TEST(EngineFlight, ThreadedEngineRecordsEveryCompletion)
{
    obs::FlightRecorder flight;
    serve::SloMonitor slo;
    serve::EngineOptions opts;
    opts.serviceMsOverride = 0.2;
    opts.timeScale = 0.0;
    opts.flightRecorder = &flight;
    opts.sloMonitor = &slo;
    serve::Engine engine(opts);
    engine.start();
    for (int i = 0; i < 6; ++i) {
        auto fut = engine.submitTimed(1);
        ASSERT_TRUE(fut.ok());
        ASSERT_TRUE(fut.take().get().status.ok());
    }
    engine.drain();

    EXPECT_EQ(flight.recorded(), 6u);
    EXPECT_EQ(slo.recorded(), 6u);
    Json doc = engine.flightJson().value();
    Status st = obs::validateFlightJson(doc);
    EXPECT_TRUE(st.ok()) << st.toString();
}

TEST(EngineFlight, FlightJsonRequiresARecorder)
{
    serve::EngineOptions opts;
    opts.serviceMsOverride = 0.2;
    serve::Engine engine(opts);
    Expected<Json> doc = engine.flightJson();
    ASSERT_FALSE(doc.ok());
    EXPECT_EQ(doc.status().code(), StatusCode::FailedPrecondition);
}

// --- /debug introspection + readiness over the metrics server ---

TEST(EngineDebug, ExposesDebugEndpointsAndReadiness)
{
    metrics::Registry reg;
    obs::FlightRecorder flight;
    serve::SloMonitor slo;
    serve::EngineOptions opts;
    opts.serviceMsOverride = 0.2;
    opts.timeScale = 0.0;
    opts.metricsRegistry = &reg;
    opts.flightRecorder = &flight;
    opts.sloMonitor = &slo;
    serve::Engine engine(opts);
    metrics::MetricsHttpServer srv(reg);
    engine.exposeDebug(srv);

    engine.start();
    auto fut = engine.submitTimed(2);
    ASSERT_TRUE(fut.ok());
    fut.take().get();

    // Live: ready, and every /debug endpoint parses as JSON.
    EXPECT_NE(srv.respond("GET /healthz HTTP/1.1").find("200"),
              std::string::npos);
    auto body = [&](const char *req) {
        std::string resp = srv.respond(req);
        EXPECT_NE(resp.find("200"), std::string::npos) << req;
        EXPECT_NE(resp.find("application/json"), std::string::npos);
        return Json::parse(resp.substr(resp.find("\r\n\r\n") + 4));
    };
    Json q = body("GET /debug/queue HTTP/1.1");
    EXPECT_TRUE(q.find("accepting")->asBool());
    EXPECT_GE(q.find("capacity")->asInt(), 1);
    Json r = body("GET /debug/replicas HTTP/1.1");
    EXPECT_EQ(r.find("workers")->size(), 1u);
    Json c = body("GET /debug/config HTTP/1.1");
    EXPECT_NE(c.find("engine"), nullptr);
    EXPECT_NE(c.find("env"), nullptr);
    EXPECT_TRUE(c.find("engine")->find("flight_recorder")->asBool());
    Json e = body("GET /debug/errors HTTP/1.1");
    EXPECT_EQ(e.find("total")->asInt(), 0);
    Json f = body("GET /debug/flight HTTP/1.1");
    EXPECT_TRUE(f.find("attached")->asBool());
    Json s = body("GET /slo.json HTTP/1.1");
    EXPECT_TRUE(serve::validateSloJson(s).ok());

    // Drained: liveness holds (the server still responds) but
    // readiness flips to 503 {"draining": true}.
    engine.drain();
    std::string hz = srv.respond("GET /healthz HTTP/1.1");
    EXPECT_NE(hz.find("503"), std::string::npos);
    EXPECT_NE(hz.find("\"draining\": true"), std::string::npos);
    EXPECT_NE(srv.respond("GET /metrics HTTP/1.1").find("200"),
              std::string::npos);
}

} // namespace
} // namespace bw
