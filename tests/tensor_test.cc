/**
 * @file
 * Tests for the host-side tensor types and reference kernels.
 */

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace bw {
namespace {

TEST(FMat, Indexing)
{
    FMat m(2, 3);
    m(0, 0) = 1.0f;
    m(1, 2) = 5.0f;
    EXPECT_EQ(m.at(0, 0), 1.0f);
    EXPECT_EQ(m.at(1, 2), 5.0f);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    auto row = m.row(1);
    EXPECT_EQ(row.size(), 3u);
    EXPECT_EQ(row[2], 5.0f);
}

TEST(FMat, FromFlatData)
{
    FMat m(2, 2, {1, 2, 3, 4});
    EXPECT_EQ(m(0, 1), 2.0f);
    EXPECT_EQ(m(1, 0), 3.0f);
}

TEST(FTensor4, NhwcIndexing)
{
    FTensor4 t(1, 2, 3, 4);
    t.at(0, 1, 2, 3) = 9.0f;
    EXPECT_EQ(t.at(0, 1, 2, 3), 9.0f);
    EXPECT_EQ(t.size(), 24u);
    // Channel is the fastest-varying dimension.
    t.at(0, 0, 0, 0) = 1.0f;
    t.at(0, 0, 0, 1) = 2.0f;
    EXPECT_EQ(t.data()[0], 1.0f);
    EXPECT_EQ(t.data()[1], 2.0f);
}

TEST(GemvRef, MatchesManual)
{
    FMat a(2, 3, {1, 2, 3, 4, 5, 6});
    FVec x = {1, 0, -1};
    FVec y = gemvRef(a, x);
    ASSERT_EQ(y.size(), 2u);
    EXPECT_FLOAT_EQ(y[0], 1 - 3);
    EXPECT_FLOAT_EQ(y[1], 4 - 6);
}

TEST(GemvRef, DimensionChecked)
{
    FMat a(2, 3);
    FVec x(4);
    EXPECT_DEATH(gemvRef(a, x), "gemv");
}

TEST(ElementwiseRefs, AddMul)
{
    FVec a = {1, 2}, b = {3, 4};
    EXPECT_EQ(addRef(a, b), (FVec{4, 6}));
    EXPECT_EQ(mulRef(a, b), (FVec{3, 8}));
}

TEST(PadTo, Vector)
{
    FVec v = {1, 2};
    FVec p = padTo(v, 5);
    EXPECT_EQ(p, (FVec{1, 2, 0, 0, 0}));
}

TEST(PadTo, Matrix)
{
    FMat m(1, 2, {7, 8});
    FMat p = padTo(m, 2, 3);
    EXPECT_EQ(p(0, 0), 7.0f);
    EXPECT_EQ(p(0, 1), 8.0f);
    EXPECT_EQ(p(0, 2), 0.0f);
    EXPECT_EQ(p(1, 0), 0.0f);
}

TEST(Fill, XavierBounded)
{
    Rng rng(1);
    FMat m(64, 64);
    fillXavier(m, rng);
    float limit = std::sqrt(6.0f / 128);
    bool any_nonzero = false;
    for (float v : m.data()) {
        EXPECT_LE(std::fabs(v), limit);
        any_nonzero = any_nonzero || v != 0.0f;
    }
    EXPECT_TRUE(any_nonzero);
}

TEST(MaxAbsDiff, Basic)
{
    FVec a = {1, 2, 3}, b = {1, 2.5f, 2};
    EXPECT_FLOAT_EQ(maxAbsDiff(a, b), 1.0);
}

} // namespace
} // namespace bw
