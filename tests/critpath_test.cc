/**
 * @file
 * Critical-path methodology tests: the UDM/SDM values of Table I, the
 * SDM column of Table V, and structural properties of the analysis
 * (monotonicity in resources, scaling with dimension).
 */

#include <gtest/gtest.h>

#include "critpath/conv_critpath.h"
#include "critpath/critpath.h"
#include "graph/builders.h"
#include "workloads/paper_data.h"
#include "workloads/resnet50.h"

namespace bw {
namespace {

constexpr uint64_t kBwS10Macs = 96000;

CritPathResult
lstmCritPath(unsigned h)
{
    Rng rng(1);
    GirGraph g = makeLstm(randomLstmWeights(h, h, rng));
    return analyzeCritPath(g, kBwS10Macs);
}

CritPathResult
gruCritPath(unsigned h)
{
    Rng rng(1);
    GirGraph g = makeGru(randomGruWeights(h, h, rng));
    return analyzeCritPath(g, kBwS10Macs);
}

TEST(CritPath, TableOneLstm2000)
{
    CritPathResult r = lstmCritPath(2000);
    // Table I: 64M ops, UDM 19 cycles, SDM 352 cycles.
    EXPECT_EQ(r.matmulOpsPerStep, 64'000'000u);
    EXPECT_EQ(r.udmCycles, 19u);
    EXPECT_NEAR(static_cast<double>(r.sdmCycles), 352.0, 2.0);
}

TEST(CritPath, TableOneGru2800)
{
    CritPathResult r = gruCritPath(2800);
    // Table I: 94M ops, UDM 31, SDM 520. The paper's 31 is the depth
    // through h~ (dot 13 -> add -> sigm -> r*h -> dot 29 -> add ->
    // tanh); our graph also counts the output interpolation
    // h' = h~ + z(h - h~), adding 4 cycles (see EXPERIMENTS.md).
    EXPECT_EQ(r.matmulOpsPerStep, 94'080'000u);
    EXPECT_EQ(r.udmCycles, 35u);
    EXPECT_NEAR(static_cast<double>(r.sdmCycles), 520.0, 8.0);
}

TEST(CritPath, TableOneCnn3x3)
{
    CritPathResult r = analyzeConvCritPath(tableOneCnn3x3(), kBwS10Macs);
    // Table I: 231M ops, UDM 13, SDM 1204.
    EXPECT_NEAR(static_cast<double>(r.opsPerStep) / 1e6, 231.0, 1.0);
    EXPECT_EQ(r.udmCycles, 13u);
    EXPECT_NEAR(static_cast<double>(r.sdmCycles), 1204.0, 15.0);
    // Data: weights + input activations ~ 247KB at 1 byte/element.
    EXPECT_NEAR(static_cast<double>(r.dataBytes) / 1024.0, 247.0, 5.0);
}

TEST(CritPath, TableOneCnn1x1)
{
    CritPathResult r = analyzeConvCritPath(tableOneCnn1x1(), kBwS10Macs);
    // Table I: 103M ops, SDM 549. (The paper lists UDM 13 for this row
    // as well; a 64-length dot product's tree depth gives 8 — see
    // EXPERIMENTS.md for the discrepancy discussion.)
    EXPECT_NEAR(static_cast<double>(r.opsPerStep) / 1e6, 103.0, 1.0);
    EXPECT_EQ(r.udmCycles, 8u);
    EXPECT_NEAR(static_cast<double>(r.sdmCycles), 549.0, 15.0);
}

TEST(CritPath, TableFiveSdmColumn)
{
    // The SDM latencies of Table V follow from per-step SDM cycles
    // times the timestep count at 250 MHz.
    for (const auto &row : paper::tableFive()) {
        Rng rng(1);
        CritPathResult r;
        if (row.layer.kind == RnnKind::Lstm) {
            r = analyzeCritPath(
                makeLstm(randomLstmWeights(row.layer.hidden,
                                           row.layer.hidden, rng)),
                kBwS10Macs);
        } else {
            r = analyzeCritPath(
                makeGru(randomGruWeights(row.layer.hidden,
                                         row.layer.hidden, rng)),
                kBwS10Macs);
        }
        double ms = cyclesToMs(sdmTotal(r, row.layer.timeSteps), 250.0);
        EXPECT_NEAR(ms, row.sdmMs, row.sdmMs * 0.10 + 0.0002)
            << row.layer.label();
    }
}

TEST(CritPath, UdmIndependentOfResources)
{
    CritPathResult a = lstmCritPath(1024);
    Rng rng(1);
    GirGraph g = makeLstm(randomLstmWeights(1024, 1024, rng));
    CritPathResult b = analyzeCritPath(g, 1);
    EXPECT_EQ(a.udmCycles, b.udmCycles);
    EXPECT_GT(b.sdmCycles, a.sdmCycles);
}

TEST(CritPath, SdmMonotoneInMacs)
{
    Rng rng(1);
    GirGraph g = makeGru(randomGruWeights(1024, 1024, rng));
    Cycles prev = ~0ull;
    for (uint64_t macs : {1000u, 10000u, 96000u, 1000000u}) {
        CritPathResult r = analyzeCritPath(g, macs);
        EXPECT_LT(r.sdmCycles, prev);
        prev = r.sdmCycles;
        EXPECT_GE(r.sdmCycles, r.udmCycles);
    }
}

TEST(CritPath, UdmGrowsLogarithmically)
{
    // Doubling the LSTM dimension adds exactly one reduction-tree
    // stage to the UDM depth (Fig. 2's latency-vs-N behaviour).
    EXPECT_EQ(lstmCritPath(1024).udmCycles + 1,
              lstmCritPath(2048).udmCycles);
    EXPECT_EQ(lstmCritPath(512).udmCycles + 2,
              lstmCritPath(2048).udmCycles);
}

TEST(CritPath, LstmDataFootprint)
{
    // Table I: 32MB for the 2000-d LSTM at one byte per weight.
    CritPathResult r = lstmCritPath(2000);
    EXPECT_NEAR(static_cast<double>(r.dataBytes) / 1e6, 32.0, 0.1);
}

TEST(CritPath, AsapDepthsRespectDependencies)
{
    Rng rng(2);
    GirGraph g = makeGru(randomGruWeights(256, 256, rng));
    auto depth = asapDepths(g);
    for (NodeId id = 0; id < g.size(); ++id) {
        for (NodeId in : g.node(id).inputs)
            EXPECT_GE(depth[id], depth[in]) << "node " << id;
    }
}

TEST(CritPath, ConvOpsFormula)
{
    ConvSpec s = tableOneCnn3x3();
    // 28x28 positions x 128 out x (3*3*128) patch x 2 ops.
    EXPECT_EQ(s.macOps(), 2ull * 28 * 28 * 128 * 9 * 128);
    EXPECT_EQ(s.outH(), 28u);
    EXPECT_EQ(s.positions(), 784u);
}

} // namespace
} // namespace bw
