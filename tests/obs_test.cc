/**
 * @file
 * Observability-layer tests: JSON model round-trips, stats
 * serialization, the event-trace ring, Chrome trace-event export
 * (structural and golden), stall attribution conservation, and the
 * guarantee that tracing never changes simulated timing.
 */

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/logging.h"
#include "common/stats.h"
#include "isa/builder.h"
#include "obs/chrome_trace.h"
#include "obs/stall.h"
#include "obs/trace.h"
#include "runtime/serving.h"
#include "timing/npu_timing.h"

namespace bw {
namespace {

using timing::NpuTiming;
using timing::TimingResult;

// --- JSON model. -------------------------------------------------------

TEST(Json, DumpCompact)
{
    Json j = Json::object();
    j.set("a", 1);
    j.set("b", true);
    j.set("c", Json::array().push("x").push(nullptr));
    j.set("d", 2.5);
    EXPECT_EQ(j.dump(), "{\"a\":1,\"b\":true,\"c\":[\"x\",null],"
                        "\"d\":2.5}");
}

TEST(Json, ParseRoundTrip)
{
    Json j = Json::object();
    j.set("counters", Json::object().set("cycles", int64_t{123456789}));
    j.set("ratio", 0.748);
    j.set("label", "GRU h=2816 \"big\"\n");
    j.set("list", Json::array().push(1).push(2).push(3));
    Json back = Json::parse(j.dump(2));
    EXPECT_EQ(back, j);
    EXPECT_EQ(back.find("counters")->find("cycles")->asInt(), 123456789);
    EXPECT_DOUBLE_EQ(back.find("ratio")->asDouble(), 0.748);
    EXPECT_EQ(back.find("label")->asString(), "GRU h=2816 \"big\"\n");
}

TEST(Json, ParseRejectsGarbage)
{
    EXPECT_THROW(Json::parse("{\"a\":}"), Error);
    EXPECT_THROW(Json::parse("[1, 2"), Error);
    EXPECT_THROW(Json::parse("{} trailing"), Error);
}

TEST(Json, NonFiniteDumpsAsNull)
{
    Json j = Json::array();
    j.push(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(j.dump(), "[null]");
}

// --- Stats serialization and numerics. ---------------------------------

TEST(Distribution, VarianceNeverNegative)
{
    // Catastrophic cancellation regime: tiny spread, huge mean. The
    // naive sumSq/n - mean^2 goes (slightly) negative here.
    Distribution d;
    d.sample(1e9);
    d.sample(1e9 + 1e-4);
    d.sample(1e9 - 1e-4);
    EXPECT_GE(d.variance(), 0.0);
    EXPECT_GE(d.stddev(), 0.0);
    EXPECT_FALSE(std::isnan(d.stddev()));
}

TEST(Distribution, StddevMatchesSpread)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 2.0); // classic textbook set
}

TEST(StatGroup, ToJsonRoundTrip)
{
    StatGroup g("npu");
    g.inc("chains", 42);
    g.set("cycles", 123456);
    g.sample("latency", 1.0);
    g.sample("latency", 3.0);

    Json back = Json::parse(g.toJson().dump(2));
    EXPECT_EQ(back.find("name")->asString(), "npu");
    const Json *counters = back.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("chains")->asInt(), 42);
    EXPECT_EQ(counters->find("cycles")->asInt(), 123456);
    const Json *lat = back.find("distributions")->find("latency");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->find("count")->asInt(), 2);
    EXPECT_DOUBLE_EQ(lat->find("mean")->asDouble(), 2.0);
    EXPECT_EQ(back, g.toJson());
}

// --- Event-trace ring. -------------------------------------------------

obs::TraceEvent
eventAt(Cycles start, Cycles end)
{
    obs::TraceEvent e;
    e.start = start;
    e.end = end;
    e.kind = obs::EventKind::MfuOp;
    e.res = obs::ResClass::MfuUnit;
    return e;
}

TEST(EventTrace, RingKeepsMostRecent)
{
    obs::EventTrace t(4);
    for (Cycles i = 0; i < 10; ++i)
        t.event(eventAt(i, i + 1));
    EXPECT_EQ(t.emitted(), 10u);
    EXPECT_EQ(t.dropped(), 6u);
    auto evs = t.events();
    ASSERT_EQ(evs.size(), 4u);
    // Oldest-first, and only the most recent four survive.
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(evs[i].start, 6 + i);
    t.clear();
    EXPECT_EQ(t.emitted(), 0u);
    EXPECT_TRUE(t.events().empty());
}

// --- Simulator integration. --------------------------------------------

/** Small config mirroring timing_test's structural fixture. */
NpuConfig
smallConfig()
{
    NpuConfig c = NpuConfig::bwS10();
    c.name = "small";
    c.nativeDim = 40;
    c.lanes = 10;
    c.tileEngines = 2;
    c.mrfSize = 64;
    c.mrfIndexSpace = 256;
    c.initialVrfSize = 128;
    c.addSubVrfSize = 128;
    c.multiplyVrfSize = 128;
    return c;
}

/** Two dependent MVM+MFU chains exercising most resource classes. */
Program
testProgram()
{
    ProgramBuilder b;
    b.tile(2, 2);
    b.vRd(MemId::InitialVrf, 0)
        .mvMul(0)
        .vvAdd(0)
        .vTanh()
        .vWr(MemId::InitialVrf, 8);
    b.vRd(MemId::InitialVrf, 8)
        .vvMul(4)
        .vWr(MemId::AddSubVrf, 16);
    return b.build();
}

TEST(NpuTimingTrace, EventOrderingAndCoverage)
{
    NpuTiming sim(smallConfig());
    obs::EventTrace trace;
    sim.setTraceSink(&trace);
    auto res = sim.run(testProgram(), 2);

    ASSERT_EQ(trace.chains().size(), 4u); // 2 chains x 2 iterations
    auto evs = trace.events();
    ASSERT_FALSE(evs.empty());
    EXPECT_EQ(trace.dropped(), 0u);

    bool seen[static_cast<size_t>(obs::ResClass::NumResClasses)] = {};
    for (const obs::TraceEvent &e : evs) {
        EXPECT_LE(e.start, e.end);
        EXPECT_LE(e.end, res.totalCycles + 64); // within the run's span
        seen[static_cast<size_t>(e.res)] = true;
    }
    EXPECT_TRUE(seen[static_cast<size_t>(obs::ResClass::ControlProcessor)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::ResClass::TopScheduler)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::ResClass::TileEngine)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::ResClass::ReduceUnit)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::ResClass::MfuUnit)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::ResClass::VrfPort)]);

    // Profiles arrive in dispatch order — the two vector chains (first
    // instructions at indices 2 and 7, after the two s_wr's) per
    // iteration — and each chain's milestones are causally ordered.
    std::vector<uint32_t> ids;
    Cycles prev_dispatch = 0;
    for (const obs::ChainProfile &p : trace.chains()) {
        ids.push_back(p.chain);
        EXPECT_LE(p.dispatchStart, p.dispatchDone);
        EXPECT_LE(p.dispatchDone, p.decodeDone);
        EXPECT_LE(p.decodeDone, p.done);
        EXPECT_GE(p.dispatchDone, prev_dispatch);
        prev_dispatch = p.dispatchDone;
    }
    EXPECT_EQ(ids, (std::vector<uint32_t>{2, 7, 2, 7}));

    // The dependent second chain must observe a RAW stall on ivrf[8..].
    const obs::ChainProfile &dep = trace.chains()[1];
    EXPECT_GT(dep.dataStall, 0u);
    EXPECT_EQ(dep.dataStallMem, MemId::InitialVrf);
}

TEST(NpuTimingTrace, CyclesIdenticalWithAndWithoutTracing)
{
    NpuConfig cfg = smallConfig();
    Program prog = testProgram();

    NpuTiming plain(cfg);
    TimingResult off = plain.run(prog, 3);

    NpuTiming traced(cfg);
    obs::EventTrace trace;
    traced.setTraceSink(&trace);
    TimingResult on = traced.run(prog, 3);

    EXPECT_EQ(on.totalCycles, off.totalCycles);
    EXPECT_EQ(on.iterationEnd, off.iterationEnd);
    EXPECT_EQ(on.mvmBusyCycles, off.mvmBusyCycles);
    EXPECT_EQ(on.mfuBusyCycles, off.mfuBusyCycles);
    EXPECT_EQ(on.stats.counters(), off.stats.counters());

    // Detaching the sink must restore the zero-instrumentation path and
    // still produce identical timing.
    traced.setTraceSink(nullptr);
    TimingResult detached = traced.run(prog, 3);
    EXPECT_EQ(detached.totalCycles, off.totalCycles);
}

TEST(NpuTimingTrace, StallAttributionSumsToTotalCycles)
{
    NpuTiming sim(smallConfig());
    obs::EventTrace trace;
    sim.setTraceSink(&trace);
    auto res = sim.run(testProgram(), 4);

    obs::StallReport rep =
        obs::buildStallReport(trace.chains(), res.totalCycles);
    EXPECT_EQ(rep.totalCycles, res.totalCycles);
    Cycles sum = 0;
    for (const obs::StallBucket &b : rep.buckets)
        sum += b.cycles;
    EXPECT_EQ(sum, res.totalCycles); // exact, not just within 1%
    EXPECT_EQ(rep.attributedCycles, res.totalCycles);
    EXPECT_FALSE(rep.buckets.empty());
    // The report renders without blowing up and names its total.
    std::string text = rep.render();
    EXPECT_NE(text.find("stall reason"), std::string::npos);
}

TEST(NpuTimingTrace, TimingResultToJson)
{
    NpuTiming sim(smallConfig());
    auto res = sim.run(testProgram(), 2);
    Json j = Json::parse(res.toJson().dump());
    EXPECT_EQ(j.find("total_cycles")->asInt(),
              static_cast<int64_t>(res.totalCycles));
    EXPECT_EQ(j.find("chains_executed")->asInt(), 4);
    EXPECT_EQ(j.find("iteration_end")->size(), 2u);
    EXPECT_TRUE(j.find("stats")->contains("counters"));
}

// --- Chrome trace-event export. ----------------------------------------

TEST(ChromeTrace, GoldenTinyTrace)
{
    obs::EventTrace t;
    obs::TraceEvent e;
    e.start = 10;
    e.end = 14;
    e.kind = obs::EventKind::TileStream;
    e.res = obs::ResClass::TileEngine;
    e.resIndex = 1;
    e.chain = 3;
    t.event(e);

    // Raw-cycle timestamps (clock 0) keep the golden exact.
    std::string json = obs::chromeTraceJson(t, 0.0).dump();
    EXPECT_EQ(json,
              "{\"traceEvents\":["
              "{\"name\":\"tile_stream\",\"cat\":\"tile_engine\","
              "\"ph\":\"X\",\"ts\":10.0,\"dur\":4.0,\"pid\":0,"
              "\"tid\":2001,\"args\":{\"chain\":3,\"start_cycle\":10,"
              "\"end_cycle\":14}},"
              "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
              "\"tid\":2001,\"args\":{\"name\":\"tile_engine[1]\"}},"
              "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,"
              "\"tid\":2001,\"args\":{\"sort_index\":2001}}],"
              "\"displayTimeUnit\":\"ms\","
              "\"otherData\":{\"tool\":\"bw_trace\",\"clock_mhz\":0.0,"
              "\"events_emitted\":1,\"events_dropped\":0}}");
}

TEST(ChromeTrace, SimRunExportsValidStructure)
{
    NpuConfig cfg = smallConfig();
    NpuTiming sim(cfg);
    obs::EventTrace trace;
    sim.setTraceSink(&trace);
    sim.run(testProgram(), 1);

    Json doc = Json::parse(obs::chromeTraceJson(trace, cfg.clockMhz)
                               .dump(2));
    const Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_GT(events->size(), 0u);
    size_t complete = 0, metadata = 0;
    for (size_t i = 0; i < events->size(); ++i) {
        const Json &ev = events->at(i);
        const std::string &ph = ev.find("ph")->asString();
        ASSERT_TRUE(ph == "X" || ph == "M");
        EXPECT_TRUE(ev.contains("name"));
        EXPECT_TRUE(ev.contains("tid"));
        if (ph == "X") {
            ++complete;
            EXPECT_GE(ev.find("dur")->asDouble(), 0.0);
            EXPECT_GE(ev.find("ts")->asDouble(), 0.0);
        } else {
            ++metadata;
        }
    }
    EXPECT_GT(complete, 0u);
    EXPECT_GT(metadata, 0u); // track names present
}

// --- Serving percentiles. ----------------------------------------------

TEST(Serving, NearestRankPercentiles)
{
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(i);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 50), 50.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 95), 95.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 99), 99.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 100), 100.0);
    EXPECT_DOUBLE_EQ(percentileSorted({}, 99), 0.0);
    EXPECT_DOUBLE_EQ(percentileSorted({7.0}, 50), 7.0);
}

TEST(Serving, P95Populated)
{
    // Uncontended requests: every latency identical, so all percentiles
    // equal service + network time.
    std::vector<double> arrivals;
    for (int i = 0; i < 50; ++i)
        arrivals.push_back(i * 1.0);
    ServeStats s = serveUnbatched(arrivals, 2.0, 0.1);
    EXPECT_NEAR(s.p95LatencyMs, 2.1, 1e-9);
    EXPECT_NEAR(s.p95LatencyMs, s.p50LatencyMs, 1e-9);
    EXPECT_LE(s.p50LatencyMs, s.p95LatencyMs);
    EXPECT_LE(s.p95LatencyMs, s.p99LatencyMs);

    ServeStats b = serveBatched(arrivals, 4, 1.0,
                                [](unsigned) { return 2.0; });
    EXPECT_GT(b.p95LatencyMs, 0.0);
    EXPECT_LE(b.p95LatencyMs, b.maxLatencyMs);
}

} // namespace
} // namespace bw
