/**
 * @file
 * Observability-layer tests: JSON model round-trips, stats
 * serialization, the event-trace ring, Chrome trace-event export
 * (structural and golden), stall attribution conservation, and the
 * guarantee that tracing never changes simulated timing.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/json.h"
#include "common/logging.h"
#include "common/stats.h"
#include "isa/builder.h"
#include "obs/chrome_trace.h"
#include "obs/span.h"
#include "obs/stall.h"
#include "obs/trace.h"
#include "runtime/serving.h"
#include "timing/npu_timing.h"

namespace bw {
namespace {

using timing::NpuTiming;
using timing::TimingResult;

// --- JSON model. -------------------------------------------------------

TEST(Json, DumpCompact)
{
    Json j = Json::object();
    j.set("a", 1);
    j.set("b", true);
    j.set("c", Json::array().push("x").push(nullptr));
    j.set("d", 2.5);
    EXPECT_EQ(j.dump(), "{\"a\":1,\"b\":true,\"c\":[\"x\",null],"
                        "\"d\":2.5}");
}

TEST(Json, ParseRoundTrip)
{
    Json j = Json::object();
    j.set("counters", Json::object().set("cycles", int64_t{123456789}));
    j.set("ratio", 0.748);
    j.set("label", "GRU h=2816 \"big\"\n");
    j.set("list", Json::array().push(1).push(2).push(3));
    Json back = Json::parse(j.dump(2));
    EXPECT_EQ(back, j);
    EXPECT_EQ(back.find("counters")->find("cycles")->asInt(), 123456789);
    EXPECT_DOUBLE_EQ(back.find("ratio")->asDouble(), 0.748);
    EXPECT_EQ(back.find("label")->asString(), "GRU h=2816 \"big\"\n");
}

TEST(Json, ParseRejectsGarbage)
{
    EXPECT_THROW(Json::parse("{\"a\":}"), Error);
    EXPECT_THROW(Json::parse("[1, 2"), Error);
    EXPECT_THROW(Json::parse("{} trailing"), Error);
}

TEST(Json, NonFiniteDumpsAsNull)
{
    Json j = Json::array();
    j.push(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(j.dump(), "[null]");
}

// --- Stats serialization and numerics. ---------------------------------

TEST(Distribution, VarianceNeverNegative)
{
    // Catastrophic cancellation regime: tiny spread, huge mean. The
    // naive sumSq/n - mean^2 goes (slightly) negative here.
    Distribution d;
    d.sample(1e9);
    d.sample(1e9 + 1e-4);
    d.sample(1e9 - 1e-4);
    EXPECT_GE(d.variance(), 0.0);
    EXPECT_GE(d.stddev(), 0.0);
    EXPECT_FALSE(std::isnan(d.stddev()));
}

TEST(Distribution, StddevMatchesSpread)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 2.0); // classic textbook set
}

TEST(StatGroup, ToJsonRoundTrip)
{
    StatGroup g("npu");
    g.inc("chains", 42);
    g.set("cycles", 123456);
    g.sample("latency", 1.0);
    g.sample("latency", 3.0);

    Json back = Json::parse(g.toJson().dump(2));
    EXPECT_EQ(back.find("name")->asString(), "npu");
    const Json *counters = back.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("chains")->asInt(), 42);
    EXPECT_EQ(counters->find("cycles")->asInt(), 123456);
    const Json *lat = back.find("distributions")->find("latency");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->find("count")->asInt(), 2);
    EXPECT_DOUBLE_EQ(lat->find("mean")->asDouble(), 2.0);
    EXPECT_EQ(back, g.toJson());
}

// --- Event-trace ring. -------------------------------------------------

obs::TraceEvent
eventAt(Cycles start, Cycles end)
{
    obs::TraceEvent e;
    e.start = start;
    e.end = end;
    e.kind = obs::EventKind::MfuOp;
    e.res = obs::ResClass::MfuUnit;
    return e;
}

TEST(EventTrace, RingKeepsMostRecent)
{
    obs::EventTrace t(4);
    for (Cycles i = 0; i < 10; ++i)
        t.event(eventAt(i, i + 1));
    EXPECT_EQ(t.emitted(), 10u);
    EXPECT_EQ(t.dropped(), 6u);
    auto evs = t.events();
    ASSERT_EQ(evs.size(), 4u);
    // Oldest-first, and only the most recent four survive.
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(evs[i].start, 6 + i);
    t.clear();
    EXPECT_EQ(t.emitted(), 0u);
    EXPECT_TRUE(t.events().empty());
}

// --- Simulator integration. --------------------------------------------

/** Small config mirroring timing_test's structural fixture. */
NpuConfig
smallConfig()
{
    NpuConfig c = NpuConfig::bwS10();
    c.name = "small";
    c.nativeDim = 40;
    c.lanes = 10;
    c.tileEngines = 2;
    c.mrfSize = 64;
    c.mrfIndexSpace = 256;
    c.initialVrfSize = 128;
    c.addSubVrfSize = 128;
    c.multiplyVrfSize = 128;
    return c;
}

/** Two dependent MVM+MFU chains exercising most resource classes. */
Program
testProgram()
{
    ProgramBuilder b;
    b.tile(2, 2);
    b.vRd(MemId::InitialVrf, 0)
        .mvMul(0)
        .vvAdd(0)
        .vTanh()
        .vWr(MemId::InitialVrf, 8);
    b.vRd(MemId::InitialVrf, 8)
        .vvMul(4)
        .vWr(MemId::AddSubVrf, 16);
    return b.build();
}

TEST(NpuTimingTrace, EventOrderingAndCoverage)
{
    NpuTiming sim(smallConfig());
    obs::EventTrace trace;
    sim.setTraceSink(&trace);
    auto res = sim.run(testProgram(), 2);

    ASSERT_EQ(trace.chains().size(), 4u); // 2 chains x 2 iterations
    auto evs = trace.events();
    ASSERT_FALSE(evs.empty());
    EXPECT_EQ(trace.dropped(), 0u);

    bool seen[static_cast<size_t>(obs::ResClass::NumResClasses)] = {};
    for (const obs::TraceEvent &e : evs) {
        EXPECT_LE(e.start, e.end);
        EXPECT_LE(e.end, res.totalCycles + 64); // within the run's span
        seen[static_cast<size_t>(e.res)] = true;
    }
    EXPECT_TRUE(seen[static_cast<size_t>(obs::ResClass::ControlProcessor)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::ResClass::TopScheduler)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::ResClass::TileEngine)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::ResClass::ReduceUnit)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::ResClass::MfuUnit)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::ResClass::VrfPort)]);

    // Profiles arrive in dispatch order — the two vector chains (first
    // instructions at indices 2 and 7, after the two s_wr's) per
    // iteration — and each chain's milestones are causally ordered.
    std::vector<uint32_t> ids;
    Cycles prev_dispatch = 0;
    for (const obs::ChainProfile &p : trace.chains()) {
        ids.push_back(p.chain);
        EXPECT_LE(p.dispatchStart, p.dispatchDone);
        EXPECT_LE(p.dispatchDone, p.decodeDone);
        EXPECT_LE(p.decodeDone, p.done);
        EXPECT_GE(p.dispatchDone, prev_dispatch);
        prev_dispatch = p.dispatchDone;
    }
    EXPECT_EQ(ids, (std::vector<uint32_t>{2, 7, 2, 7}));

    // The dependent second chain must observe a RAW stall on ivrf[8..].
    const obs::ChainProfile &dep = trace.chains()[1];
    EXPECT_GT(dep.dataStall, 0u);
    EXPECT_EQ(dep.dataStallMem, MemId::InitialVrf);
}

TEST(NpuTimingTrace, CyclesIdenticalWithAndWithoutTracing)
{
    NpuConfig cfg = smallConfig();
    Program prog = testProgram();

    NpuTiming plain(cfg);
    TimingResult off = plain.run(prog, 3);

    NpuTiming traced(cfg);
    obs::EventTrace trace;
    traced.setTraceSink(&trace);
    TimingResult on = traced.run(prog, 3);

    EXPECT_EQ(on.totalCycles, off.totalCycles);
    EXPECT_EQ(on.iterationEnd, off.iterationEnd);
    EXPECT_EQ(on.mvmBusyCycles, off.mvmBusyCycles);
    EXPECT_EQ(on.mfuBusyCycles, off.mfuBusyCycles);
    EXPECT_EQ(on.stats.counters(), off.stats.counters());

    // Detaching the sink must restore the zero-instrumentation path and
    // still produce identical timing.
    traced.setTraceSink(nullptr);
    TimingResult detached = traced.run(prog, 3);
    EXPECT_EQ(detached.totalCycles, off.totalCycles);
}

TEST(NpuTimingTrace, StallAttributionSumsToTotalCycles)
{
    NpuTiming sim(smallConfig());
    obs::EventTrace trace;
    sim.setTraceSink(&trace);
    auto res = sim.run(testProgram(), 4);

    obs::StallReport rep =
        obs::buildStallReport(trace.chains(), res.totalCycles);
    EXPECT_EQ(rep.totalCycles, res.totalCycles);
    Cycles sum = 0;
    for (const obs::StallBucket &b : rep.buckets)
        sum += b.cycles;
    EXPECT_EQ(sum, res.totalCycles); // exact, not just within 1%
    EXPECT_EQ(rep.attributedCycles, res.totalCycles);
    EXPECT_FALSE(rep.buckets.empty());
    // The report renders without blowing up and names its total.
    std::string text = rep.render();
    EXPECT_NE(text.find("stall reason"), std::string::npos);
}

TEST(NpuTimingTrace, TimingResultToJson)
{
    NpuTiming sim(smallConfig());
    auto res = sim.run(testProgram(), 2);
    Json j = Json::parse(res.toJson().dump());
    EXPECT_EQ(j.find("total_cycles")->asInt(),
              static_cast<int64_t>(res.totalCycles));
    EXPECT_EQ(j.find("chains_executed")->asInt(), 4);
    EXPECT_EQ(j.find("iteration_end")->size(), 2u);
    EXPECT_TRUE(j.find("stats")->contains("counters"));
}

// --- Chrome trace-event export. ----------------------------------------

TEST(ChromeTrace, GoldenTinyTrace)
{
    obs::EventTrace t;
    obs::TraceEvent e;
    e.start = 10;
    e.end = 14;
    e.kind = obs::EventKind::TileStream;
    e.res = obs::ResClass::TileEngine;
    e.resIndex = 1;
    e.chain = 3;
    t.event(e);

    // Raw-cycle timestamps (clock 0) keep the golden exact.
    std::string json = obs::chromeTraceJson(t, 0.0).dump();
    EXPECT_EQ(json,
              "{\"traceEvents\":["
              "{\"name\":\"tile_stream\",\"cat\":\"tile_engine\","
              "\"ph\":\"X\",\"ts\":10.0,\"dur\":4.0,\"pid\":0,"
              "\"tid\":2001,\"args\":{\"chain\":3,\"start_cycle\":10,"
              "\"end_cycle\":14}},"
              "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
              "\"tid\":2001,\"args\":{\"name\":\"tile_engine[1]\"}},"
              "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,"
              "\"tid\":2001,\"args\":{\"sort_index\":2001}}],"
              "\"displayTimeUnit\":\"ms\","
              "\"otherData\":{\"tool\":\"bw_trace\",\"clock_mhz\":0.0,"
              "\"events_emitted\":1,\"events_dropped\":0}}");
}

TEST(ChromeTrace, SimRunExportsValidStructure)
{
    NpuConfig cfg = smallConfig();
    NpuTiming sim(cfg);
    obs::EventTrace trace;
    sim.setTraceSink(&trace);
    sim.run(testProgram(), 1);

    Json doc = Json::parse(obs::chromeTraceJson(trace, cfg.clockMhz)
                               .dump(2));
    const Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_GT(events->size(), 0u);
    size_t complete = 0, metadata = 0;
    for (size_t i = 0; i < events->size(); ++i) {
        const Json &ev = events->at(i);
        const std::string &ph = ev.find("ph")->asString();
        ASSERT_TRUE(ph == "X" || ph == "M");
        EXPECT_TRUE(ev.contains("name"));
        EXPECT_TRUE(ev.contains("tid"));
        if (ph == "X") {
            ++complete;
            EXPECT_GE(ev.find("dur")->asDouble(), 0.0);
            EXPECT_GE(ev.find("ts")->asDouble(), 0.0);
        } else {
            ++metadata;
        }
    }
    EXPECT_GT(complete, 0u);
    EXPECT_GT(metadata, 0u); // track names present
}

// --- Span tracing. -----------------------------------------------------

/** Canonical Ok-request boundaries reused across the span tests. */
obs::RequestSpans
okRequest(obs::TraceId trace)
{
    obs::RequestSpans rs;
    rs.trace = trace;
    rs.admitUs = 100;
    rs.dequeueUs = 250;
    rs.serviceUs = 300;
    rs.doneUs = 900;
    rs.replica = 2;
    rs.chainCount = 2;
    return rs;
}

/** Two adjacent chain profiles covering [0, 100) cycles. */
std::vector<obs::ChainProfile>
twoChains()
{
    obs::ChainProfile a;
    a.chain = 2;
    a.kind = 'V';
    a.dispatchStart = 0;
    a.dispatchDone = 10;
    a.decodeDone = 20;
    a.done = 50;
    a.dataStall = 5;
    obs::ChainProfile b;
    b.chain = 7;
    b.kind = 'M';
    b.dispatchStart = 50;
    b.dispatchDone = 55;
    b.decodeDone = 60;
    b.done = 100;
    b.structStall = 10;
    return {a, b};
}

TEST(SpanTracer, HeadSamplingIsAPureFunctionOfSequence)
{
    obs::SpanTracer every{{}};
    EXPECT_EQ(every.admit(1).trace, 1u);
    EXPECT_EQ(every.admit(42).trace, 42u);
    EXPECT_TRUE(every.admit(42).sampled());

    obs::SpanTracerOptions third;
    third.sampleEvery = 3;
    obs::SpanTracer t3(third);
    EXPECT_TRUE(t3.admit(1).sampled());
    EXPECT_FALSE(t3.admit(2).sampled());
    EXPECT_FALSE(t3.admit(3).sampled());
    EXPECT_TRUE(t3.admit(4).sampled());
    EXPECT_TRUE(t3.admit(7).sampled());

    obs::SpanTracerOptions off;
    off.sampleEvery = 0;
    obs::SpanTracer none(off);
    EXPECT_FALSE(none.admit(1).sampled());
    EXPECT_FALSE(none.admit(1000).sampled());
}

TEST(SpanTracer, OptionsFromEnvReadsSampleEvery)
{
    ::setenv("BW_SPAN_SAMPLE", "5", 1);
    obs::SpanTracerOptions o = obs::SpanTracerOptions::fromEnv();
    EXPECT_EQ(o.sampleEvery, 5u);
    ::unsetenv("BW_SPAN_SAMPLE");
    EXPECT_EQ(obs::SpanTracerOptions::fromEnv().sampleEvery, 1u);
}

TEST(SpanTracer, CollectSortsByTraceThenIdAndClearResets)
{
    obs::SpanTracer tracer{{}};
    obs::SpanRecord s;
    s.trace = 2;
    s.id = 1;
    tracer.record(s);
    s.trace = 1;
    s.id = 2;
    tracer.record(s);
    s.trace = 1;
    s.id = 1;
    tracer.record(s);

    auto spans = tracer.collect();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].trace, 1u);
    EXPECT_EQ(spans[0].id, 1u);
    EXPECT_EQ(spans[1].trace, 1u);
    EXPECT_EQ(spans[1].id, 2u);
    EXPECT_EQ(spans[2].trace, 2u);
    EXPECT_EQ(tracer.recorded(), 3u);
    EXPECT_EQ(tracer.dropped(), 0u);

    tracer.clear();
    EXPECT_TRUE(tracer.collect().empty());
    EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(SpanTracer, RingOverwriteCountsDropped)
{
    obs::SpanTracerOptions opts;
    opts.shardCapacity = 4;
    obs::SpanTracer tracer(opts);
    obs::SpanRecord s;
    s.trace = 1;
    for (uint32_t i = 1; i <= 10; ++i) {
        s.id = i;
        tracer.record(s); // single thread -> single shard
    }
    EXPECT_EQ(tracer.recorded(), 10u);
    EXPECT_EQ(tracer.dropped(), 6u);
    EXPECT_EQ(tracer.collect().size(), 4u);
}

TEST(SpanRequestTree, OkTreePartitionsRequestExactly)
{
    obs::SpanTracer tracer{{}};
    obs::SpanId exec = recordRequestTree(tracer, okRequest(9));
    EXPECT_EQ(exec, 4u);

    auto spans = tracer.collect();
    ASSERT_EQ(spans.size(), 4u);
    const obs::SpanRecord &req = spans[0], &q = spans[1], &d = spans[2],
                          &e = spans[3];
    EXPECT_EQ(req.kind, obs::SpanKind::Request);
    EXPECT_EQ(q.kind, obs::SpanKind::QueueWait);
    EXPECT_EQ(d.kind, obs::SpanKind::Dispatch);
    EXPECT_EQ(e.kind, obs::SpanKind::Execute);
    EXPECT_EQ(e.index, 2u); // replica
    // Shared boundaries: children partition the request to the
    // microsecond, so durations sum exactly (the +-0 criterion).
    EXPECT_EQ(q.startUs, req.startUs);
    EXPECT_EQ(q.endUs, d.startUs);
    EXPECT_EQ(d.endUs, e.startUs);
    EXPECT_EQ(e.endUs, req.endUs);
    EXPECT_EQ((q.endUs - q.startUs) + (d.endUs - d.startUs) +
                  (e.endUs - e.startUs),
              req.endUs - req.startUs);
}

TEST(SpanRequestTree, ExpiredRequestRecordsQueueWaitOnly)
{
    obs::SpanTracer tracer{{}};
    obs::RequestSpans rs;
    rs.trace = 3;
    rs.admitUs = 10;
    rs.dequeueUs = 40;
    rs.serviceUs = 40;
    rs.doneUs = 40;
    rs.outcome = obs::SpanOutcome::DeadlineExpired;
    EXPECT_EQ(recordRequestTree(tracer, rs), 0u);

    auto spans = tracer.collect();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].kind, obs::SpanKind::Request);
    EXPECT_EQ(spans[0].outcome, obs::SpanOutcome::DeadlineExpired);
    EXPECT_EQ(spans[1].kind, obs::SpanKind::QueueWait);

    // An unsampled request records nothing at all.
    recordRequestTree(tracer, obs::RequestSpans{});
    EXPECT_EQ(tracer.collect().size(), 2u);
}

TEST(SpanChainSpans, CyclesMapProportionallyIntoExecuteWindow)
{
    obs::SpanTracer tracer{{}};
    obs::SpanId exec = recordRequestTree(tracer, okRequest(1));
    recordChainSpans(tracer, 1, exec, 300, 900, twoChains(), 100);

    auto spans = tracer.collect();
    ASSERT_EQ(spans.size(), 6u);
    const obs::SpanRecord &c0 = spans[4], &c1 = spans[5];
    EXPECT_EQ(c0.kind, obs::SpanKind::Chain);
    EXPECT_EQ(c0.parent, exec);
    EXPECT_EQ(c0.chainKind, 'V');
    EXPECT_EQ(c0.chainId, 2u);
    // [0,50) and [50,100) of 100 cycles over window [300,900]:
    // integer-exact halves, adjacent chains share the boundary.
    EXPECT_EQ(c0.startUs, 300u);
    EXPECT_EQ(c0.endUs, 600u);
    EXPECT_EQ(c1.startUs, 600u);
    EXPECT_EQ(c1.endUs, 900u);
    // Cycle-domain attributes ride along unscaled.
    EXPECT_EQ(c0.dispatchCycles, 10u);
    EXPECT_EQ(c0.decodeCycles, 10u);
    EXPECT_EQ(c0.dataStallCycles, 5u);
    EXPECT_EQ(c0.computeCycles, 25u); // done-decodeDone minus stalls
    EXPECT_EQ(c1.structStallCycles, 10u);
    EXPECT_EQ(c1.computeCycles, 30u);
}

TEST(SpanChainSpans, MaxChainSpansCapsChildren)
{
    obs::SpanTracerOptions opts;
    opts.maxChainSpans = 1;
    obs::SpanTracer tracer(opts);
    obs::RequestSpans rs = okRequest(1);
    obs::SpanId exec = recordRequestTree(tracer, rs);
    recordChainSpans(tracer, 1, exec, 300, 900, twoChains(), 100);
    EXPECT_EQ(tracer.collect().size(), 5u); // 4 tree + 1 capped chain

    Json doc = obs::spanTreeJson(tracer);
    const Json *children =
        doc.find("traces")->at(0).find("root")->find("children");
    ASSERT_EQ(children->size(), 3u);
    const Json &execute = children->at(2);
    EXPECT_EQ(execute.find("chains")->asInt(), 2); // full total
    EXPECT_NE(execute.find("chains_truncated"), nullptr);
    ASSERT_NE(execute.find("children"), nullptr);
    EXPECT_EQ(execute.find("children")->size(), 1u);
}

TEST(SpanTreeJson, ExportValidatesAndOrders)
{
    obs::SpanTracer tracer{{}};
    // Record trace 5 before trace 2: export must ascend by trace id.
    obs::SpanId e5 = recordRequestTree(tracer, okRequest(5));
    recordChainSpans(tracer, 5, e5, 300, 900, twoChains(), 100);
    recordRequestTree(tracer, okRequest(2));

    Json doc = obs::spanTreeJson(tracer);
    Status st = obs::validateSpanTreeJson(doc);
    EXPECT_TRUE(st.ok()) << st.toString();
    EXPECT_EQ(doc.find("schema")->asString(), "bw.spans/1");
    EXPECT_EQ(doc.find("spans")->asInt(), 10); // 4 + 2 chains + 4
    EXPECT_EQ(doc.find("dropped")->asInt(), 0);

    const Json *traces = doc.find("traces");
    ASSERT_EQ(traces->size(), 2u);
    EXPECT_EQ(traces->at(0).find("trace")->asInt(), 2);
    EXPECT_EQ(traces->at(1).find("trace")->asInt(), 5);

    const Json *root = traces->at(1).find("root");
    EXPECT_EQ(root->find("name")->asString(), "request");
    EXPECT_EQ(root->find("outcome")->asString(), "ok");
    const Json *children = root->find("children");
    ASSERT_EQ(children->size(), 3u);
    EXPECT_EQ(children->at(0).find("name")->asString(), "queue_wait");
    EXPECT_EQ(children->at(1).find("name")->asString(), "dispatch");
    EXPECT_EQ(children->at(2).find("name")->asString(), "execute");
    const Json *chains = children->at(2).find("children");
    ASSERT_EQ(chains->size(), 2u);
    EXPECT_EQ(chains->at(0).find("name")->asString(), "chain[0]");
    EXPECT_EQ(chains->at(0).find("stalls")->find("data")->asInt(), 5);

    // Identical input renders byte-identical JSON.
    EXPECT_EQ(doc.dump(), obs::spanTreeJson(tracer).dump());
}

TEST(SpanTreeJson, ValidatorRejectsViolations)
{
    EXPECT_FALSE(obs::validateSpanTreeJson(Json::parse("[]")).ok());
    EXPECT_FALSE(
        obs::validateSpanTreeJson(Json::parse("{\"schema\":\"x\"}")).ok());

    auto mk = [](const char *root_body) {
        return Json::parse(std::string("{\"schema\":\"bw.spans/1\","
                                       "\"traces\":[{\"trace\":1,"
                                       "\"root\":") +
                           root_body + "}]}");
    };
    // Root not named request.
    EXPECT_FALSE(obs::validateSpanTreeJson(
                     mk("{\"name\":\"queue_wait\",\"id\":1,"
                        "\"start_us\":0,\"end_us\":1,\"dur_us\":1}"))
                     .ok());
    // dur inconsistent with start/end.
    EXPECT_FALSE(obs::validateSpanTreeJson(
                     mk("{\"name\":\"request\",\"id\":1,"
                        "\"start_us\":0,\"end_us\":5,\"dur_us\":4}"))
                     .ok());
    // Child escapes its parent interval.
    Status escape = obs::validateSpanTreeJson(
        mk("{\"name\":\"request\",\"id\":1,\"start_us\":10,"
           "\"end_us\":20,\"dur_us\":10,\"children\":["
           "{\"name\":\"queue_wait\",\"id\":2,\"start_us\":5,"
           "\"end_us\":15,\"dur_us\":10}]}"));
    EXPECT_FALSE(escape.ok());
    EXPECT_NE(escape.message().find("escapes"), std::string::npos);
    // Duplicate ids within a trace.
    EXPECT_FALSE(obs::validateSpanTreeJson(
                     mk("{\"name\":\"request\",\"id\":1,\"start_us\":0,"
                        "\"end_us\":9,\"dur_us\":9,\"children\":["
                        "{\"name\":\"queue_wait\",\"id\":1,"
                        "\"start_us\":0,\"end_us\":1,\"dur_us\":1}]}"))
                     .ok());
    // The canonical empty export passes.
    EXPECT_TRUE(obs::validateSpanTreeJson(
                    Json::parse("{\"schema\":\"bw.spans/1\","
                                "\"traces\":[]}"))
                    .ok());
}

TEST(SpanTreeJson, LostRootDropsTraceAndCountsIncomplete)
{
    obs::SpanTracer tracer{{}};
    // An orphaned child whose request root was overwritten.
    obs::SpanRecord s;
    s.trace = 1;
    s.id = 2;
    s.parent = 1;
    s.kind = obs::SpanKind::QueueWait;
    tracer.record(s);
    recordRequestTree(tracer, okRequest(7)); // plus one intact trace

    Json doc = obs::spanTreeJson(tracer);
    EXPECT_TRUE(obs::validateSpanTreeJson(doc).ok());
    ASSERT_EQ(doc.find("traces")->size(), 1u);
    EXPECT_EQ(doc.find("traces")->at(0).find("trace")->asInt(), 7);
    EXPECT_EQ(doc.find("incomplete_traces")->asInt(), 1);
}

TEST(SpanChromeEvents, AsyncPairsOverlayTimeline)
{
    obs::SpanTracer tracer{{}};
    obs::SpanId exec = recordRequestTree(tracer, okRequest(6));
    recordChainSpans(tracer, 6, exec, 300, 900, twoChains(), 100);

    Json doc = Json::object(); // no traceEvents yet: created on demand
    obs::appendSpanEvents(doc, tracer.collect());
    const Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->size(), 12u); // 6 spans x (b + e)

    size_t begins = 0, ends = 0;
    for (size_t i = 0; i < events->size(); ++i) {
        const Json &ev = events->at(i);
        EXPECT_EQ(ev.find("cat")->asString(), "bw.span");
        EXPECT_EQ(ev.find("id")->asString(), "6");
        const std::string &ph = ev.find("ph")->asString();
        if (ph == "b") {
            ++begins;
            EXPECT_TRUE(ev.contains("args"));
        } else {
            ASSERT_EQ(ph, "e");
            ++ends;
        }
    }
    EXPECT_EQ(begins, 6u);
    EXPECT_EQ(ends, 6u);
}

TEST(SpanChromeEvents, DocDrivenMergeMatchesRecordDrivenOverlay)
{
    obs::SpanTracer tracer{{}};
    obs::SpanId exec = recordRequestTree(tracer, okRequest(4));
    recordChainSpans(tracer, 4, exec, 300, 900, twoChains(), 100);
    Json span_doc = obs::spanTreeJson(tracer);

    Json merged = Json::object();
    merged.set("traceEvents", Json::array());
    Status st = obs::appendSpanTreeDocEvents(merged, span_doc);
    EXPECT_TRUE(st.ok()) << st.toString();
    // Same span set -> same number of b/e pairs as the record overlay.
    Json direct = Json::object();
    obs::appendSpanEvents(direct, tracer.collect());
    EXPECT_EQ(merged.find("traceEvents")->size(),
              direct.find("traceEvents")->size());

    // A rejected document leaves the target untouched.
    Json before = merged;
    EXPECT_FALSE(
        obs::appendSpanTreeDocEvents(merged, Json::parse("{}")).ok());
    EXPECT_EQ(merged.dump(), before.dump());
}

TEST(NpuTimingTrace, RunProfiledMatchesRunAndFeedsChains)
{
    NpuConfig cfg = smallConfig();
    Program prog = testProgram();

    NpuTiming plain(cfg);
    TimingResult off = plain.run(Program{}, prog, 2);

    NpuTiming profiled(cfg);
    std::vector<obs::ChainProfile> chains;
    TimingResult on = profiled.runProfiled(Program{}, prog, 2, &chains);

    // Purely observational: bit-identical cycle counts.
    EXPECT_EQ(on.totalCycles, off.totalCycles);
    EXPECT_EQ(on.mvmBusyCycles, off.mvmBusyCycles);
    EXPECT_EQ(on.stats.counters(), off.stats.counters());
    ASSERT_EQ(chains.size(), 4u); // 2 chains x 2 iterations
    for (const obs::ChainProfile &p : chains)
        EXPECT_LE(p.dispatchStart, p.done);

    // An attached sink still sees every event through the forwarder.
    obs::EventTrace trace;
    profiled.setTraceSink(&trace);
    std::vector<obs::ChainProfile> chains2;
    profiled.runProfiled(Program{}, prog, 2, &chains2);
    EXPECT_EQ(chains2.size(), 4u);
    EXPECT_GT(trace.events().size(), 0u);
    EXPECT_EQ(trace.chains().size(), 4u);
}

// --- Serving percentiles. ----------------------------------------------

TEST(Serving, NearestRankPercentiles)
{
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(i);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 50), 50.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 95), 95.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 99), 99.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 100), 100.0);
    EXPECT_DOUBLE_EQ(percentileSorted({}, 99), 0.0);
    EXPECT_DOUBLE_EQ(percentileSorted({7.0}, 50), 7.0);
}

TEST(Serving, P95Populated)
{
    // Uncontended requests: every latency identical, so all percentiles
    // equal service + network time.
    std::vector<double> arrivals;
    for (int i = 0; i < 50; ++i)
        arrivals.push_back(i * 1.0);
    ServeStats s = serveUnbatched(arrivals, 2.0, 0.1);
    EXPECT_NEAR(s.p95LatencyMs, 2.1, 1e-9);
    EXPECT_NEAR(s.p95LatencyMs, s.p50LatencyMs, 1e-9);
    EXPECT_LE(s.p50LatencyMs, s.p95LatencyMs);
    EXPECT_LE(s.p95LatencyMs, s.p99LatencyMs);

    ServeStats b = serveBatched(arrivals, 4, 1.0,
                                [](unsigned) { return 2.0; });
    EXPECT_GT(b.p95LatencyMs, 0.0);
    EXPECT_LE(b.p95LatencyMs, b.maxLatencyMs);
}

} // namespace
} // namespace bw
