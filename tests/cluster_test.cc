/**
 * @file
 * Tests for bw::cluster: deterministic traffic generation, router
 * policies (consistent hash, least-loaded, SLO-aware shedding), the LRU
 * weight cache, and the Cluster replay determinism/degeneracy contracts.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "bw/bw.h"

using namespace bw;
using namespace bw::cluster;

// --- TrafficGen ---

TEST(Traffic, GenerateIsDeterministic)
{
    TrafficOptions opts;
    opts.baseRps = 2000;
    opts.durationS = 0.5;
    opts.seed = 7;
    opts.diurnalAmplitude = 0.3;
    opts.diurnalPeriodS = 0.25;
    opts.bursts.push_back(BurstPhase{0.1, 0.05, 3.0});
    opts.mix.push_back(ModelMix{0, 4.0, 2, 10.0});
    opts.mix.push_back(ModelMix{1, 1.0, 5, 0.0});

    std::vector<ClusterRequest> a = generateTraffic(opts);
    std::vector<ClusterRequest> b = generateTraffic(opts);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrivalS, b[i].arrivalS);
        EXPECT_EQ(a[i].model, b[i].model);
        EXPECT_EQ(a[i].steps, b[i].steps);
        EXPECT_EQ(a[i].deadlineMs, b[i].deadlineMs);
    }
    EXPECT_EQ(trafficSummaryJson(opts, a).dump(),
              trafficSummaryJson(opts, b).dump());

    // Arrivals ascend and stay inside the duration.
    for (size_t i = 1; i < a.size(); ++i)
        EXPECT_GE(a[i].arrivalS, a[i - 1].arrivalS);
    EXPECT_LT(a.back().arrivalS, opts.durationS);

    // The mix weights skew the model draw 4:1.
    size_t hot = 0;
    for (const ClusterRequest &r : a)
        hot += r.model == 0;
    EXPECT_GT(hot, a.size() / 2);

    // Different seed, different trace.
    opts.seed = 8;
    std::vector<ClusterRequest> c = generateTraffic(opts);
    bool same = c.size() == a.size();
    for (size_t i = 0; same && i < c.size(); ++i)
        same = c[i].arrivalS == a[i].arrivalS;
    EXPECT_FALSE(same);
}

TEST(Traffic, RateModulation)
{
    TrafficOptions opts;
    opts.baseRps = 1000;
    opts.diurnalAmplitude = 0.5;
    opts.diurnalPeriodS = 1.0;
    EXPECT_DOUBLE_EQ(trafficRateAt(opts, 0.0), 1000.0);
    EXPECT_NEAR(trafficRateAt(opts, 0.25), 1500.0, 1e-9);
    EXPECT_NEAR(trafficRateAt(opts, 0.75), 500.0, 1e-9);

    opts.bursts.push_back(BurstPhase{0.0, 0.1, 4.0});
    EXPECT_NEAR(trafficRateAt(opts, 0.0), 4000.0, 1e-9);
    EXPECT_NEAR(trafficRateAt(opts, 0.25), 1500.0, 1e-9);

    // A burst raises the arrival count inside its window.
    TrafficOptions burst;
    burst.baseRps = 1000;
    burst.durationS = 1.0;
    burst.bursts.push_back(BurstPhase{0.5, 0.2, 5.0});
    std::vector<ClusterRequest> t = generateTraffic(burst);
    size_t in = 0, before = 0;
    for (const ClusterRequest &r : t) {
        if (r.arrivalS >= 0.5 && r.arrivalS < 0.7)
            ++in;
        else if (r.arrivalS >= 0.2 && r.arrivalS < 0.4)
            ++before;
    }
    EXPECT_GT(in, 2 * before);
}

// --- WeightCache ---

TEST(WeightCache, LruEvictionOrder)
{
    WeightCache c(100);
    EXPECT_FALSE(c.touch(0, 40).hit); // load A
    EXPECT_FALSE(c.touch(1, 40).hit); // load B
    EXPECT_TRUE(c.touch(0, 40).hit);  // A now MRU
    WeightTouch t = c.touch(2, 40);   // evicts B (LRU), not A
    EXPECT_FALSE(t.hit);
    EXPECT_EQ(t.loadedTiles, 40u);
    EXPECT_EQ(t.evictions, 1u);
    EXPECT_TRUE(c.resident(0));
    EXPECT_FALSE(c.resident(1));
    EXPECT_TRUE(c.resident(2));
    EXPECT_EQ(c.usedTiles(), 80u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 3u);
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(WeightCache, OversizedModelNeverResident)
{
    WeightCache c(50);
    // Needs two evictions to even try, still cannot fit.
    EXPECT_FALSE(c.touch(0, 20).hit);
    EXPECT_FALSE(c.touch(1, 20).hit);
    WeightTouch t = c.touch(9, 80);
    EXPECT_FALSE(t.hit);
    EXPECT_EQ(t.loadedTiles, 80u);
    EXPECT_FALSE(c.resident(9));
    // The oversized touch must not have evicted the residents.
    EXPECT_TRUE(c.resident(0));
    EXPECT_TRUE(c.resident(1));
    // And it reloads on every touch.
    EXPECT_FALSE(c.touch(9, 80).hit);
}

TEST(WeightCache, ZeroTilesAndUnbounded)
{
    WeightCache c(10);
    EXPECT_TRUE(c.touch(0, 0).hit); // zero footprint: free hit
    EXPECT_EQ(c.residents(), 0u);

    WeightCache u(0); // unbounded
    for (uint32_t m = 0; m < 50; ++m)
        EXPECT_FALSE(u.touch(m, 100).hit);
    EXPECT_EQ(u.evictions(), 0u);
    EXPECT_EQ(u.residents(), 50u);
}

TEST(WeightCache, PreloadWarmStart)
{
    WeightCache c(100);
    EXPECT_TRUE(c.preload(0, 60));
    EXPECT_FALSE(c.preload(1, 60)); // does not fit, never evicts
    EXPECT_TRUE(c.resident(0));
    EXPECT_FALSE(c.resident(1));
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_TRUE(c.touch(0, 60).hit);
}

// --- Router ---

namespace {

RouterOptions
routerOpts(RoutePolicy p)
{
    RouterOptions o;
    o.policy = p;
    return o;
}

} // namespace

TEST(Router, ConsistentHashIsStableAndLoadBlind)
{
    Router r(routerOpts(RoutePolicy::ConsistentHash), 4, 3);
    std::vector<EngineLoad> idle(4), skew(4);
    for (auto &l : idle)
        l.queueCapacity = 8;
    skew = idle;
    skew[0].queued = 100; // consistent hash must ignore load

    int32_t e = r.route(1, 0, "gru-hot", 0, idle);
    ASSERT_GE(e, 0);
    for (uint64_t s = 2; s < 10; ++s)
        EXPECT_EQ(r.route(s, 0, "gru-hot", 0, s % 2 ? skew : idle), e);

    // Different names spread over more than one engine.
    bool spread = false;
    for (int i = 0; i < 16 && !spread; ++i)
        spread = r.route(100 + i, 1, "model-" + std::to_string(i), 0,
                         idle) != e;
    EXPECT_TRUE(spread);
}

TEST(Router, LeastLoadedPicksMinAndBreaksTiesLow)
{
    Router r(routerOpts(RoutePolicy::LeastLoaded), 3, 3);
    std::vector<EngineLoad> loads(3);
    for (auto &l : loads)
        l.queueCapacity = 8;
    loads[0].queued = 2;
    loads[1].queued = 1;
    loads[2].inflight = 3;
    EXPECT_EQ(r.route(1, 0, "m", 0, loads), 1);
    loads[1].queued = 2;
    loads[2].inflight = 2;
    EXPECT_EQ(r.route(2, 0, "m", 0, loads), 0); // all tied at 2: lowest
}

TEST(Router, SloAwareShedsByClassOrder)
{
    Router r(routerOpts(RoutePolicy::SloAware), 2, 3);
    // Default thresholds for 3 classes: {2.0, 0.9, 0.7}.
    EXPECT_GT(r.shedThreshold(0), 1.0);
    EXPECT_NEAR(r.shedThreshold(1), 0.9, 1e-12);
    EXPECT_NEAR(r.shedThreshold(2), 0.7, 1e-12);

    std::vector<EngineLoad> full(2);
    for (auto &l : full) {
        l.queued = 8;
        l.queueCapacity = 8; // occupancy 1.0
    }
    EXPECT_GE(r.route(1, 0, "m", 0, full), 0); // urgent: never shed
    EXPECT_EQ(r.route(2, 0, "m", 1, full), -1);
    EXPECT_EQ(r.route(3, 0, "m", 2, full), -1);

    std::vector<EngineLoad> mid = full;
    mid[0].queued = 6;
    mid[1].queued = 6; // occupancy 0.75: sheds class 2 only
    EXPECT_GE(r.route(4, 0, "m", 1, mid), 0);
    EXPECT_EQ(r.route(5, 0, "m", 2, mid), -1);

    EXPECT_EQ(r.shed(), 3u);
    ASSERT_EQ(r.shedByClass().size(), 3u);
    EXPECT_EQ(r.shedByClass()[0], 0u);
    EXPECT_EQ(r.shedByClass()[1], 1u);
    EXPECT_EQ(r.shedByClass()[2], 2u);
}

TEST(Router, DecisionLogDeterministicAndClearable)
{
    auto drive = [](Router &r) {
        std::vector<EngineLoad> loads(3);
        for (auto &l : loads)
            l.queueCapacity = 4;
        for (uint64_t s = 1; s <= 20; ++s) {
            loads[s % 3].queued = s % 5;
            r.route(s, static_cast<uint32_t>(s % 2),
                    s % 2 ? "even" : "odd",
                    static_cast<uint32_t>(s % 3), loads);
        }
    };
    Router a(routerOpts(RoutePolicy::SloAware), 3, 3);
    Router b(routerOpts(RoutePolicy::SloAware), 3, 3);
    drive(a);
    drive(b);
    Json da = a.decisionsJson();
    EXPECT_EQ(da.dump(), b.decisionsJson().dump());
    Status valid = validateRouteJson(da);
    EXPECT_TRUE(valid.ok()) << valid.toString();
    // Mutating a counter breaks the log/counter consistency check.
    Json broken = da;
    broken.set("routed", static_cast<uint64_t>(9999));
    EXPECT_FALSE(validateRouteJson(broken).ok());
    EXPECT_FALSE(validateRouteJson(Json::object()).ok());
    ASSERT_TRUE(da.find("schema"));
    EXPECT_EQ(da.find("schema")->asString(), "bw.route/1");
    EXPECT_EQ(static_cast<uint64_t>(da.find("decisions")->size()),
              a.routed() + a.shed());

    a.clear();
    EXPECT_EQ(a.routed(), 0u);
    EXPECT_EQ(a.shed(), 0u);
    EXPECT_EQ(a.decisions().size(), 0u);
    drive(a);
    EXPECT_EQ(a.decisionsJson().dump(), b.decisionsJson().dump());
}

// --- Cluster ---

namespace {

/// A two-group, three-engine cluster over flat-service models: fast to
/// construct, fully deterministic, exercises heterogeneous groups.
ClusterOptions
smallClusterOptions()
{
    ClusterOptions co;
    ReplicaGroupSpec fast;
    fast.name = "s10";
    fast.config = NpuConfig::bwS10();
    fast.engines = 2;
    fast.engine.queueDepth = 8;
    fast.engine.defaultDeadlineMs = 20.0;
    ReplicaGroupSpec slow;
    slow.name = "s5";
    slow.config = NpuConfig::bwS5();
    slow.engines = 1;
    slow.engine.queueDepth = 8;
    slow.engine.defaultDeadlineMs = 20.0;
    co.groups = {fast, slow};
    co.weightCacheTiles = 64;
    return co;
}

TrafficOptions
smallTraffic(double rps, double duration_s)
{
    TrafficOptions t;
    t.baseRps = rps;
    t.durationS = duration_s;
    t.seed = 42;
    t.mix.push_back(ModelMix{0, 8.0, 1, 10.0}); // hot, interactive
    t.mix.push_back(ModelMix{1, 2.0, 1, 80.0}); // warm, standard
    t.mix.push_back(ModelMix{2, 1.0, 1, 0.0});  // cold, best-effort
    return t;
}

void
addSmallModels(Cluster &c)
{
    c.addTimedModel("hot", 0.8, 24);
    c.addTimedModel("warm", 1.5, 24);
    c.addTimedModel("cold", 2.5, 40);
}

} // namespace

TEST(Cluster, ReplayIsByteIdenticallyDeterministic)
{
    obs::SpanTracerOptions so;
    so.sampleEvery = 3;
    obs::SpanTracer tracer(so);
    ClusterOptions co = smallClusterOptions();
    co.spanTracer = &tracer;
    Cluster c(co);
    addSmallModels(c);
    std::vector<ClusterRequest> trace =
        generateTraffic(smallTraffic(3000, 0.4));
    ASSERT_GT(trace.size(), 200u);

    ClusterStats s1 = c.replay(trace);
    std::string route1 = c.routeJson().dump();
    std::string slo1 = c.sloJson().dump();
    std::vector<std::string> flight1, eslo1;
    for (unsigned e = 0; e < c.engineCount(); ++e) {
        flight1.push_back(c.engineFlightJson(e).dump());
        eslo1.push_back(c.engineSloJson(e).dump());
    }
    std::string spans1 = obs::spanTreeJson(tracer).dump();

    ClusterStats s2 = c.replay(trace);
    EXPECT_EQ(s1.toJson().dump(), s2.toJson().dump());
    EXPECT_EQ(route1, c.routeJson().dump());
    EXPECT_EQ(slo1, c.sloJson().dump());
    for (unsigned e = 0; e < c.engineCount(); ++e) {
        EXPECT_EQ(flight1[e], c.engineFlightJson(e).dump());
        EXPECT_EQ(eslo1[e], c.engineSloJson(e).dump());
        EXPECT_TRUE(
            obs::validateFlightJson(c.engineFlightJson(e)).ok());
        EXPECT_TRUE(serve::validateSloJson(c.engineSloJson(e)).ok());
    }
    EXPECT_EQ(spans1, obs::spanTreeJson(tracer).dump());

    // The replay actually exercised the cluster.
    EXPECT_EQ(s1.submitted, trace.size());
    EXPECT_GT(s1.completed, 0u);
    uint64_t accounted =
        s1.completed + s1.shed + s1.rejected + s1.expired;
    EXPECT_EQ(accounted, s1.submitted);
}

TEST(Cluster, RouteRootedSpanTreesValidate)
{
    obs::SpanTracerOptions so;
    so.sampleEvery = 1; // trace everything
    obs::SpanTracer tracer(so);
    ClusterOptions co = smallClusterOptions();
    co.spanTracer = &tracer;
    Cluster c(co);
    addSmallModels(c);
    c.replay(generateTraffic(smallTraffic(1500, 0.1)));

    Json doc = obs::spanTreeJson(tracer);
    Status st = obs::validateSpanTreeJson(doc);
    EXPECT_TRUE(st.ok()) << st.toString();
    const Json *traces = doc.find("traces");
    ASSERT_NE(traces, nullptr);
    ASSERT_GT(traces->size(), 0u);
    for (size_t i = 0; i < traces->size(); ++i) {
        const Json *root = traces->at(i).find("root");
        ASSERT_NE(root, nullptr);
        EXPECT_EQ(root->find("name")->asString(), "route");
        const Json *kids = root->find("children");
        ASSERT_NE(kids, nullptr);
        ASSERT_EQ(kids->size(), 1u);
        EXPECT_EQ(kids->at(0).find("name")->asString(), "request");
    }
}

TEST(Cluster, SingleEngineDegeneratesToEngineReplay)
{
    const double service_ms = 1.1;
    const unsigned steps = 3;

    serve::EngineOptions eo;
    eo.replicas = 2;
    eo.queueDepth = 4;
    eo.networkMs = 0.4;
    eo.defaultDeadlineMs = 6.0;

    // The reference: a model-less engine replaying the arrival schedule.
    obs::FlightRecorder refFlight;
    serve::SloMonitor refSlo;
    serve::EngineOptions ref = eo;
    ref.serviceMsOverride = service_ms;
    ref.flightRecorder = &refFlight;
    ref.sloMonitor = &refSlo;
    serve::Engine engine(ref);

    // The cluster: one group, one engine, one zero-footprint model with
    // the same flat service time.
    ClusterOptions co;
    ReplicaGroupSpec g;
    g.name = "solo";
    g.engines = 1;
    g.engine = eo;
    co.groups = {g};
    Cluster c(co);
    uint32_t m = c.addTimedModel("only", service_ms, 0);

    Rng rng(11);
    std::vector<double> arrivals = poissonArrivals(1800, 0.3, rng);
    ASSERT_GT(arrivals.size(), 100u);
    std::vector<ClusterRequest> trace;
    for (double a : arrivals)
        trace.push_back(ClusterRequest{a, m, steps, 0.0});

    ServeStats es = engine.replay(arrivals, steps);
    ClusterStats cst = c.replay(trace);

    // Identical latency summaries...
    EXPECT_EQ(es.toJson().dump(), cst.overall.toJson().dump());
    ASSERT_EQ(cst.engines.size(), 1u);
    EXPECT_EQ(es.toJson().dump(), cst.engines[0].stats.toJson().dump());
    // ...byte-identical flight and SLO documents.
    Expected<Json> ef = engine.flightJson();
    ASSERT_TRUE(ef.ok());
    EXPECT_EQ(ef.value().dump(), c.engineFlightJson(0).dump());
    EXPECT_EQ(refSlo.sloJson().dump(), c.engineSloJson(0).dump());
    // And every routed decision targeted the only engine.
    EXPECT_EQ(c.router().shed(), 0u);
    EXPECT_EQ(c.router().routed(), trace.size());
}

TEST(Cluster, WeightCacheThrashChargesReloads)
{
    ClusterOptions co;
    ReplicaGroupSpec g;
    g.name = "one";
    g.engines = 1;
    g.engine.queueDepth = 1u << 20; // no rejects: isolate reload cost
    co.groups = {g};
    co.weightCacheTiles = 50;
    co.warmStart = false; // count the cold start too
    Cluster thrash(co);
    // Two models of 40 tiles each: only one fits, so strict
    // alternation misses every touch.
    thrash.addTimedModel("a", 1.0, 40);
    thrash.addTimedModel("b", 1.0, 40);

    std::vector<ClusterRequest> trace;
    for (int i = 0; i < 200; ++i)
        trace.push_back(
            ClusterRequest{i * 0.005, static_cast<uint32_t>(i % 2), 1, 0});
    ClusterStats ts = thrash.replay(trace);
    ASSERT_EQ(ts.engines.size(), 1u);
    EXPECT_EQ(ts.engines[0].cacheHits, 0u);
    EXPECT_EQ(ts.engines[0].cacheMisses, 200u);
    EXPECT_GE(ts.engines[0].cacheEvictions, 198u);
    EXPECT_GT(ts.engines[0].reloadMsTotal, 0.0);
    EXPECT_EQ(ts.engines[0].reloadedTiles, 200u * 40u);

    // A cache that holds both models never misses once warm-started —
    // and completes faster.
    co.weightCacheTiles = 100;
    co.warmStart = true;
    Cluster roomy(co);
    roomy.addTimedModel("a", 1.0, 40);
    roomy.addTimedModel("b", 1.0, 40);
    ClusterStats rs = roomy.replay(trace);
    EXPECT_EQ(rs.engines[0].cacheMisses, 0u);
    EXPECT_EQ(rs.engines[0].cacheHits, 200u);
    EXPECT_LT(rs.overall.meanLatencyMs, ts.overall.meanLatencyMs);

    // The reload charge matches the documented DRAM model.
    double per40 = thrash.reloadMs(0, 40);
    EXPECT_GT(per40, 0.0);
    EXPECT_NEAR(ts.engines[0].reloadMsTotal, 200 * per40, 1e-9);
}

TEST(Cluster, SloAwareShedsTailClassesFirstUnderSaturation)
{
    ClusterOptions co = smallClusterOptions();
    co.router.policy = RoutePolicy::SloAware;
    Cluster c(co);
    addSmallModels(c);
    // Far past saturation: three engines of ~1 req/ms against 20k rps.
    ClusterStats s = c.replay(generateTraffic(smallTraffic(20000, 0.3)));
    ASSERT_EQ(s.shedByClass.size(), 3u);
    EXPECT_EQ(s.shedByClass[0], 0u); // interactive never front-door shed
    EXPECT_GT(s.shedByClass[1], 0u);
    EXPECT_GT(s.shedByClass[2], 0u);
    EXPECT_GT(s.shed, 0u);
    // Interactive keeps completing while lower classes shed.
    EXPECT_GT(s.completed, 0u);
}

TEST(Cluster, LeastLoadedOutperformsConsistentHashOnSkewedMix)
{
    ClusterOptions co;
    ReplicaGroupSpec g;
    g.name = "s10";
    g.config = NpuConfig::bwS10();
    g.engines = 4;
    g.engine.queueDepth = 16;
    g.engine.defaultDeadlineMs = 25.0;
    co.groups = {g};
    co.weightCacheTiles = 256; // generous: isolate placement effects
    co.router.policy = RoutePolicy::ConsistentHash;
    Cluster c(co);
    c.addTimedModel("hot", 1.0, 16);
    c.addTimedModel("cold-a", 1.0, 16);
    c.addTimedModel("cold-b", 1.0, 16);

    TrafficOptions t;
    t.baseRps = 2600; // ~65% of 4-engine capacity, all behind one hash
    t.durationS = 0.5;
    t.seed = 9;
    t.mix.push_back(ModelMix{0, 16.0, 1, 12.0}); // hot model dominates
    t.mix.push_back(ModelMix{1, 1.0, 1, 12.0});
    t.mix.push_back(ModelMix{2, 1.0, 1, 12.0});
    std::vector<ClusterRequest> trace = generateTraffic(t);

    ClusterStats hash = c.replay(trace);
    c.setRouterPolicy(RoutePolicy::LeastLoaded);
    ClusterStats least = c.replay(trace);

    // Consistent hash pins the hot model to one engine, which
    // saturates; least-loaded spreads it and sustains more goodput.
    EXPECT_GT(least.goodput, hash.goodput);
    EXPECT_GT(least.goodputRps, hash.goodputRps);
}

TEST(Cluster, DebugConfigCarriesGroupLabel)
{
    ClusterOptions co = smallClusterOptions();
    Cluster c(co);
    ASSERT_EQ(c.engineCount(), 3u);
    EXPECT_EQ(c.engineLabel(0), "s10/0");
    EXPECT_EQ(c.engineLabel(1), "s10/1");
    EXPECT_EQ(c.engineLabel(2), "s5/0");
    for (unsigned e = 0; e < c.engineCount(); ++e) {
        Json cfg = c.engine(e).debugConfigJson();
        const Json *eng = cfg.find("engine");
        ASSERT_NE(eng, nullptr);
        const Json *group = eng->find("group");
        ASSERT_NE(group, nullptr);
        EXPECT_EQ(group->asString(), c.engineLabel(e));
    }
}

TEST(Cluster, LiveSubmitRoutesAndServes)
{
    metrics::Registry reg;
    ClusterOptions co = smallClusterOptions();
    co.metricsRegistry = &reg;
    for (ReplicaGroupSpec &g : co.groups) {
        g.engine.timeScale = 0.0; // instantaneous wall-clock service
        g.engine.defaultDeadlineMs = 0.0;
        g.engine.queueDepth = 64; // submits outpace live load signals
    }
    Cluster c(co);
    addSmallModels(c);
    c.start();
    EXPECT_TRUE(c.accepting());

    std::vector<std::future<serve::Response>> futs;
    for (int i = 0; i < 30; ++i) {
        Expected<std::future<serve::Response>> f =
            c.submitTimed(static_cast<uint32_t>(i % 3), 1);
        ASSERT_TRUE(f.ok()) << f.status().toString();
        futs.push_back(std::move(f.value()));
    }
    c.drain();
    unsigned ok = 0;
    for (auto &f : futs)
        ok += f.get().status.ok();
    EXPECT_EQ(ok, 30u);
    EXPECT_FALSE(c.accepting());

    // The cluster registry saw the traffic.
    std::string prom = metrics::prometheusText(reg);
    EXPECT_NE(prom.find("bw_cluster_engines 3"), std::string::npos);
    EXPECT_NE(prom.find("bw_cluster_requests_total"), std::string::npos);
    EXPECT_NE(prom.find("bw_cluster_routed_total"), std::string::npos);

    // Unknown model ids are refused before routing.
    EXPECT_FALSE(c.submitTimed(99, 1).ok());
}

TEST(Cluster, ExposeDebugServesClusterAndPerEngineDocs)
{
    metrics::Registry reg;
    ClusterOptions co = smallClusterOptions();
    co.metricsRegistry = &reg;
    Cluster c(co);
    addSmallModels(c);
    c.replay(generateTraffic(smallTraffic(1500, 0.1)));

    metrics::MetricsHttpServer srv(reg);
    c.exposeDebug(srv);
    auto body = [&](const std::string &path) {
        std::string resp = srv.respond("GET " + path + " HTTP/1.1");
        size_t split = resp.find("\r\n\r\n");
        EXPECT_NE(resp.find("200"), std::string::npos) << path;
        return split == std::string::npos ? std::string()
                                          : resp.substr(split + 4);
    };
    Json cluster = Json::parse(body("/debug/cluster"));
    EXPECT_EQ(cluster.find("engines")->asInt(), 3);
    EXPECT_EQ(cluster.find("model_count")->asInt(), 3);
    EXPECT_EQ(cluster.find("models")->size(), 3u);
    Json route = Json::parse(body("/route.json"));
    EXPECT_EQ(route.find("schema")->asString(), "bw.route/1");
    EXPECT_TRUE(serve::validateSloJson(Json::parse(body("/slo.json"))).ok());
    for (unsigned e = 0; e < c.engineCount(); ++e) {
        std::string base = "/engine/" + std::to_string(e);
        EXPECT_TRUE(obs::validateFlightJson(
                        Json::parse(body(base + "/flight.json")))
                        .ok());
        EXPECT_TRUE(serve::validateSloJson(
                        Json::parse(body(base + "/slo.json")))
                        .ok());
        Json cfg = Json::parse(body(base + "/debug/config"));
        EXPECT_EQ(cfg.find("engine")->find("group")->asString(),
                  c.engineLabel(e));
        Json cache = Json::parse(body(base + "/cache.json"));
        EXPECT_TRUE(cache.contains("capacity_tiles"));
    }
}

TEST(Cluster, CompiledModelsDifferPerGroup)
{
    ClusterOptions co = smallClusterOptions();
    Cluster c(co);
    Rng rng(3);
    GirGraph g = makeGru(randomGruWeights(96, 96, rng));
    Expected<uint32_t> id = c.addModel("gru96", g);
    ASSERT_TRUE(id.ok()) << id.status().toString();
    // Groups have different native dimensions, so the same model has
    // different tile footprints and service times per group.
    uint64_t t0 = c.modelTiles(id.value(), 0); // BW_S10, N=400
    uint64_t t1 = c.modelTiles(id.value(), 1); // BW_S5, N=100
    EXPECT_GT(t0, 0u);
    EXPECT_GT(t1, 0u);
    EXPECT_NE(t0, t1);
    double s0 = c.modelServiceMs(id.value(), 0, 1);
    double s1 = c.modelServiceMs(id.value(), 1, 1);
    EXPECT_GT(s0, 0.0);
    EXPECT_GT(s1, s0); // the S5 part is slower than the S10 part
}

TEST(Cluster, OptionsFromEnv)
{
    ::setenv("BW_CLUSTER_MIX", "s5:2,s10:1", 1);
    ::setenv("BW_CLUSTER_POLICY", "consistent_hash", 1);
    ::setenv("BW_CLUSTER_CACHE_TILES", "123", 1);
    ::setenv("BW_CLUSTER_SEED", "77", 1);
    ::setenv("BW_CLUSTER_RPS", "2500", 1);
    ::setenv("BW_CLUSTER_DURATION_S", "0.25", 1);
    ClusterOptions co = ClusterOptions::fromEnv();
    TrafficOptions to = TrafficOptions::fromEnv();
    ::unsetenv("BW_CLUSTER_MIX");
    ::unsetenv("BW_CLUSTER_POLICY");
    ::unsetenv("BW_CLUSTER_CACHE_TILES");
    ::unsetenv("BW_CLUSTER_SEED");
    ::unsetenv("BW_CLUSTER_RPS");
    ::unsetenv("BW_CLUSTER_DURATION_S");

    ASSERT_EQ(co.groups.size(), 2u);
    EXPECT_EQ(co.groups[0].name, "s5");
    EXPECT_EQ(co.groups[0].engines, 2u);
    EXPECT_EQ(co.groups[0].config.nativeDim, NpuConfig::bwS5().nativeDim);
    EXPECT_EQ(co.groups[1].name, "s10");
    EXPECT_EQ(co.groups[1].engines, 1u);
    EXPECT_EQ(co.router.policy, RoutePolicy::ConsistentHash);
    EXPECT_EQ(co.weightCacheTiles, 123u);
    EXPECT_EQ(to.seed, 77u);
    EXPECT_DOUBLE_EQ(to.baseRps, 2500.0);
    EXPECT_DOUBLE_EQ(to.durationS, 0.25);
}
