/**
 * @file
 * Workload-definition tests: DeepBench layer op formulas, the embedded
 * paper dataset's internal consistency, and Table I kernel specs.
 */

#include <gtest/gtest.h>

#include "workloads/deepbench.h"
#include "workloads/paper_data.h"
#include "workloads/resnet50.h"

namespace bw {
namespace {

TEST(DeepBench, SuiteMatchesTableFiveRows)
{
    auto suite = deepBenchSuite();
    ASSERT_EQ(suite.size(), 11u);
    auto rows = paper::tableFive();
    ASSERT_EQ(rows.size(), suite.size());
    for (size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(suite[i].kind, rows[i].layer.kind);
        EXPECT_EQ(suite[i].hidden, rows[i].layer.hidden);
        EXPECT_EQ(suite[i].timeSteps, rows[i].layer.timeSteps);
    }
}

TEST(DeepBench, OpsPerStepFormulas)
{
    // Table I: LSTM 2000x2000 = 64M ops/step, GRU 2800x2800 = 94M.
    RnnLayerSpec lstm{RnnKind::Lstm, 2000, 1, 2000};
    EXPECT_EQ(lstm.opsPerStep(), 64'000'000u);
    RnnLayerSpec gru{RnnKind::Gru, 2800, 1, 2800};
    EXPECT_EQ(gru.opsPerStep(), 94'080'000u);
    EXPECT_EQ(gru.totalOps(), gru.opsPerStep());
    EXPECT_EQ(lstm.weightCount(), 32'000'000u);
}

TEST(DeepBench, LabelsReadable)
{
    RnnLayerSpec l{RnnKind::Gru, 2816, 750, 2816};
    EXPECT_EQ(l.label(), "GRU h=2816 t=750");
}

TEST(PaperData, TableFiveInternallyConsistent)
{
    // Published TFLOPS must equal total ops / published latency within
    // rounding, for the BW column.
    for (const auto &row : paper::tableFive()) {
        if (row.layer.hidden < 1000)
            continue; // small rows round coarsely in the paper
        double ops = static_cast<double>(row.layer.totalOps());
        double tflops = ops / (row.bwMs * 1e9);
        EXPECT_NEAR(tflops, row.bwTflops, row.bwTflops * 0.05)
            << row.layer.label();
        // And utilization = tflops / 48.
        EXPECT_NEAR(row.bwUtilPct, 100.0 * row.bwTflops / 48.0, 1.0)
            << row.layer.label();
    }
}

TEST(PaperData, TableThreeDerivedPeaks)
{
    for (const auto &row : paper::tableThree()) {
        double peak = 2.0 * row.mvTiles * row.lanes * row.nativeDim *
                      row.freqMhz / 1e6;
        EXPECT_NEAR(peak, row.peakTflops, row.peakTflops * 0.03)
            << row.instance;
    }
}

TEST(PaperData, PowerEfficiencyClaim)
{
    // 35.9 TFLOPS at 125W ~ 287 GFLOPS/W (Section VII-B4).
    double gflops_per_watt = 35.92 * 1e3 / paper::bwS10PowerWatts();
    EXPECT_NEAR(gflops_per_watt, paper::bwS10GflopsPerWatt(), 1.0);
}

TEST(TableOneKernels, Dimensions)
{
    ConvSpec a = tableOneCnn3x3();
    EXPECT_EQ(a.inC, 128u);
    EXPECT_EQ(a.patchLen(), 1152u);
    EXPECT_NEAR(static_cast<double>(a.macOps()) / 1e6, 231.2, 0.5);

    ConvSpec b = tableOneCnn1x1();
    EXPECT_EQ(b.patchLen(), 64u);
    EXPECT_NEAR(static_cast<double>(b.macOps()) / 1e6, 102.8, 0.5);
}

TEST(BatchScalingSuite, SubsetOfDeepBench)
{
    auto sub = batchScalingSuite();
    EXPECT_GE(sub.size(), 3u);
    for (const auto &layer : sub)
        EXPECT_GE(layer.hidden, 1024u);
}

} // namespace
} // namespace bw
