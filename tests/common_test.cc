/**
 * @file
 * Unit tests for the common utilities: bit helpers, units, text tables,
 * stats, logging and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace bw {
namespace {

TEST(Bits, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0);
    EXPECT_EQ(ceilDiv(1, 4), 1);
    EXPECT_EQ(ceilDiv(4, 4), 1);
    EXPECT_EQ(ceilDiv(5, 4), 2);
    EXPECT_EQ(ceilDiv(2816u, 400u), 8u);
}

TEST(Bits, AlignUp)
{
    EXPECT_EQ(alignUp(0, 8), 0);
    EXPECT_EQ(alignUp(1, 8), 8);
    EXPECT_EQ(alignUp(8, 8), 8);
    EXPECT_EQ(alignUp(9, 8), 16);
}

TEST(Bits, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(Bits, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(400), 9u);  // dot reduction tree depth, BW_S10
    EXPECT_EQ(ceilLog2(2000), 11u);
    EXPECT_EQ(ceilLog2(2800), 12u);
}

TEST(Bits, BitExtractInsert)
{
    EXPECT_EQ(bits(0xABCD, 15, 12), 0xAu);
    EXPECT_EQ(bits(0xABCD, 3, 0), 0xDu);
    EXPECT_EQ(insertBits(0, 7, 4, 0xF), 0xF0u);
    EXPECT_EQ(insertBits(0xFF, 7, 4, 0x0), 0x0Fu);
}

TEST(Units, CyclesToTime)
{
    // 250 MHz: 1 cycle = 4ns.
    EXPECT_DOUBLE_EQ(cyclesToUs(250, 250.0), 1.0);
    EXPECT_DOUBLE_EQ(cyclesToMs(250000, 250.0), 1.0);
    EXPECT_EQ(msToCycles(1.0, 250.0), 250000u);
}

TEST(Units, Tflops)
{
    // BW_S10: 192,000 ops/cycle @ 250 MHz = 48 TFLOPS.
    EXPECT_DOUBLE_EQ(peakTflops(192000, 250.0), 48.0);
    // Half utilization.
    EXPECT_DOUBLE_EQ(effectiveTflops(96000 * 100, 100, 250.0), 24.0);
    EXPECT_DOUBLE_EQ(effectiveTflops(1000, 0, 250.0), 0.0);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(BW_FATAL("user error %d", 42), Error);
    try {
        BW_FATAL("user error %d", 42);
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("user error 42"),
                  std::string::npos);
    }
}

TEST(Logging, AssertPassesSilently)
{
    BW_ASSERT(1 + 1 == 2);
    BW_ASSERT(true, "with message %d", 1);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t({"Name", "Value"});
    t.addRow({"alpha", "1"});
    t.addRule();
    t.addRow({"b", "22222"});
    std::string s = t.render();
    EXPECT_NE(s.find("| Name "), std::string::npos);
    EXPECT_NE(s.find("| alpha "), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
    // Every line has equal length.
    size_t first_len = s.find('\n');
    size_t pos = 0;
    while (pos < s.size()) {
        size_t nl = s.find('\n', pos);
        EXPECT_EQ(nl - pos, first_len);
        pos = nl + 1;
    }
}

TEST(Table, RowArityChecked)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), Error);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtI(1234567), "1,234,567");
    EXPECT_EQ(fmtI(7), "7");
    EXPECT_EQ(fmtPct(0.748, 1), "74.8%");
}

TEST(Stats, CountersAndDistributions)
{
    StatGroup g("mvm");
    g.inc("tiles");
    g.inc("tiles", 4);
    EXPECT_EQ(g.counter("tiles"), 5u);
    EXPECT_EQ(g.counter("missing"), 0u);

    g.sample("latency", 10.0);
    g.sample("latency", 20.0);
    EXPECT_EQ(g.dist("latency").count(), 2u);
    EXPECT_DOUBLE_EQ(g.dist("latency").mean(), 15.0);
    EXPECT_DOUBLE_EQ(g.dist("latency").min(), 10.0);
    EXPECT_DOUBLE_EQ(g.dist("latency").max(), 20.0);
    EXPECT_DOUBLE_EQ(g.dist("latency").variance(), 25.0);

    std::string dump = g.dump();
    EXPECT_NE(dump.find("mvm.tiles = 5"), std::string::npos);

    g.reset();
    EXPECT_EQ(g.counter("tiles"), 0u);
}

TEST(Rng, Deterministic)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.integer(0, 1000000), b.integer(0, 1000000));
}

TEST(Rng, UniformInRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, ExponentialPositive)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.exponential(2.0);
        EXPECT_GT(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.05); // mean = 1/rate
}

} // namespace
} // namespace bw
