/**
 * @file
 * Bit-exactness tests for the software binary16 type: round-trip
 * identity, round-to-nearest-even, denormals, infinities and NaN.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bfp/float16.h"
#include "common/rng.h"

namespace bw {
namespace {

TEST(Float16, ExactSmallIntegers)
{
    for (int i = -2048; i <= 2048; ++i) {
        // All integers with |i| <= 2048 are exactly representable.
        EXPECT_EQ(Half(static_cast<float>(i)).toFloat(),
                  static_cast<float>(i))
            << "i=" << i;
    }
}

TEST(Float16, KnownBitPatterns)
{
    EXPECT_EQ(Half(1.0f).bits(), 0x3C00);
    EXPECT_EQ(Half(-1.0f).bits(), 0xBC00);
    EXPECT_EQ(Half(0.5f).bits(), 0x3800);
    EXPECT_EQ(Half(2.0f).bits(), 0x4000);
    EXPECT_EQ(Half(65504.0f).bits(), 0x7BFF); // half max
    EXPECT_EQ(Half(0.0f).bits(), 0x0000);
    EXPECT_EQ(Half(-0.0f).bits(), 0x8000);
}

TEST(Float16, OverflowToInfinity)
{
    EXPECT_TRUE(Half(65536.0f).isInf());
    EXPECT_TRUE(Half(1e30f).isInf());
    EXPECT_TRUE(Half(-1e30f).isInf());
    EXPECT_EQ(Half(1e30f).bits(), 0x7C00);
    EXPECT_EQ(Half(-1e30f).bits(), 0xFC00);
}

TEST(Float16, NanPropagates)
{
    Half h(std::nanf(""));
    EXPECT_TRUE(h.isNan());
    EXPECT_TRUE(std::isnan(h.toFloat()));
}

TEST(Float16, Denormals)
{
    // Smallest positive denormal: 2^-24.
    float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(Half(tiny).bits(), 0x0001);
    EXPECT_EQ(Half(tiny).toFloat(), tiny);
    // Largest denormal: (1023/1024) * 2^-14.
    float big_denorm = std::ldexp(1023.0f / 1024.0f, -14);
    EXPECT_EQ(Half(big_denorm).bits(), 0x03FF);
    EXPECT_EQ(Half(big_denorm).toFloat(), big_denorm);
    // Underflow to zero.
    EXPECT_EQ(Half(std::ldexp(1.0f, -26)).bits(), 0x0000);
}

TEST(Float16, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10):
    // must round to even mantissa (1.0).
    float midpoint = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(Half(midpoint).bits(), 0x3C00);
    // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: rounds up to even.
    float mid2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
    EXPECT_EQ(Half(mid2).bits(), 0x3C02);
    // Just above the midpoint rounds up.
    EXPECT_EQ(Half(std::nextafterf(midpoint, 2.0f)).bits(), 0x3C01);
}

TEST(Float16, AllBitPatternsRoundTrip)
{
    // Every finite half value must survive half -> float -> half.
    for (uint32_t b = 0; b <= 0xFFFF; ++b) {
        Half h = Half::fromBits(static_cast<uint16_t>(b));
        if (h.isNan())
            continue;
        Half back(h.toFloat());
        EXPECT_EQ(back.bits(), h.bits()) << "bits=" << b;
    }
}

TEST(Float16, RoundingIsMonotonic)
{
    Rng rng(11);
    for (int i = 0; i < 20000; ++i) {
        float a = rng.uniformF(-100.0f, 100.0f);
        float b = rng.uniformF(-100.0f, 100.0f);
        if (a > b)
            std::swap(a, b);
        EXPECT_LE(roundToHalf(a), roundToHalf(b));
    }
}

TEST(Float16, RelativeErrorBounded)
{
    Rng rng(13);
    for (int i = 0; i < 20000; ++i) {
        float v = rng.uniformF(-1000.0f, 1000.0f);
        if (std::fabs(v) < 1e-3f)
            continue;
        float r = roundToHalf(v);
        // Half has 11 significand bits: relative error <= 2^-11.
        EXPECT_LE(std::fabs(r - v) / std::fabs(v),
                  std::ldexp(1.0f, -11) + 1e-7f)
            << v;
    }
}

} // namespace
} // namespace bw
