/**
 * @file
 * Serving-engine tests: Status/Expected plumbing, entry-point input
 * validation, the bw::Session facade, the concurrent engine (admission
 * control, deadlines, drain/shutdown, thread-safety under concurrent
 * submit), and the deterministic virtual-time replay's equivalence to
 * the analytic serveUnbatched()/serveBatched() models.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "compiler/lowering.h"
#include "graph/builders.h"
#include "metrics/exposition.h"
#include "metrics/metrics.h"
#include "obs/span.h"
#include "runtime/serving.h"
#include "serve/engine.h"
#include "serve/session.h"

namespace bw {
namespace {

/** Small test target: N=16, plenty of storage, high-precision BFP. */
NpuConfig
testConfig()
{
    NpuConfig c;
    c.name = "test16";
    c.nativeDim = 16;
    c.lanes = 4;
    c.tileEngines = 2;
    c.mrfSize = 512;
    c.mrfIndexSpace = 2048;
    c.initialVrfSize = 256;
    c.addSubVrfSize = 256;
    c.multiplyVrfSize = 256;
    c.precision = BfpFormat{1, 5, 7};
    return c;
}

std::vector<FVec>
randomInputs(unsigned steps, unsigned dim, Rng &rng)
{
    std::vector<FVec> xs(steps, FVec(dim));
    for (FVec &x : xs)
        fillUniform(x, rng, -0.5f, 0.5f);
    return xs;
}

// --- Status / Expected ---

TEST(Status, DefaultIsOkAndFactoriesCarryCodes)
{
    Status ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.code(), StatusCode::Ok);
    EXPECT_EQ(ok.toString(), "OK");

    Status full = Status::queueFull("depth 4");
    EXPECT_FALSE(full.ok());
    EXPECT_EQ(full.code(), StatusCode::QueueFull);
    EXPECT_EQ(full.message(), "depth 4");
    EXPECT_EQ(full.toString(), "QUEUE_FULL: depth 4");
    EXPECT_NO_THROW(ok.throwIfError());
    EXPECT_THROW(full.throwIfError(), Error);
}

TEST(Status, ExpectedHoldsValueOrStatus)
{
    Expected<int> v(42);
    EXPECT_TRUE(v.ok());
    EXPECT_TRUE(static_cast<bool>(v));
    EXPECT_EQ(v.value(), 42);
    EXPECT_TRUE(v.status().ok());

    Expected<int> e(Status::unavailable("stopped"));
    EXPECT_FALSE(e.ok());
    EXPECT_EQ(e.status().code(), StatusCode::Unavailable);

    Expected<std::string> s(std::string("abc"));
    EXPECT_EQ(s.take(), "abc");
}

// --- Entry-point input validation ---

TEST(Validation, StepInputSizeChecked)
{
    Rng rng(3);
    NpuConfig cfg = testConfig();
    CompiledModel m =
        compileGir(makeGru(randomGruWeights(32, 32, rng)), cfg,
                   {.pipelineInputProjections = false});

    Status bad = m.validateStepInput(7);
    EXPECT_EQ(bad.code(), StatusCode::InvalidArgument);
    EXPECT_NE(bad.message().find("expects"), std::string::npos);
    EXPECT_TRUE(m.validateStepInput(m.inputDim).ok());

    FuncMachine machine(cfg);
    m.install(machine);
    FVec wrong(7, 0.0f);
    EXPECT_THROW(m.runStep(machine, wrong), Error);
}

TEST(Validation, PipelinedModelRejectsSingleSteps)
{
    Rng rng(4);
    NpuConfig cfg = testConfig();
    CompiledModel m =
        compileGir(makeGru(randomGruWeights(32, 32, rng)), cfg);
    ASSERT_FALSE(m.prologue.empty()); // pipelining on by default

    Status s = m.validateStepInput(m.inputDim);
    EXPECT_EQ(s.code(), StatusCode::FailedPrecondition);
    // The error tells the caller what to do instead.
    EXPECT_NE(s.message().find("runSequence"), std::string::npos);
    EXPECT_NE(s.message().find("pipelin"), std::string::npos);

    Status b = m.validateBatchInput({FVec(m.inputDim, 0.0f)});
    EXPECT_EQ(b.code(), StatusCode::FailedPrecondition);
}

TEST(Validation, SequenceInputSizeChecked)
{
    Rng rng(5);
    NpuConfig cfg = testConfig();
    CompiledModel m =
        compileGir(makeGru(randomGruWeights(32, 32, rng)), cfg);

    std::vector<FVec> xs = randomInputs(3, m.inputDim, rng);
    xs[1].resize(m.inputDim + 1);
    Status s = m.validateSequenceInput(xs);
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_NE(s.message().find("step 1"), std::string::npos);

    FuncMachine machine(cfg);
    m.install(machine);
    EXPECT_THROW(m.runSequence(machine, xs), Error);
}

// --- bw::Session ---

TEST(Session, InferMatchesDirectRunSequence)
{
    Rng rng(6);
    NpuConfig cfg = testConfig();
    GirGraph g = makeGru(randomGruWeights(32, 32, rng));

    Session session = Session::compile(g, cfg);
    std::vector<FVec> xs =
        randomInputs(4, session.model().inputDim, rng);
    auto via_session = session.infer(xs);

    CompiledModel m = compileGir(g, cfg);
    FuncMachine machine(cfg);
    m.install(machine);
    auto direct = m.runSequence(machine, xs);

    ASSERT_EQ(via_session.size(), direct.size());
    for (size_t t = 0; t < direct.size(); ++t) {
        ASSERT_EQ(via_session[t].size(), direct[t].size());
        for (size_t i = 0; i < direct[t].size(); ++i)
            EXPECT_EQ(via_session[t][i], direct[t][i]);
    }
}

TEST(Session, ResetRestoresInitialState)
{
    Rng rng(7);
    Session session =
        Session::compile(makeGru(randomGruWeights(32, 32, rng)),
                         testConfig());
    std::vector<FVec> xs =
        randomInputs(3, session.model().inputDim, rng);
    auto first = session.infer(xs);
    session.reset();
    auto second = session.infer(xs);
    for (size_t i = 0; i < first.back().size(); ++i)
        EXPECT_EQ(first.back()[i], second.back()[i]);
}

TEST(Session, ServiceMsMatchesTimingRun)
{
    Rng rng(8);
    NpuConfig cfg = testConfig();
    Session session =
        Session::compile(makeGru(randomGruWeights(32, 32, rng)), cfg);
    auto perf = session.time(5);
    EXPECT_GT(perf.totalCycles, 0u);
    EXPECT_DOUBLE_EQ(session.serviceMs(5), perf.latencyMs(cfg));
}

// --- Engine: threaded serving ---

TEST(Engine, FunctionalSubmitMatchesSessionInfer)
{
    Rng rng(9);
    Session session =
        Session::compile(makeGru(randomGruWeights(32, 32, rng)),
                         testConfig());
    std::vector<FVec> xs =
        randomInputs(4, session.model().inputDim, rng);
    auto expected = session.infer(xs);

    auto engine = session.serve({});
    auto fut = engine->submit(xs);
    ASSERT_TRUE(fut.ok()) << fut.status().toString();
    serve::Response r = fut.take().get();
    ASSERT_TRUE(r.status.ok()) << r.status.toString();
    EXPECT_EQ(r.batch, 1u);
    ASSERT_EQ(r.outputs.size(), expected.size());
    for (size_t t = 0; t < expected.size(); ++t)
        for (size_t i = 0; i < expected[t].size(); ++i)
            EXPECT_EQ(r.outputs[t][i], expected[t][i]);
    engine->drain();

    // Queue wait and service both appear in the engine trace.
    bool saw_wait = false, saw_service = false;
    for (const obs::TraceEvent &e : engine->trace().events()) {
        saw_wait |= e.kind == obs::EventKind::QueueWait &&
                    e.res == obs::ResClass::ServeQueue;
        saw_service |= e.kind == obs::EventKind::Service &&
                       e.res == obs::ResClass::ServeWorker;
    }
    EXPECT_TRUE(saw_wait);
    EXPECT_TRUE(saw_service);
}

TEST(Engine, ConcurrentSubmitStress)
{
    serve::EngineOptions opts;
    opts.replicas = 4;
    opts.queueDepth = 4096;
    opts.serviceMsOverride = 0.01;
    opts.timeScale = 0.0; // don't sleep: stress the queue, not the clock
    serve::Engine engine(opts);
    engine.start();

    constexpr unsigned kThreads = 8, kPerThread = 50;
    std::atomic<unsigned> ok_count{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (unsigned i = 0; i < kPerThread; ++i) {
                auto fut = engine.submitTimed(1);
                ASSERT_TRUE(fut.ok()) << fut.status().toString();
                serve::Response r = fut.take().get();
                if (r.status.ok())
                    ++ok_count;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    engine.drain();

    EXPECT_EQ(ok_count.load(), kThreads * kPerThread);
    EXPECT_EQ(engine.collector().completed(), kThreads * kPerThread);
    EXPECT_EQ(engine.stats().requests, kThreads * kPerThread);
    EXPECT_EQ(engine.collector().rejected(), 0u);
}

TEST(Engine, QueueFullRejectsAtDepth)
{
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    std::atomic<bool> in_service{false};

    serve::EngineOptions opts;
    opts.replicas = 1;
    opts.queueDepth = 2;
    opts.serviceMsOverride = 0.01;
    opts.timeScale = 0.0;
    opts.serviceHook = [&](serve::RequestId) {
        in_service = true;
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return release; });
    };
    serve::Engine engine(opts);

    // First request is dequeued and parks in the service hook...
    auto gate = engine.submitTimed(1);
    ASSERT_TRUE(gate.ok());
    while (!in_service)
        std::this_thread::yield();

    // ...so the next two fill the queue to its depth...
    auto q1 = engine.submitTimed(1);
    auto q2 = engine.submitTimed(1);
    ASSERT_TRUE(q1.ok());
    ASSERT_TRUE(q2.ok());

    // ...and the one after that is rejected without being enqueued.
    auto rejected = engine.submitTimed(1);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::QueueFull);
    EXPECT_EQ(engine.collector().rejected(), 1u);

    {
        std::lock_guard<std::mutex> lk(mu);
        release = true;
    }
    cv.notify_all();
    engine.drain();
    EXPECT_TRUE(gate.value().get().status.ok());
    EXPECT_TRUE(q1.value().get().status.ok());
    EXPECT_TRUE(q2.value().get().status.ok());
    EXPECT_EQ(engine.collector().completed(), 3u);
}

TEST(Engine, DeadlineExpiresOnDequeue)
{
    serve::EngineOptions opts;
    opts.replicas = 1;
    opts.serviceMsOverride = 30.0; // real 30ms occupancy per request
    serve::Engine engine(opts);

    auto head = engine.submitTimed(1);
    ASSERT_TRUE(head.ok());
    auto doomed = engine.submitTimed(1, /*deadline_ms=*/5.0);
    ASSERT_TRUE(doomed.ok());

    serve::Response r = doomed.take().get();
    EXPECT_EQ(r.status.code(), StatusCode::DeadlineExceeded);
    EXPECT_GE(r.queueMs, 5.0); // waited out the head-of-line request
    EXPECT_TRUE(r.outputs.empty());
    EXPECT_TRUE(head.take().get().status.ok());
    EXPECT_EQ(engine.collector().expired(), 1u);
    EXPECT_EQ(engine.collector().completed(), 1u);
}

TEST(Engine, DrainCompletesEverythingThenRefusesWork)
{
    serve::EngineOptions opts;
    opts.replicas = 2;
    opts.serviceMsOverride = 2.0;
    serve::Engine engine(opts);

    std::vector<std::future<serve::Response>> futs;
    for (int i = 0; i < 6; ++i) {
        auto f = engine.submitTimed(1);
        ASSERT_TRUE(f.ok());
        futs.push_back(f.take());
    }
    engine.drain();
    EXPECT_EQ(engine.queueSize(), 0u);
    for (auto &f : futs) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_TRUE(f.get().status.ok());
    }
    EXPECT_EQ(engine.collector().completed(), 6u);

    auto late = engine.submitTimed(1);
    ASSERT_FALSE(late.ok());
    EXPECT_EQ(late.status().code(), StatusCode::Unavailable);

    engine.shutdown(); // drain-then-shutdown is a clean sequence
    EXPECT_EQ(engine.collector().cancelled(), 0u);
}

TEST(Engine, ShutdownCancelsQueuedRequests)
{
    serve::EngineOptions opts;
    opts.replicas = 1;
    opts.serviceMsOverride = 50.0;
    serve::Engine engine(opts);

    auto a = engine.submitTimed(1);
    auto b = engine.submitTimed(1);
    auto c = engine.submitTimed(1);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    // Wait for the worker to pull the head request into service.
    while (engine.queueSize() > 2)
        std::this_thread::yield();

    engine.shutdown();
    EXPECT_TRUE(a.take().get().status.ok());
    EXPECT_EQ(b.take().get().status.code(), StatusCode::Cancelled);
    EXPECT_EQ(c.take().get().status.code(), StatusCode::Cancelled);
    EXPECT_EQ(engine.collector().cancelled(), 2u);
}

TEST(Engine, OptionsFromEnvOverrides)
{
    ::setenv("BW_SERVE_REPLICAS", "3", 1);
    ::setenv("BW_SERVE_QUEUE_DEPTH", "17", 1);
    ::setenv("BW_SERVE_POLICY", "batched", 1);
    ::setenv("BW_SERVE_MAX_BATCH", "5", 1);
    ::setenv("BW_SERVE_TIMEOUT_MS", "7.5", 1);
    serve::EngineOptions o = serve::EngineOptions::fromEnv();
    EXPECT_EQ(o.replicas, 3u);
    EXPECT_EQ(o.queueDepth, 17u);
    EXPECT_EQ(o.policy, serve::DispatchPolicy::Batched);
    EXPECT_EQ(o.maxBatch, 5u);
    EXPECT_DOUBLE_EQ(o.batchTimeoutMs, 7.5);
    ::unsetenv("BW_SERVE_REPLICAS");
    ::unsetenv("BW_SERVE_QUEUE_DEPTH");
    ::unsetenv("BW_SERVE_POLICY");
    ::unsetenv("BW_SERVE_MAX_BATCH");
    ::unsetenv("BW_SERVE_TIMEOUT_MS");
}

TEST(Engine, StatsCollectorMeanBatchAveragesOverBatches)
{
    serve::StatsCollector c;
    serve::Response r;
    r.status = Status();
    r.latencyMs = 1.0;
    r.batch = 2; // one batch of two...
    c.recordCompleted(r, 0.0, 0.001);
    c.recordCompleted(r, 0.0, 0.001);
    r.batch = 1; // ...and one singleton: mean batch (2+1)/2
    c.recordCompleted(r, 0.001, 0.002);
    EXPECT_NEAR(c.snapshot().meanBatch, 1.5, 1e-12);

    Json j = c.toJson();
    EXPECT_TRUE(j.contains("rejected"));
    EXPECT_TRUE(j.contains("expired"));
    EXPECT_TRUE(j.contains("cancelled"));
    EXPECT_TRUE(j.contains("mean_queue_ms"));
    EXPECT_TRUE(j.contains("mean_service_ms"));
}

// --- Virtual-time replay vs the analytic serving models ---

TEST(Replay, UnbatchedMatchesAnalyticModel)
{
    Rng rng(10);
    auto arrivals = poissonArrivals(800.0, 5.0, rng);
    const double service_ms = 1.0, network_ms = 0.1;

    serve::EngineOptions opts;
    opts.policy = serve::DispatchPolicy::Unbatched;
    opts.replicas = 1;
    opts.queueDepth = arrivals.size() + 1;
    opts.serviceMsOverride = service_ms;
    opts.networkMs = network_ms;
    serve::Engine engine(opts);
    ServeStats replayed = engine.replay(arrivals);
    ServeStats analytic = serveUnbatched(arrivals, service_ms, network_ms);

    ASSERT_EQ(replayed.requests, analytic.requests);
    // Acceptance bar is 1%; the replay is in fact bit-identical.
    EXPECT_NEAR(replayed.meanLatencyMs, analytic.meanLatencyMs,
                0.01 * analytic.meanLatencyMs);
    EXPECT_NEAR(replayed.p99LatencyMs, analytic.p99LatencyMs,
                0.01 * analytic.p99LatencyMs);
    EXPECT_DOUBLE_EQ(replayed.meanLatencyMs, analytic.meanLatencyMs);
    EXPECT_DOUBLE_EQ(replayed.p99LatencyMs, analytic.p99LatencyMs);
    EXPECT_DOUBLE_EQ(replayed.maxLatencyMs, analytic.maxLatencyMs);
    EXPECT_DOUBLE_EQ(replayed.throughputRps, analytic.throughputRps);
}

TEST(Replay, BatchedMatchesAnalyticModel)
{
    Rng rng(11);
    auto arrivals = poissonArrivals(1200.0, 3.0, rng);
    auto batch_ms = [](unsigned b) { return 2.0 + 0.5 * b; };

    serve::EngineOptions opts;
    opts.policy = serve::DispatchPolicy::Batched;
    opts.replicas = 1;
    opts.maxBatch = 8;
    opts.batchTimeoutMs = 2.0;
    opts.queueDepth = arrivals.size() + 1;
    opts.serviceMsOverride = 1.0; // unused: batchServiceMs wins
    opts.batchServiceMs = batch_ms;
    serve::Engine engine(opts);
    ServeStats replayed = engine.replay(arrivals);
    ServeStats analytic = serveBatched(arrivals, 8, 2.0, batch_ms);

    ASSERT_EQ(replayed.requests, analytic.requests);
    EXPECT_DOUBLE_EQ(replayed.meanLatencyMs, analytic.meanLatencyMs);
    EXPECT_DOUBLE_EQ(replayed.p99LatencyMs, analytic.p99LatencyMs);
    EXPECT_DOUBLE_EQ(replayed.maxLatencyMs, analytic.maxLatencyMs);
    EXPECT_NEAR(replayed.meanBatch, analytic.meanBatch, 1e-12);
}

TEST(Replay, AdmissionControlRejectsUnderOverload)
{
    // Offered load 10x capacity with a short queue: most requests are
    // turned away, the rest see bounded latency.
    std::vector<double> arrivals;
    for (int i = 0; i < 500; ++i)
        arrivals.push_back(i * 0.0001); // every 0.1ms
    serve::EngineOptions opts;
    opts.serviceMsOverride = 1.0;
    opts.queueDepth = 4;
    serve::Engine engine(opts);
    ServeStats s = engine.replay(arrivals);
    EXPECT_GT(engine.collector().rejected(), 0u);
    EXPECT_EQ(s.requests + engine.collector().rejected(),
              arrivals.size());
    // The queue bound caps head-of-line wait at depth * service.
    EXPECT_LT(s.maxLatencyMs, (4 + 1) * 1.0 + 1.0);
}

TEST(Replay, DeadlinesExpireOnDequeue)
{
    std::vector<double> arrivals;
    for (int i = 0; i < 100; ++i)
        arrivals.push_back(i * 0.0005);
    serve::EngineOptions opts;
    opts.serviceMsOverride = 1.0;
    opts.queueDepth = arrivals.size();
    opts.defaultDeadlineMs = 2.0;
    serve::Engine engine(opts);
    ServeStats s = engine.replay(arrivals);
    EXPECT_GT(engine.collector().expired(), 0u);
    EXPECT_EQ(s.requests + engine.collector().expired(),
              arrivals.size());
}

// --- Request-scoped span tracing through the engine ---

TEST(EngineSpans, FunctionalSubmitRecordsTreeWithChainLeaves)
{
    Rng rng(13);
    Session session =
        Session::compile(makeGru(randomGruWeights(32, 32, rng)),
                         testConfig());
    obs::SpanTracer tracer;
    serve::EngineOptions opts;
    opts.spanTracer = &tracer;
    auto engine = session.serve(opts);

    std::vector<FVec> xs =
        randomInputs(3, session.model().inputDim, rng);
    auto fut = engine->submit(xs);
    ASSERT_TRUE(fut.ok());
    ASSERT_TRUE(fut.take().get().status.ok());
    engine->drain();

    Json doc = obs::spanTreeJson(tracer);
    Status st = obs::validateSpanTreeJson(doc);
    EXPECT_TRUE(st.ok()) << st.toString();
    const Json *traces = doc.find("traces");
    ASSERT_EQ(traces->size(), 1u);
    const Json *root = traces->at(0).find("root");
    EXPECT_EQ(root->find("name")->asString(), "request");
    EXPECT_EQ(root->find("outcome")->asString(), "ok");
    const Json *children = root->find("children");
    ASSERT_EQ(children->size(), 3u);
    // The execute span carries chain leaves from the timing simulator.
    const Json &execute = children->at(2);
    ASSERT_EQ(execute.find("name")->asString(), "execute");
    ASSERT_NE(execute.find("children"), nullptr);
    EXPECT_GT(execute.find("children")->size(), 0u);
    EXPECT_GT(execute.find("chains")->asInt(), 0);
    const Json &chain0 = execute.find("children")->at(0);
    EXPECT_EQ(chain0.find("name")->asString(), "chain[0]");
    EXPECT_NE(chain0.find("stalls"), nullptr);
}

TEST(EngineSpans, TracedServiceTimesMatchUntraced)
{
    // The profiled timing run feeding chain spans must not change the
    // simulated service time: cycle counts are bit-identical with the
    // tracer attached or detached.
    Rng rng(14);
    Session session =
        Session::compile(makeGru(randomGruWeights(32, 32, rng)),
                         testConfig());
    obs::SpanTracer tracer;
    serve::EngineOptions traced_opts;
    traced_opts.spanTracer = &tracer;
    auto traced = session.serve(traced_opts);
    auto plain = session.serve({});
    EXPECT_DOUBLE_EQ(traced->serviceMsFor(4), plain->serviceMsFor(4));
    EXPECT_DOUBLE_EQ(traced->serviceMsFor(1), plain->serviceMsFor(1));
    traced->shutdown();
    plain->shutdown();
}

TEST(EngineSpans, ReplayExportsByteIdenticalSpanTrees)
{
    Rng rng(15);
    auto arrivals = poissonArrivals(700.0, 4.0, rng);
    obs::SpanTracer tracer;
    serve::EngineOptions opts;
    opts.serviceMsOverride = 1.0;
    opts.queueDepth = arrivals.size();
    opts.spanTracer = &tracer;
    serve::Engine engine(opts);

    engine.replay(arrivals);
    std::string first = obs::spanTreeJson(tracer).dump();
    engine.replay(arrivals);
    std::string second = obs::spanTreeJson(tracer).dump();
    EXPECT_EQ(first, second); // replay clears + renumbers per run

    Json doc = Json::parse(second);
    Status st = obs::validateSpanTreeJson(doc);
    EXPECT_TRUE(st.ok()) << st.toString();
    EXPECT_EQ(doc.find("traces")->size(), arrivals.size());
}

TEST(EngineSpans, ReplayRequestDurationEqualsSumOfChildren)
{
    // The +-0 acceptance criterion: on the virtual clock every request
    // span is partitioned exactly by its direct children.
    Rng rng(16);
    auto arrivals = poissonArrivals(900.0, 3.0, rng);
    obs::SpanTracer tracer;
    serve::EngineOptions opts;
    opts.serviceMsOverride = 1.0;
    opts.queueDepth = arrivals.size();
    opts.spanTracer = &tracer;
    serve::Engine engine(opts);
    engine.replay(arrivals);

    Json doc = obs::spanTreeJson(tracer);
    const Json *traces = doc.find("traces");
    ASSERT_GT(traces->size(), 0u);
    for (size_t i = 0; i < traces->size(); ++i) {
        const Json *root = traces->at(i).find("root");
        const Json *children = root->find("children");
        ASSERT_NE(children, nullptr);
        int64_t sum = 0;
        for (size_t c = 0; c < children->size(); ++c)
            sum += children->at(c).find("dur_us")->asInt();
        EXPECT_EQ(sum, root->find("dur_us")->asInt())
            << "trace " << traces->at(i).find("trace")->asInt();
    }
}

TEST(EngineSpans, ReplayHeadSamplingTracesOneInTwo)
{
    std::vector<double> arrivals;
    for (int i = 0; i < 10; ++i)
        arrivals.push_back(i * 0.01);
    obs::SpanTracerOptions topts;
    topts.sampleEvery = 2;
    obs::SpanTracer tracer(topts);
    serve::EngineOptions opts;
    opts.serviceMsOverride = 1.0;
    opts.queueDepth = arrivals.size();
    opts.spanTracer = &tracer;
    serve::Engine engine(opts);
    engine.replay(arrivals);

    Json doc = obs::spanTreeJson(tracer);
    const Json *traces = doc.find("traces");
    ASSERT_EQ(traces->size(), 5u); // sequence numbers 1,3,5,7,9
    for (size_t i = 0; i < traces->size(); ++i)
        EXPECT_EQ(traces->at(i).find("trace")->asInt() % 2, 1);
}

TEST(EngineSpans, ModelLessTimedRequestsHaveNoChainChildren)
{
    std::vector<double> arrivals = {0.0, 0.001};
    obs::SpanTracer tracer;
    serve::EngineOptions opts;
    opts.serviceMsOverride = 0.5; // no model: nothing to profile
    opts.queueDepth = arrivals.size();
    opts.spanTracer = &tracer;
    serve::Engine engine(opts);
    engine.replay(arrivals);

    Json doc = obs::spanTreeJson(tracer);
    EXPECT_TRUE(obs::validateSpanTreeJson(doc).ok());
    const Json *traces = doc.find("traces");
    ASSERT_EQ(traces->size(), 2u);
    for (size_t i = 0; i < traces->size(); ++i) {
        const Json *children = traces->at(i).find("root")->find("children");
        ASSERT_EQ(children->size(), 3u);
        const Json &execute = children->at(2);
        ASSERT_EQ(execute.find("name")->asString(), "execute");
        EXPECT_EQ(execute.find("children"), nullptr);
    }
}

TEST(EngineSpans, LatencyExemplarsCarrySampledTraceIds)
{
    metrics::Registry registry;
    obs::SpanTracer tracer;
    serve::EngineOptions opts;
    opts.serviceMsOverride = 0.2;
    opts.timeScale = 0.0;
    opts.metricsRegistry = &registry;
    opts.spanTracer = &tracer;
    serve::Engine engine(opts);
    engine.start();
    for (int i = 0; i < 4; ++i) {
        auto fut = engine.submitTimed(1);
        ASSERT_TRUE(fut.ok());
        fut.take().get();
    }
    engine.drain();

    std::string json = metrics::metricsJson(registry).dump(2);
    EXPECT_NE(json.find("\"exemplar\""), std::string::npos);
    EXPECT_NE(json.find("\"trace\""), std::string::npos);
}

TEST(Replay, ExtraReplicasRelieveQueueing)
{
    Rng rng(12);
    auto arrivals = poissonArrivals(1500.0, 2.0, rng);
    serve::EngineOptions opts;
    opts.serviceMsOverride = 1.0; // rho = 1.5 on one replica
    opts.queueDepth = arrivals.size();

    serve::Engine one(opts);
    opts.replicas = 2;
    serve::Engine two(opts);
    ServeStats s1 = one.replay(arrivals);
    ServeStats s2 = two.replay(arrivals);
    EXPECT_LT(s2.meanLatencyMs, s1.meanLatencyMs);
    EXPECT_NEAR(s2.requests, arrivals.size(), 0);
}

} // namespace
} // namespace bw
