/**
 * @file
 * Timing-simulator tests: resource/scoreboard primitives, causality and
 * conservation invariants, dependency stalls, pipelining across
 * iterations, batch-size invariance and mega-SIMD iteration timing.
 */

#include <gtest/gtest.h>

#include "isa/builder.h"
#include "timing/npu_timing.h"

namespace bw {
namespace timing {
namespace {

TEST(Server, AcquireSemantics)
{
    Server s;
    EXPECT_EQ(s.acquire(10, 5), 10u); // idle server starts on request
    EXPECT_EQ(s.nextFree(), 15u);
    EXPECT_EQ(s.acquire(0, 5), 15u); // busy server queues
    EXPECT_EQ(s.busyCycles(), 10u);
    s.reset();
    EXPECT_EQ(s.nextFree(), 0u);
}

TEST(ServerArray, TotalsAndReset)
{
    ServerArray a(3);
    a[0].acquire(0, 10);
    a[2].acquire(5, 10);
    EXPECT_EQ(a.totalBusyCycles(), 20u);
    a.reset();
    EXPECT_EQ(a.totalBusyCycles(), 0u);
}

TEST(Scoreboard, ReadyTracking)
{
    Scoreboard sb;
    EXPECT_EQ(sb.readyAt(MemId::InitialVrf, 5, 3), 0u);
    sb.setReady(MemId::InitialVrf, 6, 1, 100);
    EXPECT_EQ(sb.readyAt(MemId::InitialVrf, 5, 3), 100u);
    EXPECT_EQ(sb.readyAt(MemId::InitialVrf, 7, 1), 0u);
    EXPECT_EQ(sb.readyAt(MemId::AddSubVrf, 6, 1), 0u);
}

/** Small config for structural tests. */
NpuConfig
smallConfig()
{
    NpuConfig c = NpuConfig::bwS10();
    c.name = "small";
    c.nativeDim = 40;
    c.lanes = 10;
    c.tileEngines = 2;
    c.mrfSize = 64;
    c.mrfIndexSpace = 256;
    c.initialVrfSize = 128;
    c.addSubVrfSize = 128;
    c.multiplyVrfSize = 128;
    return c;
}

TEST(NpuTiming, SingleChainHasPipelineLatency)
{
    NpuConfig cfg = smallConfig();
    NpuTiming sim(cfg);
    ProgramBuilder b;
    b.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 1);
    auto res = sim.run(b.build(), 1);
    // A single matrix-vector chain takes tens of cycles of pipeline
    // latency — far more than its 4 beats of occupancy.
    EXPECT_GT(res.totalCycles, 50u);
    EXPECT_LT(res.totalCycles, 2000u);
    EXPECT_EQ(res.chainsExecuted, 1u);
    EXPECT_EQ(res.nativeTileOps, 1u);
    EXPECT_EQ(res.mvmOps, 2ull * 40 * 40);
}

TEST(NpuTiming, DependentChainsSerialize)
{
    NpuConfig cfg = smallConfig();
    // Remove the chain-configuration floor so the data dependence is
    // the only serializer under test.
    cfg.timing.chainInterval = 1;
    NpuTiming sim(cfg);

    // Independent chains (disjoint addresses).
    ProgramBuilder ind;
    ind.vRd(MemId::InitialVrf, 0).vRelu().vWr(MemId::InitialVrf, 1);
    ind.vRd(MemId::InitialVrf, 2).vRelu().vWr(MemId::InitialVrf, 3);
    Cycles independent = sim.run(ind.build(), 1).totalCycles;

    // Dependent: the second chain reads the first one's output.
    ProgramBuilder dep;
    dep.vRd(MemId::InitialVrf, 0).vRelu().vWr(MemId::InitialVrf, 1);
    dep.vRd(MemId::InitialVrf, 1).vRelu().vWr(MemId::InitialVrf, 2);
    Cycles dependent = sim.run(dep.build(), 1).totalCycles;

    EXPECT_GT(dependent, independent);
}

TEST(NpuTiming, MvmOccupancyScalesWithTiles)
{
    NpuConfig cfg = smallConfig();
    NpuTiming sim(cfg);

    ProgramBuilder small;
    small.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 2);
    auto r1 = sim.run(small.build(), 1);

    ProgramBuilder big;
    big.tile(4, 4);
    big.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 8);
    auto r16 = sim.run(big.build(), 1);

    EXPECT_EQ(r16.nativeTileOps, 16u);
    EXPECT_EQ(r16.mvmBusyCycles, 16u * cfg.nativeVectorBeats());
    EXPECT_GT(r16.totalCycles, r1.totalCycles);
}

TEST(NpuTiming, IterationsPipelineAtOneConfiguration)
{
    NpuConfig cfg = smallConfig();
    NpuTiming sim(cfg);

    // 64 positions through one configured chain...
    ProgramBuilder iter;
    iter.sWr(ScalarReg::Iterations, 64);
    iter.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 64);
    Cycles iterated = sim.run(iter.build(), 1).totalCycles;

    // ...versus 64 separately configured chains.
    ProgramBuilder sep;
    for (int i = 0; i < 64; ++i) {
        sep.vRd(MemId::InitialVrf, i)
            .mvMul(0)
            .vWr(MemId::InitialVrf, 64 + i);
    }
    Cycles separate = sim.run(sep.build(), 1).totalCycles;

    // The iterated form skips 63 chain-configuration intervals.
    EXPECT_LT(iterated + 63 * cfg.timing.chainInterval / 2, separate);
}

TEST(NpuTiming, BackToBackIterationsOverlap)
{
    NpuConfig cfg = smallConfig();
    NpuTiming sim(cfg);
    ProgramBuilder b;
    b.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 1);
    Program p = b.build();

    Cycles one = sim.run(p, 1).totalCycles;
    auto res = sim.run(p, 10);
    // Ten iterations cost far less than ten single runs: the pipeline
    // overlaps successive timesteps.
    EXPECT_LT(res.totalCycles, 10 * one);
    EXPECT_EQ(res.iterationEnd.size(), 10u);
    for (size_t i = 1; i < res.iterationEnd.size(); ++i)
        EXPECT_GE(res.iterationEnd[i], res.iterationEnd[i - 1]);
    EXPECT_GT(res.steadyStateIterationCycles(), 0u);
    EXPECT_LE(res.steadyStateIterationCycles(), one);
}

TEST(NpuTiming, InputArrivalsDelayService)
{
    NpuConfig cfg = smallConfig();
    ProgramBuilder b;
    b.vRd(MemId::NetQ).vWr(MemId::InitialVrf, 0);
    Program p = b.build();

    NpuTiming sim(cfg);
    Cycles buffered = sim.run(p, 1).totalCycles;

    NpuTiming sim2(cfg);
    sim2.setInputArrivals({10000});
    Cycles late = sim2.run(p, 1).totalCycles;
    EXPECT_GE(late, 10000u);
    EXPECT_GT(late, buffered);
}

TEST(NpuTiming, ThinTilesCostFewerBeats)
{
    NpuConfig cfg = smallConfig();
    ProgramBuilder b;
    b.tile(2, 2);
    b.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 4);
    Program p = b.build();

    NpuTiming full(cfg);
    auto rf = full.run(p, 8);

    NpuTiming thin(cfg);
    // Column tile 1 of both rows is a thin tail (1 beat instead of 4).
    thin.setTileBeats({{1, 1}, {3, 1}});
    auto rt = thin.run(p, 8);

    EXPECT_LT(rt.mvmBusyCycles, rf.mvmBusyCycles);
    EXPECT_LE(rt.totalCycles, rf.totalCycles);
}

TEST(NpuTiming, MatrixChainUsesDramBandwidth)
{
    NpuConfig cfg = smallConfig();
    NpuTiming sim(cfg);
    ProgramBuilder b;
    b.tile(4, 4);
    b.mRd(MemId::Dram, 0).mWr(MemId::MatrixRf, 0);
    auto res = sim.run(b.build(), 1);
    EXPECT_GT(res.stats.counter("dram_busy_cycles"), 0u);
    EXPECT_EQ(res.stats.counter("matrix_tiles_moved"), 16u);
}

TEST(NpuTiming, WeightLoadBlocksDependentMvMul)
{
    NpuConfig cfg = smallConfig();

    ProgramBuilder pinned;
    pinned.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 1);
    NpuTiming sim1(cfg);
    Cycles without_load = sim1.run(pinned.build(), 1).totalCycles;

    ProgramBuilder loaded;
    loaded.mRd(MemId::Dram, 0).mWr(MemId::MatrixRf, 0);
    loaded.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 1);
    NpuTiming sim2(cfg);
    Cycles with_load = sim2.run(loaded.build(), 1).totalCycles;

    EXPECT_GT(with_load, without_load);
}

TEST(NpuTiming, PrologueRunsOnce)
{
    NpuConfig cfg = smallConfig();
    ProgramBuilder pro;
    pro.vRd(MemId::InitialVrf, 0).vRelu().vWr(MemId::AddSubVrf, 0);
    ProgramBuilder step;
    step.vRd(MemId::InitialVrf, 1).vvAdd(0).vWr(MemId::InitialVrf, 2);

    NpuTiming sim(cfg);
    auto res = sim.run(pro.build(), step.build(), 5);
    EXPECT_EQ(res.chainsExecuted, 6u); // 1 prologue + 5 iterations
    EXPECT_EQ(res.iterationEnd.size(), 5u);
}

TEST(NpuTiming, OutputTimesRecorded)
{
    NpuConfig cfg = smallConfig();
    NpuTiming sim(cfg);
    ProgramBuilder b;
    b.sWr(ScalarReg::Rows, 2);
    b.vRd(MemId::InitialVrf, 0).vRelu().vWr(MemId::NetQ);
    auto res = sim.run(b.build(), 3);
    EXPECT_EQ(res.outputTimes.size(), 6u); // 2 vectors x 3 iterations
    for (Cycles t : res.outputTimes)
        EXPECT_LE(t, res.totalCycles);
}

TEST(NpuTiming, UtilizationBounded)
{
    NpuConfig cfg = smallConfig();
    NpuTiming sim(cfg);
    ProgramBuilder b;
    b.tile(2, 2);
    b.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 4);
    auto res = sim.run(b.build(), 50);
    double occ = res.mvmOccupancy(cfg);
    EXPECT_GT(occ, 0.0);
    EXPECT_LE(occ, 1.0);
    EXPECT_LE(res.utilization(cfg, res.mvmOps), 1.0);
}

} // namespace
} // namespace timing
} // namespace bw
