/**
 * @file
 * Binary encoding and textual assembler tests: round trips, corrupt
 * image rejection, symbolic constants and error diagnostics.
 */

#include <gtest/gtest.h>

#include "common/logging.h"

#include "isa/assembler.h"
#include "isa/builder.h"
#include "isa/encoding.h"

namespace bw {
namespace {

Program
sampleProgram()
{
    ProgramBuilder b;
    b.tile(5, 5);
    b.vRd(MemId::NetQ).vWr(MemId::InitialVrf, 0);
    b.vRd(MemId::InitialVrf, 0)
        .mvMul(0)
        .vvAdd(3)
        .vSigm()
        .vvMul(7)
        .vWr(MemId::AddSubVrf, 10)
        .endChain();
    b.mRd(MemId::Dram, 100).mWr(MemId::MatrixRf, 25);
    b.sWr(ScalarReg::Iterations, 12);
    b.vRd(MemId::Dram, 5)
        .vvBSubA(1)
        .vvMax(2)
        .vRelu()
        .vWr(MemId::Dram, 9)
        .vWr(MemId::NetQ);
    return b.build();
}

TEST(Encoding, RoundTrip)
{
    Program p = sampleProgram();
    auto image = encodeProgram(p);
    EXPECT_EQ(image.size(), encodedSize(p.size()));
    Program q = decodeProgram(image);
    ASSERT_EQ(q.size(), p.size());
    for (size_t i = 0; i < p.size(); ++i)
        EXPECT_EQ(q[i], p[i]) << "instruction " << i;
}

TEST(Encoding, EmptyProgram)
{
    Program p;
    Program q = decodeProgram(encodeProgram(p));
    EXPECT_TRUE(q.empty());
}

TEST(Encoding, RejectsBadMagic)
{
    auto image = encodeProgram(sampleProgram());
    image[0] = 'X';
    EXPECT_THROW(decodeProgram(image), Error);
}

TEST(Encoding, RejectsTruncation)
{
    auto image = encodeProgram(sampleProgram());
    image.pop_back();
    EXPECT_THROW(decodeProgram(image), Error);
}

TEST(Encoding, RejectsBadOpcode)
{
    auto image = encodeProgram(sampleProgram());
    image[16] = 0xFF; // first instruction's opcode byte
    EXPECT_THROW(decodeProgram(image), Error);
}

TEST(Encoding, RejectsBadVersion)
{
    auto image = encodeProgram(sampleProgram());
    image[8] = 99;
    EXPECT_THROW(decodeProgram(image), Error);
}

TEST(Assembler, RoundTripThroughText)
{
    Program p = sampleProgram();
    std::string text = disassemble(p);
    Program q = assemble(text);
    ASSERT_EQ(q.size(), p.size());
    for (size_t i = 0; i < p.size(); ++i)
        EXPECT_EQ(q[i], p[i]) << "instruction " << i << ": "
                              << p[i].toString();
}

TEST(Assembler, SymbolsAndComments)
{
    const char *src = R"(
        # The paper's xWf chain, with symbolic registers.
        .def ivrf_xt 4
        .def mrf_Wf 0
        .def asvrf_bf 2
        s_wr rows, 5        ; mega-SIMD rows
        s_wr cols, 5
        v_rd ivrf, ivrf_xt  // chain input
        mv_mul mrf_Wf
        vv_add asvrf_bf
        v_wr asvrf, 10
        end_chain
    )";
    Program p = assemble(src);
    ASSERT_EQ(p.size(), 7u);
    EXPECT_EQ(p[2], Instruction::vRd(MemId::InitialVrf, 4));
    EXPECT_EQ(p[3], Instruction::mvMul(0));
    EXPECT_EQ(p[4], Instruction::vvAdd(2));
    auto chains = p.chains();
    EXPECT_EQ(chains.back().rows, 5u);
}

TEST(Assembler, SymbolReferencingSymbol)
{
    Program p = assemble(".def a 3\n.def b a\nv_rd ivrf, b\n"
                         "v_wr ivrf, 9\n");
    EXPECT_EQ(p[0].addr, 3u);
}

TEST(Assembler, Diagnostics)
{
    EXPECT_THROW(assemble("frobnicate 1"), Error);
    EXPECT_THROW(assemble("v_rd"), Error);            // missing operands
    EXPECT_THROW(assemble("v_rd ivrf"), Error);       // missing index
    EXPECT_THROW(assemble("v_rd ivrf, nope"), Error); // unknown symbol
    EXPECT_THROW(assemble("v_rd ivrf, -1"), Error);   // negative index
    EXPECT_THROW(assemble("s_wr rows"), Error);       // missing value
    EXPECT_THROW(assemble("s_wr bogus, 1"), Error);   // unknown register
    EXPECT_THROW(assemble("v_sigm 3"), Error);        // spurious operand
    EXPECT_THROW(assemble(".def onlyname"), Error);
    try {
        assemble("v_rd ivrf, 1\nbadop\n");
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(Assembler, NetqHasNoIndex)
{
    Program p = assemble("v_rd netq\nv_wr netq\n");
    EXPECT_EQ(p[0].mem, MemId::NetQ);
    EXPECT_EQ(p[1].mem, MemId::NetQ);
}

} // namespace
} // namespace bw
