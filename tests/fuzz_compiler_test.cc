/**
 * @file
 * Randomized compiler-equivalence testing: generate random recurrent
 * GIR graphs, compile them for a small NPU, and check the functional
 * simulator's outputs against the GirInterpreter oracle over several
 * timesteps, across seeds and configurations (TEST_P sweep).
 *
 * Graphs are built to stay numerically tame (weights are small, every
 * state producer passes through a saturating activation) so float16 /
 * high-mantissa-BFP error stays within a tight bound and any real
 * compiler bug (wrong operand, wrong address, wrong chain order) shows
 * up as a gross mismatch.
 */

#include <gtest/gtest.h>

#include "compiler/lowering.h"
#include "func/machine.h"
#include "refmodel/gir_interp.h"
#include "timing/npu_timing.h"

namespace bw {
namespace {

/** Random graph over dims that exercise padding and thin tiles. */
GirGraph
randomGraph(Rng &rng, unsigned input_dim, unsigned state_dim)
{
    GirGraph g("fuzz");
    NodeId x = g.input(input_dim, "x");
    NodeId h = g.state(state_dim, "h");

    auto small_mat = [&](unsigned rows, unsigned cols) {
        FMat m(rows, cols);
        float lim = 1.0f / std::sqrt(static_cast<float>(cols));
        for (auto &v : m.data())
            v = rng.uniformF(-lim, lim);
        return m;
    };

    // Seed pool: projections of the input and state into state_dim.
    std::vector<NodeId> pool;
    pool.push_back(g.matmul(small_mat(state_dim, input_dim), x, "Wx"));
    pool.push_back(g.matmul(small_mat(state_dim, state_dim), h, "Wh"));
    pool.push_back(g.constVec(
        [&] {
            FVec v(state_dim);
            for (auto &e : v)
                e = rng.uniformF(-0.2f, 0.2f);
            return v;
        }(),
        "c"));
    pool.push_back(h);

    // Random combinational ops over the pool.
    int ops = static_cast<int>(rng.integer(4, 12));
    for (int i = 0; i < ops; ++i) {
        NodeId a = pool[static_cast<size_t>(
            rng.integer(0, static_cast<int64_t>(pool.size()) - 1))];
        NodeId b = pool[static_cast<size_t>(
            rng.integer(0, static_cast<int64_t>(pool.size()) - 1))];
        NodeId n;
        switch (rng.integer(0, 7)) {
          case 0: n = g.add(a, b); break;
          case 1: n = g.sub(a, b); break;
          case 2: n = g.mul(g.sigmoid(a), b); break;
          case 3: n = g.max(a, b); break;
          case 4: n = g.relu(a); break;
          case 5: n = g.sigmoid(a); break;
          case 6: n = g.tanh(a); break;
          default:
            n = g.matmul(small_mat(state_dim, state_dim), g.tanh(a));
            break;
        }
        pool.push_back(n);
    }

    // The next state: saturate so iterated steps stay bounded.
    NodeId next = g.tanh(pool.back(), "h_next");
    g.bindState(h, next);
    g.output(next, "y");
    g.check();
    return g;
}

struct FuzzCase
{
    uint64_t seed;
    unsigned inputDim;
    unsigned stateDim;
    bool pipeline;
};

class CompilerFuzz : public ::testing::TestWithParam<FuzzCase>
{
};

TEST_P(CompilerFuzz, MatchesInterpreterOracle)
{
    FuzzCase fc = GetParam();
    Rng rng(fc.seed);

    NpuConfig cfg;
    cfg.name = "fuzz8";
    cfg.nativeDim = 8;
    cfg.lanes = 2;
    cfg.tileEngines = 2;
    cfg.mrfSize = 512;
    cfg.mrfIndexSpace = 2048;
    cfg.initialVrfSize = 256;
    cfg.addSubVrfSize = 256;
    cfg.multiplyVrfSize = 256;
    cfg.precision = BfpFormat{1, 5, 9}; // near-lossless dot products

    GirGraph g = randomGraph(rng, fc.inputDim, fc.stateDim);
    CompiledModel m =
        compileGir(g, cfg, {.pipelineInputProjections = fc.pipeline});

    FuncMachine machine(cfg);
    m.install(machine);
    GirInterpreter oracle(g);

    std::vector<FVec> xs;
    for (int t = 0; t < 5; ++t) {
        FVec x(fc.inputDim);
        fillUniform(x, rng, -0.5f, 0.5f);
        xs.push_back(x);
    }
    auto got = m.runSequence(machine, xs);
    for (size_t t = 0; t < xs.size(); ++t) {
        FVec want = oracle.step(xs[t]);
        ASSERT_EQ(got[t].size(), want.size()) << "seed " << fc.seed;
        EXPECT_LT(maxAbsDiff(got[t], want), 0.02)
            << "seed " << fc.seed << " step " << t << "\nprogram:\n"
            << m.step.toString();
    }
}

std::vector<FuzzCase>
fuzzCases()
{
    std::vector<FuzzCase> cases;
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        // Dims chosen to hit aligned, padded and thin-tile layouts.
        unsigned in = seed % 3 == 0 ? 12 : (seed % 3 == 1 ? 16 : 24);
        unsigned st = seed % 2 == 0 ? 16 : 20;
        cases.push_back({seed, in, st, seed % 2 == 0});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerFuzz,
                         ::testing::ValuesIn(fuzzCases()));

TEST(CompilerFuzz, TimingAcceptsAllFuzzPrograms)
{
    // Every fuzzed program must also be runnable on the timing
    // simulator without validation or invariant failures.
    NpuConfig cfg;
    cfg.name = "fuzz8";
    cfg.nativeDim = 8;
    cfg.lanes = 2;
    cfg.tileEngines = 2;
    cfg.mrfSize = 512;
    cfg.mrfIndexSpace = 2048;
    cfg.initialVrfSize = 256;
    cfg.addSubVrfSize = 256;
    cfg.multiplyVrfSize = 256;
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(seed);
        GirGraph g = randomGraph(rng, 16, 16);
        CompiledModel m = compileGir(g, cfg);
        timing::NpuTiming sim(cfg);
        sim.setTileBeats(m.tileBeats);
        auto res = sim.run(m.prologue, m.step, 8);
        EXPECT_GT(res.totalCycles, 0u) << seed;
        EXPECT_LE(res.mvmOccupancy(cfg), 1.0) << seed;
    }
}

} // namespace
} // namespace bw
