/**
 * @file
 * Quickstart: build an LSTM, compile it for the published BW_S10
 * configuration into a bw::Session, check numerical fidelity on the
 * functional simulator, and measure serving latency on the cycle-level
 * timing simulator — all through the one Session handle.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "bw/bw.h"

using namespace bw;

int
main()
{
    // 1. The target: the paper's Stratix-10 instance (Table III).
    NpuConfig cfg = NpuConfig::bwS10();
    std::printf("Target: %s — %llu MACs, native dim %u, %.0f MHz, "
                "%.0f peak TFLOPS, %s weights\n",
                cfg.name.c_str(),
                static_cast<unsigned long long>(cfg.macCount()),
                cfg.nativeDim, cfg.clockMhz, cfg.peakTflops(),
                cfg.precision.toString().c_str());

    // 2. A model: a 1200-hidden-unit LSTM with random weights.
    Rng rng(42);
    const unsigned hidden = 1200, steps = 30;
    LstmWeights weights = randomLstmWeights(hidden, hidden, rng);
    GirGraph graph = makeLstm(weights);
    std::printf("Model: LSTM h=%u — %.1fM ops/step, %.1f MB of "
                "weights\n",
                hidden,
                static_cast<double>(graph.matmulOpsPerStep()) / 1e6,
                static_cast<double>(graph.weightBytes(8)) / 1e6);

    // 3. Compile into a Session: one handle for the functional
    //    machine, the timing simulator, and the serving engine.
    Session session = Session::compile(graph, cfg);
    const CompiledModel &model = session.model();
    std::printf("Compiled: %zu instructions/step, %u MRF tile "
                "equivalents of %u\n\n",
                model.step.size(), model.mrfTilesUsed, cfg.mrfSize);
    std::printf("First chain of the step program:\n");
    auto chains = model.step.chains();
    for (const Chain &c : chains) {
        if (c.kind != Chain::Kind::Vector)
            continue;
        for (size_t i = c.first; i < c.end(); ++i)
            std::printf("    %s\n", model.step[i].toString().c_str());
        break;
    }

    // 4. Functional check: quantized NPU vs float reference.
    std::vector<FVec> xs;
    for (unsigned t = 0; t < steps; ++t) {
        FVec x(hidden);
        fillUniform(x, rng, -0.5f, 0.5f);
        xs.push_back(x);
    }
    auto npu_out = session.infer(xs);
    auto ref_out = lstmRefRun(weights, xs);
    QuantError err = measureQuantError(ref_out.back(), npu_out.back());
    std::printf("\nFunctional: after %u steps, max |h_npu - h_ref| = "
                "%.4f (BFP %s + float16)\n",
                steps, err.maxAbs, cfg.precision.toString().c_str());

    // 5. Performance: cycle-level serving latency at batch 1.
    auto perf = session.time(steps);
    double ms = perf.latencyMs(cfg);
    OpCount ops = model.matmulOpsPerStep * steps;
    std::printf("Timing: %u steps in %s cycles = %.3f ms  "
                "(%.1f effective TFLOPS, %.1f%% of peak, batch 1)\n",
                steps, fmtI(perf.totalCycles).c_str(), ms,
                perf.tflops(cfg, ops),
                100.0 * perf.utilization(cfg, ops));
    std::printf("Steady state: %llu cycles (%.1f us) per timestep\n",
                static_cast<unsigned long long>(
                    perf.steadyStateIterationCycles()),
                cyclesToUs(perf.steadyStateIterationCycles(),
                           cfg.clockMhz));
    return 0;
}
