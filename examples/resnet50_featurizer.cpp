/**
 * @file
 * The Section VII-C scenario: a ResNet-50-based image featurizer served
 * at batch 1 on the CNN-specialized Arria 10 instance. Plans the whole
 * conv trunk, times an inference, prints the per-stage breakdown, and
 * demonstrates the functional conv path on a downscaled layer.
 *
 *   $ ./resnet50_featurizer
 */

#include <cstdio>

#include "bw/bw.h"

using namespace bw;

int
main()
{
    NpuConfig cfg = NpuConfig::bwCnnA10();
    auto convs = resnet50Convs();

    std::printf("ResNet-50 featurizer on %s (%s weights, %u-wide "
                "native tiles)\n\n",
                cfg.name.c_str(), cfg.precision.toString().c_str(),
                cfg.nativeDim);

    ConvNetPlan plan = planConvNet(convs, cfg);
    timing::NpuTiming sim(cfg);
    sim.setTileBeats(plan.tileBeats);
    auto res = sim.run(plan.program, 1);

    double ms = res.latencyMs(cfg) + 0.10; // + PCIe/invoke, as measured
    std::printf("Batch-1 inference: %.2f ms -> %.0f IPS "
                "(paper: 1.8 ms / 559 IPS on real hardware)\n",
                ms, 1000.0 / ms);
    std::printf("MVM occupancy %.1f%%, %.2f effective TFLOPS "
                "(%.1f%% of the device's %.1f peak)\n\n",
                100.0 * res.mvmOccupancy(cfg),
                res.tflops(cfg, plan.totalOps),
                100.0 * res.utilization(cfg, plan.totalOps),
                cfg.peakTflops());

    // Per-stage layer summary.
    TextTable t({"Stage", "Layers", "GOps", "Weight MB", "Positions"});
    struct Agg
    {
        unsigned layers = 0;
        double gops = 0, mb = 0;
        uint64_t pos = 0;
    };
    std::map<std::string, Agg> stages;
    std::vector<std::string> order;
    for (const ConvSpec &s : convs) {
        std::string stage = s.name.substr(0, s.name.find('_'));
        if (!stages.count(stage))
            order.push_back(stage);
        Agg &a = stages[stage];
        ++a.layers;
        a.gops += static_cast<double>(s.macOps()) / 1e9;
        a.mb += static_cast<double>(s.weightCount()) *
                cfg.precision.elemBits() / 8e6;
        a.pos += s.positions();
    }
    for (const auto &stage : order) {
        const Agg &a = stages[stage];
        t.addRow({stage, std::to_string(a.layers), fmtF(a.gops, 2),
                  fmtF(a.mb, 1), fmtI(a.pos)});
    }
    std::printf("%s\n", t.render().c_str());

    // Functional demonstration: one bottleneck-style layer at reduced
    // scale runs bit-accurately on the functional simulator.
    std::printf("Functional check (downscaled 3x3 conv, 14x14x32 -> "
                "32):\n");
    ConvSpec demo;
    demo.inH = demo.inW = 14;
    demo.inC = 32;
    demo.outC = 32;
    demo.kH = demo.kW = 3;
    demo.pad = 1;

    NpuConfig fcfg = cfg;
    fcfg.nativeDim = 32;
    fcfg.lanes = 8;
    fcfg.tileEngines = 2;
    fcfg.precision = BfpFormat{1, 5, 5};

    Rng rng(3);
    FMat w(demo.outC, demo.patchLen());
    fillUniform(w, rng, -0.3f, 0.3f);
    FVec bias(demo.outC, 0.05f);
    FTensor4 input(1, demo.inH, demo.inW, demo.inC);
    for (auto &v : input.data())
        v = rng.uniformF(-0.5f, 0.5f);

    FuncMachine machine(fcfg);
    FTensor4 got = runConvLayerFunctional(machine, demo, w, bias, input);
    FTensor4 want = conv2dRef(demo, w, bias, input);
    double worst = 0;
    for (size_t i = 0; i < got.size(); ++i)
        worst = std::max(worst,
                         std::fabs(static_cast<double>(got.data()[i]) -
                                   want.data()[i]));
    std::printf("  max |npu - ref| over %zu outputs: %.4f "
                "(BFP %s dot products)\n",
                got.size(), worst, fcfg.precision.toString().c_str());
    return 0;
}
