/**
 * @file
 * bw_spans — tail-latency forensics over a span-tree export.
 *
 * Loads a bw.spans/1 JSON document (serve_engine's BW_SPANS_JSON) and
 * prints the report that aggregate stats cannot: which requests were
 * slow and *where* their time went.
 *
 *   1. Slowest-N requests: per trace, the wall split across
 *      queue_wait / dispatch / execute and the critical span (the
 *      direct child that dominated; for execute-bound requests, the
 *      dominant cycle bucket from the chain leaves).
 *   2. p99-vs-p50 differential attribution: mean time per span kind in
 *      the tail cohort (latency >= p99) vs the median cohort
 *      (latency <= p50), i.e. "p99 requests spend 71% more in
 *      queue_wait".
 *
 * The `flight` mode analyzes a bw.flight/1 export instead
 * (serve_engine's BW_FLIGHT_JSON): the tail-promoted anomaly table —
 * every deadline expiry, reject, error and cancellation plus the
 * slowest-K completions per window — with per-class counts and the
 * queue/service split of each promoted record. These are precisely the
 * requests head sampling was likely to drop; each carries a full
 * reconstructed span tree in the embedded bw.spans/1 document.
 *
 * The `incidents` mode analyzes a bw.incident/1 export (cluster_serve's
 * BW_FLEET_INCIDENTS_JSON or the /fleet/incidents.json endpoint): every
 * injected fault's phase timeline (fault_injected -> detected ->
 * evicted -> rewarm_started -> recovered) with virtual-time stamps, the
 * blast radius (requests caught in the fault window), the re-warm DRAM
 * charge, and a per-fault-class MTTR / goodput-impact summary. The
 * document is validated first — schema, monotonic stamps, and every
 * fault paired with a terminal recovery or eviction.
 *
 * The `validate` mode dispatches on the document's schema tag
 * (bw.spans/1, bw.flight/1, bw.slo/1, bw.route/1 or bw.incident/1) and
 * runs the matching structural validator — the CI schema gate for every
 * observability export. Cluster span exports root each trace at the
 * front-door "route" span; the analyzer descends into its "request"
 * child automatically.
 *
 * The `validate-stream` mode does the same for NDJSON streaming
 * exports (bw.routestream/1, bw.spanstream/1, bw.flightstream/1),
 * line by line in O(1) memory — a truncated final record or a missing
 * summary trailer is an error, not a silent pass.
 *
 * Exit codes: 0 = report printed, 2 = usage / unreadable input,
 * 3 = valid document but no complete request traces to analyze.
 *
 *   $ ./bw_spans spans.json [N]
 *   $ ./bw_spans flight flight.json [N]
 *   $ ./bw_spans incidents incidents.json
 *   $ ./bw_spans validate <export.json>
 *   $ ./bw_spans validate-stream <export.ndjson>
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bw/bw.h"

using namespace bw;

namespace {

/** Flattened per-request attribution extracted from one span tree. */
struct TraceSummary
{
    uint64_t trace = 0;
    std::string outcome;
    double durMs = 0;
    double queueMs = 0;
    double dispatchMs = 0;
    double executeMs = 0;
    uint64_t chains = 0;
    // Cycle attribution summed over the chain leaves.
    uint64_t dispatchCycles = 0;
    uint64_t decodeCycles = 0;
    uint64_t dataStall = 0;
    uint64_t inputStall = 0;
    uint64_t structStall = 0;
    uint64_t computeCycles = 0;

    uint64_t
    totalCycles() const
    {
        return dispatchCycles + decodeCycles + dataStall + inputStall +
               structStall + computeCycles;
    }
};

double
durMsOf(const Json &node)
{
    return static_cast<double>(node.find("dur_us")->asInt()) / 1e3;
}

uint64_t
stallOf(const Json &chain, const char *key)
{
    const Json *stalls = chain.find("stalls");
    if (!stalls)
        return 0;
    const Json *v = stalls->find(key);
    return v ? static_cast<uint64_t>(v->asInt()) : 0;
}

/**
 * The span to attribute a trace's time to. Cluster exports root each
 * trace at the front-door "route" span with the engine-side "request"
 * tree as its only child — descend so queue/dispatch/execute
 * attribution keeps working on both shapes.
 */
const Json &
requestRoot(const Json &root)
{
    const Json *name = root.find("name");
    if (!name || name->asString() != "route")
        return root;
    const Json *children = root.find("children");
    for (size_t i = 0; children && i < children->size(); ++i) {
        const Json &c = children->at(i);
        const Json *cn = c.find("name");
        if (cn && cn->asString() == "request")
            return c;
    }
    return root; // shed/expired at the front door: no request child
}

TraceSummary
summarize(uint64_t trace, const Json &route_root)
{
    const Json &root = requestRoot(route_root);
    TraceSummary s;
    s.trace = trace;
    // The route root's wall includes front-door time; the request
    // child's split is what the report attributes.
    s.durMs = durMsOf(route_root);
    const Json *outcome = root.find("outcome");
    s.outcome = outcome ? outcome->asString() : "ok";
    const Json *children = root.find("children");
    for (size_t i = 0; children && i < children->size(); ++i) {
        const Json &c = children->at(i);
        const std::string &name = c.find("name")->asString();
        if (name == "queue_wait") {
            s.queueMs = durMsOf(c);
        } else if (name == "dispatch") {
            s.dispatchMs = durMsOf(c);
        } else if (name == "execute") {
            s.executeMs = durMsOf(c);
            const Json *chains = c.find("children");
            for (size_t k = 0; chains && k < chains->size(); ++k) {
                const Json &ch = chains->at(k);
                ++s.chains;
                s.dispatchCycles += stallOf(ch, "dispatch");
                s.decodeCycles += stallOf(ch, "decode");
                s.dataStall += stallOf(ch, "data");
                s.inputStall += stallOf(ch, "input");
                s.structStall += stallOf(ch, "struct");
                s.computeCycles += stallOf(ch, "compute");
            }
        }
    }
    return s;
}

/** Name of the span where this request's time went. */
std::string
criticalSpan(const TraceSummary &s)
{
    if (s.outcome != "ok")
        return "queue_wait"; // never reached service
    std::string name = "queue_wait";
    double best = s.queueMs;
    if (s.dispatchMs > best) {
        best = s.dispatchMs;
        name = "dispatch";
    }
    if (s.executeMs > best) {
        best = s.executeMs;
        name = "execute";
    }
    if (name == "execute" && s.totalCycles() > 0) {
        // Execute-bound: name the dominant cycle bucket of its chains.
        const std::pair<const char *, uint64_t> buckets[] = {
            {"dispatch", s.dispatchCycles}, {"decode", s.decodeCycles},
            {"data", s.dataStall},          {"input", s.inputStall},
            {"struct", s.structStall},      {"compute", s.computeCycles},
        };
        const auto *top = &buckets[0];
        for (const auto &b : buckets) {
            if (b.second > top->second)
                top = &b;
        }
        name += std::string(" (") + top->first + ")";
    }
    return name;
}

double
meanOf(const std::vector<const TraceSummary *> &set,
       double (*get)(const TraceSummary &))
{
    if (set.empty())
        return 0;
    double sum = 0;
    for (const TraceSummary *s : set)
        sum += get(*s);
    return sum / static_cast<double>(set.size());
}

std::string
deltaPct(double base, double tail)
{
    if (base <= 0)
        return tail > 0 ? "n/a" : "+0.0%";
    double d = (tail - base) / base * 100.0;
    return (d >= 0 ? "+" : "") + fmtF(d, 1) + "%";
}

/** Load + parse a JSON file, or exit-2 with a diagnostic. */
bool
loadJson(const char *path, Json *out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bw_spans: cannot read %s\n", path);
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        *out = Json::parse(buf.str());
    } catch (const Error &e) {
        std::fprintf(stderr, "bw_spans: %s: %s\n", path, e.what());
        return false;
    }
    return true;
}

/** The `flight` mode: promoted-anomaly table over a bw.flight/1 doc. */
int
flightReport(const char *path, size_t top_n)
{
    Json doc;
    if (!loadJson(path, &doc))
        return 2;
    Status valid = obs::validateFlightJson(doc);
    if (!valid.ok()) {
        std::fprintf(stderr, "bw_spans: %s: %s\n", path,
                     valid.toString().c_str());
        return 2;
    }

    const Json *promoted = doc.find("promoted");
    std::printf("bw_spans flight: %zu promoted of %lld recorded "
                "(window %.0f ms, slowest-K %lld, %lld dropped)\n\n",
                promoted->size(),
                static_cast<long long>(doc.find("recorded")->asInt()),
                static_cast<double>(doc.find("window_us")->asInt()) / 1e3,
                static_cast<long long>(doc.find("slowest_k")->asInt()),
                static_cast<long long>(doc.find("dropped")->asInt()));
    if (promoted->size() == 0) {
        std::printf("No promoted records: every request completed "
                    "inside the window's slowest-K threshold.\n");
        return 3;
    }

    // Per-class counts: how the anomaly budget splits.
    std::map<std::string, uint64_t> by_class;
    for (size_t i = 0; i < promoted->size(); ++i)
        ++by_class[promoted->at(i).find("class")->asString()];
    TextTable classes({"class", "promoted"});
    for (const auto &kv : by_class)
        classes.addRow({kv.first, fmtI(kv.second)});
    std::printf("Promotions by class:\n%s\n", classes.render().c_str());

    // The promoted records, slowest first, up to N.
    std::vector<const Json *> rows;
    rows.reserve(promoted->size());
    for (size_t i = 0; i < promoted->size(); ++i)
        rows.push_back(&promoted->at(i));
    std::sort(rows.begin(), rows.end(), [](const Json *a, const Json *b) {
        int64_t la = a->find("latency_us")->asInt();
        int64_t lb = b->find("latency_us")->asInt();
        if (la != lb)
            return la > lb;
        return a->find("seq")->asInt() < b->find("seq")->asInt();
    });
    size_t n = std::min(top_n, rows.size());
    TextTable t({"seq", "id", "class", "queue ms", "service ms",
                 "latency ms", "replica", "head-sampled"});
    for (size_t i = 0; i < n; ++i) {
        const Json &r = *rows[i];
        double queue_ms =
            static_cast<double>(r.find("dequeue_us")->asInt() -
                                r.find("admit_us")->asInt()) / 1e3;
        double service_ms =
            static_cast<double>(r.find("done_us")->asInt() -
                                r.find("service_us")->asInt()) / 1e3;
        const Json *sampled = r.find("sampled");
        t.addRow({std::to_string(r.find("seq")->asInt()),
                  std::to_string(r.find("id")->asInt()),
                  r.find("class")->asString(), fmtF(queue_ms, 3),
                  fmtF(service_ms, 3),
                  fmtF(static_cast<double>(
                           r.find("latency_us")->asInt()) / 1e3, 3),
                  std::to_string(r.find("replica")->asInt()),
                  sampled && sampled->asBool() ? "yes" : "no"});
    }
    std::printf("Slowest %zu promoted records:\n%s\n", n,
                t.render().c_str());
    std::printf("Each promoted seq has a full span tree in the embedded "
                "spans document (%lld traces); requests head sampling "
                "dropped are still fully attributable here.\n",
                static_cast<long long>(
                    doc.find("spans")->find("traces")->size()));
    return 0;
}

/** The `incidents` mode: timeline + MTTR report over bw.incident/1. */
int
incidentsReport(const char *path)
{
    Json doc;
    if (!loadJson(path, &doc))
        return 2;
    Status valid = obs::validateIncidentJson(doc);
    if (!valid.ok()) {
        std::fprintf(stderr, "bw_spans: %s: %s\n", path,
                     valid.toString().c_str());
        return 2;
    }

    const Json *incidents = doc.find("incidents");
    std::printf("bw_spans incidents: %zu fault(s) recorded\n\n",
                incidents->size());
    if (incidents->size() == 0) {
        std::printf("No incidents: the chaos schedule injected no "
                    "faults into this replay.\n");
        return 3;
    }

    // The per-incident timeline: one row per fault, phases inline so
    // the detect lag and re-warm window are readable at a glance.
    TextTable t({"id", "class", "shard", "fault @ms", "detect ms",
                 "mttr ms", "affected", "reload tiles", "reload ms",
                 "phases"});
    struct ClassAgg
    {
        uint64_t count = 0;
        uint64_t affected = 0;
        uint64_t mttrSumUs = 0;
        uint64_t mttrMaxUs = 0;
        uint64_t reloadUs = 0;
    };
    std::map<std::string, ClassAgg> by_class;
    uint64_t evicted_total = 0;
    for (size_t i = 0; i < incidents->size(); ++i) {
        const Json &inc = incidents->at(i);
        const Json *events = inc.find("events");
        uint64_t fault_us = 0, detect_us = 0;
        bool evicted = false;
        std::string phases;
        for (size_t e = 0; e < events->size(); ++e) {
            const Json &ev = events->at(e);
            const std::string phase = ev.find("phase")->asString();
            uint64_t t_us =
                static_cast<uint64_t>(ev.find("t_us")->asInt());
            if (phase == "fault_injected")
                fault_us = t_us;
            else if (phase == "detected")
                detect_us = t_us;
            else if (phase == "evicted")
                evicted = true;
            if (!phases.empty())
                phases += " > ";
            phases += phase;
        }
        uint64_t mttr_us =
            static_cast<uint64_t>(inc.find("mttr_us")->asInt());
        uint64_t affected =
            static_cast<uint64_t>(inc.find("affected")->asInt());
        uint64_t reload_us =
            static_cast<uint64_t>(inc.find("reload_us")->asInt());
        const std::string cls = inc.find("class")->asString();
        t.addRow({std::to_string(inc.find("id")->asInt()), cls,
                  inc.find("shard")->asString(),
                  fmtF(static_cast<double>(fault_us) / 1e3, 3),
                  detect_us > 0
                      ? fmtF(static_cast<double>(detect_us - fault_us) /
                                 1e3,
                             3)
                      : "-",
                  fmtF(static_cast<double>(mttr_us) / 1e3, 3),
                  fmtI(affected),
                  fmtI(static_cast<uint64_t>(
                      inc.find("reload_tiles")->asInt())),
                  reload_us > 0
                      ? fmtF(static_cast<double>(reload_us) / 1e3, 3)
                      : "-",
                  phases});
        ClassAgg &agg = by_class[cls];
        ++agg.count;
        agg.affected += affected;
        agg.mttrSumUs += mttr_us;
        agg.mttrMaxUs = std::max(agg.mttrMaxUs, mttr_us);
        agg.reloadUs += reload_us;
        if (evicted)
            ++evicted_total;
    }
    std::printf("Incident timelines (virtual time):\n%s\n",
                t.render().c_str());

    // MTTR / goodput impact by fault class: the summary the SLO review
    // reads — how long each failure mode keeps capacity out of the
    // healthy set, and how many requests it touched while doing so.
    TextTable summary({"class", "faults", "mean mttr ms", "max mttr ms",
                       "affected", "rewarm ms"});
    uint64_t affected_total = 0;
    for (const auto &kv : by_class) {
        const ClassAgg &agg = kv.second;
        summary.addRow(
            {kv.first, fmtI(agg.count),
             fmtF(static_cast<double>(agg.mttrSumUs) /
                      (1e3 * static_cast<double>(agg.count)),
                  3),
             fmtF(static_cast<double>(agg.mttrMaxUs) / 1e3, 3),
             fmtI(agg.affected),
             agg.reloadUs > 0
                 ? fmtF(static_cast<double>(agg.reloadUs) / 1e3, 3)
                 : "-"});
        affected_total += agg.affected;
    }
    std::printf("MTTR and goodput impact by fault class:\n%s\n",
                summary.render().c_str());
    std::printf("%llu request(s) hit a faulted shard; %llu incident(s) "
                "evicted a shard from the healthy routing set. Every "
                "stamp above is replay virtual time: re-running the "
                "same chaos seed reproduces this document "
                "byte-for-byte.\n",
                static_cast<unsigned long long>(affected_total),
                static_cast<unsigned long long>(evicted_total));
    return 0;
}

/** The `validate` mode: schema-dispatch to the matching validator. */
int
validateDoc(const char *path)
{
    Json doc;
    if (!loadJson(path, &doc))
        return 2;
    const Json *schema = doc.find("schema");
    std::string tag =
        schema && schema->type() == Json::Type::String
            ? schema->asString()
            : "";
    Status st;
    if (tag == "bw.spans/1")
        st = obs::validateSpanTreeJson(doc);
    else if (tag == "bw.flight/1")
        st = obs::validateFlightJson(doc);
    else if (tag == "bw.slo/1")
        st = serve::validateSloJson(doc);
    else if (tag == "bw.route/1")
        st = cluster::validateRouteJson(doc);
    else if (tag == "bw.incident/1")
        st = obs::validateIncidentJson(doc);
    else {
        std::fprintf(stderr,
                     "bw_spans: %s: unknown schema tag '%s' (want "
                     "bw.spans/1, bw.flight/1, bw.slo/1, bw.route/1 "
                     "or bw.incident/1)\n",
                     path, tag.c_str());
        return 2;
    }
    if (!st.ok()) {
        std::fprintf(stderr, "bw_spans: %s: %s\n", path,
                     st.toString().c_str());
        return 2;
    }
    std::printf("bw_spans: %s valid (%s)\n", path, tag.c_str());
    return 0;
}

/** The `validate-stream` mode: NDJSON schema-dispatch validation. */
int
validateStream(const char *path)
{
    Status st = obs::validateStreamFile(path);
    if (!st.ok()) {
        std::fprintf(stderr, "bw_spans: %s: %s\n", path,
                     st.toString().c_str());
        return 2;
    }
    std::printf("bw_spans: %s valid (NDJSON stream)\n", path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: bw_spans <spans.json> [N]\n"
                     "       bw_spans flight <flight.json> [N]\n"
                     "       bw_spans incidents <incidents.json>\n"
                     "       bw_spans validate <export.json>\n"
                     "       bw_spans validate-stream <export.ndjson>\n");
        return 2;
    }
    if (std::strcmp(argv[1], "validate") == 0) {
        if (argc < 3) {
            std::fprintf(stderr,
                         "usage: bw_spans validate <export.json>\n");
            return 2;
        }
        return validateDoc(argv[2]);
    }
    if (std::strcmp(argv[1], "validate-stream") == 0) {
        if (argc < 3) {
            std::fprintf(
                stderr,
                "usage: bw_spans validate-stream <export.ndjson>\n");
            return 2;
        }
        return validateStream(argv[2]);
    }
    if (std::strcmp(argv[1], "incidents") == 0) {
        if (argc < 3) {
            std::fprintf(stderr,
                         "usage: bw_spans incidents <incidents.json>\n");
            return 2;
        }
        return incidentsReport(argv[2]);
    }
    if (std::strcmp(argv[1], "flight") == 0) {
        if (argc < 3) {
            std::fprintf(stderr,
                         "usage: bw_spans flight <flight.json> [N]\n");
            return 2;
        }
        size_t fn =
            argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 10;
        return flightReport(argv[2], fn == 0 ? 10 : fn);
    }
    size_t top_n = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 10;
    if (top_n == 0)
        top_n = 10;

    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "bw_spans: cannot read %s\n", argv[1]);
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    Json doc;
    try {
        doc = Json::parse(buf.str());
    } catch (const Error &e) {
        std::fprintf(stderr, "bw_spans: %s: %s\n", argv[1], e.what());
        return 2;
    }
    Status valid = obs::validateSpanTreeJson(doc);
    if (!valid.ok()) {
        std::fprintf(stderr, "bw_spans: %s: %s\n", argv[1],
                     valid.toString().c_str());
        return 2;
    }

    const Json *traces = doc.find("traces");
    std::vector<TraceSummary> all;
    all.reserve(traces->size());
    for (size_t i = 0; i < traces->size(); ++i) {
        const Json &tr = traces->at(i);
        all.push_back(summarize(
            static_cast<uint64_t>(tr.find("trace")->asInt()),
            *tr.find("root")));
    }
    if (all.empty()) {
        std::fprintf(stderr,
                     "bw_spans: %s holds no complete request traces\n",
                     argv[1]);
        return 3;
    }

    const Json *dropped = doc.find("dropped");
    std::printf("bw_spans: %zu traces from %s", all.size(), argv[1]);
    if (dropped && dropped->asInt() > 0)
        std::printf(" (%lld spans lost to ring overwrite)",
                    static_cast<long long>(dropped->asInt()));
    std::printf("\n\n");

    // --- 1. Slowest-N requests. ---
    std::vector<const TraceSummary *> by_lat;
    by_lat.reserve(all.size());
    for (const TraceSummary &s : all)
        by_lat.push_back(&s);
    std::sort(by_lat.begin(), by_lat.end(),
              [](const TraceSummary *a, const TraceSummary *b) {
                  return a->durMs != b->durMs ? a->durMs > b->durMs
                                              : a->trace < b->trace;
              });

    size_t n = std::min(top_n, by_lat.size());
    TextTable slow({"trace", "total ms", "queue ms", "dispatch ms",
                    "execute ms", "chains", "outcome", "critical span"});
    for (size_t i = 0; i < n; ++i) {
        const TraceSummary &s = *by_lat[i];
        slow.addRow({std::to_string(s.trace), fmtF(s.durMs, 3),
                     fmtF(s.queueMs, 3), fmtF(s.dispatchMs, 3),
                     fmtF(s.executeMs, 3), fmtI(s.chains), s.outcome,
                     criticalSpan(s)});
    }
    std::printf("Slowest %zu of %zu requests:\n%s\n", n, all.size(),
                slow.render().c_str());

    // --- 2. p99-vs-p50 differential attribution. ---
    std::vector<double> lat;
    lat.reserve(all.size());
    for (const TraceSummary &s : all)
        lat.push_back(s.durMs);
    std::sort(lat.begin(), lat.end());
    double p50 = percentileSorted(lat, 50);
    double p99 = percentileSorted(lat, 99);

    std::vector<const TraceSummary *> median_set, tail_set;
    for (const TraceSummary &s : all) {
        if (s.durMs <= p50)
            median_set.push_back(&s);
        if (s.durMs >= p99)
            tail_set.push_back(&s);
    }

    struct Row
    {
        const char *name;
        const char *unit;
        double (*get)(const TraceSummary &);
    };
    const Row rows[] = {
        {"queue_wait", "ms", [](const TraceSummary &s) { return s.queueMs; }},
        {"dispatch", "ms",
         [](const TraceSummary &s) { return s.dispatchMs; }},
        {"execute", "ms",
         [](const TraceSummary &s) { return s.executeMs; }},
        {"chain dispatch", "cycles",
         [](const TraceSummary &s) {
             return static_cast<double>(s.dispatchCycles);
         }},
        {"chain decode", "cycles",
         [](const TraceSummary &s) {
             return static_cast<double>(s.decodeCycles);
         }},
        {"chain data stall", "cycles",
         [](const TraceSummary &s) {
             return static_cast<double>(s.dataStall);
         }},
        {"chain input stall", "cycles",
         [](const TraceSummary &s) {
             return static_cast<double>(s.inputStall);
         }},
        {"chain struct stall", "cycles",
         [](const TraceSummary &s) {
             return static_cast<double>(s.structStall);
         }},
        {"chain compute", "cycles",
         [](const TraceSummary &s) {
             return static_cast<double>(s.computeCycles);
         }},
    };

    TextTable diff({"span", "unit", "p50 cohort mean", "p99 cohort mean",
                    "delta"});
    for (const Row &r : rows) {
        double base = meanOf(median_set, r.get);
        double tail = meanOf(tail_set, r.get);
        if (base == 0 && tail == 0)
            continue; // nothing attributed to this bucket at all
        diff.addRow({r.name, r.unit, fmtF(base, 3), fmtF(tail, 3),
                     deltaPct(base, tail)});
    }
    std::printf("p99 vs p50 attribution (%zu tail / %zu median "
                "requests; p50 %.3f ms, p99 %.3f ms):\n%s",
                tail_set.size(), median_set.size(), p50, p99,
                diff.render().c_str());
    return 0;
}
