/**
 * @file
 * Text-ranking MLP scenario: the paper's introduction motivates
 * memory-intensive MLPs in web-search/advertising pipelines. A deep
 * dense ranker is pinned on BW_S10, served at batch 1, and compared
 * against the UDM/SDM latency bounds of Section III — showing how close
 * the single-threaded machine gets to the idealized dataflow limits on
 * a feed-forward model (no recurrent dependence to hide behind).
 *
 *   $ ./mlp_ranker
 */

#include <cstdio>

#include "bw/bw.h"

using namespace bw;

int
main()
{
    NpuConfig cfg = NpuConfig::bwS10();

    // A production-shaped ranker: wide sparse-feature projection, four
    // hidden layers, scalar-ish scoring head (padded to one tile).
    std::vector<unsigned> dims = {2400, 2000, 1200, 800, 400, 400};
    Rng rng(17);
    MlpWeights w = randomMlpWeights(dims, rng);
    GirGraph g = makeMlp(w);
    Session sess = Session::compile(g, cfg);
    const CompiledModel &m = sess.model();

    std::printf("MLP ranker on %s: layers", cfg.name.c_str());
    for (unsigned d : dims)
        std::printf(" %u", d);
    std::printf("\n%.1fM ops/inference, %.1f MB weights, %u MRF tile "
                "equivalents (%u available)\n\n",
                static_cast<double>(g.matmulOpsPerStep()) / 1e6,
                static_cast<double>(g.weightBytes(8)) / 1e6,
                m.mrfTilesUsed, cfg.mrfSize);

    // Functional sanity against the float reference.
    FVec x(dims.front());
    fillUniform(x, rng, -0.5f, 0.5f);
    FVec score = sess.infer(x);
    FVec ref = mlpRef(w, x);
    std::printf("Functional: max |npu - ref| over the %zu-way output = "
                "%.4f\n\n",
                score.size(), maxAbsDiff(score, ref));

    // Latency: measured vs the Section III bounds (the session's
    // timing tier honors BW_TIMING_MODE).
    auto one = sess.time(1);
    auto pipelined = sess.time(64); // back-to-back requests

    CritPathResult cp = analyzeCritPath(g, cfg.macCount());
    std::printf("Latency bounds (Section III):\n");
    std::printf("  UDM (infinite FUs):        %llu cycles (%.2f us)\n",
                static_cast<unsigned long long>(cp.udmCycles),
                cyclesToUs(cp.udmCycles, cfg.clockMhz));
    std::printf("  SDM (96,000 MACs):         %llu cycles (%.2f us)\n",
                static_cast<unsigned long long>(cp.sdmCycles),
                cyclesToUs(cp.sdmCycles, cfg.clockMhz));
    std::printf("  BW NPU, single request:    %llu cycles (%.2f us) — "
                "%.2fx the SDM\n",
                static_cast<unsigned long long>(one.totalCycles),
                cyclesToUs(one.totalCycles, cfg.clockMhz),
                static_cast<double>(one.totalCycles) / cp.sdmCycles);
    Cycles steady = pipelined.steadyStateIterationCycles();
    std::printf("  BW NPU, steady pipeline:   %llu cycles/request "
                "(%.0f requests/s at batch 1)\n",
                static_cast<unsigned long long>(steady),
                cfg.clockMhz * 1e6 / static_cast<double>(steady));
    std::printf("\nEffective throughput at steady state: %.1f TFLOPS "
                "(%.1f%% of peak) with zero batching.\n",
                effectiveTflops(m.matmulOpsPerStep, steady,
                                cfg.clockMhz),
                100.0 * effectiveTflops(m.matmulOpsPerStep, steady,
                                        cfg.clockMhz) /
                    cfg.peakTflops());
    return 0;
}
