/**
 * @file
 * bw_trace — compile a DeepBench RNN layer, run it on the timing
 * simulator with the structured event trace attached, and write:
 *
 *   trace.json        Chrome trace-event JSON (open in Perfetto or
 *                     chrome://tracing): one track per modeled resource,
 *                     the run rendered as a pipeline waterfall.
 *   (stdout)          stall-attribution report — where every cycle of
 *                     the run went, the software analogue of the paper's
 *                     UDM-vs-SDM decomposition — plus the TimingResult
 *                     as JSON.
 *
 * Merge mode combines a Chrome event trace (serve_engine's
 * BW_SERVE_TRACE) with a span-tree export (BW_SPANS_JSON) into a single
 * Perfetto-loadable file, so the per-request span overlay and the
 * resource waterfall share one timeline:
 *
 *   $ ./bw_trace [gru|lstm] [hidden] [steps] [trace.json]
 *   $ ./bw_trace gru 1024 5 /tmp/gru.json
 *   $ ./bw_trace merge <event_trace.json> <spans.json> <out.json>
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "bw/bw.h"

using namespace bw;

namespace {

/** Parse a JSON file, exiting with code 2 on any failure. */
Json
loadJsonOrDie(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bw_trace: cannot read %s\n", path);
        std::exit(2);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return Json::parse(buf.str());
    } catch (const Error &e) {
        std::fprintf(stderr, "bw_trace: %s: %s\n", path, e.what());
        std::exit(2);
    }
}

int
mergeMain(int argc, char **argv)
{
    if (argc != 5) {
        std::fprintf(stderr,
                     "usage: bw_trace merge <event_trace.json> "
                     "<spans.json> <out.json>\n");
        return 2;
    }
    Json trace_doc = loadJsonOrDie(argv[2]);
    Json span_doc = loadJsonOrDie(argv[3]);
    if (!trace_doc.find("traceEvents")) {
        std::fprintf(stderr,
                     "bw_trace: %s is not a Chrome trace document "
                     "(no traceEvents)\n", argv[2]);
        return 2;
    }
    size_t before = trace_doc.find("traceEvents")->size();
    Status st = obs::appendSpanTreeDocEvents(trace_doc, span_doc);
    if (!st.ok()) {
        std::fprintf(stderr, "bw_trace: %s: %s\n", argv[3],
                     st.toString().c_str());
        return 2;
    }
    size_t after = trace_doc.find("traceEvents")->size();
    writeJsonFile(argv[4], trace_doc);
    std::printf("bw_trace: merged %zu span events from %s into %zu "
                "trace events -> %s\n",
                after - before, argv[3], before, argv[4]);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "merge") == 0)
        return mergeMain(argc, argv);

    RnnKind kind = RnnKind::Gru;
    unsigned hidden = 1024;
    unsigned steps = 5;
    const char *out_path = "trace.json";
    if (argc > 1) {
        if (std::strcmp(argv[1], "lstm") == 0) {
            kind = RnnKind::Lstm;
        } else if (std::strcmp(argv[1], "gru") != 0) {
            std::fprintf(stderr,
                         "bw_trace: unknown cell '%s'\n"
                         "usage: bw_trace [gru|lstm] [hidden] [steps] "
                         "[trace.json]\n"
                         "       bw_trace merge <event_trace.json> "
                         "<spans.json> <out.json>\n", argv[1]);
            return 2;
        }
    }
    if (argc > 2)
        hidden = static_cast<unsigned>(std::atoi(argv[2]));
    if (argc > 3)
        steps = static_cast<unsigned>(std::atoi(argv[3]));
    if (argc > 4)
        out_path = argv[4];
    if (hidden == 0 || steps == 0) {
        std::fprintf(stderr,
                     "bw_trace: hidden and steps must be positive "
                     "(got hidden=%u steps=%u)\n", hidden, steps);
        return 2;
    }

    NpuConfig cfg = NpuConfig::bwS10();
    std::printf("bw_trace: %s h=%u, %u steps on %s\n\n",
                rnnKindName(kind), hidden, steps, cfg.name.c_str());

    Rng rng(1);
    GirGraph g = kind == RnnKind::Lstm
                     ? makeLstm(randomLstmWeights(hidden, hidden, rng))
                     : makeGru(randomGruWeights(hidden, hidden, rng));
    CompileOptions opts;
    opts.pipelineInputProjections = kind == RnnKind::Gru;
    CompiledModel model = compileGir(g, cfg, opts);

    timing::NpuTiming sim(cfg);
    sim.setTileBeats(model.tileBeats);

    obs::EventTrace trace;
    sim.setTraceSink(&trace);
    auto res = sim.run(model.prologue, model.step, steps);
    sim.setTraceSink(nullptr);

    // --- trace.json: the run as a Perfetto-loadable waterfall. ---
    obs::writeChromeTrace(out_path, trace, cfg.clockMhz);
    uint64_t per_class[static_cast<size_t>(obs::ResClass::NumResClasses)] =
        {};
    for (const obs::TraceEvent &e : trace.events())
        ++per_class[static_cast<size_t>(e.res)];
    std::printf("%s: %s events on %llu chains",
                out_path, fmtI(trace.emitted()).c_str(),
                static_cast<unsigned long long>(trace.chains().size()));
    if (trace.dropped())
        std::printf(" (%s oldest dropped from the ring)",
                    fmtI(trace.dropped()).c_str());
    std::printf("\n  per resource class:");
    for (size_t i = 0;
         i < static_cast<size_t>(obs::ResClass::NumResClasses); ++i) {
        if (per_class[i])
            std::printf(" %s=%llu",
                        obs::resClassName(static_cast<obs::ResClass>(i)),
                        static_cast<unsigned long long>(per_class[i]));
    }
    std::printf("\n\n");

    // --- Stall attribution: where the cycles went. ---
    obs::StallReport report =
        obs::buildStallReport(trace.chains(), res.totalCycles);
    std::printf("%s\n", report.render().c_str());

    // --- Machine-readable run summary. ---
    std::printf("TimingResult:\n%s\n", res.toJson().dump(2).c_str());
    return 0;
}
