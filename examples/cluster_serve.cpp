/**
 * @file
 * The cluster layer end to end: replica groups of serving engines over
 * heterogeneous NPU configurations (the paper's mixed Stratix V /
 * Arria 10 / Stratix 10 fleet), multi-model tenancy behind per-engine
 * LRU weight caches, and a front-door router that places every request
 * by consistent hash, least load, or SLO-aware admission shedding.
 *
 * Three phases:
 *   1. Deterministic virtual-time replay of a seeded open-loop trace
 *      (Poisson + diurnal modulation + a burst phase) through the
 *      router and every engine shard — per-engine flight/SLO exports.
 *   2. A saturation sweep on a dedicated four-engine group with a
 *      skewed model mix: an rps ladder under every routing policy,
 *      recording goodput (completions inside their deadline) in the
 *      machine-readable BENCH_cluster_sweep.json artifact. The skew
 *      pins the hot model to one engine under consistent hashing, so
 *      least-loaded sustains strictly more goodput past saturation.
 *   3. A live (threaded) smoke: worker pools spun up, the trace head
 *      submitted through Cluster::submitTimed, drained.
 *
 * Environment: BW_CLUSTER_MIX ("s5:2,a10:1,s10:1") picks the replica
 * groups, BW_CLUSTER_POLICY the router policy, BW_CLUSTER_CACHE_TILES
 * the per-engine weight-cache capacity, and BW_CLUSTER_SEED /
 * BW_CLUSTER_RPS / BW_CLUSTER_DURATION_S shape the generated trace.
 * BW_SERVE_* override the per-engine options as everywhere else.
 * BW_CLUSTER_ROUTE_JSON=<path> writes the router's bw.route/1 decision
 * log, BW_SLO_JSON the cluster-level bw.slo/1 document, BW_SPANS_JSON
 * the route-rooted span trees, BW_FLIGHT_JSON engine 0's bw.flight/1
 * document, and BW_BENCH_JSON overrides the sweep artifact path.
 *
 * Fleet plane: BW_FLEET_METRICS_JSON / BW_FLEET_SLO_JSON write the
 * federated metrics document and the fleet bw.slo/1 rollup,
 * BW_FLEET_STREAM streams every routing decision of the Phase-1 replay
 * as bw.routestream/1 NDJSON (validated after the run),
 * BW_FLEET_SPANS_NDJSON streams the stitched span trees as
 * bw.spanstream/1, and BW_AUDIT_JSON writes the /debug/audit document.
 * BW_AUDIT_SAMPLE=<n> audits every n-th completed compiled-model
 * request against the cycle-accurate model when BW_TIMING_MODE runs a
 * fast/cached tier.
 *
 * Chaos plane: BW_CHAOS_RATE > 0 injects a seeded fault schedule
 * (crash / hang / slow / dropped-message, BW_CHAOS_SEED,
 * BW_CHAOS_HORIZON_S) into the Phase-1 replay; BW_HEDGE_MS arms hedged
 * requests, BW_HEALTH_DETECT_MS sets the detection lag, and
 * BW_FLEET_INCIDENTS_JSON writes the bw.incident/1 timeline document
 * (also served live at /fleet/incidents.json; check with
 * 'bw_spans incidents').
 *
 * Live introspection: BW_METRICS_PORT serves the cluster registry
 * (bw_cluster_* series) plus /debug/cluster, /route.json, /slo.json,
 * the fleet plane (/fleet/metrics, /fleet/metrics.json, /fleet/slo.json,
 * /fleet/spans.ndjson, /debug/audit) and per-shard
 * /engine/<i>/{slo,flight,cache,metrics}.json, /engine/<i>/flight.ndjson
 * and /engine/<i>/debug/config; /healthz turns 503 {"draining":true}
 * once any shard drains. BW_METRICS_LINGER_S holds the endpoint open
 * after the run so scrapers cannot race the exit.
 *
 *   $ ./cluster_serve [live_requests]
 *   $ ./cluster_serve --help
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bw/bw.h"

using namespace bw;
using namespace bw::cluster;

namespace {

/** The demo cluster: a heterogeneous two-generation fleet. */
ClusterOptions
demoOptions(metrics::Registry *reg, obs::SpanTracer *spans)
{
    ClusterOptions co;
    ReplicaGroupSpec s10;
    s10.name = "s10";
    s10.config = NpuConfig::bwS10();
    s10.engines = 2;
    ReplicaGroupSpec s5;
    s5.name = "s5";
    s5.config = NpuConfig::bwS5();
    s5.engines = 1;
    for (ReplicaGroupSpec *g : {&s10, &s5}) {
        g->engine.queueDepth = 32;
        g->engine.networkMs = 0.05;
        g->engine.defaultDeadlineMs = 50.0;
        g->engine = serve::EngineOptions::fromEnv(g->engine);
    }
    co.groups = {s10, s5};
    co.router.policy = RoutePolicy::SloAware;
    // Tight enough that the cold model (40 tiles) contends with the
    // hot+warm pair (48): replays show real weight-reload charges.
    co.weightCacheTiles = 64;
    co = ClusterOptions::fromEnv(std::move(co));
    co.metricsRegistry = reg;
    co.spanTracer = spans;
    return co;
}

/** The demo trace: diurnal swell plus one burst, three-model skew. */
TrafficOptions
demoTraffic()
{
    TrafficOptions t;
    t.baseRps = 2000;
    t.durationS = 1.0;
    t.seed = 42;
    t.diurnalAmplitude = 0.3;
    t.diurnalPeriodS = 1.0;
    t.bursts.push_back(BurstPhase{0.45, 0.1, 3.0});
    t.mix.push_back(ModelMix{0, 8.0, 1, 10.0}); // hot, interactive
    t.mix.push_back(ModelMix{1, 2.0, 1, 80.0}); // warm, standard
    t.mix.push_back(ModelMix{2, 1.0, 1, 0.0});  // cold, best-effort
    t.mix.push_back(ModelMix{3, 1.5, 2, 40.0}); // compiled GRU
    return TrafficOptions::fromEnv(std::move(t));
}

void
addDemoModels(Cluster &c)
{
    c.addTimedModel("dnn-hot", 0.8, 24);
    c.addTimedModel("dnn-warm", 1.5, 24);
    c.addTimedModel("dnn-cold", 2.5, 40);
    // A real compiled model rides along with the timed ones: its
    // service time and weight footprint come from compilation per
    // group (the S5 and S10 prices differ), its execute spans carry
    // stitched chain leaves, and the fidelity audit has a compiled
    // target to re-price against the cycle-accurate model.
    Rng rng(7);
    GirGraph gru = makeGru(randomGruWeights(128, 128, rng));
    Expected<uint32_t> id = c.addModel("gru-tagger", gru);
    BW_ASSERT(id.ok(), "gru-tagger failed to register: %s",
              id.status().message().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                     std::strcmp(argv[1], "-h") == 0)) {
        std::printf(
            "usage: cluster_serve [live_requests]\n"
            "\n"
            "Replay a seeded open-loop trace through a multi-engine\n"
            "cluster, sweep routing policies across an rps ladder, and\n"
            "smoke the live threaded submit path.\n"
            "\n"
            "Environment variables (shared across all bw binaries):\n%s",
            renderEnvVarHelp().c_str());
        return 0;
    }
    unsigned live_requests = argc > 1 ? std::atoi(argv[1]) : 200;

    metrics::Registry registry;
    obs::SpanTracer spans(obs::SpanTracerOptions::fromEnv());
    Cluster cluster(demoOptions(&registry, &spans));
    addDemoModels(cluster);

    std::printf("Cluster: %u engines, %zu models, %s routing\n",
                cluster.engineCount(), cluster.modelCount(),
                routePolicyName(cluster.router().options().policy));

    metrics::MetricsHttpServer http(registry);
    cluster.exposeDebug(http);
    if (const char *port_env = std::getenv("BW_METRICS_PORT")) {
        Status st =
            http.start(static_cast<uint16_t>(std::atoi(port_env)));
        if (st.ok())
            std::printf("Metrics endpoint: http://127.0.0.1:%u/metrics\n",
                        http.port());
        else
            std::printf("Metrics endpoint unavailable: %s\n",
                        st.message().c_str());
    }

    // --- Phase 1: deterministic virtual-time replay. ---
    // With BW_FLEET_STREAM, every routing decision is written as one
    // bw.routestream/1 NDJSON line while the replay runs — O(1) writer
    // state no matter the trace length.
    std::ofstream route_stream_file;
    std::unique_ptr<obs::RouteStreamWriter> route_writer;
    const char *stream_path = std::getenv("BW_FLEET_STREAM");
    if (stream_path) {
        route_stream_file.open(stream_path, std::ios::binary);
        obs::StreamSink sink =
            [&route_stream_file](const std::string &chunk) {
                route_stream_file.write(
                    chunk.data(),
                    static_cast<std::streamsize>(chunk.size()));
                return static_cast<bool>(route_stream_file);
            };
        route_writer = std::make_unique<obs::RouteStreamWriter>(
            std::move(sink),
            routePolicyName(cluster.router().options().policy),
            cluster.engineCount(), cluster.sloClassCount());
        cluster.setDecisionSink(
            [&w = *route_writer](const RouteDecision &d) {
                w.decision(d.seq, d.model, d.cls, d.engine);
            });
    }

    TrafficOptions traffic = demoTraffic();
    std::vector<ClusterRequest> trace = generateTraffic(traffic);
    ClusterStats rs = cluster.replay(trace);

    if (route_writer) {
        route_writer->finish();
        route_stream_file.close();
        cluster.setDecisionSink({});
        Status st = obs::validateRouteStreamFile(stream_path);
        std::printf("Fleet route stream written to %s "
                    "(%llu rows, %llu bytes): %s\n",
                    stream_path,
                    static_cast<unsigned long long>(route_writer->rows()),
                    static_cast<unsigned long long>(route_writer->bytes()),
                    st.ok() ? "valid" : st.message().c_str());
    }

    std::printf("\nReplay: %zu requests over %.2f s (seed %llu)\n",
                trace.size(), traffic.durationS,
                static_cast<unsigned long long>(traffic.seed));
    TextTable per({"engine", "routed", "done", "rej", "exp", "hit",
                   "miss", "reload ms", "p99 ms"});
    for (const EngineReport &e : rs.engines)
        per.addRow({e.label, fmtI(e.routed), fmtI(e.completed),
                    fmtI(e.rejected), fmtI(e.expired), fmtI(e.cacheHits),
                    fmtI(e.cacheMisses), fmtF(e.reloadMsTotal, 2),
                    fmtF(e.stats.p99LatencyMs, 3)});
    std::printf("%s\n", per.render().c_str());
    std::printf("submitted %llu  shed %llu  rejected %llu  expired %llu"
                "  goodput %llu (%.0f good req/s)\n",
                static_cast<unsigned long long>(rs.submitted),
                static_cast<unsigned long long>(rs.shed),
                static_cast<unsigned long long>(rs.rejected),
                static_cast<unsigned long long>(rs.expired),
                static_cast<unsigned long long>(rs.goodput),
                rs.goodputRps);
    if (!cluster.chaosSchedule().empty()) {
        uint64_t affected = 0;
        for (const obs::Incident &inc : cluster.incidents().incidents())
            affected += inc.affected;
        std::printf("chaos: %zu fault(s) scheduled (seed %llu), %zu "
                    "incident(s), %llu request(s) affected, %llu "
                    "failed\n",
                    cluster.chaosSchedule().faults().size(),
                    static_cast<unsigned long long>(
                        cluster.chaosSchedule().seed()),
                    cluster.incidents().faults(),
                    static_cast<unsigned long long>(affected),
                    static_cast<unsigned long long>(rs.failed));
    }
    if (cluster.options().hedgeMs >= 0) {
        std::printf("hedging (>%.1f ms): %llu hedged, %llu hedge "
                    "wins\n",
                    cluster.options().hedgeMs,
                    static_cast<unsigned long long>(rs.hedged),
                    static_cast<unsigned long long>(rs.hedgeWins));
    }
    if (cluster.options().auditEvery > 0) {
        std::printf("fidelity audit (%s tier, 1-in-%llu): %llu checks, "
                    "%llu divergences\n",
                    timing::fidelityName(cluster.options().fidelity),
                    static_cast<unsigned long long>(
                        cluster.options().auditEvery),
                    static_cast<unsigned long long>(cluster.auditChecks()),
                    static_cast<unsigned long long>(
                        cluster.auditDivergences()));
    }

    if (const char *path = std::getenv("BW_CLUSTER_ROUTE_JSON")) {
        writeJsonFile(path, cluster.routeJson());
        std::printf("Route decision log written to %s\n", path);
    }
    if (const char *path = std::getenv("BW_SLO_JSON")) {
        writeJsonFile(path, cluster.sloJson());
        std::printf("Cluster SLO JSON written to %s\n", path);
    }
    if (const char *path = std::getenv("BW_SPANS_JSON")) {
        writeJsonFile(path, obs::spanTreeJson(spans));
        std::printf("Span trees written to %s\n", path);
    }
    if (const char *path = std::getenv("BW_FLIGHT_JSON")) {
        writeJsonFile(path, cluster.engineFlightJson(0));
        std::printf("Engine 0 flight JSON written to %s\n", path);
    }
    if (const char *path = std::getenv("BW_FLEET_METRICS_JSON")) {
        writeJsonFile(path, cluster.fleetMetricsJson());
        std::printf("Fleet metrics JSON written to %s\n", path);
    }
    if (const char *path = std::getenv("BW_FLEET_SLO_JSON")) {
        writeJsonFile(path, cluster.fleetSloJson());
        std::printf("Fleet SLO rollup written to %s\n", path);
    }
    if (const char *path = std::getenv("BW_FLEET_INCIDENTS_JSON")) {
        writeJsonFile(path, cluster.incidentsJson());
        std::printf("Incident timelines written to %s\n", path);
    }
    if (const char *path = std::getenv("BW_AUDIT_JSON")) {
        writeJsonFile(path, cluster.auditJson());
        std::printf("Fidelity audit JSON written to %s\n", path);
    }
    if (const char *path = std::getenv("BW_FLEET_SPANS_NDJSON")) {
        std::ofstream out(path, std::ios::binary);
        obs::StreamSink sink = [&out](const std::string &chunk) {
            out.write(chunk.data(),
                      static_cast<std::streamsize>(chunk.size()));
            return static_cast<bool>(out);
        };
        Status st = obs::streamSpanTreesNdjson(spans, sink);
        std::printf("Fleet span stream written to %s: %s\n", path,
                    st.ok() ? "ok" : st.message().c_str());
    }

    // --- Phase 2: saturation sweep, routing policies head to head. ---
    // A dedicated homogeneous four-engine group with a heavily skewed
    // model mix: consistent hashing pins ~89% of the traffic to the
    // hot model's engine while least-loaded spreads it; everything in
    // this phase is virtual time, so the artifact is deterministic and
    // diffable by bench_compare.
    ClusterOptions so;
    ReplicaGroupSpec sg;
    sg.name = "s10";
    sg.config = NpuConfig::bwS10();
    sg.engines = 4;
    sg.engine.queueDepth = 16;
    sg.engine.networkMs = 0.05;
    sg.engine.defaultDeadlineMs = 25.0;
    so.groups = {sg};
    so.weightCacheTiles = 256;
    Cluster sweep(so);
    sweep.addTimedModel("hot", 1.0, 16);
    sweep.addTimedModel("cold-a", 1.0, 16);
    sweep.addTimedModel("cold-b", 1.0, 16);

    TrafficOptions st;
    st.durationS = 0.5;
    st.seed = 9;
    st.mix.push_back(ModelMix{0, 16.0, 1, 12.0});
    st.mix.push_back(ModelMix{1, 1.0, 1, 12.0});
    st.mix.push_back(ModelMix{2, 1.0, 1, 12.0});

    const double ladder[] = {1000, 1800, 2600, 3400};
    const RoutePolicy policies[] = {RoutePolicy::ConsistentHash,
                                    RoutePolicy::LeastLoaded,
                                    RoutePolicy::SloAware};
    Json points = Json::array();
    TextTable sweep_tbl({"rps", "policy", "submitted", "shed", "rej",
                         "exp", "goodput", "good req/s"});
    for (double rps : ladder) {
        st.baseRps = rps;
        std::vector<ClusterRequest> t = generateTraffic(st);
        for (RoutePolicy p : policies) {
            sweep.setRouterPolicy(p);
            ClusterStats s = sweep.replay(t);
            Json pt = Json::object();
            pt.set("rps", rps);
            pt.set("policy", routePolicyName(p));
            pt.set("submitted", s.submitted);
            pt.set("shed", s.shed);
            pt.set("rejected", s.rejected);
            pt.set("expired", s.expired);
            pt.set("completed", s.completed);
            pt.set("goodput", s.goodput);
            pt.set("goodput_rps", s.goodputRps);
            pt.set("p99_latency_ms", s.overall.p99LatencyMs);
            points.push(std::move(pt));
            sweep_tbl.addRow({fmtF(rps, 0), routePolicyName(p),
                              fmtI(s.submitted), fmtI(s.shed),
                              fmtI(s.rejected), fmtI(s.expired),
                              fmtI(s.goodput), fmtF(s.goodputRps, 0)});
        }
    }
    std::printf("\nSaturation sweep (4x BW_S10, 16:1:1 model skew, "
                "12 ms deadlines):\n%s\n",
                sweep_tbl.render().c_str());

    // The headline comparison the artifact records: goodput at the
    // highest ladder point, least-loaded vs consistent hash.
    uint64_t hash_top = 0, least_top = 0;
    for (size_t i = 0; i < points.size(); ++i) {
        const Json &pt = points.at(i);
        if (pt.find("rps")->asDouble() != ladder[3])
            continue;
        uint64_t gp =
            static_cast<uint64_t>(pt.find("goodput")->asInt());
        if (pt.find("policy")->asString() == "consistent_hash")
            hash_top = gp;
        else if (pt.find("policy")->asString() == "least_loaded")
            least_top = gp;
    }
    std::printf("At %.0f rps: least_loaded goodput %llu vs "
                "consistent_hash %llu (%+lld)\n",
                ladder[3], static_cast<unsigned long long>(least_top),
                static_cast<unsigned long long>(hash_top),
                static_cast<long long>(least_top) -
                    static_cast<long long>(hash_top));

    {
        const char *env = std::getenv("BW_BENCH_JSON");
        std::string path = env ? env : "BENCH_cluster_sweep.json";
        Json doc = Json::object();
        doc.set("schema", "bw.cluster_sweep/1");
        doc.set("harness", "cluster_serve");
        doc.set("engines", sg.engines);
        doc.set("config", sg.config.name);
        doc.set("queue_depth", static_cast<uint64_t>(sg.engine.queueDepth));
        doc.set("deadline_ms", sg.engine.defaultDeadlineMs);
        doc.set("seed", st.seed);
        doc.set("duration_s", st.durationS);
        doc.set("goodput_least_loaded_at_peak", least_top);
        doc.set("goodput_consistent_hash_at_peak", hash_top);
        doc.set("points", std::move(points));
        writeJsonFile(path, doc);
        std::printf("Sweep JSON written to %s\n", path.c_str());
    }

    // --- Phase 3: live threaded smoke on the demo cluster. ---
    cluster.start();
    unsigned submitted = 0, shed = 0;
    std::vector<std::future<serve::Response>> futs;
    for (const ClusterRequest &req : trace) {
        if (submitted + shed >= live_requests)
            break;
        Expected<std::future<serve::Response>> f =
            cluster.submitTimed(req.model, req.steps, req.deadlineMs);
        if (f.ok()) {
            futs.push_back(std::move(f.value()));
            ++submitted;
        } else {
            ++shed;
        }
    }
    cluster.drain();
    unsigned completed = 0;
    for (auto &f : futs)
        completed += f.get().status.ok();
    std::printf("\nLive smoke: %u submitted, %u shed/rejected at the "
                "front door, %u completed\n",
                submitted, shed, completed);

    // Hold the endpoint open so external scrapers can't race our exit.
    if (const char *linger = std::getenv("BW_METRICS_LINGER_S")) {
        if (http.running()) {
            double hold_s = std::atof(linger);
            std::printf("Metrics endpoint lingering %.1f s...\n", hold_s);
            std::fflush(stdout);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(hold_s));
        }
    }
    return 0;
}
