/**
 * @file
 * Prometheus text-exposition checker: validates a scraped /metrics
 * document (file argument, or stdin when absent) against format 0.0.4
 * syntax and the histogram invariants enforced by
 * metrics::validatePrometheusText(). Exit 0 on a valid document, 1 on
 * the first violation (printed to stderr). Used by the CI metrics
 * smoke job to check what the live endpoint actually serves; the same
 * validator runs in the unit tests without networking.
 *
 *   $ curl -s localhost:9100/metrics | ./promcheck
 *   $ ./promcheck scrape.txt
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bw/bw.h"

int
main(int argc, char **argv)
{
    std::string text;
    if (argc > 1) {
        std::ifstream in(argv[1], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "promcheck: cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    } else {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        text = ss.str();
    }

    bw::Status st = bw::metrics::validatePrometheusText(text);
    if (!st.ok()) {
        std::fprintf(stderr, "promcheck: INVALID: %s\n",
                     st.message().c_str());
        return 1;
    }

    // A scrape with no samples is syntactically fine but means the
    // producer published nothing — treat it as a smoke-test failure.
    size_t samples = 0;
    std::istringstream lines(text);
    for (std::string line; std::getline(lines, line);) {
        if (!line.empty() && line[0] != '#')
            ++samples;
    }
    if (samples == 0) {
        std::fprintf(stderr, "promcheck: INVALID: no sample lines\n");
        return 1;
    }
    std::printf("promcheck: OK (%zu sample lines)\n", samples);
    return 0;
}
