/**
 * @file
 * Synthesis specialization in action (Section VI): given a model's
 * dimensions, explore native-dim/lanes/tile-engine configurations for
 * each FPGA generation, then show the measured effect of specializing
 * the native dimension to the model versus running on the generic
 * BW_S10 instance.
 *
 *   $ ./synthesis_explorer [model_dim]
 */

#include <cstdio>
#include <cstdlib>

#include "bw/bw.h"

using namespace bw;

namespace {

/** Steady-state GRU cycles/step on a configuration. */
Cycles
gruPerStep(unsigned hidden, const NpuConfig &cfg)
{
    Rng rng(1);
    Session s = Session::compile(
        makeGru(randomGruWeights(hidden, hidden, rng)), cfg);
    return s.time(25).steadyStateIterationCycles();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned dim = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1]))
                            : 1700;

    std::printf("Exploring configurations for a %ux%u-matrix model\n\n",
                dim, dim);
    TextTable t({"Device", "Native", "Lanes", "Tiles", "ALM%", "M20K%",
                 "DSP%", "Peak TFLOPS", "Padding waste"});
    for (const FpgaDevice &dev :
         {FpgaDevice::stratixVD5(), FpgaDevice::arria10_1150(),
          FpgaDevice::stratix10_280()}) {
        ExplorerResult r = exploreConfig(dim, dev);
        t.addRow({dev.name, std::to_string(r.config.nativeDim),
                  std::to_string(r.config.lanes),
                  std::to_string(r.config.tileEngines),
                  fmtF(r.estimate.almPct, 0), fmtF(r.estimate.m20kPct, 0),
                  fmtF(r.estimate.dspPct, 0),
                  fmtF(r.estimate.peakTflops, 1),
                  fmtPct(r.paddingWaste)});
    }
    std::printf("%s\n", t.render().c_str());

    // Measure the specialization payoff on the timing simulator: a GRU
    // whose dimension is a poor fit for BW_S10's 400-wide tiles versus
    // an instance whose native dimension divides the model.
    unsigned awkward = 2816; // 7.04 native tiles on BW_S10
    NpuConfig generic = NpuConfig::bwS10();
    Cycles generic_cycles = gruPerStep(awkward, generic);

    NpuConfig specialized = generic;
    specialized.name = "BW_S10_n352";
    specialized.nativeDim = 352; // 8 exact tiles of 2816
    specialized.lanes = 32;
    specialized.tileEngines = 8; // 8*352*32 = 90,112 MACs (~same budget)
    // Same physical SRAM: capacity in native-tile equivalents scales
    // with (400/352)^2.
    specialized.mrfSize = 395;
    Cycles special_cycles = gruPerStep(awkward, specialized);

    RnnLayerSpec layer{RnnKind::Gru, awkward, 1, awkward};
    auto util = [&](Cycles per_step, const NpuConfig &c) {
        return 100.0 * static_cast<double>(layer.opsPerStep()) /
               (static_cast<double>(per_step) * c.opsPerCycle());
    };
    std::printf("Specializing the native dimension to a GRU h=%u:\n",
                awkward);
    std::printf("  %-12s N=%-4u %llu cycles/step, %.1f%% of peak\n",
                generic.name.c_str(), generic.nativeDim,
                static_cast<unsigned long long>(generic_cycles),
                util(generic_cycles, generic));
    std::printf("  %-12s N=%-4u %llu cycles/step, %.1f%% of peak\n",
                specialized.name.c_str(), specialized.nativeDim,
                static_cast<unsigned long long>(special_cycles),
                util(special_cycles, specialized));
    std::printf("\n\"Aligning the native vector dimension to parameters "
                "of the model tends to\nminimize padding and waste "
                "during model evaluation.\" (Section VI)\n");
    return 0;
}
