/**
 * @file
 * Real-time speech serving scenario (the paper's motivating workload):
 * a DeepSpeech-class GRU served as a BW hardware microservice with no
 * batching, versus the same model behind a GPU batching queue. Requests
 * arrive as a Poisson stream; the example reports the latency
 * distribution each discipline delivers and the batch sizes the GPU
 * needs to stay ahead of the offered load. The BW row is produced by
 * the serving engine's deterministic virtual-time replay — the same
 * admission/dispatch machinery the threaded engine runs — which
 * matches the analytic serveUnbatched() model.
 *
 * Set BW_STATS_JSON=<path> to also write the full comparison as a
 * machine-readable JSON document.
 *
 *   $ ./speech_service [rate_rps]
 */

#include <cstdio>
#include <cstdlib>

#include "bw/bw.h"

using namespace bw;

int
main(int argc, char **argv)
{
    double rate = argc > 1 ? std::atof(argv[1]) : 300.0;

    // A DeepSpeech-like utterance slice: GRU h=1024 over 100 timesteps.
    RnnLayerSpec layer{RnnKind::Gru, 1024, 100, 1024};
    std::printf("Workload: %s per request, Poisson %.0f req/s for 30 s "
                "of simulated time\n\n",
                layer.label().c_str(), rate);

    // --- BW microservice: one Session wraps compile + timing; the
    //     serving engine replays the arrival trace in virtual time. ---
    NpuConfig cfg = NpuConfig::bwS10();
    Rng rng(1);
    Session session = Session::compile(
        makeGru(randomGruWeights(layer.hidden, layer.hidden, rng)), cfg);
    auto perf = session.time(layer.timeSteps);
    double bw_service_ms = perf.latencyMs(cfg);

    // Datacenter network: the accelerator is a bump-in-the-wire NIC
    // neighbor — tens of microseconds round trip (Section II-A).
    double network_ms = 0.05;

    Rng arr_rng(7);
    auto arrivals = poissonArrivals(rate, 30.0, arr_rng);

    serve::EngineOptions bw_opts;
    bw_opts.policy = serve::DispatchPolicy::Unbatched;
    bw_opts.networkMs = network_ms;
    bw_opts.queueDepth = arrivals.size(); // unbounded for the load curve
    auto engine = session.serve(bw_opts);
    ServeStats bw_stats = engine->replay(arrivals, layer.timeSteps);

    // --- GPU service: batching queue in front of the modeled Titan
    //     Xp. ---
    GpuModel gpu = GpuModel::titanXp();
    auto gpu_ms = [&](unsigned batch) {
        return gpuRnnInference(gpu, layer, batch).latencyMs;
    };
    ServeStats gpu_nobatch = serveBatched(arrivals, 1, 0.0, gpu_ms);
    ServeStats gpu_batch8 = serveBatched(arrivals, 8, 5.0, gpu_ms);

    TextTable t({"Service", "mean ms", "p50 ms", "p95 ms", "p99 ms",
                 "max ms", "req/s", "mean batch"});
    auto add = [&](const char *name, const ServeStats &s) {
        t.addRow({name, fmtF(s.meanLatencyMs, 2), fmtF(s.p50LatencyMs, 2),
                  fmtF(s.p95LatencyMs, 2), fmtF(s.p99LatencyMs, 2),
                  fmtF(s.maxLatencyMs, 2), fmtF(s.throughputRps, 0),
                  fmtF(s.meanBatch, 1)});
    };
    add("BW NPU (no batching)", bw_stats);
    add("Titan Xp (batch=1)", gpu_nobatch);
    add("Titan Xp (batch<=8, 5ms timeout)", gpu_batch8);
    std::printf("%s\n", t.render().c_str());

    std::printf("BW single-request service time: %.2f ms (%.1f%% of "
                "peak); GPU batch-1 service time:\n%.2f ms — the GPU "
                "must batch to keep up with the offered load, paying "
                "queueing\nand batch-formation latency that the "
                "single-request NPU never incurs.\n",
                bw_service_ms,
                100.0 * perf.utilization(cfg, layer.totalOps()),
                gpu_ms(1));

    // Machine-readable stats alongside the table.
    if (const char *path = std::getenv("BW_STATS_JSON")) {
        Json doc = Json::object();
        doc.set("workload", layer.label());
        doc.set("rate_rps", rate);
        doc.set("bw_service_ms", bw_service_ms);
        doc.set("network_ms", network_ms);
        doc.set("bw_unbatched", bw_stats.toJson());
        doc.set("gpu_batch1", gpu_nobatch.toJson());
        doc.set("gpu_batch8_5ms", gpu_batch8.toJson());
        writeJsonFile(path, doc);
        std::printf("\nStats JSON written to %s\n", path);
    }
    return 0;
}
