/**
 * @file
 * A tour of the BW NPU ISA (Table II): hand-write the paper's xW/gate
 * chains in assembly, assemble and validate them, execute on the
 * functional simulator, round-trip through the binary encoding, and
 * inspect the mega-SIMD expansion a single instruction performs.
 *
 *   $ ./isa_tour
 */

#include <cstdio>

#include "bw/bw.h"

using namespace bw;

int
main()
{
    // A small NPU so the numbers are easy to follow.
    NpuConfig cfg;
    cfg.name = "tour";
    cfg.nativeDim = 8;
    cfg.lanes = 2;
    cfg.tileEngines = 2;
    cfg.mrfSize = 32;
    cfg.mrfIndexSpace = 128;
    cfg.initialVrfSize = 32;
    cfg.addSubVrfSize = 32;
    cfg.multiplyVrfSize = 32;
    cfg.precision = BfpFormat{1, 5, 7};

    // One gate of the paper's LSTM kernel, in assembly: read x, multiply
    // by W, add the bias, squash, and multicast the result.
    const char *src = R"(
        .def ivrf_xt   0
        .def mrf_W     0
        .def asvrf_b   0
        .def ivrf_gate 1
        s_wr rows, 1
        s_wr cols, 1
        v_rd ivrf, ivrf_xt
        mv_mul mrf_W
        vv_add asvrf_b
        v_sigm
        v_wr ivrf, ivrf_gate
        v_wr mulvrf, 0
        end_chain
    )";

    Program prog = assemble(src);
    checkProgram(prog, cfg);
    std::printf("Assembled %zu instructions; disassembly:\n%s\n",
                prog.size(), disassemble(prog).c_str());

    // Execute it.
    FuncMachine m(cfg);
    Rng rng(1);
    FMat w(8, 8);
    fillUniform(w, rng, -1.0f, 1.0f);
    m.loadMrfTile(0, w);
    FVec bias(8, 0.25f);
    m.loadVrf(MemId::AddSubVrf, 0, bias);
    FVec x = {0.5f, -0.5f, 1.0f, -1.0f, 0.25f, 0.0f, 2.0f, -2.0f};
    m.loadVrf(MemId::InitialVrf, 0, x);
    m.run(prog);

    FVec gate = m.peekVrf(MemId::InitialVrf, 1);
    FVec ref = gemvRef(w, x);
    std::printf("gate = sigm(W x + b):\n");
    for (int i = 0; i < 8; ++i) {
        float want = 1.0f / (1.0f + std::exp(-(ref[i] + 0.25f)));
        std::printf("  [%d] npu=%+.4f  float=%+.4f\n", i, gate[i], want);
    }

    // Binary round trip (the deployment format of Section II-B).
    auto image = encodeProgram(prog);
    Program back = decodeProgram(image);
    std::printf("\nBinary image: %zu bytes; decode round-trip %s\n",
                image.size(),
                back.instructions() == prog.instructions() ? "exact"
                                                           : "BROKEN");

    // Mega-SIMD expansion on the real BW_S10: how many primitive ops a
    // single compound instruction dispatches (Section IV-C).
    NpuConfig s10 = NpuConfig::bwS10();
    ProgramBuilder b;
    b.tile(8, 8); // the largest GRU's recurrent matrix: 3200x3200 padded
    b.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 8);
    ProgramStats stats = analyzeProgram(b.build(), s10);
    std::printf("\nOn %s, one 8x8-tile mv_mul dispatches %s primitive "
                "ops\n(the paper's \"over 7 million operations from a "
                "single instruction\").\n",
                s10.name.c_str(),
                fmtI(stats.maxOpsPerInstruction).c_str());
    return 0;
}
