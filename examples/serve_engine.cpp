/**
 * @file
 * The concurrent serving engine end to end: a GRU compiled into a
 * bw::Session and served by a pool of accelerator replicas behind a
 * bounded request queue, driven by multi-threaded clients. Shows
 * admission control (queue-full rejections), per-request deadlines,
 * graceful drain, the thread-safe stats collector, and the
 * deterministic virtual-time replay that ties the engine to the
 * paper-validated analytic serving model.
 *
 * Environment: BW_SERVE_REPLICAS, BW_SERVE_QUEUE_DEPTH,
 * BW_SERVE_POLICY, BW_SERVE_MAX_BATCH, BW_SERVE_TIMEOUT_MS and
 * BW_SERVE_TIMESCALE override the engine options; BW_STATS_JSON=<path>
 * writes the stats document; BW_SERVE_TRACE=<path> writes a
 * Perfetto-loadable Chrome trace of queue wait vs. service per worker,
 * overlaid with sampled metric counter tracks.
 *
 * Live metrics: the engine and the timing simulator publish into a
 * metrics::Registry. BW_METRICS_PORT=<port> serves it over HTTP
 * (GET /metrics Prometheus text, /metrics.json; port 0 picks an
 * ephemeral port, printed on stdout); BW_METRICS_PERIOD_MS sets the
 * background sampler period (default 25 ms); BW_METRICS_LINGER_S keeps
 * the endpoint up for that many seconds after the run so scrapers
 * can't race the exit; BW_METRICS_JSON=<path> writes the JSON
 * exposition; BW_BENCH_JSON=<path> overrides the machine-readable
 * BENCH_serve_engine.json artifact.
 *
 * Span tracing: every request is head-sampled at admission
 * (BW_SPAN_SAMPLE traces 1 in N; default every request) and records a
 * request/queue_wait/dispatch/execute/chain[i] span tree.
 * BW_SPANS_JSON=<path> writes the span-tree export (analyze with
 * bw_spans; merge into the Perfetto timeline with bw_trace merge), and
 * sampled trace ids appear as latency-histogram exemplars in
 * /metrics.json.
 *
 * Flight recorder + SLO: every submission attempt lands in the
 * tail-sampling flight recorder (BW_FLIGHT_WINDOW_MS /
 * BW_FLIGHT_SLOWEST_K / BW_FLIGHT_RING tune promotion); anomalies plus
 * the slowest-K per window export via BW_FLIGHT_JSON=<path> with full
 * reconstructed span trees (analyze with bw_spans flight). An SLO
 * burn-rate monitor (BW_SLO_* tune objectives and windows) classifies
 * requests by deadline and serves /slo.json; BW_SLO_JSON=<path> writes
 * the same document. With BW_METRICS_PORT set, Engine::exposeDebug
 * also mounts /debug/queue, /debug/replicas, /debug/config,
 * /debug/errors and /debug/flight, and /healthz turns 503
 * {"draining":true} once the engine drains.
 *
 *   $ ./serve_engine [clients] [requests_per_client]
 *   $ ./serve_engine --help
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bw/bw.h"

using namespace bw;

int
main(int argc, char **argv)
{
    if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                     std::strcmp(argv[1], "-h") == 0)) {
        std::printf(
            "usage: serve_engine [clients] [requests_per_client]\n"
            "\n"
            "Drive the concurrent serving engine with multi-threaded\n"
            "clients, then replay a fixed Poisson schedule in virtual\n"
            "time against the analytic model.\n"
            "\n"
            "Environment variables (shared across all bw binaries):\n%s",
            renderEnvVarHelp().c_str());
        return 0;
    }
    unsigned clients = argc > 1 ? std::atoi(argv[1]) : 4;
    unsigned per_client = argc > 2 ? std::atoi(argv[2]) : 16;

    // A small GRU so functional service is fast enough to stress the
    // queue from many client threads.
    NpuConfig cfg = NpuConfig::bwS10();
    Rng rng(3);
    const unsigned hidden = 128, steps = 10;
    Session session =
        Session::compile(makeGru(randomGruWeights(hidden, hidden, rng)),
                         cfg);

    // Live metrics: the engine, the timing simulator, and a background
    // sampler all publish into one registry.
    metrics::Registry registry;
    session.timer().setMetricsRegistry(&registry);

    // Span tracing: head-sampled per request (BW_SPAN_SAMPLE), span
    // trees exported via BW_SPANS_JSON, exemplars into /metrics.json.
    obs::SpanTracer spans(obs::SpanTracerOptions::fromEnv());

    // Tail sampling: every request lands in the flight recorder; only
    // anomalies and the slowest-K per window are promoted to export.
    obs::FlightRecorder flight(obs::FlightRecorderOptions::fromEnv());

    // SLO burn-rate monitor: per-deadline-class latency/availability
    // SLIs over fast and slow windows, bw_slo_* metrics + /slo.json.
    serve::SloMonitor slo(serve::SloOptions::fromEnv());
    slo.bindMetrics(&registry);

    serve::EngineOptions opts;
    opts.replicas = 2;
    opts.queueDepth = 32;
    opts.networkMs = 0.05;
    opts = serve::EngineOptions::fromEnv(opts);
    opts.metricsRegistry = &registry;
    opts.spanTracer = &spans;
    opts.flightRecorder = &flight;
    opts.sloMonitor = &slo;
    auto engine = session.serve(opts);

    std::printf("Engine: %u replicas, queue depth %zu, %s dispatch, "
                "model %s\n",
                opts.replicas, opts.queueDepth,
                serve::dispatchPolicyName(opts.policy),
                session.model().name.c_str());

    metrics::MetricsHttpServer http(registry);
    engine->exposeDebug(http); // /slo.json + /debug + readiness probe
    if (const char *port_env = std::getenv("BW_METRICS_PORT")) {
        Status st = http.start(
            static_cast<uint16_t>(std::atoi(port_env)));
        if (st.ok())
            std::printf("Metrics endpoint: http://127.0.0.1:%u/metrics\n",
                        http.port());
        else
            std::printf("Metrics endpoint unavailable: %s\n",
                        st.message().c_str());
    }

    double period_ms = 25.0;
    if (const char *p = std::getenv("BW_METRICS_PERIOD_MS"))
        period_ms = std::atof(p);
    metrics::Sampler sampler(registry, period_ms, engine->epoch());
    sampler.start();

    // --- Concurrent clients submitting functional requests. ---
    std::vector<std::thread> threads;
    std::atomic<unsigned> rejected{0};
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            Rng crng(100 + c);
            std::vector<std::future<serve::Response>> futs;
            for (unsigned i = 0; i < per_client; ++i) {
                std::vector<FVec> xs(steps, FVec(hidden));
                for (FVec &x : xs)
                    fillUniform(x, crng, -0.5f, 0.5f);
                auto r = engine->submit(std::move(xs));
                if (r.ok())
                    futs.push_back(r.take());
                else
                    ++rejected;
            }
            for (auto &f : futs)
                f.wait();
        });
    }
    for (auto &t : threads)
        t.join();
    engine->drain();
    sampler.stop();

    ServeStats s = engine->stats();
    TextTable t({"metric", "value"});
    t.addRow({"completed", fmtI(s.requests)});
    t.addRow({"rejected (QUEUE_FULL)", fmtI(rejected.load())});
    t.addRow({"mean latency ms", fmtF(s.meanLatencyMs, 3)});
    t.addRow({"p99 latency ms", fmtF(s.p99LatencyMs, 3)});
    t.addRow({"throughput req/s", fmtF(s.throughputRps, 0)});
    std::printf("\n%u clients x %u requests (functional, wall-clock):\n%s\n",
                clients, per_client, t.render().c_str());

    // --- Deterministic virtual-time replay: the same engine machinery
    //     on a fixed Poisson trace, reproducing the analytic model. ---
    Rng arr_rng(7);
    auto arrivals = poissonArrivals(400.0, 10.0, arr_rng);
    double service_ms = session.serviceMs(steps);

    serve::EngineOptions vopts;
    vopts.serviceMsOverride = service_ms;
    vopts.networkMs = 0.05;
    vopts.queueDepth = arrivals.size();
    serve::Engine virt(vopts);
    ServeStats replayed = virt.replay(arrivals, steps);
    ServeStats analytic = serveUnbatched(arrivals, service_ms, 0.05);

    std::printf("Virtual-time replay vs analytic serveUnbatched() "
                "(%zu requests, %.3f ms service):\n",
                arrivals.size(), service_ms);
    std::printf("  replay:   mean %.4f ms  p99 %.4f ms\n",
                replayed.meanLatencyMs, replayed.p99LatencyMs);
    std::printf("  analytic: mean %.4f ms  p99 %.4f ms\n",
                analytic.meanLatencyMs, analytic.p99LatencyMs);

    if (const char *path = std::getenv("BW_STATS_JSON")) {
        Json doc = engine->statsJson();
        doc.set("replay", replayed.toJson());
        doc.set("analytic", analytic.toJson());
        writeJsonFile(path, doc);
        std::printf("\nStats JSON written to %s\n", path);
    }
    if (const char *path = std::getenv("BW_SPANS_JSON")) {
        Json span_doc = obs::spanTreeJson(spans);
        writeJsonFile(path, span_doc);
        std::printf("Span trees (%lld traces) written to %s\n",
                    static_cast<long long>(
                        span_doc.find("traces")->size()),
                    path);
    }
    // Flight export: the engine is drained, so the recorder rings are
    // quiescent and safe to collect.
    {
        std::vector<obs::FlightRecord> promoted = flight.promoted();
        std::printf("Flight recorder: %llu recorded, %zu promoted "
                    "(%llu dropped to ring wrap)\n",
                    static_cast<unsigned long long>(flight.recorded()),
                    promoted.size(),
                    static_cast<unsigned long long>(flight.dropped()));
        if (const char *path = std::getenv("BW_FLIGHT_JSON")) {
            Expected<Json> doc = engine->flightJson();
            if (doc.ok()) {
                writeJsonFile(path, doc.value());
                std::printf("Flight JSON written to %s\n", path);
            }
        }
    }
    if (const char *path = std::getenv("BW_SLO_JSON")) {
        writeJsonFile(path, slo.sloJson());
        std::printf("SLO JSON written to %s\n", path);
    }
    if (const char *path = std::getenv("BW_SERVE_TRACE")) {
        // Engine timestamps are microseconds; clock 1.0 keeps them so.
        // Sampled metrics overlay the waterfall as counter tracks, and
        // sampled requests as async span events.
        Json trace_doc = obs::chromeTraceJson(engine->trace(), 1.0);
        metrics::appendCounterEvents(trace_doc, sampler.samples());
        obs::appendSpanEvents(trace_doc, spans.collect());
        writeJsonFile(path, trace_doc);
        std::printf("Chrome trace written to %s\n", path);
    }
    if (const char *path = std::getenv("BW_METRICS_JSON")) {
        writeJsonFile(path, metrics::metricsJson(registry));
        std::printf("Metrics JSON written to %s\n", path);
    }

    // Machine-readable artifact (BW_BENCH_JSON overrides the path).
    {
        const char *env = std::getenv("BW_BENCH_JSON");
        std::string path = env ? env : "BENCH_serve_engine.json";
        Json doc = Json::object();
        doc.set("harness", "serve_engine");
        doc.set("clients", clients);
        doc.set("requests_per_client", per_client);
        doc.set("completed", s.requests);
        doc.set("rejected", rejected.load());
        doc.set("mean_latency_ms", s.meanLatencyMs);
        doc.set("p99_latency_ms", s.p99LatencyMs);
        doc.set("throughput_rps", s.throughputRps);
        doc.set("replay", replayed.toJson());
        doc.set("analytic", analytic.toJson());
        doc.set("metrics", metrics::metricsJson(registry));
        writeJsonFile(path, doc);
        std::printf("Bench JSON written to %s\n", path.c_str());
    }

    // Hold the endpoint open so external scrapers can't race our exit.
    if (const char *linger = std::getenv("BW_METRICS_LINGER_S")) {
        if (http.running()) {
            double hold_s = std::atof(linger);
            std::printf("Metrics endpoint lingering %.1f s...\n", hold_s);
            std::fflush(stdout);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(hold_s));
        }
    }
    return 0;
}
