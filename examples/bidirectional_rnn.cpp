/**
 * @file
 * Multi-FPGA deployment (Sections II-A, V-A): the paper's production
 * example of a bidirectional RNN split across two accelerators, with
 * the server invoking the forward and backward directions in parallel
 * and concatenating their outputs. Also shows the pinning-capacity
 * query that drives partitioning decisions.
 *
 *   $ ./bidirectional_rnn
 */

#include <cstdio>

#include "bw/bw.h"

using namespace bw;

int
main()
{
    NpuConfig cfg = NpuConfig::bwS10();
    Rng rng(11);

    // How many accelerators do different models need for pinning?
    std::printf("Model pinning capacity on %s (%u tile equivalents):\n\n",
                cfg.name.c_str(), cfg.mrfSize);
    TextTable t({"Model", "Weights (M elems)", "FPGAs to pin"});
    for (unsigned h : {1024u, 2048u, 2816u, 4096u, 8192u}) {
        GirGraph g = makeGru(randomGruWeights(h, h, rng));
        uint64_t elems = 0;
        for (const GirNode &n : g.nodes()) {
            if (n.op == GirOp::MatMul)
                elems += n.weight.rows() * n.weight.cols();
        }
        t.addRow({"GRU h=" + std::to_string(h),
                  fmtF(static_cast<double>(elems) / 1e6, 1),
                  std::to_string(fpgasNeededForPinning(g, cfg))});
    }
    std::printf("%s\n", t.render().c_str());

    // The production deployment: bidirectional GRU h=1400 over 50
    // steps, one direction per FPGA — one bw::Session per accelerator,
    // with the server taking the max of both and one network round
    // trip for invoke/gather.
    const unsigned hidden = 1400, steps = 50;
    GruWeights fwd = randomGruWeights(hidden, hidden, rng);
    GruWeights bwd = randomGruWeights(hidden, hidden, rng);

    Session fwd_fpga = Session::compile(makeGru(fwd), cfg);
    Session bwd_fpga = Session::compile(makeGru(bwd), cfg);
    double fwd_ms = fwd_fpga.serviceMs(steps);
    double bwd_ms = bwd_fpga.serviceMs(steps);

    // The runtime helper models the same deployment in one call; the
    // two Sessions above reproduce it exactly.
    BidirServeResult r = serveBidirectionalGru(fwd, bwd, steps, cfg);

    std::printf("Bidirectional GRU h=%u, %u timesteps, split across two "
                "%s accelerators:\n",
                hidden, steps, cfg.name.c_str());
    std::printf("  forward FPGA:  %.3f ms\n", fwd_ms);
    std::printf("  backward FPGA: %.3f ms\n", bwd_ms);
    std::printf("  end-to-end:    %.3f ms "
                "(max of both + %.0f us network invoke/gather)\n",
                r.latencyMs, r.networkMs * 1e3);
    std::printf("  sequential on one FPGA would cost %.3f ms "
                "(%.2fx slower)\n\n",
                fwd_ms + bwd_ms, (fwd_ms + bwd_ms) / r.latencyMs);
    std::printf("\"We have split bidirectional RNNs across two "
                "independent FPGAs, with the server\ninvoking the "
                "forward and backward RNN FPGAs separately and "
                "concatenating their\noutputs.\" (Section II-A)\n");
    return 0;
}
