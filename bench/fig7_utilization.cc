/**
 * @file
 * Regenerates Fig. 7: hardware utilization (fraction of peak TFLOPS)
 * across the DeepBench RNN inference experiments at batch 1, BW_S10 vs
 * Titan Xp, with an ASCII bar rendering and the paper's values inline.
 * Also emits a machine-readable BENCH_fig7_utilization.json (path
 * overridable via BW_BENCH_JSON).
 */

#include <cstdio>

#include "bench_util.h"
#include "bw/bw.h"

using namespace bw;
using namespace bw::bench;

namespace {

std::string
bar(double frac, double scale = 60.0)
{
    int n = static_cast<int>(frac * scale + 0.5);
    return std::string(static_cast<size_t>(std::max(n, 0)), '#');
}

} // namespace

int
main()
{
    NpuConfig cfg = NpuConfig::bwS10();
    GpuModel gpu = GpuModel::titanXp();

    std::printf("Fig. 7: hardware utilization across DeepBench RNN "
                "inference (batch 1)\n\n");

    Json layers = Json::array();
    for (const auto &row : paper::tableFive()) {
        const RnnLayerSpec &layer = row.layer;
        BwRnnResult bw =
            runBwRnn(layer, cfg, std::min(layer.timeSteps, 60u));
        GpuPerf perf = gpuRnnInference(gpu, layer, 1);
        std::printf("%-18s\n", layer.label().c_str());
        std::printf("  BW    %5.1f%% |%s  (paper %.1f%%)\n",
                    100.0 * bw.utilization, bar(bw.utilization).c_str(),
                    row.bwUtilPct);
        std::printf("  Titan %5.1f%% |%s  (paper %.1f%%)\n\n",
                    100.0 * perf.utilization,
                    bar(perf.utilization).c_str(), row.gpuUtilPct);

        Json j = Json::object();
        j.set("layer", layer.label());
        j.set("bw", toJson(bw));
        j.set("bw_util_paper_pct", row.bwUtilPct);
        j.set("gpu_utilization", perf.utilization);
        j.set("gpu_util_paper_pct", row.gpuUtilPct);
        layers.push(j);
    }

    std::printf("Shape checks: BW utilization rises with hidden "
                "dimension (up to ~75%% on the\nlargest GRU) and "
                "exceeds the GPU's everywhere; the GPU stays under 4%% "
                "at batch 1.\n");

    Json doc = Json::object();
    doc.set("harness", "fig7_utilization");
    doc.set("config", "BW_S10");
    doc.set("layers", layers);
    std::string path = benchJsonPath("fig7_utilization");
    writeJsonFile(path, doc);
    std::printf("Bench JSON written to %s\n", path.c_str());
    return 0;
}
