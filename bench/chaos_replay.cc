/**
 * @file
 * Chaos-replay benchmark: the failure-domain plane's determinism and
 * hedging-value gates, pinned as a machine-readable artifact.
 *
 * Three runs of one seeded ~25k-request trace through the demo's
 * heterogeneous three-shard cluster:
 *
 *   G0  no chaos — the healthy-baseline goodput.
 *   G1  a seeded fault schedule (crashes, hangs, slow replicas,
 *       partitions), replayed TWICE; the harness gates that the two
 *       replays export byte-identical bw.route/1, bw.incident/1,
 *       bw.slo/1 and per-shard bw.flight/1 documents — the core
 *       contract that makes an incident reproducible from its seed.
 *   G2  the same schedule with hedged requests armed; the harness
 *       gates that hedging recovers goodput (G2 > G1), sheds fault
 *       losses (failed+expired strictly below G1), and that hedge
 *       wins and incidents are both nonzero. Rescues surface in the
 *       completed-latency tail — p99 rises toward hedgeMs + service,
 *       still inside the tightest deadline — while goodput returns
 *       to the healthy baseline. The fleet is sized with failover
 *       headroom (losing one shard leaves ~35% utilization); hedging
 *       pays for itself only in that regime, which is the regime any
 *       real deployment runs in.
 *
 * Everything is virtual time, so every leaf of the artifact
 * (BENCH_chaos_replay.json, override with BW_BENCH_JSON) is pinned by
 * the bench_compare regression gate with no wall-clock exclusions.
 *
 * Exit codes: 0 = all gates passed, 1 = a gate failed.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bw/bw.h"

using namespace bw;
using namespace bw::cluster;

namespace {

/** The demo fleet: three S10 shards and one S5, least-loaded routing
 *  so every shard takes every model (faults always find traffic) and
 *  losing any one shard still leaves failover headroom — the regime
 *  where hedging pays for itself. */
ClusterOptions
benchOptions()
{
    ClusterOptions co;
    ReplicaGroupSpec s10;
    s10.name = "s10";
    s10.config = NpuConfig::bwS10();
    s10.engines = 3;
    ReplicaGroupSpec s5;
    s5.name = "s5";
    s5.config = NpuConfig::bwS5();
    s5.engines = 1;
    for (ReplicaGroupSpec *g : {&s10, &s5}) {
        g->engine.queueDepth = 32;
        g->engine.networkMs = 0.05;
        g->engine.defaultDeadlineMs = 50.0;
    }
    co.groups = {s10, s5};
    co.router.policy = RoutePolicy::LeastLoaded;
    co.weightCacheTiles = 128;
    return co;
}

void
addModels(Cluster &c)
{
    c.addTimedModel("dnn-hot", 0.8, 24);
    c.addTimedModel("dnn-warm", 1.5, 24);
    c.addTimedModel("dnn-cold", 2.5, 40);
}

TrafficOptions
benchTraffic()
{
    TrafficOptions t;
    t.baseRps = 1000;
    t.durationS = 10.0;
    t.seed = 42;
    t.diurnalAmplitude = 0.3;
    t.diurnalPeriodS = 10.0;
    t.mix.push_back(ModelMix{0, 8.0, 1, 10.0});
    t.mix.push_back(ModelMix{1, 2.0, 1, 80.0});
    t.mix.push_back(ModelMix{2, 1.0, 1, 0.0});
    return t;
}

ChaosOptions
benchChaos()
{
    ChaosOptions o;
    o.seed = 1947; // a vintage year for valve failures
    o.faultRate = 2.0;
    o.horizonS = 10.0;
    o.meanDurationS = 0.08;
    return o;
}

/** Every export of one replay, serialized for byte comparison. */
struct Exports
{
    std::string route;
    std::string slo;
    std::string incidents;
    std::vector<std::string> flights;
};

Exports
capture(const Cluster &c)
{
    Exports e;
    e.route = c.routeJson().dump();
    e.slo = c.sloJson().dump();
    e.incidents = c.incidentsJson().dump();
    for (unsigned i = 0; i < c.engineCount(); ++i)
        e.flights.push_back(c.engineFlightJson(i).dump());
    return e;
}

bool
identical(const Exports &a, const Exports &b)
{
    if (a.route != b.route || a.slo != b.slo ||
        a.incidents != b.incidents || a.flights.size() != b.flights.size())
        return false;
    for (size_t i = 0; i < a.flights.size(); ++i)
        if (a.flights[i] != b.flights[i])
            return false;
    return true;
}

Json
statsLeaf(const ClusterStats &s)
{
    Json j = Json::object();
    j.set("submitted", s.submitted);
    j.set("shed", s.shed);
    j.set("unavailable", s.unavailable);
    j.set("rejected", s.rejected);
    j.set("expired", s.expired);
    j.set("failed", s.failed);
    j.set("completed", s.completed);
    j.set("hedged", s.hedged);
    j.set("hedge_wins", s.hedgeWins);
    j.set("goodput", s.goodput);
    j.set("p99_latency_ms", s.overall.p99LatencyMs);
    return j;
}

} // namespace

int
main()
{
    bool pass = true;
    std::vector<ClusterRequest> trace = generateTraffic(benchTraffic());
    ChaosSchedule schedule =
        ChaosSchedule::generate(benchChaos(), 4);
    std::printf("chaos_replay: %zu requests, %zu scheduled faults "
                "(seed %llu)\n",
                trace.size(), schedule.faults().size(),
                static_cast<unsigned long long>(schedule.seed()));

    // --- G0: healthy baseline. ---
    Cluster healthy(benchOptions());
    addModels(healthy);
    ClusterStats g0 = healthy.replay(trace);
    std::printf("G0 healthy:        goodput %llu / %llu\n",
                static_cast<unsigned long long>(g0.goodput),
                static_cast<unsigned long long>(g0.submitted));

    // --- G1: chaos, replayed twice, byte-identity gate. ---
    Cluster chaotic(benchOptions());
    addModels(chaotic);
    chaotic.setChaosSchedule(schedule);
    ClusterStats g1 = chaotic.replay(trace);
    Exports first = capture(chaotic);
    ClusterStats g1b = chaotic.replay(trace);
    Exports second = capture(chaotic);
    bool byte_identical = identical(first, second) &&
                          g1.toJson().dump() == g1b.toJson().dump();
    uint64_t incidents = chaotic.incidents().faults();
    std::printf("G1 chaos:          goodput %llu, failed %llu, "
                "expired %llu, %llu incidents, replay-twice %s\n",
                static_cast<unsigned long long>(g1.goodput),
                static_cast<unsigned long long>(g1.failed),
                static_cast<unsigned long long>(g1.expired),
                static_cast<unsigned long long>(incidents),
                byte_identical ? "byte-identical" : "DIVERGED");
    Status inc_valid = obs::validateIncidentJson(chaotic.incidentsJson());
    if (!inc_valid.ok())
        std::fprintf(stderr, "chaos_replay: incident export invalid: %s\n",
                     inc_valid.toString().c_str());
    pass = pass && byte_identical && incidents > 0 && g1.failed > 0 &&
           g1.goodput < g0.goodput && inc_valid.ok();

    // --- G2: chaos + hedging, recovery gate. ---
    ClusterOptions hedge_opts = benchOptions();
    hedge_opts.hedgeMs = 6.0;
    Cluster hedged(hedge_opts);
    addModels(hedged);
    hedged.setChaosSchedule(schedule);
    ClusterStats g2 = hedged.replay(trace);
    std::printf("G2 chaos + hedge:  goodput %llu, hedged %llu, "
                "hedge wins %llu (recovered %+lld vs G1)\n",
                static_cast<unsigned long long>(g2.goodput),
                static_cast<unsigned long long>(g2.hedged),
                static_cast<unsigned long long>(g2.hedgeWins),
                static_cast<long long>(g2.goodput) -
                    static_cast<long long>(g1.goodput));
    pass = pass && g2.hedgeWins > 0 && g2.goodput > g1.goodput &&
           g2.failed + g2.expired < g1.failed + g1.expired;

    Json doc = Json::object();
    doc.set("schema", "bw.chaos_replay/1");
    doc.set("harness", "chaos_replay");
    doc.set("engines", 4);
    doc.set("requests", static_cast<uint64_t>(trace.size()));
    doc.set("chaos_seed", schedule.seed());
    doc.set("scheduled_faults",
            static_cast<uint64_t>(schedule.faults().size()));
    doc.set("incidents", incidents);
    doc.set("byte_identical", byte_identical);
    doc.set("healthy", statsLeaf(g0));
    doc.set("chaos", statsLeaf(g1));
    doc.set("chaos_hedged", statsLeaf(g2));
    std::string path = bench::benchJsonPath("chaos_replay");
    writeJsonFile(path, doc);
    std::printf("\nBench JSON written to %s\n", path.c_str());

    if (!pass) {
        std::fprintf(stderr, "chaos_replay: FAILED (see above)\n");
        return 1;
    }
    std::printf("chaos_replay: all gates passed\n");
    return 0;
}
