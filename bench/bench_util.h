/**
 * @file
 * Shared helpers for the table/figure harnesses: compile-and-time a
 * DeepBench RNN layer on a BW configuration, and percent-difference
 * formatting for measured-vs-paper columns.
 */

#ifndef BW_BENCH_BENCH_UTIL_H
#define BW_BENCH_BENCH_UTIL_H

#include <cstdlib>
#include <string>

#include "bw/bw.h"

namespace bw {
namespace bench {

/** Result of serving one RNN layer on the timing simulator. */
struct BwRnnResult
{
    Cycles totalCycles = 0;
    Cycles perStepCycles = 0;
    double latencyMs = 0;
    double tflops = 0;
    double utilization = 0;
};

/**
 * Compile @p layer for @p cfg (GRU kernels software-pipelined, LSTM
 * kernels per the paper's listing) and run the full timestep count on
 * the timing simulator.
 */
inline BwRnnResult
runBwRnn(const RnnLayerSpec &layer, const NpuConfig &cfg,
         unsigned steps_override = 0)
{
    Rng rng(1);
    GirGraph g =
        layer.kind == RnnKind::Lstm
            ? makeLstm(randomLstmWeights(layer.hidden, layer.inputDim
                                             ? layer.inputDim
                                             : layer.hidden, rng))
            : makeGru(randomGruWeights(layer.hidden, layer.inputDim
                                           ? layer.inputDim
                                           : layer.hidden, rng));
    CompileOptions opts;
    opts.pipelineInputProjections = layer.kind == RnnKind::Gru;
    CompiledModel m = compileGir(g, cfg, opts);

    timing::NpuTiming sim(cfg);
    sim.setTileBeats(m.tileBeats);
    unsigned steps = steps_override ? steps_override : layer.timeSteps;
    auto res = sim.run(m.prologue, m.step, steps);

    BwRnnResult out;
    out.totalCycles = res.totalCycles;
    out.perStepCycles = res.steadyStateIterationCycles();
    // Scale to the layer's true timestep count when a shorter replay
    // was simulated (the steady state is what matters).
    Cycles cycles = steps == layer.timeSteps
                        ? res.totalCycles
                        : out.perStepCycles * layer.timeSteps;
    out.latencyMs = cyclesToMs(cycles, cfg.clockMhz);
    out.tflops = effectiveTflops(layer.totalOps(), cycles, cfg.clockMhz);
    out.utilization = out.tflops / cfg.peakTflops();
    return out;
}

/** Machine-readable form of one layer result (for BENCH_*.json files). */
inline Json
toJson(const BwRnnResult &r)
{
    Json j = Json::object();
    j.set("total_cycles", r.totalCycles);
    j.set("per_step_cycles", r.perStepCycles);
    j.set("latency_ms", r.latencyMs);
    j.set("tflops", r.tflops);
    j.set("utilization", r.utilization);
    return j;
}

/**
 * Destination of the repro-scorecard JSON artifact: the value of
 * BW_SCORECARD_JSON when set, else BENCH_scorecard.json in the working
 * directory.
 */
inline std::string
scorecardJsonPath()
{
    const char *env = std::getenv("BW_SCORECARD_JSON");
    return env ? env : "BENCH_scorecard.json";
}

/**
 * Destination of a harness's machine-readable artifact: the value of
 * BW_BENCH_JSON when set, else BENCH_<name>.json in the working
 * directory.
 */
inline std::string
benchJsonPath(const std::string &name)
{
    const char *env = std::getenv("BW_BENCH_JSON");
    return env ? env : "BENCH_" + name + ".json";
}

/** "+3.1%" style delta between a measured and a published value. */
inline std::string
pctDelta(double measured, double published)
{
    if (published == 0.0)
        return "n/a";
    double d = 100.0 * (measured - published) / published;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", d);
    return buf;
}

} // namespace bench
} // namespace bw

#endif // BW_BENCH_BENCH_UTIL_H
