/**
 * @file
 * Regenerates Fig. 8: utilization scaling with batch size. BW executes
 * a single input at a time, so its utilization is flat in batch (the
 * per-request cycles are batch-invariant and requests serve back to
 * back); GPU utilization grows roughly proportionally with batch until
 * it becomes compute bound. Batch sizes 1, 2, 4 (DeepBench's inference
 * cap) and 32 (the paper's comparison point).
 */

#include <cstdio>

#include "bench_util.h"
#include "bw/bw.h"

using namespace bw;
using namespace bw::bench;

int
main()
{
    NpuConfig cfg = NpuConfig::bwS10();
    GpuModel gpu = GpuModel::titanXp();
    const std::vector<unsigned> batches = {1, 2, 4, 32};

    std::printf("Fig. 8: utilization scaling with batch size "
                "(BW constant; GPU ~ proportional)\n\n");

    TextTable t({"Benchmark", "Device", "b=1", "b=2", "b=4", "b=32"});
    for (const auto &layer : batchScalingSuite()) {
        // BW: the microarchitecture runs one input at a time — batched
        // requests are served sequentially at identical per-request
        // cycles, so utilization does not move.
        BwRnnResult bw =
            runBwRnn(layer, cfg, std::min(layer.timeSteps, 60u));
        std::vector<std::string> bw_row = {layer.label(), "BW"};
        for (unsigned b : batches) {
            (void)b;
            bw_row.push_back(fmtPct(bw.utilization));
        }
        t.addRow(bw_row);

        std::vector<std::string> gpu_row = {"", gpu.name};
        for (unsigned b : batches) {
            GpuPerf perf = gpuRnnInference(gpu, layer, b);
            gpu_row.push_back(fmtPct(perf.utilization));
        }
        t.addRow(gpu_row);

        // Latency context: what batching does to the time the first
        // request in the batch waits (Section VII-B3's SLA point).
        std::vector<std::string> lat_row = {"", "  (GPU ms/batch)"};
        for (unsigned b : batches) {
            GpuPerf perf = gpuRnnInference(gpu, layer, b);
            lat_row.push_back(fmtF(perf.latencyMs, 1));
        }
        t.addRow(lat_row);
        t.addRule();
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Paper shape: at batch 4 the Titan Xp remains under "
                "13%% utilization even for\nlarge RNNs; batch 32 "
                "raises GPU utilization but such batches violate "
                "serving SLAs.\nBW's effective utilization is higher "
                "than the GPU's for all benchmarks until a\nbatch size "
                "of 32 is applied.\n");
    return 0;
}
