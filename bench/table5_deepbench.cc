/**
 * @file
 * Regenerates Table V: DeepBench RNN inference at batch 1 on BW_S10 —
 * SDM latency (critical-path model), BW latency/TFLOPS/utilization
 * (timing simulator), and Titan Xp latency/TFLOPS/utilization (GPU
 * model) — with the paper's published values inline. Also prints the
 * Table IV hardware-specification block and the Section VII-B4 power
 * efficiency estimate.
 */

#include <cstdio>

#include "bench_util.h"
#include "bw/bw.h"

using namespace bw;
using namespace bw::bench;

int
main()
{
    NpuConfig cfg = NpuConfig::bwS10();
    GpuModel gpu = GpuModel::titanXp();

    // Table IV block.
    std::printf("Table IV: experiment hardware specifications\n\n");
    TextTable hw({"", "Titan Xp", "BW_S10"});
    hw.addRow({"Numerical type", paper::titanXpSpec().precision,
               "BFP (" + cfg.precision.toString() + ")"});
    hw.addRow({"Peak TFLOPS", fmtF(gpu.peakTflops, 1),
               fmtF(cfg.peakTflops(), 1)});
    hw.addRow({"TDP (W)", fmtF(gpu.tdpWatts, 0),
               fmtF(paper::bwS10PowerWatts(), 0)});
    hw.addRow({"Process", paper::titanXpSpec().process, "Intel 14nm"});
    std::printf("%s\n", hw.render().c_str());

    std::printf("Table V: DeepBench RNN inference at batch 1 "
                "(measured vs. paper)\n\n");
    TextTable t({"Benchmark", "Device", "Latency ms", "paper",
                 "TFLOPS", "paper", "Util", "paper"});

    double best_tflops = 0;
    for (const auto &row : paper::tableFive()) {
        const RnnLayerSpec &layer = row.layer;
        // SDM row.
        {
            Rng rng(1);
            CritPathResult cp =
                layer.kind == RnnKind::Lstm
                    ? analyzeCritPath(makeLstm(randomLstmWeights(
                                          layer.hidden, layer.hidden,
                                          rng)),
                                      cfg.macCount())
                    : analyzeCritPath(makeGru(randomGruWeights(
                                          layer.hidden, layer.hidden,
                                          rng)),
                                      cfg.macCount());
            double ms =
                cyclesToMs(sdmTotal(cp, layer.timeSteps), cfg.clockMhz);
            t.addRow({layer.label(), "SDM", fmtF(ms, 4),
                      fmtF(row.sdmMs, 4), "-", "-", "-", "-"});
        }
        // BW row: simulate min(timeSteps, 60) steps and scale by the
        // steady state (full 750/1500-step runs agree; 60 keeps the
        // harness brisk).
        {
            unsigned steps = std::min(layer.timeSteps, 60u);
            BwRnnResult bw = runBwRnn(layer, cfg, steps);
            best_tflops = std::max(best_tflops, bw.tflops);
            t.addRow({"", "BW", fmtF(bw.latencyMs, 3),
                      fmtF(row.bwMs, 3), fmtF(bw.tflops, 2),
                      fmtF(row.bwTflops, 2),
                      fmtPct(bw.utilization),
                      fmtF(row.bwUtilPct, 1) + "%"});
        }
        // Titan Xp row.
        {
            GpuPerf perf = gpuRnnInference(gpu, layer, 1);
            t.addRow({"", "Titan Xp", fmtF(perf.latencyMs, 2),
                      fmtF(row.gpuMs, 2), fmtF(perf.tflops, 2),
                      fmtF(row.gpuTflops, 2), fmtPct(perf.utilization),
                      fmtF(row.gpuUtilPct, 1) + "%"});
        }
        t.addRule();
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Power efficiency (Section VII-B4): %.0f GFLOPS/W at "
                "peak measured throughput\n(paper: %.0f GFLOPS/W from "
                "35.92 TFLOPS at %.0f W)\n",
                best_tflops * 1e3 / paper::bwS10PowerWatts(),
                paper::bwS10GflopsPerWatt(), paper::bwS10PowerWatts());
    return 0;
}
