/**
 * @file
 * Regenerates Table V: DeepBench RNN inference at batch 1 on BW_S10 —
 * SDM latency (critical-path model), BW latency/TFLOPS/utilization
 * (timing simulator), and Titan Xp latency/TFLOPS/utilization (GPU
 * model) — with the paper's published values inline. Also prints the
 * Table IV hardware-specification block and the Section VII-B4 power
 * efficiency estimate, and emits a machine-readable
 * BENCH_table5_deepbench.json (path overridable via BW_BENCH_JSON).
 */

#include <cstdio>

#include "bench_util.h"
#include "bw/bw.h"

using namespace bw;
using namespace bw::bench;

int
main()
{
    NpuConfig cfg = NpuConfig::bwS10();
    GpuModel gpu = GpuModel::titanXp();

    // Table IV block.
    std::printf("Table IV: experiment hardware specifications\n\n");
    TextTable hw({"", "Titan Xp", "BW_S10"});
    hw.addRow({"Numerical type", paper::titanXpSpec().precision,
               "BFP (" + cfg.precision.toString() + ")"});
    hw.addRow({"Peak TFLOPS", fmtF(gpu.peakTflops, 1),
               fmtF(cfg.peakTflops(), 1)});
    hw.addRow({"TDP (W)", fmtF(gpu.tdpWatts, 0),
               fmtF(paper::bwS10PowerWatts(), 0)});
    hw.addRow({"Process", paper::titanXpSpec().process, "Intel 14nm"});
    std::printf("%s\n", hw.render().c_str());

    std::printf("Table V: DeepBench RNN inference at batch 1 "
                "(measured vs. paper)\n\n");
    TextTable t({"Benchmark", "Device", "Latency ms", "paper",
                 "TFLOPS", "paper", "Util", "paper"});

    double best_tflops = 0;
    Json layers = Json::array();
    for (const auto &row : paper::tableFive()) {
        const RnnLayerSpec &layer = row.layer;
        Json jl = Json::object();
        jl.set("layer", layer.label());
        // SDM row.
        {
            Rng rng(1);
            CritPathResult cp =
                layer.kind == RnnKind::Lstm
                    ? analyzeCritPath(makeLstm(randomLstmWeights(
                                          layer.hidden, layer.hidden,
                                          rng)),
                                      cfg.macCount())
                    : analyzeCritPath(makeGru(randomGruWeights(
                                          layer.hidden, layer.hidden,
                                          rng)),
                                      cfg.macCount());
            double ms =
                cyclesToMs(sdmTotal(cp, layer.timeSteps), cfg.clockMhz);
            t.addRow({layer.label(), "SDM", fmtF(ms, 4),
                      fmtF(row.sdmMs, 4), "-", "-", "-", "-"});
            jl.set("sdm_latency_ms", ms);
            jl.set("sdm_latency_paper_ms", row.sdmMs);
        }
        // BW row: simulate min(timeSteps, 60) steps and scale by the
        // steady state (full 750/1500-step runs agree; 60 keeps the
        // harness brisk).
        {
            unsigned steps = std::min(layer.timeSteps, 60u);
            BwRnnResult bw = runBwRnn(layer, cfg, steps);
            best_tflops = std::max(best_tflops, bw.tflops);
            t.addRow({"", "BW", fmtF(bw.latencyMs, 3),
                      fmtF(row.bwMs, 3), fmtF(bw.tflops, 2),
                      fmtF(row.bwTflops, 2),
                      fmtPct(bw.utilization),
                      fmtF(row.bwUtilPct, 1) + "%"});
            jl.set("bw", toJson(bw));
            jl.set("bw_latency_paper_ms", row.bwMs);
            jl.set("bw_tflops_paper", row.bwTflops);
        }
        // Titan Xp row.
        {
            GpuPerf perf = gpuRnnInference(gpu, layer, 1);
            t.addRow({"", "Titan Xp", fmtF(perf.latencyMs, 2),
                      fmtF(row.gpuMs, 2), fmtF(perf.tflops, 2),
                      fmtF(row.gpuTflops, 2), fmtPct(perf.utilization),
                      fmtF(row.gpuUtilPct, 1) + "%"});
            jl.set("gpu_latency_ms", perf.latencyMs);
            jl.set("gpu_latency_paper_ms", row.gpuMs);
            jl.set("gpu_tflops", perf.tflops);
        }
        t.addRule();
        layers.push(jl);
    }
    std::printf("%s\n", t.render().c_str());

    double gflops_per_watt =
        best_tflops * 1e3 / paper::bwS10PowerWatts();
    std::printf("Power efficiency (Section VII-B4): %.0f GFLOPS/W at "
                "peak measured throughput\n(paper: %.0f GFLOPS/W from "
                "35.92 TFLOPS at %.0f W)\n",
                gflops_per_watt, paper::bwS10GflopsPerWatt(),
                paper::bwS10PowerWatts());

    Json doc = Json::object();
    doc.set("harness", "table5_deepbench");
    doc.set("config", "BW_S10");
    doc.set("layers", layers);
    doc.set("best_tflops", best_tflops);
    doc.set("gflops_per_watt", gflops_per_watt);
    doc.set("gflops_per_watt_paper", paper::bwS10GflopsPerWatt());
    std::string path = benchJsonPath("table5_deepbench");
    writeJsonFile(path, doc);
    std::printf("Bench JSON written to %s\n", path.c_str());
    return 0;
}
