/**
 * @file
 * Regenerates Table III: hardware implementation results for the three
 * published BW NPU configurations (BW_S5, BW_A10, BW_S10) from the
 * analytic resource model, with per-cell deltas against the paper's
 * post-fit Quartus numbers, plus a synthesis-specialization sweep from
 * the explorer.
 */

#include <cstdio>

#include "bench_util.h"
#include "bw/bw.h"

using namespace bw;
using namespace bw::bench;

int
main()
{
    std::printf("Table III: hardware implementation results (resource "
                "model vs. paper post-fit)\n\n");

    struct Point
    {
        NpuConfig cfg;
        FpgaDevice dev;
        paper::TableThreeRow row;
    };
    auto rows = paper::tableThree();
    std::vector<Point> points = {
        {NpuConfig::bwS5(), FpgaDevice::stratixVD5(), rows[0]},
        {NpuConfig::bwA10(), FpgaDevice::arria10_1150(), rows[1]},
        {NpuConfig::bwS10(), FpgaDevice::stratix10_280(), rows[2]},
    };

    TextTable t({"Instance", "Tiles", "Lanes", "Dim", "Device", "ALMs",
                 "(paper)", "M20Ks", "(paper)", "DSPs", "(paper)", "MHz",
                 "Peak TFLOPS"});
    for (const Point &p : points) {
        ResourceEstimate est = estimateResources(p.cfg, p.dev);
        t.addRow({p.cfg.name, std::to_string(p.cfg.tileEngines),
                  std::to_string(p.cfg.lanes),
                  std::to_string(p.cfg.nativeDim), p.dev.name,
                  fmtI(est.alms) + " (" + fmtF(est.almPct, 0) + "%)",
                  fmtI(p.row.alms) + " " + pctDelta(est.alms, p.row.alms),
                  fmtI(est.m20ks),
                  fmtI(p.row.m20ks) + " " +
                      pctDelta(est.m20ks, p.row.m20ks),
                  fmtI(est.dsps),
                  fmtI(p.row.dsps) + " " + pctDelta(est.dsps, p.row.dsps),
                  fmtF(est.freqMhz, 0), fmtF(est.peakTflops, 1)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Synthesis-specialization explorer: best configuration "
                "per model dimension on each device\n\n");
    TextTable e({"Model dim", "Device", "Native", "Lanes", "Tiles",
                 "Peak TFLOPS", "Padding waste"});
    for (unsigned dim : {512u, 1024u, 2048u, 2816u}) {
        for (const FpgaDevice &dev :
             {FpgaDevice::stratixVD5(), FpgaDevice::stratix10_280()}) {
            ExplorerResult r = exploreConfig(dim, dev);
            e.addRow({std::to_string(dim), dev.name,
                      std::to_string(r.config.nativeDim),
                      std::to_string(r.config.lanes),
                      std::to_string(r.config.tileEngines),
                      fmtF(r.estimate.peakTflops, 1),
                      fmtPct(r.paddingWaste)});
        }
    }
    std::printf("%s", e.render().c_str());
    return 0;
}
