/**
 * @file
 * Google-benchmark microbenchmarks of the reproduction's own machinery:
 * BFP quantization, functional mv_mul, compilation, and the timing
 * simulator's throughput in simulated timesteps per host second.
 */

#include <benchmark/benchmark.h>

#include "bw/bw.h"

namespace bw {
namespace {

void
BM_BfpQuantizeBlock(benchmark::State &state)
{
    Rng rng(1);
    FVec v(static_cast<size_t>(state.range(0)));
    fillUniform(v, rng);
    BfpFormat fmt = bfp152();
    for (auto _ : state) {
        BfpBlock b(v, fmt);
        benchmark::DoNotOptimize(b);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BfpQuantizeBlock)->Arg(128)->Arg(400);

void
BM_Float16RoundTrip(benchmark::State &state)
{
    Rng rng(2);
    FVec v(1024);
    fillUniform(v, rng, -100.0f, 100.0f);
    for (auto _ : state) {
        float acc = 0;
        for (float x : v)
            acc += roundToHalf(x);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Float16RoundTrip);

NpuConfig
microConfig()
{
    NpuConfig c;
    c.name = "micro";
    c.nativeDim = 64;
    c.lanes = 16;
    c.tileEngines = 4;
    c.mrfSize = 256;
    c.mrfIndexSpace = 1024;
    c.initialVrfSize = 128;
    c.addSubVrfSize = 128;
    c.multiplyVrfSize = 128;
    c.precision = BfpFormat{1, 5, 5};
    return c;
}

void
BM_FunctionalMvMul(benchmark::State &state)
{
    NpuConfig cfg = microConfig();
    FuncMachine m(cfg);
    Rng rng(3);
    FMat w(64, 64);
    fillUniform(w, rng);
    m.loadMrfTile(0, w);
    FVec x(64);
    fillUniform(x, rng);
    m.loadVrf(MemId::InitialVrf, 0, x);
    ProgramBuilder b;
    b.vRd(MemId::InitialVrf, 0).mvMul(0).vWr(MemId::InitialVrf, 1);
    Program p = b.build();
    for (auto _ : state)
        m.run(p);
    state.SetItemsProcessed(state.iterations() * 64 * 64 * 2);
}
BENCHMARK(BM_FunctionalMvMul);

void
BM_CompileLstm(benchmark::State &state)
{
    NpuConfig cfg = NpuConfig::bwS10();
    Rng rng(4);
    LstmWeights w =
        randomLstmWeights(static_cast<unsigned>(state.range(0)),
                          static_cast<unsigned>(state.range(0)), rng);
    GirGraph g = makeLstm(w);
    for (auto _ : state) {
        CompiledModel m = compileGir(g, cfg);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_CompileLstm)->Arg(512)->Arg(2048);

void
BM_TimingSimGruStep(benchmark::State &state)
{
    // Simulated RNN timesteps per host second — the simulator's
    // headline speed metric.
    NpuConfig cfg = NpuConfig::bwS10();
    Rng rng(5);
    CompiledModel m = compileGir(
        makeGru(randomGruWeights(static_cast<unsigned>(state.range(0)),
                                 static_cast<unsigned>(state.range(0)),
                                 rng)),
        cfg);
    timing::NpuTiming sim(cfg);
    sim.setTileBeats(m.tileBeats);
    for (auto _ : state) {
        auto res = sim.run(m.prologue, m.step, 50);
        benchmark::DoNotOptimize(res.totalCycles);
    }
    state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_TimingSimGruStep)->Arg(1024)->Arg(2816);

void
BM_TimingSimResnet50(benchmark::State &state)
{
    NpuConfig cfg = NpuConfig::bwCnnA10();
    ConvNetPlan plan = planConvNet(resnet50Convs(), cfg);
    timing::NpuTiming sim(cfg);
    sim.setTileBeats(plan.tileBeats);
    for (auto _ : state) {
        auto res = sim.run(plan.program, 1);
        benchmark::DoNotOptimize(res.totalCycles);
    }
}
BENCHMARK(BM_TimingSimResnet50);

void
BM_AssembleDisassemble(benchmark::State &state)
{
    NpuConfig cfg = NpuConfig::bwS10();
    Rng rng(6);
    CompiledModel m =
        compileGir(makeLstm(randomLstmWeights(2048, 2048, rng)), cfg);
    std::string text = disassemble(m.step);
    for (auto _ : state) {
        Program p = assemble(text);
        benchmark::DoNotOptimize(p);
    }
    state.SetItemsProcessed(state.iterations() * m.step.size());
}
BENCHMARK(BM_AssembleDisassemble);

} // namespace
} // namespace bw
