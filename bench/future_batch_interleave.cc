/**
 * @file
 * Implements and measures the paper's stated future-work optimization
 * (Section VII-B3): "interleaving the computation for each RNN timestep
 * among all input batches to further space out dependencies … would be
 * particularly effective at increasing utilization for small LSTM/GRU
 * layers, which are not always able to fill the deep BW pipeline."
 *
 * Each chain is configured once per step and iterates over the batch
 * with strided per-sample addresses (the IterStride mode), sharing the
 * pinned weights; per-sample latency stays near the batch-1 figure
 * while utilization recovers.
 */

#include <cstdio>

#include "bench_util.h"
#include "bw/bw.h"

using namespace bw;
using namespace bw::bench;

namespace {

struct Point
{
    double perSampleUs;
    double utilPct;
};

Point
measure(const RnnLayerSpec &layer, unsigned batch, const NpuConfig &cfg)
{
    Rng rng(1);
    GirGraph g =
        layer.kind == RnnKind::Lstm
            ? makeLstm(randomLstmWeights(layer.hidden, layer.hidden,
                                         rng))
            : makeGru(randomGruWeights(layer.hidden, layer.hidden, rng));
    CompileOptions opts;
    opts.pipelineInputProjections = layer.kind == RnnKind::Gru;
    opts.batchSize = batch;
    CompiledModel m = compileGir(g, cfg, opts);
    timing::NpuTiming sim(cfg);
    sim.setTileBeats(m.tileBeats);
    auto res = sim.run(m.prologue, m.step, 25);
    Cycles per_step = res.steadyStateIterationCycles();
    Point p;
    p.perSampleUs = cyclesToUs(per_step, cfg.clockMhz) *
                    layer.timeSteps / batch;
    p.utilPct = 100.0 * static_cast<double>(layer.opsPerStep()) * batch /
                (static_cast<double>(per_step) * cfg.opsPerCycle());
    return p;
}

} // namespace

int
main()
{
    NpuConfig cfg = NpuConfig::bwS10();
    std::printf("Batch-interleaved serving on %s (the Section VII-B3 "
                "future-work optimization,\nimplemented via the "
                "IterStride mega-SIMD mode)\n\n",
                cfg.name.c_str());

    const std::vector<unsigned> batches = {1, 2, 4, 8};
    TextTable t({"Layer", "metric", "b=1", "b=2", "b=4", "b=8"});
    for (RnnLayerSpec layer :
         std::vector<RnnLayerSpec>{{RnnKind::Lstm, 256, 25, 256},
                                   {RnnKind::Lstm, 512, 25, 512},
                                   {RnnKind::Gru, 512, 25, 512},
                                   {RnnKind::Gru, 1024, 25, 1024},
                                   {RnnKind::Gru, 2048, 25, 2048}}) {
        std::vector<std::string> util_row = {layer.label(),
                                             "utilization"};
        std::vector<std::string> lat_row = {"", "us/sample/step"};
        for (unsigned b : batches) {
            Point p = measure(layer, b, cfg);
            util_row.push_back(fmtF(p.utilPct, 1) + "%");
            lat_row.push_back(fmtF(p.perSampleUs / layer.timeSteps, 2));
        }
        t.addRow(util_row);
        t.addRow(lat_row);
        t.addRule();
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Small layers recover utilization almost linearly with "
                "the interleave factor (the\nchain-configuration floor "
                "amortizes across the batch) while large layers, "
                "already\nMVM-bound, gain little — exactly the regime "
                "split the paper predicts. Unlike GPU\nbatching, the "
                "per-request latency penalty is the stretch of one "
                "step, not a\nbatch-formation wait.\n");
    return 0;
}
