/**
 * @file
 * Regenerates Table I: critical-path analysis of LSTM, GRU and two
 * representative CNN layers — operation counts, UDM and SDM cycles,
 * measured BW NPU cycles, and data footprints — side by side with the
 * paper's published values.
 */

#include <cstdio>

#include "bench_util.h"
#include "bw/bw.h"

using namespace bw;
using namespace bw::bench;

namespace {

std::string
fmtData(uint64_t bytes)
{
    if (bytes >= 1'000'000)
        return fmtF(static_cast<double>(bytes) / 1e6, 0) + "MB";
    return fmtF(static_cast<double>(bytes) / 1e3, 0) + "KB";
}

} // namespace

int
main()
{
    NpuConfig cfg = NpuConfig::bwS10();
    uint64_t macs = cfg.macCount();
    auto paper_rows = paper::tableOne();

    std::printf("Table I: critical-path analysis of LSTM, GRU, and CNN "
                "(%llu MACs, %s)\n\n",
                static_cast<unsigned long long>(macs), cfg.name.c_str());

    TextTable t({"Model", "Dimension", "Ops", "UDM", "SDM", "BW NPU",
                 "Data", "paper UDM/SDM/BW"});

    // LSTM 2000x2000.
    {
        Rng rng(1);
        CritPathResult r = analyzeCritPath(
            makeLstm(randomLstmWeights(2000, 2000, rng)), macs);
        BwRnnResult bw =
            runBwRnn({RnnKind::Lstm, 2000, 25, 2000}, cfg);
        t.addRow({"LSTM", "2000x2000",
                  fmtF(static_cast<double>(r.matmulOpsPerStep) / 1e6, 0) +
                      "M",
                  std::to_string(r.udmCycles),
                  std::to_string(r.sdmCycles),
                  std::to_string(bw.perStepCycles), fmtData(r.dataBytes),
                  "19 / 352 / 718"});
    }
    // GRU 2800x2800.
    {
        Rng rng(1);
        CritPathResult r = analyzeCritPath(
            makeGru(randomGruWeights(2800, 2800, rng)), macs);
        BwRnnResult bw = runBwRnn({RnnKind::Gru, 2800, 25, 2800}, cfg);
        t.addRow({"GRU", "2800x2800",
                  fmtF(static_cast<double>(r.matmulOpsPerStep) / 1e6, 0) +
                      "M",
                  std::to_string(r.udmCycles),
                  std::to_string(r.sdmCycles),
                  std::to_string(bw.perStepCycles), fmtData(r.dataBytes),
                  "31 / 520 / 662"});
    }
    // The two CNN layers: BW cycles from the conv timing path on a
    // CNN-*specialized* S10-class instance (same ~96k MAC budget, but
    // a 128-wide native dimension matched to the layers' channel
    // counts — the Section VI specialization; an RNN-tuned N=400
    // instance would cap these layers' utilization at 32% from output-
    // channel padding alone, far below the published cycle counts).
    for (const ConvSpec &spec : {tableOneCnn3x3(), tableOneCnn1x1()}) {
        CritPathResult r = analyzeConvCritPath(spec, macs);
        NpuConfig ccfg = cfg;
        ccfg.name = "BW_CNN_S10";
        ccfg.nativeDim = 128;
        ccfg.lanes = 32;
        ccfg.tileEngines = 24; // 24*128*32 = 98,304 MACs
        ccfg.mfus = 6; // CNN variant: MFU bandwidth matched to the
                       // MVM's higher output rate (Section VII future
                       // work: "increasing MFU resources")
        ccfg.timing.vectorUnitBeats = 1;
        ccfg.initialVrfSize = 16384;
        ccfg.addSubVrfSize = 1024;
        ccfg.mrfIndexSpace = 2048;
        // Table I measures the kernel with weights pinned: neutralize
        // the one-time DRAM weight stream.
        ccfg.timing.dramBytesPerCycle = 1u << 20;
        ConvNetPlan plan = planConvNet({spec}, ccfg);
        timing::NpuTiming sim(ccfg);
        sim.setTileBeats(plan.tileBeats);
        auto res = sim.run(plan.program, 1);
        const paper::TableOneRow &p =
            paper_rows[spec.patchLen() == 1152 ? 2 : 3];
        t.addRow({"CNN", p.dimension,
                  fmtF(static_cast<double>(r.opsPerStep) / 1e6, 0) + "M",
                  std::to_string(r.udmCycles),
                  std::to_string(r.sdmCycles),
                  std::to_string(res.totalCycles), fmtData(r.dataBytes),
                  std::to_string(p.udmCycles) + " / " +
                      std::to_string(p.sdmCycles) + " / " +
                      std::to_string(p.bwCycles)});
    }

    std::printf("%s\n", t.render().c_str());
    std::printf("Notes: UDM = infinite-resource dataflow depth; SDM = "
                "96,000-MAC constrained;\nBW NPU = measured cycles on "
                "the timing simulator (per step / per layer).\nThe "
                "paper lists UDM 13 for the 1x1 CNN row; a 64-element "
                "dot product's\nreduction tree is 7 levels (+bias = 8) "
                "— see EXPERIMENTS.md.\n");
    return 0;
}
