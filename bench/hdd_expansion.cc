/**
 * @file
 * Quantifies the Section IV-C / V-C hierarchical-decode-and-dispatch
 * claims: a single mega-SIMD instruction dispatching millions of
 * primitive operations, and the control processor sustaining the
 * pipeline at roughly one compound instruction per four cycles.
 */

#include <cstdio>

#include "bench_util.h"
#include "bw/bw.h"

using namespace bw;
using namespace bw::bench;

int
main()
{
    NpuConfig cfg = NpuConfig::bwS10();

    std::printf("Mega-SIMD expansion (Section IV-C): primitive ops "
                "dispatched per compound instruction\n\n");
    TextTable t({"Model", "Instrs/step", "Ops/step",
                 "Max ops in one instr", "Avg ops/instr"});
    for (const auto &layer : deepBenchSuite()) {
        Rng rng(1);
        GirGraph g =
            layer.kind == RnnKind::Lstm
                ? makeLstm(randomLstmWeights(layer.hidden, layer.hidden,
                                             rng))
                : makeGru(randomGruWeights(layer.hidden, layer.hidden,
                                           rng));
        CompiledModel m = compileGir(g, cfg);
        ProgramStats s = analyzeProgram(m.step, cfg);
        t.addRow({layer.label(), std::to_string(s.instructions),
                  fmtI(s.totalOps), fmtI(s.maxOpsPerInstruction),
                  fmtI(s.totalOps / std::max<uint64_t>(
                                        1, s.instructions))});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper claim: \"a single instruction can be configured "
                "to dispatch over 7 million\noperations\" in the "
                "largest GRU — one 8x8-tile mv_mul above dispatches "
                "over 15M\n(>7.9M MACs).\n\n");

    std::printf("Control-processor dispatch rate (Section V-C)\n\n");
    TextTable d({"Model", "Steady cycles/step", "Instrs/step",
                 "Cycles per instruction", "Dispatch-limited?"});
    for (const auto &layer : deepBenchSuite()) {
        if (layer.hidden < 512)
            continue;
        BwRnnResult bw = runBwRnn(layer, cfg, 40);
        Rng rng(1);
        GirGraph g =
            layer.kind == RnnKind::Lstm
                ? makeLstm(randomLstmWeights(layer.hidden, layer.hidden,
                                             rng))
                : makeGru(randomGruWeights(layer.hidden, layer.hidden,
                                           rng));
        CompileOptions opts;
        opts.pipelineInputProjections = layer.kind == RnnKind::Gru;
        CompiledModel m = compileGir(g, cfg, opts);
        double per_instr = static_cast<double>(bw.perStepCycles) /
                           static_cast<double>(m.step.size());
        d.addRow({layer.label(), std::to_string(bw.perStepCycles),
                  std::to_string(m.step.size()), fmtF(per_instr, 1),
                  per_instr <= cfg.timing.dispatchInterval + 0.5
                      ? "yes"
                      : "no"});
    }
    std::printf("%s\n", d.render().c_str());
    std::printf("The Nios-class control processor needs to sustain "
                "only ~one compound\ninstruction per %u cycles; the "
                "steady-state budget above is %ux-%ux that, so\n"
                "dispatch never limits the pipeline — matching the "
                "paper's design point.\n",
                cfg.timing.dispatchInterval, 3u, 5u);
    return 0;
}
