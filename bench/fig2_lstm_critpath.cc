/**
 * @file
 * Regenerates Fig. 2: LSTM critical-path operation count and latency as
 * functions of the hidden dimension N and the number of functional
 * units #FU. Prints the op-count series, the UDM depth series, and the
 * SDM latency surface over the #FU sweep.
 */

#include <cstdio>

#include "bw/bw.h"

using namespace bw;

int
main()
{
    std::printf("Fig. 2: LSTM critical-path analysis — ops and latency "
                "as functions of N and #FU\n\n");

    const std::vector<unsigned> dims = {256,  512,  1024, 1536,
                                        2000, 2048, 2816, 4096};
    const std::vector<uint64_t> fus = {1000, 10000, 96000, 1000000};

    TextTable t({"N", "Ops/step", "UDM cycles", "SDM @1k FU",
                 "SDM @10k FU", "SDM @96k FU", "SDM @1M FU"});
    for (unsigned n : dims) {
        Rng rng(1);
        GirGraph g = makeLstm(randomLstmWeights(n, n, rng));
        std::vector<std::string> row;
        row.push_back(std::to_string(n));
        CritPathResult base = analyzeCritPath(g, 96000);
        row.push_back(
            fmtF(static_cast<double>(base.matmulOpsPerStep) / 1e6, 1) +
            "M");
        row.push_back(std::to_string(base.udmCycles));
        for (uint64_t fu : fus) {
            CritPathResult r = analyzeCritPath(g, fu);
            row.push_back(std::to_string(r.sdmCycles));
        }
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Shape checks (paper Fig. 2):\n"
                "  - ops grow quadratically in N (8*2*N^2);\n"
                "  - UDM latency grows logarithmically in N "
                "(reduction-tree depth);\n"
                "  - SDM latency approaches the UDM floor as #FU grows "
                "(18x gap at N=2000, #FU=96k).\n\n");

    Rng rng(1);
    CritPathResult r =
        analyzeCritPath(makeLstm(randomLstmWeights(2000, 2000, rng)),
                        96000);
    std::printf("N=2000, 96k MACs: SDM/UDM gap = %.1fx (paper: 352/19 = "
                "18.5x)\n",
                static_cast<double>(r.sdmCycles) / r.udmCycles);
    return 0;
}
