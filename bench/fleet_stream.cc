/**
 * @file
 * Fleet streaming-export benchmark: replayStream() vs replay()
 * equivalence, fidelity-audit divergence, and the O(1)-memory gate for
 * multi-million-request streamed replays.
 *
 * Phase A replays one ~100k-request trace twice through two identical
 * heterogeneous clusters — once materialized (Cluster::replay), once
 * pull-based (Cluster::replayStream over a TrafficStream, with a
 * RouteStreamWriter decision sink) — and asserts the two runs are
 * byte-identical observers: equal ClusterStats counters, identical
 * federated /fleet/metrics text, identical fleet bw.slo/1 rollups,
 * identical bw.spanstream/1 exports, and equal audit counters with
 * zero fast-vs-cycle-accurate divergences.
 *
 * Phase B streams a >= 1M-request trace through a third cluster with
 * every decision flowing through the NDJSON writer, and gates the
 * ru_maxrss delta across the run: streamed replay must not grow
 * resident memory with trace length (the materialized trace alone
 * would be ~40 MB; the gate is 32 MB).
 *
 * The artifact (BENCH_fleet_stream.json, override with BW_BENCH_JSON)
 * pins every virtual-time quantity — counters, stream row/byte counts,
 * audit checks, sketch percentiles — while the "memory" and "wall"
 * subtrees are machine-dependent and excluded from the regression
 * compare (the harness itself enforces the memory gate).
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bw/bw.h"

using namespace bw;
using namespace bw::cluster;

namespace {

long
rssKb()
{
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss; // KiB on Linux
}

double
wallMs(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/** The cluster under test: the demo's heterogeneous two-generation
 *  fleet, on the fast timing tier with a 1-in-997 fidelity audit. */
ClusterOptions
benchOptions(metrics::Registry *reg, obs::SpanTracer *spans)
{
    ClusterOptions co;
    ReplicaGroupSpec s10;
    s10.name = "s10";
    s10.config = NpuConfig::bwS10();
    s10.engines = 2;
    ReplicaGroupSpec s5;
    s5.name = "s5";
    s5.config = NpuConfig::bwS5();
    s5.engines = 1;
    for (ReplicaGroupSpec *g : {&s10, &s5}) {
        g->engine.queueDepth = 32;
        g->engine.networkMs = 0.05;
        g->engine.defaultDeadlineMs = 50.0;
    }
    co.groups = {s10, s5};
    co.router.policy = RoutePolicy::SloAware;
    co.weightCacheTiles = 64;
    co.fidelity = timing::Fidelity::Fast;
    co.auditEvery = 997;
    co.metricsRegistry = reg;
    co.spanTracer = spans;
    return co;
}

void
addModels(Cluster &c)
{
    c.addTimedModel("dnn-hot", 0.8, 24);
    c.addTimedModel("dnn-warm", 1.5, 24);
    c.addTimedModel("dnn-cold", 2.5, 40);
    Rng rng(7);
    GirGraph gru = makeGru(randomGruWeights(128, 128, rng));
    Expected<uint32_t> id = c.addModel("gru-tagger", gru);
    BW_ASSERT(id.ok(), "gru-tagger failed to register: %s",
              id.status().message().c_str());
}

TrafficOptions
benchTraffic(double rps, double duration_s, uint64_t seed)
{
    TrafficOptions t;
    t.baseRps = rps;
    t.durationS = duration_s;
    t.seed = seed;
    t.diurnalAmplitude = 0.3;
    t.diurnalPeriodS = duration_s;
    t.mix.push_back(ModelMix{0, 8.0, 1, 10.0});
    t.mix.push_back(ModelMix{1, 2.0, 1, 80.0});
    t.mix.push_back(ModelMix{2, 1.0, 1, 0.0});
    t.mix.push_back(ModelMix{3, 1.5, 2, 40.0});
    return t;
}

/** Capture an NDJSON stream into a string (Phase A identity checks). */
std::string
captureSpanStream(const obs::SpanTracer &spans)
{
    std::string out;
    obs::StreamSink sink = [&out](const std::string &chunk) {
        out += chunk;
        return true;
    };
    obs::streamSpanTreesNdjson(spans, sink);
    return out;
}

Json
statsLeaf(const ClusterStats &s)
{
    Json j = Json::object();
    j.set("submitted", s.submitted);
    j.set("shed", s.shed);
    j.set("rejected", s.rejected);
    j.set("expired", s.expired);
    j.set("completed", s.completed);
    j.set("goodput", s.goodput);
    return j;
}

} // namespace

int
main()
{
    bool pass = true;

    // --- Phase A: replay() vs replayStream() equivalence. ---
    metrics::Registry reg_a, reg_b;
    obs::SpanTracer spans_a, spans_b;
    Cluster vec_cluster(benchOptions(&reg_a, &spans_a));
    Cluster stream_cluster(benchOptions(&reg_b, &spans_b));
    addModels(vec_cluster);
    addModels(stream_cluster);

    // ~2400 rps is ~75% of the 3-shard fleet's capacity at this mix:
    // most requests complete (the audit samples completed compiled-model
    // requests) while diurnal peaks still exercise shed/expiry paths.
    TrafficOptions small = benchTraffic(2400, 42.0, 42);
    std::vector<ClusterRequest> trace = generateTraffic(small);

    ClusterStats rv;
    double wall_vec_ms =
        wallMs([&] { rv = vec_cluster.replay(trace); });

    uint64_t stream_bytes = 0;
    obs::StreamSink counting = [&stream_bytes](const std::string &c) {
        stream_bytes += c.size();
        return true;
    };
    obs::RouteStreamWriter writer(
        counting,
        routePolicyName(stream_cluster.router().options().policy),
        stream_cluster.engineCount(), stream_cluster.sloClassCount());
    stream_cluster.setDecisionSink([&writer](const RouteDecision &d) {
        writer.decision(d.seq, d.model, d.cls, d.engine);
    });
    TrafficStream small_stream(small);
    ClusterStats rs;
    double wall_stream_ms = wallMs([&] {
        rs = stream_cluster.replayStream(
            [&small_stream](ClusterRequest *r) {
                return small_stream.next(r);
            });
    });
    writer.finish();

    bool counters_equal =
        rv.submitted == rs.submitted && rv.shed == rs.shed &&
        rv.rejected == rs.rejected && rv.expired == rs.expired &&
        rv.completed == rs.completed && rv.goodput == rs.goodput;
    bool metrics_identical =
        vec_cluster.fleetMetricsText() == stream_cluster.fleetMetricsText();
    bool slo_identical = vec_cluster.fleetSloJson().dump() ==
                         stream_cluster.fleetSloJson().dump();
    bool spans_identical =
        captureSpanStream(spans_a) == captureSpanStream(spans_b);
    bool flight_identical =
        vec_cluster.engineFlightJson(0).dump() ==
        stream_cluster.engineFlightJson(0).dump();
    bool audit_equal =
        vec_cluster.auditChecks() == stream_cluster.auditChecks() &&
        vec_cluster.auditDivergences() ==
            stream_cluster.auditDivergences();

    std::printf("Phase A: %zu requests, replay %.0f ms vs stream %.0f ms\n",
                trace.size(), wall_vec_ms, wall_stream_ms);
    std::printf("  counters %s  fleet metrics %s  slo rollup %s  "
                "spans %s  flight %s\n",
                counters_equal ? "equal" : "DIFFER",
                metrics_identical ? "identical" : "DIFFER",
                slo_identical ? "identical" : "DIFFER",
                spans_identical ? "identical" : "DIFFER",
                flight_identical ? "identical" : "DIFFER");
    std::printf("  audit: %llu checks, %llu divergences (fast vs "
                "cycle-accurate)\n",
                static_cast<unsigned long long>(
                    vec_cluster.auditChecks()),
                static_cast<unsigned long long>(
                    vec_cluster.auditDivergences()));
    pass = pass && counters_equal && metrics_identical &&
           slo_identical && spans_identical && flight_identical &&
           audit_equal && vec_cluster.auditChecks() > 0 &&
           vec_cluster.auditDivergences() == 0;

    // --- Phase B: O(1)-memory streamed replay at >= 1M requests. ---
    metrics::Registry reg_c;
    obs::SpanTracer spans_c;
    Cluster big_cluster(benchOptions(&reg_c, &spans_c));
    addModels(big_cluster);

    TrafficOptions big = benchTraffic(2400, 500.0, 9);
    uint64_t big_bytes = 0;
    obs::StreamSink big_sink = [&big_bytes](const std::string &c) {
        big_bytes += c.size();
        return true;
    };
    obs::RouteStreamWriter big_writer(
        big_sink,
        routePolicyName(big_cluster.router().options().policy),
        big_cluster.engineCount(), big_cluster.sloClassCount());
    big_cluster.setDecisionSink([&big_writer](const RouteDecision &d) {
        big_writer.decision(d.seq, d.model, d.cls, d.engine);
    });

    long rss_before_kb = rssKb();
    TrafficStream big_stream(big);
    ClusterStats rb;
    double wall_big_ms = wallMs([&] {
        rb = big_cluster.replayStream([&big_stream](ClusterRequest *r) {
            return big_stream.next(r);
        });
    });
    big_writer.finish();
    long rss_after_kb = rssKb();
    long delta_kb = rss_after_kb - rss_before_kb;
    const long kGateKb = 32 * 1024; // the materialized trace is ~40 MB
    bool o1_pass = delta_kb < kGateKb;

    std::printf("\nPhase B: %llu requests streamed in %.0f ms "
                "(%llu NDJSON rows, %.1f MB written)\n",
                static_cast<unsigned long long>(rb.submitted),
                wall_big_ms,
                static_cast<unsigned long long>(big_writer.rows()),
                static_cast<double>(big_bytes) / 1e6);
    std::printf("  resident memory: %ld KiB -> %ld KiB (delta %ld KiB, "
                "gate %ld KiB): %s\n",
                rss_before_kb, rss_after_kb, delta_kb, kGateKb,
                o1_pass ? "O(1) pass" : "FAIL");
    std::printf("  audit: %llu checks, %llu divergences  p99 (sketch) "
                "%.3f ms\n",
                static_cast<unsigned long long>(
                    big_cluster.auditChecks()),
                static_cast<unsigned long long>(
                    big_cluster.auditDivergences()),
                rb.overall.p99LatencyMs);
    pass = pass && o1_pass && big_cluster.auditDivergences() == 0 &&
           rb.submitted >= 1000000;

    // --- Artifact. ---
    Json doc = Json::object();
    doc.set("schema", "bw.fleet_stream/1");
    doc.set("harness", "fleet_stream");
    doc.set("engines", 3);
    doc.set("fidelity", timing::fidelityName(timing::Fidelity::Fast));
    doc.set("audit_every", static_cast<uint64_t>(997));
    {
        Json eq = Json::object();
        eq.set("requests", static_cast<uint64_t>(trace.size()));
        eq.set("replay", statsLeaf(rv));
        eq.set("stream", statsLeaf(rs));
        eq.set("p99_exact_ms", rv.overall.p99LatencyMs);
        eq.set("p99_sketch_ms", rs.overall.p99LatencyMs);
        eq.set("stream_rows", writer.rows());
        eq.set("stream_bytes", stream_bytes);
        eq.set("counters_equal", counters_equal);
        eq.set("fleet_metrics_identical", metrics_identical);
        eq.set("fleet_slo_identical", slo_identical);
        eq.set("spans_identical", spans_identical);
        eq.set("flight_identical", flight_identical);
        eq.set("audit_checks", vec_cluster.auditChecks());
        eq.set("audit_divergences", vec_cluster.auditDivergences());
        doc.set("equivalence", std::move(eq));
    }
    {
        Json st = Json::object();
        st.set("requests", rb.submitted);
        st.set("stats", statsLeaf(rb));
        st.set("rows", big_writer.rows());
        st.set("bytes", big_bytes);
        st.set("p99_sketch_ms", rb.overall.p99LatencyMs);
        st.set("audit_checks", big_cluster.auditChecks());
        st.set("audit_divergences", big_cluster.auditDivergences());
        doc.set("stream", std::move(st));
    }
    {
        // Machine-dependent: excluded from the regression compare; the
        // harness enforces the gate itself.
        Json mem = Json::object();
        mem.set("rss_before_kb", static_cast<int64_t>(rss_before_kb));
        mem.set("rss_after_kb", static_cast<int64_t>(rss_after_kb));
        mem.set("delta_kb", static_cast<int64_t>(delta_kb));
        mem.set("gate_kb", static_cast<int64_t>(kGateKb));
        mem.set("o1_pass", o1_pass);
        doc.set("memory", std::move(mem));
        Json wall = Json::object();
        wall.set("phase_a_replay_ms", wall_vec_ms);
        wall.set("phase_a_stream_ms", wall_stream_ms);
        wall.set("phase_b_stream_ms", wall_big_ms);
        doc.set("wall", std::move(wall));
    }
    std::string path = bench::benchJsonPath("fleet_stream");
    writeJsonFile(path, doc);
    std::printf("\nBench JSON written to %s\n", path.c_str());

    if (!pass) {
        std::fprintf(stderr, "fleet_stream: FAILED (see above)\n");
        return 1;
    }
    std::printf("fleet_stream: all gates passed\n");
    return 0;
}
