/**
 * @file
 * Regenerates Table VI: the ResNet-50-based image featurizer at batch 1
 * on the CNN-specialized BW NPU (Arria 10) versus an Nvidia P40, plus
 * the paper's batch-16 P40 contrast.
 */

#include <cstdio>

#include "bench_util.h"
#include "bw/bw.h"

using namespace bw;
using namespace bw::bench;

int
main()
{
    auto convs = resnet50Convs();
    OpCount total_ops = resnet50TotalOps();

    std::printf("Table VI: ResNet-50 featurizer, batch 1 "
                "(BW_CNN_A10 vs Nvidia P40)\n\n");
    std::printf("Featurizer: %zu conv layers, %.2f G ops, %.1f M "
                "weights (final dense layer runs on CPU)\n\n",
                convs.size(), static_cast<double>(total_ops) / 1e9,
                static_cast<double>(resnet50WeightCount()) / 1e6);

    // BW side: conv lowering + timing simulator.
    NpuConfig cfg = NpuConfig::bwCnnA10();
    ConvNetPlan plan = planConvNet(convs, cfg);
    timing::NpuTiming sim(cfg);
    sim.setTileBeats(plan.tileBeats);
    auto res = sim.run(plan.program, 1);
    // The paper's measurement includes the PCIe transfer between host
    // and accelerator: input image DMA plus driver/invocation overhead.
    double pcie_ms = 0.10;
    double bw_ms = res.latencyMs(cfg) + pcie_ms;
    double bw_ips = 1000.0 / bw_ms;

    // P40 side: analytic GPU model.
    GpuModel p40 = GpuModel::p40();
    GpuPerf g1 = gpuConvNetInference(p40, convs, 1);
    GpuPerf g16 = gpuConvNetInference(p40, convs, 16);

    auto paper_rows = paper::tableSix();
    TextTable t({"", "Nvidia P40", "BW_CNN_A10"});
    t.addRow({"Technology node", "16nm TSMC", "20nm TSMC"});
    t.addRow({"Precision", "INT8",
              "BFP (" + cfg.precision.toString() + ")"});
    t.addRow({"IPS (batch 1)",
              fmtF(g1.ips, 0) + " (paper " +
                  fmtF(paper_rows[0].ips, 0) + ")",
              fmtF(bw_ips, 0) + " (paper " +
                  fmtF(paper_rows[1].ips, 0) + ")"});
    t.addRow({"Latency (batch 1)",
              fmtF(g1.latencyMs, 2) + " ms (paper " +
                  fmtF(paper_rows[0].latencyMs, 2) + ")",
              fmtF(bw_ms, 2) + " ms (paper " +
                  fmtF(paper_rows[1].latencyMs, 2) + ")"});
    std::printf("%s\n", t.render().c_str());

    std::printf("BW_CNN_A10 detail: %s cycles, MVM occupancy %.1f%%, "
                "effective %.2f TFLOPS (%.1f%% of peak)\n",
                fmtI(res.totalCycles).c_str(),
                100.0 * res.mvmOccupancy(cfg),
                res.tflops(cfg, total_ops),
                100.0 * res.utilization(cfg, total_ops));
    std::printf("P40 at batch 16: %.0f IPS, %.1f ms/batch (paper: "
                "2,270 IPS at ~7 ms) — higher\nthroughput but a "
                "batch-formation latency no interactive service can "
                "hide.\n",
                g16.ips, g16.latencyMs);
    return 0;
}
