/**
 * @file
 * Reproduction scorecard: re-derives every headline quantity of the
 * paper's evaluation and gates it against its tolerance band, printing
 * a single PASS/WARN table — the one-screen answer to "does this
 * repository still reproduce the paper?". Exit status is non-zero if
 * any PASS-band check fails, so it can serve as a CI gate.
 */

#include <cstdio>

#include "bench_util.h"
#include "bw/bw.h"

using namespace bw;
using namespace bw::bench;

namespace {

struct Scorecard
{
    TextTable table{{"Check", "measured", "paper", "delta", "band",
                     "status"}};
    Json checks = Json::array();
    int failures = 0;

    void
    gate(const std::string &name, double measured, double published,
         double band_pct)
    {
        double delta =
            published != 0.0
                ? 100.0 * (measured - published) / published
                : 0.0;
        bool ok = std::fabs(delta) <= band_pct;
        if (!ok)
            ++failures;
        table.addRow({name, fmtF(measured, 2), fmtF(published, 2),
                      fmtF(delta, 1) + "%", "±" + fmtF(band_pct, 0) + "%",
                      ok ? "PASS" : "FAIL"});
        Json c = Json::object();
        c.set("check", name);
        c.set("measured", measured);
        c.set("paper", published);
        c.set("delta_pct", delta);
        c.set("band_pct", band_pct);
        c.set("status", ok ? "PASS" : "FAIL");
        checks.push(std::move(c));
    }

    void
    info(const std::string &name, double measured, double published,
         const std::string &note)
    {
        table.addRow({name, fmtF(measured, 2), fmtF(published, 2), "-",
                      note, "WARN"});
        Json c = Json::object();
        c.set("check", name);
        c.set("measured", measured);
        c.set("paper", published);
        c.set("note", note);
        c.set("status", "WARN");
        checks.push(std::move(c));
    }

    /** Write the BENCH_scorecard.json artifact (perf-trajectory feed). */
    void
    writeJson(const std::string &path)
    {
        Json doc = Json::object();
        doc.set("benchmark", "repro_scorecard");
        doc.set("paper",
                "A Configurable Cloud-Scale DNN Processor for Real-Time "
                "AI (ISCA 2018)");
        doc.set("checks", std::move(checks));
        doc.set("failures", failures);
        doc.set("pass", failures == 0);
        writeJsonFile(path, doc);
    }
};

} // namespace

int
main()
{
    Scorecard sc;
    NpuConfig s10 = NpuConfig::bwS10();

    // --- Table I anchors (per-step cycles). ---
    {
        Rng rng(1);
        CritPathResult lstm = analyzeCritPath(
            makeLstm(randomLstmWeights(2000, 2000, rng)), s10.macCount());
        sc.gate("T1 LSTM-2000 UDM cycles",
                static_cast<double>(lstm.udmCycles), 19, 0);
        sc.gate("T1 LSTM-2000 SDM cycles",
                static_cast<double>(lstm.sdmCycles), 352, 1);
    }

    // --- Table V: BW per-step cycles on all eleven benchmarks. ---
    struct Row
    {
        RnnKind kind;
        unsigned h;
        double paper;
    };
    for (Row r : std::initializer_list<Row>{
             {RnnKind::Lstm, 2000, 718}, {RnnKind::Gru, 2816, 662},
             {RnnKind::Gru, 2560, 662}, {RnnKind::Gru, 2048, 636},
             {RnnKind::Gru, 1536, 634}, {RnnKind::Gru, 1024, 632},
             {RnnKind::Lstm, 2048, 740}, {RnnKind::Lstm, 1536, 725},
             {RnnKind::Lstm, 1024, 740}, {RnnKind::Lstm, 512, 770},
             {RnnKind::Lstm, 256, 708}}) {
        RnnLayerSpec layer{r.kind, r.h, 25, r.h};
        BwRnnResult bw = runBwRnn(layer, s10, 25);
        sc.gate("T5 " + layer.label() + " cyc/step",
                static_cast<double>(bw.perStepCycles), r.paper, 10);
    }

    // --- Table V headline utilization and GPU side. ---
    {
        BwRnnResult big = runBwRnn({RnnKind::Gru, 2816, 750, 2816}, s10,
                                   60);
        sc.gate("T5 GRU-2816 utilization %", 100.0 * big.utilization,
                74.8, 10);
        GpuPerf gpu = gpuRnnInference(GpuModel::titanXp(),
                                      {RnnKind::Gru, 2816, 750, 2816});
        sc.gate("T5 GRU-2816 Titan Xp ms", gpu.latencyMs, 178.6, 10);
    }

    // --- Table III resource model. ---
    {
        auto rows = paper::tableThree();
        struct P
        {
            NpuConfig cfg;
            FpgaDevice dev;
            size_t row;
        };
        for (P p : std::initializer_list<P>{
                 {NpuConfig::bwS5(), FpgaDevice::stratixVD5(), 0},
                 {NpuConfig::bwA10(), FpgaDevice::arria10_1150(), 1},
                 {NpuConfig::bwS10(), FpgaDevice::stratix10_280(), 2}}) {
            ResourceEstimate est = estimateResources(p.cfg, p.dev);
            sc.gate("T3 " + p.cfg.name + " ALMs",
                    static_cast<double>(est.alms),
                    static_cast<double>(rows[p.row].alms), 15);
            sc.gate("T3 " + p.cfg.name + " DSPs",
                    static_cast<double>(est.dsps),
                    static_cast<double>(rows[p.row].dsps), 10);
            sc.gate("T3 " + p.cfg.name + " peak TFLOPS",
                    est.peakTflops, rows[p.row].peakTflops, 3);
        }
    }

    // --- Table VI. ---
    {
        auto convs = resnet50Convs();
        GpuPerf p40 = gpuConvNetInference(GpuModel::p40(), convs, 1);
        sc.gate("T6 P40 batch-1 ms", p40.latencyMs, 2.17, 15);

        NpuConfig cfg = NpuConfig::bwCnnA10();
        ConvNetPlan plan = planConvNet(convs, cfg);
        timing::NpuTiming sim(cfg);
        sim.setTileBeats(plan.tileBeats);
        auto res = sim.run(plan.program, 1);
        sc.info("T6 BW_CNN_A10 batch-1 ms", res.latencyMs(cfg) + 0.10,
                1.80, "shape-only");
    }

    // --- Fig. 8 crossover. ---
    {
        GpuPerf b4 = gpuRnnInference(GpuModel::titanXp(),
                                     {RnnKind::Gru, 2816, 750, 2816}, 4);
        sc.gate("F8 Titan batch-4 util % (<13)", 100.0 * b4.utilization,
                12.9, 15);
    }

    std::printf("Reproduction scorecard (see EXPERIMENTS.md for the "
                "full per-cell record)\n\n%s\n",
                sc.table.render().c_str());
    std::string json_path = scorecardJsonPath();
    sc.writeJson(json_path);
    std::printf("Machine-readable scorecard written to %s\n",
                json_path.c_str());
    if (sc.failures) {
        std::printf("%d check(s) outside their band.\n", sc.failures);
        return 1;
    }
    std::printf("All banded checks pass.\n");
    return 0;
}
