/**
 * @file
 * bench_compare — regression gate over the machine-readable BENCH_*
 * JSON artifacts.
 *
 * Compares a freshly generated bench document against the committed
 * baseline (bench/baselines/) leaf by leaf: integers, strings and
 * booleans must match exactly (cycle counts are the whole point of the
 * gate — a one-cycle drift is a regression, not noise), doubles within
 * a stated relative tolerance (default 1e-6, for cross-platform
 * floating-point variation in derived quantities like TFLOPS). Keys
 * present on one side only are schema drift and fail the gate.
 *
 * Wall-clock-dependent subtrees (threaded-engine latencies, scraped
 * metrics) are excluded with --ignore <dot.path>; the path matches a
 * node and its whole subtree, with array indices as numeric segments
 * and '*' matching any one segment.
 *
 * Exit codes: 0 = within tolerance, 1 = regression (differences
 * printed), 2 = usage or unreadable input.
 *
 *   $ ./bench_compare baselines/BENCH_fig7_utilization.json \
 *         BENCH_fig7_utilization.json --tol 1e-6 [--ignore layers.0.x]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bw/bw.h"

using namespace bw;

namespace {

struct Diff
{
    std::string path;
    std::string what;
};

bool
loadJson(const char *path, Json *out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_compare: cannot read %s\n", path);
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        *out = Json::parse(buf.str());
    } catch (const Error &e) {
        std::fprintf(stderr, "bench_compare: %s: %s\n", path, e.what());
        return false;
    }
    return true;
}

/** Split a dot-path into segments. */
std::vector<std::string>
splitPath(const std::string &p)
{
    std::vector<std::string> segs;
    std::string cur;
    for (char c : p) {
        if (c == '.') {
            segs.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    segs.push_back(cur);
    return segs;
}

/** Whether @p path (already split) falls under ignore pattern @p pat:
 *  the pattern matches a prefix of the path, '*' matching any one
 *  segment — so an ignored node excludes its whole subtree. */
bool
matches(const std::vector<std::string> &pat,
        const std::vector<std::string> &path)
{
    if (pat.size() > path.size())
        return false;
    for (size_t i = 0; i < pat.size(); ++i) {
        if (pat[i] != "*" && pat[i] != path[i])
            return false;
    }
    return true;
}

const char *
typeName(Json::Type t)
{
    switch (t) {
      case Json::Type::Null: return "null";
      case Json::Type::Bool: return "bool";
      case Json::Type::Int: return "int";
      case Json::Type::Double: return "double";
      case Json::Type::String: return "string";
      case Json::Type::Array: return "array";
      case Json::Type::Object: return "object";
      default: return "?";
    }
}

struct Comparer
{
    double tol = 1e-6;
    std::vector<std::vector<std::string>> ignores;
    std::vector<Diff> diffs;
    uint64_t leavesCompared = 0;

    bool
    ignored(const std::vector<std::string> &path) const
    {
        for (const auto &pat : ignores) {
            if (matches(pat, path))
                return true;
        }
        return false;
    }

    void
    fail(const std::vector<std::string> &path, std::string what)
    {
        std::string p;
        for (size_t i = 0; i < path.size(); ++i)
            p += (i ? "." : "") + path[i];
        diffs.push_back({p.empty() ? "(root)" : p, std::move(what)});
    }

    void
    compare(const Json &base, const Json &fresh,
            std::vector<std::string> &path)
    {
        if (ignored(path))
            return;
        // Int-vs-double mismatches compare numerically (a baseline
        // 2.0 may parse as int 2); everything else must agree on type.
        if (base.type() != fresh.type() &&
            !(base.isNumber() && fresh.isNumber())) {
            fail(path, detail::format("type %s != baseline %s",
                                      typeName(fresh.type()),
                                      typeName(base.type())));
            return;
        }
        switch (base.type()) {
          case Json::Type::Object: {
            for (size_t i = 0; i < base.size(); ++i) {
                const auto &kv = base.member(i);
                path.push_back(kv.first);
                if (const Json *v = fresh.find(kv.first))
                    compare(kv.second, *v, path);
                else if (!ignored(path))
                    fail(path, "missing from fresh document");
                path.pop_back();
            }
            for (size_t i = 0; i < fresh.size(); ++i) {
                const auto &kv = fresh.member(i);
                if (!base.find(kv.first)) {
                    path.push_back(kv.first);
                    if (!ignored(path))
                        fail(path, "not present in baseline");
                    path.pop_back();
                }
            }
            break;
          }
          case Json::Type::Array: {
            if (base.size() != fresh.size()) {
                fail(path, detail::format(
                               "array size %zu != baseline %zu",
                               fresh.size(), base.size()));
                return;
            }
            for (size_t i = 0; i < base.size(); ++i) {
                path.push_back(std::to_string(i));
                compare(base.at(i), fresh.at(i), path);
                path.pop_back();
            }
            break;
          }
          case Json::Type::Double: {
            ++leavesCompared;
            double a = base.asDouble(), b = fresh.asDouble();
            double scale = std::max(std::abs(a), std::abs(b));
            if (std::abs(a - b) > tol * std::max(scale, 1e-12)) {
                fail(path, detail::format(
                               "%.9g != baseline %.9g (rel tol %g)", b,
                               a, tol));
            }
            break;
          }
          case Json::Type::Int: {
            ++leavesCompared;
            if (fresh.type() == Json::Type::Double) {
                // Numeric cross-type: fall back to tolerance.
                double a = base.asDouble(), b = fresh.asDouble();
                double scale = std::max(std::abs(a), std::abs(b));
                if (std::abs(a - b) > tol * std::max(scale, 1e-12))
                    fail(path, detail::format("%.9g != baseline %.9g",
                                              b, a));
            } else if (base.asInt() != fresh.asInt()) {
                fail(path,
                     detail::format(
                         "%lld != baseline %lld (exact)",
                         static_cast<long long>(fresh.asInt()),
                         static_cast<long long>(base.asInt())));
            }
            break;
          }
          case Json::Type::String: {
            ++leavesCompared;
            if (base.asString() != fresh.asString())
                fail(path, "\"" + fresh.asString() +
                               "\" != baseline \"" + base.asString() +
                               "\"");
            break;
          }
          case Json::Type::Bool: {
            ++leavesCompared;
            if (base.asBool() != fresh.asBool())
                fail(path, "bool differs from baseline");
            break;
          }
          case Json::Type::Null:
            ++leavesCompared;
            break;
        }
    }
};

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(
            stderr,
            "usage: bench_compare <baseline.json> <fresh.json>\n"
            "                     [--tol <rel>] [--ignore <dot.path>]...\n");
        return 2;
    }
    Comparer cmp;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) {
            cmp.tol = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--ignore") == 0 && i + 1 < argc) {
            cmp.ignores.push_back(splitPath(argv[++i]));
        } else {
            std::fprintf(stderr, "bench_compare: unknown arg %s\n",
                         argv[i]);
            return 2;
        }
    }

    Json base, fresh;
    if (!loadJson(argv[1], &base) || !loadJson(argv[2], &fresh))
        return 2;

    std::vector<std::string> path;
    cmp.compare(base, fresh, path);

    if (cmp.diffs.empty()) {
        std::printf("bench_compare: %s matches baseline %s "
                    "(%llu leaves, rel tol %g, %zu ignored paths)\n",
                    argv[2], argv[1],
                    static_cast<unsigned long long>(cmp.leavesCompared),
                    cmp.tol, cmp.ignores.size());
        return 0;
    }
    std::printf("bench_compare: %zu difference(s) vs baseline %s:\n",
                cmp.diffs.size(), argv[1]);
    TextTable t({"path", "difference"});
    size_t shown = std::min<size_t>(cmp.diffs.size(), 50);
    for (size_t i = 0; i < shown; ++i)
        t.addRow({cmp.diffs[i].path, cmp.diffs[i].what});
    std::printf("%s", t.render().c_str());
    if (shown < cmp.diffs.size())
        std::printf("... and %zu more\n", cmp.diffs.size() - shown);
    return 1;
}
