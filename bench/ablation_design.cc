/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out: measures
 * the large-GRU and small-GRU steady-state cycles with each mechanism
 * disabled in turn —
 *
 *   1. software pipelining / chain interleaving (compiler),
 *   2. thin tail tiles (element-packed MRF compute),
 *   3. the MFU count,
 *   4. the per-chain configuration interval,
 *   5. lane width at a fixed MAC budget.
 *
 * Quantifies how much of the paper's published utilization each
 * mechanism buys.
 */

#include <cstdio>

#include "bench_util.h"
#include "bw/bw.h"

using namespace bw;
using namespace bw::bench;

namespace {

Cycles
gruPerStep(unsigned hidden, const NpuConfig &cfg, bool pipeline,
           bool thin_tiles)
{
    Rng rng(1);
    CompiledModel m =
        compileGir(makeGru(randomGruWeights(hidden, hidden, rng)), cfg,
                   {.pipelineInputProjections = pipeline});
    timing::NpuTiming sim(cfg);
    if (thin_tiles)
        sim.setTileBeats(m.tileBeats);
    auto res = sim.run(m.prologue, m.step, 25);
    return res.steadyStateIterationCycles();
}

double
utilPct(unsigned hidden, Cycles per_step, const NpuConfig &cfg)
{
    RnnLayerSpec layer{RnnKind::Gru, hidden, 1, hidden};
    return 100.0 * static_cast<double>(layer.opsPerStep()) /
           (static_cast<double>(per_step) * cfg.opsPerCycle());
}

} // namespace

int
main()
{
    NpuConfig base = NpuConfig::bwS10();
    std::printf("Design-choice ablations on %s "
                "(GRU h=2816, the paper's largest benchmark; paper: 662 "
                "cycles/step, 74.8%% util)\n\n",
                base.name.c_str());

    TextTable t({"Variant", "cycles/step", "util", "vs baseline"});
    Cycles baseline = gruPerStep(2816, base, true, true);
    auto add = [&](const char *name, Cycles c, const NpuConfig &cfg) {
        t.addRow({name, std::to_string(c),
                  fmtF(utilPct(2816, c, cfg), 1) + "%",
                  pctDelta(static_cast<double>(c),
                           static_cast<double>(baseline))});
    };
    add("baseline (all mechanisms)", baseline, base);
    add("no software pipelining", gruPerStep(2816, base, false, true),
        base);
    add("no thin tail tiles", gruPerStep(2816, base, true, false), base);
    {
        NpuConfig c = base;
        c.mfus = 1;
        // With one MFU the compiler stops fusing at the unit budget and
        // splits the GRU's blend into two chains — costing an extra
        // chain-configuration interval per step.
        add("1 MFU instead of 2", gruPerStep(2816, c, true, true), c);
    }
    {
        NpuConfig c = base;
        c.mfus = 4;
        add("4 MFUs instead of 2", gruPerStep(2816, c, true, true), c);
    }
    {
        NpuConfig c = base;
        c.timing.chainInterval = 8;
        add("chain config interval 76 -> 8",
            gruPerStep(2816, c, true, true), c);
    }
    {
        NpuConfig c = base;
        c.lanes = 10;       // narrower dot engines: 40-beat streams
        c.tileEngines = 24; // 24*400*10 = 96,000 MACs (same budget)
        add("10 lanes x 24 engines (same MACs)",
            gruPerStep(2816, c, true, true), c);
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Small-model floor (GRU h=1024; paper: 632 "
                "cycles/step)\n\n");
    TextTable s({"Variant", "cycles/step"});
    s.addRow({"baseline",
              std::to_string(gruPerStep(1024, base, true, true))});
    {
        NpuConfig c = base;
        c.timing.chainInterval = 8;
        s.addRow({"chain config interval 76 -> 8",
                  std::to_string(gruPerStep(1024, c, true, true))});
    }
    {
        NpuConfig c = base;
        c.timing.mfuActLatency = 4;
        c.timing.arbNetLatency = 4;
        s.addRow({"shallow MFU/network latencies",
                  std::to_string(gruPerStep(1024, c, true, true))});
    }
    std::printf("%s\n", s.render().c_str());

    std::printf("Reading: software pipelining and thin tiles carry the "
                "large-model utilization;\nthe chain-configuration "
                "interval sets the small-model floor (the paper's flat "
                "~630\ncycles/step); extra MFUs barely matter for RNNs "
                "(the MVM dominates), matching the\npaper's choice of "
                "two.\n");
    return 0;
}
