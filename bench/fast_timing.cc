/**
 * @file
 * Timing-fidelity ladder benchmark: wall-clock speedup and accuracy of
 * the event-driven fast tier and the memoized cached tier against the
 * cycle-accurate ground truth, on serve-engine-shaped RNN workloads.
 *
 * The machine-readable artifact (BENCH_fast_timing.json, override with
 * BW_BENCH_JSON) pins every simulated quantity exactly — cycle counts,
 * error flags, simulated p50/p99 replay latencies — while wall-clock
 * leaves live under "wall" subtrees the regression gate ignores. The
 * harness itself enforces the acceptance floors: zero simulated-cycle
 * error, bit-identical cached hits, and >= 10x fast-tier wall-clock
 * speedup on the largest workload.
 */

#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench_util.h"
#include "bw/bw.h"

using namespace bw;

namespace {

double
wallMs(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct WorkloadSpec
{
    const char *name;
    RnnKind kind;
    unsigned hidden;
    unsigned iterations;
};

bool
chainsEqual(const std::vector<obs::ChainProfile> &a,
            const std::vector<obs::ChainProfile> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].chain != b[i].chain || a[i].kind != b[i].kind ||
            a[i].dispatchStart != b[i].dispatchStart ||
            a[i].dispatchDone != b[i].dispatchDone ||
            a[i].decodeDone != b[i].decodeDone ||
            a[i].done != b[i].done || a[i].dataStall != b[i].dataStall ||
            a[i].inputStall != b[i].inputStall ||
            a[i].structStall != b[i].structStall)
            return false;
    }
    return true;
}

bool
resultsBitIdentical(const timing::TimingResult &a,
                    const timing::TimingResult &b)
{
    return a.totalCycles == b.totalCycles &&
           a.dispatchedOps == b.dispatchedOps && a.mvmOps == b.mvmOps &&
           a.instructionsDispatched == b.instructionsDispatched &&
           a.chainsExecuted == b.chainsExecuted &&
           a.nativeTileOps == b.nativeTileOps &&
           a.mvmBusyCycles == b.mvmBusyCycles &&
           a.mfuBusyCycles == b.mfuBusyCycles &&
           a.iterationEnd == b.iterationEnd &&
           a.outputTimes == b.outputTimes &&
           a.stats.toJson().dump() == b.stats.toJson().dump();
}

} // namespace

int
main()
{
    NpuConfig cfg = NpuConfig::bwS10();
    std::printf("Timing-fidelity ladder on %s: cycle-accurate vs fast "
                "(event-driven) vs cached (memoized)\n\n",
                cfg.name.c_str());

    const WorkloadSpec specs[] = {
        {"gru_h512_i2000", RnnKind::Gru, 512, 2000},
        {"lstm_h256_i1500", RnnKind::Lstm, 256, 1500},
    };

    TextTable t({"Workload", "Cycles", "Cycle ms", "Fast ms", "Fast x",
                 "Fast err", "Hit ms", "Hit x", "Bit-identical"});
    Json workloads = Json::array();
    bool pass = true;
    double biggest_speedup = 0;

    for (const WorkloadSpec &spec : specs) {
        Rng rng(1);
        GirGraph g =
            spec.kind == RnnKind::Lstm
                ? makeLstm(randomLstmWeights(spec.hidden, spec.hidden, rng))
                : makeGru(randomGruWeights(spec.hidden, spec.hidden, rng));
        CompileOptions copts;
        copts.pipelineInputProjections = spec.kind == RnnKind::Gru;
        CompiledModel m = compileGir(g, cfg, copts);

        // The serve-engine service-time path is an unprofiled run();
        // that is the wall-clock race. The profiled variant (chain
        // profiles for span/flight exports) is measured separately —
        // its copy cost is shared by both tiers.
        timing::CycleAccurateModel exact(cfg);
        exact.setTileBeats(m.tileBeats);
        timing::TimingResult want;
        double cycle_ms = wallMs([&] {
            want = exact.run(m.prologue, m.step, spec.iterations);
        });
        std::vector<obs::ChainProfile> exact_chains;
        double cycle_prof_ms = wallMs([&] {
            exact.runProfiled(m.prologue, m.step, spec.iterations,
                              &exact_chains);
        });

        timing::EventDrivenModel fast(cfg);
        fast.setTileBeats(m.tileBeats);
        timing::TimingResult got;
        double fast_ms = wallMs([&] {
            got = fast.run(m.prologue, m.step, spec.iterations);
        });
        std::vector<obs::ChainProfile> fast_chains;
        double fast_prof_ms = wallMs([&] {
            fast.runProfiled(m.prologue, m.step, spec.iterations,
                             &fast_chains);
        });
        double rel_err =
            want.totalCycles
                ? std::abs(static_cast<double>(got.totalCycles) -
                           static_cast<double>(want.totalCycles)) /
                      static_cast<double>(want.totalCycles)
                : 0.0;
        bool chains_ok = chainsEqual(fast_chains, exact_chains);
        bool extrapolated = fast.extrapolatedRuns() == 2 &&
                            fast.exactFallbacks() == 0;

        timing::MemoTimingModel memo(
            std::make_unique<timing::CycleAccurateModel>(cfg));
        memo.setTileBeats(m.tileBeats);
        timing::ProfiledRun miss =
            memo.runShared(m.prologue, m.step, spec.iterations);
        timing::ProfiledRun hit;
        double hit_ms = wallMs([&] {
            hit = memo.runShared(m.prologue, m.step, spec.iterations);
        });
        bool cached_ok =
            memo.hits() == 1 &&
            resultsBitIdentical(hit.result, want) &&
            resultsBitIdentical(miss.result, want) &&
            hit.chains && chainsEqual(*hit.chains, exact_chains);

        double fast_x = fast_ms > 0 ? cycle_ms / fast_ms : 0;
        double hit_x = hit_ms > 0 ? cycle_ms / hit_ms : 0;
        biggest_speedup = std::max(biggest_speedup, fast_x);
        pass = pass && rel_err == 0.0 && chains_ok && extrapolated &&
               cached_ok;

        t.addRow({spec.name, std::to_string(want.totalCycles),
                  fmtF(cycle_ms, 1), fmtF(fast_ms, 1), fmtF(fast_x, 1),
                  fmtF(rel_err, 6), fmtF(hit_ms, 3), fmtF(hit_x, 0),
                  cached_ok ? "yes" : "NO"});

        Json w = Json::object();
        w.set("name", spec.name);
        w.set("iterations", spec.iterations);
        Json cyc = Json::object();
        cyc.set("total_cycles", want.totalCycles);
        cyc.set("chains", want.chainsExecuted);
        w.set("cycle_accurate", std::move(cyc));
        Json f = Json::object();
        f.set("total_cycles", got.totalCycles);
        f.set("rel_cycle_error", rel_err);
        f.set("chains_identical", chains_ok);
        f.set("extrapolated", extrapolated);
        w.set("fast", std::move(f));
        Json c = Json::object();
        c.set("bit_identical", cached_ok);
        w.set("cached", std::move(c));
        Json wall = Json::object();
        wall.set("cycle_ms", cycle_ms);
        wall.set("cycle_profiled_ms", cycle_prof_ms);
        wall.set("fast_ms", fast_ms);
        wall.set("fast_profiled_ms", fast_prof_ms);
        wall.set("fast_speedup", fast_x);
        wall.set("cached_hit_ms", hit_ms);
        wall.set("cached_hit_speedup", hit_x);
        w.set("wall", std::move(wall));
        workloads.push(std::move(w));
    }
    std::printf("%s\n", t.render().c_str());

    // Serve-engine tie-in: the simulated p50/p99 of a deterministic
    // replay must not move when the engine's timing tier changes.
    Rng rng(9);
    Session session = Session::compile(
        makeGru(randomGruWeights(128, 128, rng)), cfg);
    std::vector<double> arrivals;
    for (int i = 0; i < 64; ++i)
        arrivals.push_back(i * 0.0004);
    const unsigned serve_steps = 64;
    auto replay_at = [&](timing::Fidelity f) {
        serve::EngineOptions opts;
        opts.fidelity = f;
        opts.queueDepth = arrivals.size();
        auto engine = session.serve(opts);
        ServeStats s = engine->replay(arrivals, serve_steps);
        engine->shutdown();
        return s;
    };
    ServeStats serve_cycle = replay_at(timing::Fidelity::CycleAccurate);
    ServeStats serve_fast = replay_at(timing::Fidelity::Fast);
    ServeStats serve_cached = replay_at(timing::Fidelity::Cached);
    bool serve_ok =
        serve_fast.p50LatencyMs == serve_cycle.p50LatencyMs &&
        serve_fast.p99LatencyMs == serve_cycle.p99LatencyMs &&
        serve_cached.p50LatencyMs == serve_cycle.p50LatencyMs &&
        serve_cached.p99LatencyMs == serve_cycle.p99LatencyMs;
    pass = pass && serve_ok;
    std::printf("Serve replay (GRU h=128, %u steps, %zu requests): "
                "p50 %.4f ms, p99 %.4f ms — fast/cached deltas %s\n",
                serve_steps, arrivals.size(), serve_cycle.p50LatencyMs,
                serve_cycle.p99LatencyMs,
                serve_ok ? "zero" : "NONZERO");

    Json doc = Json::object();
    doc.set("schema", "bw.bench.fast_timing/1");
    doc.set("config", cfg.name);
    doc.set("workloads", std::move(workloads));
    Json serve = Json::object();
    serve.set("steps", serve_steps);
    serve.set("requests", static_cast<uint64_t>(arrivals.size()));
    serve.set("p50_ms", serve_cycle.p50LatencyMs);
    serve.set("p99_ms", serve_cycle.p99LatencyMs);
    serve.set("fast_p50_delta", serve_fast.p50LatencyMs -
                                    serve_cycle.p50LatencyMs);
    serve.set("fast_p99_delta", serve_fast.p99LatencyMs -
                                    serve_cycle.p99LatencyMs);
    serve.set("cached_p50_delta", serve_cached.p50LatencyMs -
                                      serve_cycle.p50LatencyMs);
    serve.set("cached_p99_delta", serve_cached.p99LatencyMs -
                                      serve_cycle.p99LatencyMs);
    doc.set("serve", std::move(serve));

    std::string path = bench::benchJsonPath("fast_timing");
    std::ofstream out(path);
    out << doc.dump(2) << "\n";
    std::printf("\nWrote %s\n", path.c_str());

    if (biggest_speedup < 10.0) {
        std::printf("FAIL: fast-tier speedup %.1fx below the 10x "
                    "acceptance floor\n",
                    biggest_speedup);
        return 1;
    }
    if (!pass) {
        std::printf("FAIL: accuracy/bit-identity acceptance checks "
                    "failed (see table)\n");
        return 1;
    }
    std::printf("PASS: fast tier %.0fx with zero simulated-cycle error; "
                "cached hits bit-identical\n",
                biggest_speedup);
    return 0;
}
