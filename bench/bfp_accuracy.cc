/**
 * @file
 * Quantifies the Section VI narrow-precision claims: block floating
 * point with 2-5 bit mantissas tracks full-precision model outputs
 * within small error. Measures per-block quantization error, dot-
 * product error, and end-to-end LSTM hidden-state divergence across
 * mantissa widths on the functional simulator.
 */

#include <cstdio>

#include "bw/bw.h"

using namespace bw;

int
main()
{
    std::printf("Section VI: narrow-precision block floating point "
                "accuracy\n\n");

    // Per-block and dot-product error vs mantissa width.
    {
        TextTable t({"Format", "Block relRMSE", "Dot relRMSE"});
        Rng rng(7);
        for (int mant : {2, 3, 4, 5, 6, 8}) {
            BfpFormat fmt{1, 5, mant};
            double block_err = 0, dot_err = 0, dot_ref = 0;
            int trials = 200;
            for (int i = 0; i < trials; ++i) {
                FVec a(400), b(400);
                fillUniform(a, rng, -1.0f, 1.0f);
                fillUniform(b, rng, -1.0f, 1.0f);
                auto q = bfpRoundTrip(a, fmt);
                block_err += measureQuantError(a, q).relRmse;
                double exact = 0;
                for (size_t k = 0; k < a.size(); ++k)
                    exact += static_cast<double>(a[k]) * b[k];
                double got = BfpBlock::dot(BfpBlock(a, fmt),
                                           BfpBlock(b, fmt));
                dot_err += (got - exact) * (got - exact);
                dot_ref += exact * exact;
            }
            t.addRow({fmt.toString(), fmtPct(block_err / trials, 2),
                      fmtPct(std::sqrt(dot_err / dot_ref), 2)});
        }
        std::printf("%s\n", t.render().c_str());
    }

    // End-to-end: LSTM hidden state after 16 steps, quantized NPU vs
    // float reference (the "model scoring accuracy" proxy available
    // without production models).
    {
        std::printf("End-to-end LSTM hidden-state error after 16 steps "
                    "(h=96, functional simulator)\n\n");
        TextTable t({"Matrix precision", "max |h_npu - h_ref|",
                     "relative RMSE"});
        for (int mant : {2, 3, 4, 5, 7}) {
            NpuConfig cfg;
            cfg.name = "acc";
            cfg.nativeDim = 32;
            cfg.lanes = 8;
            cfg.tileEngines = 2;
            cfg.mrfSize = 256;
            cfg.mrfIndexSpace = 1024;
            cfg.initialVrfSize = 128;
            cfg.addSubVrfSize = 128;
            cfg.multiplyVrfSize = 128;
            cfg.precision = BfpFormat{1, 5, mant};

            Rng rng(3);
            LstmWeights w = randomLstmWeights(96, 96, rng);
            CompiledModel m = compileGir(makeLstm(w), cfg);
            FuncMachine machine(cfg);
            m.install(machine);

            std::vector<FVec> xs;
            for (int t2 = 0; t2 < 16; ++t2) {
                FVec x(96);
                fillUniform(x, rng, -0.5f, 0.5f);
                xs.push_back(x);
            }
            auto got = m.runSequence(machine, xs);
            auto want = lstmRefRun(w, xs);
            QuantError e = measureQuantError(want.back(), got.back());
            t.addRow({cfg.precision.toString(), fmtF(e.maxAbs, 4),
                      fmtPct(e.relRmse, 2)});
        }
        std::printf("%s\n", t.render().c_str());
    }

    std::printf("Paper claim: mantissas as low as 2-5 bits keep model "
                "accuracy within 1-2%% of\nbaseline (with fine-tuning); "
                "the trend above shows the same rapid error decay\n"
                "with mantissa width, with point-wise math held at "
                "float16 throughout.\n");
    return 0;
}
