/**
 * @file
 * Logging and error-reporting primitives for the Brainwave reproduction.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (simulator bugs), fatal() for user errors (bad configuration, malformed
 * programs), warn()/inform() for status messages that never stop execution.
 * Recoverable user-facing errors thrown by library entry points use
 * bw::Error so that callers (tests, services) can catch them.
 */

#ifndef BW_COMMON_LOGGING_H
#define BW_COMMON_LOGGING_H

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace bw {

/** Exception type for user-recoverable errors raised by library calls. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what) : std::runtime_error(what) {}
};

namespace detail {

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const std::string &m);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &m);
void warnImpl(const std::string &m);
void informImpl(const std::string &m);

/** Assertion-message helpers: with no arguments the message is empty. */
inline std::string assertMsg() { return std::string(); }
std::string assertMsg(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Abort with a message: something happened that is a bug in this library. */
#define BW_PANIC(...) \
    ::bw::detail::panicImpl(__FILE__, __LINE__, \
                            ::bw::detail::format(__VA_ARGS__))

/** Throw bw::Error: the caller supplied invalid input or configuration. */
#define BW_FATAL(...) \
    ::bw::detail::fatalImpl(__FILE__, __LINE__, \
                            ::bw::detail::format(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define BW_WARN(...) ::bw::detail::warnImpl(::bw::detail::format(__VA_ARGS__))

/** Informational message to stderr. */
#define BW_INFORM(...) \
    ::bw::detail::informImpl(::bw::detail::format(__VA_ARGS__))

/** Internal invariant check; active in all build types. */
#define BW_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::bw::detail::panicImpl(__FILE__, __LINE__, \
                std::string("assertion failed: " #cond " ") + \
                ::bw::detail::assertMsg(__VA_ARGS__)); \
        } \
    } while (0)

} // namespace bw

#endif // BW_COMMON_LOGGING_H
