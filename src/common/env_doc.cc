#include "common/env_doc.h"

#include <sstream>

namespace bw {

const std::vector<EnvVarDoc> &
envVarDocs()
{
    static const std::vector<EnvVarDoc> docs = {
        {"BW_TIMING_TRACE",
         "Stream a one-line-per-chain text trace from timing::NpuTiming "
         "to stderr (dispatch/decode/done cycles plus the chain's stall "
         "breakdown). Set to 'events' to additionally print every "
         "resource busy interval. A sink attached with setTraceSink() "
         "takes precedence."},
        {"BW_TIMING_MODE",
         "Timing-fidelity tier wherever a fromEnv()/Session default is "
         "consulted: 'cycle' (exact NpuTiming pipeline model, the "
         "default), 'fast' (event-driven steady-state extrapolation "
         "with exact fallback), or 'cached' (memoized cycle-accurate; "
         "repeat runs replay bit-identically in O(1))."},
        {"BW_TIMING_FAST_WARMUP",
         "Exact-simulator warmup iterations for the 'fast' tier before "
         "steady-state extrapolation kicks in (default 16). Raise it "
         "for workloads whose pipeline takes longer to reach a "
         "periodic steady state."},
        {"BW_SCORECARD_JSON",
         "Output path for repro_scorecard's machine-readable artifact "
         "(default BENCH_scorecard.json in the working directory)."},
        {"BW_SERVE_REPLICAS",
         "Override serve::EngineOptions::replicas wherever "
         "EngineOptions::fromEnv() is used (the serve_engine example)."},
        {"BW_SERVE_QUEUE_DEPTH",
         "Override serve::EngineOptions::queueDepth (bounded admission "
         "queue; submissions beyond it are rejected QUEUE_FULL)."},
        {"BW_SERVE_POLICY",
         "Dispatch policy: 'unbatched' (BW discipline, FIFO one at a "
         "time) or 'batched' (GPU discipline, accumulate maxBatch or "
         "timeout)."},
        {"BW_SERVE_MAX_BATCH",
         "Override serve::EngineOptions::maxBatch (batched policy batch "
         "size cap)."},
        {"BW_SERVE_TIMEOUT_MS",
         "Override serve::EngineOptions::batchTimeoutMs (batched policy "
         "accumulation timeout)."},
        {"BW_SERVE_TIMESCALE",
         "Wall-clock seconds a worker really sleeps per simulated "
         "second of timed service (1.0 = real time, 0 = instantaneous; "
         "reported service times are always unscaled)."},
        {"BW_STATS_JSON",
         "Output path for the machine-readable serving-stats document "
         "written by speech_service and serve_engine alongside their "
         "tables."},
        {"BW_SERVE_TRACE",
         "Output path for serve_engine's Chrome trace (queue wait vs. "
         "service per worker, overlaid with sampled metric counter "
         "tracks and, when span tracing is on, per-request span "
         "events)."},
        {"BW_SPAN_SAMPLE",
         "Span-tracing head sampling: trace 1 in every N admitted "
         "requests (default 1 = every request, 0 = none). The decision "
         "is a pure function of the deterministic request sequence "
         "number."},
        {"BW_SPANS_JSON",
         "Output path for serve_engine's span-tree JSON export "
         "(schema bw.spans/1): one tree per sampled request — request / "
         "queue_wait / dispatch / execute / chain[i] with per-chain "
         "stall breakdowns. Feed it to the bw_spans analyzer or merge "
         "into a Perfetto trace with bw_trace merge."},
        {"BW_METRICS_PORT",
         "Serve serve_engine's metrics registry over HTTP (/metrics "
         "Prometheus text, /metrics.json, /healthz). Port 0 binds an "
         "ephemeral port, printed on stdout."},
        {"BW_METRICS_PERIOD_MS",
         "Background metrics sampler period in serve_engine (default "
         "25 ms)."},
        {"BW_METRICS_LINGER_S",
         "Keep serve_engine's metrics endpoint alive that many seconds "
         "after the run, so external scrapers can't race process "
         "exit."},
        {"BW_METRICS_JSON",
         "Output path for serve_engine's JSON metrics exposition "
         "(includes per-bucket latency exemplars naming slowest trace "
         "ids when span tracing is on)."},
        {"BW_BENCH_JSON",
         "Override the output path of a harness's machine-readable "
         "artifact (BENCH_fig7_utilization.json, "
         "BENCH_table5_deepbench.json, BENCH_serve_engine.json)."},
        {"BW_FLIGHT_WINDOW_MS",
         "Flight-recorder tail-promotion window in milliseconds of the "
         "engine's clock (default 1000): the slowest-K ranking runs "
         "per window of admission time."},
        {"BW_FLIGHT_SLOWEST_K",
         "Ok flight records promoted per promotion window, ranked by "
         "latency (default 4; 0 promotes only anomalies — expiries, "
         "rejects, errors, cancellations)."},
        {"BW_FLIGHT_RING",
         "Flight-recorder ring capacity per shard (default 4096 "
         "records); the oldest records of a full shard are overwritten "
         "and counted as dropped."},
        {"BW_FLIGHT_JSON",
         "Output path for serve_engine's promoted flight-record export "
         "(schema bw.flight/1, embedding one bw.spans/1 tree per "
         "promoted record). Inspect with 'bw_spans flight', check with "
         "'bw_spans validate'."},
        {"BW_SLO_LATENCY_OBJECTIVE",
         "Latency SLO objective: target fraction of served requests "
         "meeting their deadline class's latency target (default "
         "0.99)."},
        {"BW_SLO_AVAILABILITY_OBJECTIVE",
         "Availability SLO objective: target fraction of submissions "
         "served successfully (default 0.999)."},
        {"BW_SLO_FAST_WINDOW_S",
         "Fast burn-rate window in seconds of the feeding clock "
         "(default 300). The multi-window alert fires only when both "
         "windows burn above the page threshold."},
        {"BW_SLO_SLOW_WINDOW_S",
         "Slow burn-rate window in seconds of the feeding clock "
         "(default 3600)."},
        {"BW_SLO_JSON",
         "Output path for serve_engine's SLO evaluation document "
         "(schema bw.slo/1): per-class lifetime counters plus "
         "fast/slow burn rates for both SLIs, as served on "
         "/slo.json."},
        {"BW_CLUSTER_MIX",
         "Replica-group mix for cluster::ClusterOptions::fromEnv() as "
         "'preset:count' pairs, e.g. 's5:2,a10:1,s10:1' (presets s5 / "
         "a10 / s10 = the Table III configurations). Replaces the "
         "configured groups; the first configured group's engine "
         "options carry over as the template."},
        {"BW_CLUSTER_POLICY",
         "Front-door routing policy for the cluster: "
         "'consistent_hash' (hash ring by model, max weight-cache "
         "affinity), 'least_loaded' (fewest queued + in-flight), or "
         "'slo_aware' (least-loaded plus class-ordered admission "
         "shedding)."},
        {"BW_CLUSTER_CACHE_TILES",
         "Per-engine LRU weight-cache capacity in native matrix tiles "
         "(0 = each engine's NpuConfig::mrfSize). Requests for "
         "non-resident models are charged a DRAM weight-stream reload "
         "in their service time."},
        {"BW_CLUSTER_SEED",
         "Seed for the cluster traffic generator (cluster_serve's "
         "open-loop Poisson + diurnal + burst trace). Same seed, same "
         "trace, byte-identical replay exports."},
        {"BW_CLUSTER_RPS",
         "Base arrival rate in requests/second for the cluster traffic "
         "generator, before diurnal and burst modulation."},
        {"BW_CLUSTER_DURATION_S",
         "Generated cluster trace duration in virtual seconds."},
        {"BW_CLUSTER_ROUTE_JSON",
         "Output path for cluster_serve's router decision log (schema "
         "bw.route/1): policy, shed counters by deadline class, and "
         "one row per routing decision. Check with 'bw_spans "
         "validate'."},
        {"BW_ROUTE_LOG_MAX",
         "Bounded capacity of the router's materialized in-memory "
         "decision log (default 65536; older rows are dropped and "
         "counted). For unbounded traces attach the O(1) streaming "
         "export (BW_FLEET_STREAM) instead of growing this."},
        {"BW_DEBUG_RING",
         "Per-engine error-ring capacity for /debug/errors (default "
         "64 entries; 0 disables retention). The ring holds the most "
         "recent rejected/expired/errored submissions with their "
         "status strings."},
        {"BW_AUDIT_SAMPLE",
         "Fidelity-audit sampling period N for clusters on a fast or "
         "cached timing tier: every Nth completed compiled-model "
         "request is re-priced against the cycle-accurate model "
         "(bw_timing_audit_{checks,divergence}_total, /debug/audit). "
         "0 (default) disables the audit."},
        {"BW_AUDIT_JSON",
         "Output path for cluster_serve's fidelity-audit document "
         "(schema bw.audit/1): sampling config, check/divergence "
         "counters, and the last checked/diverged samples, as served "
         "on /debug/audit."},
        {"BW_FLEET_STREAM",
         "Output path for cluster_serve's streaming router-decision "
         "log (schema bw.routestream/1, NDJSON): one line per "
         "decision written as it is made, O(1) memory at any trace "
         "length, summary trailer last. Check with 'bw_spans "
         "validate-stream'."},
        {"BW_FLEET_METRICS_JSON",
         "Output path for cluster_serve's federated fleet metrics "
         "document: every shard registry's series labeled {shard, "
         "group} plus the cluster-level series, as served on "
         "/fleet/metrics.json."},
        {"BW_FLEET_SLO_JSON",
         "Output path for cluster_serve's fleet SLO rollup (schema "
         "bw.slo/1): per-class window sums across every shard monitor "
         "with burn rates recomputed on the aggregate, as served on "
         "/fleet/slo.json."},
        {"BW_FLEET_SPANS_NDJSON",
         "Output path for cluster_serve's streaming span-tree export "
         "(schema bw.spanstream/1, NDJSON): one stitched "
         "router->engine->chain trace tree per line, as served on "
         "/fleet/spans.ndjson. Check with 'bw_spans validate-stream'."},
        {"BW_CHAOS_RATE",
         "Chaos-plane fault arrivals per virtual second (Poisson, "
         "cluster-wide). 0 (default) disables fault injection; with "
         "BW_CHAOS_HORIZON_S > 0 the cluster generates a seeded "
         "ChaosSchedule at construction and replays inject "
         "crash/hang/slow/drop faults deterministically."},
        {"BW_CHAOS_HORIZON_S",
         "Chaos-plane schedule horizon: faults are generated in [0, "
         "horizon) virtual seconds. 0 (default) disables injection."},
        {"BW_CHAOS_SEED",
         "Seed for the generated fault schedule and for per-request "
         "drop decisions (default 1). The schedule is a pure function "
         "of (seed, options, shard count), so two replays under one "
         "seed export byte-identical incident timelines."},
        {"BW_CHAOS_MEAN_S",
         "Mean fault-window length in virtual seconds (exponential; "
         "default 0.05). Crash windows extend by the weight-cache "
         "re-warm time on top of this."},
        {"BW_CHAOS_SLOW_FACTOR",
         "Service-time multiplier applied by slow-replica faults "
         "(default 4.0, floor 1.0)."},
        {"BW_CHAOS_DROP_PROB",
         "Per-request drop probability inside a dropped-message "
         "(partition) fault window (default 0.5, clamped to [0,1]). "
         "Which requests drop is a seeded hash of the submission "
         "sequence number, not an RNG stream."},
        {"BW_HEDGE_MS",
         "Hedged-request latency budget in virtual milliseconds: a "
         "routed request whose primary attempt exceeds this (or fails "
         "outright) dispatches a duplicate to the least-loaded other "
         "healthy shard; first completion wins and the loser is "
         "cancelled. Negative (default) disables hedging; 0 hedges "
         "every request. Hedged attempts appear as hedge[i] span "
         "children under the route span."},
        {"BW_HEALTH_DETECT_MS",
         "Virtual milliseconds between a crash/hang fault firing and "
         "health-check detection (default 5). Detection immediately "
         "evicts the shard from routing; crashes then re-warm their "
         "weight cache before rejoining."},
        {"BW_FLEET_INCIDENTS_JSON",
         "Output path for cluster_serve's incident-timeline export "
         "(schema bw.incident/1): one incident per injected fault with "
         "fault/detect/evict/rewarm/recover phase stamps in virtual "
         "microseconds, blast radius, and re-warm charges, as served "
         "on /fleet/incidents.json. Check with 'bw_spans incidents'."},
    };
    return docs;
}

std::string
renderEnvVarHelp(unsigned width)
{
    std::ostringstream out;
    const std::string indent = "      ";
    for (const EnvVarDoc &d : envVarDocs()) {
        out << "  " << d.name << "\n";
        // Greedy word wrap of the description under the name.
        std::istringstream words(d.help);
        std::string word, line = indent;
        while (words >> word) {
            if (line.size() > indent.size() &&
                line.size() + 1 + word.size() > width) {
                out << line << "\n";
                line = indent;
            }
            if (line.size() > indent.size())
                line += " ";
            line += word;
        }
        if (line.size() > indent.size())
            out << line << "\n";
    }
    return out.str();
}

} // namespace bw
