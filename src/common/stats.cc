#include "common/stats.h"

#include <sstream>

namespace bw {

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    std::string prefix = name_.empty() ? "" : name_ + ".";
    for (const auto &[k, v] : counters_)
        os << prefix << k << " = " << v << '\n';
    for (const auto &[k, d] : dists_) {
        os << prefix << k << " = {count=" << d.count()
           << " min=" << d.min() << " max=" << d.max()
           << " mean=" << d.mean() << "}\n";
    }
    return os.str();
}

Json
Distribution::toJson() const
{
    Json j = Json::object();
    j.set("count", count());
    j.set("min", min());
    j.set("max", max());
    j.set("sum", sum());
    j.set("mean", mean());
    j.set("stddev", stddev());
    return j;
}

Json
StatGroup::toJson() const
{
    Json counters = Json::object();
    for (const auto &[k, v] : counters_)
        counters.set(k, v);
    Json dists = Json::object();
    for (const auto &[k, d] : dists_)
        dists.set(k, d.toJson());
    Json j = Json::object();
    j.set("name", name_);
    j.set("counters", std::move(counters));
    j.set("distributions", std::move(dists));
    return j;
}

} // namespace bw
