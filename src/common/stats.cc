#include "common/stats.h"

#include <sstream>

namespace bw {

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    std::string prefix = name_.empty() ? "" : name_ + ".";
    for (const auto &[k, v] : counters_)
        os << prefix << k << " = " << v << '\n';
    for (const auto &[k, d] : dists_) {
        os << prefix << k << " = {count=" << d.count()
           << " min=" << d.min() << " max=" << d.max()
           << " mean=" << d.mean() << "}\n";
    }
    return os.str();
}

} // namespace bw
