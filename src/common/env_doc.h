/**
 * @file
 * The single source of truth for every BW_* environment variable the
 * library and its example binaries honor. The README's "Environment
 * variables" table and `serve_engine --help` both render from this
 * list, so a new variable is documented in one place.
 */

#ifndef BW_COMMON_ENV_DOC_H
#define BW_COMMON_ENV_DOC_H

#include <string>
#include <vector>

namespace bw {

/** One documented environment variable. */
struct EnvVarDoc
{
    const char *name; //!< e.g. "BW_SERVE_REPLICAS"
    const char *help; //!< one-sentence effect description
};

/** All documented BW_* variables, in documentation order. */
const std::vector<EnvVarDoc> &envVarDocs();

/**
 * Render the table as indented wrapped text for a --help screen:
 * variable name, newline, wrapped description at @p width columns.
 */
std::string renderEnvVarHelp(unsigned width = 78);

} // namespace bw

#endif // BW_COMMON_ENV_DOC_H
