#include "common/status.h"

namespace bw {

const char *
statusCodeName(StatusCode c)
{
    switch (c) {
      case StatusCode::Ok: return "OK";
      case StatusCode::InvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::FailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::QueueFull: return "QUEUE_FULL";
      case StatusCode::DeadlineExceeded: return "DEADLINE_EXCEEDED";
      case StatusCode::Cancelled: return "CANCELLED";
      case StatusCode::Unavailable: return "UNAVAILABLE";
      default: BW_PANIC("bad StatusCode %d", static_cast<int>(c));
    }
}

std::string
Status::toString() const
{
    if (ok())
        return "OK";
    std::string s = statusCodeName(code_);
    if (!message_.empty()) {
        s += ": ";
        s += message_;
    }
    return s;
}

} // namespace bw
