#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace bw {
namespace detail {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n <= 0)
        return std::string();
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

std::string
assertMsg(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char *file, int line, const std::string &m)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", m.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &m)
{
    throw Error(format("%s (%s:%d)", m.c_str(), file, line));
}

void
warnImpl(const std::string &m)
{
    std::fprintf(stderr, "warn: %s\n", m.c_str());
}

void
informImpl(const std::string &m)
{
    std::fprintf(stderr, "info: %s\n", m.c_str());
}

} // namespace detail
} // namespace bw
