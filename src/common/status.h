/**
 * @file
 * Lightweight status/expected types for recoverable, caller-visible
 * failures: input validation on the serving entry points and admission
 * control in the serving engine (bw::serve). Unlike bw::Error (thrown),
 * a Status is a value — cheap enough for per-request admission
 * decisions on the hot path, and explicit enough that callers must
 * consider the failure case.
 */

#ifndef BW_COMMON_STATUS_H
#define BW_COMMON_STATUS_H

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace bw {

/** Why an operation could not be performed. */
enum class StatusCode : uint8_t
{
    Ok = 0,
    InvalidArgument,    //!< malformed input (wrong size, bad option)
    FailedPrecondition, //!< valid input, but the object can't do this
    QueueFull,          //!< admission control rejected the request
    DeadlineExceeded,   //!< request expired before (or during) service
    Cancelled,          //!< request abandoned by shutdown
    Unavailable,        //!< engine is draining or stopped
};

const char *statusCodeName(StatusCode c);

/** A status code plus a human-readable detail message. */
class Status
{
  public:
    Status() = default;
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status
    invalidArgument(std::string m)
    {
        return Status(StatusCode::InvalidArgument, std::move(m));
    }
    static Status
    failedPrecondition(std::string m)
    {
        return Status(StatusCode::FailedPrecondition, std::move(m));
    }
    static Status
    queueFull(std::string m)
    {
        return Status(StatusCode::QueueFull, std::move(m));
    }
    static Status
    deadlineExceeded(std::string m)
    {
        return Status(StatusCode::DeadlineExceeded, std::move(m));
    }
    static Status
    cancelled(std::string m)
    {
        return Status(StatusCode::Cancelled, std::move(m));
    }
    static Status
    unavailable(std::string m)
    {
        return Status(StatusCode::Unavailable, std::move(m));
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "OK" or "INVALID_ARGUMENT: <message>". */
    std::string toString() const;

    /** Throw bw::Error when not ok (bridges to the throwing API). */
    void
    throwIfError() const
    {
        if (!ok())
            throw Error(toString());
    }

    bool
    operator==(const Status &o) const
    {
        return code_ == o.code_ && message_ == o.message_;
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * A value of type T or the Status explaining its absence. The minimal
 * subset of std::expected (C++23) the serving layer needs.
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : state_(std::move(value)) {}
    Expected(Status status) : state_(std::move(status))
    {
        BW_ASSERT(!std::get<Status>(state_).ok(),
                  "Expected<T> built from an OK status carries no value");
    }

    bool ok() const { return std::holds_alternative<T>(state_); }
    explicit operator bool() const { return ok(); }

    /** The status: OK when a value is present. */
    Status
    status() const
    {
        return ok() ? Status() : std::get<Status>(state_);
    }

    const T &
    value() const
    {
        BW_ASSERT(ok(), "Expected::value() on error: %s",
                  std::get<Status>(state_).toString().c_str());
        return std::get<T>(state_);
    }

    T &
    value()
    {
        BW_ASSERT(ok(), "Expected::value() on error: %s",
                  std::get<Status>(state_).toString().c_str());
        return std::get<T>(state_);
    }

    /** Move the value out (call at most once). */
    T
    take()
    {
        BW_ASSERT(ok(), "Expected::take() on error: %s",
                  std::get<Status>(state_).toString().c_str());
        return std::move(std::get<T>(state_));
    }

  private:
    std::variant<Status, T> state_;
};

} // namespace bw

#endif // BW_COMMON_STATUS_H
