/**
 * @file
 * Lightweight statistics collection for simulator components: named scalar
 * counters and streaming distributions grouped per component, dumpable as a
 * formatted report. Modeled loosely on gem5's stats package, scaled down.
 */

#ifndef BW_COMMON_STATS_H
#define BW_COMMON_STATS_H

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace bw {

/** Streaming summary of a sequence of samples (count/min/max/mean). */
class Distribution
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        sumSq_ += v * v;
        ++count_;
    }

    uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Population variance. */
    double
    variance() const
    {
        if (count_ == 0)
            return 0.0;
        double m = mean();
        // The two-pass-free formula cancels catastrophically when the
        // spread is tiny relative to the mean; the true variance is
        // never negative, so clamp the rounding residue.
        return std::max(0.0, sumSq_ / count_ - m * m);
    }

    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** {count,min,max,sum,mean,stddev} as a JSON object. */
    Json toJson() const;

  private:
    uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
};

/**
 * A named group of counters and distributions. Components own a StatGroup
 * and register stats lazily by name; dump() renders a report.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Add @p delta to the named counter (creating it at zero). */
    void
    inc(const std::string &stat, uint64_t delta = 1)
    {
        counters_[stat] += delta;
    }

    /** Set the named counter to an absolute value. */
    void
    set(const std::string &stat, uint64_t value)
    {
        counters_[stat] = value;
    }

    /** Read a counter; zero if never touched. */
    uint64_t
    counter(const std::string &stat) const
    {
        auto it = counters_.find(stat);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Record a sample into the named distribution. */
    void
    sample(const std::string &stat, double v)
    {
        dists_[stat].sample(v);
    }

    /** Read a distribution; an empty one if never touched. */
    const Distribution &
    dist(const std::string &stat) const
    {
        static const Distribution empty;
        auto it = dists_.find(stat);
        return it == dists_.end() ? empty : it->second;
    }

    const std::string &name() const { return name_; }
    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Distribution> &dists() const
    {
        return dists_;
    }

    /** Render a "name.stat = value" report, one line per stat. */
    std::string dump() const;

    /** {name, counters:{...}, distributions:{...}} as a JSON object. */
    Json toJson() const;

    /** Reset all counters and distributions. */
    void
    reset()
    {
        counters_.clear();
        dists_.clear();
    }

  private:
    std::string name_;
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, Distribution> dists_;
};

} // namespace bw

#endif // BW_COMMON_STATS_H
