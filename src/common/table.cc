#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace bw {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    BW_ASSERT(!headers_.empty());
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        BW_FATAL("table row has %zu cells, expected %zu", cells.size(),
                 headers_.size());
    }
    rows_.push_back(std::move(cells));
    ++rowCount_;
}

void
TextTable::addRule()
{
    rows_.emplace_back();
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " ");
            os << row[c] << std::string(widths[c] - row[c].size(), ' ');
            os << " |";
        }
        os << '\n';
    };
    auto emit_rule = [&](std::ostringstream &os) {
        for (size_t c = 0; c < widths.size(); ++c) {
            os << (c == 0 ? "|-" : "-");
            os << std::string(widths[c], '-') << "-|";
        }
        os << '\n';
    };

    std::ostringstream os;
    emit_row(os, headers_);
    emit_rule(os);
    for (const auto &row : rows_) {
        if (row.empty())
            emit_rule(os);
        else
            emit_row(os, row);
    }
    return os.str();
}

std::string
fmtF(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
fmtI(uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
fmtPct(double frac, int prec)
{
    return fmtF(frac * 100.0, prec) + "%";
}

} // namespace bw
