#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace bw {

Json &
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    BW_ASSERT(type_ == Type::Array, "push on non-array JSON value");
    items_.emplace_back(std::string(), std::move(v));
    return *this;
}

Json &
Json::set(const std::string &key, Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    BW_ASSERT(type_ == Type::Object, "set on non-object JSON value");
    for (auto &[k, existing] : items_) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    items_.emplace_back(key, std::move(v));
    return *this;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[k, v] : items_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

bool
Json::operator==(const Json &o) const
{
    // Int and Double compare as numbers so a parsed "2.0" matches.
    if (isNumber() && o.isNumber())
        return asDouble() == o.asDouble() && asInt() == o.asInt();
    if (type_ != o.type_)
        return false;
    switch (type_) {
      case Type::Null: return true;
      case Type::Bool: return bool_ == o.bool_;
      case Type::String: return str_ == o.str_;
      default: break;
    }
    if (items_.size() != o.items_.size())
        return false;
    for (size_t i = 0; i < items_.size(); ++i) {
        if (type_ == Type::Object && items_[i].first != o.items_[i].first)
            return false;
        if (!(items_[i].second == o.items_[i].second))
            return false;
    }
    return true;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
    return out;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent < 0)
            return;
        out += '\n';
        out.append(static_cast<size_t>(indent) * d, ' ');
    };

    switch (type_) {
      case Type::Null:
        out += "null";
        return;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        return;
      case Type::Int: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
        out += buf;
        return;
      }
      case Type::Double: {
        if (!std::isfinite(dbl_)) {
            out += "null";
            return;
        }
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", dbl_);
        // Keep doubles recognizable as such on re-parse.
        if (!std::strpbrk(buf, ".eE"))
            std::strcat(buf, ".0");
        out += buf;
        return;
      }
      case Type::String:
        out += jsonQuote(str_);
        return;
      case Type::Array:
      case Type::Object: {
        const char open = type_ == Type::Array ? '[' : '{';
        const char close = type_ == Type::Array ? ']' : '}';
        out += open;
        for (size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            if (type_ == Type::Object) {
                out += jsonQuote(items_[i].first);
                out += indent < 0 ? ":" : ": ";
            }
            items_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!items_.empty())
            newline(depth);
        out += close;
        return;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent parser over a complete in-memory document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    Json
    document()
    {
        Json v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        BW_FATAL("JSON parse error at offset %zu: %s", pos_, what);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consumeLit(const char *lit)
    {
        size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // BMP-only UTF-8 encoding (no surrogate pairing).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    Json
    parseNumber()
    {
        size_t start = pos_;
        bool is_double = false;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                is_double = true;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("bad number");
        std::string tok = s_.substr(start, pos_ - start);
        if (is_double)
            return Json(std::strtod(tok.c_str(), nullptr));
        return Json(static_cast<int64_t>(
            std::strtoll(tok.c_str(), nullptr, 10)));
    }

    Json
    value()
    {
        char c = peek();
        switch (c) {
          case '{': {
            ++pos_;
            Json obj = Json::object();
            if (peek() == '}') {
                ++pos_;
                return obj;
            }
            while (true) {
                skipWs();
                std::string key = parseString();
                expect(':');
                obj.set(key, value());
                char d = peek();
                ++pos_;
                if (d == '}')
                    return obj;
                if (d != ',')
                    fail("expected ',' or '}' in object");
            }
          }
          case '[': {
            ++pos_;
            Json arr = Json::array();
            if (peek() == ']') {
                ++pos_;
                return arr;
            }
            while (true) {
                arr.push(value());
                char d = peek();
                ++pos_;
                if (d == ']')
                    return arr;
                if (d != ',')
                    fail("expected ',' or ']' in array");
            }
          }
          case '"':
            return Json(parseString());
          case 't':
            if (consumeLit("true"))
                return Json(true);
            fail("bad literal");
          case 'f':
            if (consumeLit("false"))
                return Json(false);
            fail("bad literal");
          case 'n':
            if (consumeLit("null"))
                return Json(nullptr);
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    const std::string &s_;
    size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).document();
}

void
writeJsonFile(const std::string &path, const Json &j)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        BW_FATAL("cannot open %s for writing", path.c_str());
    std::string text = j.dump(2);
    text += '\n';
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (n != text.size())
        BW_FATAL("short write to %s", path.c_str());
}

} // namespace bw
