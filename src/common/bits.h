/**
 * @file
 * Small integer/bit utilities used throughout the simulator.
 */

#ifndef BW_COMMON_BITS_H
#define BW_COMMON_BITS_H

#include <cstdint>
#include <type_traits>

#include "common/logging.h"

namespace bw {

/** Ceiling division for non-negative integers. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
template <typename T>
constexpr T
alignUp(T a, T b)
{
    return ceilDiv(a, b) * b;
}

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** ceil(log2(v)); v must be non-zero. ceilLog2(1) == 0. */
constexpr unsigned
ceilLog2(uint64_t v)
{
    return isPow2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Extract bits [hi:lo] (inclusive) of @p v. */
constexpr uint64_t
bits(uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & ((hi - lo >= 63) ? ~0ULL : ((1ULL << (hi - lo + 1)) - 1));
}

/** Insert @p val into bits [hi:lo] of @p dst. */
constexpr uint64_t
insertBits(uint64_t dst, unsigned hi, unsigned lo, uint64_t val)
{
    uint64_t mask = ((hi - lo >= 63) ? ~0ULL : ((1ULL << (hi - lo + 1)) - 1));
    return (dst & ~(mask << lo)) | ((val & mask) << lo);
}

} // namespace bw

#endif // BW_COMMON_BITS_H
