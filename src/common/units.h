/**
 * @file
 * Unit helpers: cycles, time, rates. The simulator's native unit of time
 * is the clock cycle; conversions to wall-clock latency and TFLOPS are
 * performed through the configured clock frequency.
 */

#ifndef BW_COMMON_UNITS_H
#define BW_COMMON_UNITS_H

#include <cstdint>

namespace bw {

/** Simulated clock cycles. */
using Cycles = uint64_t;

/** Arithmetic operation counts (multiplies + adds, per the paper). */
using OpCount = uint64_t;

/** Convert cycles at @p mhz megahertz to milliseconds. */
constexpr double
cyclesToMs(Cycles c, double mhz)
{
    return static_cast<double>(c) / (mhz * 1e3);
}

/** Convert cycles at @p mhz megahertz to microseconds. */
constexpr double
cyclesToUs(Cycles c, double mhz)
{
    return static_cast<double>(c) / mhz;
}

/** Convert milliseconds at @p mhz megahertz to cycles (rounded down). */
constexpr Cycles
msToCycles(double ms, double mhz)
{
    return static_cast<Cycles>(ms * mhz * 1e3);
}

/** Effective TFLOPS given total ops and elapsed cycles at @p mhz. */
constexpr double
effectiveTflops(OpCount ops, Cycles c, double mhz)
{
    if (c == 0)
        return 0.0;
    return static_cast<double>(ops) / static_cast<double>(c) * mhz / 1e6;
}

/** Peak TFLOPS of a datapath doing @p ops_per_cycle ops at @p mhz. */
constexpr double
peakTflops(OpCount ops_per_cycle, double mhz)
{
    return static_cast<double>(ops_per_cycle) * mhz / 1e6;
}

} // namespace bw

#endif // BW_COMMON_UNITS_H
