/**
 * @file
 * Plain-text table formatter used by the benchmark harnesses to print
 * paper-style tables (Table I, Table V, ...) with aligned columns.
 */

#ifndef BW_COMMON_TABLE_H
#define BW_COMMON_TABLE_H

#include <string>
#include <vector>

namespace bw {

/**
 * Column-aligned text table. Rows are added as vectors of pre-formatted
 * cells; render() pads every column to its widest cell and draws a rule
 * under the header.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one data row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator rule. */
    void addRule();

    /** Number of data rows added so far (rules excluded). */
    size_t rowCount() const { return rowCount_; }

    /** Render the full table, each line terminated with '\n'. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    /** Each entry is either a row of cells or empty (= separator rule). */
    std::vector<std::vector<std::string>> rows_;
    size_t rowCount_ = 0;
};

/** Format a double with @p prec digits after the decimal point. */
std::string fmtF(double v, int prec = 2);

/** Format an integer with thousands separators (1,234,567). */
std::string fmtI(uint64_t v);

/** Format a fraction as a percentage string, e.g. 0.748 -> "74.8%". */
std::string fmtPct(double frac, int prec = 1);

} // namespace bw

#endif // BW_COMMON_TABLE_H
