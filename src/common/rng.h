/**
 * @file
 * Deterministic random number generation. All stochastic behaviour in the
 * library (weight initialization, synthetic workloads) flows through Rng so
 * results are reproducible run to run.
 */

#ifndef BW_COMMON_RNG_H
#define BW_COMMON_RNG_H

#include <cstdint>
#include <random>

namespace bw {

/** Seeded pseudo-random source with convenience distributions. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0xB3A117ED) : engine_(seed) {}

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo = 0.0, double hi = 1.0)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform float in [lo, hi). */
    float
    uniformF(float lo = -1.0f, float hi = 1.0f)
    {
        return std::uniform_real_distribution<float>(lo, hi)(engine_);
    }

    /** Gaussian double with the given mean and standard deviation. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    integer(int64_t lo, int64_t hi)
    {
        return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
    }

    /** Exponentially distributed double with the given rate. */
    double
    exponential(double rate)
    {
        return std::exponential_distribution<double>(rate)(engine_);
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace bw

#endif // BW_COMMON_RNG_H
