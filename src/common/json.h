/**
 * @file
 * Minimal ordered JSON document model: enough to serialize simulator
 * statistics and trace artifacts (dump) and to validate/round-trip them
 * in tests (parse). Object keys preserve insertion order so emitted
 * reports are stable and diffable. Not a general-purpose JSON library:
 * numbers are int64 or double, strings are UTF-8 passed through.
 */

#ifndef BW_COMMON_JSON_H
#define BW_COMMON_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bw {

/** One JSON value (null / bool / number / string / array / object). */
class Json
{
  public:
    enum class Type : uint8_t
    {
        Null = 0,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object
    };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(int v) : type_(Type::Int), int_(v) {}
    Json(unsigned v) : type_(Type::Int), int_(v) {}
    Json(int64_t v) : type_(Type::Int), int_(v) {}
    Json(uint64_t v) : type_(Type::Int), int_(static_cast<int64_t>(v)) {}
    Json(double v) : type_(Type::Double), dbl_(v) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json
    array()
    {
        Json j;
        j.type_ = Type::Array;
        return j;
    }

    static Json
    object()
    {
        Json j;
        j.type_ = Type::Object;
        return j;
    }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Double;
    }

    bool asBool() const { return bool_; }
    int64_t asInt() const
    {
        return type_ == Type::Double ? static_cast<int64_t>(dbl_) : int_;
    }
    double asDouble() const
    {
        return type_ == Type::Int ? static_cast<double>(int_) : dbl_;
    }
    const std::string &asString() const { return str_; }

    /** Append to an array (first use converts a null value). */
    Json &push(Json v);

    /** Set a key on an object (first use converts a null value). */
    Json &set(const std::string &key, Json v);

    /** Array elements / object values in order. */
    size_t size() const { return items_.size(); }
    const Json &at(size_t i) const { return items_[i].second; }

    /** Object lookup; returns nullptr when absent. */
    const Json *find(const std::string &key) const;
    bool contains(const std::string &key) const { return find(key); }
    const std::pair<std::string, Json> &member(size_t i) const
    {
        return items_[i];
    }

    bool operator==(const Json &o) const;

    /**
     * Serialize. @p indent < 0 emits compact single-line JSON;
     * otherwise pretty-print with that many spaces per level. Non-finite
     * doubles are emitted as null (JSON has no NaN/Inf).
     */
    std::string dump(int indent = -1) const;

    /** Parse a complete JSON document; throws bw::Error on bad input. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    int64_t int_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    /** Array elements (empty keys) or object members, in order. */
    std::vector<std::pair<std::string, Json>> items_;
};

/** Escape a string for embedding in JSON (adds surrounding quotes). */
std::string jsonQuote(const std::string &s);

/** Write @p j to @p path (pretty-printed); throws bw::Error on I/O. */
void writeJsonFile(const std::string &path, const Json &j);

} // namespace bw

#endif // BW_COMMON_JSON_H
