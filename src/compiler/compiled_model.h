/**
 * @file
 * The compiler's output artifact: a per-step BW program plus the device
 * images (MRF weight tiles, VRF constant preloads) and I/O metadata
 * needed to install and serve the model.
 */

#ifndef BW_COMPILER_COMPILED_MODEL_H
#define BW_COMPILER_COMPILED_MODEL_H

#include <string>
#include <unordered_map>
#include <vector>

#include "arch/npu_config.h"
#include "common/status.h"
#include "func/machine.h"
#include "graph/gir.h"
#include "isa/program.h"

namespace bw {

/** One MatMul weight placed in the MRF as a tiled, padded matrix. */
struct WeightPlacement
{
    NodeId node = 0;       //!< the MatMul node
    uint32_t mrfAddr = 0;  //!< first tile entry
    uint32_t rowTiles = 0; //!< native row tiles (mega-SIMD rows)
    uint32_t colTiles = 0; //!< native column tiles (mega-SIMD cols)
    /** True (unpadded) dimensions; tail tiles are thin: they charge only
     *  their real elements of MRF capacity and stream in fewer beats. */
    uint32_t logicalRows = 0;
    uint32_t logicalCols = 0;
    FMat padded;           //!< zero-padded to (rowTiles*N) x (colTiles*N)
};

/** A constant vector preloaded into a VRF before serving. */
struct VrfPreload
{
    MemId space = MemId::InitialVrf;
    uint32_t addr = 0;
    FVec data; //!< padded to a whole number of native vectors
};

/** A fully lowered model for one NPU configuration. */
struct CompiledModel
{
    std::string name;
    NpuConfig cfg;

    /** Program for one timestep (RNNs) or one inference (MLPs). */
    Program step;

    /**
     * Software-pipelining prologue (may be empty). When the compiler
     * hoists input-side projection chains (those depending on the input
     * but on no recurrent state) to the end of the step program, each
     * iteration computes the *next* step's projections while the
     * recurrent chains of the current step execute — spacing out the
     * h->h dependency exactly as tuned production kernels do. The
     * prologue computes step 0's projections; each iteration then
     * prefetches one input ahead (the final prefetch reads a dummy).
     */
    Program prologue;

    std::vector<WeightPlacement> weights;
    std::vector<VrfPreload> preloads;

    unsigned inputDim = 0;         //!< logical input elements per step
    unsigned outputDim = 0;        //!< logical output elements per step
    unsigned inputVecsPerStep = 0; //!< native vectors popped from NetQ
    unsigned outputVecsPerStep = 0;

    /** True (unpadded) model op counts, per the paper's accounting. */
    OpCount matmulOpsPerStep = 0;
    OpCount totalOpsPerStep = 0;

    /** MRF capacity used, in full-tile equivalents (element-packed). */
    uint32_t mrfTilesUsed = 0;

    /** Interleaved batch size the step program serves (1 = unbatched). */
    unsigned batchSize = 1;

    /**
     * Per-MRF-entry streaming beats for thin tail tiles (entries absent
     * from the map take the full nativeDim/lanes beats). Consumed by the
     * timing simulator via NpuTiming::setTileBeats().
     */
    std::unordered_map<uint32_t, unsigned> tileBeats;

    /** Load weight tiles and constant preloads into a machine. */
    void install(FuncMachine &m) const;

    /**
     * Clear recurrent state between independent requests on an
     * installed machine. A raw FuncMachine::resetDynamicState() also
     * wipes the model's VRF preloads (biases, constants); this
     * restores them, leaving the machine as install() left it.
     */
    void resetRequestState(FuncMachine &m) const;

    // --- Input validation (shared with bw::serve admission control).
    //     The run* entry points call these and throw bw::Error with
    //     the status message on failure; callers that prefer a value
    //     (the serving engine, services) call them directly. ---

    /** Can @p elems elements be served as one runStep() input? */
    Status validateStepInput(size_t elems) const;

    /** Can @p xs be served as a runSequence() input sequence? */
    Status validateSequenceInput(const std::vector<FVec> &xs) const;

    /** Can @p xs be served as one runStepBatch() input set? */
    Status validateBatchInput(const std::vector<FVec> &xs) const;

    /**
     * Convenience serving step: pad and push @p x, execute the step
     * program once, pop and trim the step's output. Only valid for
     * models without a software-pipelining prologue.
     */
    FVec runStep(FuncMachine &m, std::span<const float> x) const;

    /**
     * Serve a whole input sequence (handles the pipelined input
     * prefetch schedule when a prologue is present). Returns one output
     * per step.
     */
    std::vector<FVec> runSequence(FuncMachine &m,
                                  const std::vector<FVec> &xs) const;

    /**
     * One batched step: @p xs holds batchSize per-sample inputs; returns
     * batchSize per-sample outputs. Unpipelined models only.
     */
    std::vector<FVec> runStepBatch(FuncMachine &m,
                                   const std::vector<FVec> &xs) const;
};

} // namespace bw

#endif // BW_COMPILER_COMPILED_MODEL_H
