#include "compiler/conv_lowering.h"

#include <algorithm>

#include "common/bits.h"
#include "common/logging.h"
#include "isa/builder.h"
#include "isa/validate.h"
#include "refmodel/conv_ref.h"

namespace bw {

namespace {

/** Record thin tail-tile beats for one weight placement. */
void
recordTileBeats(std::unordered_map<uint32_t, unsigned> &beats,
                const NpuConfig &cfg, uint32_t mrf_base,
                uint32_t row_tiles, uint32_t col_tiles,
                unsigned logical_cols)
{
    unsigned full = cfg.nativeVectorBeats();
    for (uint32_t c = 0; c < col_tiles; ++c) {
        unsigned valid =
            std::min(cfg.nativeDim, logical_cols - c * cfg.nativeDim);
        unsigned b = ceilDiv(valid, cfg.lanes);
        if (b == full)
            continue;
        for (uint32_t r = 0; r < row_tiles; ++r)
            beats[mrf_base + r * col_tiles + c] = b;
    }
}

} // namespace

ConvNetPlan
planConvNet(const std::vector<ConvSpec> &layers, const NpuConfig &cfg)
{
    cfg.validate();
    BW_ASSERT(!layers.empty());

    ConvNetPlan plan;
    plan.cfg = cfg;
    unsigned n = cfg.nativeDim;

    // Double-buffered MRF weight regions sized by the largest layer.
    uint32_t max_weight_tiles = 0;
    for (const ConvSpec &s : layers) {
        uint32_t t = ceilDiv(s.outC, n) * ceilDiv(s.patchLen(), n);
        max_weight_tiles = std::max(max_weight_tiles, t);
    }
    if (2 * max_weight_tiles > cfg.mrfEntries()) {
        BW_FATAL("CNN weights need 2x%u MRF tile entries, %s has %u "
                 "(increase mrfIndexSpace or shrink the native tile)",
                 max_weight_tiles, cfg.name.c_str(), cfg.mrfEntries());
    }

    // Ping-pong activation regions in the InitialVrf.
    uint32_t region = cfg.initialVrfSize / 2;
    BW_ASSERT(region > 0);

    ProgramBuilder b;
    int64_t cur_rows = -1, cur_cols = -1, cur_iters = -1;
    auto set_rci = [&](uint32_t r, uint32_t c, uint32_t it) {
        if (cur_rows != r) {
            b.sWr(ScalarReg::Rows, r);
            cur_rows = r;
        }
        if (cur_cols != c) {
            b.sWr(ScalarReg::Cols, c);
            cur_cols = c;
        }
        if (cur_iters != it) {
            b.sWr(ScalarReg::Iterations, it);
            cur_iters = it;
        }
    };

    uint32_t dram_tile_next = 0;
    uint32_t bias_next = 0;

    // Lay out all layers first.
    for (size_t k = 0; k < layers.size(); ++k) {
        const ConvSpec &s = layers[k];
        ConvLayerPlan lp;
        lp.spec = s;
        lp.rowTiles = ceilDiv(s.outC, n);
        lp.colTiles = ceilDiv(s.patchLen(), n);
        lp.mrfBase = (k % 2) ? max_weight_tiles : 0;
        lp.dramWeightBase = dram_tile_next;
        dram_tile_next += lp.rowTiles * lp.colTiles;
        lp.biasAddr = bias_next;
        bias_next += lp.rowTiles;
        if (bias_next > cfg.addSubVrfSize) {
            BW_FATAL("CNN biases need %u AddSubVrf entries, %s has %u",
                     bias_next, cfg.name.c_str(), cfg.addSubVrfSize);
        }
        lp.inBase = (k % 2) ? region : 0;
        lp.outBase = (k % 2) ? 0 : region;
        // Positions per iterated chain, bounded by the ping-pong
        // activation regions on both the patch and output sides.
        unsigned by_in = std::max(1u, region / lp.colTiles);
        unsigned by_out = std::max(1u, region / lp.rowTiles);
        lp.groupSize = std::min({s.positions(), by_in, by_out, 4096u});
        lp.groups = ceilDiv(s.positions(), lp.groupSize);
        lp.ops = s.macOps();
        plan.totalOps += lp.ops;
        recordTileBeats(plan.tileBeats, cfg, lp.mrfBase, lp.rowTiles,
                        lp.colTiles, s.patchLen());
        plan.layers.push_back(lp);
    }

    // Emit: weight stream for layer 0, then for each layer the next
    // layer's weight stream (overlapped) followed by this layer's
    // compute chains.
    auto emit_weight_load = [&](const ConvLayerPlan &lp) {
        // Iterations do not apply to matrix chains; only rows/cols
        // shape the tile transfer.
        if (cur_rows != lp.rowTiles) {
            b.sWr(ScalarReg::Rows, lp.rowTiles);
            cur_rows = lp.rowTiles;
        }
        if (cur_cols != lp.colTiles) {
            b.sWr(ScalarReg::Cols, lp.colTiles);
            cur_cols = lp.colTiles;
        }
        b.mRd(MemId::Dram, lp.dramWeightBase);
        b.mWr(MemId::MatrixRf, lp.mrfBase);
        b.endChain();
    };

    emit_weight_load(plan.layers[0]);
    for (size_t k = 0; k < plan.layers.size(); ++k) {
        if (k + 1 < plan.layers.size())
            emit_weight_load(plan.layers[k + 1]);

        const ConvLayerPlan &lp = plan.layers[k];

        // Line-buffer refill: the previous layer's raw activations are
        // re-laid out into this layer's patch feed. One copy pass over
        // the producer's output vectors charges the single-ported
        // activation-buffer bandwidth and serializes the layers.
        if (k > 0) {
            const ConvLayerPlan &prev = plan.layers[k - 1];
            uint64_t vecs = static_cast<uint64_t>(prev.spec.positions()) *
                            prev.rowTiles;
            uint32_t count =
                static_cast<uint32_t>(std::min<uint64_t>(vecs, region));
            set_rci(1, cur_cols > 0 ? static_cast<uint32_t>(cur_cols) : 1,
                    count);
            b.vRd(MemId::InitialVrf, lp.inBase);
            b.vWr(MemId::InitialVrf, lp.inBase);
            b.endChain();
        }
        unsigned remaining = lp.spec.positions();
        // Groups wrap within the activation regions (line-buffer reuse:
        // only a sliding window of activations is live on chip).
        unsigned in_wrap = std::max(1u, region / (lp.groupSize *
                                                  lp.colTiles));
        unsigned out_wrap = std::max(1u, region / (lp.groupSize *
                                                   lp.rowTiles));
        for (unsigned g = 0; g < lp.groups; ++g) {
            unsigned count = std::min(lp.groupSize, remaining);
            remaining -= count;
            set_rci(lp.rowTiles, lp.colTiles, count);
            b.vRd(MemId::InitialVrf,
                  lp.inBase + (g % in_wrap) * lp.groupSize * lp.colTiles);
            b.mvMul(lp.mrfBase);
            b.vvAdd(lp.biasAddr);
            if (lp.spec.relu)
                b.vRelu();
            b.vWr(MemId::InitialVrf,
                  lp.outBase +
                      (g % out_wrap) * lp.groupSize * lp.rowTiles);
            b.endChain();
        }

        // Residual shortcut: a point-wise add pass over the output
        // feature map (followed by the block's deferred ReLU).
        if (lp.spec.residualAdd) {
            uint64_t vecs = static_cast<uint64_t>(lp.spec.positions()) *
                            lp.rowTiles;
            uint32_t count =
                static_cast<uint32_t>(std::min<uint64_t>(vecs, region));
            set_rci(1, cur_cols > 0 ? static_cast<uint32_t>(cur_cols) : 1,
                    count);
            b.vRd(MemId::InitialVrf, lp.outBase);
            b.vvAdd(lp.biasAddr); // shortcut operand (same-shape add)
            b.vRelu();
            b.vWr(MemId::InitialVrf, lp.outBase);
            b.endChain();
        }
    }

    plan.program = b.build();
    checkProgram(plan.program, cfg);
    return plan;
}

FTensor4
runConvLayerFunctional(FuncMachine &m, const ConvSpec &spec,
                       const FMat &weights, std::span<const float> bias,
                       const FTensor4 &input)
{
    const NpuConfig &cfg = m.config();
    unsigned n = cfg.nativeDim;
    BW_ASSERT(weights.rows() == spec.outC &&
              weights.cols() == spec.patchLen());

    uint32_t row_tiles = ceilDiv(spec.outC, n);
    uint32_t col_tiles = ceilDiv(spec.patchLen(), n);

    // Pin the quantized weight tiles.
    FMat padded = padTo(weights, static_cast<size_t>(row_tiles) * n,
                        static_cast<size_t>(col_tiles) * n);
    for (uint32_t r = 0; r < row_tiles; ++r) {
        for (uint32_t c = 0; c < col_tiles; ++c) {
            FMat tile(n, n);
            for (unsigned i = 0; i < n; ++i) {
                auto src = padded.row(static_cast<size_t>(r) * n + i);
                std::copy(src.begin() + static_cast<size_t>(c) * n,
                          src.begin() + static_cast<size_t>(c + 1) * n,
                          tile.row(i).begin());
            }
            m.loadMrfTile(r * col_tiles + c, tile);
        }
    }
    m.loadVrf(MemId::AddSubVrf, 0,
              padTo(bias, static_cast<size_t>(row_tiles) * n));

    // Group output positions so each group's patches and outputs fit
    // the InitialVrf (patches in the lower half, outputs above).
    uint32_t region = cfg.initialVrfSize / 2;
    unsigned group = std::min<unsigned>(
        spec.positions(),
        std::min(std::max(1u, region / col_tiles),
                 std::max(1u, region / row_tiles)));

    FTensor4 out(1, spec.outH(), spec.outW(), spec.outC);
    unsigned pos = 0;
    while (pos < spec.positions()) {
        unsigned count = std::min<unsigned>(group, spec.positions() - pos);

        // Host-side patch staging (models the line-buffer/DMA feeder).
        for (unsigned p = 0; p < count; ++p) {
            unsigned y = (pos + p) / spec.outW();
            unsigned x = (pos + p) % spec.outW();
            FVec patch = im2colPatch(spec, input, y, x);
            m.loadVrf(MemId::InitialVrf, p * col_tiles,
                      padTo(patch, static_cast<size_t>(col_tiles) * n));
        }

        ProgramBuilder b;
        b.sWr(ScalarReg::Rows, row_tiles)
            .sWr(ScalarReg::Cols, col_tiles)
            .sWr(ScalarReg::Iterations, count);
        b.vRd(MemId::InitialVrf, 0);
        b.mvMul(0);
        b.vvAdd(0);
        if (spec.relu)
            b.vRelu();
        b.vWr(MemId::InitialVrf, region);
        b.endChain();
        m.run(b.build());

        for (unsigned p = 0; p < count; ++p) {
            unsigned y = (pos + p) / spec.outW();
            unsigned x = (pos + p) % spec.outW();
            FVec v = m.peekVrf(MemId::InitialVrf, region + p * row_tiles,
                               row_tiles);
            for (unsigned oc = 0; oc < spec.outC; ++oc)
                out.at(0, y, x, oc) = v[oc];
        }
        pos += count;
    }
    return out;
}

} // namespace bw
