/**
 * @file
 * Convolution lowering: 2-D CNN layers linearized onto matrix-vector
 * multiplication (Section IV-B), for the CNN-specialized BW NPU variant
 * of Section VII-C.
 *
 * Each conv layer becomes a (outC x kH*kW*inC) weight matrix pinned (or
 * DRAM-streamed) in the MRF, and one mega-SIMD iterated chain per group
 * of output positions:
 *
 *     s_wr rows/cols/iters
 *     v_rd  ivrf, patch_base     ; advances by patchTiles per position
 *     mv_mul weight_base
 *     vv_add bias
 *     v_relu                     ; when the layer has an activation
 *     v_wr  ivrf, out_base       ; advances by outTiles per position
 *
 * Patch vectors are the im2col layout of the receptive field. On real
 * hardware a line-buffer/DMA engine (not exposed in the public ISA)
 * feeds the distributed input VRFs with these patch vectors as the
 * previous layer drains; in this reproduction the functional path
 * stages patches from the host between groups (an explicit, documented
 * substitution), while the timing path charges the MVM/MFU/weight-
 * streaming costs and preserves inter-layer dependence through the
 * ping-pong activation regions.
 */

#ifndef BW_COMPILER_CONV_LOWERING_H
#define BW_COMPILER_CONV_LOWERING_H

#include <unordered_map>
#include <vector>

#include "arch/npu_config.h"
#include "func/machine.h"
#include "graph/conv.h"
#include "isa/program.h"
#include "tensor/tensor.h"

namespace bw {

/** Placement and tiling of one lowered conv layer. */
struct ConvLayerPlan
{
    ConvSpec spec;
    uint32_t rowTiles = 0;      //!< ceil(outC / N)
    uint32_t colTiles = 0;      //!< ceil(patchLen / N)
    uint32_t mrfBase = 0;       //!< weight tile base (ping-pong buffer)
    uint32_t dramWeightBase = 0;//!< DRAM tile region holding the weights
    uint32_t biasAddr = 0;      //!< AddSubVrf entry of the bias
    uint32_t inBase = 0;        //!< ivrf activation region (input)
    uint32_t outBase = 0;       //!< ivrf activation region (output)
    unsigned groupSize = 0;     //!< output positions per iterated chain
    unsigned groups = 0;
    OpCount ops = 0;            //!< true MAC ops of the layer
};

/** A whole CNN lowered for one NPU configuration. */
struct ConvNetPlan
{
    NpuConfig cfg;
    std::vector<ConvLayerPlan> layers;
    /**
     * Timing program for one inference: per layer, a DRAM->MRF weight
     * streaming chain (double-buffered one layer ahead) followed by the
     * iterated compute chains.
     */
    Program program;
    /** Thin tail tile streaming beats (see NpuTiming::setTileBeats). */
    std::unordered_map<uint32_t, unsigned> tileBeats;
    OpCount totalOps = 0;
};

/** Plan (and emit the timing program for) a CNN on @p cfg. */
ConvNetPlan planConvNet(const std::vector<ConvSpec> &layers,
                        const NpuConfig &cfg);

/**
 * Functional execution of a single lowered conv layer: pins the
 * quantized weights and bias, stages im2col patch groups into the
 * InitialVrf, runs the iterated chains, and reads back the output
 * feature map. Validated against conv2dRef within BFP error bounds.
 *
 * @p weights is outC x patchLen in the (ky, kx, c) patch layout.
 */
FTensor4 runConvLayerFunctional(FuncMachine &m, const ConvSpec &spec,
                                const FMat &weights,
                                std::span<const float> bias,
                                const FTensor4 &input);

} // namespace bw

#endif // BW_COMPILER_CONV_LOWERING_H
