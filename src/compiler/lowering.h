/**
 * @file
 * GIR -> BW NPU program lowering.
 *
 * The lowering pass reproduces the structure of the paper's hand-written
 * kernels from the model graph:
 *
 *  1. *Chain fusion*: walk the graph in topological order and grow
 *     maximal instruction chains — an optional MatMul at the head (the
 *     MVM sits at the head of the pipeline) followed by point-wise ops,
 *     fusing through single-consumer edges whose secondary operands are
 *     already materialized, bounded by the configured number of MFUs.
 *  2. *Home assignment*: every materialized value is assigned the
 *     register files its consumers need it in — InitialVrf for chain
 *     inputs, AddSubVrf/MultiplyVrf for secondary operands — and chains
 *     multicast their final value to all homes (and to NetQ for model
 *     outputs and recurrent states bound to the chain tail).
 *  3. *Allocation*: bump allocation of VRF entries and MRF tiles, with
 *     zero-padding of weights/vectors to native-dim multiples.
 *  4. *Emission*: s_wr Rows/Cols mega-SIMD configuration followed by the
 *     v_rd / mv_mul / vv_* / v_wr chains, validated against the target.
 */

#ifndef BW_COMPILER_LOWERING_H
#define BW_COMPILER_LOWERING_H

#include "compiler/compiled_model.h"

namespace bw {

/** Compilation switches. */
struct CompileOptions
{
    /**
     * Software-pipeline the input-side projections: chains that depend
     * on the step input but on no recurrent state are hoisted behind
     * the recurrent chains and compute one step ahead (with a prologue
     * for step 0). This spaces out the h->h serial dependency so the
     * MVM stays busy while the recurrent chains drain — the same tuning
     * the paper applies to its production kernels. Ignored for models
     * without recurrent state, or when an input feeds a state-dependent
     * chain directly.
     */
    bool pipelineInputProjections = true;

    /**
     * Compile for batch-interleaved serving (Section VII-B3's future-
     * work optimization): every chain is configured once per step and
     * iterates over @p batchSize independent samples with strided
     * addresses (IterStride mode), sharing the pinned weights. Spaces
     * out the recurrent dependence so small models recover utilization
     * at modest batch sizes while remaining one-request-at-a-time at
     * batch 1.
     */
    unsigned batchSize = 1;
};

/**
 * Compile @p graph for @p cfg. Throws bw::Error when the model does not
 * fit the configuration (e.g. MRF tile capacity exhausted — the paper's
 * answer is multi-FPGA partitioning, see bw::runtime).
 */
CompiledModel compileGir(const GirGraph &graph, const NpuConfig &cfg,
                         const CompileOptions &options = {});

} // namespace bw

#endif // BW_COMPILER_LOWERING_H
