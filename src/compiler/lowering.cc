#include "compiler/lowering.h"

#include <array>
#include <optional>

#include "common/bits.h"
#include "common/logging.h"
#include "isa/builder.h"
#include "isa/validate.h"

namespace bw {

namespace {

/** Index into per-node home array. */
enum HomeSpace : int
{
    HomeIvrf = 0,
    HomeAsvrf = 1,
    HomeMulvrf = 2,
    NumHomeSpaces = 3
};

MemId
homeMemId(int h)
{
    switch (h) {
      case HomeIvrf: return MemId::InitialVrf;
      case HomeAsvrf: return MemId::AddSubVrf;
      case HomeMulvrf: return MemId::MultiplyVrf;
      default: BW_PANIC("bad home %d", h);
    }
}

/** Home space required for the secondary operand of a binary GIR op. */
int
secondaryHome(GirOp op)
{
    return op == GirOp::Mul ? HomeMulvrf : HomeAsvrf;
}

/** ISA opcode class of a point-wise GIR op (for MFU budgeting). */
Opcode
pointwiseOpcode(GirOp op)
{
    switch (op) {
      case GirOp::Add: return Opcode::VvAdd;
      case GirOp::Sub: return Opcode::VvASubB;
      case GirOp::Mul: return Opcode::VvMul;
      case GirOp::Max: return Opcode::VvMax;
      case GirOp::Relu: return Opcode::VRelu;
      case GirOp::Sigmoid: return Opcode::VSigm;
      case GirOp::Tanh: return Opcode::VTanh;
      default: BW_PANIC("%s is not point-wise", girOpName(op));
    }
}

/** One fused instruction chain (compute nodes only). */
struct FusedChain
{
    std::vector<NodeId> nodes; //!< head..tail, in dataflow order
    NodeId chainInput = 0;     //!< node streamed in by the head's v_rd
    bool hasMatMul = false;
};

struct Lowering
{
    const GirGraph &g;
    const NpuConfig &cfg;
    const CompileOptions &opts;
    std::vector<std::vector<NodeId>> cons;
    std::vector<char> materialized;
    std::vector<char> assigned;
    std::vector<FusedChain> chains;
    /** Per node, per home space: allocated base address (or nullopt). */
    std::vector<std::array<std::optional<uint32_t>, NumHomeSpaces>> homes;
    std::vector<char> needsNetq;
    /** producer tail -> states bound to it. */
    std::vector<std::vector<NodeId>> stateAlias;
    /** Per chain: hoistable to the next-step (input-projection) slot. */
    std::vector<char> chainHoist;
    bool pipelined = false;

    Lowering(const GirGraph &graph, const NpuConfig &config,
             const CompileOptions &options)
        : g(graph), cfg(config), opts(options), cons(graph.consumers()),
          materialized(graph.size(), 0), assigned(graph.size(), 0),
          homes(graph.size()), needsNetq(graph.size(), 0),
          stateAlias(graph.size())
    {
    }

    uint32_t
    tiles(unsigned dim) const
    {
        return ceilDiv(dim, cfg.nativeDim);
    }

    bool
    isSource(NodeId id) const
    {
        GirOp op = g.node(id).op;
        return op == GirOp::Input || op == GirOp::ConstVec ||
               op == GirOp::State;
    }

    bool
    isPointwise(NodeId id) const
    {
        GirOp op = g.node(id).op;
        return girIsBinary(op) || girIsActivation(op);
    }

    /** Consumers excluding Output markers (which only tag NetQ writes). */
    std::vector<NodeId>
    computeConsumers(NodeId id) const
    {
        std::vector<NodeId> out;
        for (NodeId c : cons[id]) {
            if (g.node(c).op != GirOp::Output)
                out.push_back(c);
        }
        return out;
    }

    void fuse();
    void classify();
    void collectHomes();
    void allocate(CompiledModel &model);
    void emit(CompiledModel &model);

    void
    requireHome(NodeId id, int space)
    {
        if (!homes[id][space])
            homes[id][space] = 0; // address assigned in allocate()
    }

    /** The chain value flowing into binary node @p id given that the
     *  previous chain value is @p prev; returns the secondary operand. */
    NodeId
    secondaryOf(NodeId id, NodeId prev) const
    {
        const GirNode &n = g.node(id);
        BW_ASSERT(girIsBinary(n.op));
        if (n.inputs[0] == prev)
            return n.inputs[1];
        BW_ASSERT(n.inputs[1] == prev, "node %u does not consume %u", id,
                  prev);
        return n.inputs[0];
    }
};

void
Lowering::fuse()
{
    // Values that must be architecturally visible at a step boundary —
    // recurrent state producers and network outputs — terminate chains.
    std::vector<char> must_materialize(g.size(), 0);
    for (auto &[state, producer] : g.stateBindings()) {
        (void)state;
        must_materialize[producer] = 1;
    }
    for (NodeId out : g.nodesOf(GirOp::Output))
        must_materialize[g.node(out).inputs[0]] = 1;

    auto order = g.topoOrder();
    for (NodeId id : order) {
        const GirNode &n = g.node(id);
        if (isSource(id) || n.op == GirOp::Output || assigned[id])
            continue;

        FusedChain chain;
        chain.nodes.push_back(id);
        assigned[id] = 1;

        std::vector<Opcode> pointwise_ops;
        if (n.op == GirOp::MatMul) {
            chain.hasMatMul = true;
            chain.chainInput = n.inputs[0];
        } else {
            BW_ASSERT(isPointwise(id), "unexpected head op %s",
                      girOpName(n.op));
            // Pick the streamed operand: prefer a non-constant; biases
            // belong in the unit VRFs, not the pipeline head.
            if (girIsBinary(n.op)) {
                NodeId a = n.inputs[0], b = n.inputs[1];
                chain.chainInput =
                    (g.node(a).op == GirOp::ConstVec &&
                     g.node(b).op != GirOp::ConstVec)
                        ? b
                        : a;
            } else {
                chain.chainInput = n.inputs[0];
            }
            pointwise_ops.push_back(pointwiseOpcode(n.op));
        }

        // Grow the chain through single-consumer edges.
        NodeId cur = id;
        while (true) {
            if (must_materialize[cur])
                break;
            auto consumers = computeConsumers(cur);
            if (consumers.size() != 1)
                break;
            NodeId nxt = consumers[0];
            if (assigned[nxt] || !isPointwise(nxt))
                break;
            const GirNode &nn = g.node(nxt);
            if (girIsBinary(nn.op)) {
                NodeId sec = secondaryOf(nxt, cur);
                if (sec != cur && !materialized[sec] && !isSource(sec))
                    break; // secondary not yet available in a VRF
            }
            auto candidate = pointwise_ops;
            candidate.push_back(pointwiseOpcode(nn.op));
            if (mfusRequired(candidate) > cfg.mfus)
                break;
            pointwise_ops = std::move(candidate);
            chain.nodes.push_back(nxt);
            assigned[nxt] = 1;
            cur = nxt;
        }

        materialized[cur] = 1;
        chains.push_back(std::move(chain));
    }

    // Bindings: the chain producing a bound value writes the state's
    // homes too.
    for (auto &[state, producer] : g.stateBindings()) {
        if (!materialized[producer] && !isSource(producer)) {
            BW_FATAL("state '%s' bound to non-materialized node %u",
                     g.node(state).name.c_str(), producer);
        }
        stateAlias[producer].push_back(state);
    }
    for (NodeId out : g.nodesOf(GirOp::Output))
        needsNetq[g.node(out).inputs[0]] = 1;
}

void
Lowering::classify()
{
    chainHoist.assign(chains.size(), 0);
    pipelined = opts.pipelineInputProjections && !g.stateBindings().empty();
    if (!pipelined)
        return;

    // Transitive state dependence per node.
    std::vector<char> state_dep(g.size(), 0);
    for (NodeId id : g.topoOrder()) {
        const GirNode &n = g.node(id);
        if (n.op == GirOp::State) {
            state_dep[id] = 1;
            continue;
        }
        for (NodeId in : n.inputs)
            state_dep[id] = state_dep[id] || state_dep[in];
    }

    for (size_t ci = 0; ci < chains.size(); ++ci) {
        NodeId tail = chains[ci].nodes.back();
        chainHoist[ci] = !state_dep[tail] && stateAlias[tail].empty() &&
                         !needsNetq[tail];
    }

    // Hoisted chains consume the *next* step's input, so every chain
    // that reads an Input must itself be hoisted; otherwise disable.
    auto reads_input = [&](const FusedChain &c) {
        if (g.node(c.chainInput).op == GirOp::Input)
            return true;
        NodeId prev = c.chainInput;
        for (NodeId id : c.nodes) {
            const GirNode &n = g.node(id);
            if (girIsBinary(n.op) &&
                g.node(secondaryOf(id, prev)).op == GirOp::Input) {
                return true;
            }
            prev = id;
        }
        return false;
    };
    for (size_t ci = 0; ci < chains.size(); ++ci) {
        if (reads_input(chains[ci]) && !chainHoist[ci]) {
            pipelined = false;
            chainHoist.assign(chains.size(), 0);
            return;
        }
    }
}

void
Lowering::collectHomes()
{
    for (const FusedChain &chain : chains) {
        requireHome(chain.chainInput, HomeIvrf);
        NodeId prev = chain.chainInput;
        for (NodeId id : chain.nodes) {
            const GirNode &n = g.node(id);
            if (girIsBinary(n.op)) {
                NodeId sec = secondaryOf(id, prev);
                requireHome(sec, secondaryHome(n.op));
            }
            prev = id;
        }
    }
    // A bound state with no consumers still needs somewhere to live.
    for (auto &[state, producer] : g.stateBindings()) {
        (void)producer;
        bool any = false;
        for (int s = 0; s < NumHomeSpaces; ++s)
            any = any || homes[state][s].has_value();
        if (!any)
            requireHome(state, HomeIvrf);
    }
    // Dead chain tails need a scratch destination: chains must sink.
    for (const FusedChain &chain : chains) {
        NodeId tail = chain.nodes.back();
        bool any = needsNetq[tail] || !stateAlias[tail].empty();
        for (int s = 0; s < NumHomeSpaces; ++s)
            any = any || homes[tail][s].has_value();
        if (!any)
            requireHome(tail, HomeIvrf);
    }
}

void
Lowering::allocate(CompiledModel &model)
{
    std::array<uint32_t, NumHomeSpaces> next = {0, 0, 0};
    std::array<uint32_t, NumHomeSpaces> cap = {
        cfg.initialVrfSize, cfg.addSubVrfSize, cfg.multiplyVrfSize};

    for (NodeId id = 0; id < g.size(); ++id) {
        for (int s = 0; s < NumHomeSpaces; ++s) {
            if (!homes[id][s])
                continue;
            // Batch-interleaved compilation keeps one copy of every
            // value per sample, consecutively (IterStride addressing).
            uint32_t width = tiles(g.node(id).dim) * opts.batchSize;
            if (next[s] + width > cap[s]) {
                BW_FATAL("model %s does not fit %s: %s needs %u more "
                         "entries of %u; partition the model across "
                         "accelerators", g.name().c_str(),
                         cfg.name.c_str(),
                         memIdName(homeMemId(s)), width, cap[s]);
            }
            homes[id][s] = next[s];
            next[s] += width;
        }
    }

    // Constant preloads.
    for (NodeId id : g.nodesOf(GirOp::ConstVec)) {
        const GirNode &n = g.node(id);
        for (int s = 0; s < NumHomeSpaces; ++s) {
            if (!homes[id][s])
                continue;
            VrfPreload p;
            p.space = homeMemId(s);
            p.addr = *homes[id][s];
            FVec one = padTo(n.constValue,
                             static_cast<size_t>(tiles(n.dim)) *
                                 cfg.nativeDim);
            p.data.reserve(one.size() * opts.batchSize);
            for (unsigned b = 0; b < opts.batchSize; ++b)
                p.data.insert(p.data.end(), one.begin(), one.end());
            model.preloads.push_back(std::move(p));
        }
    }

    // Weights. The MRF element-packs matrix rows, so capacity is charged
    // by true element count while tile indices cover the padded grid.
    uint32_t mrf_next = 0;
    uint64_t elems_used = 0;
    uint64_t tile_elems =
        static_cast<uint64_t>(cfg.nativeDim) * cfg.nativeDim;
    unsigned full_beats = cfg.nativeVectorBeats();
    for (const FusedChain &chain : chains) {
        if (!chain.hasMatMul)
            continue;
        NodeId id = chain.nodes.front();
        const GirNode &n = g.node(id);
        WeightPlacement w;
        w.node = id;
        w.logicalRows = static_cast<unsigned>(n.weight.rows());
        w.logicalCols = static_cast<unsigned>(n.weight.cols());
        w.rowTiles = tiles(w.logicalRows);
        w.colTiles = tiles(w.logicalCols);
        w.mrfAddr = mrf_next;
        uint32_t count = w.rowTiles * w.colTiles;
        elems_used += static_cast<uint64_t>(w.logicalRows) * w.logicalCols;
        if (mrf_next + count > cfg.mrfEntries() ||
            ceilDiv(elems_used, tile_elems) > cfg.mrfSize) {
            BW_FATAL("model %s does not fit %s: MRF capacity is %u tile "
                     "equivalents / %u entries (model pinning exhausted; "
                     "partition across accelerators or stream from DRAM)",
                     g.name().c_str(), cfg.name.c_str(), cfg.mrfSize,
                     cfg.mrfEntries());
        }
        // Thin tail column tiles stream in proportionally fewer beats.
        for (uint32_t c = 0; c < w.colTiles; ++c) {
            unsigned valid = std::min(cfg.nativeDim,
                                      w.logicalCols - c * cfg.nativeDim);
            unsigned beats = ceilDiv(valid, cfg.lanes);
            if (beats != full_beats) {
                for (uint32_t r = 0; r < w.rowTiles; ++r) {
                    model.tileBeats[w.mrfAddr + r * w.colTiles + c] =
                        beats;
                }
            }
        }
        mrf_next += count;
        w.padded = padTo(n.weight,
                         static_cast<size_t>(w.rowTiles) * cfg.nativeDim,
                         static_cast<size_t>(w.colTiles) * cfg.nativeDim);
        model.weights.push_back(std::move(w));
    }
    model.mrfTilesUsed =
        static_cast<uint32_t>(ceilDiv(elems_used, tile_elems));
}

/** Builder plus mega-SIMD register tracking for one emitted program. */
struct Emitter
{
    ProgramBuilder b;
    int64_t rows = -1, cols = -1;

    void
    setRows(uint32_t r)
    {
        if (rows != r) {
            b.sWr(ScalarReg::Rows, r);
            rows = r;
        }
    }

    void
    setCols(uint32_t c)
    {
        if (cols != c) {
            b.sWr(ScalarReg::Cols, c);
            cols = c;
        }
    }
};

void
Lowering::emit(CompiledModel &model)
{
    std::vector<const WeightPlacement *> weight_of(g.size(), nullptr);
    for (const auto &w : model.weights)
        weight_of[w.node] = &w;

    auto write_homes = [&](Emitter &e, NodeId id) {
        for (int s = 0; s < NumHomeSpaces; ++s) {
            if (homes[id][s])
                e.b.vWr(homeMemId(s), *homes[id][s]);
        }
    };

    // Input distribution chains (v_rd NetQ -> multicast into homes).
    auto emit_input_copies = [&](Emitter &e, bool count_io) {
        for (NodeId id : g.nodesOf(GirOp::Input)) {
            bool any = needsNetq[id];
            for (int s = 0; s < NumHomeSpaces; ++s)
                any = any || homes[id][s].has_value();
            if (!any)
                continue; // unused input is not popped
            uint32_t w = tiles(g.node(id).dim);
            e.setRows(w);
            e.b.vRd(MemId::NetQ);
            write_homes(e, id);
            if (needsNetq[id])
                e.b.vWr(MemId::NetQ);
            if (count_io)
                model.inputVecsPerStep += w;
        }
    };

    auto emit_chain = [&](Emitter &e, const FusedChain &chain,
                          bool count_io) {
        NodeId head = chain.nodes.front();
        NodeId tail = chain.nodes.back();
        if (chain.hasMatMul) {
            const WeightPlacement *w = weight_of[head];
            BW_ASSERT(w != nullptr);
            e.setRows(w->rowTiles);
            e.setCols(w->colTiles);
        } else {
            e.setRows(tiles(g.node(tail).dim));
        }

        BW_ASSERT(homes[chain.chainInput][HomeIvrf].has_value());
        e.b.vRd(MemId::InitialVrf, *homes[chain.chainInput][HomeIvrf]);

        NodeId prev = chain.chainInput;
        for (NodeId id : chain.nodes) {
            const GirNode &n = g.node(id);
            switch (n.op) {
              case GirOp::MatMul:
                e.b.mvMul(weight_of[id]->mrfAddr);
                break;
              case GirOp::Add: {
                NodeId sec = secondaryOf(id, prev);
                e.b.vvAdd(*homes[sec][HomeAsvrf]);
                break;
              }
              case GirOp::Sub: {
                NodeId sec = secondaryOf(id, prev);
                // result = inputs[0] - inputs[1]; the chain value is
                // whichever operand is not the secondary.
                if (sec == n.inputs[1])
                    e.b.vvASubB(*homes[sec][HomeAsvrf]);
                else
                    e.b.vvBSubA(*homes[sec][HomeAsvrf]);
                break;
              }
              case GirOp::Mul: {
                NodeId sec = secondaryOf(id, prev);
                e.b.vvMul(*homes[sec][HomeMulvrf]);
                break;
              }
              case GirOp::Max: {
                NodeId sec = secondaryOf(id, prev);
                e.b.vvMax(*homes[sec][HomeAsvrf]);
                break;
              }
              case GirOp::Relu: e.b.vRelu(); break;
              case GirOp::Sigmoid: e.b.vSigm(); break;
              case GirOp::Tanh: e.b.vTanh(); break;
              default:
                BW_PANIC("unexpected %s in chain", girOpName(n.op));
            }
            prev = id;
        }

        // Multicast the tail to its homes, any bound states' homes, and
        // the network for model outputs.
        write_homes(e, tail);
        for (NodeId s : stateAlias[tail])
            write_homes(e, s);
        if (needsNetq[tail]) {
            e.b.vWr(MemId::NetQ);
            if (count_io)
                model.outputVecsPerStep += tiles(g.node(tail).dim);
        }
        e.b.endChain();
    };

    auto emit_batch_regs = [&](Emitter &e) {
        if (opts.batchSize > 1) {
            e.b.sWr(ScalarReg::Iterations, opts.batchSize);
            e.b.sWr(ScalarReg::IterStride, 1);
        }
    };

    Emitter step;
    emit_batch_regs(step);
    if (!pipelined) {
        emit_input_copies(step, true);
        for (const FusedChain &chain : chains)
            emit_chain(step, chain, true);
    } else {
        // Software-pipelined schedule: first the recurrent chains whose
        // operands are all available at the step boundary (depth 0),
        // then the *next* step's input fetch and projections — filling
        // the MVM while the depth-0 results drain through the MFUs —
        // and finally the deeper recurrent chains. This is the chain
        // interleaving a tuned production kernel uses to space out the
        // h->h serial dependency.
        std::vector<int> producer(g.size(), -1);
        for (size_t ci = 0; ci < chains.size(); ++ci) {
            for (NodeId id : chains[ci].nodes)
                producer[id] = static_cast<int>(ci);
        }
        auto chain_reads = [&](const FusedChain &c) {
            std::vector<NodeId> reads{c.chainInput};
            NodeId prev = c.chainInput;
            for (NodeId id : c.nodes) {
                if (girIsBinary(g.node(id).op))
                    reads.push_back(secondaryOf(id, prev));
                prev = id;
            }
            return reads;
        };
        // depth 0 <=> every read is a source or a hoisted-chain tail.
        std::vector<char> depth0(chains.size(), 0);
        for (size_t ci = 0; ci < chains.size(); ++ci) {
            if (chainHoist[ci])
                continue;
            bool d0 = true;
            for (NodeId rd : chain_reads(chains[ci])) {
                if (isSource(rd))
                    continue;
                int p = producer[rd];
                BW_ASSERT(p >= 0);
                if (!chainHoist[p])
                    d0 = false;
            }
            depth0[ci] = d0;
        }

        // Interleave each hoisted (next-step) projection chain directly
        // after its last same-step consumer: the consumer must read the
        // previous value before the projection overwrites it, and the
        // projection's MVM work then fills the pipeline bubble while
        // the consumer's chain drains through the MFUs.
        (void)depth0;
        std::vector<size_t> nonhoisted;
        std::vector<int> pos_of_chain(chains.size(), -1);
        for (size_t ci = 0; ci < chains.size(); ++ci) {
            if (!chainHoist[ci]) {
                pos_of_chain[ci] = static_cast<int>(nonhoisted.size());
                nonhoisted.push_back(ci);
            }
        }
        // Last non-hoisted consumer position of each hoisted tail.
        std::vector<int> insert_after(chains.size(), -1);
        for (size_t cj = 0; cj < chains.size(); ++cj) {
            if (chainHoist[cj])
                continue;
            for (NodeId rd : chain_reads(chains[cj])) {
                if (isSource(rd))
                    continue;
                int p = producer[rd];
                if (p >= 0 && chainHoist[p]) {
                    insert_after[p] = std::max(insert_after[p],
                                               pos_of_chain[cj]);
                }
            }
        }

        // A hoisted chain consuming another hoisted chain's output must
        // not be emitted earlier than its producer (single topo pass:
        // chains are already in topological order).
        for (size_t cj = 0; cj < chains.size(); ++cj) {
            if (!chainHoist[cj])
                continue;
            for (NodeId rd : chain_reads(chains[cj])) {
                if (isSource(rd))
                    continue;
                int p = producer[rd];
                if (p >= 0 && chainHoist[p] &&
                    static_cast<size_t>(p) != cj) {
                    insert_after[cj] =
                        std::max(insert_after[cj], insert_after[p]);
                }
            }
        }

        bool copies_emitted = false;
        auto emit_hoisted_at = [&](int pos) {
            for (size_t ci = 0; ci < chains.size(); ++ci) {
                if (!chainHoist[ci] || insert_after[ci] != pos)
                    continue;
                if (!copies_emitted) {
                    emit_input_copies(step, true);
                    copies_emitted = true;
                }
                emit_chain(step, chains[ci], true);
            }
        };
        emit_hoisted_at(-1); // hoisted chains with no same-step consumer
        for (size_t k = 0; k < nonhoisted.size(); ++k) {
            emit_chain(step, chains[nonhoisted[k]], true);
            emit_hoisted_at(static_cast<int>(k));
        }
        if (!copies_emitted)
            emit_input_copies(step, true);

        Emitter pro;
        emit_batch_regs(pro);
        emit_input_copies(pro, false);
        for (size_t ci = 0; ci < chains.size(); ++ci) {
            if (chainHoist[ci])
                emit_chain(pro, chains[ci], false);
        }
        model.prologue = pro.b.build();
        checkProgram(model.prologue, cfg);
    }

    model.step = step.b.build();
    checkProgram(model.step, cfg);
}

} // namespace

CompiledModel
compileGir(const GirGraph &graph, const NpuConfig &cfg,
           const CompileOptions &options)
{
    graph.check();
    cfg.validate();

    CompiledModel model;
    model.name = graph.name();
    model.cfg = cfg;

    Lowering lo(graph, cfg, options);
    lo.fuse();
    lo.collectHomes();
    lo.classify();
    lo.allocate(model);
    lo.emit(model);

    auto inputs = graph.nodesOf(GirOp::Input);
    if (!inputs.empty())
        model.inputDim = graph.node(inputs.front()).dim;
    auto outputs = graph.nodesOf(GirOp::Output);
    if (!outputs.empty())
        model.outputDim = graph.node(outputs.front()).dim;

    model.batchSize = options.batchSize;
    model.inputVecsPerStep *= options.batchSize;
    model.outputVecsPerStep *= options.batchSize;
    model.matmulOpsPerStep = graph.matmulOpsPerStep();
    model.totalOpsPerStep = graph.opsPerStep();
    return model;
}

void
CompiledModel::install(FuncMachine &m) const
{
    unsigned n = cfg.nativeDim;
    for (const WeightPlacement &w : weights) {
        for (uint32_t r = 0; r < w.rowTiles; ++r) {
            for (uint32_t c = 0; c < w.colTiles; ++c) {
                FMat tile(n, n);
                for (unsigned i = 0; i < n; ++i) {
                    auto src = w.padded.row(static_cast<size_t>(r) * n + i);
                    std::copy(src.begin() + static_cast<size_t>(c) * n,
                              src.begin() + static_cast<size_t>(c + 1) * n,
                              tile.row(i).begin());
                }
                m.loadMrfTile(w.mrfAddr + r * w.colTiles + c, tile);
            }
        }
    }
    for (const VrfPreload &p : preloads)
        m.loadVrf(p.space, p.addr, p.data);
}

void
CompiledModel::resetRequestState(FuncMachine &m) const
{
    m.resetDynamicState();
    for (const VrfPreload &p : preloads)
        m.loadVrf(p.space, p.addr, p.data);
}

Status
CompiledModel::validateStepInput(size_t elems) const
{
    if (!prologue.empty()) {
        return Status::failedPrecondition(detail::format(
            "model %s was compiled with a software-pipelining prologue "
            "(CompileOptions::pipelineInputProjections): each step "
            "prefetches the *next* step's input, so single steps cannot "
            "be served in isolation — serve the whole sequence with "
            "runSequence(), or recompile with pipelining disabled",
            name.c_str()));
    }
    if (elems != inputDim) {
        return Status::invalidArgument(detail::format(
            "input has %zu elements, model %s expects %u", elems,
            name.c_str(), inputDim));
    }
    return Status();
}

Status
CompiledModel::validateSequenceInput(const std::vector<FVec> &xs) const
{
    for (size_t t = 0; t < xs.size(); ++t) {
        if (xs[t].size() != inputDim) {
            return Status::invalidArgument(detail::format(
                "step %zu input has %zu elements, model %s expects %u",
                t, xs[t].size(), name.c_str(), inputDim));
        }
    }
    return Status();
}

Status
CompiledModel::validateBatchInput(const std::vector<FVec> &xs) const
{
    if (!prologue.empty()) {
        return Status::failedPrecondition(detail::format(
            "model %s was compiled with a software-pipelining prologue; "
            "batched steps require an unpipelined model — recompile "
            "with CompileOptions::pipelineInputProjections = false",
            name.c_str()));
    }
    if (xs.size() != batchSize) {
        return Status::invalidArgument(detail::format(
            "%zu inputs for model %s compiled with batch size %u",
            xs.size(), name.c_str(), batchSize));
    }
    for (size_t b = 0; b < xs.size(); ++b) {
        if (xs[b].size() != inputDim) {
            return Status::invalidArgument(detail::format(
                "batch sample %zu has %zu elements, model %s expects %u",
                b, xs[b].size(), name.c_str(), inputDim));
        }
    }
    return Status();
}

FVec
CompiledModel::runStep(FuncMachine &m, std::span<const float> x) const
{
    validateStepInput(x.size()).throwIfError();
    FVec padded = padTo(x, static_cast<size_t>(inputVecsPerStep) *
                               cfg.nativeDim);
    m.pushInput(padded);
    m.run(step);
    FVec out = m.popOutput(outputVecsPerStep);
    out.resize(outputDim);
    return out;
}

std::vector<FVec>
CompiledModel::runStepBatch(FuncMachine &m,
                            const std::vector<FVec> &xs) const
{
    validateBatchInput(xs).throwIfError();
    size_t per_sample_in =
        static_cast<size_t>(inputVecsPerStep) / batchSize *
        cfg.nativeDim;
    for (const FVec &x : xs)
        m.pushInput(padTo(x, per_sample_in));
    m.run(step);
    std::vector<FVec> outs;
    uint32_t per_sample_out = outputVecsPerStep / batchSize;
    for (unsigned b = 0; b < batchSize; ++b) {
        FVec o = m.popOutput(per_sample_out);
        o.resize(outputDim);
        outs.push_back(std::move(o));
    }
    return outs;
}

std::vector<FVec>
CompiledModel::runSequence(FuncMachine &m,
                           const std::vector<FVec> &xs) const
{
    std::vector<FVec> outs;
    if (xs.empty())
        return outs;
    validateSequenceInput(xs).throwIfError();
    outs.reserve(xs.size());
    if (prologue.empty()) {
        for (const FVec &x : xs)
            outs.push_back(runStep(m, x));
        return outs;
    }

    size_t padded_len =
        static_cast<size_t>(inputVecsPerStep) * cfg.nativeDim;
    auto push = [&](std::span<const float> x) {
        m.pushInput(padTo(x, padded_len));
    };

    // The prologue consumes x(0); iteration t prefetches x(t+1). The
    // final prefetch reads a dummy vector that no chain ever consumes
    // architecturally (its projections are dead).
    push(xs.front());
    m.run(prologue);
    FVec dummy(inputDim, 0.0f);
    for (size_t t = 0; t < xs.size(); ++t) {
        push(t + 1 < xs.size() ? std::span<const float>(xs[t + 1])
                               : std::span<const float>(dummy));
        m.run(step);
        FVec out = m.popOutput(outputVecsPerStep);
        out.resize(outputDim);
        outs.push_back(std::move(out));
    }
    return outs;
}

} // namespace bw
