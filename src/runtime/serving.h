/**
 * @file
 * Cloud serving model (Sections II, VII-B3).
 *
 * The BW system serves DNN requests as hardware microservices reached
 * directly over the datacenter network: requests are processed one at a
 * time as they arrive (no batching queue), so latency is network time
 * plus any head-of-line wait plus a single-request service time. A GPU
 * service instead accumulates a batch (up to a size cap or a timeout)
 * before launching, trading latency for utilization — the contrast the
 * paper draws in Section VII-B3 and Fig. 8.
 */

#ifndef BW_RUNTIME_SERVING_H
#define BW_RUNTIME_SERVING_H

#include <algorithm>
#include <cmath>
#include <vector>

#include "baseline/gpu_model.h"
#include "common/json.h"
#include "common/rng.h"

namespace bw {

/** Latency/throughput summary of one simulated serving run. */
struct ServeStats
{
    uint64_t requests = 0;
    double meanLatencyMs = 0;
    double p50LatencyMs = 0;
    double p95LatencyMs = 0;
    double p99LatencyMs = 0;
    double maxLatencyMs = 0;
    double throughputRps = 0; //!< completed requests per second
    double meanBatch = 1.0;   //!< average formed batch size (GPU)

    /** Machine-readable summary (the repo's toJson() convention). */
    Json toJson() const;
};

/**
 * Nearest-rank percentile of an ascending-sorted sample set: the
 * smallest value such that at least @p pct percent of the samples are
 * <= it. Zero for an empty set; the sole element for a single-element
 * set at any pct. @p pct outside [0, 100] is clamped (pct <= 0 yields
 * the minimum, pct >= 100 the maximum) — in particular a negative pct
 * never indexes out of range.
 */
inline double
percentileSorted(const std::vector<double> &sorted, double pct)
{
    if (sorted.empty())
        return 0.0;
    pct = std::clamp(pct, 0.0, 100.0);
    size_t rank = static_cast<size_t>(
        std::ceil(pct / 100.0 * static_cast<double>(sorted.size())));
    rank = std::clamp<size_t>(rank, 1, sorted.size());
    return sorted[rank - 1];
}

/**
 * The three tail quantiles every latency summary in the repo reports
 * (ServeStats, serve::StatsCollector, the metrics histograms'
 * validation tests), computed in one place from one sorted pass.
 */
struct LatencyQuantiles
{
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
};

/** Nearest-rank p50/p95/p99 of an ascending-sorted sample set. */
inline LatencyQuantiles
quantilesSorted(const std::vector<double> &sorted)
{
    LatencyQuantiles q;
    q.p50 = percentileSorted(sorted, 50);
    q.p95 = percentileSorted(sorted, 95);
    q.p99 = percentileSorted(sorted, 99);
    return q;
}

/** Fill the latency summary fields from an ascending-sorted sample set. */
inline void
fillLatencyStats(ServeStats &stats, const std::vector<double> &sorted)
{
    stats.requests = sorted.size();
    if (sorted.empty())
        return;
    double sum = 0;
    for (double l : sorted)
        sum += l;
    stats.meanLatencyMs = sum / static_cast<double>(sorted.size());
    LatencyQuantiles q = quantilesSorted(sorted);
    stats.p50LatencyMs = q.p50;
    stats.p95LatencyMs = q.p95;
    stats.p99LatencyMs = q.p99;
    stats.maxLatencyMs = sorted.back();
}

/** Poisson request arrivals at @p rate_rps for @p duration_s seconds. */
std::vector<double> poissonArrivals(double rate_rps, double duration_s,
                                    Rng &rng);

/**
 * Serve requests one at a time (the BW microservice discipline): each
 * request costs @p service_ms on the accelerator plus @p network_ms of
 * datacenter network round trip; queued requests wait FIFO.
 */
ServeStats serveUnbatched(const std::vector<double> &arrivals_s,
                          double service_ms, double network_ms);

/**
 * Serve requests through a batching queue (the GPU discipline): wait
 * until @p max_batch requests are queued or @p timeout_ms passed since
 * the oldest queued request, then serve the batch in
 * @p batch_service_ms(batch) milliseconds.
 */
template <typename BatchServiceFn>
ServeStats
serveBatched(const std::vector<double> &arrivals_s, unsigned max_batch,
             double timeout_ms, BatchServiceFn batch_service_ms)
{
    ServeStats stats;
    if (arrivals_s.empty())
        return stats;

    std::vector<double> latencies;
    latencies.reserve(arrivals_s.size());
    double device_free_s = 0.0;
    size_t i = 0;
    uint64_t batches = 0;
    stats.meanBatch = 0.0;
    while (i < arrivals_s.size()) {
        // Form a batch: requests arriving before the trigger time.
        double oldest = arrivals_s[i];
        double trigger = oldest + timeout_ms / 1e3;
        size_t j = i;
        while (j < arrivals_s.size() && j - i < max_batch &&
               arrivals_s[j] <= trigger) {
            ++j;
        }
        unsigned batch = static_cast<unsigned>(j - i);
        double launch = std::max(device_free_s,
                                 batch == max_batch ? arrivals_s[j - 1]
                                                    : trigger);
        double service_s = batch_service_ms(batch) / 1e3;
        double done = launch + service_s;
        device_free_s = done;
        for (size_t k = i; k < j; ++k)
            latencies.push_back((done - arrivals_s[k]) * 1e3);
        stats.meanBatch += batch;
        ++batches;
        i = j;
    }
    stats.meanBatch = batches ? stats.meanBatch / batches : 1.0;

    std::sort(latencies.begin(), latencies.end());
    fillLatencyStats(stats, latencies);
    double span = device_free_s - arrivals_s.front();
    stats.throughputRps = span > 0 ? latencies.size() / span : 0;
    return stats;
}

} // namespace bw

#endif // BW_RUNTIME_SERVING_H
