/**
 * @file
 * Multi-accelerator model execution (Sections II-A/B, V-A).
 *
 * Large multi-component models that exhaust a single accelerator's
 * on-chip memory are partitioned across accelerators that talk
 * point-to-point over the datacenter network. The paper's production
 * example is a bidirectional RNN split across two FPGAs, with the
 * server invoking the forward and backward directions separately and
 * concatenating their outputs; this module models that deployment and
 * provides the capacity query the partitioner uses.
 */

#ifndef BW_RUNTIME_MULTI_FPGA_H
#define BW_RUNTIME_MULTI_FPGA_H

#include "compiler/lowering.h"
#include "graph/builders.h"
#include "timing/npu_timing.h"

namespace bw {

/** Accelerators needed to pin @p graph's weights on @p cfg instances. */
unsigned fpgasNeededForPinning(const GirGraph &graph,
                               const NpuConfig &cfg);

/** One direction of a bidirectional RNN deployment. */
struct BidirDirection
{
    CompiledModel model;
    Cycles cycles = 0; //!< serving cycles for the full sequence
};

/** Result of serving one bidirectional request on two accelerators. */
struct BidirServeResult
{
    BidirDirection forward;
    BidirDirection backward;
    /** End-to-end latency: both directions run in parallel on separate
     *  accelerators; the server waits for the slower one, plus one
     *  network round trip for invocation and gather. */
    double latencyMs = 0;
    double networkMs = 0;
};

/**
 * Compile and time a bidirectional GRU across two @p cfg accelerators
 * (forward and backward passes of @p steps timesteps each), with
 * @p network_ms of invoke/gather network time.
 */
BidirServeResult serveBidirectionalGru(const GruWeights &fwd,
                                       const GruWeights &bwd,
                                       unsigned steps,
                                       const NpuConfig &cfg,
                                       double network_ms = 0.02);

} // namespace bw

#endif // BW_RUNTIME_MULTI_FPGA_H
