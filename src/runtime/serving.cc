#include "runtime/serving.h"

#include <algorithm>

#include "common/logging.h"

namespace bw {

Json
ServeStats::toJson() const
{
    Json j = Json::object();
    j.set("requests", requests);
    j.set("mean_latency_ms", meanLatencyMs);
    j.set("p50_latency_ms", p50LatencyMs);
    j.set("p95_latency_ms", p95LatencyMs);
    j.set("p99_latency_ms", p99LatencyMs);
    j.set("max_latency_ms", maxLatencyMs);
    j.set("throughput_rps", throughputRps);
    j.set("mean_batch", meanBatch);
    return j;
}

std::vector<double>
poissonArrivals(double rate_rps, double duration_s, Rng &rng)
{
    BW_ASSERT(rate_rps > 0 && duration_s > 0);
    std::vector<double> out;
    double t = 0.0;
    while (true) {
        t += rng.exponential(rate_rps);
        if (t >= duration_s)
            break;
        out.push_back(t);
    }
    return out;
}

ServeStats
serveUnbatched(const std::vector<double> &arrivals_s, double service_ms,
               double network_ms)
{
    ServeStats stats;
    if (arrivals_s.empty())
        return stats;

    std::vector<double> latencies;
    latencies.reserve(arrivals_s.size());
    double device_free_s = 0.0;
    double service_s = service_ms / 1e3;
    double net_s = network_ms / 1e3;
    for (double a : arrivals_s) {
        double start = std::max(a + net_s / 2, device_free_s);
        double done = start + service_s;
        device_free_s = done;
        latencies.push_back((done + net_s / 2 - a) * 1e3);
    }

    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    fillLatencyStats(stats, sorted);
    double span = device_free_s - arrivals_s.front();
    stats.throughputRps = span > 0 ? sorted.size() / span : 0;
    return stats;
}

} // namespace bw
