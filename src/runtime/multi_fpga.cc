#include "runtime/multi_fpga.h"

#include <algorithm>

#include "common/bits.h"

namespace bw {

unsigned
fpgasNeededForPinning(const GirGraph &graph, const NpuConfig &cfg)
{
    uint64_t elems = 0;
    for (const GirNode &n : graph.nodes()) {
        if (n.op == GirOp::MatMul)
            elems += static_cast<uint64_t>(n.weight.rows()) *
                     n.weight.cols();
    }
    uint64_t tile_elems =
        static_cast<uint64_t>(cfg.nativeDim) * cfg.nativeDim;
    uint64_t tiles = ceilDiv(elems, tile_elems);
    return static_cast<unsigned>(ceilDiv<uint64_t>(tiles, cfg.mrfSize));
}

namespace {

BidirDirection
compileAndTime(const GruWeights &w, unsigned steps, const NpuConfig &cfg)
{
    BidirDirection d;
    GirGraph g = makeGru(w);
    d.model = compileGir(g, cfg);
    timing::NpuTiming sim(cfg);
    sim.setTileBeats(d.model.tileBeats);
    auto res = sim.run(d.model.prologue, d.model.step, steps);
    d.cycles = res.totalCycles;
    return d;
}

} // namespace

BidirServeResult
serveBidirectionalGru(const GruWeights &fwd, const GruWeights &bwd,
                      unsigned steps, const NpuConfig &cfg,
                      double network_ms)
{
    BidirServeResult r;
    r.forward = compileAndTime(fwd, steps, cfg);
    r.backward = compileAndTime(bwd, steps, cfg);
    r.networkMs = network_ms;
    double fwd_ms = cyclesToMs(r.forward.cycles, cfg.clockMhz);
    double bwd_ms = cyclesToMs(r.backward.cycles, cfg.clockMhz);
    r.latencyMs = std::max(fwd_ms, bwd_ms) + network_ms;
    return r;
}

} // namespace bw
