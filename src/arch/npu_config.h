/**
 * @file
 * Synthesis-time configuration of a BW NPU instance (Sections IV, VI).
 *
 * The four headline synthesis-specialization parameters from the paper are
 * the data type (precision), the native vector dimension, the number of
 * lanes per dot-product engine, and the number of matrix-vector tile
 * engines. NpuConfig also carries storage sizing and the microarchitectural
 * timing parameters of the pipeline, and provides the three published
 * configurations of Table III (BW_S5, BW_A10, BW_S10) plus the CNN-
 * specialized Arria 10 variant of Table VI as presets.
 */

#ifndef BW_ARCH_NPU_CONFIG_H
#define BW_ARCH_NPU_CONFIG_H

#include <cstdint>
#include <string>

#include "bfp/bfp.h"
#include "common/units.h"

namespace bw {

/**
 * Microarchitectural latency/rate parameters of the timing model, in
 * cycles. Defaults are calibrated so the BW_S10 preset reproduces the
 * paper's measured per-timestep cycle counts (Table I: 718 cycles for the
 * 2000-d LSTM, 662 for the 2800-d GRU).
 */
struct TimingParams
{
    /** Control processor issues one compound instruction per N cycles. */
    unsigned dispatchInterval = 4;
    /** Top-level scheduler decode latency per chain. */
    unsigned topSchedLatency = 10;
    /**
     * Minimum interval between successive chain configurations at the
     * top-level scheduler. Each chain reprograms the vector arbitration
     * network, the MFU crossbars, and the register-file decoders before
     * its vectors can flow, and that configuration pipeline admits one
     * chain per interval. This sets the flat per-timestep latency floor
     * the paper observes across model sizes (Section VII-B2).
     */
    unsigned chainInterval = 76;
    /** Second-level (e.g. MVM) scheduler latency. */
    unsigned l2SchedLatency = 8;
    /** Leaf decoder latency (tile-engine / MFU / VRF decoders). */
    unsigned decoderLatency = 4;
    /** VRF read port latency. */
    unsigned vrfReadLatency = 6;
    /** VRF write port latency. */
    unsigned vrfWriteLatency = 6;
    /** Multiplier latency inside a dot-product engine. */
    unsigned mvmMulLatency = 6;
    /** Latency of one accumulation-tree stage. */
    unsigned accumTreeStageLatency = 2;
    /** Latency of one cross-tile add-reduction stage. */
    unsigned reduceStageLatency = 3;
    /** MFU add/subtract/max unit latency. */
    unsigned mfuAddLatency = 14;
    /** MFU Hadamard-multiply unit latency. */
    unsigned mfuMulLatency = 14;
    /** MFU activation (relu/sigmoid/tanh) unit latency. */
    unsigned mfuActLatency = 40;
    /** MFU internal crossbar hop latency. */
    unsigned crossbarLatency = 2;
    /** Vector arbitration network transfer latency (per hop). */
    unsigned arbNetLatency = 20;
    /**
     * Cycles a post-MVM vector unit (MFU function units, the add-
     * reduction stage, VRF ports on the MFU path) is occupied per
     * native vector. The post-MVM datapath is native-vector wide, so
     * this is much smaller than the MVM's nativeDim/lanes streaming
     * beats.
     */
    unsigned vectorUnitBeats = 2;
    /** Network queue occupancy per native vector (link bandwidth). */
    unsigned netBeats = 8;
    /** Latency from network input queue into the pipeline. */
    unsigned netqLatency = 40;
    /** DRAM access latency (first word). */
    unsigned dramLatency = 60;
    /** DRAM bandwidth in bytes/cycle (e.g. 64 B/cyc ~ 16 GB/s @ 250MHz). */
    unsigned dramBytesPerCycle = 64;
};

/** A complete synthesis-time description of one BW NPU instance. */
struct NpuConfig
{
    std::string name = "BW";

    // --- The four synthesis-specialization parameters (Section VI). ---
    /** Native vector dimension N; matrices are N x N tiles. */
    unsigned nativeDim = 400;
    /** Parallel multiplier lanes per dot-product engine. */
    unsigned lanes = 40;
    /** Matrix-vector tile engines in the MVM. */
    unsigned tileEngines = 6;
    /** Matrix (dot-product) precision. */
    BfpFormat precision = bfp152();

    // --- Storage sizing. ---
    /**
     * Matrix register file capacity, in native N x N tile *equivalents*.
     * Matrix rows are element-packed in the MRF SRAM banks, so a matrix
     * whose dimensions are not native multiples only charges its true
     * element count (tail tiles are thin); the tile *index* space is
     * correspondingly larger than the capacity (see mrfEntries()).
     */
    unsigned mrfSize = 306;
    /**
     * Addressable MRF tile entries (0 = default of 4 * mrfSize). Thin
     * tail tiles consume an index without consuming a full tile of
     * capacity, so the index space exceeds the capacity.
     */
    unsigned mrfIndexSpace = 0;
    /** InitialVrf capacity in native vectors. */
    unsigned initialVrfSize = 512;
    /** AddSubVrf capacity in native vectors. */
    unsigned addSubVrfSize = 512;
    /** MultiplyVrf capacity in native vectors. */
    unsigned multiplyVrfSize = 512;
    /** DRAM capacity in bytes. */
    uint64_t dramBytes = 8ull << 30;

    // --- Vector pipeline structure. ---
    /** Chained multifunction units after the MVM. */
    unsigned mfus = 2;
    /** Function units per MFU (add/sub, multiply, activation). */
    unsigned fusPerMfu = 3;

    // --- Clocking. ---
    double clockMhz = 250.0;

    /** Microarchitectural timing parameters. */
    TimingParams timing;

    // --- Derived quantities. ---

    /** Total multiply-accumulate units: engines x rows x lanes. */
    uint64_t
    macCount() const
    {
        return static_cast<uint64_t>(tileEngines) * nativeDim * lanes;
    }

    /** Peak arithmetic ops (mul+add) per cycle. */
    uint64_t opsPerCycle() const { return 2 * macCount(); }

    /** Peak TFLOPS at the configured clock. */
    double peakTflops() const
    {
        return bw::peakTflops(opsPerCycle(), clockMhz);
    }

    /** Cycles a dot-product engine needs to stream one native vector. */
    unsigned
    nativeVectorBeats() const
    {
        return (nativeDim + lanes - 1) / lanes;
    }

    /** Addressable MRF tile entries (resolves the 0 default). */
    unsigned
    mrfEntries() const
    {
        return mrfIndexSpace ? mrfIndexSpace : 4 * mrfSize;
    }

    /** Sanity-check invariants; throws bw::Error when malformed. */
    void validate() const;

    // --- Published configurations (Table III / Table VI). ---
    static NpuConfig bwS5();     //!< Stratix V D5: 6 tiles, 10 lanes, N=100
    static NpuConfig bwA10();    //!< Arria 10 1150: 8 tiles, 16 lanes, N=128
    static NpuConfig bwS10();    //!< Stratix 10 280: 6 tiles, 40 lanes, N=400
    static NpuConfig bwCnnA10(); //!< CNN-specialized Arria 10 (1s.5e.5m)
};

} // namespace bw

#endif // BW_ARCH_NPU_CONFIG_H
