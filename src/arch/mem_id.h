/**
 * @file
 * Architectural memory spaces of the BW NPU (Section IV-C, Table II).
 *
 * Vector and matrix instructions name one of these spaces as their first
 * operand. Register files are tightly coupled to specific function units:
 * InitialVrf feeds the head of the pipeline (the MVM input), AddSubVrf and
 * MultiplyVrf provide the secondary operands of the MFU add/subtract and
 * multiply units, MatrixRf holds pinned model weights adjacent to the
 * dot-product engines, NetQ is the network I/O queue pair, and Dram is the
 * accelerator-local DRAM.
 */

#ifndef BW_ARCH_MEM_ID_H
#define BW_ARCH_MEM_ID_H

#include <cstdint>
#include <string>

namespace bw {

/** Memory-space identifier used by v_rd/v_wr/m_rd/m_wr and VRF operands. */
enum class MemId : uint8_t
{
    InitialVrf = 0, //!< pipeline-head vector register file
    AddSubVrf,      //!< VRF feeding the MFU add/subtract units
    MultiplyVrf,    //!< VRF feeding the MFU multiply units
    MatrixRf,       //!< matrix register file (pinned weights)
    NetQ,           //!< network input/output queue (no index)
    Dram,           //!< accelerator-local DRAM
    NumMemIds
};

/** Short mnemonic used by the assembler, e.g. "ivrf", "mrf", "netq". */
const char *memIdMnemonic(MemId id);

/** Human-readable name, e.g. "InitialVrf". */
const char *memIdName(MemId id);

/** Parse either the mnemonic or the full name; throws bw::Error. */
MemId parseMemId(const std::string &s);

/** True for the three vector register files. */
bool isVrf(MemId id);

/** True if a v_rd may source from this space. */
bool isVectorReadable(MemId id);

/** True if a v_wr may sink to this space. */
bool isVectorWritable(MemId id);

} // namespace bw

#endif // BW_ARCH_MEM_ID_H
