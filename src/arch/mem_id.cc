#include "arch/mem_id.h"

#include "common/logging.h"

namespace bw {

const char *
memIdMnemonic(MemId id)
{
    switch (id) {
      case MemId::InitialVrf: return "ivrf";
      case MemId::AddSubVrf: return "asvrf";
      case MemId::MultiplyVrf: return "mulvrf";
      case MemId::MatrixRf: return "mrf";
      case MemId::NetQ: return "netq";
      case MemId::Dram: return "dram";
      default: BW_PANIC("bad MemId %d", static_cast<int>(id));
    }
}

const char *
memIdName(MemId id)
{
    switch (id) {
      case MemId::InitialVrf: return "InitialVrf";
      case MemId::AddSubVrf: return "AddSubVrf";
      case MemId::MultiplyVrf: return "MultiplyVrf";
      case MemId::MatrixRf: return "MatrixRf";
      case MemId::NetQ: return "NetQ";
      case MemId::Dram: return "Dram";
      default: BW_PANIC("bad MemId %d", static_cast<int>(id));
    }
}

MemId
parseMemId(const std::string &s)
{
    for (int i = 0; i < static_cast<int>(MemId::NumMemIds); ++i) {
        MemId id = static_cast<MemId>(i);
        if (s == memIdMnemonic(id) || s == memIdName(id))
            return id;
    }
    BW_FATAL("unknown memory space '%s'", s.c_str());
}

bool
isVrf(MemId id)
{
    return id == MemId::InitialVrf || id == MemId::AddSubVrf ||
           id == MemId::MultiplyVrf;
}

bool
isVectorReadable(MemId id)
{
    return isVrf(id) || id == MemId::NetQ || id == MemId::Dram;
}

bool
isVectorWritable(MemId id)
{
    return isVrf(id) || id == MemId::NetQ || id == MemId::Dram;
}

} // namespace bw
