#include "arch/npu_config.h"

#include "common/bits.h"
#include "common/logging.h"

namespace bw {

void
NpuConfig::validate() const
{
    if (nativeDim == 0 || lanes == 0 || tileEngines == 0)
        BW_FATAL("%s: native dim, lanes, tile engines must be non-zero",
                 name.c_str());
    if (lanes > nativeDim)
        BW_FATAL("%s: lanes (%u) exceed native dim (%u)", name.c_str(),
                 lanes, nativeDim);
    if (nativeDim % lanes != 0)
        BW_FATAL("%s: native dim (%u) must be a multiple of lanes (%u)",
                 name.c_str(), nativeDim, lanes);
    if (mfus == 0)
        BW_FATAL("%s: at least one MFU is required", name.c_str());
    if (mrfSize == 0 || initialVrfSize == 0 || addSubVrfSize == 0 ||
        multiplyVrfSize == 0) {
        BW_FATAL("%s: register files must have non-zero capacity",
                 name.c_str());
    }
    if (clockMhz <= 0.0)
        BW_FATAL("%s: clock must be positive", name.c_str());
    if (precision.mantBits < 1)
        BW_FATAL("%s: matrix precision needs at least 1 mantissa bit",
                 name.c_str());
}

NpuConfig
NpuConfig::bwS5()
{
    NpuConfig c;
    c.name = "BW_S5";
    c.nativeDim = 100;
    c.lanes = 10;
    c.tileEngines = 6;
    c.mrfSize = 306;
    c.mfus = 2;
    c.clockMhz = 200.0;
    c.precision = bfp152();
    c.dramBytes = 4ull << 30;
    return c;
}

NpuConfig
NpuConfig::bwA10()
{
    NpuConfig c;
    c.name = "BW_A10";
    c.nativeDim = 128;
    c.lanes = 16;
    c.tileEngines = 8;
    c.mrfSize = 512;
    c.mfus = 2;
    c.clockMhz = 300.0;
    c.precision = bfp152();
    c.dramBytes = 8ull << 30;
    return c;
}

NpuConfig
NpuConfig::bwS10()
{
    NpuConfig c;
    c.name = "BW_S10";
    c.nativeDim = 400;
    c.lanes = 40;
    c.tileEngines = 6;
    c.mrfSize = 306;
    c.mfus = 2;
    c.clockMhz = 250.0;
    c.precision = bfp152();
    c.dramBytes = 8ull << 30;
    return c;
}

NpuConfig
NpuConfig::bwCnnA10()
{
    NpuConfig c = bwA10();
    c.name = "BW_CNN_A10";
    // The CNN featurizer variant uses a wider mantissa (Table VI) and
    // relies on DRAM streaming of weights overlapped with compute
    // (Section V-A), so it carries a larger effective DRAM bandwidth,
    // trades MRF capacity for large on-chip activation buffers, and
    // sizes the MRF index space for double-buffered layer weights.
    c.precision = bfp155();
    c.timing.dramBytesPerCycle = 128;
    c.mrfSize = 320;
    c.mrfIndexSpace = 2048;
    c.initialVrfSize = 16384;
    c.addSubVrfSize = 1024;
    return c;
}

} // namespace bw
