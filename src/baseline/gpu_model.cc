#include "baseline/gpu_model.h"

#include <algorithm>

#include "common/logging.h"

namespace bw {

GpuModel
GpuModel::titanXp()
{
    GpuModel g;
    g.name = "Titan Xp";
    g.peakTflops = 12.1; // fp32 (Table IV)
    g.memBwGBs = 547.0;
    g.bytesPerElement = 4;
    g.tdpWatts = 250.0;
    return g;
}

GpuModel
GpuModel::p40()
{
    GpuModel g;
    g.name = "Nvidia P40";
    g.peakTflops = 47.0; // INT8 TOPS (Table VI configuration)
    g.memBwGBs = 346.0;
    g.bytesPerElement = 1;
    g.tdpWatts = 250.0;
    return g;
}

GpuPerf
gpuRnnInference(const GpuModel &gpu, const RnnLayerSpec &layer,
                unsigned batch)
{
    BW_ASSERT(batch >= 1);
    unsigned gates = layer.kind == RnnKind::Lstm ? 4 : 3;

    // Recurrent weights stream every timestep; input-side projections
    // amortize over the sequence as one large GEMM (fold its cost into
    // the compute term).
    double recurrent_bytes = static_cast<double>(gates) * layer.hidden *
                             layer.hidden * gpu.bytesPerElement;
    double mem_us = recurrent_bytes /
                    (gpu.memBwGBs * gpu.memEfficiency * 1e3);

    double step_ops = static_cast<double>(layer.opsPerStep()) * batch;
    double compute_us =
        step_ops / (gpu.peakTflops * gpu.computeEfficiency * 1e6);

    unsigned kernels = layer.kind == RnnKind::Lstm
                           ? gpu.kernelsPerLstmStep
                           : gpu.kernelsPerGruStep;
    double step_us = std::max(mem_us, compute_us) +
                     kernels * gpu.launchOverheadUs;

    GpuPerf perf;
    perf.latencyMs =
        (step_us * layer.timeSteps + gpu.setupUs) / 1e3;
    double total_ops = static_cast<double>(layer.totalOps()) * batch;
    perf.tflops = total_ops / (perf.latencyMs * 1e9);
    perf.utilization = perf.tflops / gpu.peakTflops;
    perf.ips = batch / (perf.latencyMs / 1e3);
    return perf;
}

GpuPerf
gpuConvNetInference(const GpuModel &gpu,
                    const std::vector<ConvSpec> &layers, unsigned batch)
{
    BW_ASSERT(batch >= 1);
    double eff = gpu.convEffMax * batch / (batch + gpu.convEffHalfBatch);

    double total_us = gpu.setupUs;
    double total_ops = 0;
    for (const ConvSpec &s : layers) {
        double ops = static_cast<double>(s.macOps()) * batch;
        total_ops += ops;
        double compute_us = ops / (gpu.peakTflops * eff * 1e6);
        double weight_bytes =
            static_cast<double>(s.weightCount()) * gpu.bytesPerElement;
        double mem_us =
            weight_bytes / (gpu.memBwGBs * gpu.memEfficiency * 1e3);
        total_us += std::max(compute_us, mem_us) + gpu.launchOverheadUs;
    }

    GpuPerf perf;
    perf.latencyMs = total_us / 1e3;
    perf.tflops = total_ops / (perf.latencyMs * 1e9);
    perf.utilization = perf.tflops / gpu.peakTflops;
    perf.ips = batch / (perf.latencyMs / 1e3);
    return perf;
}

} // namespace bw
