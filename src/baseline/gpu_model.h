/**
 * @file
 * Analytic GPU baseline performance model.
 *
 * The paper compares the BW NPU against published DeepBench results on
 * an NVIDIA Titan Xp (RNN inference, Table V) and against a P40 running
 * TensorRT (ResNet-50, Table VI). Neither GPU is available here, so we
 * model them from first principles:
 *
 *  - Batch-1 RNN serving is weight-bandwidth bound: each timestep
 *    streams the recurrent weight matrices from device memory at an
 *    effective fraction of peak bandwidth (the input-side projections
 *    amortize across timesteps as one large GEMM), plus per-step kernel
 *    launch overheads. Batching amortizes the weight traffic across the
 *    batch until the model becomes compute bound — reproducing Fig. 8's
 *    utilization-vs-batch scaling.
 *
 *  - Batch-1 CNN inference is compute bound at low efficiency (small
 *    per-kernel parallelism); efficiency grows with batch following a
 *    saturating b/(b + b_half) law calibrated against the paper's
 *    published batch-1/batch-16 P40 points.
 *
 * Calibrated parameters reproduce the Titan Xp column of Table V within
 * ~10% for GRUs and most LSTMs (see EXPERIMENTS.md for the per-row
 * comparison and known outliers).
 */

#ifndef BW_BASELINE_GPU_MODEL_H
#define BW_BASELINE_GPU_MODEL_H

#include <string>
#include <vector>

#include "graph/conv.h"
#include "workloads/deepbench.h"

namespace bw {

/** Parameters of one modeled GPU. */
struct GpuModel
{
    std::string name;
    double peakTflops = 0;       //!< at its native inference precision
    double memBwGBs = 0;         //!< peak memory bandwidth
    double memEfficiency = 0.75; //!< achievable fraction of peak BW
    double computeEfficiency = 0.55; //!< dense-GEMM fraction of peak
    double launchOverheadUs = 3.0;   //!< per kernel launch
    double setupUs = 50.0;           //!< one-time per-inference cost
    unsigned bytesPerElement = 4;    //!< weight storage (fp32/int8)
    /** Kernels launched per RNN timestep (calibrated: cuDNN's batch-1
     *  GRU path is more fused than its LSTM path). */
    unsigned kernelsPerLstmStep = 12;
    unsigned kernelsPerGruStep = 4;
    /** Conv efficiency saturation: eff(b) = convEffMax * b/(b+half). */
    double convEffMax = 0.60;
    double convEffHalfBatch = 6.0;
    double tdpWatts = 250.0;

    static GpuModel titanXp(); //!< Table IV device
    static GpuModel p40();     //!< Table VI device
};

/** Modeled performance of one inference workload. */
struct GpuPerf
{
    double latencyMs = 0;    //!< end-to-end latency for one batch
    double tflops = 0;       //!< effective throughput (model ops)
    double utilization = 0;  //!< fraction of the device's peak
    double ips = 0;          //!< inferences per second (batch/latency)
};

/** Serve one RNN layer (all timesteps) at the given batch size. */
GpuPerf gpuRnnInference(const GpuModel &gpu, const RnnLayerSpec &layer,
                        unsigned batch = 1);

/** Serve one CNN (sequence of conv layers) at the given batch size. */
GpuPerf gpuConvNetInference(const GpuModel &gpu,
                            const std::vector<ConvSpec> &layers,
                            unsigned batch = 1);

} // namespace bw

#endif // BW_BASELINE_GPU_MODEL_H
