/**
 * @file
 * Cluster front-door router: pluggable request-to-engine policies plus
 * SLO-aware admission.
 *
 * The paper's Fig. 1 front end routes requests to network-attached
 * accelerators; this router reproduces the three policies that matter
 * for the serving argument:
 *
 *   - consistent_hash: requests for one model always land on the same
 *     engine (a hash ring with virtual nodes), maximizing weight-cache
 *     affinity but blind to load — a hot model melts its engine while
 *     neighbors idle.
 *   - least_loaded: pick the engine with the fewest queued + in-flight
 *     requests (the queue-depth / inflight gauges of the PR 3 metrics
 *     registry under the threaded engine; virtual occupancy under
 *     replay). Spreads hot models at the cost of weight reloads.
 *   - slo_aware: least-loaded placement plus class-aware shedding at
 *     the front door — when cluster occupancy crosses a deadline
 *     class's threshold, that class is shed *before* any engine queue
 *     fills, so best-effort traffic degrades first and interactive
 *     traffic keeps its queue room (instead of the blanket QUEUE_FULL
 *     every class suffers equally).
 *
 * Every decision is appended to a bounded log exportable as a
 * bw.route/1 document; decisions are pure functions of (inputs, ring),
 * so two replays of one trace log byte-identical decisions (tested).
 */

#ifndef BW_CLUSTER_ROUTER_H
#define BW_CLUSTER_ROUTER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace bw {
namespace cluster {

/** Front-door routing policies. */
enum class RoutePolicy : uint8_t
{
    ConsistentHash = 0, //!< hash ring by model: max cache affinity
    LeastLoaded,        //!< fewest queued + inflight requests
    SloAware,           //!< least-loaded + class-aware front-door shed
};

const char *routePolicyName(RoutePolicy p);

/** Parse "consistent_hash" | "least_loaded" | "slo_aware". */
Expected<RoutePolicy> routePolicyFromName(const std::string &name);

/** Router configuration. */
struct RouterOptions
{
    RoutePolicy policy = RoutePolicy::LeastLoaded;

    /** Virtual nodes per engine on the consistent-hash ring (more
     *  nodes, smoother model spread across engines). */
    unsigned virtualNodes = 16;

    /**
     * slo_aware shed thresholds, one per deadline class (the
     * SloMonitor class ladder): class c is shed when cluster queue
     * occupancy (total queued / total queue capacity) reaches
     * shedAt[c]. Empty = defaultShedAt(classes): the most urgent class
     * is never front-door shed (threshold above any occupancy), lower
     * classes shed at 0.9, 0.7, ... so load degrades tail-first.
     */
    std::vector<double> shedAt;

    /** Decision-log capacity; older decisions beyond it are dropped
     *  from the log (counters keep counting). */
    size_t logCapacity = 1u << 16;

    static std::vector<double> defaultShedAt(size_t classes);
};

/** One engine's load as seen by the router at decision time. */
struct EngineLoad
{
    uint64_t queued = 0;        //!< admission-queue occupancy
    uint64_t inflight = 0;      //!< requests in service
    uint64_t queueCapacity = 1; //!< EngineOptions::queueDepth
    /** Health-check verdict: an evicted shard is skipped by every
     *  policy (consistent_hash walks the ring past it). */
    bool healthy = true;
};

/** One logged routing decision. */
struct RouteDecision
{
    uint64_t seq = 0;   //!< cluster-wide submission number (1-based)
    uint32_t model = 0;
    uint32_t cls = 0;   //!< deadline class index (SloMonitor ladder)
    /** Target engine; -1 = shed at the front door, -2 = no healthy
     *  engine left (the request is unavailable, not load-shed). */
    int32_t engine = -1;
};

/**
 * The front-door router. Not thread-safe: the cluster serializes
 * decisions (replay is single-threaded; live submits take the cluster
 * routing lock).
 */
class Router
{
  public:
    Router(RouterOptions opts, unsigned engines, size_t slo_classes);

    const RouterOptions &options() const { return opts_; }
    unsigned engines() const { return engines_; }

    /**
     * Decide the target engine for one submission. @p model_name feeds
     * the hash ring (stable across runs: FNV-1a over the name);
     * @p loads must have one entry per engine. Returns the engine
     * index, -1 when the slo_aware policy sheds class @p cls at the
     * front door, or -2 when no healthy engine remains (eviction took
     * the whole fleet). Appends to the decision log either way.
     */
    int32_t route(uint64_t seq, uint32_t model,
                  const std::string &model_name, uint32_t cls,
                  const std::vector<EngineLoad> &loads);

    /** Effective shed threshold for class @p cls. */
    double shedThreshold(uint32_t cls) const;

    uint64_t routed() const { return routed_; }
    uint64_t shed() const { return shed_; }
    /** Decisions that found no healthy engine (engine = -2). */
    uint64_t unavailable() const { return unavailable_; }
    const std::vector<uint64_t> &shedByClass() const
    {
        return shedByClass_;
    }
    const std::vector<RouteDecision> &decisions() const
    {
        return log_;
    }

    /**
     * The decision log as a bw.route/1 document: policy, engines,
     * counters, and one row per logged decision. Deterministic for a
     * deterministic decision sequence — the cluster determinism tests
     * compare two replays' documents byte-identically.
     */
    Json decisionsJson() const;

    /** Drop the log and counters (between replays). */
    void clear();

    /** Snapshot of dropped decision-log entries (log overflow). */
    uint64_t logDropped() const { return logDropped_; }

    /**
     * Attach a streaming decision sink: called once per route() with
     * every decision — including front-door sheds — before the bounded
     * log (which may drop) sees it. This is the O(1)-memory export
     * path (obs::RouteStreamWriter); the materialized log stays the
     * introspection window. Pass nullptr to detach.
     */
    void setDecisionSink(std::function<void(const RouteDecision &)> sink)
    {
        sink_ = std::move(sink);
    }

  private:
    struct RingPoint
    {
        uint64_t hash;
        uint32_t engine;
    };

    int32_t leastLoaded(const std::vector<EngineLoad> &loads) const;
    int32_t ringWalk(const std::string &model_name,
                     const std::vector<EngineLoad> &loads) const;

    RouterOptions opts_;
    unsigned engines_;
    std::vector<double> shedAt_; //!< resolved per-class thresholds
    std::vector<RingPoint> ring_;
    std::vector<RouteDecision> log_;
    uint64_t routed_ = 0;
    uint64_t shed_ = 0;
    uint64_t unavailable_ = 0;
    uint64_t logDropped_ = 0;
    std::vector<uint64_t> shedByClass_;
    std::function<void(const RouteDecision &)> sink_;
};

/**
 * Structural validator for a bw.route/1 document (decisionsJson):
 * schema tag, counter consistency (routed + shed vs logged + dropped
 * rows), per-decision field ranges against the declared engine count.
 */
Status validateRouteJson(const Json &doc);

} // namespace cluster
} // namespace bw

#endif // BW_CLUSTER_ROUTER_H
