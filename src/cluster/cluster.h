/**
 * @file
 * bw::cluster — multi-engine sharded serving with multi-model tenancy
 * and a front-door router.
 *
 * The paper's deployment (Section II, Fig. 1) is not one accelerator:
 * it is racks of network-attached NPUs of several hardware generations
 * (the Table III Stratix V / Arria 10 / Stratix 10 configurations
 * coexist in production) behind a front end that routes each inference
 * to some replica. A Cluster reproduces that layer on top of the
 * single-node serve::Engine:
 *
 *   - Replica groups: N engines per group, each group its own
 *     NpuConfig (heterogeneous hardware mixes, e.g. 2x BW_S10 + 4x
 *     BW_S5). Every engine is an independent shard with its own
 *     metrics registry, flight recorder and SLO monitor — the
 *     unlabeled bw_serve_* series of two engines must never share a
 *     registry.
 *   - Multi-model tenancy: models register once (addModel compiles the
 *     graph for every group's configuration; addTimedModel takes a
 *     flat service time) and any engine can serve any model — at the
 *     cost of an LRU weight-matrix cache per engine (WeightCache): a
 *     request for a non-resident model first streams the model's MRF
 *     tiles from DRAM, charged in cycles from the group's TimingParams
 *     (dramLatency + bytes / dramBytesPerCycle).
 *   - Front-door routing: a Router (router.h) picks the engine per
 *     request — consistent-hash by model, least-loaded, or SLO-aware
 *     with class-ordered admission shedding — and logs every decision.
 *
 * Determinism contract: replay(trace) pushes a generateTraffic() trace
 * through routing, weight caching and the exact per-engine virtual-time
 * queueing discipline of Engine::replayUnbatched, with no threads and
 * no clocks. Two replays of one trace produce byte-identical router
 * decision logs, per-engine bw.flight/1 and bw.slo/1 documents, and
 * span-tree exports (tested). A single-group, single-engine cluster
 * serving one zero-footprint model degenerates to Engine::replay()
 * bit-identically (tested).
 */

#ifndef BW_CLUSTER_CLUSTER_H
#define BW_CLUSTER_CLUSTER_H

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/chaos.h"
#include "cluster/router.h"
#include "cluster/traffic.h"
#include "cluster/weight_cache.h"
#include "common/status.h"
#include "graph/gir.h"
#include "metrics/metrics.h"
#include "obs/fleet.h"
#include "obs/flight.h"
#include "obs/incident.h"
#include "obs/span.h"
#include "serve/engine.h"
#include "serve/session.h"
#include "serve/slo.h"

namespace bw {
namespace metrics {
class MetricsHttpServer;
}
namespace cluster {

/** One replica group: homogeneous engines over one NPU configuration. */
struct ReplicaGroupSpec
{
    std::string name = "s10";  //!< label prefix ("s10/0", "s10/1", ...)
    NpuConfig config;          //!< the group's synthesis configuration
    unsigned engines = 1;      //!< engine shards in this group
    /** Per-engine options (queueDepth, replicas, networkMs, deadlines).
     *  groupLabel / registries / recorders are overwritten per shard. */
    serve::EngineOptions engine;
};

/** Cluster configuration. */
struct ClusterOptions
{
    std::vector<ReplicaGroupSpec> groups;
    RouterOptions router;

    /** Per-engine weight-cache capacity in native matrix tiles
     *  (0 = each engine's config.mrfSize — the paper's MRF budget). */
    uint64_t weightCacheTiles = 0;

    /** Preload registered models (ascending id, first-fit) into every
     *  engine's weight cache at construction and at each replay(). */
    bool warmStart = true;

    /** Cluster-level registry for the bw_cluster_* series (non-owning;
     *  per-engine bw_serve_* series live in per-shard registries). */
    metrics::Registry *metricsRegistry = nullptr;

    /** Span tracer for route-rooted request trees under replay()
     *  (non-owning; cleared at the start of every replay). */
    obs::SpanTracer *spanTracer = nullptr;

    /** Deadline-class ladder and objectives, shared by the cluster
     *  monitor and every per-engine monitor. */
    serve::SloOptions slo;

    /** Per-engine flight-recorder options. */
    obs::FlightRecorderOptions flight;

    /** Timing-fidelity tier for model service-time simulation
     *  (modelServiceMs) and for every shard engine's timing model.
     *  Replays stay deterministic at any tier; Cached replays are
     *  bit-identical to CycleAccurate. */
    timing::Fidelity fidelity = timing::Fidelity::CycleAccurate;

    /**
     * Fidelity audit sampling: when > 0 and the cluster runs a
     * fast/cached tier, every auditEvery-th completed compiled-model
     * request is re-priced against the cycle-accurate model and
     * compared (bw_timing_audit_{checks,divergence}_total,
     * /debug/audit). 0 disables the audit. The sampling key is the
     * deterministic submission sequence number, so two replays audit
     * the same requests.
     */
    uint64_t auditEvery = 0;

    /**
     * Deterministic fault-injection plan (the chaos plane). When
     * enabled() the cluster generates a ChaosSchedule from these
     * options at construction; setChaosSchedule() replaces it. Faults
     * only act under replay() — the live path reacts to health state
     * (setShardHealthy) but never injects.
     */
    ChaosOptions chaos;

    /**
     * Hedged-request latency threshold in virtual milliseconds: when a
     * routed request's primary attempt misses this budget (or fails
     * outright), a duplicate is dispatched to the least-loaded other
     * healthy shard and the first completion wins; the loser is
     * cancelled. Negative disables hedging (the default — the
     * non-hedged replay path is byte-identical to earlier builds).
     * Zero hedges every request.
     */
    double hedgeMs = -1;

    /**
     * Virtual milliseconds between a crash/hang fault firing and the
     * health checker detecting it (detection immediately evicts the
     * shard from routing).
     */
    double healthDetectMs = 5.0;

    /**
     * Apply BW_CLUSTER_* environment overrides on @p base:
     * BW_CLUSTER_MIX replaces the groups with a preset mix
     * ("s5:2,a10:1,s10:1" — preset:count, presets s5 / a10 / s10),
     * BW_CLUSTER_POLICY sets the router policy by name,
     * BW_CLUSTER_CACHE_TILES sets weightCacheTiles,
     * BW_ROUTE_LOG_MAX sets router.logCapacity, and BW_AUDIT_SAMPLE
     * sets auditEvery. BW_TIMING_MODE sets the timing fidelity tier
     * ("cycle" | "fast" | "cached"). BW_HEDGE_MS sets hedgeMs,
     * BW_HEALTH_DETECT_MS sets healthDetectMs, and the BW_CHAOS_*
     * family (ChaosOptions::fromEnv) configures the fault plan.
     */
    static ClusterOptions fromEnv(ClusterOptions base);
    static ClusterOptions fromEnv();
};

/** Per-engine slice of a ClusterStats. */
struct EngineReport
{
    std::string label;
    ServeStats stats;          //!< latency summary of this shard
    uint64_t routed = 0;       //!< requests the router sent here
    uint64_t completed = 0;
    uint64_t rejected = 0;     //!< QUEUE_FULL at the shard
    uint64_t expired = 0;      //!< deadline expiries at dequeue
    uint64_t good = 0;         //!< completions inside their deadline
    uint64_t failed = 0;       //!< requests lost to an injected fault
    uint64_t cancelled = 0;    //!< hedge losers cancelled first-wins
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEvictions = 0;
    uint64_t reloadedTiles = 0;
    double reloadMsTotal = 0;  //!< service time spent streaming weights

    Json toJson() const;
};

/** Outcome of one Cluster::replay(). */
struct ClusterStats
{
    ServeStats overall;  //!< merged latency summary across engines
    uint64_t submitted = 0;
    uint64_t shed = 0;     //!< front-door sheds (router policy)
    uint64_t unavailable = 0; //!< no healthy shard (router engine -2)
    uint64_t rejected = 0; //!< shard QUEUE_FULL rejects
    uint64_t expired = 0;
    uint64_t failed = 0;   //!< requests lost to injected faults
    uint64_t hedged = 0;   //!< requests that dispatched a hedge
    uint64_t hedgeWins = 0; //!< hedges that beat the primary
    uint64_t completed = 0;
    /** Completions whose latency met their deadline (no deadline =
     *  always good): the saturation-sweep goodput numerator. */
    uint64_t goodput = 0;
    double goodputRps = 0;
    std::vector<uint64_t> shedByClass;
    std::vector<EngineReport> engines;

    Json toJson() const;
};

/**
 * A cluster of serve::Engine shards behind a front-door Router.
 * Construction builds every shard (engine + registry + flight recorder
 * + SLO monitor + weight cache); models register afterwards. replay()
 * is single-threaded virtual time; submitTimed() is the live threaded
 * path (router decisions serialized under one lock, service on the
 * shard engines' worker pools).
 */
class Cluster
{
  public:
    explicit Cluster(ClusterOptions opts);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    const ClusterOptions &options() const { return opts_; }
    const Router &router() const { return *router_; }

    /** Total engine shards across all groups. */
    unsigned engineCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Shard label, "<group>/<index-within-group>". */
    const std::string &engineLabel(unsigned engine) const;

    /** The shard's serving engine (live submits, debug endpoints). */
    serve::Engine &engine(unsigned engine);

    /**
     * Register a model: compile @p graph for every group configuration
     * (weight footprint and service times then differ per group, as the
     * hardware does). Returns the model id requests name, or
     * InvalidArgument when compilation fails for some group.
     */
    Expected<uint32_t> addModel(const std::string &name,
                                const GirGraph &graph);

    /**
     * Register a model by flat service time: @p service_ms per request
     * on any group, @p weight_tiles of MRF footprint. Zero tiles makes
     * every touch a free cache hit — the degeneracy-test configuration.
     */
    uint32_t addTimedModel(const std::string &name, double service_ms,
                           uint64_t weight_tiles = 0);

    size_t modelCount() const { return models_.size(); }
    const std::string &modelName(uint32_t model) const;

    /** The model's MRF tile footprint on @p group's configuration. */
    uint64_t modelTiles(uint32_t model, size_t group) const;

    /** Simulated single-request service milliseconds for @p model on
     *  @p group's configuration at @p steps timesteps (cached). */
    double modelServiceMs(uint32_t model, size_t group, unsigned steps);

    /** Milliseconds to stream @p tiles weight tiles from DRAM on
     *  @p group's configuration (TimingParams cycles at clockMhz). */
    double reloadMs(size_t group, uint64_t tiles) const;

    /** Swap the routing policy (drops the decision log; typically
     *  called between replays — the saturation sweep). */
    void setRouterPolicy(RoutePolicy policy);

    // --- Failure-domain observability (the chaos plane). ---

    /**
     * Install a fault schedule for subsequent replay()s, replacing any
     * schedule auto-generated from ClusterOptions::chaos. Faults whose
     * shard index is out of range are ignored; overlapping faults on
     * one shard keep the earlier fault (one incident at a time per
     * shard). An empty schedule restores fault-free replay —
     * byte-identical to a cluster that never had a schedule (tested).
     */
    void setChaosSchedule(ChaosSchedule schedule);

    /** The installed fault schedule (empty when chaos is off). */
    const ChaosSchedule &chaosSchedule() const { return chaos_; }

    /** The incident log of the most recent replay (cleared at each
     *  replayReset, fully closed by replayFinish). */
    const obs::IncidentLog &incidents() const { return incidents_; }

    /** The bw.incident/1 timeline document (/fleet/incidents.json). */
    Json incidentsJson() const { return obs::incidentJson(incidents_); }

    /**
     * Live-path health override: an unhealthy shard is skipped by
     * every routing policy until marked healthy again. Replay manages
     * health itself (detection/eviction under the chaos schedule) and
     * resets every shard healthy at replayReset.
     */
    void setShardHealthy(unsigned engine, bool healthy);

    /**
     * Deterministic virtual-time replay of @p trace (ascending
     * arrivals, e.g. generateTraffic()). Resets router log, weight
     * caches (re-warmed when warmStart), per-engine flight recorders
     * and SLO monitors, the cluster SLO monitor, and the span tracer,
     * then routes every request and mirrors Engine::replayUnbatched
     * per shard with model service + weight-reload charging. Requests
     * without a deadline inherit the target shard's defaultDeadlineMs.
     */
    ClusterStats replay(const std::vector<ClusterRequest> &trace);

    /**
     * Streaming replay: pull requests from @p next (e.g.
     * TrafficStream::next) until it returns false, with O(1) resident
     * memory regardless of trace length — per-shard dequeue history is
     * pruned as virtual time advances and latency summaries come from
     * a bounded log-bucket sketch (exact counters and mean/max;
     * p50/p95/p99 are bucket-upper-bound estimates). Router decisions,
     * flight records, SLO feeds and span trees are byte-identical to
     * replay() on the same trace (tested) — attach a decision sink for
     * the O(1) route export.
     */
    ClusterStats
    replayStream(const std::function<bool(ClusterRequest *)> &next);

    /**
     * Attach a streaming router-decision sink (obs::RouteStreamWriter),
     * re-applied across setRouterPolicy(). Every decision — routed or
     * shed — flows through it before the bounded decision log.
     */
    void setDecisionSink(std::function<void(const RouteDecision &)> sink);

    // --- Live (threaded) serving. ---

    /** Spawn every shard's worker pool (idempotent). */
    void start();

    /**
     * Route and submit one timed request for @p model. Sheds at the
     * front door with Unavailable (naming the deadline class) under the
     * slo_aware policy; otherwise forwards to the routed shard with the
     * model's service time plus any weight-reload charge folded into
     * req.serviceMsOverride. req.deadlineMs 0 = the shard's
     * defaultDeadlineMs; req.inputs must be empty (cluster requests are
     * timed — functional inputs go through a Session directly).
     */
    Expected<std::future<serve::Response>> submit(uint32_t model,
                                                  serve::Request req);

    /** Deprecated shim for submit(model, serve::Request::timed(...)). */
    Expected<std::future<serve::Response>>
    submitTimed(uint32_t model, unsigned steps, double deadline_ms = 0);

    /** Drain every shard (stop admitting, wait for in-flight work). */
    void drain();

    /** Shut every shard down (cancel queued work, join workers). */
    void shutdown();

    /** True while every shard still admits requests. */
    bool accepting() const;

    // --- Introspection. ---

    /** The router's bw.route/1 decision log. */
    Json routeJson() const { return router_->decisionsJson(); }

    /** The cluster-level bw.slo/1 document (sheds burn availability). */
    Json sloJson() const { return clsMonitor_.sloJson(); }

    /** Deadline classes in the monitor's ladder (after defaulting) —
     *  sizes the RouteStreamWriter's shed_by_class vector. */
    size_t sloClassCount() const
    {
        return clsMonitor_.options().classes.size();
    }

    /** Shard @p engine's bw.slo/1 document. */
    Json engineSloJson(unsigned engine) const;

    /** Shard @p engine's bw.flight/1 document (model-less shards have
     *  no chain leaves, matching Engine::flightJson without a model). */
    Json engineFlightJson(unsigned engine) const;

    /** Shard @p engine's weight-cache state. */
    Json engineCacheJson(unsigned engine) const;

    /** Topology + per-shard occupancy/cache/counters + router summary. */
    Json debugClusterJson() const;

    /** The fleet federation plane over every shard registry + SLO
     *  monitor (and the cluster registry when bound). */
    const obs::FleetRegistry &fleet() const { return fleet_; }

    /** Federated /fleet/metrics Prometheus text. */
    std::string fleetMetricsText() const { return fleet_.prometheus(); }

    /** Federated /fleet/metrics.json document. */
    Json fleetMetricsJson() const { return fleet_.metricsJson(); }

    /** Fleet bw.slo/1 rollup across every shard monitor. */
    Json fleetSloJson() const { return fleet_.sloRollupJson(); }

    /** The /debug/audit document: fidelity-audit sampling config,
     *  check/divergence counters, and the last divergence (if any). */
    Json auditJson() const;

    uint64_t auditChecks() const { return auditChecks_; }
    uint64_t auditDivergences() const { return auditDivergence_; }

    /**
     * Mount the cluster's introspection endpoints on @p srv:
     * /debug/cluster, /route.json, /slo.json, and per shard i
     * /engine/i/slo.json, /engine/i/flight.json, /engine/i/metrics.json
     * (the shard registry's bw_serve_* series) and /engine/i/debug/config
     * (which carries the shard's group label). Registers the readiness
     * probe: /healthz turns 503 once any shard stops accepting. The
     * server must not outlive the cluster.
     */
    void exposeDebug(metrics::MetricsHttpServer &srv);

  private:
    /**
     * Bounded log-bucket latency summary for streaming replay: exact
     * count/mean/max, bucket-upper-bound p50/p95/p99. Buckets are
     * geometric (ratio 2^(1/4)) from 1 microsecond.
     */
    struct LatencySketch
    {
        static constexpr size_t kBuckets = 96;
        uint64_t count = 0;
        double sumMs = 0;
        double maxMs = 0;
        std::array<uint64_t, kBuckets> buckets{};

        void record(double latency_ms);
        void clear();
        /** Fill the requests/mean/percentile/max fields of @p stats. */
        void fill(ServeStats &stats) const;
    };

    /** One engine shard: the engine plus everything it must not share. */
    struct Shard
    {
        std::string label;
        size_t group = 0;
        std::unique_ptr<metrics::Registry> registry;
        std::unique_ptr<obs::FlightRecorder> flight;
        std::unique_ptr<serve::SloMonitor> slo;
        std::unique_ptr<serve::Engine> engine;
        WeightCache cache;
        /** The engine's own occupancy gauges (live-load signal). */
        metrics::Gauge *queueDepth = nullptr;
        metrics::Gauge *inflight = nullptr;

        // Virtual-time replay state (mirrors Engine::replayUnbatched).
        // A deque, not a vector: streaming replay prunes entries whose
        // start has passed (they can never count as queued again under
        // ascending arrivals), bounding memory at the queue depth.
        std::deque<double> starts; //!< dequeue time per admitted req
        std::vector<double> freeS; //!< per-replica next-free time
        uint64_t attempt = 0;      //!< per-shard flight seq counter

        /** Health-check verdict: false once the checker evicts the
         *  shard (replay: chaos detection; live: setShardHealthy). */
        bool healthy = true;

        // Per-replay report accumulators.
        uint64_t routed = 0, completed = 0, rejected = 0, expired = 0;
        uint64_t good = 0, reloadedTiles = 0;
        uint64_t failed = 0;    //!< requests lost to injected faults
        uint64_t cancelled = 0; //!< hedge losers cancelled here
        double reloadMsTotal = 0;
        std::vector<double> latencies; //!< exact (vector replay) only
        LatencySketch sketch;          //!< streaming replay only
        double firstArrival = 0, lastDone = 0;
        bool saw = false;
    };

    /** State threaded through one replay pass (vector or streaming). */
    struct ReplayPass
    {
        ClusterStats cs;
        uint64_t seq = 0;      //!< every submission (router key)
        uint64_t admitted = 0; //!< admitted ids (span trace ids)
        bool streaming = false;
        double lastArrival = 0;
        bool sawArrival = false;
    };

    /** One registered model. */
    struct ModelEntry
    {
        std::string name;
        bool timed = false;
        double timedMs = 0;
        uint64_t timedTiles = 0;
        /** One compiled session per group (empty when timed). */
        std::vector<std::unique_ptr<Session>> sessions;
        metrics::Counter *requests = nullptr; //!< bw_cluster_requests_total
    };

    /** Per-shard cluster-registry counters (labels {engine: label}). */
    struct ShardMetrics
    {
        metrics::Counter *routed = nullptr;
        metrics::Counter *completed = nullptr;
        metrics::Counter *rejected = nullptr;
        metrics::Counter *expired = nullptr;
        metrics::Counter *cacheHits = nullptr;
        metrics::Counter *cacheMisses = nullptr;
        metrics::Counter *cacheEvictions = nullptr;
        metrics::Counter *reloadUs = nullptr;
    };

    std::vector<EngineLoad> virtualLoads(double now_s) const;
    std::vector<EngineLoad> liveLoads() const;
    void warmCaches();
    void bindClusterMetrics();
    metrics::Counter *shedCounter(uint32_t cls);

    // Replay decomposition shared by replay() and replayStream().
    void replayReset();
    void replayOne(const ClusterRequest &req, ReplayPass &rp);
    ClusterStats replayFinish(ReplayPass &rp);
    /** Drop per-shard dequeue history that virtual time has passed. */
    void pruneStarts(double now_s);

    // --- Chaos plane (replay fault injection + incident telemetry). ---

    /** Active fault effects on one shard (between fire and recover). */
    struct ShardChaos
    {
        bool down = false;     //!< crashed: requests error at failAtS
        bool hung = false;     //!< hung: requests stall to deadline
        bool slow = false;     //!< degraded: service times multiplied
        bool dropping = false; //!< lossy: per-request coin-flip errors
        double slowFactor = 1.0;
        double dropProb = 0;
        double failAtS = 0; //!< crash: when callers see the error
        double endS = 0;    //!< fault-window end (hang fallback stamp)
        size_t fault = 0;   //!< schedule index (drop-decision salt)
        uint64_t incident = 0;
    };

    /** One precomputed incident state-machine edge. Built at
     *  replayReset from the schedule; stamps are pure functions of
     *  (schedule, options), which is what makes incident timelines
     *  replay byte-identically. */
    struct ChaosTransition
    {
        enum Phase : uint8_t
        {
            Fire = 0,        //!< fault effects begin
            Detect,          //!< health check notices; shard evicted
            RewarmStart,     //!< crash only: weight re-load begins
            Recover,         //!< effects end; shard rejoins routing
        };
        double tS = 0;
        unsigned shard = 0;
        uint32_t fault = 0; //!< index into chaos_.faults()
        Phase phase = Fire;
    };

    /** One dispatch attempt of a hedged request: all shard-state
     *  mutations committed, nothing recorded yet (the winner decides
     *  the record phase). */
    struct HedgeAttempt
    {
        enum class Kind : uint8_t
        {
            Rejected,  //!< shard queue full
            Expired,   //!< deadline passed at dequeue
            Faulted,   //!< lost to an injected fault
            Completed, //!< serviced (may still lose the hedge race)
        };
        Kind kind = Kind::Completed;
        unsigned shard = 0;
        uint64_t seq = 0;       //!< per-shard flight attempt number
        double dispatchS = 0;   //!< when this attempt reached the shard
        double startS = 0;      //!< service start (dequeue)
        double doneS = 0;       //!< service completion
        double clientDoneS = 0; //!< when the caller hears the outcome
        double latencyMs = 0;   //!< caller-observed, from dispatchS
        double deadlineMs = 0;  //!< resolved against the shard default
        size_t replica = 0;
        bool reserved = false;  //!< starts/freeS mutated (undo window)
        double prevFree = 0;    //!< freeS[replica] before reservation
        obs::FlightClass fcls = obs::FlightClass::Ok;
    };

    /** Process every transition with tS <= now_s, in stamp order. */
    void advanceChaos(double now_s);
    void applyTransition(const ChaosTransition &tr);
    void setHealthGauge(size_t shard, double state);
    metrics::Counter *failCounter(size_t shard, FaultClass cls);
    /** Charge a fault-failed request on the single-dispatch path. */
    void chaosFail(size_t shard, ShardMetrics *sm, ReplayPass &rp,
                   const ClusterRequest &req, FaultClass fcls,
                   obs::FlightClass cls, double fail_s,
                   double deadline_ms);

    /** Run one dispatch attempt of a hedged request against @p shard
     *  at virtual time @p t, committing queue/cache/replica state. */
    HedgeAttempt runAttempt(unsigned shard, double t,
                            const ClusterRequest &req, ReplayPass &rp);
    /** The hedged routed path of replayOne (opts_.hedgeMs >= 0). */
    void replayHedged(const ClusterRequest &req, ReplayPass &rp,
                      unsigned primary, uint32_t cls);
    void recordAttemptFlight(const HedgeAttempt &at, uint64_t id,
                             bool sampled, unsigned steps);

    /** Cycle-accurate service time for the audit (cached per
     *  (model, group, steps), like serviceCache_). */
    double exactServiceMs(uint32_t model, size_t group, unsigned steps);
    /** Sampled fast-vs-cycle-accurate comparison (replay completed
     *  path). */
    void auditCheck(uint64_t seq, uint32_t model, size_t group,
                    unsigned steps, double fast_ms);
    /** Attach chain leaf spans under @p execute from the compiled
     *  model's retired-chain profiles (cached per (model, group,
     *  steps)). */
    void stitchChainSpans(obs::SpanTracer &tracer, obs::TraceId trace,
                          obs::SpanId execute, uint32_t model,
                          size_t group, unsigned steps,
                          uint64_t service_us, uint64_t done_us);

    ClusterOptions opts_;
    std::unique_ptr<Router> router_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<ModelEntry> models_;
    /** Cluster-level SLO monitor: deadline-class authority (classOf)
     *  and the front-door /slo.json — records every submission
     *  including sheds (as availability burn). */
    serve::SloMonitor clsMonitor_;
    std::vector<ShardMetrics> shardMetrics_;
    std::vector<metrics::Counter *> shedByClassC_;
    metrics::Gauge *enginesGauge_ = nullptr;
    metrics::Gauge *modelsGauge_ = nullptr;

    /** (model, group, steps) -> simulated service ms. */
    std::unordered_map<uint64_t, double> serviceCache_;
    /** (model, group, steps) -> cycle-accurate ms (audit reference). */
    std::unordered_map<uint64_t, double> exactCache_;

    /** Cached retired-chain profiles for span stitching. */
    struct ChainInfo
    {
        Cycles totalCycles = 0;
        std::shared_ptr<const std::vector<obs::ChainProfile>> chains;
    };
    /** (model, group, steps) -> chain profiles. */
    std::unordered_map<uint64_t, ChainInfo> chainCache_;

    /** The fleet federation plane (cluster registry + every shard). */
    obs::FleetRegistry fleet_;

    /** Streaming router-decision sink, re-applied on router swaps. */
    std::function<void(const RouteDecision &)> decisionSink_;

    // Chaos-plane state (replay fault injection).
    ChaosSchedule chaos_;
    obs::IncidentLog incidents_;
    std::vector<ChaosTransition> transitions_;
    size_t nextTransition_ = 0;
    std::vector<ShardChaos> shardChaos_;
    /** Per-shard warm-set size at reset — what a crash must re-load. */
    std::vector<uint64_t> rewarmTiles_;
    std::vector<double> rewarmMs_;
    /** bw_health_state per shard: 0 healthy, 1 degraded, 2 faulted,
     *  3 evicted, 4 re-warming. */
    std::vector<metrics::Gauge *> healthG_;
    /** bw_failure_total per shard per fault class. */
    std::vector<std::array<metrics::Counter *,
                           static_cast<size_t>(
                               FaultClass::NumFaultClasses)>>
        failureC_;
    metrics::Counter *hedgeAttemptsC_ = nullptr;
    metrics::Counter *hedgeWinsC_ = nullptr;
    metrics::Counter *hedgeCancelledC_ = nullptr;

    // Fidelity-audit state (cumulative across replays, like the
    // cluster-registry counters).
    uint64_t auditChecks_ = 0;
    uint64_t auditDivergence_ = 0;
    metrics::Counter *auditChecksC_ = nullptr;
    metrics::Counter *auditDivergenceC_ = nullptr;
    struct AuditSample
    {
        uint64_t seq = 0;
        uint32_t model = 0;
        unsigned steps = 0;
        double fastMs = 0;
        double exactMs = 0;
    };
    AuditSample lastCheck_;
    AuditSample lastDivergence_;

    /** Serializes live routing decisions + cache touches. */
    std::mutex liveMu_;
    uint64_t liveSeq_ = 0;
};

} // namespace cluster
} // namespace bw

#endif // BW_CLUSTER_CLUSTER_H
