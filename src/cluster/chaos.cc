#include "cluster/chaos.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/rng.h"

namespace bw {
namespace cluster {

const char *
faultClassName(FaultClass c)
{
    switch (c) {
      case FaultClass::ReplicaCrash: return "crash";
      case FaultClass::ReplicaHang: return "hang";
      case FaultClass::SlowReplica: return "slow";
      case FaultClass::DroppedMessage: return "drop";
      default: BW_PANIC("bad FaultClass %d", static_cast<int>(c));
    }
}

ChaosOptions
ChaosOptions::fromEnv(ChaosOptions base)
{
    if (const char *v = std::getenv("BW_CHAOS_SEED")) {
        if (*v)
            base.seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    }
    if (const char *v = std::getenv("BW_CHAOS_RATE")) {
        if (*v)
            base.faultRate = std::max(0.0, std::atof(v));
    }
    if (const char *v = std::getenv("BW_CHAOS_HORIZON_S")) {
        if (*v)
            base.horizonS = std::max(0.0, std::atof(v));
    }
    if (const char *v = std::getenv("BW_CHAOS_MEAN_S")) {
        if (*v)
            base.meanDurationS = std::max(0.0, std::atof(v));
    }
    if (const char *v = std::getenv("BW_CHAOS_SLOW_FACTOR")) {
        if (*v)
            base.slowFactor = std::max(1.0, std::atof(v));
    }
    if (const char *v = std::getenv("BW_CHAOS_DROP_PROB")) {
        if (*v)
            base.dropProb =
                std::min(1.0, std::max(0.0, std::atof(v)));
    }
    return base;
}

ChaosOptions
ChaosOptions::fromEnv()
{
    return fromEnv(ChaosOptions{});
}

ChaosSchedule
ChaosSchedule::generate(const ChaosOptions &opts, unsigned shards)
{
    ChaosSchedule s;
    s.seed_ = opts.seed;
    if (!opts.enabled() || shards == 0)
        return s;
    // One seeded stream, fixed draw order per fault (gap, shard, class,
    // duration): the schedule is a pure function of (opts, shards).
    Rng rng(opts.seed);
    double t = 0;
    while (true) {
        t += rng.exponential(opts.faultRate);
        if (t >= opts.horizonS)
            break;
        FaultEvent ev;
        ev.atS = t;
        ev.shard = static_cast<unsigned>(
            rng.integer(0, static_cast<int64_t>(shards) - 1));
        ev.cls = static_cast<FaultClass>(rng.integer(
            0, static_cast<int64_t>(FaultClass::NumFaultClasses) - 1));
        double mean = std::max(1e-6, opts.meanDurationS);
        ev.durationS = rng.exponential(1.0 / mean);
        if (ev.cls == FaultClass::SlowReplica)
            ev.magnitude = opts.slowFactor;
        else if (ev.cls == FaultClass::DroppedMessage)
            ev.magnitude = opts.dropProb;
        s.faults_.push_back(ev);
    }
    return s;
}

void
ChaosSchedule::addFault(FaultEvent ev)
{
    faults_.push_back(ev);
    std::stable_sort(faults_.begin(), faults_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.atS != b.atS ? a.atS < b.atS
                                               : a.shard < b.shard;
                     });
}

Json
ChaosSchedule::toJson() const
{
    Json j = Json::object();
    j.set("schema", "bw.chaos/1");
    j.set("seed", seed_);
    j.set("faults", static_cast<uint64_t>(faults_.size()));
    Json arr = Json::array();
    for (const FaultEvent &f : faults_) {
        Json fj = Json::object();
        fj.set("class", faultClassName(f.cls));
        fj.set("shard", f.shard);
        fj.set("at_s", f.atS);
        fj.set("duration_s", f.durationS);
        fj.set("magnitude", f.magnitude);
        arr.push(std::move(fj));
    }
    j.set("events", std::move(arr));
    return j;
}

double
chaosUniform(uint64_t seed, uint64_t fault, uint64_t seq)
{
    // splitmix64 finalizer over the mixed key; top 53 bits -> [0, 1).
    uint64_t z = seed ^ (fault * 0x9E3779B97F4A7C15ull) ^
                 (seq * 0xBF58476D1CE4E5B9ull);
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
}

} // namespace cluster
} // namespace bw
