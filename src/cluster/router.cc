#include "cluster/router.h"

#include <algorithm>

#include "common/logging.h"

namespace bw {
namespace cluster {

namespace {

/// FNV-1a over a byte string — stable across platforms and runs, which
/// is what keeps the hash ring (and therefore consistent_hash routing)
/// reproducible between replays and between builds.
uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

uint64_t
fnv1aMix(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

const char *
routePolicyName(RoutePolicy p)
{
    switch (p) {
    case RoutePolicy::ConsistentHash:
        return "consistent_hash";
    case RoutePolicy::LeastLoaded:
        return "least_loaded";
    case RoutePolicy::SloAware:
        return "slo_aware";
    }
    return "unknown";
}

Expected<RoutePolicy>
routePolicyFromName(const std::string &name)
{
    if (name == "consistent_hash")
        return RoutePolicy::ConsistentHash;
    if (name == "least_loaded")
        return RoutePolicy::LeastLoaded;
    if (name == "slo_aware")
        return RoutePolicy::SloAware;
    return Status::invalidArgument(
        detail::format("unknown route policy '%s' (want consistent_hash, "
                       "least_loaded or slo_aware)",
                       name.c_str()));
}

std::vector<double>
RouterOptions::defaultShedAt(size_t classes)
{
    // The most urgent class is never shed at the front door (occupancy
    // cannot reach 2.0); each class below it sheds earlier, so under
    // saturation the tail classes degrade first.
    std::vector<double> at(classes, 2.0);
    for (size_t c = 1; c < classes; ++c)
        at[c] = std::max(0.5, 0.9 - 0.2 * static_cast<double>(c - 1));
    return at;
}

Router::Router(RouterOptions opts, unsigned engines, size_t slo_classes)
    : opts_(std::move(opts)),
      engines_(engines > 0 ? engines : 1),
      shedByClass_(slo_classes > 0 ? slo_classes : 1, 0)
{
    shedAt_ = opts_.shedAt.empty()
                  ? RouterOptions::defaultShedAt(shedByClass_.size())
                  : opts_.shedAt;
    shedAt_.resize(shedByClass_.size(), shedAt_.back());

    unsigned vnodes = std::max(1u, opts_.virtualNodes);
    ring_.reserve(static_cast<size_t>(engines_) * vnodes);
    for (uint32_t e = 0; e < engines_; ++e) {
        for (unsigned v = 0; v < vnodes; ++v) {
            uint64_t h = fnv1aMix(fnv1aMix(14695981039346656037ull, e),
                                  v + 1);
            ring_.push_back(RingPoint{h, e});
        }
    }
    std::sort(ring_.begin(), ring_.end(),
              [](const RingPoint &a, const RingPoint &b) {
                  return a.hash != b.hash ? a.hash < b.hash
                                          : a.engine < b.engine;
              });
}

double
Router::shedThreshold(uint32_t cls) const
{
    return shedAt_[std::min<size_t>(cls, shedAt_.size() - 1)];
}

int32_t
Router::leastLoaded(const std::vector<EngineLoad> &loads) const
{
    uint64_t best = UINT64_MAX;
    int32_t pick = -2; // no healthy engine
    for (size_t e = 0; e < loads.size(); ++e) {
        if (!loads[e].healthy)
            continue; // evicted shards take no new work
        uint64_t occ = loads[e].queued + loads[e].inflight;
        if (occ < best) { // strict: ties go to the lowest index
            best = occ;
            pick = static_cast<int32_t>(e);
        }
    }
    return pick;
}

int32_t
Router::ringWalk(const std::string &model_name,
                 const std::vector<EngineLoad> &loads) const
{
    uint64_t h = fnv1a(model_name);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const RingPoint &p, uint64_t v) { return p.hash < v; });
    // Walk the ring forward past evicted engines — the rehash is a
    // pure function of (ring, health set), so replays and the
    // determinism tests see identical re-placements.
    for (size_t step = 0; step < ring_.size(); ++step, ++it) {
        if (it == ring_.end())
            it = ring_.begin(); // wrap around the ring
        if (loads[it->engine].healthy)
            return static_cast<int32_t>(it->engine);
    }
    return -2; // every engine evicted
}

int32_t
Router::route(uint64_t seq, uint32_t model,
              const std::string &model_name, uint32_t cls,
              const std::vector<EngineLoad> &loads)
{
    BW_ASSERT(loads.size() == engines_,
              "router got %zu engine loads, expected %u", loads.size(),
              engines_);
    int32_t engine = -1;
    switch (opts_.policy) {
    case RoutePolicy::ConsistentHash:
        engine = ringWalk(model_name, loads);
        break;
    case RoutePolicy::LeastLoaded:
        engine = leastLoaded(loads);
        break;
    case RoutePolicy::SloAware: {
        // Occupancy over the healthy set only: an evicted shard's
        // capacity is gone, so its empty queue must not mask pressure.
        uint64_t queued = 0, capacity = 0;
        bool anyHealthy = false;
        for (const EngineLoad &l : loads) {
            if (!l.healthy)
                continue;
            anyHealthy = true;
            queued += l.queued;
            capacity += std::max<uint64_t>(l.queueCapacity, 1);
        }
        if (!anyHealthy) {
            engine = -2;
            break;
        }
        double occupancy =
            static_cast<double>(queued) / static_cast<double>(capacity);
        if (occupancy >= shedThreshold(cls))
            engine = -1; // front-door shed: this class yields its slot
        else
            engine = leastLoaded(loads);
        break;
    }
    }

    if (engine == -2) {
        ++unavailable_;
    } else if (engine < 0) {
        ++shed_;
        ++shedByClass_[std::min<size_t>(cls, shedByClass_.size() - 1)];
    } else {
        ++routed_;
    }
    RouteDecision decision{seq, model, cls, engine};
    if (sink_)
        sink_(decision); // streaming export sees every decision
    if (log_.size() < opts_.logCapacity)
        log_.push_back(decision);
    else
        ++logDropped_;
    return engine;
}

Json
Router::decisionsJson() const
{
    Json j = Json::object();
    j.set("schema", "bw.route/1");
    j.set("policy", routePolicyName(opts_.policy));
    j.set("engines", engines_);
    j.set("routed", routed_);
    j.set("shed", shed_);
    j.set("unavailable", unavailable_);
    j.set("log_dropped", logDropped_);
    Json by_class = Json::array();
    for (uint64_t c : shedByClass_)
        by_class.push(c);
    j.set("shed_by_class", std::move(by_class));
    Json rows = Json::array();
    for (const RouteDecision &d : log_) {
        Json r = Json::object();
        r.set("seq", d.seq);
        r.set("model", d.model);
        r.set("class", d.cls);
        r.set("engine", d.engine);
        rows.push(std::move(r));
    }
    j.set("decisions", std::move(rows));
    return j;
}

void
Router::clear()
{
    log_.clear();
    routed_ = 0;
    shed_ = 0;
    unavailable_ = 0;
    logDropped_ = 0;
    std::fill(shedByClass_.begin(), shedByClass_.end(), 0);
}

Status
validateRouteJson(const Json &doc)
{
    const Json *schema = doc.find("schema");
    if (!schema || schema->type() != Json::Type::String ||
        schema->asString() != "bw.route/1")
        return Status::invalidArgument("schema tag is not bw.route/1");
    for (const char *key :
         {"policy", "engines", "routed", "shed", "unavailable",
          "log_dropped", "shed_by_class", "decisions"}) {
        if (!doc.contains(key))
            return Status::invalidArgument(
                detail::format("missing field '%s'", key));
    }
    if (!routePolicyFromName(doc.find("policy")->asString()).ok())
        return Status::invalidArgument(
            detail::format("unknown policy '%s'",
                           doc.find("policy")->asString().c_str()));
    int64_t engines = doc.find("engines")->asInt();
    if (engines < 1)
        return Status::invalidArgument("engines must be >= 1");
    uint64_t routed = 0, shed = 0, unavailable = 0;
    const Json *rows = doc.find("decisions");
    for (size_t i = 0; i < rows->size(); ++i) {
        const Json &r = rows->at(i);
        for (const char *key : {"seq", "model", "class", "engine"}) {
            if (!r.contains(key))
                return Status::invalidArgument(detail::format(
                    "decision %zu missing field '%s'", i, key));
        }
        int64_t engine = r.find("engine")->asInt();
        if (engine < -2 || engine >= engines)
            return Status::invalidArgument(detail::format(
                "decision %zu engine %lld out of range [-2, %lld)", i,
                static_cast<long long>(engine),
                static_cast<long long>(engines)));
        if (engine == -2)
            ++unavailable;
        else if (engine < 0)
            ++shed;
        else
            ++routed;
    }
    uint64_t dropped =
        static_cast<uint64_t>(doc.find("log_dropped")->asInt());
    uint64_t logged_total = routed + shed + unavailable + dropped;
    uint64_t counted =
        static_cast<uint64_t>(doc.find("routed")->asInt()) +
        static_cast<uint64_t>(doc.find("shed")->asInt()) +
        static_cast<uint64_t>(doc.find("unavailable")->asInt());
    if (logged_total != counted)
        return Status::invalidArgument(detail::format(
            "decision rows (%llu) + dropped (%llu) != routed + shed + "
            "unavailable (%llu)",
            static_cast<unsigned long long>(routed + shed + unavailable),
            static_cast<unsigned long long>(dropped),
            static_cast<unsigned long long>(counted)));
    uint64_t by_class = 0;
    const Json *bc = doc.find("shed_by_class");
    for (size_t i = 0; i < bc->size(); ++i)
        by_class += static_cast<uint64_t>(bc->at(i).asInt());
    if (by_class != static_cast<uint64_t>(doc.find("shed")->asInt()))
        return Status::invalidArgument(
            "shed_by_class does not sum to shed");
    return Status();
}

} // namespace cluster
} // namespace bw
