/**
 * @file
 * Open-loop cluster traffic generation: seeded, deterministic Poisson
 * arrivals over a multi-model mix, with diurnal modulation and burst
 * phases.
 *
 * The paper's Fig. 1 datacenter serves live traffic whose rate is
 * anything but constant — the text calls out diurnal load swings and
 * the need to absorb bursts without violating the hard SLO. TrafficGen
 * models that as a non-homogeneous Poisson process:
 *
 *   rate(t) = baseRps
 *           * (1 + diurnalAmplitude * sin(2*pi*t / diurnalPeriodS))
 *           * burstMultiplier(t)
 *
 * realized by thinning: candidate arrivals are drawn at the peak rate
 * from a seeded Rng and accepted with probability rate(t) / peakRate.
 * Every draw flows through the one Rng in a fixed order, so the same
 * TrafficOptions always produce the same trace — the determinism
 * contract the cluster replay() inherits (see cluster.h).
 *
 * Each accepted arrival is assigned a resident model by weighted draw
 * over the mix (skew the weights for the hot-model scenarios the
 * router benchmarks exercise); the mix entry also fixes the request's
 * step count and deadline class.
 */

#ifndef BW_CLUSTER_TRAFFIC_H
#define BW_CLUSTER_TRAFFIC_H

#include <cstdint>
#include <vector>

#include "common/json.h"
#include "common/rng.h"

namespace bw {
namespace cluster {

/** One entry of the model popularity mix. */
struct ModelMix
{
    uint32_t model = 0;    //!< resident-model id (Cluster::addModel)
    double weight = 1.0;   //!< relative popularity (any positive scale)
    unsigned steps = 1;    //!< timesteps per request of this model
    double deadlineMs = 0; //!< per-request deadline (0 = engine default)
};

/** One burst phase: the arrival rate is multiplied while it lasts. */
struct BurstPhase
{
    double startS = 0;
    double durationS = 0;
    double multiplier = 1.0;
};

/** TrafficGen configuration. */
struct TrafficOptions
{
    double baseRps = 1000.0;
    double durationS = 1.0;
    uint64_t seed = 42;

    /** Diurnal modulation: rate swings +/- this fraction of baseRps
     *  over one period (0 = flat). */
    double diurnalAmplitude = 0.0;
    double diurnalPeriodS = 86400.0;

    std::vector<BurstPhase> bursts;

    /** Model popularity mix; empty = one model (id 0, steps 1). */
    std::vector<ModelMix> mix;

    /** Apply BW_CLUSTER_SEED, BW_CLUSTER_RPS and BW_CLUSTER_DURATION_S
     *  on @p base. */
    static TrafficOptions fromEnv(TrafficOptions base);
    static TrafficOptions fromEnv();
};

/** One generated request of the cluster trace. */
struct ClusterRequest
{
    double arrivalS = 0;
    uint32_t model = 0;
    unsigned steps = 1;
    double deadlineMs = 0;
};

/** The instantaneous arrival rate at @p t_s (diurnal * bursts). */
double trafficRateAt(const TrafficOptions &opts, double t_s);

/**
 * Pull-based traffic generator: the same thinning process as
 * generateTraffic, one request per next() call, in O(1) memory. The
 * Rng draw order is identical (gap, accept, then model only on
 * accept), so a TrafficStream drained into a vector reproduces
 * generateTraffic(opts) byte-identically (tested) — this is what lets
 * Cluster::replayStream push multi-million-request traces without
 * ever materializing them.
 */
class TrafficStream
{
  public:
    explicit TrafficStream(TrafficOptions opts);

    /** Produce the next request into @p out; false at end of trace. */
    bool next(ClusterRequest *out);

    const TrafficOptions &options() const { return opts_; }

    /** Requests produced so far. */
    uint64_t produced() const { return produced_; }

  private:
    TrafficOptions opts_;
    std::vector<ModelMix> mix_;
    double totalW_ = 0;
    double peak_ = 0;
    Rng rng_;
    double t_ = 0;
    bool done_ = false;
    uint64_t produced_ = 0;
};

/**
 * Generate the arrival trace: ascending arrival times in
 * [0, durationS), each with its drawn model's steps and deadline.
 * Deterministic: same options, same trace (tested byte-identically).
 * Equivalent to draining a TrafficStream into a vector.
 */
std::vector<ClusterRequest> generateTraffic(const TrafficOptions &opts);

/** The trace's shape as Json (count, span, per-model counts). */
Json trafficSummaryJson(const TrafficOptions &opts,
                        const std::vector<ClusterRequest> &trace);

} // namespace cluster
} // namespace bw

#endif // BW_CLUSTER_TRAFFIC_H
