#include "cluster/cluster.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <limits>
#include <thread>

#include "common/logging.h"
#include "metrics/exposition.h"
#include "metrics/http_server.h"

namespace bw {
namespace cluster {

namespace {

/// Same seconds->microseconds rounding as the serving engine, so the
/// cluster's virtual-time flight/SLO records mirror Engine::replay
/// byte-for-byte.
uint64_t
toUs(double seconds)
{
    return seconds > 0
               ? static_cast<uint64_t>(std::llround(seconds * 1e6))
               : 0;
}

/// serviceCache_ key: model and group are small, steps dominates.
uint64_t
svcKey(uint32_t model, size_t group, unsigned steps)
{
    return (static_cast<uint64_t>(model) << 44) |
           (static_cast<uint64_t>(group) << 32) | steps;
}

} // namespace

// --- ClusterOptions ---

ClusterOptions
ClusterOptions::fromEnv(ClusterOptions base)
{
    if (const char *mix = std::getenv("BW_CLUSTER_MIX")) {
        // "s5:2,a10:1" — preset name and engine count per group. The
        // first existing group's engine options act as the template.
        serve::EngineOptions tmpl = base.groups.empty()
                                        ? serve::EngineOptions{}
                                        : base.groups.front().engine;
        std::vector<ReplicaGroupSpec> groups;
        std::string s = mix;
        size_t pos = 0;
        bool ok = true;
        while (pos < s.size()) {
            size_t comma = s.find(',', pos);
            if (comma == std::string::npos)
                comma = s.size();
            std::string tok = s.substr(pos, comma - pos);
            pos = comma + 1;
            if (tok.empty())
                continue;
            size_t colon = tok.find(':');
            std::string name = tok.substr(0, colon);
            unsigned count = 1;
            if (colon != std::string::npos)
                count = static_cast<unsigned>(
                    std::max(1, std::atoi(tok.c_str() + colon + 1)));
            ReplicaGroupSpec g;
            g.name = name;
            g.engines = count;
            g.engine = tmpl;
            if (name == "s5")
                g.config = NpuConfig::bwS5();
            else if (name == "a10")
                g.config = NpuConfig::bwA10();
            else if (name == "s10")
                g.config = NpuConfig::bwS10();
            else {
                BW_WARN("BW_CLUSTER_MIX: unknown preset '%s' (want s5, "
                        "a10 or s10); keeping configured groups",
                        name.c_str());
                ok = false;
                break;
            }
            groups.push_back(std::move(g));
        }
        if (ok && !groups.empty())
            base.groups = std::move(groups);
    }
    if (const char *pol = std::getenv("BW_CLUSTER_POLICY")) {
        Expected<RoutePolicy> p = routePolicyFromName(pol);
        if (p.ok())
            base.router.policy = p.value();
        else
            BW_WARN("BW_CLUSTER_POLICY: %s", p.status().message().c_str());
    }
    if (const char *cap = std::getenv("BW_CLUSTER_CACHE_TILES")) {
        if (*cap)
            base.weightCacheTiles =
                static_cast<uint64_t>(std::max(0.0, std::atof(cap)));
    }
    if (const char *cap = std::getenv("BW_ROUTE_LOG_MAX")) {
        if (*cap)
            base.router.logCapacity = static_cast<size_t>(
                std::max(0.0, std::atof(cap)));
    }
    if (const char *n = std::getenv("BW_AUDIT_SAMPLE")) {
        if (*n)
            base.auditEvery =
                static_cast<uint64_t>(std::max(0.0, std::atof(n)));
    }
    if (const char *h = std::getenv("BW_HEDGE_MS")) {
        if (*h)
            base.hedgeMs = std::atof(h);
    }
    if (const char *d = std::getenv("BW_HEALTH_DETECT_MS")) {
        if (*d)
            base.healthDetectMs = std::max(0.0, std::atof(d));
    }
    base.chaos = ChaosOptions::fromEnv(base.chaos);
    base.fidelity = timing::fidelityFromEnv(base.fidelity);
    return base;
}

ClusterOptions
ClusterOptions::fromEnv()
{
    return fromEnv(ClusterOptions{});
}

// --- Reports ---

Json
EngineReport::toJson() const
{
    Json j = Json::object();
    j.set("label", label);
    j.set("stats", stats.toJson());
    j.set("routed", routed);
    j.set("completed", completed);
    j.set("rejected", rejected);
    j.set("expired", expired);
    j.set("good", good);
    j.set("failed", failed);
    j.set("cancelled", cancelled);
    j.set("cache_hits", cacheHits);
    j.set("cache_misses", cacheMisses);
    j.set("cache_evictions", cacheEvictions);
    j.set("reloaded_tiles", reloadedTiles);
    j.set("reload_ms_total", reloadMsTotal);
    return j;
}

Json
ClusterStats::toJson() const
{
    Json j = Json::object();
    j.set("overall", overall.toJson());
    j.set("submitted", submitted);
    j.set("shed", shed);
    j.set("unavailable", unavailable);
    j.set("rejected", rejected);
    j.set("expired", expired);
    j.set("failed", failed);
    j.set("hedged", hedged);
    j.set("hedge_wins", hedgeWins);
    j.set("completed", completed);
    j.set("goodput", goodput);
    j.set("goodput_rps", goodputRps);
    Json sbc = Json::array();
    for (uint64_t c : shedByClass)
        sbc.push(c);
    j.set("shed_by_class", std::move(sbc));
    Json eng = Json::array();
    for (const EngineReport &r : engines)
        eng.push(r.toJson());
    j.set("engines", std::move(eng));
    return j;
}

// --- Cluster ---

Cluster::Cluster(ClusterOptions opts)
    : opts_(std::move(opts)), clsMonitor_(opts_.slo)
{
    if (opts_.groups.empty()) {
        ReplicaGroupSpec g;
        g.config = NpuConfig::bwS10();
        opts_.groups.push_back(std::move(g));
    }
    unsigned engines = 0;
    for (ReplicaGroupSpec &g : opts_.groups) {
        g.engines = std::max(1u, g.engines);
        engines += g.engines;
    }
    size_t classes = clsMonitor_.options().classes.size();
    router_ = std::make_unique<Router>(opts_.router, engines, classes);

    for (size_t gi = 0; gi < opts_.groups.size(); ++gi) {
        const ReplicaGroupSpec &g = opts_.groups[gi];
        for (unsigned i = 0; i < g.engines; ++i) {
            auto s = std::make_unique<Shard>();
            s->label = g.name + "/" + std::to_string(i);
            s->group = gi;
            s->registry = std::make_unique<metrics::Registry>();
            s->flight = std::make_unique<obs::FlightRecorder>(opts_.flight);
            s->slo = std::make_unique<serve::SloMonitor>(opts_.slo);
            serve::EngineOptions eo = g.engine;
            eo.groupLabel = s->label;
            eo.fidelity = opts_.fidelity;
            eo.metricsRegistry = s->registry.get();
            eo.flightRecorder = s->flight.get();
            eo.sloMonitor = s->slo.get();
            // The cluster records route-rooted span trees itself
            // (replay); per-engine tracers would collide on trace ids.
            eo.spanTracer = nullptr;
            s->engine = std::make_unique<serve::Engine>(std::move(eo));
            // The engine registered these gauges in bindMetrics();
            // get-or-create hands back the same instances.
            s->queueDepth = &s->registry->gauge(
                "bw_serve_queue_depth",
                "Requests waiting in the engine's bounded admission queue");
            s->inflight = &s->registry->gauge(
                "bw_serve_inflight",
                "Requests currently in service across accelerator replicas");
            s->cache = WeightCache(opts_.weightCacheTiles
                                       ? opts_.weightCacheTiles
                                       : g.config.mrfSize);
            s->freeS.assign(s->engine->options().replicas, 0.0);
            shards_.push_back(std::move(s));
        }
    }
    fleet_.setClusterRegistry(opts_.metricsRegistry);
    for (const auto &s : shards_) {
        fleet_.addShard(s->label, opts_.groups[s->group].name,
                        s->registry.get(), s->slo.get());
    }
    shardChaos_.assign(shards_.size(), ShardChaos{});
    rewarmTiles_.assign(shards_.size(), 0);
    rewarmMs_.assign(shards_.size(), 0.0);
    if (opts_.chaos.enabled())
        chaos_ = ChaosSchedule::generate(opts_.chaos, engineCount());
    if (opts_.metricsRegistry)
        bindClusterMetrics();
}

Cluster::~Cluster()
{
    shutdown();
}

void
Cluster::bindClusterMetrics()
{
    metrics::Registry &reg = *opts_.metricsRegistry;
    enginesGauge_ =
        &reg.gauge("bw_cluster_engines", "Engine shards in the cluster");
    enginesGauge_->set(static_cast<double>(shards_.size()));
    modelsGauge_ = &reg.gauge("bw_cluster_models",
                              "Resident models registered with the cluster");
    for (const auto &s : shards_) {
        metrics::Labels l{{"engine", s->label}};
        ShardMetrics m;
        m.routed = &reg.counter(
            "bw_cluster_routed_total",
            "Requests the front-door router sent to this engine", l);
        m.completed = &reg.counter("bw_cluster_completed_total",
                                   "Requests completed per engine", l);
        m.rejected = &reg.counter(
            "bw_cluster_rejected_total",
            "Requests rejected QUEUE_FULL at the engine shard", l);
        m.expired = &reg.counter(
            "bw_cluster_expired_total",
            "Requests whose deadline expired at the engine shard", l);
        m.cacheHits = &reg.counter("bw_cluster_weight_cache_hits_total",
                                   "Weight-cache hits per engine", l);
        m.cacheMisses =
            &reg.counter("bw_cluster_weight_cache_misses_total",
                         "Weight-cache misses (DRAM reloads) per engine", l);
        m.cacheEvictions =
            &reg.counter("bw_cluster_weight_cache_evictions_total",
                         "Resident models evicted per engine", l);
        m.reloadUs = &reg.counter(
            "bw_cluster_reload_us_total",
            "Simulated microseconds spent streaming weights from DRAM",
            l);
        shardMetrics_.push_back(m);
    }
    const auto &classes = clsMonitor_.options().classes;
    for (const serve::SloClassSpec &c : classes) {
        shedByClassC_.push_back(&reg.counter(
            "bw_cluster_shed_total",
            "Requests shed at the front door by deadline class",
            {{"class", c.name}}));
    }
    // Failure-domain series: a health-state gauge and one counter per
    // fault class per shard, eagerly registered so a clean run still
    // exports every class at zero (dashboards key on the full matrix).
    for (const auto &s : shards_) {
        const std::string &gname = opts_.groups[s->group].name;
        healthG_.push_back(&reg.gauge(
            "bw_health_state",
            "Shard health: 0 healthy, 1 degraded, 2 faulted, 3 evicted, "
            "4 re-warming",
            {{"group", gname}, {"shard", s->label}}));
        std::array<metrics::Counter *,
                   static_cast<size_t>(FaultClass::NumFaultClasses)>
            row{};
        for (size_t c = 0;
             c < static_cast<size_t>(FaultClass::NumFaultClasses); ++c) {
            row[c] = &reg.counter(
                "bw_failure_total",
                "Requests lost or degraded by injected faults, by fault "
                "class",
                {{"class", faultClassName(static_cast<FaultClass>(c))},
                 {"group", gname},
                 {"shard", s->label}});
        }
        failureC_.push_back(row);
    }
    hedgeAttemptsC_ = &reg.counter(
        "bw_hedge_attempts_total",
        "Duplicate dispatches issued for requests over the hedge "
        "latency budget");
    hedgeWinsC_ = &reg.counter(
        "bw_hedge_wins_total",
        "Hedged dispatches that finished before the primary attempt");
    hedgeCancelledC_ = &reg.counter(
        "bw_hedge_cancelled_total",
        "Hedge-race losers cancelled after the first completion");
    auditChecksC_ = &reg.counter(
        "bw_timing_audit_checks_total",
        "Sampled fast-tier service times re-priced against the "
        "cycle-accurate timing model");
    auditDivergenceC_ = &reg.counter(
        "bw_timing_audit_divergence_total",
        "Audited service times that diverged from the cycle-accurate "
        "reference");
}

metrics::Counter *
Cluster::shedCounter(uint32_t cls)
{
    if (shedByClassC_.empty())
        return nullptr;
    return shedByClassC_[std::min<size_t>(cls, shedByClassC_.size() - 1)];
}

const std::string &
Cluster::engineLabel(unsigned engine) const
{
    BW_ASSERT(engine < shards_.size(), "engine %u out of range", engine);
    return shards_[engine]->label;
}

serve::Engine &
Cluster::engine(unsigned engine)
{
    BW_ASSERT(engine < shards_.size(), "engine %u out of range", engine);
    return *shards_[engine]->engine;
}

Expected<uint32_t>
Cluster::addModel(const std::string &name, const GirGraph &graph)
{
    ModelEntry e;
    e.name = name;
    for (size_t gi = 0; gi < opts_.groups.size(); ++gi) {
        try {
            e.sessions.push_back(std::make_unique<Session>(
                Session::compile(graph, opts_.groups[gi].config)));
        } catch (const std::exception &ex) {
            return Status::invalidArgument(detail::format(
                "model '%s' does not compile for group '%s': %s",
                name.c_str(), opts_.groups[gi].name.c_str(), ex.what()));
        }
    }
    if (opts_.metricsRegistry) {
        e.requests = &opts_.metricsRegistry->counter(
            "bw_cluster_requests_total",
            "Requests submitted per resident model", {{"model", name}});
    }
    models_.push_back(std::move(e));
    uint32_t id = static_cast<uint32_t>(models_.size() - 1);
    if (modelsGauge_)
        modelsGauge_->set(static_cast<double>(models_.size()));
    if (opts_.warmStart) {
        for (auto &s : shards_)
            s->cache.preload(id, modelTiles(id, s->group));
    }
    return id;
}

uint32_t
Cluster::addTimedModel(const std::string &name, double service_ms,
                       uint64_t weight_tiles)
{
    BW_ASSERT(service_ms > 0, "timed model '%s' needs service_ms > 0",
              name.c_str());
    ModelEntry e;
    e.name = name;
    e.timed = true;
    e.timedMs = service_ms;
    e.timedTiles = weight_tiles;
    if (opts_.metricsRegistry) {
        e.requests = &opts_.metricsRegistry->counter(
            "bw_cluster_requests_total",
            "Requests submitted per resident model", {{"model", name}});
    }
    models_.push_back(std::move(e));
    uint32_t id = static_cast<uint32_t>(models_.size() - 1);
    if (modelsGauge_)
        modelsGauge_->set(static_cast<double>(models_.size()));
    if (opts_.warmStart) {
        for (auto &s : shards_)
            s->cache.preload(id, modelTiles(id, s->group));
    }
    return id;
}

const std::string &
Cluster::modelName(uint32_t model) const
{
    BW_ASSERT(model < models_.size(), "model %u out of range", model);
    return models_[model].name;
}

uint64_t
Cluster::modelTiles(uint32_t model, size_t group) const
{
    BW_ASSERT(model < models_.size(), "model %u out of range", model);
    const ModelEntry &e = models_[model];
    if (e.timed)
        return e.timedTiles;
    return e.sessions[group]->model().mrfTilesUsed;
}

double
Cluster::modelServiceMs(uint32_t model, size_t group, unsigned steps)
{
    BW_ASSERT(model < models_.size(), "model %u out of range", model);
    ModelEntry &e = models_[model];
    if (e.timed)
        return e.timedMs;
    uint64_t key = svcKey(model, group, steps);
    auto it = serviceCache_.find(key);
    if (it != serviceCache_.end())
        return it->second;
    double ms = e.sessions[group]->serviceMs(steps, opts_.fidelity);
    serviceCache_.emplace(key, ms);
    return ms;
}

double
Cluster::reloadMs(size_t group, uint64_t tiles) const
{
    if (tiles == 0)
        return 0.0;
    const NpuConfig &c = opts_.groups[group].config;
    // One native N x N tile: N*N BFP elements (sign + mantissa bits)
    // plus one shared exponent per row.
    uint64_t n = c.nativeDim;
    uint64_t bits_per_tile =
        n * n * static_cast<uint64_t>(c.precision.elemBits()) +
        n * static_cast<uint64_t>(c.precision.expBits);
    uint64_t bytes = (tiles * bits_per_tile + 7) / 8;
    uint64_t bpc = std::max(1u, c.timing.dramBytesPerCycle);
    uint64_t cycles = c.timing.dramLatency + (bytes + bpc - 1) / bpc;
    return static_cast<double>(cycles) / (c.clockMhz * 1e3);
}

void
Cluster::setRouterPolicy(RoutePolicy policy)
{
    RouterOptions ro = router_->options();
    ro.policy = policy;
    opts_.router = ro;
    router_ = std::make_unique<Router>(
        std::move(ro), engineCount(),
        clsMonitor_.options().classes.size());
    if (decisionSink_)
        router_->setDecisionSink(decisionSink_);
}

void
Cluster::setDecisionSink(std::function<void(const RouteDecision &)> sink)
{
    decisionSink_ = std::move(sink);
    router_->setDecisionSink(decisionSink_);
}

void
Cluster::setChaosSchedule(ChaosSchedule schedule)
{
    chaos_ = std::move(schedule);
}

void
Cluster::setShardHealthy(unsigned engine, bool healthy)
{
    BW_ASSERT(engine < shards_.size(), "engine %u out of range", engine);
    std::lock_guard<std::mutex> lk(liveMu_);
    shards_[engine]->healthy = healthy;
    setHealthGauge(engine, healthy ? 0.0 : 3.0);
}

void
Cluster::setHealthGauge(size_t shard, double state)
{
    if (shard < healthG_.size())
        healthG_[shard]->set(state);
}

metrics::Counter *
Cluster::failCounter(size_t shard, FaultClass cls)
{
    if (shard >= failureC_.size())
        return nullptr;
    return failureC_[shard][static_cast<size_t>(cls)];
}

void
Cluster::warmCaches()
{
    // Ascending model id, first-fit: deterministic warm set per shard.
    for (auto &s : shards_) {
        for (uint32_t m = 0; m < models_.size(); ++m)
            s->cache.preload(m, modelTiles(m, s->group));
    }
}

std::vector<EngineLoad>
Cluster::virtualLoads(double now_s) const
{
    std::vector<EngineLoad> loads;
    loads.reserve(shards_.size());
    for (const auto &s : shards_) {
        EngineLoad l;
        size_t dequeued = static_cast<size_t>(
            std::upper_bound(s->starts.begin(), s->starts.end(), now_s) -
            s->starts.begin());
        l.queued = s->starts.size() - dequeued;
        l.inflight = static_cast<uint64_t>(
            std::count_if(s->freeS.begin(), s->freeS.end(),
                          [now_s](double f) { return f > now_s; }));
        l.queueCapacity = s->engine->options().queueDepth;
        l.healthy = s->healthy;
        loads.push_back(l);
    }
    return loads;
}

std::vector<EngineLoad>
Cluster::liveLoads() const
{
    std::vector<EngineLoad> loads;
    loads.reserve(shards_.size());
    for (const auto &s : shards_) {
        EngineLoad l;
        l.queued = static_cast<uint64_t>(
            std::max(0.0, s->queueDepth->value()));
        l.inflight = static_cast<uint64_t>(
            std::max(0.0, s->inflight->value()));
        l.queueCapacity = s->engine->options().queueDepth;
        l.healthy = s->healthy;
        loads.push_back(l);
    }
    return loads;
}

// --- Streaming latency sketch ---

namespace {

/// Sketch floor: one microsecond, in milliseconds.
constexpr double kSketchMinMs = 1e-3;

/// Upper bound of log-bucket @p idx (geometric, ratio 2^(1/4)).
double
sketchUpperMs(size_t idx)
{
    return kSketchMinMs * std::exp2(static_cast<double>(idx) / 4.0);
}

} // namespace

void
Cluster::LatencySketch::record(double latency_ms)
{
    ++count;
    sumMs += latency_ms;
    maxMs = std::max(maxMs, latency_ms);
    size_t idx = 0;
    if (latency_ms > kSketchMinMs) {
        double b = std::ceil(std::log2(latency_ms / kSketchMinMs) * 4.0);
        idx = std::min<size_t>(
            kBuckets - 1, static_cast<size_t>(std::max(0.0, b)));
    }
    ++buckets[idx];
}

void
Cluster::LatencySketch::clear()
{
    count = 0;
    sumMs = 0;
    maxMs = 0;
    buckets.fill(0);
}

void
Cluster::LatencySketch::fill(ServeStats &stats) const
{
    stats.requests = count;
    if (count == 0)
        return;
    stats.meanLatencyMs = sumMs / static_cast<double>(count);
    stats.maxLatencyMs = maxMs;
    // Nearest-rank percentile over the buckets, reported at the
    // bucket's upper bound (a conservative estimate within one ratio
    // step of the exact sample), clamped to the observed maximum.
    auto pct = [this](double p) {
        uint64_t rank = static_cast<uint64_t>(
            std::ceil(p / 100.0 * static_cast<double>(count)));
        rank = std::max<uint64_t>(1, std::min(rank, count));
        uint64_t cum = 0;
        for (size_t b = 0; b < kBuckets; ++b) {
            cum += buckets[b];
            if (cum >= rank)
                return std::min(maxMs, sketchUpperMs(b));
        }
        return maxMs;
    };
    stats.p50LatencyMs = pct(50.0);
    stats.p95LatencyMs = pct(95.0);
    stats.p99LatencyMs = pct(99.0);
}

// --- Replay ---

void
Cluster::replayReset()
{
    // Full virtual reset: every observer restarts with the trace, so
    // two replays of one trace export byte-identically. The cluster
    // registry's counters and the audit totals are cumulative across
    // replays by design, like any production Prometheus counter.
    router_->clear();
    clsMonitor_.clear();
    if (opts_.spanTracer)
        opts_.spanTracer->clear();
    for (size_t i = 0; i < shards_.size(); ++i) {
        Shard &s = *shards_[i];
        s.starts.clear();
        s.freeS.assign(s.engine->options().replicas, 0.0);
        s.attempt = 0;
        s.routed = s.completed = s.rejected = s.expired = 0;
        s.good = s.reloadedTiles = 0;
        s.failed = s.cancelled = 0;
        s.reloadMsTotal = 0;
        s.latencies.clear();
        s.sketch.clear();
        s.saw = false;
        s.firstArrival = s.lastDone = 0;
        s.healthy = true;
        s.flight->clear();
        s.slo->clear();
        s.cache.clear();
        setHealthGauge(i, 0.0);
    }
    if (opts_.warmStart)
        warmCaches();

    // Compile the fault schedule into incident state-machine edges.
    // Everything here is a pure function of (schedule, options, warm
    // set), so the transition list — and with it every incident stamp
    // — replays identically. A shard lives one incident at a time:
    // faults that land inside an earlier fault's incident window are
    // dropped (busyUntil).
    incidents_.clear();
    transitions_.clear();
    nextTransition_ = 0;
    shardChaos_.assign(shards_.size(), ShardChaos{});
    for (size_t i = 0; i < shards_.size(); ++i) {
        // A crash restart must re-stream whatever was resident; after
        // the reset above, that is exactly the warm set.
        rewarmTiles_[i] = shards_[i]->cache.usedTiles();
        rewarmMs_[i] = reloadMs(shards_[i]->group, rewarmTiles_[i]);
    }
    if (!chaos_.empty()) {
        double detect_s = std::max(0.0, opts_.healthDetectMs) / 1e3;
        std::vector<double> busyUntil(shards_.size(), 0.0);
        const std::vector<FaultEvent> &faults = chaos_.faults();
        for (size_t fi = 0; fi < faults.size(); ++fi) {
            const FaultEvent &f = faults[fi];
            if (f.shard >= shards_.size())
                continue;
            if (f.atS < busyUntil[f.shard])
                continue;
            double fire = f.atS;
            double end = fire + std::max(0.0, f.durationS);
            uint32_t id = static_cast<uint32_t>(fi);
            auto push = [&](double t, ChaosTransition::Phase p) {
                transitions_.push_back(
                    ChaosTransition{t, f.shard, id, p});
            };
            double recover = end;
            switch (f.cls) {
            case FaultClass::ReplicaCrash: {
                double detect = fire + detect_s;
                end = std::max(end, detect);
                recover = end + rewarmMs_[f.shard] / 1e3;
                push(fire, ChaosTransition::Fire);
                push(detect, ChaosTransition::Detect);
                push(end, ChaosTransition::RewarmStart);
                push(recover, ChaosTransition::Recover);
                break;
            }
            case FaultClass::ReplicaHang: {
                double detect = fire + detect_s;
                recover = std::max(end, detect);
                push(fire, ChaosTransition::Fire);
                push(detect, ChaosTransition::Detect);
                push(recover, ChaosTransition::Recover);
                break;
            }
            case FaultClass::SlowReplica:
            case FaultClass::DroppedMessage:
            default:
                push(fire, ChaosTransition::Fire);
                push(recover, ChaosTransition::Recover);
                break;
            }
            busyUntil[f.shard] = recover;
        }
        std::stable_sort(
            transitions_.begin(), transitions_.end(),
            [](const ChaosTransition &a, const ChaosTransition &b) {
                if (a.tS != b.tS)
                    return a.tS < b.tS;
                if (a.fault != b.fault)
                    return a.fault < b.fault;
                return a.phase < b.phase;
            });
    }
}

void
Cluster::pruneStarts(double now_s)
{
    // Entries with start <= now_s are exactly the ones upper_bound
    // counts as dequeued, so dropping them changes no queued-depth or
    // admission computation — and under ascending arrivals they can
    // never count as queued again. Bounds the per-shard history at the
    // queue depth regardless of trace length.
    for (auto &sp : shards_) {
        std::deque<double> &st = sp->starts;
        while (!st.empty() && st.front() <= now_s)
            st.pop_front();
    }
}

// --- Chaos plane ---

void
Cluster::advanceChaos(double now_s)
{
    while (nextTransition_ < transitions_.size() &&
           transitions_[nextTransition_].tS <= now_s) {
        applyTransition(transitions_[nextTransition_]);
        ++nextTransition_;
    }
}

void
Cluster::applyTransition(const ChaosTransition &tr)
{
    const FaultEvent &f = chaos_.faults()[tr.fault];
    Shard &s = *shards_[tr.shard];
    ShardChaos &cc = shardChaos_[tr.shard];
    uint64_t t_us = toUs(tr.tS);
    switch (tr.phase) {
    case ChaosTransition::Fire: {
        cc = ShardChaos{};
        cc.fault = tr.fault;
        cc.endS = f.atS + std::max(0.0, f.durationS);
        cc.incident = incidents_.open(faultClassName(f.cls), s.label,
                                      opts_.groups[s.group].name, t_us);
        switch (f.cls) {
        case FaultClass::ReplicaCrash:
            cc.down = true;
            // Callers learn of the crash when the health check does.
            cc.failAtS =
                f.atS + std::max(0.0, opts_.healthDetectMs) / 1e3;
            setHealthGauge(tr.shard, 2.0);
            break;
        case FaultClass::ReplicaHang:
            cc.hung = true;
            setHealthGauge(tr.shard, 2.0);
            break;
        case FaultClass::SlowReplica:
            cc.slow = true;
            cc.slowFactor = std::max(
                1.0, f.magnitude > 0 ? f.magnitude
                                     : opts_.chaos.slowFactor);
            setHealthGauge(tr.shard, 1.0);
            break;
        case FaultClass::DroppedMessage:
        default:
            cc.dropping = true;
            cc.dropProb = std::min(
                1.0, std::max(0.0, f.magnitude > 0
                                       ? f.magnitude
                                       : opts_.chaos.dropProb));
            setHealthGauge(tr.shard, 1.0);
            break;
        }
        break;
    }
    case ChaosTransition::Detect:
        incidents_.event(cc.incident, obs::IncidentPhase::Detected,
                         t_us);
        // Eviction is immediate on detection: the router's next
        // decision already skips the shard.
        incidents_.event(cc.incident, obs::IncidentPhase::Evicted,
                         t_us);
        s.healthy = false;
        setHealthGauge(tr.shard, 3.0);
        break;
    case ChaosTransition::RewarmStart: {
        incidents_.event(cc.incident,
                         obs::IncidentPhase::RewarmStarted, t_us);
        // The restarted shard comes up cold: drop residency (counters
        // survive — they are cumulative) and re-stream the warm set,
        // charged through the group's DRAM reload model.
        s.cache.invalidate();
        if (opts_.warmStart) {
            for (uint32_t m = 0;
                 m < static_cast<uint32_t>(models_.size()); ++m)
                s.cache.preload(m, modelTiles(m, s.group));
        }
        uint64_t tiles = rewarmTiles_[tr.shard];
        double ms = rewarmMs_[tr.shard];
        s.reloadedTiles += tiles;
        s.reloadMsTotal += ms;
        if (!shardMetrics_.empty())
            shardMetrics_[tr.shard].reloadUs->add(
                static_cast<uint64_t>(std::llround(ms * 1e3)));
        incidents_.setReload(
            cc.incident, tiles,
            static_cast<uint64_t>(std::llround(ms * 1e3)));
        setHealthGauge(tr.shard, 4.0);
        break;
    }
    case ChaosTransition::Recover:
        incidents_.event(cc.incident, obs::IncidentPhase::Recovered,
                         t_us);
        s.healthy = true;
        shardChaos_[tr.shard] = ShardChaos{};
        setHealthGauge(tr.shard, 0.0);
        break;
    }
}

void
Cluster::chaosFail(size_t shard, ShardMetrics *sm, ReplayPass &rp,
                   const ClusterRequest &req, FaultClass fcls,
                   obs::FlightClass cls, double fail_s,
                   double deadline_ms)
{
    Shard &s = *shards_[shard];
    if (cls == obs::FlightClass::DeadlineExpired) {
        // A hang surfaces as a deadline expiry to the caller.
        ++s.expired;
        ++rp.cs.expired;
        if (sm)
            sm->expired->inc();
    } else {
        ++s.failed;
        ++rp.cs.failed;
    }
    if (metrics::Counter *c = failCounter(shard, fcls))
        c->inc();
    incidents_.addAffected(shardChaos_[shard].incident);
    double a = req.arrivalS;
    double latency_ms =
        (fail_s - a) * 1e3 + s.engine->options().networkMs;
    uint64_t admit_us = toUs(a);
    uint64_t t_us = std::max(toUs(fail_s), admit_us);
    obs::FlightRecord fr;
    fr.seq = s.attempt;
    fr.cls = cls;
    fr.steps = req.steps;
    fr.admitUs = admit_us;
    fr.dequeueUs = fr.serviceUs = fr.doneUs = t_us;
    fr.latencyUs =
        latency_ms > 0
            ? static_cast<uint64_t>(std::llround(latency_ms * 1e3))
            : 0;
    s.flight->record(fr);
    s.slo->record(t_us, deadline_ms, latency_ms, false);
    clsMonitor_.record(t_us, deadline_ms, latency_ms, false);
}

ClusterStats
Cluster::replay(const std::vector<ClusterRequest> &trace)
{
    BW_ASSERT(!models_.empty(), "replay: no models registered");
    replayReset();
    ReplayPass rp;
    rp.cs.shedByClass.assign(clsMonitor_.options().classes.size(), 0);
    for (const ClusterRequest &req : trace)
        replayOne(req, rp);
    return replayFinish(rp);
}

ClusterStats
Cluster::replayStream(const std::function<bool(ClusterRequest *)> &next)
{
    BW_ASSERT(!models_.empty(), "replay: no models registered");
    replayReset();
    ReplayPass rp;
    rp.streaming = true;
    rp.cs.shedByClass.assign(clsMonitor_.options().classes.size(), 0);
    ClusterRequest req;
    while (next(&req))
        replayOne(req, rp);
    return replayFinish(rp);
}

void
Cluster::replayOne(const ClusterRequest &req, ReplayPass &rp)
{
    ClusterStats &cs = rp.cs;
    ++rp.seq;
    ++cs.submitted;
    BW_ASSERT(req.model < models_.size(), "replay: unknown model %u",
              req.model);
    BW_ASSERT(!rp.sawArrival || req.arrivalS >= rp.lastArrival,
              "replay: arrivals must be ascending");
    rp.sawArrival = true;
    rp.lastArrival = req.arrivalS;
    obs::SpanTracer *tracer = opts_.spanTracer;
    ModelEntry &me = models_[req.model];
    if (me.requests)
        me.requests->inc();
    uint32_t cls =
        static_cast<uint32_t>(clsMonitor_.classOf(req.deadlineMs));
    double a = req.arrivalS;
    advanceChaos(a);
    pruneStarts(a);

    int32_t target = router_->route(rp.seq, req.model, me.name, cls,
                                    virtualLoads(a));
    if (target == -2) {
        // Eviction took every shard: unavailable, not load-shed.
        ++cs.unavailable;
        clsMonitor_.record(toUs(a), req.deadlineMs, 0.0, false);
        return;
    }
    if (target < 0) {
        ++cs.shed;
        ++cs.shedByClass[cls];
        if (metrics::Counter *c = shedCounter(cls))
            c->inc();
        clsMonitor_.record(toUs(a), req.deadlineMs, 0.0, false);
        return;
    }
    if (opts_.hedgeMs >= 0) {
        replayHedged(req, rp, static_cast<unsigned>(target), cls);
        return;
    }

    Shard &s = *shards_[static_cast<size_t>(target)];
    ShardMetrics *sm = shardMetrics_.empty()
                           ? nullptr
                           : &shardMetrics_[static_cast<size_t>(target)];
    const serve::EngineOptions &eo = s.engine->options();
    ++s.attempt;
    ++s.routed;
    if (sm)
        sm->routed->inc();
    if (!s.saw) {
        s.saw = true;
        s.firstArrival = a;
        s.lastDone = a;
    }
    double deadline_ms =
        req.deadlineMs > 0 ? req.deadlineMs : eo.defaultDeadlineMs;

    // Injected fault effects, decided at admission (forward-only
    // model): a crashed shard errors its callers when the health check
    // notices, a hung shard eats the request until its deadline, and a
    // partition drops a deterministic coin-flip of messages (salted by
    // the submission seq, so replays drop the same ones).
    const ShardChaos &cc = shardChaos_[static_cast<size_t>(target)];
    if (cc.down) {
        chaosFail(static_cast<size_t>(target), sm, rp, req,
                  FaultClass::ReplicaCrash, obs::FlightClass::Error,
                  std::max(a, cc.failAtS), deadline_ms);
        return;
    }
    if (cc.hung) {
        double stall =
            deadline_ms > 0 ? a + deadline_ms / 1e3 : cc.endS;
        chaosFail(static_cast<size_t>(target), sm, rp, req,
                  FaultClass::ReplicaHang,
                  obs::FlightClass::DeadlineExpired, std::max(a, stall),
                  deadline_ms);
        return;
    }
    if (cc.dropping &&
        chaosUniform(chaos_.seed(), cc.fault, rp.seq) < cc.dropProb) {
        double lost =
            deadline_ms > 0 ? a + deadline_ms / 1e3 : cc.endS;
        chaosFail(static_cast<size_t>(target), sm, rp, req,
                  FaultClass::DroppedMessage, obs::FlightClass::Error,
                  std::max(a, lost), deadline_ms);
        return;
    }

    // From here the shard mirrors Engine::replayUnbatched exactly
    // (admission check, earliest-free replica, deadline at dequeue),
    // with the model's service time plus any weight-reload charge
    // standing in for the engine's single-model service time.
    size_t dequeued = static_cast<size_t>(
        std::upper_bound(s.starts.begin(), s.starts.end(), a) -
        s.starts.begin());
    if (s.starts.size() - dequeued >= eo.queueDepth) {
        ++s.rejected;
        ++cs.rejected;
        if (sm)
            sm->rejected->inc();
        uint64_t t_us = toUs(a);
        obs::FlightRecord fr;
        fr.seq = s.attempt;
        fr.cls = obs::FlightClass::Rejected;
        fr.steps = req.steps;
        fr.admitUs = fr.dequeueUs = fr.serviceUs = fr.doneUs = t_us;
        s.flight->record(fr);
        s.slo->record(t_us, deadline_ms, 0.0, false);
        clsMonitor_.record(t_us, deadline_ms, 0.0, false);
        return;
    }

    uint64_t tiles = modelTiles(req.model, s.group);
    WeightTouch wt = s.cache.touch(req.model, tiles);
    double reload_ms = 0;
    if (wt.hit) {
        if (sm)
            sm->cacheHits->inc();
    } else {
        reload_ms = reloadMs(s.group, wt.loadedTiles);
        s.reloadedTiles += wt.loadedTiles;
        s.reloadMsTotal += reload_ms;
        if (sm) {
            sm->cacheMisses->inc();
            if (wt.evictions)
                sm->cacheEvictions->add(wt.evictions);
            sm->reloadUs->add(
                static_cast<uint64_t>(std::llround(reload_ms * 1e3)));
        }
    }

    double net_s = eo.networkMs / 1e3;
    size_t r = static_cast<size_t>(
        std::min_element(s.freeS.begin(), s.freeS.end()) -
        s.freeS.begin());
    double start = std::max(a + net_s / 2, s.freeS[r]);
    s.starts.push_back(start);
    ++rp.admitted;
    obs::TraceContext ctx =
        tracer ? tracer->admit(rp.admitted) : obs::TraceContext{};
    uint64_t admit_us = toUs(a);
    uint64_t start_us = std::max(toUs(start), admit_us);

    if (deadline_ms > 0 && (start - a) * 1e3 > deadline_ms) {
        ++s.expired;
        ++cs.expired;
        if (sm)
            sm->expired->inc();
        double latency_ms = (start - a) * 1e3 + eo.networkMs;
        if (ctx.sampled()) {
            obs::RouteSpan rs;
            rs.trace = ctx.trace;
            rs.admitUs = admit_us;
            rs.doneUs = start_us;
            rs.engine = static_cast<uint32_t>(target);
            rs.model = req.model;
            rs.outcome = obs::SpanOutcome::DeadlineExpired;
            obs::SpanId root = obs::recordRouteSpan(*tracer, rs);
            obs::RequestSpans qs;
            qs.trace = ctx.trace;
            qs.admitUs = admit_us;
            qs.dequeueUs = qs.serviceUs = qs.doneUs = start_us;
            qs.replica = static_cast<uint32_t>(r);
            qs.outcome = obs::SpanOutcome::DeadlineExpired;
            obs::recordRequestTree(*tracer, qs, root);
        }
        obs::FlightRecord fr;
        fr.seq = s.attempt;
        fr.id = rp.admitted;
        fr.cls = obs::FlightClass::DeadlineExpired;
        fr.sampled = ctx.sampled();
        fr.replica = static_cast<uint32_t>(r);
        fr.steps = req.steps;
        fr.admitUs = admit_us;
        fr.dequeueUs = fr.serviceUs = fr.doneUs = start_us;
        fr.latencyUs = latency_ms > 0
                           ? static_cast<uint64_t>(
                                 std::llround(latency_ms * 1e3))
                           : 0;
        s.flight->record(fr);
        s.slo->record(start_us, deadline_ms, latency_ms, false);
        clsMonitor_.record(start_us, deadline_ms, latency_ms, false);
        return;
    }

    double model_ms = modelServiceMs(req.model, s.group, req.steps);
    if (opts_.auditEvery > 0 && !me.timed &&
        opts_.fidelity != timing::Fidelity::CycleAccurate &&
        rp.seq % opts_.auditEvery == 0)
        auditCheck(rp.seq, req.model, s.group, req.steps, model_ms);
    if (cc.slow) {
        // Degraded, not dead: the request completes, stretched. Audited
        // above with the undegraded price — the audit compares timing
        // models, not fault effects.
        model_ms *= cc.slowFactor;
        if (metrics::Counter *c = failCounter(
                static_cast<size_t>(target), FaultClass::SlowReplica))
            c->inc();
        incidents_.addAffected(cc.incident);
    }
    double service_ms = model_ms + reload_ms;
    double done = start + service_ms / 1e3;
    s.freeS[r] = done;
    s.lastDone = std::max(s.lastDone, done);
    double latency_ms = (done + net_s / 2 - a) * 1e3;
    if (rp.streaming)
        s.sketch.record(latency_ms);
    else
        s.latencies.push_back(latency_ms);
    ++s.completed;
    ++cs.completed;
    if (sm)
        sm->completed->inc();
    if (deadline_ms <= 0 || latency_ms <= deadline_ms)
        ++s.good;
    uint64_t done_us = std::max(toUs(done), start_us);
    if (ctx.sampled()) {
        obs::RouteSpan rs;
        rs.trace = ctx.trace;
        rs.admitUs = admit_us;
        rs.doneUs = done_us;
        rs.engine = static_cast<uint32_t>(target);
        rs.model = req.model;
        rs.outcome = obs::SpanOutcome::Ok;
        obs::SpanId root = obs::recordRouteSpan(*tracer, rs);
        obs::RequestSpans qs;
        qs.trace = ctx.trace;
        qs.admitUs = admit_us;
        qs.dequeueUs = qs.serviceUs = start_us;
        qs.doneUs = done_us;
        qs.replica = static_cast<uint32_t>(r);
        qs.outcome = obs::SpanOutcome::Ok;
        obs::SpanId exec = obs::recordRequestTree(*tracer, qs, root);
        if (exec)
            stitchChainSpans(*tracer, ctx.trace, exec, req.model,
                             s.group, req.steps, start_us, done_us);
    }
    obs::FlightRecord fr;
    fr.seq = s.attempt;
    fr.id = rp.admitted;
    fr.cls = obs::FlightClass::Ok;
    fr.sampled = ctx.sampled();
    fr.replica = static_cast<uint32_t>(r);
    fr.steps = req.steps;
    fr.admitUs = admit_us;
    fr.dequeueUs = fr.serviceUs = start_us;
    fr.doneUs = done_us;
    fr.latencyUs =
        latency_ms > 0
            ? static_cast<uint64_t>(std::llround(latency_ms * 1e3))
            : 0;
    s.flight->record(fr);
    s.slo->record(done_us, deadline_ms, latency_ms, true);
    clsMonitor_.record(done_us, deadline_ms, latency_ms, true);
}

// --- Hedged dispatch (replay) ---

Cluster::HedgeAttempt
Cluster::runAttempt(unsigned shard, double t, const ClusterRequest &req,
                    ReplayPass &rp)
{
    Shard &s = *shards_[shard];
    ShardMetrics *sm =
        shardMetrics_.empty() ? nullptr : &shardMetrics_[shard];
    const serve::EngineOptions &eo = s.engine->options();
    HedgeAttempt at;
    at.shard = shard;
    at.dispatchS = t;
    ++s.attempt;
    at.seq = s.attempt;
    ++s.routed;
    if (sm)
        sm->routed->inc();
    if (!s.saw) {
        s.saw = true;
        s.firstArrival = t;
        s.lastDone = t;
    }
    at.deadlineMs =
        req.deadlineMs > 0 ? req.deadlineMs : eo.defaultDeadlineMs;

    // Fault effects first — a crashed or partitioned shard never
    // queues the attempt (same order as the single-dispatch path).
    const ShardChaos &cc = shardChaos_[shard];
    if (cc.down) {
        at.kind = HedgeAttempt::Kind::Faulted;
        at.fcls = obs::FlightClass::Error;
        at.clientDoneS = std::max(t, cc.failAtS);
        at.startS = at.doneS = at.clientDoneS;
        at.latencyMs = (at.clientDoneS - t) * 1e3 + eo.networkMs;
        ++s.failed;
        if (metrics::Counter *c =
                failCounter(shard, FaultClass::ReplicaCrash))
            c->inc();
        incidents_.addAffected(cc.incident);
        return at;
    }
    if (cc.hung) {
        at.kind = HedgeAttempt::Kind::Faulted;
        at.fcls = obs::FlightClass::DeadlineExpired;
        double stall =
            at.deadlineMs > 0 ? t + at.deadlineMs / 1e3 : cc.endS;
        at.clientDoneS = std::max(t, stall);
        at.startS = at.doneS = at.clientDoneS;
        at.latencyMs = (at.clientDoneS - t) * 1e3 + eo.networkMs;
        ++s.expired;
        if (sm)
            sm->expired->inc();
        if (metrics::Counter *c =
                failCounter(shard, FaultClass::ReplicaHang))
            c->inc();
        incidents_.addAffected(cc.incident);
        return at;
    }
    if (cc.dropping &&
        chaosUniform(chaos_.seed(), cc.fault, rp.seq) < cc.dropProb) {
        at.kind = HedgeAttempt::Kind::Faulted;
        at.fcls = obs::FlightClass::Error;
        double lost =
            at.deadlineMs > 0 ? t + at.deadlineMs / 1e3 : cc.endS;
        at.clientDoneS = std::max(t, lost);
        at.startS = at.doneS = at.clientDoneS;
        at.latencyMs = (at.clientDoneS - t) * 1e3 + eo.networkMs;
        ++s.failed;
        if (metrics::Counter *c =
                failCounter(shard, FaultClass::DroppedMessage))
            c->inc();
        incidents_.addAffected(cc.incident);
        return at;
    }

    size_t dequeued = static_cast<size_t>(
        std::upper_bound(s.starts.begin(), s.starts.end(), t) -
        s.starts.begin());
    if (s.starts.size() - dequeued >= eo.queueDepth) {
        at.kind = HedgeAttempt::Kind::Rejected;
        at.fcls = obs::FlightClass::Rejected;
        at.startS = at.doneS = at.clientDoneS = t;
        ++s.rejected;
        if (sm)
            sm->rejected->inc();
        return at;
    }

    uint64_t tiles = modelTiles(req.model, s.group);
    WeightTouch wt = s.cache.touch(req.model, tiles);
    double reload_ms = 0;
    if (wt.hit) {
        if (sm)
            sm->cacheHits->inc();
    } else {
        // The DRAM traffic happens even if this attempt later loses
        // the hedge race — reload charges are never rolled back.
        reload_ms = reloadMs(s.group, wt.loadedTiles);
        s.reloadedTiles += wt.loadedTiles;
        s.reloadMsTotal += reload_ms;
        if (sm) {
            sm->cacheMisses->inc();
            if (wt.evictions)
                sm->cacheEvictions->add(wt.evictions);
            sm->reloadUs->add(
                static_cast<uint64_t>(std::llround(reload_ms * 1e3)));
        }
    }

    double net_s = eo.networkMs / 1e3;
    size_t r = static_cast<size_t>(
        std::min_element(s.freeS.begin(), s.freeS.end()) -
        s.freeS.begin());
    at.replica = r;
    at.prevFree = s.freeS[r];
    double start = std::max(t + net_s / 2, s.freeS[r]);
    s.starts.push_back(start);
    at.reserved = true;
    at.startS = start;
    if (at.deadlineMs > 0 && (start - t) * 1e3 > at.deadlineMs) {
        at.kind = HedgeAttempt::Kind::Expired;
        at.fcls = obs::FlightClass::DeadlineExpired;
        at.doneS = at.clientDoneS = start;
        at.latencyMs = (start - t) * 1e3 + eo.networkMs;
        ++s.expired;
        if (sm)
            sm->expired->inc();
        return at;
    }

    double model_ms = modelServiceMs(req.model, s.group, req.steps);
    if (cc.slow) {
        model_ms *= cc.slowFactor;
        if (metrics::Counter *c =
                failCounter(shard, FaultClass::SlowReplica))
            c->inc();
        incidents_.addAffected(cc.incident);
    }
    double done = start + (model_ms + reload_ms) / 1e3;
    s.freeS[r] = done;
    at.kind = HedgeAttempt::Kind::Completed;
    at.fcls = obs::FlightClass::Ok;
    at.doneS = done;
    at.clientDoneS = done + net_s / 2;
    at.latencyMs = (at.clientDoneS - t) * 1e3;
    return at;
}

void
Cluster::recordAttemptFlight(const HedgeAttempt &at, uint64_t id,
                             bool sampled, unsigned steps)
{
    Shard &s = *shards_[at.shard];
    uint64_t admit_us = toUs(at.dispatchS);
    uint64_t start_us = std::max(toUs(at.startS), admit_us);
    uint64_t done_us = std::max(toUs(at.doneS), start_us);
    obs::FlightRecord fr;
    fr.seq = at.seq;
    fr.id = id;
    fr.cls = at.fcls;
    fr.sampled = sampled;
    fr.replica = static_cast<uint32_t>(at.replica);
    fr.steps = steps;
    fr.admitUs = admit_us;
    switch (at.fcls) {
    case obs::FlightClass::Rejected:
        fr.dequeueUs = fr.serviceUs = fr.doneUs = admit_us;
        break;
    default:
        fr.dequeueUs = fr.serviceUs = start_us;
        fr.doneUs = done_us;
        break;
    }
    fr.latencyUs =
        at.latencyMs > 0
            ? static_cast<uint64_t>(std::llround(at.latencyMs * 1e3))
            : 0;
    s.flight->record(fr);
}

namespace {

obs::SpanOutcome
attemptOutcome(const obs::FlightClass cls)
{
    switch (cls) {
    case obs::FlightClass::Ok:
        return obs::SpanOutcome::Ok;
    case obs::FlightClass::DeadlineExpired:
        return obs::SpanOutcome::DeadlineExpired;
    case obs::FlightClass::Rejected:
        return obs::SpanOutcome::Rejected;
    case obs::FlightClass::Cancelled:
        return obs::SpanOutcome::Cancelled;
    case obs::FlightClass::Error:
    default:
        return obs::SpanOutcome::Error;
    }
}

/// Span-id stride between hedge[0] and hedge[1] subtrees: wide enough
/// for a request tree (4 spans) plus the chain-span cap (256).
constexpr obs::SpanId kHedgeIdStride = 512;

} // namespace

void
Cluster::replayHedged(const ClusterRequest &req, ReplayPass &rp,
                      unsigned primary, uint32_t cls)
{
    (void)cls;
    ClusterStats &cs = rp.cs;
    double a = req.arrivalS;
    obs::SpanTracer *tracer = opts_.spanTracer;
    ++rp.admitted;
    obs::TraceContext ctx =
        tracer ? tracer->admit(rp.admitted) : obs::TraceContext{};

    HedgeAttempt p = runAttempt(primary, a, req, rp);

    // Hedge when the primary misses the latency budget or fails
    // outright; the duplicate goes to the least-loaded other healthy
    // shard at the moment the budget expires. Chaos state is NOT
    // advanced to t_h: the global fault clock stays monotone with
    // arrivals (advancing it here would leak future fault state into
    // every later request in the window), so the hedge acts on health
    // knowledge as of the arrival — the same detection lag callers
    // already live with.
    bool wantHedge = p.kind != HedgeAttempt::Kind::Completed ||
                     p.latencyMs > opts_.hedgeMs;
    HedgeAttempt h;
    bool hedged = false;
    if (wantHedge) {
        double t_h = a + std::max(0.0, opts_.hedgeMs) / 1e3;
        std::vector<EngineLoad> loads = virtualLoads(t_h);
        int32_t alt = -1;
        uint64_t best = UINT64_MAX;
        for (size_t e = 0; e < loads.size(); ++e) {
            if (e == primary || !loads[e].healthy)
                continue;
            uint64_t occ = loads[e].queued + loads[e].inflight;
            if (occ < best) { // strict: ties go to the lowest index
                best = occ;
                alt = static_cast<int32_t>(e);
            }
        }
        if (alt >= 0) {
            hedged = true;
            ++cs.hedged;
            if (hedgeAttemptsC_)
                hedgeAttemptsC_->inc();
            h = runAttempt(static_cast<unsigned>(alt), t_h, req, rp);
        }
    }

    // First-wins: the earliest completion the caller hears; ties and
    // the nothing-completed case go to the primary.
    bool pWins = true;
    if (hedged) {
        bool pOk = p.kind == HedgeAttempt::Kind::Completed;
        bool hOk = h.kind == HedgeAttempt::Kind::Completed;
        if (pOk && hOk)
            pWins = p.clientDoneS <= h.clientDoneS;
        else if (hOk)
            pWins = false;
    }
    HedgeAttempt &w = pWins ? p : h;
    HedgeAttempt *loser = hedged ? (pWins ? &h : &p) : nullptr;
    if (hedged && !pWins) {
        ++cs.hedgeWins;
        if (hedgeWinsC_)
            hedgeWinsC_->inc();
    }

    // Cancel a loser that would still have completed: before service
    // start, the reservation is undone (its queue slot and replica
    // never ran); mid-service, the replica frees at the cancel point.
    if (loser && loser->kind == HedgeAttempt::Kind::Completed) {
        Shard &ls = *shards_[loser->shard];
        double c = w.clientDoneS;
        if (loser->startS >= c) {
            ls.freeS[loser->replica] = loser->prevFree;
            if (!ls.starts.empty())
                ls.starts.pop_back();
            loser->startS = c;
            loser->doneS = c;
        } else {
            loser->doneS = std::min(loser->doneS, c);
            ls.freeS[loser->replica] = loser->doneS;
        }
        loser->fcls = obs::FlightClass::Cancelled;
        loser->latencyMs = (loser->doneS - loser->dispatchS) * 1e3;
        ++ls.cancelled;
        if (hedgeCancelledC_)
            hedgeCancelledC_->inc();
        ls.lastDone = std::max(ls.lastDone, loser->doneS);
    }

    // Cluster-level accounting from the winner only — the caller saw
    // exactly one outcome. (Per-shard reports count every attempt.)
    Shard &ws = *shards_[w.shard];
    ShardMetrics *wsm =
        shardMetrics_.empty() ? nullptr : &shardMetrics_[w.shard];
    uint64_t admit_us = toUs(a);
    switch (w.kind) {
    case HedgeAttempt::Kind::Completed: {
        double full_ms = (w.clientDoneS - a) * 1e3;
        ++ws.completed;
        ++cs.completed;
        if (wsm)
            wsm->completed->inc();
        if (rp.streaming)
            ws.sketch.record(full_ms);
        else
            ws.latencies.push_back(full_ms);
        if (w.deadlineMs <= 0 || full_ms <= w.deadlineMs)
            ++ws.good;
        ws.lastDone = std::max(ws.lastDone, w.doneS);
        uint64_t done_us = std::max(toUs(w.doneS), admit_us);
        ws.slo->record(done_us, w.deadlineMs, full_ms, true);
        clsMonitor_.record(done_us, w.deadlineMs, full_ms, true);
        break;
    }
    case HedgeAttempt::Kind::Rejected: {
        ++cs.rejected;
        ws.slo->record(admit_us, w.deadlineMs, 0.0, false);
        clsMonitor_.record(admit_us, w.deadlineMs, 0.0, false);
        break;
    }
    case HedgeAttempt::Kind::Expired: {
        ++cs.expired;
        uint64_t t_us = std::max(toUs(w.startS), admit_us);
        ws.slo->record(t_us, w.deadlineMs, w.latencyMs, false);
        clsMonitor_.record(t_us, w.deadlineMs, w.latencyMs, false);
        break;
    }
    case HedgeAttempt::Kind::Faulted:
    default: {
        if (w.fcls == obs::FlightClass::DeadlineExpired)
            ++cs.expired;
        else
            ++cs.failed;
        uint64_t t_us = std::max(toUs(w.clientDoneS), admit_us);
        ws.slo->record(t_us, w.deadlineMs, w.latencyMs, false);
        clsMonitor_.record(t_us, w.deadlineMs, w.latencyMs, false);
        break;
    }
    }

    // Flight records in dispatch order: primary, then hedge.
    recordAttemptFlight(p, rp.admitted, ctx.sampled(), req.steps);
    if (hedged)
        recordAttemptFlight(h, rp.admitted, ctx.sampled(), req.steps);

    // Span tree: route root -> hedge[i] children -> nested request
    // trees. The winner stamps the root's outcome/engine; the loser's
    // hedge span shows the cancellation.
    if (ctx.sampled() && tracer) {
        auto endOf = [&](const HedgeAttempt &at) {
            uint64_t d = toUs(at.dispatchS);
            return std::max(std::max(toUs(at.doneS), toUs(at.startS)),
                            d);
        };
        uint64_t root_end = std::max(endOf(p), admit_us);
        if (hedged)
            root_end = std::max(root_end, endOf(h));

        obs::SpanRecord root;
        root.trace = ctx.trace;
        root.id = 1;
        root.parent = 0;
        root.kind = obs::SpanKind::Route;
        root.outcome = attemptOutcome(w.fcls);
        root.index = w.shard;
        root.chainId = req.model;
        root.startUs = admit_us;
        root.endUs = root_end;
        tracer->record(root);

        const HedgeAttempt *attempts[2] = {&p, hedged ? &h : nullptr};
        for (uint32_t i = 0; i < 2; ++i) {
            const HedgeAttempt *at = attempts[i];
            if (!at)
                continue;
            uint64_t h_start = std::max(toUs(at->dispatchS), admit_us);
            uint64_t h_end = std::max(endOf(*at), h_start);
            obs::SpanRecord hs;
            hs.trace = ctx.trace;
            hs.id = 2 + i * kHedgeIdStride;
            hs.parent = 1;
            hs.kind = obs::SpanKind::Hedge;
            hs.outcome = attemptOutcome(at->fcls);
            hs.index = i;           // hedge ordinal: "hedge[i]"
            hs.chainId = at->shard; // the engine this attempt hit
            hs.startUs = h_start;
            hs.endUs = h_end;
            tracer->record(hs);

            obs::RequestSpans qs;
            qs.trace = ctx.trace;
            qs.admitUs = h_start;
            qs.dequeueUs = qs.serviceUs =
                std::max(toUs(at->startS), h_start);
            qs.doneUs = h_end;
            qs.replica = static_cast<uint32_t>(at->replica);
            qs.outcome = attemptOutcome(at->fcls);
            obs::SpanId exec =
                obs::recordRequestTree(*tracer, qs, hs.id);
            if (exec && at->fcls == obs::FlightClass::Ok)
                stitchChainSpans(*tracer, ctx.trace, exec, req.model,
                                 shards_[at->shard]->group, req.steps,
                                 qs.serviceUs, qs.doneUs);
        }
    }
}

ClusterStats
Cluster::replayFinish(ReplayPass &rp)
{
    // Run the incident state machine to completion: every fault that
    // fired past the last arrival still detects, evicts, re-warms and
    // recovers, so the exported timeline pairs every fault with its
    // terminal phase.
    advanceChaos(std::numeric_limits<double>::infinity());
    ClusterStats cs = std::move(rp.cs);
    // Per-engine and merged summaries. Vector replay reports exact
    // nearest-rank percentiles; streaming replay merges the per-shard
    // sketches (counters/mean/max stay exact, percentiles are bucket
    // upper bounds).
    std::vector<double> all;
    LatencySketch merged;
    double first = 0, last = 0;
    bool any = false;
    for (auto &sp : shards_) {
        Shard &s = *sp;
        EngineReport r;
        r.label = s.label;
        uint64_t n = 0;
        if (rp.streaming) {
            s.sketch.fill(r.stats);
            n = s.sketch.count;
            merged.count += s.sketch.count;
            merged.sumMs += s.sketch.sumMs;
            merged.maxMs = std::max(merged.maxMs, s.sketch.maxMs);
            for (size_t b = 0; b < LatencySketch::kBuckets; ++b)
                merged.buckets[b] += s.sketch.buckets[b];
        } else {
            std::sort(s.latencies.begin(), s.latencies.end());
            fillLatencyStats(r.stats, s.latencies);
            n = s.latencies.size();
            all.insert(all.end(), s.latencies.begin(),
                       s.latencies.end());
        }
        double span = s.lastDone - s.firstArrival;
        r.stats.throughputRps =
            s.saw && span > 0 ? static_cast<double>(n) / span : 0;
        r.routed = s.routed;
        r.completed = s.completed;
        r.rejected = s.rejected;
        r.expired = s.expired;
        r.good = s.good;
        r.failed = s.failed;
        r.cancelled = s.cancelled;
        r.cacheHits = s.cache.hits();
        r.cacheMisses = s.cache.misses();
        r.cacheEvictions = s.cache.evictions();
        r.reloadedTiles = s.reloadedTiles;
        r.reloadMsTotal = s.reloadMsTotal;
        cs.goodput += s.good;
        if (s.saw) {
            if (!any || s.firstArrival < first)
                first = s.firstArrival;
            if (!any || s.lastDone > last)
                last = s.lastDone;
            any = true;
        }
        cs.engines.push_back(std::move(r));
    }
    double span = any ? last - first : 0;
    if (rp.streaming) {
        merged.fill(cs.overall);
        cs.overall.throughputRps =
            span > 0 ? static_cast<double>(merged.count) / span : 0;
    } else {
        std::sort(all.begin(), all.end());
        fillLatencyStats(cs.overall, all);
        cs.overall.throughputRps =
            span > 0 ? static_cast<double>(all.size()) / span : 0;
    }
    cs.goodputRps =
        span > 0 ? static_cast<double>(cs.goodput) / span : 0;
    return cs;
}

// --- Fidelity audit + span stitching ---

double
Cluster::exactServiceMs(uint32_t model, size_t group, unsigned steps)
{
    ModelEntry &e = models_[model];
    BW_ASSERT(!e.timed,
              "audit: timed model %u has no cycle-accurate price", model);
    uint64_t key = svcKey(model, group, steps);
    auto it = exactCache_.find(key);
    if (it != exactCache_.end())
        return it->second;
    double ms = e.sessions[group]->serviceMs(
        steps, timing::Fidelity::CycleAccurate);
    exactCache_.emplace(key, ms);
    return ms;
}

void
Cluster::auditCheck(uint64_t seq, uint32_t model, size_t group,
                    unsigned steps, double fast_ms)
{
    double exact_ms = exactServiceMs(model, group, steps);
    ++auditChecks_;
    if (auditChecksC_)
        auditChecksC_->inc();
    lastCheck_ = AuditSample{seq, model, steps, fast_ms, exact_ms};
    if (fast_ms != exact_ms) {
        ++auditDivergence_;
        if (auditDivergenceC_)
            auditDivergenceC_->inc();
        lastDivergence_ = lastCheck_;
    }
}

void
Cluster::stitchChainSpans(obs::SpanTracer &tracer, obs::TraceId trace,
                          obs::SpanId execute, uint32_t model,
                          size_t group, unsigned steps,
                          uint64_t service_us, uint64_t done_us)
{
    ModelEntry &e = models_[model];
    if (e.timed)
        return; // flat-time models have no chain profiles
    uint64_t key = svcKey(model, group, steps);
    auto it = chainCache_.find(key);
    if (it == chainCache_.end()) {
        auto chains =
            std::make_shared<std::vector<obs::ChainProfile>>();
        timing::TimingResult tr = e.sessions[group]->timeProfiled(
            steps, chains.get(), opts_.fidelity);
        ChainInfo ci;
        ci.totalCycles = tr.totalCycles;
        ci.chains = std::move(chains);
        it = chainCache_.emplace(key, std::move(ci)).first;
    }
    const ChainInfo &ci = it->second;
    if (!ci.chains || ci.chains->empty())
        return;
    obs::recordChainSpans(tracer, trace, execute, service_us, done_us,
                          *ci.chains, ci.totalCycles);
}

Json
Cluster::auditJson() const
{
    Json j = Json::object();
    j.set("schema", "bw.audit/1");
    j.set("sample_every", opts_.auditEvery);
    j.set("fidelity", timing::fidelityName(opts_.fidelity));
    j.set("active",
          opts_.auditEvery > 0 &&
              opts_.fidelity != timing::Fidelity::CycleAccurate);
    j.set("checks", auditChecks_);
    j.set("divergences", auditDivergence_);
    auto sampleJson = [](const AuditSample &s) {
        Json o = Json::object();
        o.set("seq", s.seq);
        o.set("model", static_cast<uint64_t>(s.model));
        o.set("steps", static_cast<uint64_t>(s.steps));
        o.set("fast_ms", s.fastMs);
        o.set("exact_ms", s.exactMs);
        return o;
    };
    if (auditChecks_ > 0)
        j.set("last_check", sampleJson(lastCheck_));
    if (auditDivergence_ > 0)
        j.set("last_divergence", sampleJson(lastDivergence_));
    return j;
}

// --- Live serving ---

void
Cluster::start()
{
    for (auto &s : shards_)
        s->engine->start();
}

Expected<std::future<serve::Response>>
Cluster::submit(uint32_t model, serve::Request req)
{
    if (!req.inputs.empty()) {
        return Status::invalidArgument(
            "cluster requests are timed; functional inputs are served "
            "through a Session, not the cluster front door");
    }
    unsigned steps = req.steps;
    double deadline_ms = req.deadlineMs;
    if (model >= models_.size()) {
        return Status::invalidArgument(
            detail::format("unknown model id %u (have %zu)", model,
                           models_.size()));
    }
    std::lock_guard<std::mutex> lk(liveMu_);
    ++liveSeq_;
    ModelEntry &me = models_[model];
    if (me.requests)
        me.requests->inc();
    uint32_t cls =
        static_cast<uint32_t>(clsMonitor_.classOf(deadline_ms));
    int32_t target =
        router_->route(liveSeq_, model, me.name, cls, liveLoads());
    if (target == -2) {
        return Status::unavailable(detail::format(
            "no healthy shard for model '%s' (every engine evicted)",
            me.name.c_str()));
    }
    if (target < 0) {
        if (metrics::Counter *c = shedCounter(cls))
            c->inc();
        const auto &classes = clsMonitor_.options().classes;
        return Status::unavailable(detail::format(
            "front door shed deadline class '%s' (cluster occupancy "
            "over threshold)",
            classes[std::min<size_t>(cls, classes.size() - 1)]
                .name.c_str()));
    }
    Shard &s = *shards_[static_cast<size_t>(target)];
    ShardMetrics *sm = shardMetrics_.empty()
                           ? nullptr
                           : &shardMetrics_[static_cast<size_t>(target)];
    if (sm)
        sm->routed->inc();
    uint64_t tiles = modelTiles(model, s.group);
    WeightTouch wt = s.cache.touch(model, tiles);
    double reload_ms = 0;
    if (wt.hit) {
        if (sm)
            sm->cacheHits->inc();
    } else {
        reload_ms = reloadMs(s.group, wt.loadedTiles);
        if (sm) {
            sm->cacheMisses->inc();
            if (wt.evictions)
                sm->cacheEvictions->add(wt.evictions);
            sm->reloadUs->add(
                static_cast<uint64_t>(std::llround(reload_ms * 1e3)));
        }
    }
    double base_ms = req.serviceMsOverride > 0
                         ? req.serviceMsOverride
                         : modelServiceMs(model, s.group, steps);
    double service_ms = base_ms + reload_ms;
    Expected<std::future<serve::Response>> primary = s.engine->submit(
        serve::Request::timed(steps, deadline_ms, service_ms));
    if (opts_.hedgeMs < 0 || !primary.ok())
        return primary;

    // Hedged duplicate dispatch: tie the request to the least-loaded
    // other healthy shard and let the first response win. Live
    // cancellation is advisory — the loser's service still completes
    // on its engine (and shows in that shard's series); the caller
    // only ever sees the winner.
    std::vector<EngineLoad> loads = liveLoads();
    int32_t alt = -1;
    uint64_t best = UINT64_MAX;
    for (size_t e = 0; e < loads.size(); ++e) {
        if (e == static_cast<size_t>(target) || !loads[e].healthy)
            continue;
        uint64_t occ = loads[e].queued + loads[e].inflight;
        if (occ < best) {
            best = occ;
            alt = static_cast<int32_t>(e);
        }
    }
    if (alt < 0)
        return primary;
    Shard &hs = *shards_[static_cast<size_t>(alt)];
    ShardMetrics *hsm = shardMetrics_.empty()
                            ? nullptr
                            : &shardMetrics_[static_cast<size_t>(alt)];
    uint64_t h_tiles = modelTiles(model, hs.group);
    WeightTouch hwt = hs.cache.touch(model, h_tiles);
    double h_reload_ms = 0;
    if (hwt.hit) {
        if (hsm)
            hsm->cacheHits->inc();
    } else {
        h_reload_ms = reloadMs(hs.group, hwt.loadedTiles);
        if (hsm) {
            hsm->cacheMisses->inc();
            if (hwt.evictions)
                hsm->cacheEvictions->add(hwt.evictions);
            hsm->reloadUs->add(static_cast<uint64_t>(
                std::llround(h_reload_ms * 1e3)));
        }
    }
    double h_base_ms = req.serviceMsOverride > 0
                           ? req.serviceMsOverride
                           : modelServiceMs(model, hs.group, steps);
    Expected<std::future<serve::Response>> hedge =
        hs.engine->submit(serve::Request::timed(
            steps, deadline_ms, h_base_ms + h_reload_ms));
    if (!hedge.ok())
        return primary;
    if (hsm)
        hsm->routed->inc();
    if (hedgeAttemptsC_)
        hedgeAttemptsC_->inc();

    std::future<serve::Response> f1 = std::move(primary.value());
    std::future<serve::Response> f2 = std::move(hedge.value());
    return std::async(
        std::launch::deferred,
        [this, f1 = std::move(f1), f2 = std::move(f2)]() mutable {
            // First-wins poll over both futures; a successful response
            // beats a failed one regardless of arrival order.
            while (true) {
                if (f1.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready) {
                    serve::Response r1 = f1.get();
                    if (r1.status.ok()) {
                        if (hedgeCancelledC_)
                            hedgeCancelledC_->inc();
                        return r1;
                    }
                    serve::Response r2 = f2.get();
                    if (r2.status.ok()) {
                        if (hedgeWinsC_)
                            hedgeWinsC_->inc();
                        return r2;
                    }
                    return r1;
                }
                if (f2.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready) {
                    serve::Response r2 = f2.get();
                    if (r2.status.ok()) {
                        if (hedgeWinsC_)
                            hedgeWinsC_->inc();
                        if (hedgeCancelledC_)
                            hedgeCancelledC_->inc();
                        return r2;
                    }
                    serve::Response r1 = f1.get();
                    return r1;
                }
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
            }
        });
}

Expected<std::future<serve::Response>>
Cluster::submitTimed(uint32_t model, unsigned steps, double deadline_ms)
{
    return submit(model, serve::Request::timed(steps, deadline_ms));
}

void
Cluster::drain()
{
    for (auto &s : shards_)
        s->engine->drain();
}

void
Cluster::shutdown()
{
    for (auto &s : shards_)
        s->engine->shutdown();
}

bool
Cluster::accepting() const
{
    for (const auto &s : shards_) {
        if (!s->engine->accepting())
            return false;
    }
    return true;
}

// --- Introspection ---

Json
Cluster::engineSloJson(unsigned engine) const
{
    BW_ASSERT(engine < shards_.size(), "engine %u out of range", engine);
    return shards_[engine]->slo->sloJson();
}

Json
Cluster::engineFlightJson(unsigned engine) const
{
    BW_ASSERT(engine < shards_.size(), "engine %u out of range", engine);
    // No chain-profile source: the shards are model-less engines, so
    // promoted records carry no chain leaves (the Engine::flightJson
    // degeneracy).
    return obs::flightJson(*shards_[engine]->flight);
}

Json
Cluster::engineCacheJson(unsigned engine) const
{
    BW_ASSERT(engine < shards_.size(), "engine %u out of range", engine);
    return shards_[engine]->cache.toJson();
}

Json
Cluster::debugClusterJson() const
{
    Json j = Json::object();
    j.set("engines", static_cast<uint64_t>(shards_.size()));
    j.set("model_count", static_cast<uint64_t>(models_.size()));
    j.set("policy", routePolicyName(router_->options().policy));
    j.set("routed", router_->routed());
    j.set("shed", router_->shed());
    Json groups = Json::array();
    for (const ReplicaGroupSpec &g : opts_.groups) {
        Json gj = Json::object();
        gj.set("name", g.name);
        gj.set("config", g.config.name);
        gj.set("engines", g.engines);
        gj.set("replicas", g.engine.replicas);
        gj.set("queue_depth", static_cast<uint64_t>(g.engine.queueDepth));
        groups.push(std::move(gj));
    }
    j.set("groups", std::move(groups));
    Json shards = Json::array();
    for (const auto &sp : shards_) {
        Json sj = Json::object();
        sj.set("label", sp->label);
        sj.set("group", opts_.groups[sp->group].name);
        sj.set("accepting", sp->engine->accepting());
        sj.set("healthy", sp->healthy);
        sj.set("queued", static_cast<uint64_t>(sp->engine->queueSize()));
        sj.set("cache", sp->cache.toJson());
        shards.push(std::move(sj));
    }
    j.set("shards", std::move(shards));
    Json models = Json::array();
    for (size_t m = 0; m < models_.size(); ++m) {
        Json mj = Json::object();
        mj.set("id", static_cast<uint64_t>(m));
        mj.set("name", models_[m].name);
        mj.set("timed", models_[m].timed);
        Json tiles = Json::array();
        for (size_t gi = 0; gi < opts_.groups.size(); ++gi)
            tiles.push(modelTiles(static_cast<uint32_t>(m), gi));
        mj.set("tiles_per_group", std::move(tiles));
        models.push(std::move(mj));
    }
    j.set("models", std::move(models));
    return j;
}

void
Cluster::exposeDebug(metrics::MetricsHttpServer &srv)
{
    srv.setReadiness([this] { return accepting(); });
    srv.handleJson("/debug/cluster",
                   [this] { return debugClusterJson().dump(2); });
    srv.handleJson("/route.json",
                   [this] { return routeJson().dump(2); });
    srv.handleJson("/slo.json", [this] { return sloJson().dump(2); });
    srv.handleText("/fleet/metrics",
                   "text/plain; version=0.0.4; charset=utf-8",
                   [this] { return fleetMetricsText(); });
    srv.handleJson("/fleet/metrics.json",
                   [this] { return fleetMetricsJson().dump(2); });
    srv.handleJson("/fleet/slo.json",
                   [this] { return fleetSloJson().dump(2); });
    srv.handleJson("/debug/audit",
                   [this] { return auditJson().dump(2); });
    srv.handleJson("/fleet/incidents.json",
                   [this] { return incidentsJson().dump(2); });
    srv.handleJson("/debug/chaos",
                   [this] { return chaos_.toJson().dump(2); });
    srv.handleStream(
        "/fleet/spans.ndjson",
        [this](const metrics::MetricsHttpServer::StreamSink &sink) {
            if (opts_.spanTracer)
                obs::streamSpanTreesNdjson(*opts_.spanTracer, sink);
            else
                obs::streamSpanTreesNdjson({}, 0, sink);
        });
    for (unsigned i = 0; i < shards_.size(); ++i) {
        std::string base = "/engine/" + std::to_string(i);
        srv.handleJson(base + "/slo.json", [this, i] {
            return engineSloJson(i).dump(2);
        });
        srv.handleJson(base + "/flight.json", [this, i] {
            return engineFlightJson(i).dump(2);
        });
        srv.handleJson(base + "/cache.json", [this, i] {
            return engineCacheJson(i).dump(2);
        });
        srv.handleJson(base + "/metrics.json", [this, i] {
            return metrics::metricsJson(*shards_[i]->registry).dump(2);
        });
        srv.handleJson(base + "/debug/config", [this, i] {
            return shards_[i]->engine->debugConfigJson().dump(2);
        });
        srv.handleStream(
            base + "/flight.ndjson",
            [this, i](const metrics::MetricsHttpServer::StreamSink &sink) {
                obs::streamFlightNdjson(*shards_[i]->flight, sink);
            });
    }
}

} // namespace cluster
} // namespace bw
