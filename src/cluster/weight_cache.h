/**
 * @file
 * Per-engine LRU weight-matrix cache for multi-model tenancy.
 *
 * A single BW NPU pins one model's weight matrices in its on-chip MRF
 * (Section III); serving several resident models from one engine means
 * the matrices of at most a cache-capacity's worth of models can be
 * resident at once, and a request for a non-resident model first
 * streams its matrices from DRAM. WeightCache models that contention:
 * capacity and footprints are measured in native-dimension matrix
 * tiles (the CompiledModel::mrfTilesUsed unit), eviction is LRU, and a
 * miss reports the tiles to load so the cluster can charge the reload
 * in cycles (TimingParams::dramLatency + bytes / dramBytesPerCycle).
 *
 * Deterministic by construction — no clocks, no randomness; the hit /
 * miss / eviction sequence is a pure function of the touch sequence.
 * Not thread-safe: the cluster serializes touches (virtual-time replay
 * is single-threaded; live submits take the cluster's routing lock).
 */

#ifndef BW_CLUSTER_WEIGHT_CACHE_H
#define BW_CLUSTER_WEIGHT_CACHE_H

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/json.h"

namespace bw {
namespace cluster {

/** Outcome of one WeightCache::touch(). */
struct WeightTouch
{
    bool hit = false;
    uint64_t loadedTiles = 0; //!< tiles streamed from DRAM on a miss
    unsigned evictions = 0;   //!< resident models evicted to make room
};

/** LRU cache of model weight footprints, in native matrix tiles. */
class WeightCache
{
  public:
    /** @p capacity_tiles = 0 means unbounded (every model fits). */
    explicit WeightCache(uint64_t capacity_tiles = 0);

    /**
     * Reference @p model with footprint @p tiles: a hit refreshes its
     * LRU position; a miss evicts least-recently-used residents until
     * the model fits, then loads it. A model with @p tiles = 0 is a
     * free hit (nothing to load); a model larger than the whole cache
     * loads on every touch and is never resident.
     */
    WeightTouch touch(uint32_t model, uint64_t tiles);

    /** Preload @p model without counting a miss (warm start); returns
     *  false when it does not fit alongside current residents. */
    bool preload(uint32_t model, uint64_t tiles);

    bool resident(uint32_t model) const;
    uint64_t capacityTiles() const { return capacity_; }
    uint64_t usedTiles() const { return used_; }
    size_t residents() const { return lru_.size(); }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t evictions() const { return evictions_; }

    /** Drop residents and counters (between replays). */
    void clear();

    /** Drop residents but keep the hit/miss/eviction counters — a
     *  mid-replay crash restart (the chaos plane's re-warm cycle) must
     *  not rewind the cumulative cache telemetry. */
    void invalidate();

    /** Residents MRU-first plus counters, machine-readable. */
    Json toJson() const;

  private:
    struct Entry
    {
        uint32_t model;
        uint64_t tiles;
    };

    bool evictFor(uint64_t tiles);
    void insert(uint32_t model, uint64_t tiles);

    uint64_t capacity_;
    uint64_t used_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    std::list<Entry> lru_; //!< front = most recently used
    std::unordered_map<uint32_t, std::list<Entry>::iterator> index_;
};

} // namespace cluster
} // namespace bw

#endif // BW_CLUSTER_WEIGHT_CACHE_H
