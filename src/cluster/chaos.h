/**
 * @file
 * Deterministic chaos plane: seeded, virtual-time fault schedules for
 * the cluster.
 *
 * The paper's deployment argument (Sections II and VIII) is that a
 * cloud-scale NPU fleet must keep serving when individual FPGAs hang or
 * a network hop drops — failure is an input, not an exception. A
 * ChaosSchedule makes that input first-class and replayable: a list of
 * fault events (replica crash, replica hang, slow replica, dropped
 * partition messages), each pinned to a shard and a virtual-time
 * window, generated from a seed or written explicitly by tests.
 *
 * Nothing here consults a clock or an unseeded RNG. A generated
 * schedule is a pure function of (seed, options, shard count), and
 * per-request effects inside a fault window (which messages a
 * partition drops) hash the deterministic submission sequence number —
 * so two Cluster::replay runs under one schedule export byte-identical
 * route logs, incident timelines, flight docs and SLO docs, and a
 * zero-fault schedule leaves the replay bit-identical to no schedule
 * at all (tested).
 */

#ifndef BW_CLUSTER_CHAOS_H
#define BW_CLUSTER_CHAOS_H

#include <cstdint>
#include <vector>

#include "common/json.h"

namespace bw {
namespace cluster {

/** The fault taxonomy (DESIGN.md section 11). */
enum class FaultClass : uint8_t
{
    ReplicaCrash = 0, //!< shard dies; restart re-warms its weight cache
    ReplicaHang,      //!< shard accepts but never answers (FPGA wedge)
    SlowReplica,      //!< service times stretch by a factor
    DroppedMessage,   //!< partition: requests to the shard vanish
    NumFaultClasses
};

/** Short class label: "crash" | "hang" | "slow" | "drop". */
const char *faultClassName(FaultClass c);

/** One scheduled fault: class, target shard, virtual-time window. */
struct FaultEvent
{
    FaultClass cls = FaultClass::ReplicaCrash;
    unsigned shard = 0;    //!< target engine-shard index
    double atS = 0;        //!< fault fires at this virtual second
    double durationS = 0;  //!< window length (crash: downtime before
                           //!< restart; hang/slow/drop: effect window)
    /** Class-specific knob: SlowReplica = service-time multiplier,
     *  DroppedMessage = per-request drop probability; 0 otherwise. */
    double magnitude = 0;
};

/** Seeded schedule generation knobs. */
struct ChaosOptions
{
    uint64_t seed = 1;

    /** Cluster-wide fault arrivals per virtual second (Poisson).
     *  0 disables chaos entirely. */
    double faultRate = 0;

    /** Generate faults in [0, horizonS) virtual seconds. */
    double horizonS = 0;

    /** Mean fault-window length (exponential). */
    double meanDurationS = 0.05;

    /** SlowReplica service-time multiplier. */
    double slowFactor = 4.0;

    /** DroppedMessage per-request drop probability. */
    double dropProb = 0.5;

    bool enabled() const { return faultRate > 0 && horizonS > 0; }

    /** Apply BW_CHAOS_SEED, BW_CHAOS_RATE, BW_CHAOS_HORIZON_S,
     *  BW_CHAOS_MEAN_S, BW_CHAOS_SLOW_FACTOR and BW_CHAOS_DROP_PROB
     *  on @p base. */
    static ChaosOptions fromEnv(ChaosOptions base);
    static ChaosOptions fromEnv();
};

/**
 * An ordered fault schedule. Default-constructed = empty = no faults
 * (the identity schedule). Faults are kept sorted by (atS, shard);
 * the cluster resolves overlapping faults on one shard by dropping the
 * later one at replay reset (a shard lives one incident at a time).
 */
class ChaosSchedule
{
  public:
    ChaosSchedule() = default;

    /** Seeded Poisson schedule over @p shards shards — a pure function
     *  of (opts, shards). Empty when !opts.enabled(). */
    static ChaosSchedule generate(const ChaosOptions &opts,
                                  unsigned shards);

    /** Append one explicit fault (tests, reproducers). */
    void addFault(FaultEvent ev);

    const std::vector<FaultEvent> &faults() const { return faults_; }
    bool empty() const { return faults_.empty(); }
    uint64_t seed() const { return seed_; }

    /** The schedule as a bw.chaos/1 document (debug introspection). */
    Json toJson() const;

  private:
    uint64_t seed_ = 0;
    std::vector<FaultEvent> faults_;
};

/**
 * Deterministic per-request uniform draw in [0, 1): splitmix64 over
 * (seed, fault id, submission seq). This is what decides which
 * messages a DroppedMessage window eats — a pure function of replay
 * state, never an RNG stream that request order could perturb.
 */
double chaosUniform(uint64_t seed, uint64_t fault, uint64_t seq);

} // namespace cluster
} // namespace bw

#endif // BW_CLUSTER_CHAOS_H
