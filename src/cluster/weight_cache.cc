#include "cluster/weight_cache.h"

namespace bw {
namespace cluster {

WeightCache::WeightCache(uint64_t capacity_tiles)
    : capacity_(capacity_tiles)
{
}

bool
WeightCache::evictFor(uint64_t tiles)
{
    if (capacity_ == 0)
        return true; // unbounded
    if (tiles > capacity_)
        return false; // can never be resident
    while (used_ + tiles > capacity_ && !lru_.empty()) {
        const Entry &victim = lru_.back();
        used_ -= victim.tiles;
        index_.erase(victim.model);
        lru_.pop_back();
        ++evictions_;
    }
    return used_ + tiles <= capacity_;
}

void
WeightCache::insert(uint32_t model, uint64_t tiles)
{
    lru_.push_front(Entry{model, tiles});
    index_[model] = lru_.begin();
    used_ += tiles;
}

WeightTouch
WeightCache::touch(uint32_t model, uint64_t tiles)
{
    WeightTouch t;
    if (tiles == 0) { // nothing to load; always a free hit
        t.hit = true;
        ++hits_;
        return t;
    }
    auto it = index_.find(model);
    if (it != index_.end()) {
        t.hit = true;
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second); // refresh MRU
        return t;
    }
    ++misses_;
    t.loadedTiles = tiles;
    uint64_t ev0 = evictions_;
    if (evictFor(tiles))
        insert(model, tiles);
    t.evictions = static_cast<unsigned>(evictions_ - ev0);
    return t;
}

bool
WeightCache::preload(uint32_t model, uint64_t tiles)
{
    if (tiles == 0 || index_.count(model))
        return true;
    if (capacity_ != 0 && used_ + tiles > capacity_)
        return false; // warm start never evicts
    insert(model, tiles);
    return true;
}

bool
WeightCache::resident(uint32_t model) const
{
    return index_.count(model) != 0;
}

void
WeightCache::clear()
{
    invalidate();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

void
WeightCache::invalidate()
{
    lru_.clear();
    index_.clear();
    used_ = 0;
}

Json
WeightCache::toJson() const
{
    Json j = Json::object();
    j.set("capacity_tiles", capacity_);
    j.set("used_tiles", used_);
    j.set("hits", hits_);
    j.set("misses", misses_);
    j.set("evictions", evictions_);
    Json res = Json::array();
    for (const Entry &e : lru_) {
        Json r = Json::object();
        r.set("model", e.model);
        r.set("tiles", e.tiles);
        res.push(std::move(r));
    }
    j.set("resident", std::move(res));
    return j;
}

} // namespace cluster
} // namespace bw
