#include "cluster/traffic.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace bw {
namespace cluster {

namespace {

double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? std::atof(v) : fallback;
}

} // namespace

TrafficOptions
TrafficOptions::fromEnv(TrafficOptions base)
{
    base.seed = static_cast<uint64_t>(
        envDouble("BW_CLUSTER_SEED", static_cast<double>(base.seed)));
    base.baseRps = envDouble("BW_CLUSTER_RPS", base.baseRps);
    base.durationS = envDouble("BW_CLUSTER_DURATION_S", base.durationS);
    return base;
}

TrafficOptions
TrafficOptions::fromEnv()
{
    return fromEnv(TrafficOptions{});
}

double
trafficRateAt(const TrafficOptions &opts, double t_s)
{
    double rate = opts.baseRps;
    if (opts.diurnalAmplitude != 0 && opts.diurnalPeriodS > 0) {
        rate *= 1.0 + opts.diurnalAmplitude *
                          std::sin(2.0 * M_PI * t_s /
                                   opts.diurnalPeriodS);
    }
    for (const BurstPhase &b : opts.bursts) {
        if (t_s >= b.startS && t_s < b.startS + b.durationS)
            rate *= b.multiplier;
    }
    return std::max(rate, 0.0);
}

std::vector<ClusterRequest>
generateTraffic(const TrafficOptions &opts)
{
    std::vector<ClusterRequest> trace;
    if (opts.baseRps <= 0 || opts.durationS <= 0)
        return trace;

    // Peak rate bounds the thinning proposal process: diurnal swing at
    // full amplitude times the largest burst multiplier.
    double peak = opts.baseRps * (1.0 + std::abs(opts.diurnalAmplitude));
    double burst_peak = 1.0;
    for (const BurstPhase &b : opts.bursts)
        burst_peak = std::max(burst_peak, b.multiplier);
    peak *= burst_peak;
    BW_ASSERT(peak > 0, "traffic peak rate must be positive");

    std::vector<ModelMix> mix = opts.mix;
    if (mix.empty())
        mix.push_back(ModelMix{});
    double total_w = 0;
    for (const ModelMix &m : mix) {
        BW_ASSERT(m.weight > 0, "model mix weight must be positive");
        total_w += m.weight;
    }

    // Thinning: candidates at the peak rate, accepted with probability
    // rate(t)/peak. Every path consumes Rng draws in a fixed order
    // (gap, accept, then model only on accept), so the trace is a pure
    // function of the options.
    Rng rng(opts.seed);
    double t = 0;
    while (true) {
        t += rng.exponential(peak);
        if (t >= opts.durationS)
            break;
        double accept = rng.uniform();
        if (accept * peak >= trafficRateAt(opts, t))
            continue;
        double pick = rng.uniform() * total_w;
        size_t m = 0;
        for (; m + 1 < mix.size(); ++m) {
            if (pick < mix[m].weight)
                break;
            pick -= mix[m].weight;
        }
        ClusterRequest r;
        r.arrivalS = t;
        r.model = mix[m].model;
        r.steps = std::max(1u, mix[m].steps);
        r.deadlineMs = mix[m].deadlineMs;
        trace.push_back(r);
    }
    return trace;
}

Json
trafficSummaryJson(const TrafficOptions &opts,
                   const std::vector<ClusterRequest> &trace)
{
    Json j = Json::object();
    j.set("seed", opts.seed);
    j.set("base_rps", opts.baseRps);
    j.set("duration_s", opts.durationS);
    j.set("diurnal_amplitude", opts.diurnalAmplitude);
    j.set("bursts", static_cast<uint64_t>(opts.bursts.size()));
    j.set("requests", static_cast<uint64_t>(trace.size()));
    if (!trace.empty()) {
        j.set("first_arrival_s", trace.front().arrivalS);
        j.set("last_arrival_s", trace.back().arrivalS);
    }
    // Per-model request counts, ascending by model id.
    uint32_t max_model = 0;
    for (const ClusterRequest &r : trace)
        max_model = std::max(max_model, r.model);
    std::vector<uint64_t> counts(trace.empty() ? 0 : max_model + 1, 0);
    for (const ClusterRequest &r : trace)
        ++counts[r.model];
    Json per_model = Json::array();
    for (uint64_t c : counts)
        per_model.push(c);
    j.set("per_model", std::move(per_model));
    return j;
}

} // namespace cluster
} // namespace bw
