#include "cluster/traffic.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace bw {
namespace cluster {

namespace {

double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? std::atof(v) : fallback;
}

} // namespace

TrafficOptions
TrafficOptions::fromEnv(TrafficOptions base)
{
    base.seed = static_cast<uint64_t>(
        envDouble("BW_CLUSTER_SEED", static_cast<double>(base.seed)));
    base.baseRps = envDouble("BW_CLUSTER_RPS", base.baseRps);
    base.durationS = envDouble("BW_CLUSTER_DURATION_S", base.durationS);
    return base;
}

TrafficOptions
TrafficOptions::fromEnv()
{
    return fromEnv(TrafficOptions{});
}

double
trafficRateAt(const TrafficOptions &opts, double t_s)
{
    double rate = opts.baseRps;
    if (opts.diurnalAmplitude != 0 && opts.diurnalPeriodS > 0) {
        rate *= 1.0 + opts.diurnalAmplitude *
                          std::sin(2.0 * M_PI * t_s /
                                   opts.diurnalPeriodS);
    }
    for (const BurstPhase &b : opts.bursts) {
        if (t_s >= b.startS && t_s < b.startS + b.durationS)
            rate *= b.multiplier;
    }
    return std::max(rate, 0.0);
}

TrafficStream::TrafficStream(TrafficOptions opts)
    : opts_(std::move(opts)), rng_(opts_.seed)
{
    if (opts_.baseRps <= 0 || opts_.durationS <= 0) {
        done_ = true;
        return;
    }

    // Peak rate bounds the thinning proposal process: diurnal swing at
    // full amplitude times the largest burst multiplier.
    peak_ = opts_.baseRps * (1.0 + std::abs(opts_.diurnalAmplitude));
    double burst_peak = 1.0;
    for (const BurstPhase &b : opts_.bursts)
        burst_peak = std::max(burst_peak, b.multiplier);
    peak_ *= burst_peak;
    BW_ASSERT(peak_ > 0, "traffic peak rate must be positive");

    mix_ = opts_.mix;
    if (mix_.empty())
        mix_.push_back(ModelMix{});
    for (const ModelMix &m : mix_) {
        BW_ASSERT(m.weight > 0, "model mix weight must be positive");
        totalW_ += m.weight;
    }
}

bool
TrafficStream::next(ClusterRequest *out)
{
    if (done_)
        return false;
    // Thinning: candidates at the peak rate, accepted with probability
    // rate(t)/peak. Every path consumes Rng draws in a fixed order
    // (gap, accept, then model only on accept), so the trace is a pure
    // function of the options.
    while (true) {
        t_ += rng_.exponential(peak_);
        if (t_ >= opts_.durationS) {
            done_ = true;
            return false;
        }
        double accept = rng_.uniform();
        if (accept * peak_ >= trafficRateAt(opts_, t_))
            continue;
        double pick = rng_.uniform() * totalW_;
        size_t m = 0;
        for (; m + 1 < mix_.size(); ++m) {
            if (pick < mix_[m].weight)
                break;
            pick -= mix_[m].weight;
        }
        out->arrivalS = t_;
        out->model = mix_[m].model;
        out->steps = std::max(1u, mix_[m].steps);
        out->deadlineMs = mix_[m].deadlineMs;
        ++produced_;
        return true;
    }
}

std::vector<ClusterRequest>
generateTraffic(const TrafficOptions &opts)
{
    std::vector<ClusterRequest> trace;
    TrafficStream stream(opts);
    ClusterRequest r;
    while (stream.next(&r))
        trace.push_back(r);
    return trace;
}

Json
trafficSummaryJson(const TrafficOptions &opts,
                   const std::vector<ClusterRequest> &trace)
{
    Json j = Json::object();
    j.set("seed", opts.seed);
    j.set("base_rps", opts.baseRps);
    j.set("duration_s", opts.durationS);
    j.set("diurnal_amplitude", opts.diurnalAmplitude);
    j.set("bursts", static_cast<uint64_t>(opts.bursts.size()));
    j.set("requests", static_cast<uint64_t>(trace.size()));
    if (!trace.empty()) {
        j.set("first_arrival_s", trace.front().arrivalS);
        j.set("last_arrival_s", trace.back().arrivalS);
    }
    // Per-model request counts, ascending by model id.
    uint32_t max_model = 0;
    for (const ClusterRequest &r : trace)
        max_model = std::max(max_model, r.model);
    std::vector<uint64_t> counts(trace.empty() ? 0 : max_model + 1, 0);
    for (const ClusterRequest &r : trace)
        ++counts[r.model];
    Json per_model = Json::array();
    for (uint64_t c : counts)
        per_model.push(c);
    j.set("per_model", std::move(per_model));
    return j;
}

} // namespace cluster
} // namespace bw
