/**
 * @file
 * Float reference interpreter for arbitrary GIR graphs. Where
 * rnn_ref.h hand-codes the LSTM/GRU/MLP cells, this interpreter
 * evaluates any graph the compiler accepts — the oracle for randomized
 * compiler-equivalence testing.
 */

#ifndef BW_REFMODEL_GIR_INTERP_H
#define BW_REFMODEL_GIR_INTERP_H

#include "graph/gir.h"

namespace bw {

/** Reference evaluator with persistent recurrent state. */
class GirInterpreter
{
  public:
    explicit GirInterpreter(const GirGraph &graph);

    /**
     * Evaluate one step with @p x as the value of every Input node (the
     * compiler's single-input convention) and return the Output node's
     * value. Recurrent states update at the end of the step.
     */
    FVec step(std::span<const float> x);

    /** Current value of a State node. */
    const FVec &stateValue(NodeId state) const;

    /** Reset all states to zero. */
    void reset();

  private:
    const GirGraph &g_;
    std::vector<FVec> state_; //!< per State node id (empty otherwise)
};

} // namespace bw

#endif // BW_REFMODEL_GIR_INTERP_H
