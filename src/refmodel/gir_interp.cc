#include "refmodel/gir_interp.h"

#include <cmath>

#include "common/logging.h"

namespace bw {

GirInterpreter::GirInterpreter(const GirGraph &graph)
    : g_(graph), state_(graph.size())
{
    g_.check();
    for (NodeId id : g_.nodesOf(GirOp::State))
        state_[id].assign(g_.node(id).dim, 0.0f);
}

void
GirInterpreter::reset()
{
    for (NodeId id : g_.nodesOf(GirOp::State))
        state_[id].assign(g_.node(id).dim, 0.0f);
}

const FVec &
GirInterpreter::stateValue(NodeId state) const
{
    BW_ASSERT(g_.node(state).op == GirOp::State);
    return state_[state];
}

FVec
GirInterpreter::step(std::span<const float> x)
{
    std::vector<FVec> value(g_.size());
    for (NodeId id : g_.topoOrder()) {
        const GirNode &n = g_.node(id);
        switch (n.op) {
          case GirOp::Input:
            BW_ASSERT(x.size() == n.dim,
                      "input dim %u vs provided %zu", n.dim, x.size());
            value[id].assign(x.begin(), x.end());
            break;
          case GirOp::ConstVec:
            value[id] = n.constValue;
            break;
          case GirOp::State:
            value[id] = state_[id];
            break;
          case GirOp::MatMul:
            value[id] = gemvRef(n.weight, value[n.inputs[0]]);
            break;
          case GirOp::Output:
            value[id] = value[n.inputs[0]];
            break;
          default: {
            const FVec &a = value[n.inputs[0]];
            value[id].resize(n.dim);
            const FVec *b =
                n.inputs.size() > 1 ? &value[n.inputs[1]] : nullptr;
            for (unsigned i = 0; i < n.dim; ++i) {
                float v = a[i];
                switch (n.op) {
                  case GirOp::Add: v = a[i] + (*b)[i]; break;
                  case GirOp::Sub: v = a[i] - (*b)[i]; break;
                  case GirOp::Mul: v = a[i] * (*b)[i]; break;
                  case GirOp::Max: v = std::max(a[i], (*b)[i]); break;
                  case GirOp::Relu: v = std::max(a[i], 0.0f); break;
                  case GirOp::Sigmoid:
                    v = 1.0f / (1.0f + std::exp(-a[i]));
                    break;
                  case GirOp::Tanh: v = std::tanh(a[i]); break;
                  default: BW_PANIC("unhandled op %s", girOpName(n.op));
                }
                value[id][i] = v;
            }
            break;
          }
        }
    }

    FVec out;
    auto outputs = g_.nodesOf(GirOp::Output);
    if (!outputs.empty())
        out = value[g_.node(outputs.front()).inputs[0]];

    for (auto &[state, producer] : g_.stateBindings())
        state_[state] = value[producer];
    return out;
}

} // namespace bw
