/**
 * @file
 * Float reference implementations of the model cells, used to validate
 * the functional simulator end to end (the quantized NPU result must
 * track these within BFP/float16 error bounds).
 */

#ifndef BW_REFMODEL_RNN_REF_H
#define BW_REFMODEL_RNN_REF_H

#include "graph/builders.h"
#include "tensor/tensor.h"

namespace bw {

/** LSTM cell state for the reference implementation. */
struct LstmRefState
{
    FVec h;
    FVec c;
};

/** One reference LSTM step; returns h' and updates @p state. */
FVec lstmRefStep(const LstmWeights &w, LstmRefState &state,
                 std::span<const float> x);

/** One reference GRU step; returns h' and updates @p h. */
FVec gruRefStep(const GruWeights &w, FVec &h, std::span<const float> x);

/** Reference MLP forward pass. */
FVec mlpRef(const MlpWeights &w, std::span<const float> x);

/** Run @p steps reference LSTM steps over per-step inputs. */
std::vector<FVec> lstmRefRun(const LstmWeights &w,
                             const std::vector<FVec> &xs);

/** Run @p steps reference GRU steps over per-step inputs. */
std::vector<FVec> gruRefRun(const GruWeights &w,
                            const std::vector<FVec> &xs);

} // namespace bw

#endif // BW_REFMODEL_RNN_REF_H
