#include "refmodel/rnn_ref.h"

#include <cmath>

#include "common/logging.h"

namespace bw {

namespace {

float
sigmoidF(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

/** y = W x + U h + b. */
FVec
gatePre(const FMat &w, std::span<const float> x, const FMat &u,
        std::span<const float> h, std::span<const float> b)
{
    FVec wx = gemvRef(w, x);
    FVec uh = gemvRef(u, h);
    FVec y(wx.size());
    for (size_t i = 0; i < y.size(); ++i)
        y[i] = wx[i] + uh[i] + b[i];
    return y;
}

} // namespace

FVec
lstmRefStep(const LstmWeights &w, LstmRefState &state,
            std::span<const float> x)
{
    if (state.h.empty())
        state.h.assign(w.hidden, 0.0f);
    if (state.c.empty())
        state.c.assign(w.hidden, 0.0f);
    BW_ASSERT(x.size() == w.inputDim);

    FVec f = gatePre(w.Wf, x, w.Uf, state.h, w.bf);
    FVec i = gatePre(w.Wi, x, w.Ui, state.h, w.bi);
    FVec o = gatePre(w.Wo, x, w.Uo, state.h, w.bo);
    FVec c = gatePre(w.Wc, x, w.Uc, state.h, w.bc);

    FVec h_new(w.hidden);
    for (size_t k = 0; k < w.hidden; ++k) {
        float ft = sigmoidF(f[k]);
        float it = sigmoidF(i[k]);
        float ot = sigmoidF(o[k]);
        float ct = std::tanh(c[k]);
        state.c[k] = ft * state.c[k] + it * ct;
        h_new[k] = ot * std::tanh(state.c[k]);
    }
    state.h = h_new;
    return h_new;
}

FVec
gruRefStep(const GruWeights &w, FVec &h, std::span<const float> x)
{
    if (h.empty())
        h.assign(w.hidden, 0.0f);
    BW_ASSERT(x.size() == w.inputDim);

    FVec z = gatePre(w.Wz, x, w.Uz, h, w.bz);
    FVec r = gatePre(w.Wr, x, w.Ur, h, w.br);

    FVec rh(w.hidden);
    for (size_t k = 0; k < w.hidden; ++k)
        rh[k] = sigmoidF(r[k]) * h[k];

    FVec pre = gemvRef(w.Wh, x);
    FVec urh = gemvRef(w.Uh, rh);

    FVec h_new(w.hidden);
    for (size_t k = 0; k < w.hidden; ++k) {
        float zt = sigmoidF(z[k]);
        float ht = std::tanh(pre[k] + urh[k] + w.bh[k]);
        h_new[k] = ht + zt * (h[k] - ht);
    }
    h = h_new;
    return h_new;
}

FVec
mlpRef(const MlpWeights &w, std::span<const float> x)
{
    FVec cur(x.begin(), x.end());
    for (size_t l = 0; l < w.weights.size(); ++l) {
        FVec y = gemvRef(w.weights[l], cur);
        for (size_t k = 0; k < y.size(); ++k) {
            y[k] += w.biases[l][k];
            if (l + 1 < w.weights.size())
                y[k] = std::max(y[k], 0.0f);
        }
        cur = std::move(y);
    }
    return cur;
}

std::vector<FVec>
lstmRefRun(const LstmWeights &w, const std::vector<FVec> &xs)
{
    LstmRefState st;
    std::vector<FVec> out;
    out.reserve(xs.size());
    for (const auto &x : xs)
        out.push_back(lstmRefStep(w, st, x));
    return out;
}

std::vector<FVec>
gruRefRun(const GruWeights &w, const std::vector<FVec> &xs)
{
    FVec h;
    std::vector<FVec> out;
    out.reserve(xs.size());
    for (const auto &x : xs)
        out.push_back(gruRefStep(w, h, x));
    return out;
}

} // namespace bw
