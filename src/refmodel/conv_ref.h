/**
 * @file
 * Direct (float) 2-D convolution reference, NHWC layout, used to
 * validate the NPU conv lowering end to end.
 */

#ifndef BW_REFMODEL_CONV_REF_H
#define BW_REFMODEL_CONV_REF_H

#include "graph/conv.h"
#include "tensor/tensor.h"

namespace bw {

/**
 * Reference convolution. @p weights is outC x (kH*kW*inC) with the
 * patch laid out row-major as (ky, kx, c) — the same layout the conv
 * lowering uses for its im2col patch vectors. @p input is 1 x H x W x C.
 */
FTensor4 conv2dRef(const ConvSpec &spec, const FMat &weights,
                   std::span<const float> bias, const FTensor4 &input);

/** Extract the im2col patch vector for output position (y, x). */
FVec im2colPatch(const ConvSpec &spec, const FTensor4 &input, unsigned y,
                 unsigned x);

} // namespace bw

#endif // BW_REFMODEL_CONV_REF_H
