#include "refmodel/conv_ref.h"

#include <algorithm>

#include "common/logging.h"

namespace bw {

FVec
im2colPatch(const ConvSpec &spec, const FTensor4 &input, unsigned y,
            unsigned x)
{
    FVec patch(spec.patchLen(), 0.0f);
    size_t idx = 0;
    for (unsigned ky = 0; ky < spec.kH; ++ky) {
        for (unsigned kx = 0; kx < spec.kW; ++kx) {
            int iy = static_cast<int>(y * spec.stride + ky) -
                     static_cast<int>(spec.pad);
            int ix = static_cast<int>(x * spec.stride + kx) -
                     static_cast<int>(spec.pad);
            for (unsigned c = 0; c < spec.inC; ++c, ++idx) {
                if (iy >= 0 && iy < static_cast<int>(spec.inH) &&
                    ix >= 0 && ix < static_cast<int>(spec.inW)) {
                    patch[idx] = input.at(0, iy, ix, c);
                }
            }
        }
    }
    return patch;
}

FTensor4
conv2dRef(const ConvSpec &spec, const FMat &weights,
          std::span<const float> bias, const FTensor4 &input)
{
    BW_ASSERT(input.n() == 1 && input.h() == spec.inH &&
              input.w() == spec.inW && input.c() == spec.inC);
    BW_ASSERT(weights.rows() == spec.outC &&
              weights.cols() == spec.patchLen());
    BW_ASSERT(bias.size() == spec.outC);

    FTensor4 out(1, spec.outH(), spec.outW(), spec.outC);
    for (unsigned y = 0; y < spec.outH(); ++y) {
        for (unsigned x = 0; x < spec.outW(); ++x) {
            FVec patch = im2colPatch(spec, input, y, x);
            for (unsigned oc = 0; oc < spec.outC; ++oc) {
                double acc = bias[oc];
                auto row = weights.row(oc);
                for (size_t i = 0; i < patch.size(); ++i)
                    acc += static_cast<double>(row[i]) * patch[i];
                float v = static_cast<float>(acc);
                if (spec.relu)
                    v = std::max(v, 0.0f);
                out.at(0, y, x, oc) = v;
            }
        }
    }
    return out;
}

} // namespace bw
