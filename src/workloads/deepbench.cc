#include "workloads/deepbench.h"

#include "common/logging.h"

namespace bw {

const char *
rnnKindName(RnnKind k)
{
    return k == RnnKind::Lstm ? "LSTM" : "GRU";
}

std::string
RnnLayerSpec::label() const
{
    return std::string(rnnKindName(kind)) + " h=" + std::to_string(hidden) +
           " t=" + std::to_string(timeSteps);
}

OpCount
RnnLayerSpec::opsPerStep() const
{
    unsigned x = inputDim ? inputDim : hidden;
    unsigned gates = kind == RnnKind::Lstm ? 4 : 3;
    return 2ull * gates * hidden * (static_cast<uint64_t>(hidden) + x);
}

uint64_t
RnnLayerSpec::weightCount() const
{
    unsigned x = inputDim ? inputDim : hidden;
    unsigned gates = kind == RnnKind::Lstm ? 4 : 3;
    return static_cast<uint64_t>(gates) * hidden *
           (static_cast<uint64_t>(hidden) + x);
}

std::vector<RnnLayerSpec>
deepBenchSuite()
{
    // Table V row order.
    return {
        {RnnKind::Gru, 2816, 750, 2816},
        {RnnKind::Gru, 2560, 375, 2560},
        {RnnKind::Gru, 2048, 375, 2048},
        {RnnKind::Gru, 1536, 375, 1536},
        {RnnKind::Gru, 1024, 1500, 1024},
        {RnnKind::Gru, 512, 1, 512},
        {RnnKind::Lstm, 2048, 25, 2048},
        {RnnKind::Lstm, 1536, 50, 1536},
        {RnnKind::Lstm, 1024, 25, 1024},
        {RnnKind::Lstm, 512, 25, 512},
        {RnnKind::Lstm, 256, 150, 256},
    };
}

std::vector<RnnLayerSpec>
batchScalingSuite()
{
    // Fig. 8 uses the larger layers where batching is meaningful.
    return {
        {RnnKind::Gru, 2816, 750, 2816},
        {RnnKind::Gru, 2048, 375, 2048},
        {RnnKind::Gru, 1024, 1500, 1024},
        {RnnKind::Lstm, 2048, 25, 2048},
        {RnnKind::Lstm, 1024, 25, 1024},
    };
}

} // namespace bw
