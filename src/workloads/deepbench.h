/**
 * @file
 * The DeepBench GRU/LSTM inference suite evaluated in Section VII
 * (Table V, Figs. 7-8): eleven RNN layers identified by cell kind,
 * hidden dimension and timestep count, plus the two Table I kernels.
 */

#ifndef BW_WORKLOADS_DEEPBENCH_H
#define BW_WORKLOADS_DEEPBENCH_H

#include <string>
#include <vector>

#include "common/units.h"

namespace bw {

/** RNN cell kind. */
enum class RnnKind : uint8_t
{
    Lstm = 0,
    Gru
};

const char *rnnKindName(RnnKind k);

/** One DeepBench RNN inference layer. */
struct RnnLayerSpec
{
    RnnKind kind = RnnKind::Lstm;
    unsigned hidden = 0;
    unsigned timeSteps = 1;
    /** Input dimension (DeepBench uses input = hidden). */
    unsigned inputDim = 0;

    std::string label() const;

    /** Arithmetic ops per timestep (matmul-only, paper convention):
     *  8*2*h*(h+x)/2 ... LSTM: 4 input + 4 recurrent matrices; GRU: 3+3. */
    OpCount opsPerStep() const;

    /** Total ops over all timesteps. */
    OpCount totalOps() const { return opsPerStep() * timeSteps; }

    /** Weight elements. */
    uint64_t weightCount() const;
};

/** The eleven Table V benchmarks, in the paper's row order. */
std::vector<RnnLayerSpec> deepBenchSuite();

/** The subset used for the batch-scaling study (Fig. 8). */
std::vector<RnnLayerSpec> batchScalingSuite();

} // namespace bw

#endif // BW_WORKLOADS_DEEPBENCH_H
