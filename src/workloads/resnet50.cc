#include "workloads/resnet50.h"

#include <cstdio>

namespace bw {

namespace {

ConvSpec
conv(const char *name, unsigned in_hw, unsigned in_c, unsigned out_c,
     unsigned k, unsigned stride, bool relu = true)
{
    ConvSpec s;
    s.name = name;
    s.inH = in_hw;
    s.inW = in_hw;
    s.inC = in_c;
    s.outC = out_c;
    s.kH = k;
    s.kW = k;
    s.stride = stride;
    s.pad = k / 2;
    s.relu = relu;
    return s;
}

/** Append one bottleneck block: 1x1 reduce, 3x3, 1x1 expand
 *  (+ projection shortcut on the first block of a stage). */
void
bottleneck(std::vector<ConvSpec> &out, const char *stage, int block,
           unsigned in_hw, unsigned in_c, unsigned mid_c, unsigned out_c,
           unsigned stride)
{
    char name[64];
    auto push = [&](const char *suffix, ConvSpec s) {
        std::snprintf(name, sizeof(name), "%s_b%d_%s", stage, block,
                      suffix);
        s.name = name;
        out.push_back(s);
    };
    push("1x1a", conv("", in_hw, in_c, mid_c, 1, stride));
    unsigned hw = (in_hw - 1) / stride + 1;
    push("3x3", conv("", hw, mid_c, mid_c, 3, 1));
    // Expand conv feeds the residual add; ReLU applies after the add.
    ConvSpec expand = conv("", hw, mid_c, out_c, 1, 1, false);
    expand.residualAdd = true;
    push("1x1b", expand);
    if (block == 1) {
        // Projection shortcut on the stage's first block.
        push("proj", conv("", in_hw, in_c, out_c, 1, stride, false));
    }
}

} // namespace

std::vector<ConvSpec>
resnet50Convs()
{
    std::vector<ConvSpec> out;
    // conv1: 224x224x3 -> 112x112x64, 7x7 stride 2.
    out.push_back(conv("conv1", 224, 3, 64, 7, 2));
    // 3x3 max pool stride 2 -> 56x56 (handled off the MVM datapath).
    for (int b = 1; b <= 3; ++b)
        bottleneck(out, "conv2", b, 56, b == 1 ? 64 : 256, 64, 256, 1);
    for (int b = 1; b <= 4; ++b)
        bottleneck(out, "conv3", b, b == 1 ? 56 : 28, b == 1 ? 256 : 512,
                   128, 512, b == 1 ? 2 : 1);
    for (int b = 1; b <= 6; ++b)
        bottleneck(out, "conv4", b, b == 1 ? 28 : 14, b == 1 ? 512 : 1024,
                   256, 1024, b == 1 ? 2 : 1);
    for (int b = 1; b <= 3; ++b)
        bottleneck(out, "conv5", b, b == 1 ? 14 : 7, b == 1 ? 1024 : 2048,
                   512, 2048, b == 1 ? 2 : 1);
    return out;
}

OpCount
resnet50TotalOps()
{
    OpCount ops = 0;
    for (const auto &s : resnet50Convs())
        ops += s.macOps();
    return ops;
}

uint64_t
resnet50WeightCount()
{
    uint64_t w = 0;
    for (const auto &s : resnet50Convs())
        w += s.weightCount();
    return w;
}

ConvSpec
tableOneCnn3x3()
{
    ConvSpec s = conv("cnn_28x28x128_k3", 28, 128, 128, 3, 1);
    s.relu = false; // Table I analyses the conv + bias kernel
    return s;
}

ConvSpec
tableOneCnn1x1()
{
    ConvSpec s = conv("cnn_56x56x64_k1", 56, 64, 256, 1, 1);
    s.relu = false;
    return s;
}

} // namespace bw
