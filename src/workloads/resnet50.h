/**
 * @file
 * ResNet-50 convolutional layer table for the image featurizer of
 * Section VII-C (Table VI). The paper's production featurizer is
 * ResNet-50 with the final dense layer replaced by CPU-side
 * scenario-specific classifiers, so the accelerated portion is the
 * convolutional trunk reproduced here (bottleneck blocks, including
 * the stride-2 projection shortcuts). Pooling layers run outside the
 * MVM datapath and are listed for completeness.
 */

#ifndef BW_WORKLOADS_RESNET50_H
#define BW_WORKLOADS_RESNET50_H

#include <vector>

#include "graph/conv.h"

namespace bw {

/** All convolution layers of the ResNet-50 featurizer, in order. */
std::vector<ConvSpec> resnet50Convs();

/** Total MAC ops of the featurizer's conv trunk. */
OpCount resnet50TotalOps();

/** Total weight elements of the conv trunk. */
uint64_t resnet50WeightCount();

/** The two representative ResNet-50 layers of Table I. */
ConvSpec tableOneCnn3x3(); //!< In 28x28x128, K 128x3x3 (same-pad)
ConvSpec tableOneCnn1x1(); //!< In 56x56x64, K 256x1x1

} // namespace bw

#endif // BW_WORKLOADS_RESNET50_H
