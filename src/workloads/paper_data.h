/**
 * @file
 * Published numbers from the paper's tables and figures, embedded as a
 * dataset so every benchmark harness can print measured-vs-published
 * side by side. All values are transcribed from the ISCA 2018 paper.
 */

#ifndef BW_WORKLOADS_PAPER_DATA_H
#define BW_WORKLOADS_PAPER_DATA_H

#include <optional>
#include <string>
#include <vector>

#include "workloads/deepbench.h"

namespace bw {
namespace paper {

/** One Table I row. */
struct TableOneRow
{
    std::string model;     //!< "LSTM", "GRU", "CNN 3x3", "CNN 1x1"
    std::string dimension;
    double opsMillion;     //!< "Ops" column, in millions
    unsigned udmCycles;
    unsigned sdmCycles;
    unsigned bwCycles;     //!< BW NPU column (per step / per layer)
    std::string data;      //!< data footprint as printed
};
std::vector<TableOneRow> tableOne();

/** One Table III row (hardware implementation results). */
struct TableThreeRow
{
    std::string instance; //!< BW_S5 / BW_A10 / BW_S10
    unsigned mvTiles, lanes, nativeDim, mrfSize, mfus;
    std::string device;
    unsigned alms;
    double almPct;
    unsigned m20ks;
    double m20kPct;
    unsigned dsps;
    double dspPct;
    double freqMhz;
    double peakTflops;
};
std::vector<TableThreeRow> tableThree();

/** One Table V row: the three devices' results for one benchmark. */
struct TableFiveRow
{
    RnnLayerSpec layer;
    double sdmMs;
    double bwMs;
    double bwTflops;
    double bwUtilPct;
    double gpuMs;
    double gpuTflops;
    double gpuUtilPct;
};
std::vector<TableFiveRow> tableFive();

/** Table IV / Table VI scalar facts. */
struct GpuSpec
{
    std::string name;
    double peakTflops;
    double tdpWatts;
    std::string precision;
    std::string process;
};
GpuSpec titanXpSpec(); //!< Table IV
GpuSpec p40Spec();     //!< Table VI

/** Table VI: ResNet-50 featurizer at batch 1. */
struct TableSixRow
{
    std::string device;
    double ips;
    double latencyMs;
};
std::vector<TableSixRow> tableSix();

/** BW_S10 measured peak power (Section VII-B4). */
double bwS10PowerWatts();

/** Paper-reported power efficiency at high utilization (GFLOPS/W). */
double bwS10GflopsPerWatt();

} // namespace paper
} // namespace bw

#endif // BW_WORKLOADS_PAPER_DATA_H
