/**
 * @file
 * Umbrella header for the Brainwave NPU reproduction library.
 *
 * Typical quickstart — one Session wraps compile, functional serving,
 * cycle-level timing, and the concurrent serving engine:
 *
 *   #include "bw/bw.h"
 *
 *   bw::NpuConfig cfg = bw::NpuConfig::bwS10();
 *   bw::Rng rng(42);
 *   bw::GirGraph g = bw::makeLstm(bw::randomLstmWeights(512, 512, rng));
 *   bw::Session s = bw::Session::compile(g, cfg);
 *
 *   // Functional serving (bit-accurate BFP/float16 arithmetic):
 *   auto outputs = s.infer(inputs);
 *
 *   // Performance (cycle-level microarchitecture model):
 *   auto perf = s.time(steps);
 *
 *   // Concurrent serving (worker threads over accelerator replicas):
 *   auto engine = s.serve({.replicas = 2, .queueDepth = 32});
 *   auto fut = engine->submit(inputs);       // Expected<future<Response>>
 *   engine->drain();
 *
 * The pieces remain individually reachable — s.model() is the
 * CompiledModel, s.machine() the installed FuncMachine, s.timer() the
 * NpuTiming instance — and the pre-Session entry points
 * (CompiledModel::install/runSequence, NpuTiming::setTileBeats/run)
 * keep working unchanged.
 */

#ifndef BW_BW_H
#define BW_BW_H

#include "arch/mem_id.h"
#include "arch/npu_config.h"
#include "baseline/gpu_model.h"
#include "bfp/bfp.h"
#include "bfp/float16.h"
#include "cluster/chaos.h"
#include "cluster/cluster.h"
#include "cluster/router.h"
#include "cluster/traffic.h"
#include "cluster/weight_cache.h"
#include "common/env_doc.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"
#include "common/units.h"
#include "compiler/conv_lowering.h"
#include "compiler/lowering.h"
#include "critpath/conv_critpath.h"
#include "critpath/critpath.h"
#include "func/machine.h"
#include "graph/builders.h"
#include "graph/conv.h"
#include "graph/gir.h"
#include "isa/analysis.h"
#include "isa/assembler.h"
#include "isa/builder.h"
#include "isa/encoding.h"
#include "isa/validate.h"
#include "metrics/exposition.h"
#include "metrics/http_server.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "obs/chrome_trace.h"
#include "obs/fleet.h"
#include "obs/flight.h"
#include "obs/incident.h"
#include "obs/span.h"
#include "obs/stall.h"
#include "obs/trace.h"
#include "refmodel/conv_ref.h"
#include "refmodel/rnn_ref.h"
#include "runtime/multi_fpga.h"
#include "runtime/serving.h"
#include "serve/engine.h"
#include "serve/session.h"
#include "serve/slo.h"
#include "synth/resource_model.h"
#include "tensor/tensor.h"
#include "timing/npu_timing.h"
#include "timing/timing_model.h"
#include "workloads/deepbench.h"
#include "workloads/paper_data.h"
#include "workloads/resnet50.h"

#endif // BW_BW_H
