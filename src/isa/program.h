/**
 * @file
 * Program container and instruction-chain extraction.
 *
 * A BW program is a linear sequence of instructions; dependent
 * instructions are grouped into atomic chains that pass values directly
 * from one operation to the next with no named intermediate storage
 * (Section IV-C, "Instruction Chaining"). Chains begin with v_rd or m_rd
 * (the only instructions producing a chain output without an input) and
 * terminate with one or more writes; a trailing group of v_wr instructions
 * multicasts the final value to several destinations.
 */

#ifndef BW_ISA_PROGRAM_H
#define BW_ISA_PROGRAM_H

#include <cstddef>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace bw {

/** A contiguous chain of instructions within a program. */
struct Chain
{
    enum class Kind : uint8_t
    {
        Vector, //!< v_rd ... v_wr [v_wr ...]
        Matrix, //!< m_rd, m_wr
        Scalar  //!< a lone s_wr control write
    };

    Kind kind = Kind::Vector;
    size_t first = 0; //!< index of the first instruction in the program
    size_t count = 0; //!< number of instructions (excluding end_chain)
    bool hasMvMul = false;
    /** Value of the Rows/Cols scalar registers when this chain issues. */
    uint32_t rows = 1;
    uint32_t cols = 1;
    /**
     * Iterations register: the chain configuration repeats this many
     * times, advancing v_rd/v_wr addresses by their width each
     * repetition while mv_mul weights and vv_* secondary operands stay
     * fixed. One configured chain can thereby sweep e.g. every output
     * position of a convolution (mega-SIMD execution, Section IV-C).
     */
    uint32_t iters = 1;
    /** Iterations also stride the vv_* secondary operands (IterStride). */
    bool strideOperands = false;

    size_t end() const { return first + count; }
};

/**
 * An executable BW NPU program: the linearized operators of the
 * accelerated sub-graph, as emitted by the compiler or assembler.
 */
class Program
{
  public:
    Program() = default;

    /** Append one instruction. */
    void
    push(const Instruction &inst)
    {
        insts_.push_back(inst);
    }

    size_t size() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }
    const Instruction &operator[](size_t i) const { return insts_[i]; }
    const std::vector<Instruction> &instructions() const { return insts_; }

    /**
     * Split the program into chains, tracking scalar-register state so
     * each chain records the Rows/Cols scaling in effect when it issues.
     * Throws bw::Error on structural violations (e.g. a chain-input
     * instruction with no live chain, or an unterminated chain).
     */
    std::vector<Chain> chains() const;

    /** Disassemble to text, one instruction per line. */
    std::string toString() const;

    /** Concatenate another program after this one. */
    void append(const Program &other);

  private:
    std::vector<Instruction> insts_;
};

} // namespace bw

#endif // BW_ISA_PROGRAM_H
