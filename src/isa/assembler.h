/**
 * @file
 * Textual assembler and disassembler for the BW NPU ISA.
 *
 * Syntax (one instruction per line, matching Instruction::toString()):
 *
 *   # comment, or // comment
 *   .def ivrf_xt 4            ; symbolic constant definition
 *   s_wr rows, 5
 *   v_rd netq
 *   v_wr ivrf, ivrf_xt
 *   v_rd ivrf, ivrf_xt
 *   mv_mul 0
 *   vv_add 3
 *   v_sigm
 *   v_wr asvrf, 7
 *   end_chain
 *
 * Memory spaces use their mnemonics (ivrf, asvrf, mulvrf, mrf, netq,
 * dram). Index operands are decimal literals or .def'd symbols.
 */

#ifndef BW_ISA_ASSEMBLER_H
#define BW_ISA_ASSEMBLER_H

#include <string>

#include "isa/program.h"

namespace bw {

/** Assemble source text into a program; throws bw::Error with line info. */
Program assemble(const std::string &source);

/** Disassemble a program to assembler-compatible text. */
std::string disassemble(const Program &prog);

} // namespace bw

#endif // BW_ISA_ASSEMBLER_H
