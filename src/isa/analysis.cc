#include "isa/analysis.h"

#include "common/logging.h"

namespace bw {

OpCount
instructionOps(const Instruction &inst, uint32_t rows, uint32_t cols,
               const NpuConfig &cfg)
{
    uint64_t n = cfg.nativeDim;
    switch (opcodeInfo(inst.op).unit) {
      case UnitClass::Mvm:
        // R*N x C*N matrix against a C*N vector: one multiply and one
        // add per matrix element.
        return 2ull * rows * n * cols * n;
      case UnitClass::MfuAddSub:
      case UnitClass::MfuMul:
      case UnitClass::MfuAct:
        // One primitive op per element of the R-vector-wide chain value.
        return static_cast<uint64_t>(rows) * n;
      default:
        return 0;
    }
}

ProgramStats
analyzeProgram(const Program &prog, const NpuConfig &cfg)
{
    ProgramStats s;
    s.instructions = prog.size();
    auto chains = prog.chains();
    for (const Chain &c : chains) {
        switch (c.kind) {
          case Chain::Kind::Scalar:
            ++s.scalarWrites;
            continue;
          case Chain::Kind::Matrix:
            ++s.chains;
            ++s.matrixChains;
            s.vectorsMoved += static_cast<uint64_t>(c.rows) * c.cols *
                              cfg.nativeDim; // one tile = N native rows
            continue;
          case Chain::Kind::Vector:
            ++s.chains;
            ++s.vectorChains;
            break;
        }
        for (size_t i = c.first; i < c.end(); ++i) {
            const Instruction &inst = prog[i];
            OpCount ops =
                instructionOps(inst, c.rows, c.cols, cfg) * c.iters;
            s.totalOps += ops;
            if (inst.op == Opcode::MvMul)
                s.mvmOps += ops;
            else if (isMfuOp(inst.op))
                s.mfuOps += ops;
            s.maxOpsPerInstruction = std::max(s.maxOpsPerInstruction, ops);
            if (inst.op == Opcode::VRd) {
                s.vectorsMoved +=
                    static_cast<uint64_t>(c.hasMvMul ? c.cols : c.rows) *
                    c.iters;
            } else if (inst.op == Opcode::VWr) {
                s.vectorsMoved += static_cast<uint64_t>(c.rows) * c.iters;
            }
        }
    }
    return s;
}

} // namespace bw
