/**
 * @file
 * Static program analysis: primitive-operation expansion accounting.
 *
 * A single compound BW instruction expands through hierarchical decode
 * and dispatch into up to millions of primitive operations (Section IV-C
 * reports over 7M ops dispatched from one instruction in the largest
 * GRU). This module computes, per instruction and per program, how many
 * primitive arithmetic operations each compound instruction dispatches
 * on a given NPU configuration.
 */

#ifndef BW_ISA_ANALYSIS_H
#define BW_ISA_ANALYSIS_H

#include <cstdint>
#include <vector>

#include "arch/npu_config.h"
#include "common/units.h"
#include "isa/program.h"

namespace bw {

/** Expansion accounting for one program on one configuration. */
struct ProgramStats
{
    uint64_t instructions = 0;   //!< total instructions
    uint64_t chains = 0;         //!< vector + matrix chains
    uint64_t vectorChains = 0;
    uint64_t matrixChains = 0;
    uint64_t scalarWrites = 0;
    OpCount totalOps = 0;        //!< primitive arithmetic ops dispatched
    OpCount mvmOps = 0;          //!< ops dispatched into the MVM
    OpCount mfuOps = 0;          //!< ops dispatched into the MFUs
    OpCount maxOpsPerInstruction = 0; //!< the mega-SIMD headline number
    /** Native vectors moved between memories (v_rd/v_wr traffic). */
    uint64_t vectorsMoved = 0;
};

/**
 * Primitive arithmetic ops dispatched by one instruction given the
 * Rows/Cols scaling in effect. mv_mul with RxC native tiles dispatches
 * 2 * (R*N) * (C*N) multiply/add ops; point-wise ops dispatch R*N (or
 * 2*R*N for fused multiply-style ops counted as one op per element here,
 * matching the paper's op accounting of 2 ops per MAC and 1 per
 * point-wise element).
 */
OpCount instructionOps(const Instruction &inst, uint32_t rows,
                       uint32_t cols, const NpuConfig &cfg);

/** Analyze @p prog under @p cfg. */
ProgramStats analyzeProgram(const Program &prog, const NpuConfig &cfg);

} // namespace bw

#endif // BW_ISA_ANALYSIS_H
