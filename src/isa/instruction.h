/**
 * @file
 * A single BW NPU instruction and the scalar control registers.
 */

#ifndef BW_ISA_INSTRUCTION_H
#define BW_ISA_INSTRUCTION_H

#include <cstdint>
#include <string>

#include "arch/mem_id.h"
#include "isa/opcode.h"

namespace bw {

/**
 * Scalar control registers written by s_wr (Section IV-C, "Mega-SIMD
 * execution"). Rows and Cols scale subsequent chains: an mv_mul treats
 * Rows*Cols consecutive MRF entries as a tiled (Rows*N) x (Cols*N) matrix,
 * consuming Cols input vectors and producing Rows output vectors, and the
 * other instructions in the chain scale accordingly.
 */
enum class ScalarReg : uint8_t
{
    Rows = 0,   //!< mega-SIMD row tiles
    Cols,       //!< mega-SIMD column tiles
    Iterations, //!< chain repetition count (mega-SIMD iteration)
    /**
     * When non-zero, iterated chains also advance their vv_* secondary
     * operand addresses by the chain width each repetition (instead of
     * holding them fixed). This is the batch-interleaving mode of
     * Section VII-B3's future-work optimization: one configured chain
     * sweeps the per-sample operands of a whole batch.
     */
    IterStride,
    NumScalarRegs
};

/** Mnemonic of a scalar register ("rows", "cols", "iters"). */
const char *scalarRegName(ScalarReg r);

/** Parse a scalar register mnemonic; throws bw::Error. */
ScalarReg parseScalarReg(const std::string &s);

/**
 * One decoded instruction. Fields not used by the opcode (per
 * OpcodeInfo) must be left at their defaults; validation enforces this.
 */
struct Instruction
{
    Opcode op = Opcode::EndChain;
    /** Memory space operand (v_rd/v_wr/m_rd/m_wr). */
    MemId mem = MemId::InitialVrf;
    /** Memory / register-file / scalar-register index. */
    uint32_t addr = 0;
    /** Immediate value (s_wr only). */
    int64_t value = 0;

    bool operator==(const Instruction &o) const = default;

    /** Render in assembly syntax, e.g. "v_wr asvrf, 12". */
    std::string toString() const;

    // --- Convenience constructors. ---
    static Instruction vRd(MemId mem, uint32_t addr = 0);
    static Instruction vWr(MemId mem, uint32_t addr = 0);
    static Instruction mRd(MemId mem, uint32_t addr = 0);
    static Instruction mWr(MemId mem, uint32_t addr = 0);
    static Instruction mvMul(uint32_t mrf_addr);
    static Instruction vvAdd(uint32_t asvrf_addr);
    static Instruction vvASubB(uint32_t asvrf_addr);
    static Instruction vvBSubA(uint32_t asvrf_addr);
    static Instruction vvMax(uint32_t asvrf_addr);
    static Instruction vvMul(uint32_t mulvrf_addr);
    static Instruction vRelu();
    static Instruction vSigm();
    static Instruction vTanh();
    static Instruction sWr(ScalarReg reg, int64_t value);
    static Instruction endChain();
};

} // namespace bw

#endif // BW_ISA_INSTRUCTION_H
