/**
 * @file
 * Fluent program builder mirroring the paper's software-macro style
 * (Section IV-C shows an LSTM written against C macros that generate BW
 * NPU instructions). Example:
 *
 *   ProgramBuilder b;
 *   b.sWr(ScalarReg::Rows, 5).sWr(ScalarReg::Cols, 5);
 *   b.vRd(MemId::InitialVrf, ivrf_xt)
 *    .mvMul(mrf_Wf)
 *    .vvAdd(asvrf_bf)
 *    .vWr(MemId::AddSubVrf, asvrf_xWf);
 *   Program p = b.build();
 */

#ifndef BW_ISA_BUILDER_H
#define BW_ISA_BUILDER_H

#include "isa/program.h"

namespace bw {

/** Incremental builder over a Program; build() checks chain structure. */
class ProgramBuilder
{
  public:
    ProgramBuilder &vRd(MemId mem, uint32_t addr = 0);
    ProgramBuilder &vWr(MemId mem, uint32_t addr = 0);
    ProgramBuilder &mRd(MemId mem, uint32_t addr = 0);
    ProgramBuilder &mWr(MemId mem, uint32_t addr = 0);
    ProgramBuilder &mvMul(uint32_t mrf_addr);
    ProgramBuilder &vvAdd(uint32_t asvrf_addr);
    ProgramBuilder &vvASubB(uint32_t asvrf_addr);
    ProgramBuilder &vvBSubA(uint32_t asvrf_addr);
    ProgramBuilder &vvMax(uint32_t asvrf_addr);
    ProgramBuilder &vvMul(uint32_t mulvrf_addr);
    ProgramBuilder &vRelu();
    ProgramBuilder &vSigm();
    ProgramBuilder &vTanh();
    ProgramBuilder &sWr(ScalarReg reg, int64_t value);
    ProgramBuilder &endChain();

    /** Set Rows and Cols in one call. */
    ProgramBuilder &
    tile(uint32_t rows, uint32_t cols)
    {
        sWr(ScalarReg::Rows, rows);
        return sWr(ScalarReg::Cols, cols);
    }

    /** Number of instructions emitted so far. */
    size_t size() const { return prog_.size(); }

    /**
     * Finish and return the program. Verifies chain structure (chains()
     * succeeds); throws bw::Error otherwise.
     */
    Program build() const;

    /** Access the program without structural verification. */
    const Program &raw() const { return prog_; }

  private:
    Program prog_;
};

} // namespace bw

#endif // BW_ISA_BUILDER_H
