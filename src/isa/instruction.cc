#include "isa/instruction.h"

#include <sstream>

#include "common/logging.h"

namespace bw {

const char *
scalarRegName(ScalarReg r)
{
    switch (r) {
      case ScalarReg::Rows: return "rows";
      case ScalarReg::Cols: return "cols";
      case ScalarReg::Iterations: return "iters";
      case ScalarReg::IterStride: return "istride";
      default: BW_PANIC("bad ScalarReg %d", static_cast<int>(r));
    }
}

ScalarReg
parseScalarReg(const std::string &s)
{
    for (int i = 0; i < static_cast<int>(ScalarReg::NumScalarRegs); ++i) {
        ScalarReg r = static_cast<ScalarReg>(i);
        if (s == scalarRegName(r))
            return r;
    }
    BW_FATAL("unknown scalar register '%s'", s.c_str());
}

std::string
Instruction::toString() const
{
    const OpcodeInfo &info = opcodeInfo(op);
    std::ostringstream os;
    os << info.name;
    if (op == Opcode::SWr) {
        os << ' ' << scalarRegName(static_cast<ScalarReg>(addr)) << ", "
           << value;
        return os.str();
    }
    if (info.hasMemOperand) {
        os << ' ' << memIdMnemonic(mem);
        if (mem != MemId::NetQ)
            os << ", " << addr;
    } else if (info.hasIndex) {
        os << ' ' << addr;
    }
    return os.str();
}

namespace {

Instruction
make(Opcode op, MemId mem, uint32_t addr, int64_t value = 0)
{
    Instruction i;
    i.op = op;
    i.mem = mem;
    i.addr = addr;
    i.value = value;
    return i;
}

} // namespace

Instruction
Instruction::vRd(MemId mem, uint32_t addr)
{
    return make(Opcode::VRd, mem, addr);
}

Instruction
Instruction::vWr(MemId mem, uint32_t addr)
{
    return make(Opcode::VWr, mem, addr);
}

Instruction
Instruction::mRd(MemId mem, uint32_t addr)
{
    return make(Opcode::MRd, mem, addr);
}

Instruction
Instruction::mWr(MemId mem, uint32_t addr)
{
    return make(Opcode::MWr, mem, addr);
}

Instruction
Instruction::mvMul(uint32_t mrf_addr)
{
    return make(Opcode::MvMul, MemId::MatrixRf, mrf_addr);
}

Instruction
Instruction::vvAdd(uint32_t asvrf_addr)
{
    return make(Opcode::VvAdd, MemId::AddSubVrf, asvrf_addr);
}

Instruction
Instruction::vvASubB(uint32_t asvrf_addr)
{
    return make(Opcode::VvASubB, MemId::AddSubVrf, asvrf_addr);
}

Instruction
Instruction::vvBSubA(uint32_t asvrf_addr)
{
    return make(Opcode::VvBSubA, MemId::AddSubVrf, asvrf_addr);
}

Instruction
Instruction::vvMax(uint32_t asvrf_addr)
{
    return make(Opcode::VvMax, MemId::AddSubVrf, asvrf_addr);
}

Instruction
Instruction::vvMul(uint32_t mulvrf_addr)
{
    return make(Opcode::VvMul, MemId::MultiplyVrf, mulvrf_addr);
}

Instruction
Instruction::vRelu()
{
    return make(Opcode::VRelu, MemId::InitialVrf, 0);
}

Instruction
Instruction::vSigm()
{
    return make(Opcode::VSigm, MemId::InitialVrf, 0);
}

Instruction
Instruction::vTanh()
{
    return make(Opcode::VTanh, MemId::InitialVrf, 0);
}

Instruction
Instruction::sWr(ScalarReg reg, int64_t value)
{
    return make(Opcode::SWr, MemId::InitialVrf,
                static_cast<uint32_t>(reg), value);
}

Instruction
Instruction::endChain()
{
    return make(Opcode::EndChain, MemId::InitialVrf, 0);
}

} // namespace bw
