#include "isa/encoding.h"

#include <cstring>

#include "common/logging.h"

namespace bw {

namespace {

constexpr char kMagic[8] = {'B', 'W', 'N', 'P', 'U', 'I', 'S', 'A'};
constexpr uint32_t kVersion = 1;

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
get32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

uint64_t
get64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

} // namespace

std::vector<uint8_t>
encodeProgram(const Program &prog)
{
    std::vector<uint8_t> out;
    out.reserve(encodedSize(prog.size()));
    for (char ch : kMagic)
        out.push_back(static_cast<uint8_t>(ch));
    put32(out, kVersion);
    put32(out, static_cast<uint32_t>(prog.size()));
    for (const Instruction &inst : prog.instructions()) {
        out.push_back(static_cast<uint8_t>(inst.op));
        out.push_back(static_cast<uint8_t>(inst.mem));
        out.push_back(0);
        out.push_back(0);
        put32(out, inst.addr);
        put64(out, static_cast<uint64_t>(inst.value));
    }
    return out;
}

Program
decodeProgram(const std::vector<uint8_t> &image)
{
    if (image.size() < 16 || std::memcmp(image.data(), kMagic, 8) != 0)
        BW_FATAL("bad BW binary: missing magic");
    uint32_t version = get32(image.data() + 8);
    if (version != kVersion)
        BW_FATAL("bad BW binary: unsupported version %u", version);
    uint32_t count = get32(image.data() + 12);
    if (image.size() != encodedSize(count))
        BW_FATAL("bad BW binary: truncated (%zu bytes for %u instructions)",
                 image.size(), count);

    Program prog;
    const uint8_t *p = image.data() + 16;
    for (uint32_t i = 0; i < count; ++i, p += 16) {
        Instruction inst;
        if (p[0] >= static_cast<uint8_t>(Opcode::NumOpcodes))
            BW_FATAL("bad BW binary: invalid opcode %u at %u", p[0], i);
        if (p[1] >= static_cast<uint8_t>(MemId::NumMemIds))
            BW_FATAL("bad BW binary: invalid memory id %u at %u", p[1], i);
        inst.op = static_cast<Opcode>(p[0]);
        inst.mem = static_cast<MemId>(p[1]);
        inst.addr = get32(p + 4);
        inst.value = static_cast<int64_t>(get64(p + 8));
        prog.push(inst);
    }
    return prog;
}

} // namespace bw
