#include "isa/validate.h"

#include <sstream>

#include "common/logging.h"

namespace bw {

unsigned
mfusRequired(const std::vector<Opcode> &pointwise_ops)
{
    unsigned segments = 0;
    bool used_add = false, used_mul = false, used_act = false;
    bool open = false;
    for (Opcode op : pointwise_ops) {
        UnitClass u = opcodeInfo(op).unit;
        BW_ASSERT(isMfuOp(op), "non-MFU op %s in pointwise sequence",
                  opcodeName(op));
        bool *slot = nullptr;
        switch (u) {
          case UnitClass::MfuAddSub: slot = &used_add; break;
          case UnitClass::MfuMul: slot = &used_mul; break;
          case UnitClass::MfuAct: slot = &used_act; break;
          default: BW_PANIC("unexpected unit class");
        }
        if (!open || *slot) {
            // Start a new MFU segment.
            ++segments;
            used_add = used_mul = used_act = false;
            open = true;
        }
        *slot = true;
    }
    return segments;
}

namespace {

/** Capacity in native entries of the vector space @p mem, or 0 if n/a. */
uint64_t
vrfCapacity(MemId mem, const NpuConfig &cfg)
{
    switch (mem) {
      case MemId::InitialVrf: return cfg.initialVrfSize;
      case MemId::AddSubVrf: return cfg.addSubVrfSize;
      case MemId::MultiplyVrf: return cfg.multiplyVrfSize;
      default: return 0;
    }
}

void
checkFootprint(std::vector<std::string> &diags, size_t idx,
               const Instruction &inst, uint64_t width,
               const NpuConfig &cfg)
{
    if (inst.mem == MemId::NetQ)
        return; // queues have no index
    if (inst.mem == MemId::Dram) {
        uint64_t bytes_per_vec = static_cast<uint64_t>(cfg.nativeDim) * 2;
        uint64_t end = (static_cast<uint64_t>(inst.addr) + width) *
                       bytes_per_vec;
        if (end > cfg.dramBytes) {
            std::ostringstream os;
            os << "instruction " << idx << ": " << inst.toString()
               << " overruns DRAM (" << end << " > " << cfg.dramBytes
               << " bytes)";
            diags.push_back(os.str());
        }
        return;
    }
    uint64_t cap = vrfCapacity(inst.mem, cfg);
    BW_ASSERT(cap > 0);
    if (inst.addr + width > cap) {
        std::ostringstream os;
        os << "instruction " << idx << ": " << inst.toString()
           << " footprint [" << inst.addr << ", " << inst.addr + width
           << ") exceeds " << memIdName(inst.mem) << " capacity " << cap;
        diags.push_back(os.str());
    }
}

} // namespace

std::vector<std::string>
validateProgram(const Program &prog, const NpuConfig &cfg)
{
    cfg.validate();
    std::vector<std::string> diags;

    std::vector<Chain> chains;
    try {
        chains = prog.chains();
    } catch (const Error &e) {
        diags.push_back(e.what());
        return diags;
    }

    for (const Chain &c : chains) {
        if (c.kind == Chain::Kind::Scalar) {
            const Instruction &inst = prog[c.first];
            if (inst.addr >=
                static_cast<uint32_t>(ScalarReg::NumScalarRegs)) {
                diags.push_back(detail::format(
                    "instruction %zu: s_wr to unknown scalar register %u",
                    c.first, inst.addr));
            }
            continue;
        }

        if (c.kind == Chain::Kind::Matrix) {
            const Instruction &rd = prog[c.first];
            const Instruction &wr = prog[c.first + 1];
            if (rd.mem != MemId::NetQ && rd.mem != MemId::Dram) {
                diags.push_back(detail::format(
                    "instruction %zu: m_rd source must be NetQ or Dram, "
                    "got %s", c.first, memIdName(rd.mem)));
            }
            if (wr.mem != MemId::MatrixRf && wr.mem != MemId::Dram) {
                diags.push_back(detail::format(
                    "instruction %zu: m_wr target must be MatrixRf or "
                    "Dram, got %s", c.first + 1, memIdName(wr.mem)));
            }
            uint64_t tiles = static_cast<uint64_t>(c.rows) * c.cols;
            if (wr.mem == MemId::MatrixRf &&
                wr.addr + tiles > cfg.mrfEntries()) {
                diags.push_back(detail::format(
                    "instruction %zu: m_wr footprint [%u, %llu) exceeds "
                    "MRF capacity %u tiles", c.first + 1, wr.addr,
                    static_cast<unsigned long long>(wr.addr + tiles),
                    cfg.mrfEntries()));
            }
            continue;
        }

        // Vector chain. Iterated chains advance v_rd/v_wr addresses by
        // their width each repetition, so footprints scale with iters;
        // secondary operands and the mv_mul weights stay fixed.
        uint64_t in_width = c.hasMvMul ? c.cols : c.rows;
        uint64_t out_width = c.rows;
        uint64_t in_span = in_width * c.iters;
        uint64_t out_span = out_width * c.iters;
        std::vector<Opcode> pointwise;
        for (size_t i = c.first; i < c.end(); ++i) {
            const Instruction &inst = prog[i];
            switch (inst.op) {
              case Opcode::VRd:
                if (!isVectorReadable(inst.mem)) {
                    diags.push_back(detail::format(
                        "instruction %zu: v_rd cannot source from %s", i,
                        memIdName(inst.mem)));
                }
                checkFootprint(diags, i, inst, in_span, cfg);
                break;
              case Opcode::VWr:
                if (!isVectorWritable(inst.mem)) {
                    diags.push_back(detail::format(
                        "instruction %zu: v_wr cannot sink to %s", i,
                        memIdName(inst.mem)));
                }
                checkFootprint(diags, i, inst, out_span, cfg);
                break;
              case Opcode::MvMul: {
                uint64_t tiles = static_cast<uint64_t>(c.rows) * c.cols;
                if (inst.addr + tiles > cfg.mrfEntries()) {
                    diags.push_back(detail::format(
                        "instruction %zu: mv_mul footprint [%u, %llu) "
                        "exceeds MRF capacity %u tiles", i, inst.addr,
                        static_cast<unsigned long long>(inst.addr + tiles),
                        cfg.mrfEntries()));
                }
                break;
              }
              default:
                if (isMfuOp(inst.op)) {
                    pointwise.push_back(inst.op);
                    if (opcodeInfo(inst.op).hasIndex) {
                        checkFootprint(diags, i, inst,
                                       c.strideOperands ? out_span
                                                        : out_width,
                                       cfg);
                    }
                }
                break;
            }
        }
        unsigned need = mfusRequired(pointwise);
        if (need > cfg.mfus) {
            diags.push_back(detail::format(
                "chain at instruction %zu needs %u MFUs but %s has only "
                "%u (point-wise sequence too long for the pipeline)",
                c.first, need, cfg.name.c_str(), cfg.mfus));
        }
    }
    return diags;
}

void
checkProgram(const Program &prog, const NpuConfig &cfg)
{
    auto diags = validateProgram(prog, cfg);
    if (diags.empty())
        return;
    std::ostringstream os;
    os << "program fails validation for " << cfg.name << ":";
    for (const auto &d : diags)
        os << "\n  - " << d;
    throw Error(os.str());
}

} // namespace bw
