#include "isa/assembler.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.h"

namespace bw {

namespace {

/** Split a line into whitespace/comma separated tokens. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    std::string cur;
    for (char ch : line) {
        if (std::isspace(static_cast<unsigned char>(ch)) || ch == ',') {
            if (!cur.empty()) {
                toks.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(ch);
        }
    }
    if (!cur.empty())
        toks.push_back(cur);
    return toks;
}

/** Strip '#', '//' and ';' comments. */
std::string
stripComment(const std::string &line)
{
    size_t pos = line.size();
    for (size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '#' || line[i] == ';' ||
            (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/')) {
            pos = i;
            break;
        }
    }
    return line.substr(0, pos);
}

int64_t
parseNumber(const std::string &tok, const std::map<std::string, int64_t> &sym,
            int lineno)
{
    auto it = sym.find(tok);
    if (it != sym.end())
        return it->second;
    try {
        size_t consumed = 0;
        int64_t v = std::stoll(tok, &consumed, 0);
        if (consumed != tok.size())
            throw std::invalid_argument(tok);
        return v;
    } catch (const std::exception &) {
        BW_FATAL("line %d: '%s' is neither a number nor a defined symbol",
                 lineno, tok.c_str());
    }
}

} // namespace

Program
assemble(const std::string &source)
{
    Program prog;
    std::map<std::string, int64_t> symbols;
    std::istringstream in(source);
    std::string raw;
    int lineno = 0;

    while (std::getline(in, raw)) {
        ++lineno;
        auto toks = tokenize(stripComment(raw));
        if (toks.empty())
            continue;

        if (toks[0] == ".def") {
            if (toks.size() != 3)
                BW_FATAL("line %d: .def expects a name and a value", lineno);
            symbols[toks[1]] = parseNumber(toks[2], symbols, lineno);
            continue;
        }

        Opcode op;
        try {
            op = parseOpcode(toks[0]);
        } catch (const Error &) {
            BW_FATAL("line %d: unknown mnemonic '%s'", lineno,
                     toks[0].c_str());
        }
        const OpcodeInfo &info = opcodeInfo(op);
        Instruction inst;
        inst.op = op;
        // Canonicalize the implicit memory space of register-implicit ops
        // so assembled instructions compare equal to builder-made ones.
        switch (info.unit) {
          case UnitClass::Mvm: inst.mem = MemId::MatrixRf; break;
          case UnitClass::MfuAddSub: inst.mem = MemId::AddSubVrf; break;
          case UnitClass::MfuMul: inst.mem = MemId::MultiplyVrf; break;
          default: break;
        }
        size_t next = 1;

        if (op == Opcode::SWr) {
            if (toks.size() != 3)
                BW_FATAL("line %d: s_wr expects a register and a value",
                         lineno);
            inst.addr = static_cast<uint32_t>(parseScalarReg(toks[1]));
            inst.value = parseNumber(toks[2], symbols, lineno);
            prog.push(inst);
            continue;
        }

        if (info.hasMemOperand) {
            if (next >= toks.size())
                BW_FATAL("line %d: %s expects a memory space", lineno,
                         info.name);
            inst.mem = parseMemId(toks[next++]);
            if (inst.mem != MemId::NetQ) {
                if (next >= toks.size())
                    BW_FATAL("line %d: %s %s expects an index", lineno,
                             info.name, memIdMnemonic(inst.mem));
                int64_t v = parseNumber(toks[next++], symbols, lineno);
                if (v < 0)
                    BW_FATAL("line %d: negative index %lld", lineno,
                             static_cast<long long>(v));
                inst.addr = static_cast<uint32_t>(v);
            }
        } else if (info.hasIndex) {
            if (next >= toks.size())
                BW_FATAL("line %d: %s expects an index", lineno, info.name);
            int64_t v = parseNumber(toks[next++], symbols, lineno);
            if (v < 0)
                BW_FATAL("line %d: negative index %lld", lineno,
                         static_cast<long long>(v));
            inst.addr = static_cast<uint32_t>(v);
        }
        if (next != toks.size())
            BW_FATAL("line %d: trailing operands after '%s'", lineno,
                     info.name);
        prog.push(inst);
    }
    return prog;
}

std::string
disassemble(const Program &prog)
{
    return prog.toString();
}

} // namespace bw
