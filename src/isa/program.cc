#include "isa/program.h"

#include <sstream>

#include "common/logging.h"

namespace bw {

std::vector<Chain>
Program::chains() const
{
    std::vector<Chain> out;
    uint32_t rows = 1, cols = 1, iters = 1;
    bool stride_operands = false;

    size_t i = 0;
    while (i < insts_.size()) {
        const Instruction &inst = insts_[i];
        const OpcodeInfo &info = opcodeInfo(inst.op);

        if (inst.op == Opcode::SWr) {
            Chain c;
            c.kind = Chain::Kind::Scalar;
            c.first = i;
            c.count = 1;
            c.rows = rows;
            c.cols = cols;
            c.iters = iters;
            out.push_back(c);
            auto reg = static_cast<ScalarReg>(inst.addr);
            if (inst.value <= 0 && reg != ScalarReg::IterStride) {
                BW_FATAL("instruction %zu: s_wr %s with non-positive "
                         "value %lld", i, scalarRegName(reg),
                         static_cast<long long>(inst.value));
            }
            if (reg == ScalarReg::Rows)
                rows = static_cast<uint32_t>(inst.value);
            else if (reg == ScalarReg::Cols)
                cols = static_cast<uint32_t>(inst.value);
            else if (reg == ScalarReg::Iterations)
                iters = static_cast<uint32_t>(inst.value);
            else if (reg == ScalarReg::IterStride)
                stride_operands = inst.value != 0;
            ++i;
            continue;
        }

        if (inst.op == Opcode::EndChain) {
            BW_FATAL("instruction %zu: end_chain with no open chain", i);
        }

        if (inst.op == Opcode::MRd) {
            if (i + 1 >= insts_.size() || insts_[i + 1].op != Opcode::MWr) {
                BW_FATAL("instruction %zu: m_rd must be followed by m_wr "
                         "(matrix chains are exactly two instructions)", i);
            }
            Chain c;
            c.kind = Chain::Kind::Matrix;
            c.first = i;
            c.count = 2;
            c.rows = rows;
            c.cols = cols;
            c.iters = 1; // iterations do not apply to matrix moves
            out.push_back(c);
            i += 2;
            if (i < insts_.size() && insts_[i].op == Opcode::EndChain)
                ++i;
            continue;
        }

        if (inst.op != Opcode::VRd) {
            BW_FATAL("instruction %zu: %s requires a chain input but no "
                     "chain is open (chains begin with v_rd or m_rd)", i,
                     info.name);
        }

        // Vector chain: v_rd, [mv_mul], pointwise ops, one or more v_wr.
        Chain c;
        c.kind = Chain::Kind::Vector;
        c.first = i;
        c.rows = rows;
        c.cols = cols;
        c.iters = iters;
        c.strideOperands = stride_operands;
        size_t j = i + 1;
        bool in_writes = false;
        bool saw_write = false;
        for (; j < insts_.size(); ++j) {
            const Instruction &cur = insts_[j];
            if (cur.op == Opcode::EndChain)
                break;
            if (cur.op == Opcode::VWr) {
                in_writes = true;
                saw_write = true;
                continue;
            }
            if (in_writes)
                break; // chain ended at the last v_wr of the multicast
            if (cur.op == Opcode::MvMul) {
                if (j != i + 1) {
                    BW_FATAL("instruction %zu: mv_mul must immediately "
                             "follow the chain's v_rd (the MVM sits at the "
                             "head of the pipeline)", j);
                }
                c.hasMvMul = true;
                continue;
            }
            if (isMfuOp(cur.op))
                continue;
            // v_rd / m_rd / m_wr / s_wr inside an open chain.
            BW_FATAL("instruction %zu: %s cannot appear inside an open "
                     "vector chain", j, opcodeInfo(cur.op).name);
        }
        if (!saw_write) {
            BW_FATAL("instruction %zu: vector chain starting here never "
                     "sinks to a v_wr", i);
        }
        c.count = j - i;
        out.push_back(c);
        i = j;
        if (i < insts_.size() && insts_[i].op == Opcode::EndChain)
            ++i;
    }
    return out;
}

std::string
Program::toString() const
{
    std::ostringstream os;
    for (const auto &inst : insts_)
        os << inst.toString() << '\n';
    return os.str();
}

void
Program::append(const Program &other)
{
    insts_.insert(insts_.end(), other.insts_.begin(), other.insts_.end());
}

} // namespace bw
