/**
 * @file
 * Configuration-dependent program validation.
 *
 * Beyond the structural chain rules checked by Program::chains(), a
 * program is only executable on a particular NPU instance if:
 *  - every memory operand is legal for its opcode (Table II: m_rd from
 *    NetQ or DRAM only; m_wr to MatrixRf or DRAM only; v_rd/v_wr to a
 *    VRF, NetQ, or DRAM),
 *  - mega-SIMD-scaled address footprints fit the register files,
 *  - the point-wise operations of each chain can be routed through the
 *    configured number of multifunction units, where each MFU provides
 *    one add/subtract unit, one multiply unit and one activation unit
 *    reachable in any order via its internal crossbar (Section V-B).
 */

#ifndef BW_ISA_VALIDATE_H
#define BW_ISA_VALIDATE_H

#include <string>
#include <vector>

#include "arch/npu_config.h"
#include "isa/program.h"

namespace bw {

/**
 * Minimum number of MFUs needed to execute the given sequence of
 * point-wise ops in order, with each MFU providing one unit per
 * UnitClass. Returns 0 for an empty sequence.
 */
unsigned mfusRequired(const std::vector<Opcode> &pointwise_ops);

/**
 * Collect all validation diagnostics for @p prog on @p cfg. An empty
 * result means the program is executable.
 */
std::vector<std::string> validateProgram(const Program &prog,
                                         const NpuConfig &cfg);

/** Throw bw::Error listing all diagnostics unless validation is clean. */
void checkProgram(const Program &prog, const NpuConfig &cfg);

} // namespace bw

#endif // BW_ISA_VALIDATE_H
