/**
 * @file
 * Binary encoding of BW programs.
 *
 * The deployment flow in the paper compiles sub-graphs to "BW NPU ISA
 * binaries" that are shipped to the federated runtime (Section II-B). We
 * define a compact fixed-width 16-byte little-endian encoding:
 *
 *   byte 0      opcode
 *   byte 1      memory-space id
 *   bytes 2-3   reserved (zero)
 *   bytes 4-7   index operand (uint32)
 *   bytes 8-15  immediate value (int64, s_wr only)
 *
 * plus an 16-byte header: magic "BWNPUISA", version (u32), count (u32).
 */

#ifndef BW_ISA_ENCODING_H
#define BW_ISA_ENCODING_H

#include <cstdint>
#include <vector>

#include "isa/program.h"

namespace bw {

/** Serialize a program to its binary image. */
std::vector<uint8_t> encodeProgram(const Program &prog);

/** Deserialize; throws bw::Error on bad magic/version/truncation. */
Program decodeProgram(const std::vector<uint8_t> &image);

/** Encoded size in bytes of a program with @p count instructions. */
constexpr size_t
encodedSize(size_t count)
{
    return 16 + 16 * count;
}

} // namespace bw

#endif // BW_ISA_ENCODING_H
