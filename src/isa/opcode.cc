#include "isa/opcode.h"

#include <array>

#include "common/logging.h"

namespace bw {

namespace {

constexpr size_t kNumOpcodes = static_cast<size_t>(Opcode::NumOpcodes);

// One row per Table II entry: name, IN, OUT, mem?, index?, value?, unit.
const std::array<OpcodeInfo, kNumOpcodes> kOpcodeTable = {{
    {"v_rd", ChainType::None, ChainType::Vector, true, true, false,
     UnitClass::Memory},
    {"v_wr", ChainType::Vector, ChainType::None, true, true, false,
     UnitClass::Memory},
    {"m_rd", ChainType::None, ChainType::Matrix, true, true, false,
     UnitClass::Memory},
    {"m_wr", ChainType::Matrix, ChainType::None, true, true, false,
     UnitClass::Memory},
    {"mv_mul", ChainType::Vector, ChainType::Vector, false, true, false,
     UnitClass::Mvm},
    {"vv_add", ChainType::Vector, ChainType::Vector, false, true, false,
     UnitClass::MfuAddSub},
    {"vv_a_sub_b", ChainType::Vector, ChainType::Vector, false, true, false,
     UnitClass::MfuAddSub},
    {"vv_b_sub_a", ChainType::Vector, ChainType::Vector, false, true, false,
     UnitClass::MfuAddSub},
    {"vv_max", ChainType::Vector, ChainType::Vector, false, true, false,
     UnitClass::MfuAddSub},
    {"vv_mul", ChainType::Vector, ChainType::Vector, false, true, false,
     UnitClass::MfuMul},
    {"v_relu", ChainType::Vector, ChainType::Vector, false, false, false,
     UnitClass::MfuAct},
    {"v_sigm", ChainType::Vector, ChainType::Vector, false, false, false,
     UnitClass::MfuAct},
    {"v_tanh", ChainType::Vector, ChainType::Vector, false, false, false,
     UnitClass::MfuAct},
    {"s_wr", ChainType::None, ChainType::None, false, true, true,
     UnitClass::Control},
    {"end_chain", ChainType::None, ChainType::None, false, false, false,
     UnitClass::Control},
}};

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    size_t idx = static_cast<size_t>(op);
    BW_ASSERT(idx < kNumOpcodes, "bad opcode %zu", idx);
    return kOpcodeTable[idx];
}

Opcode
parseOpcode(const std::string &name)
{
    for (size_t i = 0; i < kNumOpcodes; ++i) {
        if (name == kOpcodeTable[i].name)
            return static_cast<Opcode>(i);
    }
    BW_FATAL("unknown opcode mnemonic '%s'", name.c_str());
}

bool
isMfuOp(Opcode op)
{
    UnitClass u = opcodeInfo(op).unit;
    return u == UnitClass::MfuAddSub || u == UnitClass::MfuMul ||
           u == UnitClass::MfuAct;
}

bool
isPointwiseOp(Opcode op)
{
    return isMfuOp(op);
}

bool
isActivationOp(Opcode op)
{
    return opcodeInfo(op).unit == UnitClass::MfuAct;
}

} // namespace bw
