#include "isa/builder.h"

namespace bw {

ProgramBuilder &
ProgramBuilder::vRd(MemId mem, uint32_t addr)
{
    prog_.push(Instruction::vRd(mem, addr));
    return *this;
}

ProgramBuilder &
ProgramBuilder::vWr(MemId mem, uint32_t addr)
{
    prog_.push(Instruction::vWr(mem, addr));
    return *this;
}

ProgramBuilder &
ProgramBuilder::mRd(MemId mem, uint32_t addr)
{
    prog_.push(Instruction::mRd(mem, addr));
    return *this;
}

ProgramBuilder &
ProgramBuilder::mWr(MemId mem, uint32_t addr)
{
    prog_.push(Instruction::mWr(mem, addr));
    return *this;
}

ProgramBuilder &
ProgramBuilder::mvMul(uint32_t mrf_addr)
{
    prog_.push(Instruction::mvMul(mrf_addr));
    return *this;
}

ProgramBuilder &
ProgramBuilder::vvAdd(uint32_t asvrf_addr)
{
    prog_.push(Instruction::vvAdd(asvrf_addr));
    return *this;
}

ProgramBuilder &
ProgramBuilder::vvASubB(uint32_t asvrf_addr)
{
    prog_.push(Instruction::vvASubB(asvrf_addr));
    return *this;
}

ProgramBuilder &
ProgramBuilder::vvBSubA(uint32_t asvrf_addr)
{
    prog_.push(Instruction::vvBSubA(asvrf_addr));
    return *this;
}

ProgramBuilder &
ProgramBuilder::vvMax(uint32_t asvrf_addr)
{
    prog_.push(Instruction::vvMax(asvrf_addr));
    return *this;
}

ProgramBuilder &
ProgramBuilder::vvMul(uint32_t mulvrf_addr)
{
    prog_.push(Instruction::vvMul(mulvrf_addr));
    return *this;
}

ProgramBuilder &
ProgramBuilder::vRelu()
{
    prog_.push(Instruction::vRelu());
    return *this;
}

ProgramBuilder &
ProgramBuilder::vSigm()
{
    prog_.push(Instruction::vSigm());
    return *this;
}

ProgramBuilder &
ProgramBuilder::vTanh()
{
    prog_.push(Instruction::vTanh());
    return *this;
}

ProgramBuilder &
ProgramBuilder::sWr(ScalarReg reg, int64_t value)
{
    prog_.push(Instruction::sWr(reg, value));
    return *this;
}

ProgramBuilder &
ProgramBuilder::endChain()
{
    prog_.push(Instruction::endChain());
    return *this;
}

Program
ProgramBuilder::build() const
{
    prog_.chains(); // throws on malformed structure
    return prog_;
}

} // namespace bw
