/**
 * @file
 * The BW NPU instruction opcodes and their static properties (Table II).
 *
 * Every instruction operates on N-length native vectors or N x N native
 * matrix tiles. Chain input/output operands are implicit: a chain begins
 * with the only instructions producing an output without an input (v_rd /
 * m_rd) and values flow instruction to instruction without named storage.
 */

#ifndef BW_ISA_OPCODE_H
#define BW_ISA_OPCODE_H

#include <cstdint>
#include <string>

namespace bw {

/** Instruction opcodes, named as in Table II. */
enum class Opcode : uint8_t
{
    VRd = 0,  //!< v_rd: vector read from MemID[index]
    VWr,      //!< v_wr: vector write to MemID[index]
    MRd,      //!< m_rd: matrix read (NetQ or DRAM only)
    MWr,      //!< m_wr: matrix write (MatrixRf or DRAM only)
    MvMul,    //!< mv_mul: matrix-vector multiply against MRF[index]
    VvAdd,    //!< vv_add: point-wise add with AddSubVrf[index]
    VvASubB,  //!< vv_a_sub_b: point-wise subtract, chain input is minuend
    VvBSubA,  //!< vv_b_sub_a: point-wise subtract, chain input is subtrahend
    VvMax,    //!< vv_max: point-wise max with AddSubVrf[index]
    VvMul,    //!< vv_mul: Hadamard product with MultiplyVrf[index]
    VRelu,    //!< v_relu: point-wise ReLU
    VSigm,    //!< v_sigm: point-wise sigmoid
    VTanh,    //!< v_tanh: point-wise tanh
    SWr,      //!< s_wr: write scalar control register
    EndChain, //!< end_chain: explicit chain terminator
    NumOpcodes
};

/** Implicit chain operand type of an instruction (IN/OUT in Table II). */
enum class ChainType : uint8_t
{
    None = 0, //!< no chain operand
    Vector,   //!< native vector
    Matrix    //!< native matrix tile
};

/** Which datapath unit executes the instruction. */
enum class UnitClass : uint8_t
{
    Memory = 0, //!< v_rd / v_wr / m_rd / m_wr
    Mvm,        //!< matrix-vector multiplier
    MfuAddSub,  //!< MFU add/subtract/max unit (vv_add, vv_*_sub_*, vv_max)
    MfuMul,     //!< MFU Hadamard-multiply unit (vv_mul)
    MfuAct,     //!< MFU activation unit (v_relu, v_sigm, v_tanh)
    Control     //!< s_wr, end_chain
};

/** Static metadata for one opcode. */
struct OpcodeInfo
{
    const char *name;    //!< assembly mnemonic, e.g. "mv_mul"
    ChainType in;        //!< implicit chain input
    ChainType out;       //!< implicit chain output
    bool hasMemOperand;  //!< operand 1 is a MemId
    bool hasIndex;       //!< has a memory/register index operand
    bool hasValue;       //!< has an immediate value operand (s_wr)
    UnitClass unit;      //!< executing unit class
};

/** Look up static properties of @p op. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Mnemonic of @p op, e.g. "vv_a_sub_b". */
inline const char *opcodeName(Opcode op) { return opcodeInfo(op).name; }

/** Parse a mnemonic; throws bw::Error for unknown names. */
Opcode parseOpcode(const std::string &name);

/** True for instructions executed by one of the MFU function units. */
bool isMfuOp(Opcode op);

/** True for the point-wise vector ops (vv_* and v_* in Table II). */
bool isPointwiseOp(Opcode op);

/** True for activation functions (v_relu / v_sigm / v_tanh). */
bool isActivationOp(Opcode op);

} // namespace bw

#endif // BW_ISA_OPCODE_H
