/**
 * @file
 * Analytic FPGA resource model for BW NPU instances (Section VI).
 *
 * Estimates ALM / M20K / DSP usage of a synthesis-specialized NPU
 * configuration on a target device. The model's structure follows the
 * microarchitecture — soft-logic narrow-BFP multiply-accumulate lanes,
 * per-dot-product-engine accumulation trees, native-width float16 MFU
 * function units (DSP-heavy), MRF/VRF block RAM, and a fixed shell
 * (network, PCIe, control processor) — with coefficients calibrated
 * against the three published design points of Table III.
 */

#ifndef BW_SYNTH_RESOURCE_MODEL_H
#define BW_SYNTH_RESOURCE_MODEL_H

#include "arch/npu_config.h"
#include "synth/device.h"

namespace bw {

/** Per-component coefficients of the resource model. */
struct ResourceCoeffs
{
    /** ALMs per soft-logic narrow-precision MAC (scaled by mantissa). */
    double almPerSoftMacBit = 1.9;
    /** ALMs per dot-product-engine accumulator (tree + BFP align). */
    double almPerAccumulator = 40.0;
    /** ALMs per MFU vector lane (float16 add+mul+activation slice). */
    double almPerMfuLane = 100.0;
    /** Fixed shell: network stack, PCIe, Nios, schedulers/decoders. */
    double shellAlms = 60000.0;
    /** DSPs per MAC (most MACs map to soft logic; a fraction packs
     *  into DSP blocks). */
    double dspPerMac = 0.0112;
    /** DSPs per MFU vector lane (float16 hard-FP usage). */
    double dspPerMfuLane = 3.47;
    /** Fixed M20Ks (queues, shell buffers). */
    double fixedM20k = 300.0;
    /** MFU vector width as a fraction of the native dimension. */
    double mfuWidthFraction = 0.5;
};

/** Resource estimate for one configuration on one device. */
struct ResourceEstimate
{
    uint64_t alms = 0;
    uint64_t m20ks = 0;
    uint64_t dsps = 0;
    double almPct = 0;
    double m20kPct = 0;
    double dspPct = 0;
    double freqMhz = 0;
    double peakTflops = 0;
    bool fits = false;
};

/** Estimate @p cfg on @p dev with the given (default) coefficients. */
ResourceEstimate estimateResources(const NpuConfig &cfg,
                                   const FpgaDevice &dev,
                                   const ResourceCoeffs &k = {});

/**
 * Synthesis-specialization explorer: sweep native dimension, lanes and
 * tile-engine count for a model with the given matrix dimension and
 * pick the feasible configuration with the highest peak throughput
 * whose native dimension minimizes padding waste.
 */
struct ExplorerResult
{
    NpuConfig config;
    ResourceEstimate estimate;
    /** Fraction of MVM work wasted on padding for the model dim. */
    double paddingWaste = 0;
};

ExplorerResult exploreConfig(unsigned model_dim, const FpgaDevice &dev,
                             const BfpFormat &precision = bfp152());

} // namespace bw

#endif // BW_SYNTH_RESOURCE_MODEL_H
