#include "synth/resource_model.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/logging.h"

namespace bw {

ResourceEstimate
estimateResources(const NpuConfig &cfg, const FpgaDevice &dev,
                  const ResourceCoeffs &k)
{
    cfg.validate();
    ResourceEstimate r;

    uint64_t macs = cfg.macCount();
    double mfu_lanes = cfg.mfus * cfg.fusPerMfu *
                       cfg.nativeDim * k.mfuWidthFraction;
    uint64_t accumulators =
        static_cast<uint64_t>(cfg.tileEngines) * cfg.nativeDim;

    // DSP packing: a calibrated fraction of the MACs maps into DSP
    // blocks; the float16 MFU lanes consume hard-FP DSPs.
    double dsps = macs * k.dspPerMac + mfu_lanes * k.dspPerMfuLane;
    r.dsps = static_cast<uint64_t>(std::lround(dsps));

    // Soft-logic MACs scale with the mantissa width (narrow-precision
    // multipliers map to LUTs, Section VI).
    double mac_alms = static_cast<double>(macs) * k.almPerSoftMacBit *
                      (cfg.precision.mantBits + 1);
    double alms = mac_alms + accumulators * k.almPerAccumulator +
                  mfu_lanes * k.almPerMfuLane + k.shellAlms;
    r.alms = static_cast<uint64_t>(std::lround(alms));

    // Block RAM: element-packed MRF at the matrix precision, the three
    // architectural VRFs plus per-tile-engine input VRF replicas at
    // float16, and fixed queue/shell buffers. One M20K is 20,480 bits.
    double m20k_bits = 20480.0;
    double mrf_bits = static_cast<double>(cfg.mrfSize) * cfg.nativeDim *
                      cfg.nativeDim * cfg.precision.elemBits();
    double vrf_entries =
        static_cast<double>(cfg.initialVrfSize) * (1 + cfg.tileEngines) +
        cfg.addSubVrfSize + cfg.multiplyVrfSize;
    double vrf_bits = vrf_entries * cfg.nativeDim * 16.0;
    double m20ks = mrf_bits / m20k_bits + vrf_bits / m20k_bits +
                   k.fixedM20k;
    r.m20ks = static_cast<uint64_t>(std::lround(m20ks));

    r.almPct = 100.0 * static_cast<double>(r.alms) / dev.alms;
    r.m20kPct = 100.0 * static_cast<double>(r.m20ks) / dev.m20ks;
    r.dspPct = 100.0 * static_cast<double>(r.dsps) / dev.dsps;
    r.fits = r.alms <= dev.alms && r.m20ks <= dev.m20ks &&
             r.dsps <= dev.dsps;

    // Achievable clock: the design family's closing frequency on this
    // device, derated when logic is nearly full (routing pressure).
    r.freqMhz = dev.designMhz;
    if (r.almPct > 95.0)
        r.freqMhz *= 0.9;

    NpuConfig at_freq = cfg;
    at_freq.clockMhz = r.freqMhz;
    r.peakTflops = at_freq.peakTflops();
    return r;
}

ExplorerResult
exploreConfig(unsigned model_dim, const FpgaDevice &dev,
              const BfpFormat &precision)
{
    BW_ASSERT(model_dim > 0);
    ExplorerResult best;
    double best_score = -1.0;

    for (unsigned native : {64u, 100u, 128u, 200u, 256u, 320u, 400u,
                            512u}) {
        for (unsigned lanes : {8u, 10u, 16u, 20u, 32u, 40u, 64u}) {
            if (lanes > native || native % lanes != 0)
                continue;
            for (unsigned engines = 1; engines <= 16; ++engines) {
                NpuConfig cfg;
                cfg.name = "BW_explored";
                cfg.nativeDim = native;
                cfg.lanes = lanes;
                cfg.tileEngines = engines;
                cfg.precision = precision;
                cfg.mrfSize = 306; // sized separately from the sweep
                ResourceEstimate est = estimateResources(cfg, dev);
                // Leave routing/timing-closure headroom: post-fit
                // designs above ~90% logic or ~85% RAM rarely close at
                // the family's target clock.
                if (!est.fits || est.almPct > 90.0 ||
                    est.m20kPct > 85.0 || est.dspPct > 95.0) {
                    continue;
                }
                // Compute-side padding waste of a model_dim^2 matrix:
                // occupied MAC-beats (row tiles keep engines busy for
                // every column tile's beats, thin tails included)
                // versus the ideal model_dim^2 MACs.
                unsigned col_tiles = ceilDiv(model_dim, native);
                unsigned tail = model_dim - (col_tiles - 1) * native;
                double col_beats =
                    static_cast<double>(col_tiles - 1) *
                        cfg.nativeVectorBeats() +
                    ceilDiv(tail, lanes);
                unsigned row_tiles = col_tiles;
                double occupied_macs = static_cast<double>(row_tiles) *
                                       native * col_beats * lanes;
                double waste =
                    1.0 - static_cast<double>(model_dim) * model_dim /
                              occupied_macs;
                double score = est.peakTflops * (1.0 - waste);
                if (score > best_score) {
                    best_score = score;
                    best.config = cfg;
                    best.estimate = est;
                    best.paddingWaste = waste;
                }
            }
        }
    }
    if (best_score < 0)
        BW_FATAL("no feasible configuration for dim %u on %s", model_dim,
                 dev.name.c_str());
    best.config.clockMhz = best.estimate.freqMhz;
    return best;
}

} // namespace bw
