/**
 * @file
 * FPGA device database: the three Intel device generations the paper
 * targets (Table III). Resource totals are the published device
 * capacities (ALMs, M20K block RAMs, DSP blocks).
 */

#ifndef BW_SYNTH_DEVICE_H
#define BW_SYNTH_DEVICE_H

#include <cstdint>
#include <string>

namespace bw {

/** One FPGA device's capacity and achievable clock for this design. */
struct FpgaDevice
{
    std::string name;
    uint64_t alms = 0;   //!< adaptive logic modules
    uint64_t m20ks = 0;  //!< 20kb block RAMs
    uint64_t dsps = 0;   //!< DSP blocks
    /** Clock the BW design family closes timing at on this device. */
    double designMhz = 0;

    static FpgaDevice stratixVD5();   //!< 172,600 ALM / 2,014 M20K / 1,590 DSP
    static FpgaDevice arria10_1150(); //!< 427,200 / 2,713 / 1,518
    static FpgaDevice stratix10_280();//!< 933,120 / 11,721 / 5,760
};

} // namespace bw

#endif // BW_SYNTH_DEVICE_H
