#include "synth/device.h"

namespace bw {

FpgaDevice
FpgaDevice::stratixVD5()
{
    return {"Stratix V D5", 172600, 2014, 1590, 200.0};
}

FpgaDevice
FpgaDevice::arria10_1150()
{
    return {"Arria 10 1150", 427200, 2713, 1518, 300.0};
}

FpgaDevice
FpgaDevice::stratix10_280()
{
    return {"Stratix 10 280", 933120, 11721, 5760, 250.0};
}

} // namespace bw
