/**
 * @file
 * Concurrent serving engine (Sections II, VII-B3): the BW NPU as a
 * hardware microservice behind live traffic.
 *
 * serve::Engine owns a pool of worker threads — one per simulated
 * accelerator replica — fed from a bounded mutex+condvar request queue
 * with admission control (reject-on-full with StatusCode::QueueFull
 * rather than unbounded growth). The dispatch policy is pluggable:
 * the BW discipline serves requests one at a time, FIFO, as they
 * arrive; the GPU discipline accumulates a batch up to a size cap or a
 * timeout before launching (the Section VII-B3 / Fig. 8 contrast).
 * Requests carry optional deadlines checked at dequeue; expired
 * requests complete with DEADLINE_EXCEEDED without consuming service.
 *
 * Two request flavors ground latency in the simulators rather than a
 * scalar service time: functional requests run the real FuncMachine
 * (bit-accurate arithmetic, outputs returned), and timed requests
 * charge NpuTiming-derived service milliseconds for the model at the
 * requested step count. Completed requests feed a thread-safe stats
 * collector and emit obs trace events (queue wait vs. service, one
 * track per worker) exportable as a Chrome trace.
 *
 * Engine::replay() is the deterministic virtual-time mode: it pushes a
 * fixed arrival vector through the same admission/policy/deadline
 * machinery with no threads, and reproduces the analytic
 * serveUnbatched()/serveBatched() latencies exactly — tying the
 * threaded engine to the paper-validated queueing model.
 */

#ifndef BW_SERVE_ENGINE_H
#define BW_SERVE_ENGINE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "compiler/compiled_model.h"
#include "metrics/metrics.h"
#include "obs/flight.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "runtime/serving.h"
#include "timing/timing_model.h"

namespace bw {
namespace metrics {
class MetricsHttpServer;
}
namespace serve {

class SloMonitor;

using RequestId = uint64_t;

/** How queued requests are grouped for service (Fig. 8). */
enum class DispatchPolicy : uint8_t
{
    Unbatched = 0, //!< BW discipline: one request at a time, FIFO
    Batched,       //!< GPU discipline: accumulate maxBatch or timeout
};

const char *dispatchPolicyName(DispatchPolicy p);

/**
 * One serving request — the single submission currency of Engine,
 * Cluster and the Session::serve path. A request is *functional* when
 * @p inputs is non-empty (the real FuncMachine runs and outputs are
 * returned) and *timed* otherwise (the request charges the timing
 * model's service milliseconds for @p steps timesteps).
 */
struct Request
{
    /** Input sequence; empty = timed request. */
    std::vector<FVec> inputs;

    /** Timesteps a timed request charges (ignored for functional
     *  requests, which take their step count from inputs.size()). */
    unsigned steps = 1;

    /** Deadline checked at dequeue (0 = EngineOptions'
     *  defaultDeadlineMs). */
    double deadlineMs = 0;

    /** Per-request simulated service milliseconds (timed requests
     *  only; <= 0 = the engine's timing model / serviceMsOverride).
     *  The cluster front door uses this to charge model service plus
     *  weight-reload cost on a shared, model-less engine. */
    double serviceMsOverride = 0;

    /** Timed request for @p steps timesteps. */
    static Request
    timed(unsigned steps, double deadline_ms = 0, double service_ms = 0)
    {
        Request r;
        r.steps = steps;
        r.deadlineMs = deadline_ms;
        r.serviceMsOverride = service_ms;
        return r;
    }

    /** Functional request over @p xs. */
    static Request
    functional(std::vector<FVec> xs, double deadline_ms = 0)
    {
        Request r;
        r.inputs = std::move(xs);
        r.deadlineMs = deadline_ms;
        return r;
    }
};

/** Engine configuration. */
struct EngineOptions
{
    /** Worker threads == simulated accelerator replicas. */
    unsigned replicas = 1;

    /** Bounded queue depth; submissions beyond it are rejected with
     *  QUEUE_FULL (admission control, not unbounded growth). */
    size_t queueDepth = 64;

    DispatchPolicy policy = DispatchPolicy::Unbatched;

    /** Batched policy: launch when this many requests are queued... */
    unsigned maxBatch = 8;
    /** ...or when the oldest queued request has waited this long. */
    double batchTimeoutMs = 2.0;

    /** Datacenter network round trip added to each reported latency
     *  (the bump-in-the-wire NIC neighbor of Section II-A). */
    double networkMs = 0.0;

    /** Deadline applied to requests submitted without one (0 = none);
     *  checked when the request is dequeued for service. */
    double defaultDeadlineMs = 0.0;

    /** When > 0, timed requests charge this many milliseconds instead
     *  of running the timing simulator (analytic-model equivalence). */
    double serviceMsOverride = 0.0;

    /**
     * Timing-fidelity tier of the engine's internal service-time
     * simulation (timing_model.h): CycleAccurate is exact,
     * Fast extrapolates the steady state, Cached memoizes
     * cycle-accurate runs bit-identically. fromEnv() applies
     * BW_TIMING_MODE.
     */
    timing::Fidelity fidelity = timing::Fidelity::CycleAccurate;

    /** Replica-group label stamped on /debug/config, so the engines of
     *  a multi-engine cluster are distinguishable when scraping their
     *  debug endpoints (e.g. "s10/0"). Purely informational. */
    std::string groupLabel;

    /** /debug/errors keeps the last this-many failed requests (ring;
     *  older entries are evicted). fromEnv() applies BW_DEBUG_RING. */
    size_t errorRingCapacity = 64;

    /**
     * Wall-clock seconds a worker occupies itself per simulated second
     * of timed service (1.0 = real time, 0.0 = instantaneous). Timed
     * requests always *report* the unscaled simulated service time.
     */
    double timeScale = 1.0;

    /** Simulated service time for a batch of timed requests (defaults
     *  to the sum of per-request service times when unset). Also the
     *  batch service model used by replay() under the Batched policy. */
    std::function<double(unsigned batch)> batchServiceMs;

    /** Test/fault-injection hook, invoked on the worker thread for
     *  each request as its service begins. */
    std::function<void(RequestId)> serviceHook;

    /**
     * Live-metrics registry (non-owning; must outlive the engine).
     * When set, the engine publishes: bw_serve_queue_depth and
     * bw_serve_inflight gauges; bw_serve_{admitted, completed,
     * rejected, deadline_expired, cancelled}_total counters; a
     * bw_serve_replica_busy_us_total{replica=...} counter per worker;
     * and bw_serve_latency_ms / bw_serve_queue_wait_ms histograms over
     * completed requests. Counters and histograms are per-thread
     * sharded, so workers never contend on a shared atomic; enabling
     * metrics does not change served-request outcomes (tested).
     */
    metrics::Registry *metricsRegistry = nullptr;

    /**
     * Span tracer (non-owning; must outlive the engine). When set, the
     * engine head-samples at admission (the tracer's sampleEvery /
     * BW_SPAN_SAMPLE over the deterministic request id), carries the
     * TraceContext on the queued request, and records the canonical
     * span tree per sampled request — request / queue_wait / dispatch /
     * execute plus chain[i] leaves from the timing simulator's retired-
     * chain profiles at the request's step count. Completed sampled
     * requests also attach their trace id as a latency-histogram
     * exemplar when a metricsRegistry is bound. Recording is wait-free;
     * enabling it does not change request outcomes or simulated cycle
     * counts (tested).
     */
    obs::SpanTracer *spanTracer = nullptr;

    /**
     * Flight recorder (non-owning; must outlive the engine). When set,
     * the engine records *every* submission attempt's flight record —
     * completions, deadline expiries, QUEUE_FULL rejects, service
     * errors and shutdown cancellations — keyed by a deterministic
     * submission sequence number (rejects consume one too; admitted
     * request ids / span trace ids are unaffected). Recording is
     * wait-free and does not change request outcomes or simulated
     * cycle counts; under replay() the recorder is cleared and fed
     * virtual time, so two replays of one schedule export byte-
     * identical flight logs (tested).
     */
    obs::FlightRecorder *flightRecorder = nullptr;

    /**
     * SLO burn-rate monitor (non-owning; must outlive the engine).
     * When set, every finished submission attempt is recorded against
     * its deadline class — completions count toward the latency SLI,
     * rejects / expiries / errors / cancellations burn availability
     * budget. Fed engine-clock microseconds live and virtual
     * microseconds under replay() (which clears it first).
     */
    SloMonitor *sloMonitor = nullptr;

    /**
     * Apply BW_SERVE_* environment overrides to @p base:
     * BW_SERVE_REPLICAS, BW_SERVE_QUEUE_DEPTH, BW_SERVE_MAX_BATCH,
     * BW_SERVE_TIMEOUT_MS, BW_SERVE_TIMESCALE, BW_SERVE_POLICY
     * ("unbatched" | "batched"), BW_DEBUG_RING, and BW_TIMING_MODE
     * ("cycle" | "fast" | "cached").
     */
    static EngineOptions fromEnv(EngineOptions base);
    static EngineOptions fromEnv();
};

inline EngineOptions
EngineOptions::fromEnv()
{
    return fromEnv(EngineOptions{});
}

/** Outcome of one request. */
struct Response
{
    RequestId id = 0;
    Status status;             //!< OK, DEADLINE_EXCEEDED, CANCELLED
    std::vector<FVec> outputs; //!< functional requests: one per step
    double queueMs = 0;        //!< admission -> dequeue
    double serviceMs = 0;      //!< service span (simulated ms if timed)
    double latencyMs = 0;      //!< admission -> done, plus networkMs
    unsigned worker = 0;       //!< replica that served it
    unsigned batch = 1;        //!< formed batch the request rode in
};

/**
 * Thread-safe collector of per-request outcomes. Engine workers feed
 * it; snapshot() and toJson() may be called concurrently at any time.
 */
class StatsCollector
{
  public:
    /** @p admit_s / @p done_s are seconds on the engine's clock (used
     *  for the throughput window). */
    void recordCompleted(const Response &r, double admit_s, double done_s);
    void recordRejected();
    void recordExpired();
    void recordCancelled();

    /** Latency summary of completed requests so far. */
    ServeStats snapshot() const;

    uint64_t completed() const;
    uint64_t rejected() const;
    uint64_t expired() const;
    uint64_t cancelled() const;

    /** snapshot() plus rejection/expiry counters and queue-wait
     *  percentiles, in the repo's toJson() convention. */
    Json toJson() const;

  private:
    mutable std::mutex mu_;
    std::vector<double> latenciesMs_;
    std::vector<double> queueWaitsMs_;
    std::vector<double> serviceMs_;
    uint64_t completed_ = 0;
    uint64_t rejected_ = 0;
    uint64_t expired_ = 0;
    uint64_t cancelled_ = 0;
    /** Sum of 1/batch over completed requests: a batch of size b
     *  contributes b samples of 1/b, so completed_/invBatchSum_ is the
     *  mean over *batches* of the formed batch size. */
    double invBatchSum_ = 0;
    double firstAdmitS_ = 0;
    double lastDoneS_ = 0;
    bool sawRequest_ = false;
};

/** Multi-threaded serving engine over simulated accelerator replicas. */
class Engine
{
  public:
    /** Serve @p model (shared, not copied) with @p opts. */
    Engine(std::shared_ptr<const CompiledModel> model, EngineOptions opts);

    /** Convenience: copies @p model into shared ownership. */
    Engine(const CompiledModel &model, EngineOptions opts);

    /** Model-less engine: timed requests and replay() only, with
     *  serviceMsOverride supplying the service time. */
    explicit Engine(EngineOptions opts);

    /** Shuts down (cancelling queued requests) if still running. */
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    const EngineOptions &options() const { return opts_; }
    const CompiledModel *model() const { return model_.get(); }

    /**
     * Spawn the worker pool (idempotent; the first submit() also
     * starts it). Each worker builds and installs its own FuncMachine
     * replica when the engine has a model.
     */
    void start();

    /**
     * Submit one request (functional when req.inputs is non-empty,
     * timed otherwise — see serve::Request). Fails fast — without
     * enqueueing — with QUEUE_FULL when the queue is at depth,
     * UNAVAILABLE after drain()/shutdown(), INVALID_ARGUMENT on
     * malformed input, or FAILED_PRECONDITION when the engine lacks
     * what the request needs (a model for functional requests; a
     * model, serviceMsOverride or req.serviceMsOverride for timed
     * ones). req.deadlineMs (0 = options().defaultDeadlineMs) is
     * checked when the request is dequeued.
     */
    Expected<std::future<Response>> submit(Request req);

    /** Deprecated shim for the pre-Request overload set: forwards to
     *  submit(Request::functional(xs, deadline_ms)). */
    Expected<std::future<Response>> submit(std::vector<FVec> xs,
                                           double deadline_ms = 0);

    /** Deprecated shim: forwards to
     *  submit(Request::timed(steps, deadline_ms)). */
    Expected<std::future<Response>> submitTimed(unsigned steps,
                                                double deadline_ms = 0);

    /** Deprecated shim: forwards to
     *  submit(Request::timed(steps, deadline_ms, service_ms)). */
    Expected<std::future<Response>> submitTimed(unsigned steps,
                                                double deadline_ms,
                                                double service_ms);

    /**
     * Graceful drain: stop admitting, then block until every queued
     * and in-flight request has completed. The worker pool stays up
     * (shutdown() or the destructor joins it).
     */
    void drain();

    /**
     * Stop admitting, cancel still-queued requests (their futures
     * complete with CANCELLED), finish in-flight service, and join the
     * workers. Idempotent. Call drain() first for a graceful stop.
     */
    void shutdown();

    /** Requests currently queued (racy snapshot). */
    size_t queueSize() const;

    /** Whether the engine still admits requests (false once drain() or
     *  shutdown() has begun — the /healthz readiness signal). */
    bool accepting() const;

    /**
     * Mount the engine's introspection endpoints on @p srv:
     * /debug/queue, /debug/replicas, /debug/config, /debug/errors and
     * /debug/flight, plus /slo.json when a SloMonitor is attached; and
     * register the readiness probe so /healthz turns 503
     * {"draining":true} once drain()/shutdown() has begun. The server
     * must not outlive the engine.
     */
    void exposeDebug(metrics::MetricsHttpServer &srv);

    /** Admission-queue snapshot: engine lifecycle flags, occupancy,
     *  and one entry per queued request (id, age, deadline). */
    Json debugQueueJson() const;

    /** Per-replica worker state: serving/idle, in-flight request ids,
     *  served/expired/error counts, last served id. */
    Json debugReplicasJson() const;

    /** Effective configuration: EngineOptions, the model's NpuConfig,
     *  and every documented BW_* variable currently set. */
    Json debugConfigJson() const;

    /** The last-N non-OK outcomes (rejects, expiries, service errors,
     *  cancellations), newest last. */
    Json debugErrorsJson() const;

    /** Promoted flight-record index: one compact row per promoted
     *  record linking its flight seq to the admitted request id and
     *  (when head-sampled) the live span-export trace id. */
    Json debugFlightJson() const;

    /**
     * The full bw.flight/1 export of the attached flight recorder,
     * with chain[i] span leaves reconstructed from the engine's cached
     * timing profiles. Collect only after quiescence (drained, shut
     * down, or after replay()) — the recorder rings are wait-free, not
     * seqlocked. Fails FailedPrecondition without a recorder.
     */
    Expected<Json> flightJson();

    /** Latency summary of completed requests so far (thread-safe). */
    ServeStats stats() const { return collector_.snapshot(); }

    const StatsCollector &collector() const { return collector_; }

    /** stats + counters + engine configuration, machine-readable. */
    Json statsJson() const;

    /**
     * Per-request trace events (QueueWait on the serve_queue track,
     * Service on one serve_worker track per replica), timestamped in
     * microseconds since engine construction. Export with
     * obs::chromeTraceJson(trace, 1.0). Only safe to read once the
     * engine is drained or shut down.
     */
    const obs::EventTrace &trace() const { return trace_; }

    /**
     * Deterministic virtual-time mode: replay @p arrivals_s (seconds,
     * ascending) through the engine's admission control, dispatch
     * policy, and deadline machinery with service times from the
     * timing simulator at @p steps (or serviceMsOverride). No threads,
     * bit-reproducible; under the Unbatched policy with one replica,
     * no deadline and an unbounded queue this reproduces
     * serveUnbatched() exactly, and under the Batched policy,
     * serveBatched(). With a spanTracer attached the replay clears the
     * tracer and records span trees on the virtual clock with ids from
     * a replay-local counter, so two replays of the same schedule
     * export byte-identical span-tree JSON (tested).
     */
    ServeStats replay(const std::vector<double> &arrivals_s,
                      unsigned steps = 1);

    /** Simulated single-request service time at @p steps timesteps:
     *  serviceMsOverride when set, else an NpuTiming run (cached). */
    double serviceMsFor(unsigned steps);

    /** Seconds since engine construction began (the clock trace event
     *  and metrics-sampler timestamps are measured on). */
    std::chrono::steady_clock::time_point epoch() const
    {
        return epoch_;
    }

  private:
    struct Pending
    {
        RequestId id = 0;
        /** Submission-attempt sequence number (flight-recorder key);
         *  unlike id, rejected submissions consume one. */
        uint64_t seq = 0;
        std::vector<FVec> xs;  //!< empty for timed requests
        unsigned steps = 1;
        bool timed = false;
        /** Per-request simulated service override, milliseconds
         *  (0 = the engine's model / serviceMsOverride). */
        double serviceMsReq = 0;
        double deadlineMs = 0; //!< 0 = none
        double admitS = 0;     //!< engine-clock seconds at admission
        /** Span-tracing context, stamped at admission and carried to
         *  the serving worker (explicit propagation, no TLS). */
        obs::TraceContext ctx;
        std::promise<Response> promise;
    };

    /** Resolved handles into options().metricsRegistry (absent when no
     *  registry is attached; all updates null-check through live_). */
    struct LiveMetrics
    {
        metrics::Gauge *queueDepth = nullptr;
        metrics::Gauge *inflight = nullptr;
        metrics::Counter *admitted = nullptr;
        metrics::Counter *completed = nullptr;
        metrics::Counter *rejected = nullptr;
        metrics::Counter *expired = nullptr;
        metrics::Counter *cancelled = nullptr;
        std::vector<metrics::Counter *> replicaBusyUs;
        metrics::Histogram *latencyMs = nullptr;
        metrics::Histogram *queueWaitMs = nullptr;
    };

    /** One /debug/errors ring entry. */
    struct ErrorRecord
    {
        uint64_t seq = 0;
        RequestId id = 0;   //!< 0 for pre-admission rejects
        uint64_t timeUs = 0;
        StatusCode code = StatusCode::Ok;
        std::string message;
    };

    /** Per-replica live state for /debug/replicas. */
    struct ReplicaDebug
    {
        bool busy = false;
        uint64_t served = 0;
        uint64_t expired = 0;
        uint64_t errors = 0;
        RequestId lastId = 0;
        std::vector<RequestId> inflight;
    };

    Expected<std::future<Response>> enqueue(Pending p);
    void bindMetrics();
    void startLocked();
    void workerLoop(unsigned index);
    void serveBatch(unsigned index, FuncMachine *machine,
                    std::vector<Pending> batch, double dequeue_s);
    ServeStats replayUnbatched(const std::vector<double> &arrivals_s,
                               double service_ms, unsigned steps);
    ServeStats replayBatched(const std::vector<double> &arrivals_s,
                             double service_ms, unsigned steps);

    /** Seconds since engine construction (steady clock). */
    double nowS() const;

    void emitTrace(obs::EventKind kind, obs::ResClass res,
                   uint16_t res_index, RequestId id, double start_s,
                   double end_s);

    std::shared_ptr<const CompiledModel> model_;
    EngineOptions opts_;
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mu_;
    std::condition_variable workCv_; //!< workers wait for requests
    std::condition_variable idleCv_; //!< drain() waits for quiescence
    std::deque<Pending> queue_;
    bool accepting_ = true;
    bool draining_ = false;
    bool stopping_ = false;
    bool started_ = false;
    unsigned inFlight_ = 0;
    RequestId nextId_ = 1;
    std::vector<std::thread> workers_;

    /** Cached timing-simulator output for one step count: the service
     *  milliseconds plus (when a span tracer is attached) the retired-
     *  chain profiles that become chain[i] leaf spans. */
    struct ServiceProfile
    {
        double ms = 0;
        Cycles totalCycles = 0;
        std::shared_ptr<const std::vector<obs::ChainProfile>> chains;
    };

    /** serviceMsFor() plus the chain profiles (cached per step count). */
    const ServiceProfile &serviceProfileFor(unsigned steps);

    /** Record the span tree of one sampled request (threaded and
     *  replay paths share it); boundaries are microseconds on the
     *  engine's clock, each converted exactly once so the children
     *  partition the request span to the microsecond. */
    void recordSpans(const obs::TraceContext &ctx, unsigned steps,
                     uint64_t admit_us, uint64_t dequeue_us,
                     uint64_t service_us, uint64_t done_us,
                     unsigned replica, obs::SpanOutcome outcome);

    /** Feed the flight recorder and the SLO monitor (either may be
     *  absent) with one finished submission attempt; timestamps are
     *  microseconds on the engine's clock (virtual under replay). */
    void recordFlightSlo(uint64_t seq, RequestId id, obs::FlightClass cls,
                         bool sampled, unsigned replica, unsigned steps,
                         uint64_t admit_us, uint64_t dequeue_us,
                         uint64_t service_us, uint64_t done_us,
                         double deadline_ms, double latency_ms);

    /** Append to the /debug/errors ring (bounded; oldest evicted). */
    void noteError(uint64_t seq, RequestId id, uint64_t time_us,
                   StatusCode code, std::string message);

    /** Binds the flight export's chain-leaf reconstruction to the
     *  engine's per-step-count timing-profile cache. */
    obs::ChainProfileFn chainProfileFn();

    std::mutex serviceMsMu_;
    /** Thin per-step-count front over the timing model: keeps the
     *  derived milliseconds + shared chain vector per steps value so
     *  workers share one immutable profile per step count. The actual
     *  simulation (and, under Fidelity::Cached, the cross-run memo)
     *  lives in timingModel_. */
    std::unordered_map<unsigned, ServiceProfile> serviceCache_;
    /** Lazily built at the options' fidelity tier (under
     *  serviceMsMu_). */
    std::unique_ptr<timing::TimingModel> timingModel_;
    ServiceProfile overrideProfile_; //!< serviceMsOverride, no chains

    StatsCollector collector_;
    std::mutex traceMu_;
    obs::EventTrace trace_;
    std::unique_ptr<LiveMetrics> live_;

    /** Next submission-attempt seq (guarded by mu_; rejects consume
     *  one, unlike nextId_ — see Pending::seq). */
    uint64_t nextSeq_ = 1;

    mutable std::mutex debugMu_;
    std::deque<ErrorRecord> errors_; //!< newest at the back
    uint64_t errorsTotal_ = 0;
    std::vector<ReplicaDebug> replicaDebug_;
};

} // namespace serve
} // namespace bw

#endif // BW_SERVE_ENGINE_H
