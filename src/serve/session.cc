#include "serve/session.h"

namespace bw {

Session
Session::compile(const GirGraph &graph, const NpuConfig &cfg,
                 const CompileOptions &options)
{
    return Session(compileGir(graph, cfg, options));
}

Session::Session(CompiledModel model)
    : model_(std::make_shared<CompiledModel>(std::move(model)))
{
}

FuncMachine &
Session::machine()
{
    if (!machine_) {
        machine_ = std::make_unique<FuncMachine>(model_->cfg);
        model_->install(*machine_);
    }
    return *machine_;
}

FVec
Session::infer(std::span<const float> x)
{
    return model_->runStep(machine(), x);
}

std::vector<FVec>
Session::infer(const std::vector<FVec> &xs)
{
    return model_->runSequence(machine(), xs);
}

std::vector<FVec>
Session::inferBatch(const std::vector<FVec> &xs)
{
    return model_->runStepBatch(machine(), xs);
}

void
Session::reset()
{
    if (machine_)
        model_->resetRequestState(*machine_);
}

timing::NpuTiming &
Session::timer()
{
    if (!sim_) {
        sim_ = std::make_unique<timing::NpuTiming>(model_->cfg);
        sim_->setTileBeats(model_->tileBeats);
    }
    return *sim_;
}

timing::TimingResult
Session::time(unsigned steps)
{
    return timer().run(model_->prologue, model_->step, steps);
}

timing::TimingResult
Session::timeProfiled(unsigned steps,
                      std::vector<obs::ChainProfile> *chains)
{
    return timer().runProfiled(model_->prologue, model_->step, steps,
                               chains);
}

double
Session::serviceMs(unsigned steps)
{
    return time(steps).latencyMs(model_->cfg);
}

std::unique_ptr<serve::Engine>
Session::serve(serve::EngineOptions opts) const
{
    return std::make_unique<serve::Engine>(model_, std::move(opts));
}

} // namespace bw
