#include "serve/session.h"

namespace bw {

Session
Session::compile(const GirGraph &graph, const NpuConfig &cfg,
                 const CompileOptions &options)
{
    return Session(compileGir(graph, cfg, options));
}

Session::Session(CompiledModel model)
    : model_(std::make_shared<CompiledModel>(std::move(model))),
      defaultFidelity_(timing::fidelityFromEnv())
{
}

FuncMachine &
Session::machine()
{
    if (!machine_) {
        machine_ = std::make_unique<FuncMachine>(model_->cfg);
        model_->install(*machine_);
    }
    return *machine_;
}

FVec
Session::infer(std::span<const float> x)
{
    return model_->runStep(machine(), x);
}

std::vector<FVec>
Session::infer(const std::vector<FVec> &xs)
{
    return model_->runSequence(machine(), xs);
}

std::vector<FVec>
Session::inferBatch(const std::vector<FVec> &xs)
{
    return model_->runStepBatch(machine(), xs);
}

void
Session::reset()
{
    if (machine_)
        model_->resetRequestState(*machine_);
}

timing::TimingModel &
Session::timingModel(timing::Fidelity f)
{
    auto &slot = timingModels_[static_cast<size_t>(f)];
    if (!slot) {
        slot = timing::makeTimingModel(f, model_->cfg);
        slot->setTileBeats(model_->tileBeats);
    }
    return *slot;
}

timing::NpuTiming &
Session::timer()
{
    return static_cast<timing::CycleAccurateModel &>(
               timingModel(timing::Fidelity::CycleAccurate))
        .sim();
}

timing::TimingResult
Session::time(unsigned steps)
{
    return time(steps, defaultFidelity_);
}

timing::TimingResult
Session::time(unsigned steps, timing::Fidelity f)
{
    return timingModel(f).run(model_->prologue, model_->step, steps);
}

timing::TimingResult
Session::timeProfiled(unsigned steps,
                      std::vector<obs::ChainProfile> *chains)
{
    return timeProfiled(steps, chains, defaultFidelity_);
}

timing::TimingResult
Session::timeProfiled(unsigned steps,
                      std::vector<obs::ChainProfile> *chains,
                      timing::Fidelity f)
{
    return timingModel(f).runProfiled(model_->prologue, model_->step,
                                      steps, chains);
}

double
Session::serviceMs(unsigned steps)
{
    return serviceMs(steps, defaultFidelity_);
}

double
Session::serviceMs(unsigned steps, timing::Fidelity f)
{
    return time(steps, f).latencyMs(model_->cfg);
}

std::unique_ptr<serve::Engine>
Session::serve(serve::EngineOptions opts) const
{
    return std::make_unique<serve::Engine>(model_, std::move(opts));
}

} // namespace bw
