#include "serve/slo.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace bw {
namespace serve {

namespace {

constexpr const char *kSchema = "bw.slo/1";

double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? std::atof(v) : fallback;
}

} // namespace

std::vector<SloClassSpec>
SloOptions::defaultClasses()
{
    return {
        {"interactive", 10.0, 5.0},
        {"standard", 100.0, 50.0},
        {"best_effort", 0.0, 500.0},
    };
}

SloOptions
SloOptions::fromEnv(SloOptions base)
{
    double lat =
        envDouble("BW_SLO_LATENCY_OBJECTIVE", base.latencyObjective);
    if (lat > 0 && lat < 1)
        base.latencyObjective = lat;
    double avail = envDouble("BW_SLO_AVAILABILITY_OBJECTIVE",
                             base.availabilityObjective);
    if (avail > 0 && avail < 1)
        base.availabilityObjective = avail;
    double fast_s = envDouble("BW_SLO_FAST_WINDOW_S", 0);
    if (fast_s > 0)
        base.fastWindowUs = static_cast<uint64_t>(fast_s * 1e6);
    double slow_s = envDouble("BW_SLO_SLOW_WINDOW_S", 0);
    if (slow_s > 0)
        base.slowWindowUs = static_cast<uint64_t>(slow_s * 1e6);
    return base;
}

SloOptions
SloOptions::fromEnv()
{
    return fromEnv(SloOptions{});
}

SloMonitor::SloMonitor(SloOptions opts) : opts_(std::move(opts))
{
    if (opts_.classes.empty())
        opts_.classes = SloOptions::defaultClasses();
    opts_.bucketUs = std::max<uint64_t>(1, opts_.bucketUs);
    opts_.fastWindowUs = std::max(opts_.fastWindowUs, opts_.bucketUs);
    opts_.slowWindowUs = std::max(opts_.slowWindowUs, opts_.fastWindowUs);
    size_t slots = static_cast<size_t>(
        (opts_.slowWindowUs + opts_.bucketUs - 1) / opts_.bucketUs);
    classes_.resize(opts_.classes.size());
    for (ClassState &cs : classes_) {
        cs.ring.resize(slots);
        cs.tag.assign(slots, ~0ull);
    }
}

void
SloMonitor::bindMetrics(metrics::Registry *registry)
{
    std::lock_guard<std::mutex> lk(mu_);
    registry_ = registry;
    if (!registry_)
        return;
    for (size_t c = 0; c < classes_.size(); ++c) {
        metrics::Labels labels{{"class", opts_.classes[c].name}};
        classes_[c].requestsC = &registry_->counter(
            "bw_slo_requests_total",
            "Finished submissions per deadline class", labels);
        classes_[c].latencyBreachC = &registry_->counter(
            "bw_slo_latency_breach_total",
            "Served requests that missed their class latency target",
            labels);
        classes_[c].availBreachC = &registry_->counter(
            "bw_slo_availability_breach_total",
            "Submissions not served successfully (rejected, expired, "
            "errored, cancelled)",
            labels);
    }
}

size_t
SloMonitor::classOf(double deadline_ms) const
{
    size_t catch_all = opts_.classes.size() - 1;
    for (size_t c = 0; c < opts_.classes.size(); ++c) {
        double bound = opts_.classes[c].maxDeadlineMs;
        if (bound <= 0) {
            catch_all = c; // explicit catch-all
            continue;
        }
        if (deadline_ms > 0 && deadline_ms <= bound)
            return c;
    }
    return catch_all;
}

void
SloMonitor::record(uint64_t t_us, double deadline_ms, double latency_ms,
                   bool available)
{
    std::lock_guard<std::mutex> lk(mu_);
    size_t c = classOf(deadline_ms);
    ClassState &cs = classes_[c];
    uint64_t bucket = t_us / opts_.bucketUs;
    size_t slot = static_cast<size_t>(bucket % cs.ring.size());
    if (cs.tag[slot] != bucket) {
        cs.ring[slot] = Bucket{};
        cs.tag[slot] = bucket;
    }
    Bucket &b = cs.ring[slot];
    ++cs.requests;
    if (cs.requestsC)
        cs.requestsC->inc();
    if (available) {
        ++b.availGood;
        bool lat_ok = latency_ms <= opts_.classes[c].latencyTargetMs;
        if (lat_ok) {
            ++b.latGood;
        } else {
            ++b.latBad;
            ++cs.latencyBreaches;
            if (cs.latencyBreachC)
                cs.latencyBreachC->inc();
        }
    } else {
        ++b.availBad;
        ++cs.availabilityBreaches;
        if (cs.availBreachC)
            cs.availBreachC->inc();
    }
    if (!sawRecord_ || t_us > highWaterUs_)
        highWaterUs_ = t_us;
    sawRecord_ = true;
}

SloWindowEval
SloMonitor::evalWindow(const ClassState &cs, uint64_t window_us,
                       bool latency, double objective) const
{
    SloWindowEval ev;
    if (!sawRecord_)
        return ev;
    uint64_t high_bucket = highWaterUs_ / opts_.bucketUs;
    uint64_t span = std::max<uint64_t>(1, window_us / opts_.bucketUs);
    uint64_t first =
        high_bucket >= span - 1 ? high_bucket - (span - 1) : 0;
    for (size_t slot = 0; slot < cs.ring.size(); ++slot) {
        uint64_t tag = cs.tag[slot];
        if (tag == ~0ull || tag < first || tag > high_bucket)
            continue;
        const Bucket &b = cs.ring[slot];
        ev.good += latency ? b.latGood : b.availGood;
        ev.bad += latency ? b.latBad : b.availBad;
    }
    uint64_t total = ev.good + ev.bad;
    ev.badFraction =
        total > 0 ? static_cast<double>(ev.bad) /
                        static_cast<double>(total)
                  : 0.0;
    double budget = 1.0 - objective;
    ev.burnRate = budget > 0 ? ev.badFraction / budget : 0.0;
    return ev;
}

std::vector<SloClassEval>
SloMonitor::snapshotLocked() const
{
    std::vector<SloClassEval> out;
    out.reserve(classes_.size());
    for (size_t c = 0; c < classes_.size(); ++c) {
        const ClassState &cs = classes_[c];
        SloClassEval ev;
        ev.name = opts_.classes[c].name;
        ev.requests = cs.requests;
        ev.latencyBreaches = cs.latencyBreaches;
        ev.availabilityBreaches = cs.availabilityBreaches;
        ev.latencyFast = evalWindow(cs, opts_.fastWindowUs, true,
                                    opts_.latencyObjective);
        ev.latencySlow = evalWindow(cs, opts_.slowWindowUs, true,
                                    opts_.latencyObjective);
        ev.availFast = evalWindow(cs, opts_.fastWindowUs, false,
                                  opts_.availabilityObjective);
        ev.availSlow = evalWindow(cs, opts_.slowWindowUs, false,
                                  opts_.availabilityObjective);
        ev.latencyFiring =
            ev.latencyFast.burnRate > opts_.pageBurnRate &&
            ev.latencySlow.burnRate > opts_.pageBurnRate;
        ev.availabilityFiring =
            ev.availFast.burnRate > opts_.pageBurnRate &&
            ev.availSlow.burnRate > opts_.pageBurnRate;
        out.push_back(std::move(ev));
    }
    return out;
}

std::vector<SloClassEval>
SloMonitor::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return snapshotLocked();
}

uint64_t
SloMonitor::recorded() const
{
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t n = 0;
    for (const ClassState &cs : classes_)
        n += cs.requests;
    return n;
}

uint64_t
SloMonitor::highWaterUs() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return sawRecord_ ? highWaterUs_ : 0;
}

void
SloMonitor::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (ClassState &cs : classes_) {
        std::fill(cs.ring.begin(), cs.ring.end(), Bucket{});
        std::fill(cs.tag.begin(), cs.tag.end(), ~0ull);
        cs.requests = 0;
        cs.latencyBreaches = 0;
        cs.availabilityBreaches = 0;
    }
    highWaterUs_ = 0;
    sawRecord_ = false;
}

namespace {

Json
windowJson(const SloWindowEval &ev)
{
    Json j = Json::object();
    j.set("good", ev.good);
    j.set("bad", ev.bad);
    j.set("bad_fraction", ev.badFraction);
    j.set("burn_rate", ev.burnRate);
    return j;
}

} // namespace

Json
SloMonitor::sloJson() const
{
    std::vector<SloClassEval> evals;
    uint64_t high_us;
    bool saw;
    {
        std::lock_guard<std::mutex> lk(mu_);
        evals = snapshotLocked();
        high_us = highWaterUs_;
        saw = sawRecord_;
    }

    // Refresh the bound burn-rate gauges from this evaluation (the
    // scrape path lands here via the /slo.json handler).
    if (registry_) {
        for (const SloClassEval &ev : evals) {
            const struct
            {
                const char *slo;
                const char *window;
                const SloWindowEval *w;
            } gauges[] = {
                {"latency", "fast", &ev.latencyFast},
                {"latency", "slow", &ev.latencySlow},
                {"availability", "fast", &ev.availFast},
                {"availability", "slow", &ev.availSlow},
            };
            for (const auto &g : gauges) {
                registry_
                    ->gauge("bw_slo_burn_rate",
                            "SLO burn rate over the trailing window "
                            "(1.0 = budget consumed exactly at the "
                            "sustainable rate)",
                            {{"class", ev.name},
                             {"slo", g.slo},
                             {"window", g.window}})
                    .set(g.w->burnRate);
            }
            registry_
                ->gauge("bw_slo_firing",
                        "1 when both window burn rates exceed the page "
                        "threshold",
                        {{"class", ev.name}, {"slo", "latency"}})
                .set(ev.latencyFiring ? 1.0 : 0.0);
            registry_
                ->gauge("bw_slo_firing",
                        "1 when both window burn rates exceed the page "
                        "threshold",
                        {{"class", ev.name}, {"slo", "availability"}})
                .set(ev.availabilityFiring ? 1.0 : 0.0);
        }
    }

    Json doc = Json::object();
    doc.set("schema", kSchema);
    Json obj = Json::object();
    obj.set("latency", opts_.latencyObjective);
    obj.set("availability", opts_.availabilityObjective);
    doc.set("objectives", std::move(obj));
    Json win = Json::object();
    win.set("fast_us", opts_.fastWindowUs);
    win.set("slow_us", opts_.slowWindowUs);
    win.set("bucket_us", opts_.bucketUs);
    doc.set("windows", std::move(win));
    doc.set("page_burn_rate", opts_.pageBurnRate);
    doc.set("evaluated_at_us", saw ? high_us : 0);

    Json classes = Json::array();
    for (size_t c = 0; c < evals.size(); ++c) {
        const SloClassEval &ev = evals[c];
        Json j = Json::object();
        j.set("name", ev.name);
        if (opts_.classes[c].maxDeadlineMs > 0)
            j.set("max_deadline_ms", opts_.classes[c].maxDeadlineMs);
        j.set("latency_target_ms", opts_.classes[c].latencyTargetMs);
        j.set("requests", ev.requests);
        j.set("latency_breaches", ev.latencyBreaches);
        j.set("availability_breaches", ev.availabilityBreaches);
        Json lat = Json::object();
        lat.set("fast", windowJson(ev.latencyFast));
        lat.set("slow", windowJson(ev.latencySlow));
        lat.set("firing", ev.latencyFiring);
        j.set("latency", std::move(lat));
        Json avail = Json::object();
        avail.set("fast", windowJson(ev.availFast));
        avail.set("slow", windowJson(ev.availSlow));
        avail.set("firing", ev.availabilityFiring);
        j.set("availability", std::move(avail));
        classes.push(std::move(j));
    }
    doc.set("classes", std::move(classes));
    return doc;
}

// --- Validation ---

namespace {

Status
failSlo(const std::string &why)
{
    return Status::invalidArgument("slo document: " + why);
}

Status
validateWindowEval(const Json *w, const std::string &where)
{
    if (!w || w->type() != Json::Type::Object)
        return failSlo(where + " is not an object");
    const Json *good = w->find("good");
    const Json *bad = w->find("bad");
    if (!good || good->type() != Json::Type::Int || good->asInt() < 0 ||
        !bad || bad->type() != Json::Type::Int || bad->asInt() < 0)
        return failSlo(where + " missing non-negative good/bad counts");
    const Json *frac = w->find("bad_fraction");
    const Json *burn = w->find("burn_rate");
    if (!frac || !frac->isNumber() || !burn || !burn->isNumber())
        return failSlo(where + " missing bad_fraction/burn_rate");
    if (frac->asDouble() < 0 || frac->asDouble() > 1)
        return failSlo(where + " bad_fraction outside [0, 1]");
    if (burn->asDouble() < 0)
        return failSlo(where + " burn_rate is negative");
    int64_t total = good->asInt() + bad->asInt();
    if (total == 0 && frac->asDouble() != 0)
        return failSlo(where + " empty window with nonzero fraction");
    return Status();
}

Status
validateSli(const Json *sli, const std::string &where)
{
    if (!sli || sli->type() != Json::Type::Object)
        return failSlo(where + " is not an object");
    Status st = validateWindowEval(sli->find("fast"), where + ".fast");
    if (!st.ok())
        return st;
    st = validateWindowEval(sli->find("slow"), where + ".slow");
    if (!st.ok())
        return st;
    const Json *firing = sli->find("firing");
    if (!firing || firing->type() != Json::Type::Bool)
        return failSlo(where + " missing boolean firing");
    return Status();
}

} // namespace

Status
validateSloJson(const Json &doc)
{
    if (doc.type() != Json::Type::Object)
        return failSlo("not an object");
    const Json *schema = doc.find("schema");
    if (!schema || schema->type() != Json::Type::String ||
        schema->asString() != kSchema)
        return failSlo(std::string("schema is not '") + kSchema + "'");
    const Json *objectives = doc.find("objectives");
    if (!objectives || objectives->type() != Json::Type::Object)
        return failSlo("missing objectives object");
    for (const char *key : {"latency", "availability"}) {
        const Json *o = objectives->find(key);
        if (!o || !o->isNumber() || o->asDouble() <= 0 ||
            o->asDouble() >= 1)
            return failSlo(std::string("objective '") + key +
                           "' not in (0, 1)");
    }
    const Json *windows = doc.find("windows");
    if (!windows || windows->type() != Json::Type::Object)
        return failSlo("missing windows object");
    const Json *fast = windows->find("fast_us");
    const Json *slow = windows->find("slow_us");
    if (!fast || fast->type() != Json::Type::Int || fast->asInt() <= 0 ||
        !slow || slow->type() != Json::Type::Int || slow->asInt() <= 0)
        return failSlo("windows missing positive fast_us/slow_us");
    if (slow->asInt() < fast->asInt())
        return failSlo("slow window shorter than fast window");
    const Json *classes = doc.find("classes");
    if (!classes || classes->type() != Json::Type::Array ||
        classes->size() == 0)
        return failSlo("missing non-empty classes array");
    for (size_t i = 0; i < classes->size(); ++i) {
        const Json &c = classes->at(i);
        if (c.type() != Json::Type::Object)
            return failSlo("class entry is not an object");
        const Json *name = c.find("name");
        if (!name || name->type() != Json::Type::String ||
            name->asString().empty())
            return failSlo("class entry missing name");
        const std::string &cls = name->asString();
        const Json *target = c.find("latency_target_ms");
        if (!target || !target->isNumber() || target->asDouble() <= 0)
            return failSlo("class '" + cls +
                           "' missing positive latency_target_ms");
        for (const char *key :
             {"requests", "latency_breaches", "availability_breaches"}) {
            const Json *v = c.find(key);
            if (!v || v->type() != Json::Type::Int || v->asInt() < 0)
                return failSlo("class '" + cls + "' missing "
                               "non-negative integer '" + key + "'");
        }
        Status st = validateSli(c.find("latency"), cls + ".latency");
        if (!st.ok())
            return st;
        st = validateSli(c.find("availability"), cls + ".availability");
        if (!st.ok())
            return st;
    }
    return Status();
}

} // namespace serve
} // namespace bw
