/**
 * @file
 * SLO burn-rate monitoring for the serving engine.
 *
 * The paper's serving contract is a hard real-time SLO: batch-1
 * execution exists to keep the 99th percentile inside the deadline
 * (Section VI, Fig. 8). A latency histogram says what the distribution
 * was; it does not say whether the *objective* — "99% of interactive
 * requests finish within 10 ms, 99.9% are served at all" — is currently
 * being violated, or how fast the error budget is burning.
 *
 * SloMonitor tracks two SLIs per deadline class:
 *
 *   - latency:      served requests whose end-to-end latency met the
 *                   class target, over served requests;
 *   - availability: requests that were served successfully, over all
 *                   submissions (rejects, deadline expiries, errors and
 *                   cancellations all consume availability budget).
 *
 * Each SLI is aggregated into fixed virtual-time buckets and evaluated
 * over a fast and a slow trailing window (the classic multi-window
 * burn-rate alert: page when *both* the 5-minute and the 1-hour burn
 * rate exceed the threshold, so one spike doesn't page but a sustained
 * burn does). burn rate = (bad fraction in window) / (1 - objective);
 * a burn rate of 1.0 consumes the budget exactly at the sustainable
 * rate, 14.4 consumes a 30-day budget in ~2 days.
 *
 * All time is the caller's clock — the engine feeds wall microseconds
 * live and virtual microseconds under replay(), and every export is
 * evaluated at the monitor's high-water mark rather than "now", so two
 * replays of one schedule produce byte-identical /slo.json documents.
 */

#ifndef BW_SERVE_SLO_H
#define BW_SERVE_SLO_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "metrics/metrics.h"

namespace bw {
namespace serve {

/** One deadline class and its SLO targets. */
struct SloClassSpec
{
    std::string name;
    /** Requests whose deadline is <= this bound (ms) fall in this
     *  class; 0 = catch-all (also takes requests with no deadline). */
    double maxDeadlineMs = 0;
    /** Latency SLI threshold: a served request is "good" when its
     *  end-to-end latency is <= this many milliseconds. */
    double latencyTargetMs = 0;
};

/** SloMonitor configuration. */
struct SloOptions
{
    /**
     * Deadline classes, ascending by maxDeadlineMs with the catch-all
     * (maxDeadlineMs 0) last. Default: interactive (deadline <= 10 ms,
     * target 5 ms), standard (<= 100 ms, target 50 ms), best_effort
     * (everything else, target 500 ms).
     */
    std::vector<SloClassSpec> classes;

    /** Latency objective: target fraction of served requests meeting
     *  the class latency target. */
    double latencyObjective = 0.99;

    /** Availability objective: target fraction of submissions served
     *  successfully. */
    double availabilityObjective = 0.999;

    /** Fast / slow trailing windows, microseconds of the feeding
     *  clock (5 minutes / 1 hour of virtual time by default). */
    uint64_t fastWindowUs = 300ull * 1000 * 1000;
    uint64_t slowWindowUs = 3600ull * 1000 * 1000;

    /** Aggregation bucket width, microseconds (bounds memory: the
     *  monitor keeps slowWindowUs / bucketUs buckets per class). */
    uint64_t bucketUs = 1000 * 1000;

    /** Multi-window alert threshold: a class's SLI is "firing" when
     *  both window burn rates exceed this. */
    double pageBurnRate = 14.4;

    /** Apply BW_SLO_LATENCY_OBJECTIVE, BW_SLO_AVAILABILITY_OBJECTIVE,
     *  BW_SLO_FAST_WINDOW_S and BW_SLO_SLOW_WINDOW_S on @p base. */
    static SloOptions fromEnv(SloOptions base);
    static SloOptions fromEnv();

    /** The default three-class ladder (see classes). */
    static std::vector<SloClassSpec> defaultClasses();
};

/** Burn-rate evaluation of one SLI over one trailing window. */
struct SloWindowEval
{
    uint64_t good = 0;
    uint64_t bad = 0;
    double badFraction = 0; //!< bad / (good + bad), 0 when empty
    double burnRate = 0;    //!< badFraction / (1 - objective)
};

/** One class's full evaluation (both SLIs, both windows). */
struct SloClassEval
{
    std::string name;
    uint64_t requests = 0;             //!< lifetime submissions
    uint64_t latencyBreaches = 0;      //!< lifetime latency misses
    uint64_t availabilityBreaches = 0; //!< lifetime unserved requests
    SloWindowEval latencyFast, latencySlow;
    SloWindowEval availFast, availSlow;
    bool latencyFiring = false;
    bool availabilityFiring = false;
};

/**
 * Multi-window SLO burn-rate monitor. record() is mutex-guarded (one
 * tiny critical section per completed request — the flight recorder and
 * span tracer own the wait-free hot paths); snapshot()/sloJson() may be
 * called concurrently with recording.
 */
class SloMonitor
{
  public:
    explicit SloMonitor(SloOptions opts = {});

    const SloOptions &options() const { return opts_; }

    /**
     * Bind bw_slo_* metrics into @p registry (non-owning; must outlive
     * the monitor): bw_slo_requests_total / bw_slo_latency_breach_total
     * / bw_slo_availability_breach_total counters per class, updated on
     * record(); bw_slo_burn_rate gauges per (class, slo, window) and
     * bw_slo_firing gauges per (class, slo), refreshed on every
     * snapshot()/sloJson().
     */
    void bindMetrics(metrics::Registry *registry);

    /** Deadline class index of a request submitted with @p deadline_ms
     *  (0 = no deadline). */
    size_t classOf(double deadline_ms) const;

    /**
     * Record one finished submission at time @p t_us on the feeding
     * clock. @p available = the request was served successfully
     * (rejects, expiries, errors, cancellations are unavailable);
     * @p latency_ms is consulted for the latency SLI only when
     * available.
     */
    void record(uint64_t t_us, double deadline_ms, double latency_ms,
                bool available);

    /** Evaluate every class at the monitor's high-water time. */
    std::vector<SloClassEval> snapshot() const;

    /** Total submissions recorded (all classes). */
    uint64_t recorded() const;

    /** High-water mark of recorded time on the feeding clock, in
     *  microseconds (0 before the first record()) — the evaluated_at_us
     *  every export is pinned to. */
    uint64_t highWaterUs() const;

    /** Drop all recorded state (e.g. between a live run and a
     *  deterministic replay sharing one monitor). */
    void clear();

    /**
     * The /slo.json document, schema bw.slo/1: objectives, windows,
     * and per-class lifetime counters plus fast/slow burn-rate
     * evaluations for both SLIs. Evaluated at the high-water mark of
     * recorded time — deterministic for deterministic input. Also
     * refreshes the bound gauges.
     */
    Json sloJson() const;

  private:
    struct Bucket
    {
        uint64_t latGood = 0, latBad = 0;
        uint64_t availGood = 0, availBad = 0;
    };

    struct ClassState
    {
        std::vector<Bucket> ring;  //!< slowWindow / bucket slots
        std::vector<uint64_t> tag; //!< absolute bucket number per slot
        uint64_t requests = 0;
        uint64_t latencyBreaches = 0;
        uint64_t availabilityBreaches = 0;
        metrics::Counter *requestsC = nullptr;
        metrics::Counter *latencyBreachC = nullptr;
        metrics::Counter *availBreachC = nullptr;
    };

    SloWindowEval evalWindow(const ClassState &cs, uint64_t window_us,
                             bool latency, double objective) const;
    std::vector<SloClassEval> snapshotLocked() const;

    SloOptions opts_;
    mutable std::mutex mu_;
    std::vector<ClassState> classes_;
    uint64_t highWaterUs_ = 0;
    bool sawRecord_ = false;
    metrics::Registry *registry_ = nullptr;
};

/**
 * Validate a sloJson() document against the bw.slo/1 schema: required
 * members and types, objectives in (0, 1), at least one class, window
 * evaluations with non-negative counts and consistent burn rates.
 * Returns OK or InvalidArgument naming the first violation.
 */
Status validateSloJson(const Json &doc);

} // namespace serve
} // namespace bw

#endif // BW_SERVE_SLO_H
