#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/env_doc.h"
#include "common/logging.h"
#include "metrics/http_server.h"
#include "serve/slo.h"
#include "timing/npu_timing.h"

namespace bw {
namespace serve {

namespace {

/** Engine trace timestamps are microseconds since construction. */
uint64_t
toUs(double seconds)
{
    return seconds > 0
               ? static_cast<uint64_t>(std::llround(seconds * 1e6))
               : 0;
}

double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? std::atof(v) : fallback;
}

} // namespace

const char *
dispatchPolicyName(DispatchPolicy p)
{
    switch (p) {
      case DispatchPolicy::Unbatched: return "unbatched";
      case DispatchPolicy::Batched: return "batched";
      default: BW_PANIC("bad DispatchPolicy %d", static_cast<int>(p));
    }
}

EngineOptions
EngineOptions::fromEnv(EngineOptions base)
{
    base.replicas = static_cast<unsigned>(
        envDouble("BW_SERVE_REPLICAS", base.replicas));
    base.queueDepth = static_cast<size_t>(
        envDouble("BW_SERVE_QUEUE_DEPTH",
                  static_cast<double>(base.queueDepth)));
    base.maxBatch = static_cast<unsigned>(
        envDouble("BW_SERVE_MAX_BATCH", base.maxBatch));
    base.batchTimeoutMs =
        envDouble("BW_SERVE_TIMEOUT_MS", base.batchTimeoutMs);
    base.timeScale = envDouble("BW_SERVE_TIMESCALE", base.timeScale);
    base.errorRingCapacity = static_cast<size_t>(
        envDouble("BW_DEBUG_RING",
                  static_cast<double>(base.errorRingCapacity)));
    if (const char *p = std::getenv("BW_SERVE_POLICY")) {
        std::string s(p);
        if (s == "batched")
            base.policy = DispatchPolicy::Batched;
        else if (s == "unbatched")
            base.policy = DispatchPolicy::Unbatched;
        else if (!s.empty())
            BW_WARN("BW_SERVE_POLICY=%s ignored (want unbatched|batched)",
                    s.c_str());
    }
    base.fidelity = timing::fidelityFromEnv(base.fidelity);
    return base;
}

// --- StatsCollector ---

void
StatsCollector::recordCompleted(const Response &r, double admit_s,
                                double done_s)
{
    std::lock_guard<std::mutex> lk(mu_);
    latenciesMs_.push_back(r.latencyMs);
    queueWaitsMs_.push_back(r.queueMs);
    serviceMs_.push_back(r.serviceMs);
    ++completed_;
    
    if (r.batch > 0)
        invBatchSum_ += 1.0 / r.batch;
    if (!sawRequest_ || admit_s < firstAdmitS_)
        firstAdmitS_ = admit_s;
    if (!sawRequest_ || done_s > lastDoneS_)
        lastDoneS_ = done_s;
    sawRequest_ = true;
}

void
StatsCollector::recordRejected()
{
    std::lock_guard<std::mutex> lk(mu_);
    ++rejected_;
}

void
StatsCollector::recordExpired()
{
    std::lock_guard<std::mutex> lk(mu_);
    ++expired_;
}

void
StatsCollector::recordCancelled()
{
    std::lock_guard<std::mutex> lk(mu_);
    ++cancelled_;
}

ServeStats
StatsCollector::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    ServeStats s;
    std::vector<double> sorted = latenciesMs_;
    std::sort(sorted.begin(), sorted.end());
    fillLatencyStats(s, sorted);
    double span = lastDoneS_ - firstAdmitS_;
    s.throughputRps =
        span > 0 ? static_cast<double>(completed_) / span : 0.0;
    s.meanBatch = invBatchSum_ > 0
                      ? static_cast<double>(completed_) / invBatchSum_
                      : 1.0;
    return s;
}

uint64_t
StatsCollector::completed() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return completed_;
}

uint64_t
StatsCollector::rejected() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return rejected_;
}

uint64_t
StatsCollector::expired() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return expired_;
}

uint64_t
StatsCollector::cancelled() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return cancelled_;
}

Json
StatsCollector::toJson() const
{
    Json j = snapshot().toJson();
    std::lock_guard<std::mutex> lk(mu_);
    j.set("rejected", rejected_);
    j.set("expired", expired_);
    j.set("cancelled", cancelled_);
    std::vector<double> waits = queueWaitsMs_;
    std::sort(waits.begin(), waits.end());
    double sum = 0;
    for (double w : waits)
        sum += w;
    j.set("mean_queue_ms",
          waits.empty() ? 0.0 : sum / static_cast<double>(waits.size()));
    LatencyQuantiles wq = quantilesSorted(waits);
    j.set("p50_queue_ms", wq.p50);
    j.set("p95_queue_ms", wq.p95);
    j.set("p99_queue_ms", wq.p99);
    sum = 0;
    for (double s : serviceMs_)
        sum += s;
    j.set("mean_service_ms",
          serviceMs_.empty()
              ? 0.0
              : sum / static_cast<double>(serviceMs_.size()));
    return j;
}

// --- Engine ---

Engine::Engine(std::shared_ptr<const CompiledModel> model,
               EngineOptions opts)
    : model_(std::move(model)), opts_(std::move(opts)),
      epoch_(std::chrono::steady_clock::now())
{
    opts_.replicas = std::max(1u, opts_.replicas);
    opts_.queueDepth = std::max<size_t>(1, opts_.queueDepth);
    opts_.maxBatch = std::max(1u, opts_.maxBatch);
    // Written once here so serviceProfileFor() can hand out a shared
    // read-only profile from any worker without synchronization.
    overrideProfile_.ms = opts_.serviceMsOverride;
    replicaDebug_.resize(opts_.replicas);
    if (opts_.metricsRegistry)
        bindMetrics();
}

void
Engine::recordFlightSlo(uint64_t seq, RequestId id, obs::FlightClass cls,
                        bool sampled, unsigned replica, unsigned steps,
                        uint64_t admit_us, uint64_t dequeue_us,
                        uint64_t service_us, uint64_t done_us,
                        double deadline_ms, double latency_ms)
{
    if (opts_.flightRecorder) {
        obs::FlightRecord fr;
        fr.seq = seq;
        fr.id = id;
        fr.cls = cls;
        fr.sampled = sampled;
        fr.replica = replica;
        fr.steps = steps;
        fr.admitUs = admit_us;
        fr.dequeueUs = dequeue_us;
        fr.serviceUs = service_us;
        fr.doneUs = done_us;
        fr.latencyUs = latency_ms > 0 ? static_cast<uint64_t>(
                                            std::llround(latency_ms * 1e3))
                                      : 0;
        opts_.flightRecorder->record(fr);
    }
    if (opts_.sloMonitor) {
        opts_.sloMonitor->record(done_us, deadline_ms, latency_ms,
                                 cls == obs::FlightClass::Ok);
    }
}

void
Engine::noteError(uint64_t seq, RequestId id, uint64_t time_us,
                  StatusCode code, std::string message)
{
    std::lock_guard<std::mutex> lk(debugMu_);
    ++errorsTotal_;
    if (opts_.errorRingCapacity == 0)
        return; // counted, not retained
    while (errors_.size() >= opts_.errorRingCapacity)
        errors_.pop_front();
    ErrorRecord e;
    e.seq = seq;
    e.id = id;
    e.timeUs = time_us;
    e.code = code;
    e.message = std::move(message);
    errors_.push_back(std::move(e));
}

void
Engine::bindMetrics()
{
    metrics::Registry &reg = *opts_.metricsRegistry;
    live_ = std::make_unique<LiveMetrics>();
    live_->queueDepth = &reg.gauge(
        "bw_serve_queue_depth",
        "Requests waiting in the engine's bounded admission queue");
    live_->inflight = &reg.gauge(
        "bw_serve_inflight",
        "Requests currently in service across accelerator replicas");
    live_->admitted = &reg.counter(
        "bw_serve_admitted_total",
        "Requests accepted into the queue since engine construction");
    live_->completed = &reg.counter(
        "bw_serve_completed_total",
        "Requests that finished service successfully");
    live_->rejected = &reg.counter(
        "bw_serve_rejected_total",
        "Submissions rejected by admission control (QUEUE_FULL)");
    live_->expired = &reg.counter(
        "bw_serve_deadline_expired_total",
        "Requests whose deadline passed while queued (expired at "
        "dequeue, no service consumed)");
    live_->cancelled = &reg.counter(
        "bw_serve_cancelled_total",
        "Queued requests abandoned by shutdown()");
    live_->replicaBusyUs.reserve(opts_.replicas);
    for (unsigned i = 0; i < opts_.replicas; ++i) {
        live_->replicaBusyUs.push_back(&reg.counter(
            "bw_serve_replica_busy_us_total",
            "Wall-clock microseconds each replica spent serving",
            {{"replica", std::to_string(i)}}));
    }
    live_->latencyMs = &reg.histogram(
        "bw_serve_latency_ms",
        "End-to-end latency of completed requests, milliseconds "
        "(admission to completion plus network)");
    live_->queueWaitMs = &reg.histogram(
        "bw_serve_queue_wait_ms",
        "Queue wait of completed requests, milliseconds (admission to "
        "dequeue)");
}

Engine::Engine(const CompiledModel &model, EngineOptions opts)
    : Engine(std::make_shared<CompiledModel>(model), std::move(opts))
{
}

Engine::Engine(EngineOptions opts) : Engine(nullptr, std::move(opts)) {}

Engine::~Engine()
{
    shutdown();
}

double
Engine::nowS() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
Engine::emitTrace(obs::EventKind kind, obs::ResClass res,
                  uint16_t res_index, RequestId id, double start_s,
                  double end_s)
{
    obs::TraceEvent e;
    e.start = toUs(start_s);
    e.end = std::max(toUs(end_s), e.start);
    e.kind = kind;
    e.res = res;
    e.resIndex = res_index;
    e.chain = static_cast<uint32_t>(id);
    std::lock_guard<std::mutex> lk(traceMu_);
    trace_.event(e);
}

void
Engine::start()
{
    std::lock_guard<std::mutex> lk(mu_);
    startLocked();
}

void
Engine::startLocked()
{
    if (started_ || stopping_)
        return;
    started_ = true;
    workers_.reserve(opts_.replicas);
    for (unsigned i = 0; i < opts_.replicas; ++i)
        workers_.emplace_back(&Engine::workerLoop, this, i);
}

Expected<std::future<Response>>
Engine::submit(Request req)
{
    Pending p;
    p.deadlineMs =
        req.deadlineMs > 0 ? req.deadlineMs : opts_.defaultDeadlineMs;
    if (!req.inputs.empty()) {
        if (!model_) {
            return Status::failedPrecondition(
                "functional request on a model-less engine (construct "
                "the engine with a CompiledModel, or submit a timed "
                "Request)");
        }
        Status valid = model_->validateSequenceInput(req.inputs);
        if (!valid.ok())
            return valid;
        p.xs = std::move(req.inputs);
        p.steps = static_cast<unsigned>(p.xs.size());
        p.timed = false;
        return enqueue(std::move(p));
    }
    if (!model_ && opts_.serviceMsOverride <= 0 &&
        req.serviceMsOverride <= 0) {
        return Status::failedPrecondition(
            "timed request needs a CompiledModel (for the timing "
            "model), EngineOptions::serviceMsOverride, or a "
            "Request::serviceMsOverride");
    }
    if (req.steps == 0)
        return Status::invalidArgument("timed request with steps == 0");
    p.steps = req.steps;
    p.timed = true;
    p.serviceMsReq =
        req.serviceMsOverride > 0 ? req.serviceMsOverride : 0.0;
    return enqueue(std::move(p));
}

Expected<std::future<Response>>
Engine::submit(std::vector<FVec> xs, double deadline_ms)
{
    return submit(Request::functional(std::move(xs), deadline_ms));
}

Expected<std::future<Response>>
Engine::submitTimed(unsigned steps, double deadline_ms)
{
    return submit(Request::timed(steps, deadline_ms));
}

Expected<std::future<Response>>
Engine::submitTimed(unsigned steps, double deadline_ms,
                    double service_ms)
{
    return submit(Request::timed(steps, deadline_ms, service_ms));
}

Expected<std::future<Response>>
Engine::enqueue(Pending p)
{
    std::future<Response> fut = p.promise.get_future();
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!accepting_) {
            return Status::unavailable(
                "engine is draining or shut down");
        }
        if (queue_.size() >= opts_.queueDepth) {
            // The reject consumes a submission-attempt seq (the flight
            // promotion key) but never a request id — span trace ids
            // stay dense over admitted requests only.
            uint64_t seq = nextSeq_++;
            collector_.recordRejected();
            if (live_)
                live_->rejected->inc();
            Status st = Status::queueFull(detail::format(
                "queue at depth %zu; request rejected (admission "
                "control)", opts_.queueDepth));
            uint64_t t_us = toUs(nowS());
            recordFlightSlo(seq, 0, obs::FlightClass::Rejected, false, 0,
                            p.steps, t_us, t_us, t_us, t_us, p.deadlineMs,
                            0.0);
            noteError(seq, 0, t_us, st.code(), st.message());
            return st;
        }
        startLocked();
        p.id = nextId_++;
        p.seq = nextSeq_++;
        p.admitS = nowS();
        if (opts_.spanTracer)
            p.ctx = opts_.spanTracer->admit(p.id);
        queue_.push_back(std::move(p));
        if (live_) {
            live_->admitted->inc();
            live_->queueDepth->set(static_cast<double>(queue_.size()));
        }
    }
    workCv_.notify_one();
    return fut;
}

void
Engine::workerLoop(unsigned index)
{
    // Each worker is one accelerator replica: its own functional
    // machine with the model's weights and preloads installed.
    std::unique_ptr<FuncMachine> machine;
    if (model_) {
        machine = std::make_unique<FuncMachine>(model_->cfg);
        model_->install(*machine);
    }

    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        workCv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }

        if (opts_.policy == DispatchPolicy::Batched) {
            // Accumulate until the batch fills, the oldest queued
            // request has waited out the timeout, or a flush (drain /
            // shutdown) is requested.
            while (!stopping_ && !draining_ && !queue_.empty() &&
                   queue_.size() < opts_.maxBatch) {
                double trigger_s =
                    queue_.front().admitS + opts_.batchTimeoutMs / 1e3;
                if (nowS() >= trigger_s)
                    break;
                auto tp = epoch_ +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(trigger_s));
                workCv_.wait_until(lk, tp);
            }
            if (queue_.empty())
                continue; // another replica took the batch
        }

        size_t take = opts_.policy == DispatchPolicy::Batched
                          ? std::min<size_t>(queue_.size(), opts_.maxBatch)
                          : 1;
        std::vector<Pending> batch;
        batch.reserve(take);
        for (size_t i = 0; i < take; ++i) {
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        double dequeue_s = nowS();
        inFlight_ += static_cast<unsigned>(take);
        if (live_) {
            live_->queueDepth->set(static_cast<double>(queue_.size()));
            live_->inflight->set(static_cast<double>(inFlight_));
        }
        lk.unlock();

        serveBatch(index, machine.get(), std::move(batch), dequeue_s);

        lk.lock();
        inFlight_ -= static_cast<unsigned>(take);
        if (live_)
            live_->inflight->set(static_cast<double>(inFlight_));
        if (queue_.empty() && inFlight_ == 0)
            idleCv_.notify_all();
    }
}

void
Engine::serveBatch(unsigned index, FuncMachine *machine,
                   std::vector<Pending> batch, double dequeue_s)
{
    {
        std::lock_guard<std::mutex> lk(debugMu_);
        ReplicaDebug &rd = replicaDebug_[index];
        rd.busy = true;
        rd.inflight.clear();
        for (const Pending &p : batch)
            rd.inflight.push_back(p.id);
    }

    // On-dequeue deadline expiry: requests that waited out their
    // deadline complete immediately, consuming no service.
    std::vector<Pending> live;
    live.reserve(batch.size());
    uint64_t expired_here = 0;
    for (Pending &p : batch) {
        double queue_ms = (dequeue_s - p.admitS) * 1e3;
        if (p.deadlineMs > 0 && queue_ms > p.deadlineMs) {
            Response r;
            r.id = p.id;
            r.status = Status::deadlineExceeded(detail::format(
                "request waited %.3f ms in queue, deadline %.3f ms",
                queue_ms, p.deadlineMs));
            r.queueMs = queue_ms;
            r.latencyMs = queue_ms + opts_.networkMs;
            r.worker = index;
            collector_.recordExpired();
            ++expired_here;
            if (live_)
                live_->expired->inc();
            emitTrace(obs::EventKind::QueueWait,
                      obs::ResClass::ServeQueue, 0, p.id, p.admitS,
                      dequeue_s);
            uint64_t admit_us = toUs(p.admitS);
            uint64_t dq_us = std::max(toUs(dequeue_s), admit_us);
            if (p.ctx.sampled()) {
                recordSpans(p.ctx, p.steps, admit_us, dq_us, dq_us,
                            dq_us, index,
                            obs::SpanOutcome::DeadlineExpired);
            }
            recordFlightSlo(p.seq, p.id, obs::FlightClass::DeadlineExpired,
                            p.ctx.sampled(), index, p.steps, admit_us,
                            dq_us, dq_us, dq_us, p.deadlineMs,
                            r.latencyMs);
            noteError(p.seq, p.id, dq_us, r.status.code(),
                      r.status.message());
            p.promise.set_value(std::move(r));
        } else {
            live.push_back(std::move(p));
        }
    }
    if (live.empty()) {
        std::lock_guard<std::mutex> lk(debugMu_);
        ReplicaDebug &rd = replicaDebug_[index];
        rd.busy = false;
        rd.inflight.clear();
        rd.expired += expired_here;
        return;
    }

    if (opts_.serviceHook) {
        for (const Pending &p : live)
            opts_.serviceHook(p.id);
    }

    // Dispatch ends and service begins here: deadline expiry and the
    // service hook above are batch admin charged to the dispatch span.
    double service_start_s = nowS();

    // Timed requests charge simulated service milliseconds.
    double sim_ms = 0;
    unsigned timed = 0;
    for (const Pending &p : live) {
        if (p.timed) {
            ++timed;
            sim_ms += p.serviceMsReq > 0 ? p.serviceMsReq
                                         : serviceMsFor(p.steps);
        }
    }
    if (timed > 0 && opts_.batchServiceMs)
        sim_ms = opts_.batchServiceMs(timed);

    // Functional requests run the real machine, sequentially within
    // the batch (the replica is one accelerator).
    std::vector<std::vector<FVec>> outputs(live.size());
    std::vector<Status> statuses(live.size(), Status());
    for (size_t i = 0; i < live.size(); ++i) {
        if (live[i].timed || !machine)
            continue;
        try {
            model_->resetRequestState(*machine);
            outputs[i] = model_->runSequence(*machine, live[i].xs);
        } catch (const Error &e) {
            statuses[i] = Status::invalidArgument(e.what());
        }
    }
    if (sim_ms > 0 && opts_.timeScale > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                sim_ms * opts_.timeScale));
    }

    double done_s = nowS();
    double wall_ms = (done_s - dequeue_s) * 1e3;
    if (live_) {
        live_->replicaBusyUs[index]->add(static_cast<uint64_t>(
            std::llround((done_s - dequeue_s) * 1e6)));
    }
    for (size_t i = 0; i < live.size(); ++i) {
        Pending &p = live[i];
        Response r;
        r.id = p.id;
        r.status = statuses[i];
        r.outputs = std::move(outputs[i]);
        r.queueMs = (dequeue_s - p.admitS) * 1e3;
        r.serviceMs = p.timed ? sim_ms : wall_ms;
        r.latencyMs = r.queueMs + r.serviceMs + opts_.networkMs;
        r.worker = index;
        r.batch = static_cast<unsigned>(live.size());
        bool served_ok = r.status.ok();
        emitTrace(obs::EventKind::QueueWait, obs::ResClass::ServeQueue,
                  0, p.id, p.admitS, dequeue_s);
        emitTrace(obs::EventKind::Service, obs::ResClass::ServeWorker,
                  static_cast<uint16_t>(index), p.id, dequeue_s, done_s);
        uint64_t admit_us = toUs(p.admitS);
        uint64_t dq_us = std::max(toUs(dequeue_s), admit_us);
        uint64_t svc_us = std::max(toUs(service_start_s), dq_us);
        uint64_t dn_us = std::max(toUs(done_s), svc_us);
        if (p.ctx.sampled()) {
            recordSpans(p.ctx, p.steps, admit_us, dq_us, svc_us, dn_us,
                        index,
                        served_ok ? obs::SpanOutcome::Ok
                                  : obs::SpanOutcome::Error);
        }
        recordFlightSlo(p.seq, p.id,
                        served_ok ? obs::FlightClass::Ok
                                  : obs::FlightClass::Error,
                        p.ctx.sampled(), index, p.steps, admit_us, dq_us,
                        svc_us, dn_us, p.deadlineMs, r.latencyMs);
        if (!served_ok) {
            noteError(p.seq, p.id, dn_us, r.status.code(),
                      r.status.message());
        }
        {
            std::lock_guard<std::mutex> lk(debugMu_);
            ReplicaDebug &rd = replicaDebug_[index];
            rd.lastId = p.id;
            if (served_ok)
                ++rd.served;
            else
                ++rd.errors;
        }
        collector_.recordCompleted(r, p.admitS, done_s);
        if (live_) {
            live_->completed->inc();
            // Sampled requests attach their trace id as a bucket
            // exemplar: /metrics.json then names a slowest trace per
            // latency bucket for tail forensics.
            if (p.ctx.sampled())
                live_->latencyMs->recordExemplar(r.latencyMs,
                                                 p.ctx.trace);
            else
                live_->latencyMs->record(r.latencyMs);
            live_->queueWaitMs->record(r.queueMs);
        }
        p.promise.set_value(std::move(r));
    }

    std::lock_guard<std::mutex> dlk(debugMu_);
    ReplicaDebug &rd = replicaDebug_[index];
    rd.busy = false;
    rd.inflight.clear();
    rd.expired += expired_here;
}

void
Engine::drain()
{
    std::unique_lock<std::mutex> lk(mu_);
    accepting_ = false;
    draining_ = true;
    workCv_.notify_all(); // flush partially accumulated batches
    idleCv_.wait(lk, [&] { return queue_.empty() && inFlight_ == 0; });
}

void
Engine::shutdown()
{
    std::deque<Pending> abandoned;
    {
        std::lock_guard<std::mutex> lk(mu_);
        accepting_ = false;
        stopping_ = true;
        abandoned.swap(queue_);
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();

    double now_s = nowS();
    for (Pending &p : abandoned) {
        Response r;
        r.id = p.id;
        r.status = Status::cancelled("engine shut down before service");
        r.queueMs = (now_s - p.admitS) * 1e3;
        r.latencyMs = r.queueMs + opts_.networkMs;
        collector_.recordCancelled();
        if (live_)
            live_->cancelled->inc();
        uint64_t admit_us = toUs(p.admitS);
        uint64_t t_us = std::max(toUs(now_s), admit_us);
        recordFlightSlo(p.seq, p.id, obs::FlightClass::Cancelled,
                        p.ctx.sampled(), 0, p.steps, admit_us, t_us,
                        t_us, t_us, p.deadlineMs, r.latencyMs);
        noteError(p.seq, p.id, t_us, r.status.code(), r.status.message());
        p.promise.set_value(std::move(r));
    }
    if (live_)
        live_->queueDepth->set(0);
}

size_t
Engine::queueSize() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size();
}

bool
Engine::accepting() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return accepting_;
}

Json
Engine::statsJson() const
{
    Json j = Json::object();
    Json cfg = Json::object();
    cfg.set("replicas", opts_.replicas);
    cfg.set("queue_depth", static_cast<uint64_t>(opts_.queueDepth));
    cfg.set("policy", dispatchPolicyName(opts_.policy));
    cfg.set("max_batch", opts_.maxBatch);
    cfg.set("batch_timeout_ms", opts_.batchTimeoutMs);
    cfg.set("network_ms", opts_.networkMs);
    cfg.set("time_scale", opts_.timeScale);
    cfg.set("model", model_ ? model_->name : "");
    j.set("engine", std::move(cfg));
    j.set("stats", collector_.toJson());
    return j;
}

// --- /debug introspection ---

Json
Engine::debugQueueJson() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Json j = Json::object();
    j.set("accepting", accepting_);
    j.set("draining", draining_);
    j.set("stopping", stopping_);
    j.set("depth", static_cast<uint64_t>(queue_.size()));
    j.set("capacity", static_cast<uint64_t>(opts_.queueDepth));
    j.set("inflight", inFlight_);
    j.set("next_id", nextId_);
    j.set("next_seq", nextSeq_);
    double now_s = nowS();
    Json list = Json::array();
    for (const Pending &p : queue_) {
        Json e = Json::object();
        e.set("id", p.id);
        e.set("seq", p.seq);
        e.set("timed", p.timed);
        e.set("steps", p.steps);
        e.set("deadline_ms", p.deadlineMs);
        e.set("queued_ms", (now_s - p.admitS) * 1e3);
        e.set("sampled", p.ctx.sampled());
        list.push(std::move(e));
    }
    j.set("queue", std::move(list));
    return j;
}

Json
Engine::debugReplicasJson() const
{
    std::lock_guard<std::mutex> lk(debugMu_);
    Json j = Json::object();
    j.set("replicas", opts_.replicas);
    Json list = Json::array();
    for (size_t i = 0; i < replicaDebug_.size(); ++i) {
        const ReplicaDebug &rd = replicaDebug_[i];
        Json e = Json::object();
        e.set("replica", static_cast<uint64_t>(i));
        e.set("state", rd.busy ? "serving" : "idle");
        e.set("served", rd.served);
        e.set("expired", rd.expired);
        e.set("errors", rd.errors);
        e.set("last_id", rd.lastId);
        Json ids = Json::array();
        for (RequestId id : rd.inflight)
            ids.push(id);
        e.set("inflight_ids", std::move(ids));
        list.push(std::move(e));
    }
    j.set("workers", std::move(list));
    return j;
}

Json
Engine::debugConfigJson() const
{
    Json j = Json::object();
    Json eng = Json::object();
    eng.set("group", opts_.groupLabel);
    eng.set("replicas", opts_.replicas);
    eng.set("queue_depth", static_cast<uint64_t>(opts_.queueDepth));
    eng.set("policy", dispatchPolicyName(opts_.policy));
    eng.set("max_batch", opts_.maxBatch);
    eng.set("batch_timeout_ms", opts_.batchTimeoutMs);
    eng.set("network_ms", opts_.networkMs);
    eng.set("default_deadline_ms", opts_.defaultDeadlineMs);
    eng.set("service_ms_override", opts_.serviceMsOverride);
    eng.set("timing_mode", timing::fidelityName(opts_.fidelity));
    eng.set("time_scale", opts_.timeScale);
    eng.set("metrics", opts_.metricsRegistry != nullptr);
    eng.set("span_tracer", opts_.spanTracer != nullptr);
    eng.set("flight_recorder", opts_.flightRecorder != nullptr);
    eng.set("slo_monitor", opts_.sloMonitor != nullptr);
    j.set("engine", std::move(eng));
    if (model_) {
        const NpuConfig &cfg = model_->cfg;
        Json npu = Json::object();
        npu.set("name", cfg.name);
        npu.set("native_dim", cfg.nativeDim);
        npu.set("lanes", cfg.lanes);
        npu.set("tile_engines", cfg.tileEngines);
        npu.set("precision", cfg.precision.toString());
        npu.set("mrf_size", cfg.mrfSize);
        npu.set("initial_vrf_size", cfg.initialVrfSize);
        npu.set("mfus", cfg.mfus);
        npu.set("clock_mhz", cfg.clockMhz);
        npu.set("peak_tflops", cfg.peakTflops());
        j.set("npu", std::move(npu));
    }
    if (opts_.flightRecorder) {
        const obs::FlightRecorderOptions &fo =
            opts_.flightRecorder->options();
        Json f = Json::object();
        f.set("shard_capacity", static_cast<uint64_t>(fo.shardCapacity));
        f.set("window_us", fo.windowUs);
        f.set("slowest_k", fo.slowestK);
        j.set("flight", std::move(f));
    }
    // The resolved BW_* environment: every documented variable that is
    // actually set in this process, from the same single-source list
    // the README table renders from.
    Json env = Json::object();
    for (const EnvVarDoc &d : envVarDocs()) {
        if (const char *v = std::getenv(d.name))
            env.set(d.name, v);
    }
    j.set("env", std::move(env));
    return j;
}

Json
Engine::debugErrorsJson() const
{
    std::lock_guard<std::mutex> lk(debugMu_);
    Json j = Json::object();
    j.set("capacity", static_cast<uint64_t>(opts_.errorRingCapacity));
    j.set("total", errorsTotal_);
    Json list = Json::array();
    for (const ErrorRecord &e : errors_) {
        Json r = Json::object();
        r.set("seq", e.seq);
        r.set("id", e.id);
        r.set("time_us", e.timeUs);
        r.set("code", statusCodeName(e.code));
        r.set("message", e.message);
        list.push(std::move(r));
    }
    j.set("errors", std::move(list));
    return j;
}

Json
Engine::debugFlightJson() const
{
    Json j = Json::object();
    j.set("attached", opts_.flightRecorder != nullptr);
    if (!opts_.flightRecorder) {
        j.set("promoted", Json::array());
        return j;
    }
    const obs::FlightRecorder &fr = *opts_.flightRecorder;
    j.set("recorded", fr.recorded());
    j.set("dropped", fr.dropped());
    j.set("window_us", fr.options().windowUs);
    j.set("slowest_k", fr.options().slowestK);
    Json list = Json::array();
    for (const obs::FlightRecord &r : fr.promoted()) {
        Json e = Json::object();
        e.set("seq", r.seq);
        e.set("id", r.id);
        e.set("class", obs::flightClassName(r.cls));
        // The flight export keys its span trees by seq; a head-sampled
        // request additionally has a live bw.spans/1 trace under its id.
        e.set("trace", r.seq);
        e.set("head_trace", r.sampled ? r.id : 0);
        e.set("latency_us", r.latencyUs);
        e.set("admit_us", r.admitUs);
        list.push(std::move(e));
    }
    j.set("promoted", std::move(list));
    return j;
}

obs::ChainProfileFn
Engine::chainProfileFn()
{
    if (!model_ || opts_.serviceMsOverride > 0)
        return {};
    return [this](uint32_t steps,
                  const std::vector<obs::ChainProfile> **chains,
                  Cycles *total_cycles) {
        if (steps == 0)
            return false;
        const ServiceProfile &prof = serviceProfileFor(steps);
        if (!prof.chains || prof.chains->empty())
            return false;
        *chains = prof.chains.get();
        *total_cycles = prof.totalCycles;
        return true;
    };
}

Expected<Json>
Engine::flightJson()
{
    if (!opts_.flightRecorder) {
        return Status::failedPrecondition(
            "no flight recorder attached "
            "(EngineOptions::flightRecorder)");
    }
    return obs::flightJson(*opts_.flightRecorder, chainProfileFn());
}

void
Engine::exposeDebug(metrics::MetricsHttpServer &srv)
{
    srv.setReadiness([this] { return accepting(); });
    srv.handleJson("/debug/queue", [this] {
        return debugQueueJson().dump(2) + "\n";
    });
    srv.handleJson("/debug/replicas", [this] {
        return debugReplicasJson().dump(2) + "\n";
    });
    srv.handleJson("/debug/config", [this] {
        return debugConfigJson().dump(2) + "\n";
    });
    srv.handleJson("/debug/errors", [this] {
        return debugErrorsJson().dump(2) + "\n";
    });
    srv.handleJson("/debug/flight", [this] {
        return debugFlightJson().dump(2) + "\n";
    });
    if (opts_.sloMonitor) {
        SloMonitor *slo = opts_.sloMonitor;
        srv.handleJson("/slo.json", [slo] {
            return slo->sloJson().dump(2) + "\n";
        });
    }
}

double
Engine::serviceMsFor(unsigned steps)
{
    return serviceProfileFor(steps).ms;
}

const Engine::ServiceProfile &
Engine::serviceProfileFor(unsigned steps)
{
    if (opts_.serviceMsOverride > 0)
        return overrideProfile_;
    if (!model_) {
        BW_FATAL("serviceMsFor(%u): no model and no serviceMsOverride",
                 steps);
    }
    // References into the cache stay valid after unlock: entries are
    // never erased and unordered_map references survive rehash.
    std::lock_guard<std::mutex> lk(serviceMsMu_);
    auto it = serviceCache_.find(steps);
    if (it != serviceCache_.end())
        return it->second;
    // The simulation runs at the options' fidelity tier; the per-steps
    // map above stays as a thin front handing workers one immutable
    // shared profile per step count.
    if (!timingModel_) {
        timingModel_ = timing::makeTimingModel(opts_.fidelity,
                                               model_->cfg);
        timingModel_->setTileBeats(model_->tileBeats);
    }
    ServiceProfile prof;
    // Both consumers of chain profiles — live span trees and the
    // flight export's reconstructed leaves — need the profiled run
    // (cycle-identical to run(), tested).
    if (opts_.spanTracer || opts_.flightRecorder) {
        auto pr = timingModel_->runShared(model_->prologue, model_->step,
                                          steps);
        prof.ms = pr.result.latencyMs(model_->cfg);
        prof.totalCycles = pr.result.totalCycles;
        prof.chains = std::move(pr.chains);
    } else {
        auto res = timingModel_->run(model_->prologue, model_->step,
                                     steps);
        prof.ms = res.latencyMs(model_->cfg);
        prof.totalCycles = res.totalCycles;
    }
    return serviceCache_.emplace(steps, std::move(prof)).first->second;
}

void
Engine::recordSpans(const obs::TraceContext &ctx, unsigned steps,
                    uint64_t admit_us, uint64_t dequeue_us,
                    uint64_t service_us, uint64_t done_us,
                    unsigned replica, obs::SpanOutcome outcome)
{
    obs::SpanTracer *tracer = opts_.spanTracer;
    if (!tracer || !ctx.sampled())
        return;
    obs::RequestSpans rs;
    rs.trace = ctx.trace;
    rs.admitUs = admit_us;
    rs.dequeueUs = dequeue_us;
    rs.serviceUs = service_us;
    rs.doneUs = done_us;
    rs.replica = replica;
    rs.outcome = outcome;
    const ServiceProfile *prof = nullptr;
    if (outcome == obs::SpanOutcome::Ok && model_ &&
        opts_.serviceMsOverride <= 0) {
        prof = &serviceProfileFor(steps);
        if (prof->chains)
            rs.chainCount = static_cast<uint32_t>(prof->chains->size());
    }
    obs::SpanId exec = obs::recordRequestTree(*tracer, rs);
    if (exec != 0 && prof && prof->chains && !prof->chains->empty()) {
        obs::recordChainSpans(*tracer, rs.trace, exec, service_us,
                              done_us, *prof->chains, prof->totalCycles);
    }
}

// --- Deterministic virtual-time replay ---

ServeStats
Engine::replay(const std::vector<double> &arrivals_s, unsigned steps)
{
    for (size_t i = 1; i < arrivals_s.size(); ++i) {
        BW_ASSERT(arrivals_s[i] >= arrivals_s[i - 1],
                  "replay: arrivals must be ascending");
    }
    double service_ms = serviceMsFor(steps);
    // Each replay restarts the tracer, the flight recorder and the SLO
    // monitor alongside their replay-local sequence counters, so two
    // replays of one schedule export byte-identically.
    if (opts_.spanTracer)
        opts_.spanTracer->clear();
    if (opts_.flightRecorder)
        opts_.flightRecorder->clear();
    if (opts_.sloMonitor)
        opts_.sloMonitor->clear();
    return opts_.policy == DispatchPolicy::Batched
               ? replayBatched(arrivals_s, service_ms, steps)
               : replayUnbatched(arrivals_s, service_ms, steps);
}

ServeStats
Engine::replayUnbatched(const std::vector<double> &arrivals_s,
                        double service_ms, unsigned steps)
{
    ServeStats stats;
    if (arrivals_s.empty())
        return stats;

    obs::SpanTracer *tracer = opts_.spanTracer;
    uint64_t seq = 0;     // admitted requests only (span trace ids)
    uint64_t attempt = 0; // every submission attempt (flight seq)
    double service_s = service_ms / 1e3;
    double net_s = opts_.networkMs / 1e3;
    double deadline_ms = opts_.defaultDeadlineMs;
    std::vector<double> free_s(opts_.replicas, 0.0);
    // Service-start (dequeue) time of each admitted request, ascending
    // (FIFO + earliest-free replica keeps starts nondecreasing); the
    // queue occupancy seen by a new arrival is the admitted requests
    // not yet dequeued.
    std::vector<double> starts;
    starts.reserve(arrivals_s.size());
    std::vector<double> latencies;
    latencies.reserve(arrivals_s.size());
    double last_done = arrivals_s.front();

    for (double a : arrivals_s) {
        ++attempt; // flight key: rejected arrivals consume one too
        size_t dequeued = static_cast<size_t>(
            std::upper_bound(starts.begin(), starts.end(), a) -
            starts.begin());
        if (starts.size() - dequeued >= opts_.queueDepth) {
            collector_.recordRejected();
            uint64_t t_us = toUs(a);
            recordFlightSlo(attempt, 0, obs::FlightClass::Rejected,
                            false, 0, steps, t_us, t_us, t_us, t_us,
                            deadline_ms, 0.0);
            continue;
        }
        size_t r = static_cast<size_t>(
            std::min_element(free_s.begin(), free_s.end()) -
            free_s.begin());
        double start = std::max(a + net_s / 2, free_s[r]);
        starts.push_back(start);
        ++seq; // rejected arrivals never consumed a sequence number
        obs::TraceContext ctx =
            tracer ? tracer->admit(seq) : obs::TraceContext{};
        uint64_t admit_us = toUs(a);
        uint64_t start_us = std::max(toUs(start), admit_us);
        if (deadline_ms > 0 && (start - a) * 1e3 > deadline_ms) {
            collector_.recordExpired(); // expires at dequeue; no service
            recordSpans(ctx, steps, admit_us, start_us, start_us,
                        start_us, static_cast<unsigned>(r),
                        obs::SpanOutcome::DeadlineExpired);
            recordFlightSlo(attempt, seq,
                            obs::FlightClass::DeadlineExpired,
                            ctx.sampled(), static_cast<unsigned>(r),
                            steps, admit_us, start_us, start_us,
                            start_us, deadline_ms,
                            (start - a) * 1e3 + opts_.networkMs);
            continue;
        }
        double done = start + service_s;
        free_s[r] = done;
        last_done = std::max(last_done, done);
        double latency_ms = (done + net_s / 2 - a) * 1e3;
        latencies.push_back(latency_ms);
        // Virtual time dequeues straight into service: the dispatch
        // span is zero-width at the service start.
        uint64_t done_us = std::max(toUs(done), start_us);
        recordSpans(ctx, steps, admit_us, start_us, start_us, done_us,
                    static_cast<unsigned>(r), obs::SpanOutcome::Ok);
        recordFlightSlo(attempt, seq, obs::FlightClass::Ok,
                        ctx.sampled(), static_cast<unsigned>(r), steps,
                        admit_us, start_us, start_us, done_us,
                        deadline_ms, latency_ms);
    }

    std::sort(latencies.begin(), latencies.end());
    fillLatencyStats(stats, latencies);
    double span = last_done - arrivals_s.front();
    stats.throughputRps =
        span > 0 ? static_cast<double>(latencies.size()) / span : 0;
    return stats;
}

ServeStats
Engine::replayBatched(const std::vector<double> &arrivals_s,
                      double service_ms, unsigned steps)
{
    ServeStats stats;
    if (arrivals_s.empty())
        return stats;

    obs::SpanTracer *tracer = opts_.spanTracer;
    uint64_t seq = 0;     // admitted requests only (span trace ids)
    uint64_t attempt = 0; // every submission attempt (flight seq)
    double net_ms = opts_.networkMs;
    double deadline_ms = opts_.defaultDeadlineMs;
    std::vector<double> free_s(opts_.replicas, 0.0);
    std::vector<double> dequeues; // launch time per admitted request
    std::vector<double> latencies;
    latencies.reserve(arrivals_s.size());
    double last_done = arrivals_s.front();
    uint64_t batches = 0;
    double batch_sum = 0;

    auto waiting = [&](double at) {
        // Admitted requests whose batch has not launched by @p at. The
        // currently forming batch's members are counted by the caller.
        return dequeues.size() -
               static_cast<size_t>(
                   std::upper_bound(dequeues.begin(), dequeues.end(),
                                    at) -
                   dequeues.begin());
    };

    auto reject = [&](double at) {
        ++attempt;
        collector_.recordRejected();
        uint64_t t_us = toUs(at);
        recordFlightSlo(attempt, 0, obs::FlightClass::Rejected, false, 0,
                        steps, t_us, t_us, t_us, t_us, deadline_ms, 0.0);
    };

    size_t i = 0;
    const size_t n = arrivals_s.size();
    while (i < n) {
        // Find the batch's oldest member (admission-checked).
        while (i < n && waiting(arrivals_s[i]) >= opts_.queueDepth) {
            reject(arrivals_s[i]);
            ++i;
        }
        if (i >= n)
            break;
        double oldest = arrivals_s[i];
        double trigger = oldest + opts_.batchTimeoutMs / 1e3;
        std::vector<double> members{oldest};
        std::vector<obs::TraceContext> mctx;
        std::vector<uint64_t> mid;  //!< admitted id (span trace seq)
        std::vector<uint64_t> mseq; //!< submission-attempt seq
        ++seq; // rejected arrivals never consumed a sequence number
        ++attempt;
        mctx.push_back(tracer ? tracer->admit(seq)
                              : obs::TraceContext{});
        mid.push_back(seq);
        mseq.push_back(attempt);
        ++i;
        // Accumulate: requests arriving before the trigger, up to the
        // batch cap, each admission-checked against queue occupancy.
        while (i < n && members.size() < opts_.maxBatch &&
               arrivals_s[i] <= trigger) {
            if (waiting(arrivals_s[i]) + members.size() >=
                opts_.queueDepth) {
                reject(arrivals_s[i]);
            } else {
                members.push_back(arrivals_s[i]);
                ++seq;
                ++attempt;
                mctx.push_back(tracer ? tracer->admit(seq)
                                      : obs::TraceContext{});
                mid.push_back(seq);
                mseq.push_back(attempt);
            }
            ++i;
        }
        bool full = members.size() == opts_.maxBatch;
        double form = full ? members.back() : trigger;
        size_t r = static_cast<size_t>(
            std::min_element(free_s.begin(), free_s.end()) -
            free_s.begin());
        double launch = std::max(free_s[r], form);
        for (size_t k = 0; k < members.size(); ++k)
            dequeues.push_back(launch);

        // On-dequeue deadline expiry.
        std::vector<double> served;
        std::vector<obs::TraceContext> sctx;
        std::vector<uint64_t> sid, sseq;
        served.reserve(members.size());
        for (size_t k = 0; k < members.size(); ++k) {
            double a = members[k];
            uint64_t admit_us = toUs(a);
            uint64_t launch_us = std::max(toUs(launch), admit_us);
            if (deadline_ms > 0 && (launch - a) * 1e3 > deadline_ms) {
                collector_.recordExpired();
                recordSpans(mctx[k], steps, admit_us, launch_us,
                            launch_us, launch_us,
                            static_cast<unsigned>(r),
                            obs::SpanOutcome::DeadlineExpired);
                recordFlightSlo(mseq[k], mid[k],
                                obs::FlightClass::DeadlineExpired,
                                mctx[k].sampled(),
                                static_cast<unsigned>(r), steps,
                                admit_us, launch_us, launch_us,
                                launch_us, deadline_ms,
                                (launch - a) * 1e3 + net_ms);
            } else {
                served.push_back(a);
                sctx.push_back(mctx[k]);
                sid.push_back(mid[k]);
                sseq.push_back(mseq[k]);
            }
        }
        if (served.empty())
            continue;

        unsigned b = static_cast<unsigned>(served.size());
        double batch_ms = opts_.batchServiceMs ? opts_.batchServiceMs(b)
                                               : service_ms * b;
        double done = launch + batch_ms / 1e3;
        free_s[r] = done;
        last_done = std::max(last_done, done);
        for (size_t k = 0; k < served.size(); ++k) {
            double a = served[k];
            double latency_ms = (done - a) * 1e3 + net_ms;
            latencies.push_back(latency_ms);
            uint64_t admit_us = toUs(a);
            uint64_t launch_us = std::max(toUs(launch), admit_us);
            uint64_t done_us = std::max(toUs(done), launch_us);
            recordSpans(sctx[k], steps, admit_us, launch_us, launch_us,
                        done_us, static_cast<unsigned>(r),
                        obs::SpanOutcome::Ok);
            recordFlightSlo(sseq[k], sid[k], obs::FlightClass::Ok,
                            sctx[k].sampled(), static_cast<unsigned>(r),
                            steps, admit_us, launch_us, launch_us,
                            done_us, deadline_ms, latency_ms);
        }
        batch_sum += b;
        ++batches;
    }

    std::sort(latencies.begin(), latencies.end());
    fillLatencyStats(stats, latencies);
    double span = last_done - arrivals_s.front();
    stats.throughputRps =
        span > 0 ? static_cast<double>(latencies.size()) / span : 0;
    stats.meanBatch = batches > 0 ? batch_sum / batches : 1.0;
    return stats;
}

} // namespace serve
} // namespace bw
