/**
 * @file
 * bw::Session — the one-object entry point to the library.
 *
 * The historical surface had three disconnected flows: FuncMachine +
 * CompiledModel::install/runSequence for functional serving, then
 * timing::NpuTiming + setTileBeats + run for performance, then the
 * analytic ServeStats helpers for load curves. A Session wraps all
 * three behind one handle:
 *
 *   bw::Session s = bw::Session::compile(graph, cfg);
 *   auto ys = s.infer(xs);             // functional, bit-accurate
 *   auto perf = s.time(steps);         // cycle-level timing
 *   auto engine = s.serve(engineOpts); // concurrent serving engine
 *
 * The underlying objects stay reachable (model(), machine(), timer())
 * for callers that need the full control surface, and the old entry
 * points keep working — Session is a front door, not a wall.
 */

#ifndef BW_SERVE_SESSION_H
#define BW_SERVE_SESSION_H

#include <array>
#include <memory>

#include "compiler/lowering.h"
#include "serve/engine.h"
#include "timing/npu_timing.h"
#include "timing/timing_model.h"

namespace bw {

/** A compiled model plus lazily created simulators to run it on. */
class Session
{
  public:
    /** Compile @p graph for @p cfg (throws bw::Error when the model
     *  does not fit the configuration). */
    static Session compile(const GirGraph &graph, const NpuConfig &cfg,
                           const CompileOptions &options = {});

    /** Adopt an already compiled model. */
    explicit Session(CompiledModel model);

    const CompiledModel &model() const { return *model_; }
    const NpuConfig &config() const { return model_->cfg; }

    // --- Functional serving (bit-accurate BFP/float16 arithmetic). ---

    /** One unpipelined step (throws bw::Error on invalid input). */
    FVec infer(std::span<const float> x);

    /** A whole input sequence (handles pipelined models). */
    std::vector<FVec> infer(const std::vector<FVec> &xs);

    /** One batched step on a batch-compiled model. */
    std::vector<FVec> inferBatch(const std::vector<FVec> &xs);

    /** Clear recurrent state between independent requests (keeps the
     *  installed weights). */
    void reset();

    /** The lazily created, installed functional machine. */
    FuncMachine &machine();

    // --- Performance (tiered timing-fidelity models). ---

    /** Simulate serving @p steps timesteps (prologue handled) at the
     *  session's default fidelity (BW_TIMING_MODE, captured at
     *  construction; CycleAccurate when unset). */
    timing::TimingResult time(unsigned steps = 1);

    /** As time(steps) at an explicit fidelity tier. */
    timing::TimingResult time(unsigned steps, timing::Fidelity f);

    /** As time(steps), additionally collecting the retired-chain
     *  profiles (the span-tracing / stall-attribution feed) into
     *  @p chains. */
    timing::TimingResult timeProfiled(
        unsigned steps, std::vector<obs::ChainProfile> *chains);

    /** As timeProfiled() at an explicit fidelity tier. */
    timing::TimingResult timeProfiled(
        unsigned steps, std::vector<obs::ChainProfile> *chains,
        timing::Fidelity f);

    /** Wall-clock latency of one @p steps-step request (cached by the
     *  serving engine's convention: one timing run per step count). */
    double serviceMs(unsigned steps);

    /** As serviceMs() at an explicit fidelity tier. */
    double serviceMs(unsigned steps, timing::Fidelity f);

    /** The fidelity time()/serviceMs() default to: BW_TIMING_MODE at
     *  construction, else CycleAccurate. */
    timing::Fidelity defaultFidelity() const { return defaultFidelity_; }

    /** The lazily created timing model for one fidelity tier, with the
     *  model's tile-beat schedule applied. One instance per tier per
     *  session — the Cached tier's memo persists across calls. */
    timing::TimingModel &timingModel(timing::Fidelity f);

    /** The lazily created cycle-accurate simulator with the model's
     *  tile-beat schedule applied — attach trace sinks here. Shares
     *  the CycleAccurate tier's instance, so sink attachments also
     *  cover time(steps, Fidelity::CycleAccurate). */
    timing::NpuTiming &timer();

    // --- Serving (concurrent engine over accelerator replicas). ---

    /** Build a serving engine over this session's model. The engine
     *  shares the model; it may outlive the session. */
    std::unique_ptr<serve::Engine>
    serve(serve::EngineOptions opts = {}) const;

  private:
    std::shared_ptr<const CompiledModel> model_;
    std::unique_ptr<FuncMachine> machine_; //!< lazy, installed
    /** One lazily created model per fidelity tier, beats applied. */
    std::array<std::unique_ptr<timing::TimingModel>, 3> timingModels_;
    timing::Fidelity defaultFidelity_ = timing::Fidelity::CycleAccurate;
};

} // namespace bw

#endif // BW_SERVE_SESSION_H
