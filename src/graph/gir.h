/**
 * @file
 * Graph intermediate representation (GIR) for DNN models.
 *
 * The paper's toolflow exports pre-trained models into a graph IR, which
 * is then optimized, partitioned and compiled to BW NPU binaries
 * (Section II-B). This is a deliberately small IR covering the model
 * classes the paper serves on the NPU: RNN cells (LSTM/GRU), MLPs, and
 * (via a dedicated lowering pass in bw::compiler) CNN layers.
 *
 * Nodes produce logical 1-D vectors of a given dimension. Recurrent
 * state is expressed with State nodes plus a binding from the node
 * computing the next-step value.
 */

#ifndef BW_GRAPH_GIR_H
#define BW_GRAPH_GIR_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "tensor/tensor.h"

namespace bw {

/** Node identifier within one GirGraph. */
using NodeId = uint32_t;

/** GIR operator kinds. */
enum class GirOp : uint8_t
{
    Input = 0, //!< per-step network input vector
    ConstVec,  //!< constant vector (bias)
    State,     //!< recurrent state vector (zero-initialized)
    MatMul,    //!< y = W x, W a constant weight matrix
    Add,       //!< elementwise a + b
    Sub,       //!< elementwise a - b
    Mul,       //!< elementwise a * b (Hadamard)
    Max,       //!< elementwise max(a, b)
    Relu,
    Sigmoid,
    Tanh,
    Output     //!< per-step network output (passes through its input)
};

/** Human-readable op name. */
const char *girOpName(GirOp op);

/** True for the unary activations. */
bool girIsActivation(GirOp op);

/** True for the elementwise binary ops. */
bool girIsBinary(GirOp op);

/** One GIR node. */
struct GirNode
{
    GirOp op = GirOp::Input;
    std::string name;
    /** Output dimension (logical, unpadded). */
    unsigned dim = 0;
    /** Operand node ids (0 for Input/ConstVec/State, 1-2 otherwise). */
    std::vector<NodeId> inputs;
    /** Weight matrix for MatMul (dim x inputs[0].dim). */
    FMat weight;
    /** Constant value for ConstVec. */
    FVec constValue;
};

/** A dataflow graph over GirNodes, with recurrent state bindings. */
class GirGraph
{
  public:
    explicit GirGraph(std::string name = "model") : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    // --- Construction. ---
    NodeId input(unsigned dim, const std::string &name = "x");
    NodeId constVec(FVec value, const std::string &name = "c");
    NodeId state(unsigned dim, const std::string &name = "h");
    NodeId matmul(FMat weight, NodeId x, const std::string &name = "W");
    NodeId add(NodeId a, NodeId b, const std::string &name = "add");
    NodeId sub(NodeId a, NodeId b, const std::string &name = "sub");
    NodeId mul(NodeId a, NodeId b, const std::string &name = "mul");
    NodeId max(NodeId a, NodeId b, const std::string &name = "max");
    NodeId relu(NodeId a, const std::string &name = "relu");
    NodeId sigmoid(NodeId a, const std::string &name = "sigm");
    NodeId tanh(NodeId a, const std::string &name = "tanh");
    NodeId output(NodeId a, const std::string &name = "y");

    /** Bind @p producer as the next-step value of State node @p state. */
    void bindState(NodeId state, NodeId producer);

    // --- Inspection. ---
    size_t size() const { return nodes_.size(); }
    const GirNode &node(NodeId id) const;
    const std::vector<GirNode> &nodes() const { return nodes_; }

    /** Ids of all nodes of the given kind, in creation order. */
    std::vector<NodeId> nodesOf(GirOp op) const;

    /** State -> producer bindings. */
    const std::vector<std::pair<NodeId, NodeId>> &stateBindings() const
    {
        return stateBindings_;
    }

    /** Consumers of each node (computed on demand). */
    std::vector<std::vector<NodeId>> consumers() const;

    /**
     * Nodes in a valid topological order (State/Input/Const first).
     * Throws bw::Error if the combinational part of the graph is cyclic.
     */
    std::vector<NodeId> topoOrder() const;

    /**
     * Total arithmetic ops per step using the paper's convention:
     * 2 ops per MAC of each MatMul plus one op per element of each
     * point-wise node.
     */
    OpCount opsPerStep() const;

    /** MatMul-only ops per step (2 * rows * cols summed). */
    OpCount matmulOpsPerStep() const;

    /** Model weight bytes at @p bits_per_element. */
    uint64_t weightBytes(unsigned bits_per_element) const;

    /** Validate arity/dimension agreement; throws bw::Error. */
    void check() const;

  private:
    NodeId addNode(GirNode n);

    std::string name_;
    std::vector<GirNode> nodes_;
    std::vector<std::pair<NodeId, NodeId>> stateBindings_;
};

} // namespace bw

#endif // BW_GRAPH_GIR_H
