#include "graph/gir.h"

#include <algorithm>

#include "common/logging.h"

namespace bw {

const char *
girOpName(GirOp op)
{
    switch (op) {
      case GirOp::Input: return "Input";
      case GirOp::ConstVec: return "ConstVec";
      case GirOp::State: return "State";
      case GirOp::MatMul: return "MatMul";
      case GirOp::Add: return "Add";
      case GirOp::Sub: return "Sub";
      case GirOp::Mul: return "Mul";
      case GirOp::Max: return "Max";
      case GirOp::Relu: return "Relu";
      case GirOp::Sigmoid: return "Sigmoid";
      case GirOp::Tanh: return "Tanh";
      case GirOp::Output: return "Output";
      default: BW_PANIC("bad GirOp %d", static_cast<int>(op));
    }
}

bool
girIsActivation(GirOp op)
{
    return op == GirOp::Relu || op == GirOp::Sigmoid || op == GirOp::Tanh;
}

bool
girIsBinary(GirOp op)
{
    return op == GirOp::Add || op == GirOp::Sub || op == GirOp::Mul ||
           op == GirOp::Max;
}

NodeId
GirGraph::addNode(GirNode n)
{
    nodes_.push_back(std::move(n));
    return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId
GirGraph::input(unsigned dim, const std::string &name)
{
    GirNode n;
    n.op = GirOp::Input;
    n.dim = dim;
    n.name = name;
    return addNode(std::move(n));
}

NodeId
GirGraph::constVec(FVec value, const std::string &name)
{
    GirNode n;
    n.op = GirOp::ConstVec;
    n.dim = static_cast<unsigned>(value.size());
    n.constValue = std::move(value);
    n.name = name;
    return addNode(std::move(n));
}

NodeId
GirGraph::state(unsigned dim, const std::string &name)
{
    GirNode n;
    n.op = GirOp::State;
    n.dim = dim;
    n.name = name;
    return addNode(std::move(n));
}

NodeId
GirGraph::matmul(FMat weight, NodeId x, const std::string &name)
{
    if (node(x).dim != weight.cols()) {
        BW_FATAL("matmul %s: weight is %zux%zu but input '%s' has dim %u",
                 name.c_str(), weight.rows(), weight.cols(),
                 node(x).name.c_str(), node(x).dim);
    }
    GirNode n;
    n.op = GirOp::MatMul;
    n.dim = static_cast<unsigned>(weight.rows());
    n.inputs = {x};
    n.weight = std::move(weight);
    n.name = name;
    return addNode(std::move(n));
}

namespace {

void
checkSameDim(const GirGraph &g, NodeId a, NodeId b, const char *what)
{
    if (g.node(a).dim != g.node(b).dim) {
        BW_FATAL("%s: operand dims differ (%s:%u vs %s:%u)", what,
                 g.node(a).name.c_str(), g.node(a).dim,
                 g.node(b).name.c_str(), g.node(b).dim);
    }
}

} // namespace

NodeId
GirGraph::add(NodeId a, NodeId b, const std::string &name)
{
    checkSameDim(*this, a, b, "add");
    GirNode n;
    n.op = GirOp::Add;
    n.dim = node(a).dim;
    n.inputs = {a, b};
    n.name = name;
    return addNode(std::move(n));
}

NodeId
GirGraph::sub(NodeId a, NodeId b, const std::string &name)
{
    checkSameDim(*this, a, b, "sub");
    GirNode n;
    n.op = GirOp::Sub;
    n.dim = node(a).dim;
    n.inputs = {a, b};
    n.name = name;
    return addNode(std::move(n));
}

NodeId
GirGraph::mul(NodeId a, NodeId b, const std::string &name)
{
    checkSameDim(*this, a, b, "mul");
    GirNode n;
    n.op = GirOp::Mul;
    n.dim = node(a).dim;
    n.inputs = {a, b};
    n.name = name;
    return addNode(std::move(n));
}

NodeId
GirGraph::max(NodeId a, NodeId b, const std::string &name)
{
    checkSameDim(*this, a, b, "max");
    GirNode n;
    n.op = GirOp::Max;
    n.dim = node(a).dim;
    n.inputs = {a, b};
    n.name = name;
    return addNode(std::move(n));
}

NodeId
GirGraph::relu(NodeId a, const std::string &name)
{
    GirNode n;
    n.op = GirOp::Relu;
    n.dim = node(a).dim;
    n.inputs = {a};
    n.name = name;
    return addNode(std::move(n));
}

NodeId
GirGraph::sigmoid(NodeId a, const std::string &name)
{
    GirNode n;
    n.op = GirOp::Sigmoid;
    n.dim = node(a).dim;
    n.inputs = {a};
    n.name = name;
    return addNode(std::move(n));
}

NodeId
GirGraph::tanh(NodeId a, const std::string &name)
{
    GirNode n;
    n.op = GirOp::Tanh;
    n.dim = node(a).dim;
    n.inputs = {a};
    n.name = name;
    return addNode(std::move(n));
}

NodeId
GirGraph::output(NodeId a, const std::string &name)
{
    GirNode n;
    n.op = GirOp::Output;
    n.dim = node(a).dim;
    n.inputs = {a};
    n.name = name;
    return addNode(std::move(n));
}

void
GirGraph::bindState(NodeId state, NodeId producer)
{
    if (node(state).op != GirOp::State)
        BW_FATAL("bindState: '%s' is not a State node",
                 node(state).name.c_str());
    if (node(state).dim != node(producer).dim)
        BW_FATAL("bindState: dim mismatch (%u vs %u)", node(state).dim,
                 node(producer).dim);
    for (auto &[s, p] : stateBindings_) {
        if (s == state)
            BW_FATAL("bindState: state '%s' already bound",
                     node(state).name.c_str());
    }
    stateBindings_.emplace_back(state, producer);
}

const GirNode &
GirGraph::node(NodeId id) const
{
    BW_ASSERT(id < nodes_.size(), "node id %u out of range", id);
    return nodes_[id];
}

std::vector<NodeId>
GirGraph::nodesOf(GirOp op) const
{
    std::vector<NodeId> out;
    for (NodeId i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].op == op)
            out.push_back(i);
    }
    return out;
}

std::vector<std::vector<NodeId>>
GirGraph::consumers() const
{
    std::vector<std::vector<NodeId>> out(nodes_.size());
    for (NodeId i = 0; i < nodes_.size(); ++i) {
        for (NodeId in : nodes_[i].inputs)
            out[in].push_back(i);
    }
    return out;
}

std::vector<NodeId>
GirGraph::topoOrder() const
{
    // Nodes are created operands-first, so identity order is a valid
    // topological order; verify anyway to catch manual misuse.
    for (NodeId i = 0; i < nodes_.size(); ++i) {
        for (NodeId in : nodes_[i].inputs) {
            if (in >= i)
                BW_FATAL("graph %s: node %u uses later node %u (cycle in "
                         "combinational graph)", name_.c_str(), i, in);
        }
    }
    std::vector<NodeId> order(nodes_.size());
    for (NodeId i = 0; i < nodes_.size(); ++i)
        order[i] = i;
    return order;
}

OpCount
GirGraph::opsPerStep() const
{
    OpCount ops = 0;
    for (const auto &n : nodes_) {
        if (n.op == GirOp::MatMul)
            ops += 2ull * n.weight.rows() * n.weight.cols();
        else if (girIsBinary(n.op) || girIsActivation(n.op))
            ops += n.dim;
    }
    return ops;
}

OpCount
GirGraph::matmulOpsPerStep() const
{
    OpCount ops = 0;
    for (const auto &n : nodes_) {
        if (n.op == GirOp::MatMul)
            ops += 2ull * n.weight.rows() * n.weight.cols();
    }
    return ops;
}

uint64_t
GirGraph::weightBytes(unsigned bits_per_element) const
{
    uint64_t bits = 0;
    for (const auto &n : nodes_) {
        if (n.op == GirOp::MatMul)
            bits += static_cast<uint64_t>(n.weight.rows()) *
                    n.weight.cols() * bits_per_element;
    }
    return bits / 8;
}

void
GirGraph::check() const
{
    topoOrder();
    for (NodeId i = 0; i < nodes_.size(); ++i) {
        const GirNode &n = nodes_[i];
        size_t arity;
        switch (n.op) {
          case GirOp::Input:
          case GirOp::ConstVec:
          case GirOp::State:
            arity = 0;
            break;
          case GirOp::MatMul:
          case GirOp::Relu:
          case GirOp::Sigmoid:
          case GirOp::Tanh:
          case GirOp::Output:
            arity = 1;
            break;
          default:
            arity = 2;
            break;
        }
        if (n.inputs.size() != arity) {
            BW_FATAL("node %u (%s %s): expected %zu inputs, has %zu", i,
                     girOpName(n.op), n.name.c_str(), arity,
                     n.inputs.size());
        }
        if (n.dim == 0)
            BW_FATAL("node %u (%s): zero dimension", i, n.name.c_str());
    }
    for (auto &[s, p] : stateBindings_) {
        BW_ASSERT(s < nodes_.size() && p < nodes_.size());
    }
}

} // namespace bw
