/**
 * @file
 * 2-D convolution layer specification. The BW NPU has no convolution
 * primitive: 2-D CNNs are linearized onto matrix-vector multiplication
 * (Section IV-B), treating each output position's input patch as a
 * vector multiplied by a (outC x kH*kW*inC) weight matrix. ConvSpec is
 * the shared description consumed by the critical-path analyzer, the
 * conv lowering pass and the ResNet-50 layer table.
 */

#ifndef BW_GRAPH_CONV_H
#define BW_GRAPH_CONV_H

#include <string>

#include "common/units.h"

namespace bw {

/** One convolutional layer (square stride, symmetric zero padding). */
struct ConvSpec
{
    std::string name = "conv";
    unsigned inH = 0, inW = 0, inC = 0;
    unsigned outC = 0;
    unsigned kH = 1, kW = 1;
    unsigned stride = 1;
    unsigned pad = 0;
    bool relu = true;
    /**
     * This layer's output is summed element-wise with a shortcut branch
     * (a ResNet bottleneck's expand conv): the lowering emits an extra
     * point-wise add pass over the output feature map.
     */
    bool residualAdd = false;

    unsigned outH() const { return (inH + 2 * pad - kH) / stride + 1; }
    unsigned outW() const { return (inW + 2 * pad - kW) / stride + 1; }
    unsigned positions() const { return outH() * outW(); }

    /** Dot length of one output position: kH*kW*inC. */
    unsigned patchLen() const { return kH * kW * inC; }

    /** Multiply+add ops over the whole layer (2 per MAC). */
    OpCount
    macOps() const
    {
        return 2ull * positions() * outC * patchLen();
    }

    /** Point-wise ops (bias add, optional ReLU) over the layer. */
    OpCount
    pointwiseOps() const
    {
        return static_cast<OpCount>(positions()) * outC * (relu ? 2 : 1);
    }

    OpCount totalOps() const { return macOps() + pointwiseOps(); }

    /** Weight elements: outC * kH * kW * inC. */
    uint64_t
    weightCount() const
    {
        return static_cast<uint64_t>(outC) * patchLen();
    }

    /** Input feature-map elements. */
    uint64_t
    inputCount() const
    {
        return static_cast<uint64_t>(inH) * inW * inC;
    }

    /** Output feature-map elements. */
    uint64_t
    outputCount() const
    {
        return static_cast<uint64_t>(outH()) * outW() * outC;
    }
};

} // namespace bw

#endif // BW_GRAPH_CONV_H
