/**
 * @file
 * GIR builders for the model classes evaluated in the paper: LSTM and
 * GRU cells (DeepBench RNN inference, Table V), and dense MLPs. The
 * graphs are structured exactly as the paper's hand-written LSTM kernel
 * (Section IV-C) so the compiler's chain fusion reproduces its
 * instruction chains.
 */

#ifndef BW_GRAPH_BUILDERS_H
#define BW_GRAPH_BUILDERS_H

#include "common/rng.h"
#include "graph/gir.h"

namespace bw {

/** LSTM cell parameters; W* are h x x, U* are h x h, b* length h. */
struct LstmWeights
{
    unsigned hidden = 0;
    unsigned inputDim = 0;
    FMat Wf, Wi, Wo, Wc;
    FMat Uf, Ui, Uo, Uc;
    FVec bf, bi, bo, bc;
};

/** GRU cell parameters (cuDNN/DeepBench convention). */
struct GruWeights
{
    unsigned hidden = 0;
    unsigned inputDim = 0;
    FMat Wz, Wr, Wh;
    FMat Uz, Ur, Uh;
    FVec bz, br, bh;
};

/** Dense MLP parameters; layer i maps dims[i] -> dims[i+1]. */
struct MlpWeights
{
    std::vector<FMat> weights;
    std::vector<FVec> biases;
};

/** Xavier-initialized random weights (deterministic per seed). */
LstmWeights randomLstmWeights(unsigned hidden, unsigned input_dim,
                              Rng &rng);
GruWeights randomGruWeights(unsigned hidden, unsigned input_dim, Rng &rng);
MlpWeights randomMlpWeights(const std::vector<unsigned> &dims, Rng &rng);

/**
 * Build the LSTM cell graph:
 *   g = sigm/tanh(W_g x + U_g h + b_g)    for g in {f, i, o, c~}
 *   c' = f (*) c + i (*) c~
 *   h' = o (*) tanh(c')
 * with h' sent to the network each step.
 */
GirGraph makeLstm(const LstmWeights &w);

/**
 * Build the GRU cell graph:
 *   z = sigm(Wz x + Uz h + bz)
 *   r = sigm(Wr x + Ur h + br)
 *   h~ = tanh(Wh x + Uh (r (*) h) + bh)
 *   h' = h~ + z (*) (h - h~)
 * with h' sent to the network each step.
 */
GirGraph makeGru(const GruWeights &w);

/**
 * Build a dense MLP: y = W_n(...relu(W_1 x + b_1)...) + b_n, with ReLU
 * between layers and the final layer linear.
 */
GirGraph makeMlp(const MlpWeights &w);

} // namespace bw

#endif // BW_GRAPH_BUILDERS_H
