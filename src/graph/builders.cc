#include "graph/builders.h"

#include "common/logging.h"

namespace bw {

namespace {

FMat
randomMat(size_t rows, size_t cols, Rng &rng)
{
    FMat m(rows, cols);
    fillXavier(m, rng);
    return m;
}

FVec
randomVec(size_t n, Rng &rng)
{
    FVec v(n);
    for (auto &x : v)
        x = rng.uniformF(-0.1f, 0.1f);
    return v;
}

} // namespace

LstmWeights
randomLstmWeights(unsigned hidden, unsigned input_dim, Rng &rng)
{
    LstmWeights w;
    w.hidden = hidden;
    w.inputDim = input_dim;
    w.Wf = randomMat(hidden, input_dim, rng);
    w.Wi = randomMat(hidden, input_dim, rng);
    w.Wo = randomMat(hidden, input_dim, rng);
    w.Wc = randomMat(hidden, input_dim, rng);
    w.Uf = randomMat(hidden, hidden, rng);
    w.Ui = randomMat(hidden, hidden, rng);
    w.Uo = randomMat(hidden, hidden, rng);
    w.Uc = randomMat(hidden, hidden, rng);
    w.bf = randomVec(hidden, rng);
    w.bi = randomVec(hidden, rng);
    w.bo = randomVec(hidden, rng);
    w.bc = randomVec(hidden, rng);
    return w;
}

GruWeights
randomGruWeights(unsigned hidden, unsigned input_dim, Rng &rng)
{
    GruWeights w;
    w.hidden = hidden;
    w.inputDim = input_dim;
    w.Wz = randomMat(hidden, input_dim, rng);
    w.Wr = randomMat(hidden, input_dim, rng);
    w.Wh = randomMat(hidden, input_dim, rng);
    w.Uz = randomMat(hidden, hidden, rng);
    w.Ur = randomMat(hidden, hidden, rng);
    w.Uh = randomMat(hidden, hidden, rng);
    w.bz = randomVec(hidden, rng);
    w.br = randomVec(hidden, rng);
    w.bh = randomVec(hidden, rng);
    return w;
}

MlpWeights
randomMlpWeights(const std::vector<unsigned> &dims, Rng &rng)
{
    BW_ASSERT(dims.size() >= 2, "MLP needs at least one layer");
    MlpWeights w;
    for (size_t i = 0; i + 1 < dims.size(); ++i) {
        w.weights.push_back(randomMat(dims[i + 1], dims[i], rng));
        w.biases.push_back(randomVec(dims[i + 1], rng));
    }
    return w;
}

GirGraph
makeLstm(const LstmWeights &w)
{
    GirGraph g("lstm_h" + std::to_string(w.hidden));
    NodeId x = g.input(w.inputDim, "xt");
    NodeId h = g.state(w.hidden, "h_prev");
    NodeId c = g.state(w.hidden, "c_prev");

    // x-side projections with fused bias, as in the paper's kernel.
    NodeId xWf = g.add(g.matmul(w.Wf, x, "Wf"), g.constVec(w.bf, "bf"),
                       "xWf");
    NodeId xWi = g.add(g.matmul(w.Wi, x, "Wi"), g.constVec(w.bi, "bi"),
                       "xWi");
    NodeId xWo = g.add(g.matmul(w.Wo, x, "Wo"), g.constVec(w.bo, "bo"),
                       "xWo");
    NodeId xWc = g.add(g.matmul(w.Wc, x, "Wc"), g.constVec(w.bc, "bc"),
                       "xWc");

    // f gate, fused with the multiply by c_prev ("ft_mod").
    NodeId f = g.sigmoid(g.add(g.matmul(w.Uf, h, "Uf"), xWf, "f_pre"),
                         "ft");
    NodeId fc = g.mul(f, c, "ft_mod");

    NodeId i = g.sigmoid(g.add(g.matmul(w.Ui, h, "Ui"), xWi, "i_pre"),
                         "it");
    NodeId o = g.sigmoid(g.add(g.matmul(w.Uo, h, "Uo"), xWo, "o_pre"),
                         "ot");

    // c gate: ct = tanh(Uc h + xWc) (*) it + ft_mod.
    NodeId ctilde = g.tanh(g.add(g.matmul(w.Uc, h, "Uc"), xWc, "c_pre"),
                           "c_tilde");
    NodeId ic = g.mul(ctilde, i, "i_mod");
    NodeId ct = g.add(ic, fc, "ct");

    // ht = ot (*) tanh(ct).
    NodeId ht = g.mul(g.tanh(ct, "tanh_ct"), o, "ht");

    g.bindState(c, ct);
    g.bindState(h, ht);
    g.output(ht, "ht_out");
    g.check();
    return g;
}

GirGraph
makeGru(const GruWeights &w)
{
    GirGraph g("gru_h" + std::to_string(w.hidden));
    NodeId x = g.input(w.inputDim, "xt");
    NodeId h = g.state(w.hidden, "h_prev");

    NodeId xWz = g.add(g.matmul(w.Wz, x, "Wz"), g.constVec(w.bz, "bz"),
                       "xWz");
    NodeId xWr = g.add(g.matmul(w.Wr, x, "Wr"), g.constVec(w.br, "br"),
                       "xWr");
    NodeId xWh = g.add(g.matmul(w.Wh, x, "Wh"), g.constVec(w.bh, "bh"),
                       "xWh");

    NodeId z = g.sigmoid(g.add(g.matmul(w.Uz, h, "Uz"), xWz, "z_pre"),
                         "zt");
    NodeId r = g.sigmoid(g.add(g.matmul(w.Ur, h, "Ur"), xWr, "r_pre"),
                         "rt");

    // h~ = tanh(Wh x + Uh (r (*) h) + bh); the r (*) h product is a
    // separate chain because the MVM sits at the head of the pipeline.
    NodeId rh = g.mul(h, r, "r_mod");
    NodeId htilde = g.tanh(g.add(g.matmul(w.Uh, rh, "Uh"), xWh, "h_pre"),
                           "h_tilde");

    // h' = h~ + z (*) (h - h~): one subtract/multiply chain plus the
    // final accumulate, avoiding a (1 - z) constant vector.
    NodeId d = g.sub(h, htilde, "h_minus_ht");
    NodeId zd = g.mul(d, z, "z_mod");
    NodeId hnew = g.add(htilde, zd, "ht");

    g.bindState(h, hnew);
    g.output(hnew, "ht_out");
    g.check();
    return g;
}

GirGraph
makeMlp(const MlpWeights &w)
{
    BW_ASSERT(!w.weights.empty() && w.weights.size() == w.biases.size());
    GirGraph g("mlp");
    NodeId cur = g.input(static_cast<unsigned>(w.weights[0].cols()), "x");
    for (size_t l = 0; l < w.weights.size(); ++l) {
        std::string tag = std::to_string(l);
        cur = g.add(g.matmul(w.weights[l], cur, "W" + tag),
                    g.constVec(w.biases[l], "b" + tag), "a" + tag);
        if (l + 1 < w.weights.size())
            cur = g.relu(cur, "relu" + tag);
    }
    g.output(cur, "y");
    g.check();
    return g;
}

} // namespace bw
